(* Sets of processor ids, kept as strictly ascending int lists.

   These replace the int bitmasks the diff store and the adaptive backend
   used for per-page writer/reader tracking: a bitmask caps the cluster at
   [Sys.int_size - 1] processors, and the scaling experiments run clusters
   of up to 1024. Per-page populations stay small (the writers of one page,
   the processors that touched one page in one classification window), so
   ordered lists are both deterministic and cheap.

   Lives in [Dsm_util] so the trace checker (below the run-time in the
   library order) can track sparse per-page sharer populations too. *)

type t = int list

let empty = []
let is_empty s = s = []
let singleton p = [ p ]
let cardinal = List.length

let rec add p s =
  match s with
  | [] -> [ p ]
  | q :: _ when p < q -> p :: s
  | q :: _ when p = q -> s
  | q :: tl -> q :: add p tl

let rec remove p s =
  match s with
  | [] -> []
  | q :: tl when p = q -> tl
  | q :: _ when p < q -> s
  | q :: tl -> q :: remove p tl

let mem p s = List.exists (fun q -> q = p) s

let rec union a b =
  match (a, b) with
  | [], s | s, [] -> s
  | x :: xs, y :: ys ->
      if x < y then x :: union xs b
      else if y < x then y :: union a ys
      else x :: union xs ys

let rec disjoint a b =
  match (a, b) with
  | [], _ | _, [] -> true
  | x :: xs, y :: ys ->
      if x < y then disjoint xs b
      else if y < x then disjoint a ys
      else false

let equal (a : t) (b : t) = a = b
let min_elt = function [] -> invalid_arg "Pset.min_elt: empty" | p :: _ -> p
let to_list s = s
let of_list l = List.sort_uniq compare l
let iter = List.iter

(* Sparse per-writer watermark maps.

   Every page's protocol metadata carries two maps writer -> interval seq
   (applied and known). As dense [int array]s of length [nprocs] they cost
   O(nprocs) words per (processor, page) pair — at 1024 simulated
   processors that is gigabytes of zeroes, and allocating them dominated
   large-cluster host time. A page is only ever written by a few
   processors, so the maps are sparse: sorted association lists keyed by
   writer, absent meaning 0.

   The pair list is immutable (the record holds a mutable pointer), so a
   checkpoint snapshot ({!to_pairs} / sharing in [Dsm_ft.Ft.ck_known]) is
   O(1) and can never be mutated behind the checkpoint's back. Iteration
   is in ascending writer order, matching the [for q = 0 to nprocs - 1]
   loops this replaces — bit-identical simulated behaviour.

   Lives in [Dsm_util] so both the run-time ([Dsm_tmk]) and the trace
   checker ([Dsm_trace.Check], which sits below the run-time in the
   library order) share one definition. *)

type t = { mutable l : (int * int) list }  (* ascending writer; absent = 0 *)

let create () = { l = [] }

let get t k =
  let rec go = function
    | [] -> 0
    | (k', v) :: tl -> if k' < k then go tl else if k' = k then v else 0
  in
  go t.l

let find_opt t k =
  let rec go = function
    | [] -> None
    | (k', v) :: tl -> if k' < k then go tl else if k' = k then Some v else None
  in
  go t.l

let set t k v =
  let rec go = function
    | [] -> [ (k, v) ]
    | ((k', _) as e) :: tl ->
        if k' < k then e :: go tl
        else if k' = k then (k, v) :: tl
        else (k, v) :: e :: tl
  in
  t.l <- go t.l

(* Ascending writer order — deterministic, like the dense loops. *)
let iter f t = List.iter (fun (k, v) -> f k v) t.l
let exists f t = List.exists (fun (k, v) -> f k v) t.l

let to_pairs t = t.l
let of_pairs l = { l }
let keys t = List.map fst t.l

(* Keys present in either map, ascending: the domain over which at least
   one of two watermark maps is non-zero. *)
let union_keys a b =
  let rec go xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> List.map fst rest
    | (x, _) :: xtl, (y, _) :: ytl ->
        if x < y then x :: go xtl ys
        else if y < x then y :: go xs ytl
        else x :: go xtl ytl
  in
  go a.l b.l

(* [dominates a b]: a(k) >= b(k) pointwise (only b's explicit entries can
   break it — absent entries are 0). *)
let dominates a b = List.for_all (fun (k, v) -> get a k >= v) b.l

(* [exists_gt a b]: a(k) > b(k) for some k (only a's explicit entries can
   exceed — absent entries are 0 and b(k) >= 0). *)
let exists_gt a b = List.exists (fun (k, v) -> v > get b k) a.l

(** Parser for flat one-line JSON objects.

    Handles exactly the shape this project's own file formats use — a
    single object of string, number, bool and flat int-array fields, no
    nesting — which is all the protocol-plan format ({!Dsm_tmk.Proto_plan})
    needs. All accessors raise {!Parse_error} on missing fields or type
    mismatches, carrying a message precise enough to show the user. *)

exception Parse_error of string

type value = Num of float | Bool of bool | Str of string | Ints of int list

type t = (string * value) list
(** Parsed object: fields in source order. *)

val parse_exn : string -> t
(** Parse one line holding one object.
    @raise Parse_error on malformed input or trailing garbage. *)

val get : t -> string -> value
(** @raise Parse_error when the field is missing. *)

val num : t -> string -> float
val int : t -> string -> int
val bool : t -> string -> bool
val str : t -> string -> string

val mem : t -> string -> bool
(** Field presence, for optional fields. *)

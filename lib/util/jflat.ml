(* Minimal parser for the flat one-line JSON objects this project writes
   itself: string, number, bool and int-list values, no nesting. Shared
   by the protocol-plan loader; the trace event parser predates it and
   keeps its own copy to stay self-contained. *)

exception Parse_error of string

type value = Num of float | Bool of bool | Str of string | Ints of int list

type t = (string * value) list

let parse_exn line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let skip_ws () =
    while
      !pos < n
      && match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false
    do
      incr pos
    done
  in
  let peek () =
    skip_ws ();
    if !pos < n then line.[!pos] else fail "unexpected end of input"
  in
  let expect c =
    if peek () = c then incr pos else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match line.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match line.[!pos] with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | c -> Buffer.add_char b c);
          incr pos;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let parse_value () =
    match peek () with
    | '"' -> Str (parse_string ())
    | 't' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
          pos := !pos + 4;
          Bool true
        end
        else fail "expected 'true'"
    | 'f' ->
        if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
          pos := !pos + 5;
          Bool false
        end
        else fail "expected 'false'"
    | '[' ->
        incr pos;
        let items = ref [] in
        if peek () = ']' then incr pos
        else begin
          let rec go () =
            items := int_of_float (parse_number ()) :: !items;
            match peek () with
            | ',' ->
                incr pos;
                go ()
            | ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          go ()
        end;
        Ints (List.rev !items)
    | _ -> Num (parse_number ())
  in
  let fields = ref [] in
  expect '{';
  if peek () = '}' then incr pos
  else begin
    let rec go () =
      let k = parse_string () in
      expect ':';
      fields := (k, parse_value ()) :: !fields;
      match peek () with
      | ',' ->
          incr pos;
          go ()
      | '}' -> incr pos
      | _ -> fail "expected ',' or '}'"
    in
    go ()
  end;
  skip_ws ();
  if !pos <> n then fail "trailing garbage after object";
  List.rev !fields

let get t k =
  match List.assoc_opt k t with
  | Some v -> v
  | None -> raise (Parse_error (Printf.sprintf "missing field %S" k))

let num t k =
  match get t k with
  | Num f -> f
  | _ -> raise (Parse_error (Printf.sprintf "field %S: expected a number" k))

let int t k = int_of_float (num t k)

let bool t k =
  match get t k with
  | Bool b -> b
  | _ -> raise (Parse_error (Printf.sprintf "field %S: expected a bool" k))

let str t k =
  match get t k with
  | Str s -> s
  | _ -> raise (Parse_error (Printf.sprintf "field %S: expected a string" k))

let mem t k = List.mem_assoc k t

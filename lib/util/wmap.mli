(** Sparse writer -> interval-seq watermark maps.

    The per-page [applied]/[known] protocol watermarks, stored as sorted
    association lists instead of [nprocs]-sized arrays: a page has few
    writers, and dense arrays cost O(nprocs) words per (processor, page)
    pair — prohibitive at the 1024-processor scaling configurations.
    Absent keys read as 0. Iteration is in ascending writer order, so
    replacing a [for q = 0 to nprocs - 1] scan with {!iter} preserves the
    exact visit order (and therefore bit-identical simulated results).

    Shared by the run-time ([Dsm_tmk], which re-exports it) and the trace
    checker ([Dsm_trace.Check]). *)

type t

val create : unit -> t
val get : t -> int -> int

val find_opt : t -> int -> int option
(** [find_opt t k] distinguishes an explicit 0 entry from an absent key —
    the checker's last-applied-stamp tables default to "never", not 0. *)

val set : t -> int -> int -> unit

val iter : (int -> int -> unit) -> t -> unit
(** [iter f t] calls [f writer seq] for each explicit entry, ascending by
    writer. Entries with value 0 are visited too (a rollback can store 0). *)

val exists : (int -> int -> bool) -> t -> bool

val to_pairs : t -> (int * int) list
(** O(1) immutable snapshot (ascending) — safe to store in a checkpoint. *)

val of_pairs : (int * int) list -> t
(** Wrap a snapshot back into a map; the list must be ascending by key. *)

val keys : t -> int list
(** Explicit keys, ascending. *)

val union_keys : t -> t -> int list
(** Keys explicit in either map, ascending. *)

val dominates : t -> t -> bool
(** [dominates a b] iff [get a k >= get b k] for every key [k]. *)

val exists_gt : t -> t -> bool
(** [exists_gt a b] iff [get a k > get b k] for some key [k]. *)

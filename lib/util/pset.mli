(** Sets of processor ids with no width limit.

    Stored as strictly ascending int lists. The diff store and the adaptive
    backend track per-page writer/reader populations with these; int
    bitmasks would cap the cluster at [Sys.int_size - 1] processors, and
    the scaling experiments simulate up to 1024. All operations are
    deterministic: equal sets are structurally equal. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : int -> t

val cardinal : t -> int
(** Number of members — the bitmask popcount. *)

val add : int -> t -> t
(** [add p s] is [s] with [p]; O(cardinal). *)

val remove : int -> t -> t
(** [remove p s] is [s] without [p]; O(cardinal). *)

val mem : int -> t -> bool

val union : t -> t -> t
(** Ordered merge; O(cardinal a + cardinal b). *)

val disjoint : t -> t -> bool
(** No common member; O(cardinal a + cardinal b) merge walk. *)

val equal : t -> t -> bool

val min_elt : t -> int
(** Smallest member — the bitmask lowbit. Raises [Invalid_argument] on the
    empty set. *)

val to_list : t -> int list
(** Members in ascending order. *)

val of_list : int list -> t
(** Sorted, deduplicated. *)

val iter : (int -> unit) -> t -> unit
(** Ascending order. *)

(** Re-export of {!Dsm_util.Pset} — see there for documentation. The
    processor-id set moved to [Dsm_util] so the trace checker can share
    it; run-time code keeps the short [Pset] name. *)

include module type of struct
  include Dsm_util.Pset
end

(* Adaptive per-page protocol switching.

   A meta-backend: every page is governed at any moment by one of the
   three concrete protocols — homeless LRC ({!Protocol}/{!Backend_lrc}),
   home-based LRC ({!Hlrc}) or single-writer invalidate ({!Invalidate}) —
   and the backend reclassifies pages online from their observed sharing
   pattern. Pages start under LRC (the paper's default, correct for
   anything); every [adapt_window] barrier epochs the per-window
   read/write processor masks decide:

   - one processor both reads and writes the page (private, or migratory
     when the processor changes between windows) -> invalidate, owned by
     that processor: after one exclusivity grant it runs at memory speed
     with no per-epoch twin/diff/notice work;
   - exactly one writer, other readers (producer-consumer) -> home-based
     LRC with the home at the writer: flushes are local, consumers pay one
     full-page fetch;
   - several writers (fine-grained or false sharing) -> homeless LRC,
     whose diffs are exactly the concurrent-writer mechanism;
   - untouched or read-only windows change nothing.

   Switching happens inside the barrier's [plan_bcast] hook: it runs once,
   in the last arriver's engine turn, after every processor has closed its
   interval (all dirty sets are empty) and after the departure vector
   clock has been merged — global quiescence. The switch first brings the
   new copy-holder fully current through the ordinary traced protocol
   paths (so the checker follows for free), then rewrites protections,
   watermarks and per-protocol directory state; the reconfiguration itself
   is charged nothing, like the protection fixups of a real mprotect-based
   system would be amortized into the barrier it rides on. *)

open Types
module Cluster = Dsm_sim.Cluster
module Config = Dsm_sim.Config
module Stats = Dsm_sim.Stats
module Net = Dsm_net.Net
module Range = Dsm_rsd.Range
module Page_table = Dsm_mem.Page_table
module Prof = Dsm_prof.Prof

let name = "adaptive"

let ap sys page =
  match Hashtbl.find_opt sys.adapt page with
  | Some a -> a
  | None ->
      let a =
        {
          ap_proto = P_lrc;
          ap_readers = Pset.empty;
          ap_writers = Pset.empty;
          ap_last_writer = -1;
          ap_migrations = 0;
        }
      in
      Hashtbl.replace sys.adapt page a;
      a

let proto_of sys page =
  match Hashtbl.find_opt sys.adapt page with
  | Some a -> a.ap_proto
  | None -> P_lrc

let observe_read sys p page =
  let a = ap sys page in
  a.ap_readers <- Pset.add p a.ap_readers

let observe_write sys p page =
  let a = ap sys page in
  a.ap_writers <- Pset.add p a.ap_writers

let observe sys p access page =
  match access with
  | Read -> observe_read sys p page
  | Write | Read_write | Write_all | Read_write_all -> observe_write sys p page

(* {1 Fault dispatch} *)

let read_fault sys p page =
  observe_read sys p page;
  match proto_of sys page with
  | P_lrc -> Protocol.read_fault sys p page
  | P_hlrc -> Hlrc.read_fault sys p page
  | P_inval -> Invalidate.read_fault sys p page

let write_fault sys p page =
  observe_write sys p page;
  match proto_of sys page with
  | P_lrc -> Protocol.write_fault sys p page
  | P_hlrc -> Hlrc.write_fault sys p page
  | P_inval -> Invalidate.write_fault sys p page

(* {1 Release}

   One shared interval close (write notices for every LRC/HLRC-mode page
   dirtied — invalidate-mode pages never enter the dirty set), then an
   eager home flush for just the pages currently under HLRC. *)

let release sys p =
  match Protocol.release sys p with
  | None -> None
  | Some (seq, pages) as entry ->
      let hpages = List.filter (fun g -> proto_of sys g = P_hlrc) pages in
      if hpages <> [] then Hlrc.flush_pages sys p ~seq hpages;
      entry

(* {1 Classification and switching} *)

(* A page may only change protocol when no processor holds transitional
   state for it: an outstanding asynchronous fetch, a partially pushed
   copy awaiting its barrier rollback, an open write interval, or a live
   WRITE_ALL window. *)
let switchable sys page =
  let ok = ref true in
  Array.iter
    (fun st ->
      if Hashtbl.mem st.pending_async page then ok := false;
      if List.exists (fun (g, _, _) -> g = page) st.partial_push then
        ok := false;
      if Hashtbl.mem st.dirty page then ok := false;
      (match Hashtbl.find_opt st.meta page with
      | Some m -> if not (Range.is_empty m.write_all) then ok := false
      | None -> ());
      let pg = Page_table.get st.pt page in
      if pg.Page_table.prot = Page_table.Read_write then ok := false)
    sys.states;
  !ok

(* Square up one processor's LRC watermarks after its copy was made
   current by a switch. *)
let mark_current sys q page =
  let m = Protocol.meta sys.states.(q) ~nprocs:sys.nprocs page in
  List.iter
    (fun w ->
      let kv = Wmap.get m.known w in
      if kv > Wmap.get m.applied w then Wmap.set m.applied w kv;
      Diff_store.note_applied sys.store ~writer:w ~page ~by:q
        ~seq:(Wmap.get m.applied w))
    (Wmap.union_keys m.known m.applied)

let switch sys page a ~to_ ~owner:o ~epoch =
  (* 1. Bring the owner current through the ordinary traced protocol
     paths. The owner must first learn this epoch's write notices — its
     own departure pull has not run yet (we are inside the last arriver's
     turn) — and any lazily deferred diff for the page must be
     materialized so no twin survives the switch. *)
  ignore (Protocol.pull_notices sys o ~upto:sys.barrier.departure_vc);
  for w = 0 to sys.nprocs - 1 do
    let pg = Page_table.get sys.states.(w).pt page in
    if pg.Page_table.twin <> None then begin
      let c = Protocol.materialize sys ~writer:w ~page in
      if c > 0.0 then Cluster.charge sys.cluster w c
    end
  done;
  let src =
    match a.ap_proto with
    | P_inval -> (
        (* the invalidate owner's copy is current by protocol invariant *)
        match Hashtbl.find_opt sys.iv_dir page with
        | Some e -> e.iv_owner
        | None -> o)
    | P_lrc ->
        Protocol.fetch_and_apply sys o [ page ] ~mode:Protocol.Prepaid ();
        o
    | P_hlrc ->
        Hlrc.fetch_pages sys o [ page ] ~mode:Protocol.Prepaid;
        o
  in
  mark_current sys src page;
  (* 2. The switch point: resets the checker's per-protocol tracking. *)
  let pstats = sys.cluster.Cluster.stats.(src) in
  pstats.Stats.proto_switches <- pstats.Stats.proto_switches + 1;
  if sys.trace <> None then
    Protocol.emit sys src
      (Dsm_trace.Event.Proto_switch
         { page; proto = page_proto_name to_; owner = o; epoch });
  (* 3. Install the new protocol's state. *)
  (match to_ with
  | P_inval ->
      Hashtbl.remove sys.homes page;
      Hashtbl.replace sys.iv_dir page
        { iv_owner = src; iv_excl = false; iv_sharers = [ src ] };
      for q = 0 to sys.nprocs - 1 do
        let pg = Page_table.get sys.states.(q).pt page in
        pg.Page_table.prot <-
          (if q = src then Page_table.Read_only else Page_table.No_access)
      done
  | P_lrc | P_hlrc ->
      (* distribute the current copy to every processor — exact at
         quiescence: it includes every closed interval — so the new
         protocol starts with no history to fetch (old diffs may already
         have been pruned or superseded by invalidate-era writes) *)
      Hashtbl.remove sys.iv_dir page;
      for q = 0 to sys.nprocs - 1 do
        if q <> src then begin
          let spg = Page_table.get sys.states.(src).pt page in
          let qpg = Page_table.get sys.states.(q).pt page in
          Bytes.blit spg.Page_table.data 0 qpg.Page_table.data 0 sys.page_size;
          (match qpg.Page_table.twin with
          | Some twin ->
              Bytes.blit spg.Page_table.data 0 twin 0 sys.page_size
          | None -> ());
          mark_current sys q page;
          if sys.trace <> None then
            Protocol.emit sys q
              (Dsm_trace.Event.Fetch_done { page; full = true })
        end;
        let qpg = Page_table.get sys.states.(q).pt page in
        if qpg.Page_table.prot = Page_table.No_access then
          qpg.Page_table.prot <- Page_table.Read_only
      done;
      (match to_ with
      | P_hlrc ->
          Hashtbl.replace sys.homes page o;
          (* every released interval is reflected in the distributed copy:
             no writer must ever re-flush pre-switch history *)
          for w = 0 to sys.nprocs - 1 do
            let m = Protocol.meta sys.states.(w) ~nprocs:sys.nprocs page in
            let own = Vc.get sys.states.(w).vc w in
            if own > m.home_flushed then m.home_flushed <- own
          done
      | P_lrc | P_inval -> Hashtbl.remove sys.homes page));
  a.ap_proto <- to_

let reclassify sys ~epoch =
  let pages =
    Hashtbl.fold (fun g _ acc -> g :: acc) sys.adapt [] |> List.sort compare
  in
  List.iter
    (fun page ->
      let a = Hashtbl.find sys.adapt page in
      let readers = a.ap_readers
      and writers = a.ap_writers in
      let users = Pset.union readers writers in
      let nw = Pset.cardinal writers in
      let decision =
        if nw = 0 then None (* untouched / read-only window *)
        else if nw = 1 && Pset.equal users writers then
          Some (P_inval, Pset.min_elt writers)
        else if nw = 1 then Some (P_hlrc, Pset.min_elt writers)
        else Some (P_lrc, if a.ap_last_writer >= 0 then a.ap_last_writer else 0)
      in
      if nw = 1 then begin
        let w = Pset.min_elt writers in
        if a.ap_last_writer >= 0 && a.ap_last_writer <> w then
          a.ap_migrations <- a.ap_migrations + 1;
        a.ap_last_writer <- w
      end;
      a.ap_readers <- Pset.empty;
      a.ap_writers <- Pset.empty;
      match decision with
      | Some (np, o) when np <> a.ap_proto && switchable sys page ->
          switch sys page a ~to_:np ~owner:o ~epoch
      | _ -> ())
    pages

(* Runs once per barrier, in the last arriver's turn, at quiescence. *)
let plan_bcast sys ~epoch ~departure_clock:_ _entries =
  sys.adapt_tick <- sys.adapt_tick + 1;
  let w = max 1 sys.cluster.Cluster.cfg.Config.adapt_window in
  if sys.adapt_tick >= w then begin
    sys.adapt_tick <- 0;
    reclassify sys ~epoch
  end;
  None

(* {1 Synchronization} *)

(* Answer one piggy-backed section request, each page through its current
   protocol; [at] is when the responses travel (barrier departure or lock
   grant). *)
let satisfy_req sys p ~at req =
  let pages = Range.pages ~page_size:sys.page_size req.wr_ranges in
  List.iter (observe sys p req.wr_access) pages;
  let inval_pages = List.filter (fun g -> proto_of sys g = P_inval) pages in
  let hlrc_pages = List.filter (fun g -> proto_of sys g = P_hlrc) pages in
  let lrc_pages = List.filter (fun g -> proto_of sys g = P_lrc) pages in
  (match req.wr_access with
  | Read -> List.iter (Invalidate.ensure_shared sys p) inval_pages
  | Write | Read_write | Write_all | Read_write_all ->
      List.iter (Invalidate.ensure_excl sys p) inval_pages);
  if lrc_pages <> [] then
    Protocol.fetch_and_apply sys p lrc_pages ~mode:(Protocol.Piggyback at) ();
  if hlrc_pages <> [] then
    Hlrc.fetch_pages sys p hlrc_pages ~mode:(Protocol.Piggyback at);
  let rest =
    List.fold_left
      (fun acc g ->
        Range.union acc
          (Range.of_interval (g * sys.page_size) ((g + 1) * sys.page_size)))
      Range.empty (lrc_pages @ hlrc_pages)
  in
  let rest = Range.inter req.wr_ranges rest in
  if not (Range.is_empty rest) then
    Protocol.apply_access_state sys p ~ranges:rest ~access:req.wr_access

let handle_wsync sys p ~epoch:_ ~departure_clock ~my_reqs =
  List.iter (satisfy_req sys p ~at:departure_clock) my_reqs

let barrier t = Sync_ops.barrier_with ~release ~plan_bcast ~handle_wsync t

let answer_wsync sys p ~grantor:_ ~grant_ready req =
  satisfy_req sys p ~at:grant_ready req

let lock_acquire t lid = Sync_ops.lock_acquire_with ~answer_wsync t lid
let lock_release t lid = Sync_ops.lock_release_with ~release t lid

(* {1 The augmented interface} *)

let validate t ~async sections access =
  Prof.enter Prof.Sync;
  let sys = t.sys
  and p = t.p in
  let pstats = Types.stats t in
  pstats.Stats.validates <- pstats.Stats.validates + 1;
  let ranges = Validate.ranges_of_sections sections in
  let pages = Range.pages ~page_size:sys.page_size ranges in
  if sys.trace <> None then
    Protocol.emit sys p
      (Dsm_trace.Event.Validate
         {
           access = access_to_string access;
           npages = List.length pages;
           async;
           w_sync = false;
         });
  List.iter (observe sys p access) pages;
  let inval_pages = List.filter (fun g -> proto_of sys g = P_inval) pages in
  let hlrc_pages = List.filter (fun g -> proto_of sys g = P_hlrc) pages in
  let lrc_pages = List.filter (fun g -> proto_of sys g = P_lrc) pages in
  (* invalidate-mode pages: a directory transaction is always synchronous
     and leaves nothing for a fault handler to finish *)
  (match access with
  | Read -> List.iter (Invalidate.ensure_shared sys p) inval_pages
  | Write | Read_write | Write_all | Read_write_all ->
      List.iter (Invalidate.ensure_excl sys p) inval_pages);
  let sub proto_pages =
    Range.inter ranges
      (List.fold_left
         (fun acc g ->
           Range.union acc
             (Range.of_interval (g * sys.page_size) ((g + 1) * sys.page_size)))
         Range.empty proto_pages)
  in
  let per_proto fetch afetch proto_pages =
    if proto_pages <> [] then
      match access with
      | Read | Write | Read_write ->
          if async then afetch proto_pages
          else begin
            fetch proto_pages;
            Protocol.apply_access_state sys p ~ranges:(sub proto_pages)
              ~access
          end
      | Write_all ->
          Protocol.apply_access_state sys p ~ranges:(sub proto_pages) ~access
      | Read_write_all ->
          if async then begin
            afetch proto_pages;
            Protocol.record_write_all sys p (sub proto_pages)
          end
          else begin
            fetch proto_pages;
            Protocol.apply_access_state sys p ~ranges:(sub proto_pages)
              ~access
          end
  in
  per_proto
    (fun pgs -> Protocol.fetch_and_apply sys p pgs ~mode:Protocol.Rpc ())
    (fun pgs -> Protocol.async_fetch sys p pgs)
    lrc_pages;
  per_proto
    (fun pgs -> Hlrc.fetch_pages sys p pgs ~mode:Protocol.Rpc)
    (fun pgs -> Hlrc.async_fetch sys p pgs)
    hlrc_pages;
  Prof.exit Prof.Sync

let validate_w_sync t ~async sections access =
  Validate.validate_w_sync t ~async sections access

let push t ~read_sections ~write_sections =
  let sys = t.sys
  and p = t.p in
  List.iter
    (fun g -> observe_write sys p g)
    (Range.pages ~page_size:sys.page_size
       (Validate.ranges_of_sections write_sections.(p)));
  List.iter
    (fun g -> observe_read sys p g)
    (Range.pages ~page_size:sys.page_size
       (Validate.ranges_of_sections read_sections.(p)));
  Validate.push_with ~release
    ~is_inval:(fun g -> proto_of sys g = P_inval)
    ~on_inval:(Invalidate.push_received sys p)
    t ~read_sections ~write_sections

(** Re-export of {!Dsm_util.Wmap} — see there for documentation. The
    sparse per-writer watermark map moved to [Dsm_util] so the trace
    checker can share it; run-time code keeps the short [Wmap] name. *)

include module type of struct
  include Dsm_util.Wmap
end

(** Versioned protocol-placement plans.

    The artifact connecting [dsm_lint plan] (which classifies every
    shared page's sharing pattern statically and writes a plan) to
    [dsm_run --plan] (which seeds the adaptive backend's initial
    per-page protocol and the HLRC home map from it, replacing the
    online warm-up where the prediction is exact).

    On disk a plan is JSONL: a header object
    [{"plan":"dsm-protocol-plan","version":1,...}] followed by one flat
    object per directive. Page numbers are absolute simulated-heap page
    numbers ([hi_page] inclusive): the bump allocator is deterministic,
    so the compile-time layout replica and the run-time layout agree. *)

val magic : string
val version : int

type proto = Lrc | Hlrc | Inval

val proto_name : proto -> string
val proto_of_string : string -> proto option

type confidence =
  | Exact  (** every contributing access summary was exact *)
  | Inexact  (** some summary was widened (e.g. under an [If_lt]) *)

val confidence_name : confidence -> string

type directive = {
  array : string;
  lo_page : int;
  hi_page : int;  (** inclusive *)
  proto : proto;
  owner : int;  (** home (hlrc) / holder (inval); -1 under lrc *)
  confidence : confidence;
  reason : string;
  est_lrc : float;  (** cost model: estimated messages/epoch under LRC *)
  est_hlrc : float;
  est_inval : float;
}

type t = {
  program : string;
  nprocs : int;
  page_size : int;
  level : string;
  directives : directive list;
}

val validate : t -> (t, string) result
(** Structural checks (page ordering, owner ranges, proto/owner
    agreement). Error messages follow {!Dsm_net.Plan.field_error}'s
    "field: value outside accepted range" shape. *)

val write : out_channel -> t -> unit
val save : string -> t -> unit

val of_lines : string list -> (t, string) result
(** Parse header + directive lines (blank lines already removed);
    runs {!validate}. *)

val load : string -> (t, string) result
(** Read a plan file; all failures (including I/O) become [Error]. *)

val n_pages : t -> int
(** Total pages covered by all directives. *)

val exact_directives : t -> directive list

val find : t -> int -> directive option
(** Directive covering a page, if any. *)

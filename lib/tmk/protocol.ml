(* Core lazy-release-consistency protocol operations: release (eager diff
   creation), write-notice application (invalidation), access-miss handling,
   and diff fetching with the various charging modes used by the base and
   augmented run-times. *)

open Types
module Cluster = Dsm_sim.Cluster
module Config = Dsm_sim.Config
module Stats = Dsm_sim.Stats
module Net = Dsm_net.Net
module Page_table = Dsm_mem.Page_table
module Diff = Dsm_mem.Diff
module Range = Dsm_rsd.Range
module Prof = Dsm_prof.Prof

let debug = Sys.getenv_opt "DSM_DEBUG" <> None

(* Trace emission. Call sites guard with [sys.trace <> None] BEFORE
   building the event payload, so a disabled trace allocates nothing.
   Emission reads the clock and vector clock but never charges: tracing
   cannot perturb the cost model. *)
let emit sys p kind =
  match sys.trace with
  | None -> ()
  | Some sink ->
      Dsm_trace.Sink.emit sink ~proc:p
        ~time:(Cluster.time sys.cluster p)
        ~vc:(Vc.copy sys.states.(p).vc)
        kind

(* The current interval's write set, as a sorted page list (dirty is a
   hash set; every consumer needs a deterministic order). *)
let dirty_pages st = Hashtbl.fold (fun page () acc -> page :: acc) st.dirty []
let in_dirty st page = Hashtbl.mem st.dirty page
let mark_dirty st page =
  if not (Hashtbl.mem st.dirty page) then Hashtbl.replace st.dirty page ()

let meta st ~nprocs:_ page =
  match Hashtbl.find_opt st.meta page with
  | Some m -> m
  | None ->
      let m =
        {
          applied = Wmap.create ();
          known = Wmap.create ();
          write_all = Range.empty;
          lazy_hi = 0;
          lazy_vcsum = 0;
          home_flushed = 0;
          ob_stale = Pset.empty;
        }
      in
      Hashtbl.replace st.meta page m;
      m

(* {1 Object granularity}

   Pages inside a {!Tmk.Alloc.objs} region hold packed fixed-size objects,
   and the protocol tracks staleness per object slot (page offset divided
   by the object size) on top of the per-page watermarks: releases record
   which slots each interval wrote ([sys.obj_extents]), applied notices
   grow the receiver's [ob_stale] slot set, and a validate whose objects
   are all disjoint from [ob_stale] may skip the fetch entirely — the
   false-sharing remedy of sub-page allocation. Every hook is guarded by
   [sys.has_objs], so the paper's kernels execute bit-identically. *)

let obj_all_slots sys osz =
  Pset.of_list (List.init (sys.page_size / osz) Fun.id)

(* Slots of [page] (object size [osz]) covered by [ranges]; a partially
   covered slot counts as covered. *)
let obj_slots_of_ranges sys ~page ~osz ranges =
  let base = page * sys.page_size in
  let slots = ref Pset.empty in
  Range.iter
    (Range.clip_to_page ~page_size:sys.page_size ~page ranges)
    (fun ~lo ~hi ->
      for s = (lo - base) / osz to (hi - 1 - base) / osz do
        slots := Pset.add s !slots
      done);
  !slots

(* Group a sorted page list into runs of consecutive page numbers; protection
   operations cost one call per contiguous run. *)
let runs_of_pages pages =
  match List.sort_uniq compare pages with
  | [] -> []
  | p0 :: rest ->
      let rec go start len = function
        | [] -> [ (start, len) ]
        | p :: rest when p = start + len -> go start (len + 1) rest
        | p :: rest -> (start, len) :: go p 1 rest
      in
      go p0 1 rest

let protect_runs sys p pages =
  let st = sys.cluster.Cluster.stats.(p) in
  List.iter
    (fun (_, len) ->
      st.Stats.mprotects <- st.Stats.mprotects + 1;
      Cluster.mm_op sys.cluster p ~npages:len)
    (runs_of_pages pages)

(* {1 Release}

   Lazy diffing, as in TreadMarks: a release starts a new interval and
   records write notices for the pages dirtied in the closing one. The pages
   are write-protected (so the next interval's writes are detected again),
   but their twins are kept and no diff is computed — that work happens in
   {!materialize} when a remote processor first requests the page's
   modifications, and the one diff covers every interval accumulated since
   the twin was made. *)
let release_pages sys p =
  let st = sys.states.(p) in
  match dirty_pages st with
  | [] -> None
  | dirty ->
      let seq = Vc.get st.vc p + 1 in
      Vc.set st.vc p seq;
      let pages = List.sort_uniq compare dirty in
      let vcsum = Vc.sum st.vc in
      List.iter
        (fun page ->
          let m = meta st ~nprocs:sys.nprocs page in
          (* A materialized diff covers every interval since the last
             materialization; it is stamped with its FIRST interval's clock.
             Applying spans at their head position is order-correct: the
             forced materialization on foreign notices guarantees that no
             other writer's interval overlapping this page is ordered after
             the span's head, except ones whose own (head) stamps are
             larger. *)
          if m.lazy_hi = 0 then m.lazy_vcsum <- vcsum;
          m.lazy_hi <- seq;
          Wmap.set m.applied p seq;
          Wmap.set m.known p seq;
          let pg = Page_table.get st.pt page in
          if pg.Page_table.prot = Page_table.Read_write then
            pg.Page_table.prot <- Page_table.Read_only)
        pages;
      protect_runs sys p pages;
      (* object-granularity regions: record which slots this interval
         wrote, so receivers of its write notice can grow their stale-slot
         sets instead of assuming the whole page changed. The twin
         comparison over-approximates (it sees every write since the twin
         was made, possibly spanning intervals) — safe: a larger extent
         only forces more fetching, never less. *)
      if sys.has_objs then
        List.iter
          (fun page ->
            match Hashtbl.find_opt sys.obj_regions page with
            | None -> ()
            | Some osz ->
                let m = meta st ~nprocs:sys.nprocs page in
                let pg = Page_table.get st.pt page in
                let slots =
                  if not (Range.is_empty m.write_all) then
                    obj_slots_of_ranges sys ~page ~osz m.write_all
                  else
                    match pg.Page_table.twin with
                    | Some twin ->
                        let acc = ref Pset.empty in
                        for s = 0 to (sys.page_size / osz) - 1 do
                          let off = s * osz in
                          let differs = ref false in
                          for i = off to off + osz - 1 do
                            if
                              Bytes.unsafe_get twin i
                              <> Bytes.unsafe_get pg.Page_table.data i
                            then differs := true
                          done;
                          if !differs then acc := Pset.add s !acc
                        done;
                        !acc
                    | None -> obj_all_slots sys osz
                in
                Hashtbl.replace sys.obj_extents (p, seq, page) slots)
          pages;
      Hashtbl.reset st.dirty;
      Ilog.add sys.logs.(p) ~seq pages;
      if sys.trace <> None then
        emit sys p (Dsm_trace.Event.Notice_send { seq; pages });
      Some (seq, pages)

let release sys p =
  Prof.enter Prof.Protocol;
  let r = release_pages sys p in
  Prof.exit Prof.Protocol;
  r

(* Create the pending diff of [writer] for [page], covering every interval
   released since the last materialization (TreadMarks creates one diff for
   the accumulated modifications). Cleans the writer's page: twin dropped,
   page write-protected and removed from the dirty list, so the next write
   faults again. The cost is charged to the writer (the work happens in its
   request-interrupt handler); the returned cost lets the caller extend the
   request's service time. *)
let materialize sys ~writer ~page =
  let st = sys.states.(writer) in
  let m = meta st ~nprocs:sys.nprocs page in
  if m.lazy_hi = 0 then 0.0
  else begin
    let pstats = sys.cluster.Cluster.stats.(writer) in
    let cfg = sys.cluster.Cluster.cfg in
    let pg = Page_table.get st.pt page in
    let base_addr = page * sys.page_size in
    let cost = ref 0.0 in
    let diff, supersedes =
      if not (Range.is_empty m.write_all) then begin
        (* WRITE_ALL family: the validated ranges stand in verbatim; a plain
           copy, no twin comparison *)
        let segs = ref Diff.empty in
        Range.iter m.write_all (fun ~lo ~hi ->
            let off = lo - base_addr
            and len = hi - lo in
            segs :=
              Diff.merge !segs
                (Diff.of_range pg.Page_table.data ~off ~len)
                ~page_size:sys.page_size);
        cost :=
          !cost
          +. (cfg.Config.twin_per_byte_us *. float_of_int (Range.size m.write_all));
        ( !segs,
          Range.covers m.write_all ~lo:base_addr
            ~hi:(base_addr + sys.page_size) )
      end
      else begin
        match pg.Page_table.twin with
        | Some twin ->
            pstats.Stats.diffs_created <- pstats.Stats.diffs_created + 1;
            cost :=
              !cost
              +. (cfg.Config.diff_create_per_byte_us
                 *. float_of_int sys.page_size);
            (Diff.create ~twin ~current:pg.Page_table.data, false)
        | None ->
            (* write-enabled without twin happens only under WRITE_ALL *)
            (Diff.full pg.Page_table.data, true)
      end
    in
    if not (Diff.is_empty diff) then
      Diff_store.add sys.store ~writer ~page ~seq:m.lazy_hi
        ~vcsum:m.lazy_vcsum ~diff ~supersedes;
    Diff_store.note_applied sys.store ~writer ~page ~by:writer ~seq:m.lazy_hi;
    if sys.trace <> None then
      emit sys writer
        (Dsm_trace.Event.Diff_create
           {
             page;
             seq = m.lazy_hi;
             bytes = Diff.size_bytes diff;
             write_all = not (Range.is_empty m.write_all);
           });
    m.lazy_hi <- 0;
    if in_dirty st page then begin
      (* The writer is still modifying this page in its current (unreleased)
         interval. The diff above conservatively includes those bytes; keep
         the twin and the WRITE_ALL marker so that the next materialization
         re-covers everything since, and leave the page writable. *)
      ()
    end
    else begin
      m.write_all <- Range.empty;
      Page_table.drop_twin pg;
      (* write-protect; never upgrade an invalidated page back to readable *)
      if pg.Page_table.prot = Page_table.Read_write then
        pg.Page_table.prot <- Page_table.Read_only;
      pstats.Stats.mprotects <- pstats.Stats.mprotects + 1;
      let mm =
        cfg.Config.mm_base_us
        +. (cfg.Config.mm_per_inuse_page_us
           *. float_of_int sys.cluster.Cluster.pages_in_use)
        +. cfg.Config.mm_per_op_page_us
      in
      cost := !cost +. mm
    end;
    (* the caller accounts the cost: as request service time (the work runs
       in the writer's interrupt handler) *)
    !cost
  end

(* {1 Write notices} *)

(* Record notices of [writer]'s interval [seq] over [pages]; invalidate any
   local copy that becomes stale.

   When a notice arrives for a page with pending un-materialized local
   modifications, the local diff is created first (as in TreadMarks):
   otherwise a later accumulated diff would span the other writer's
   ordered-in-between interval and could be applied out of order. *)
let apply_notice sys p ~writer ~seq ~pages =
  if writer <> p then begin
    let st = sys.states.(p) in
    let invalidated = ref [] in
    List.iter
      (fun page ->
        let m = meta st ~nprocs:sys.nprocs page in
        if seq > Wmap.get m.known writer then Wmap.set m.known writer seq;
        if Wmap.get m.known writer > Wmap.get m.applied writer then begin
          (if sys.has_objs then
             match Hashtbl.find_opt sys.obj_regions page with
             | None -> ()
             | Some osz ->
                 (* grow the stale-slot set by the interval's recorded
                    extent; a missing extent (foreign pre-allocation
                    history) conservatively stales the whole page *)
                 let slots =
                   match Hashtbl.find_opt sys.obj_extents (writer, seq, page)
                   with
                   | Some s -> s
                   | None -> obj_all_slots sys osz
                 in
                 m.ob_stale <- Pset.union m.ob_stale slots);
          if m.lazy_hi > 0 then
            Cluster.charge sys.cluster p (materialize sys ~writer:p ~page);
          let pg = Page_table.get st.pt page in
          if pg.Page_table.prot <> Page_table.No_access then begin
            pg.Page_table.prot <- Page_table.No_access;
            invalidated := page :: !invalidated
          end
        end;
        if sys.trace <> None then
          emit sys p
            (Dsm_trace.Event.Notice_apply
               {
                 writer;
                 seq;
                 page;
                 invalidated =
                   (Page_table.get st.pt page).Page_table.prot
                   = Page_table.No_access;
               }))
      pages;
    if !invalidated <> [] then protect_runs sys p !invalidated
  end

(* Apply, from the global interval logs, every notice of every processor [q]
   with [vc_me.(q) < seq <= upto.(q)]; advance the vector clock. Returns the
   number of notices applied (for message-size accounting). *)
let pull_notices sys p ~upto =
  Prof.enter Prof.Protocol;
  let st = sys.states.(p) in
  let count = ref 0 in
  for q = 0 to sys.nprocs - 1 do
    if q <> p && Vc.get upto q > Vc.get st.vc q then begin
      let lo = Vc.get st.vc q
      and hi = Vc.get upto q in
      Ilog.iter_desc sys.logs.(q) ~lo ~hi (fun seq pages ->
          count := !count + List.length pages;
          (* object-granularity pages: the per-slot extent travels with
             the notice, modeled as one extra notice-sized entry per page *)
          if sys.has_objs then
            List.iter
              (fun g -> if Hashtbl.mem sys.obj_regions g then incr count)
              pages;
          apply_notice sys p ~writer:q ~seq ~pages);
      Vc.set st.vc q hi
    end
  done;
  Prof.exit Prof.Protocol;
  !count

(* {1 Diff fetching} *)

type fetch_mode =
  | Rpc  (** on-demand request/response pair(s), one per writer *)
  | Prepaid  (** data already charged (async response consumed at a fault) *)
  | Piggyback of float
      (** one data message per writer, sent at the given time (responses to
          section requests piggy-backed on a synchronization operation) *)

(* Compute which writers' diffs [p] is missing for [pages], materialize the
   pending lazy diffs (recording the cost per writer), and apply supersede
   pruning. Shared by the synchronous, piggy-backed and asynchronous fetch
   paths. [only_via r] restricts to diffs processor [r] holds locally (its
   own, or ones it has applied). *)
let gather_needs sys p pages ?only_via () =
  let st = sys.states.(p) in
  let by_writer : (int, (int * int * int) list) Hashtbl.t = Hashtbl.create 8 in
  let mat_costs : (int, float ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun page ->
      let m = meta st ~nprocs:sys.nprocs page in
      let needed = ref [] in
      (* ascending scan of the known watermarks, accumulated in reverse:
         [needed] ends up ascending, exactly like the dense loop it
         replaces (a writer with no known entry cannot be stale) *)
      Wmap.iter
        (fun q kv ->
          if q <> p && kv > Wmap.get m.applied q then begin
            let keep =
              match only_via with
              | None -> true
              | Some r ->
                  q = r
                  || Dsm_mem.Page_table.find sys.states.(r).pt page <> None
                     && Wmap.get
                          (meta sys.states.(r) ~nprocs:sys.nprocs page).applied
                          q
                        >= kv
            in
            if keep then needed := q :: !needed
          end)
        m.known;
      needed := List.rev !needed;
      if !needed <> [] then begin
        (* materialize the pending lazy diffs; the cost is charged as
           request service time at each writer *)
        List.iter
          (fun q ->
            let c = materialize sys ~writer:q ~page in
            if c > 0.0 then begin
              let cell =
                match Hashtbl.find_opt mat_costs q with
                | Some r -> r
                | None ->
                    let r = ref 0.0 in
                    Hashtbl.replace mat_costs q r;
                    r
              in
              cell := !cell +. c
            end)
          !needed;
        (* supersede pruning: if the happens-latest candidate diff
           overwrites the whole page, every older diff of the page is dead
           data — fetch only from that writer (this is what kills the IS
           diff-accumulation under READ&WRITE_ALL) *)
        let chosen =
          if
            List.length !needed < 2
            || not sys.cluster.Cluster.cfg.Config.enable_supersede
          then !needed
          else begin
            let best = ref None in
            List.iter
              (fun q ->
                match Diff_store.latest_vcsum sys.store ~writer:q ~page with
                | Some v -> (
                    match !best with
                    | Some (_, bv) when bv >= v -> ()
                    | _ -> best := Some (q, v))
                | None -> ())
              !needed;
            match !best with
            | Some (qstar, _)
              when Diff_store.latest_full_page sys.store ~writer:qstar ~page
                   <> None ->
                List.iter
                  (fun q ->
                    if q <> qstar then begin
                      (* pruned history counts as applied without moving
                         data; the watermark advance is still an event *)
                      if sys.trace <> None then
                        emit sys p
                          (Dsm_trace.Event.Diff_fetch
                             {
                               writer = q;
                               page;
                               after = Wmap.get m.applied q;
                               upto = Wmap.get m.known q;
                             });
                      Wmap.set m.applied q (Wmap.get m.known q);
                      Diff_store.note_applied sys.store ~writer:q ~page ~by:p
                        ~seq:(Wmap.get m.applied q)
                    end)
                  !needed;
                [ qstar ]
            | _ -> !needed
          end
        in
        if debug then
          Format.eprintf "[p%d] fetch page %d: needed=%s chosen=%s applied=%s known=%s@."
            p page
            (String.concat "," (List.map string_of_int !needed))
            (String.concat "," (List.map string_of_int chosen))
            (String.concat ","
               (List.map
                  (fun q -> Printf.sprintf "%d:%d" q (Wmap.get m.applied q))
                  !needed))
            (String.concat ","
               (List.map
                  (fun q -> Printf.sprintf "%d:%d" q (Wmap.get m.known q))
                  !needed));
        List.iter
          (fun q ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt by_writer q) in
            Hashtbl.replace by_writer q
              ((page, Wmap.get m.applied q, Wmap.get m.known q) :: prev))
          chosen
      end)
    (List.sort_uniq compare pages);
  (by_writer, mat_costs)

(* Fetch and apply every missing diff for [pages], grouped by writer (the
   communication-aggregation optimization uses a many-page [pages] list; the
   base run-time calls this with a single page). *)
let fetch_and_apply sys p pages ~mode ?only_via () =
  Prof.enter Prof.Protocol;
  let st = sys.states.(p) in
  let pstats = sys.cluster.Cluster.stats.(p) in
  let cfg = sys.cluster.Cluster.cfg in
  let by_writer, mat_costs = gather_needs sys p pages ?only_via () in
  let units_by_page : (int, Diff_store.unit_to_apply list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let applied_bytes = ref 0 in
  Hashtbl.iter
    (fun q reqs ->
      let total_bytes = ref 0
      and total_ndiffs = ref 0 in
      let mat_cost =
        match Hashtbl.find_opt mat_costs q with Some r -> r | None -> ref 0.0
      in
      List.iter
        (fun (page, after, upto) ->
          let r = Diff_store.fetch sys.store ~writer:q ~page ~after ~upto in
          total_bytes := !total_bytes + r.Diff_store.charge_bytes;
          total_ndiffs := !total_ndiffs + r.Diff_store.ndiffs;
          let cell =
            match Hashtbl.find_opt units_by_page page with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace units_by_page page l;
                l
          in
          cell := r.Diff_store.units @ !cell;
          let m = meta st ~nprocs:sys.nprocs page in
          let high =
            List.fold_left
              (fun acc u -> max acc u.Diff_store.upto_seq)
              upto r.Diff_store.units
          in
          if sys.trace <> None then
            emit sys p
              (Dsm_trace.Event.Diff_fetch { writer = q; page; after; upto = high });
          Wmap.set m.applied q (max (Wmap.get m.applied q) high);
          Diff_store.note_applied sys.store ~writer:q ~page ~by:p
            ~seq:(Wmap.get m.applied q))
        reqs;
      applied_bytes := !applied_bytes + !total_bytes;
      pstats.Stats.diffs_applied <- pstats.Stats.diffs_applied + !total_ndiffs;
      pstats.Stats.diff_bytes_applied <-
        pstats.Stats.diff_bytes_applied + !total_bytes;
      let resp_bytes = !total_bytes + (8 * !total_ndiffs) in
      match mode with
      | Rpc ->
          Net.rpc sys.net ~src:p ~dst:q
            ~req_bytes:(16 * List.length reqs)
            ~resp_bytes
            ~service:
              (cfg.Config.diff_service_us +. !mat_cost
              +. (2.0 *. float_of_int !total_ndiffs))
      | Prepaid -> Cluster.charge sys.cluster q !mat_cost
      | Piggyback at ->
          Cluster.charge sys.cluster q !mat_cost;
          if resp_bytes > 0 then begin
            let qstats = sys.cluster.Cluster.stats.(q) in
            qstats.Stats.messages <- qstats.Stats.messages + 1;
            qstats.Stats.bytes <- qstats.Stats.bytes + resp_bytes;
            (* sender-side cost, stolen from q's cpu *)
            Cluster.charge sys.cluster q
              (cfg.Config.msg_overhead_us
              +. (cfg.Config.per_byte_us *. float_of_int resp_bytes));
            Cluster.sync_clock sys.cluster p
              (at
              +. (cfg.Config.per_byte_us *. float_of_int resp_bytes)
              +. cfg.Config.wire_latency_us +. cfg.Config.msg_overhead_us)
          end)
    by_writer;
  (* Apply units page by page, in an order consistent with happens-before. *)
  Hashtbl.iter
    (fun page units ->
      let pg = Page_table.get st.pt page in
      let sorted =
        List.sort
          (fun a b -> compare a.Diff_store.order b.Diff_store.order)
          !units
      in
      List.iter
        (fun u ->
          if debug then
            Format.eprintf "[p%d] apply page %d: writer=%d order=%d upto=%d bytes=%d@."
              p page u.Diff_store.writer u.Diff_store.order
              u.Diff_store.upto_seq
              (Diff.size_bytes u.Diff_store.payload);
          if sys.trace <> None then
            emit sys p
              (Dsm_trace.Event.Diff_apply
                 {
                   writer = u.Diff_store.writer;
                   page;
                   order = u.Diff_store.order;
                   upto_seq = u.Diff_store.upto_seq;
                   bytes = Diff.size_bytes u.Diff_store.payload;
                 });
          Diff.apply u.Diff_store.payload pg.Page_table.data;
          match pg.Page_table.twin with
          | Some twin -> Diff.apply u.Diff_store.payload twin
          | None -> ())
        sorted)
    units_by_page;
  Cluster.charge sys.cluster p
    (cfg.Config.diff_apply_per_byte_us *. float_of_int !applied_bytes);
  (* an object-granularity page whose copy is fully current again sheds
     its stale-slot set (a restricted [only_via] fetch can leave residual
     staleness, so re-check the watermarks rather than clear blindly) *)
  if sys.has_objs then
    List.iter
      (fun page ->
        if Hashtbl.mem sys.obj_regions page then
          match Hashtbl.find_opt st.meta page with
          | Some m when not (Pset.is_empty m.ob_stale) ->
              if
                not
                  (Wmap.exists
                     (fun q kv -> q <> p && kv > Wmap.get m.applied q)
                     m.known)
              then m.ob_stale <- Pset.empty
          | _ -> ())
      (List.sort_uniq compare pages);
  if sys.trace <> None then
    List.iter
      (fun page ->
        emit sys p
          (Dsm_trace.Event.Fetch_done { page; full = only_via = None }))
      (List.sort_uniq compare pages);
  Prof.exit Prof.Protocol

(* Make a page's copy consistent, consuming a pending asynchronous response
   if one covers the page, and paying on-demand requests otherwise. *)
let make_consistent sys p page =
  let st = sys.states.(p) in
  match Hashtbl.find_opt st.pending_async page with
  | Some arrival ->
      Hashtbl.remove st.pending_async page;
      Cluster.sync_clock sys.cluster p arrival;
      fetch_and_apply sys p [ page ] ~mode:Prepaid ()
  | None -> fetch_and_apply sys p [ page ] ~mode:Rpc ()

(* {1 Access misses} *)

let read_fault sys p page =
  Prof.enter Prof.Protocol;
  let st = sys.states.(p) in
  let pstats = sys.cluster.Cluster.stats.(p) in
  pstats.Stats.segv <- pstats.Stats.segv + 1;
  Cluster.mm_op sys.cluster p ~npages:1;
  if sys.trace <> None then
    emit sys p (Dsm_trace.Event.Page_fault { page; write = false; fetch = true });
  make_consistent sys p page;
  let pg = Page_table.get st.pt page in
  pg.Page_table.prot <-
    (if in_dirty st page then Page_table.Read_write else Page_table.Read_only);
  Prof.exit Prof.Protocol

(* {1 Consistency-state actions of the augmented interface}

   [apply_access_state] performs the protection/twin actions of Figure 3 of
   the paper for a validated section, assuming any required data movement has
   already happened. *)

let record_write_all sys p ranges =
  let st = sys.states.(p) in
  List.iter
    (fun page ->
      let m = meta st ~nprocs:sys.nprocs page in
      m.write_all <-
        Range.union m.write_all
          (Range.clip_to_page ~page_size:sys.page_size ~page ranges))
    (Range.pages ~page_size:sys.page_size ranges)

let apply_access_state sys p ~ranges ~access =
  Prof.enter Prof.Protocol;
  let st = sys.states.(p) in
  let pstats = sys.cluster.Cluster.stats.(p) in
  let cfg = sys.cluster.Cluster.cfg in
  let pages = Range.pages ~page_size:sys.page_size ranges in
  let enable ~twin =
    let transitions = ref [] in
    List.iter
      (fun page ->
        let pg = Page_table.get st.pt page in
        if twin && pg.Page_table.twin = None then begin
          Page_table.make_twin pg;
          pstats.Stats.twins <- pstats.Stats.twins + 1;
          if sys.trace <> None then emit sys p (Dsm_trace.Event.Twin { page });
          Cluster.charge sys.cluster p
            (cfg.Config.twin_per_byte_us *. float_of_int sys.page_size)
        end;
        if pg.Page_table.prot <> Page_table.Read_write then begin
          pg.Page_table.prot <- Page_table.Read_write;
          transitions := page :: !transitions
        end;
        mark_dirty st page)
      pages;
    if !transitions <> [] then protect_runs sys p !transitions
  in
  (match access with
  | Read ->
      let transitions = ref [] in
      List.iter
        (fun page ->
          let pg = Page_table.get st.pt page in
          if pg.Page_table.prot = Page_table.No_access then begin
            pg.Page_table.prot <- Page_table.Read_only;
            transitions := page :: !transitions
          end)
        pages;
      if !transitions <> [] then protect_runs sys p !transitions
  | Write | Read_write -> enable ~twin:true
  | Write_all | Read_write_all ->
      record_write_all sys p ranges;
      enable ~twin:false);
  Prof.exit Prof.Protocol

(* Split a validate's page list into (pages to fetch, pages skipped by
   object granularity). A page may be skipped when it is genuinely stale
   (some foreign interval known but unapplied), its stale-slot tracking is
   live ([ob_stale] non-empty — an empty set on a stale page means the
   tracking was lost and the page must be fetched), and every validated
   object is disjoint from the stale slots: then the bytes the caller is
   about to touch are already current, and the staleness is pure false
   sharing at page granularity. Skipping never advances watermarks — the
   page stays stale and a later validate of a stale object fetches as
   usual. Disabled under home replication (quorum reads must settle their
   source) — and structurally off for the invalidate/adaptive backends,
   whose validates never route through this filter. *)
let obj_skip sys p ~ranges pages =
  if not sys.has_objs || Dsm_ft.Ft.replicated sys.ft then (pages, [])
  else begin
    let st = sys.states.(p) in
    let keep = ref []
    and skipped = ref [] in
    List.iter
      (fun page ->
        match Hashtbl.find_opt sys.obj_regions page with
        | None -> keep := page :: !keep
        | Some osz ->
            let m = meta st ~nprocs:sys.nprocs page in
            let stale =
              Wmap.exists
                (fun q kv -> q <> p && kv > Wmap.get m.applied q)
                m.known
            in
            let slots =
              if stale && not (Pset.is_empty m.ob_stale) then
                obj_slots_of_ranges sys ~page ~osz ranges
              else Pset.empty
            in
            if
              stale
              && (not (Pset.is_empty m.ob_stale))
              && (not (Pset.is_empty slots))
              && Pset.disjoint slots m.ob_stale
              (* an outstanding asynchronous response must be consumed by
                 the normal fault path; granting access now would bury it *)
              && not (Hashtbl.mem st.pending_async page)
            then begin
              let pstats = sys.cluster.Cluster.stats.(p) in
              pstats.Stats.obj_skips <- pstats.Stats.obj_skips + 1;
              if sys.trace <> None then
                emit sys p
                  (Dsm_trace.Event.Obj_skip
                     { page; slots = Pset.to_list slots });
              skipped := page :: !skipped
            end
            else keep := page :: !keep)
      pages;
    (List.rev !keep, List.rev !skipped)
  end

(* An asynchronous fetch completes in the page-fault handler, which only
   runs for inaccessible pages. An earlier object-granularity skip can
   leave a page accessible while Wmap-stale, so an asynchronous fetch of
   it would never be consumed and its updates silently lost: split those
   pages out for an immediate synchronous fetch. Without object regions
   every stale page is inaccessible and the split is the identity. *)
let split_unfaultable sys p pages =
  if not sys.has_objs then (pages, [])
  else
    let st = sys.states.(p) in
    List.partition
      (fun page ->
        (not (Hashtbl.mem sys.obj_regions page))
        || (Page_table.get st.pt page).Page_table.prot = Page_table.No_access)
      pages

(* Asynchronous Fetch_diffs: send the requests now, continue computing; the
   responses are consumed in the page-fault handler (Section 3.2.3). *)
let async_fetch sys p pages =
  Prof.enter Prof.Protocol;
  let st = sys.states.(p) in
  let cfg = sys.cluster.Cluster.cfg in
  (* skip pages with an outstanding asynchronous request: its response is
     still in flight and will be consumed at the fault *)
  let pages =
    List.filter (fun page -> not (Hashtbl.mem st.pending_async page)) pages
  in
  let by_writer, mat_costs = gather_needs sys p pages () in
  Hashtbl.iter
    (fun q reqs ->
      (* request message *)
      let arrival_at_q =
        Net.send sys.net ~src:p ~dst:q ~bytes:(16 * List.length reqs)
      in
      let mat_cost =
        match Hashtbl.find_opt mat_costs q with Some r -> r | None -> ref 0.0
      in
      let resp_bytes, ndiffs =
        List.fold_left
          (fun (b, n) (page, after, upto) ->
            let r = Diff_store.fetch sys.store ~writer:q ~page ~after ~upto in
            (b + r.Diff_store.charge_bytes, n + r.Diff_store.ndiffs))
          (0, 0) reqs
      in
      let service =
        cfg.Config.interrupt_us +. cfg.Config.msg_overhead_us
        +. cfg.Config.diff_service_us +. !mat_cost
        +. (2.0 *. float_of_int ndiffs)
        +. cfg.Config.msg_overhead_us
        +. (cfg.Config.per_byte_us *. float_of_int (resp_bytes + (8 * ndiffs)))
      in
      Cluster.charge sys.cluster q service;
      let qstats = sys.cluster.Cluster.stats.(q) in
      qstats.Stats.messages <- qstats.Stats.messages + 1;
      qstats.Stats.bytes <- qstats.Stats.bytes + resp_bytes + (8 * ndiffs);
      (* back-to-back requests serialize at the target's handler *)
      let start =
        Cluster.occupy sys.cluster q ~arrival:arrival_at_q
          ~handler_time:service
      in
      let arrival = start +. service +. cfg.Config.wire_latency_us in
      List.iter
        (fun (page, _, _) ->
          let prev =
            Option.value ~default:0.0 (Hashtbl.find_opt st.pending_async page)
          in
          Hashtbl.replace st.pending_async page (Float.max prev arrival))
        reqs)
    by_writer;
  Prof.exit Prof.Protocol

let write_fault sys p page =
  Prof.enter Prof.Protocol;
  let st = sys.states.(p) in
  let pstats = sys.cluster.Cluster.stats.(p) in
  let cfg = sys.cluster.Cluster.cfg in
  pstats.Stats.segv <- pstats.Stats.segv + 1;
  Cluster.mm_op sys.cluster p ~npages:1;
  let pg = Page_table.get st.pt page in
  let m = meta st ~nprocs:sys.nprocs page in
  let fetch = pg.Page_table.prot = Page_table.No_access in
  if sys.trace <> None then
    emit sys p (Dsm_trace.Event.Page_fault { page; write = true; fetch });
  if fetch then make_consistent sys p page;
  if Range.is_empty m.write_all && pg.Page_table.twin = None then begin
    Page_table.make_twin pg;
    pstats.Stats.twins <- pstats.Stats.twins + 1;
    if sys.trace <> None then emit sys p (Dsm_trace.Event.Twin { page });
    Cluster.charge sys.cluster p
      (cfg.Config.twin_per_byte_us *. float_of_int sys.page_size)
  end;
  mark_dirty st page;
  pg.Page_table.prot <- Page_table.Read_write;
  Prof.exit Prof.Protocol

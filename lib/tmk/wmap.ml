(* Re-export of the shared sparse watermark map. The structure moved to
   [Dsm_util] so the trace checker (below this library) shares one
   definition; the run-time keeps referring to it as [Wmap]. *)

include Dsm_util.Wmap

type entry = {
  lo : int;  (* first interval seq the (accumulated) diff covers *)
  seq : int;  (* last interval seq it covers *)
  vcsum : int;
  size : int;
  supersede : bool;  (* a WRITE_ALL materialization (verbatim content) *)
  mutable payload : Dsm_mem.Diff.t option;  (* None once merged into base *)
}

type cell = {
  writer : int;
  mutable base : Dsm_mem.Diff.t;  (* merged payloads of entries <= base_seq *)
  mutable base_seq : int;
  mutable base_vcsum : int;
  mutable entries : entry list;  (* ascending seq; sizes kept even if merged *)
  mutable hi_seq : int;  (* highest entry seq ever added — O(1) [lo] *)
  mutable newest : entry option;
      (* the newest entry, kept even after GC drops it from [entries]:
         {!latest_vcsum} and {!latest_full_page} depend only on it *)
  mutable applied_by : int array;  (* per-proc applied watermark, for GC *)
}

type t = {
  nprocs : int;
  page_size : int;
  cells : (int * int, cell) Hashtbl.t;  (* (writer, page) *)
  page_writers : (int, Pset.t) Hashtbl.t;
      (* page -> set of writers with a cell: cheap membership and
         single-writer tests however many writers a page accumulates,
         with no bitmask cap on the processor count *)
}

type unit_to_apply = {
  order : int;
  payload : Dsm_mem.Diff.t;
  writer : int;
  upto_seq : int;
}

type fetch_result = {
  units : unit_to_apply list;
  charge_bytes : int;
  ndiffs : int;
}

let create ~nprocs ~page_size =
  {
    nprocs;
    page_size;
    cells = Hashtbl.create 1024;
    page_writers = Hashtbl.create 256;
  }

let find_cell t ~writer ~page = Hashtbl.find_opt t.cells (writer, page)

let get_cell t ~writer ~page =
  match find_cell t ~writer ~page with
  | Some c -> c
  | None ->
      let c =
        {
          writer;
          base = Dsm_mem.Diff.empty;
          base_seq = 0;
          base_vcsum = 0;
          entries = [];
          hi_seq = 0;
          newest = None;
          applied_by = Array.make t.nprocs 0;
        }
      in
      Hashtbl.replace t.cells (writer, page) c;
      let ws =
        Option.value ~default:Pset.empty (Hashtbl.find_opt t.page_writers page)
      in
      Hashtbl.replace t.page_writers page (Pset.add writer ws);
      c

let writers_of_page t ~page =
  match Hashtbl.find_opt t.page_writers page with
  | None -> []
  | Some ws -> Pset.to_list ws

let single_writer t ~page ~writer =
  match Hashtbl.find_opt t.page_writers page with
  | None -> false
  | Some ws -> Pset.equal ws (Pset.singleton writer)

(* Merge into [base] every entry payload that can no longer differ from
   applying the individual diffs in order: entries applied by everyone, or
   any entry when this page has a single writer. Then drop merged entries
   no future fetch can cover: a requester's [after] is at least its
   applied watermark minus one (a push rollback moves the page watermark
   back a single interval), so [seq <= min_applied - 1] entries are dead
   even for byte accounting. *)
let coalesce t ~page c =
  let min_applied = Array.fold_left min max_int c.applied_by in
  let solo = single_writer t ~page ~writer:c.writer in
  List.iter
    (fun (e : entry) ->
      match e.payload with
      | Some d when solo || e.seq <= min_applied ->
          c.base <- Dsm_mem.Diff.merge c.base d ~page_size:t.page_size;
          c.base_seq <- max c.base_seq e.seq;
          c.base_vcsum <- max c.base_vcsum e.vcsum;
          e.payload <- None
      | Some _ | None -> ())
    c.entries;
  c.entries <-
    List.filter
      (fun (e : entry) -> not (e.payload = None && e.seq <= min_applied - 1))
      c.entries

let add t ~writer ~page ~seq ~vcsum ~diff ~supersedes =
  let c = get_cell t ~writer ~page in
  (* the accumulated diff covers every interval since the last one *)
  let lo = max (c.base_seq + 1) (c.hi_seq + 1) in
  if supersedes then begin
    (* WRITE_ALL: the new content replaces all of this writer's history for
       the page — older payloads and sizes are dropped. *)
    c.base <- Dsm_mem.Diff.empty;
    c.base_seq <- 0;
    c.base_vcsum <- 0;
    let e =
      {
        lo;
        seq;
        vcsum;
        size = Dsm_mem.Diff.size_bytes diff;
        supersede = true;
        payload = Some diff;
      }
    in
    c.entries <- [ e ];
    c.hi_seq <- seq;
    c.newest <- Some e
  end
  else begin
    let e =
      {
        lo;
        seq;
        vcsum;
        size = Dsm_mem.Diff.size_bytes diff;
        supersede = false;
        payload = Some diff;
      }
    in
    c.entries <- c.entries @ [ e ];
    c.hi_seq <- seq;
    c.newest <- Some e;
    if List.length c.entries > 8 then coalesce t ~page c
  end

(* Only intervals the requester holds write notices for ([seq <= upto]) may
   be sent; an accumulated entry whose span merely extends past [upto] is
   safe to include (the absence of a forced materialization proves no other
   writer's interval is ordered inside the span), but an entry starting
   beyond [upto] is not requested and must not be sent — it could be applied
   before an ordered-in-between interval of another writer. *)
let fetch t ~writer ~page ~after ~upto =
  match find_cell t ~writer ~page with
  | None -> { units = []; charge_bytes = 0; ndiffs = 0 }
  | Some c ->
      let covered =
        List.filter (fun (e : entry) -> e.seq > after && e.lo <= upto) c.entries
      in
      let charge_bytes = List.fold_left (fun a e -> a + e.size) 0 covered in
      let ndiffs = List.length covered in
      let base_unit =
        if c.base_seq > after && not (Dsm_mem.Diff.is_empty c.base) then
          [ { order = c.base_vcsum; payload = c.base; writer = c.writer; upto_seq = c.base_seq } ]
        else []
      in
      let entry_units =
        List.filter_map
          (fun (e : entry) ->
            match e.payload with
            | Some d when e.seq > after ->
                Some { order = e.vcsum; payload = d; writer = c.writer; upto_seq = e.seq }
            | Some _ | None -> None)
          covered
      in
      { units = base_unit @ entry_units; charge_bytes; ndiffs }

let has_any t ~writer ~page ~after =
  match find_cell t ~writer ~page with
  | None -> false
  | Some c -> c.base_seq > after || c.hi_seq > after

let latest_vcsum t ~writer ~page =
  match find_cell t ~writer ~page with
  | None -> None
  | Some c -> (
      match c.newest with
      | Some (last : entry) -> Some last.vcsum
      | None -> if c.base_seq > 0 then Some c.base_vcsum else None)

(* Only a WRITE_ALL materialization may supersede other writers' diffs: a
   twin-accumulated diff can cover a whole page while carrying stale bytes
   for locations another writer overwrote in an ordered-in-between
   interval. *)
let latest_full_page t ~writer ~page =
  match find_cell t ~writer ~page with
  | None -> None
  | Some c -> (
      match c.newest with
      | Some last -> (
          match last.payload with
          | Some d
            when last.supersede
                 && Dsm_mem.Diff.covers_page d ~page_size:t.page_size ->
              Some (last.vcsum, last.seq)
          | Some _ | None -> None)
      | None -> None)

let note_applied t ~writer ~page ~by ~seq =
  match find_cell t ~writer ~page with
  | None -> ()
  | Some c -> if seq > c.applied_by.(by) then c.applied_by.(by) <- seq

type t = int array

module Prof = Dsm_prof.Prof

let create n = Array.make n 0

let copy v =
  Prof.tick Prof.Vc;
  Array.copy v

let get v q = v.(q)
let set v q x = v.(q) <- x

let merge dst src =
  Prof.tick Prof.Vc;
  Array.iteri (fun i x -> if x > dst.(i) then dst.(i) <- x) src

let leq a b =
  Prof.tick Prof.Vc;
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let dominates a b = leq b a

let sum v =
  Prof.tick Prof.Vc;
  Array.fold_left ( + ) 0 v

let pp ppf v =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (Array.to_seq v)

(** Core lazy-release-consistency protocol operations.

    The functions here are the run-time's internals, shared by the fault
    handlers ({!Shm}), the synchronization operations ({!Sync_ops}) and the
    augmented interface ({!Validate}); applications use {!Tmk}.

    Protocol summary (Section 2 of the paper):

    - a {e release} (lock release or barrier arrival) starts a new interval
      and records write notices for the pages dirtied in the closing one;
      pages are write-protected again, twins are kept, and no diff is
      computed (lazy diffing);
    - an {e acquire} (lock grant or barrier departure) delivers the write
      notices of every interval that happens-before it; stale pages are
      invalidated;
    - an {e access miss} fetches the missing diffs from their writers (one
      request per writer), applies them in happens-before order to the copy
      and its twin, and restores access;
    - a diff is {e materialized} at the writer when first requested,
      covering every interval since the twin was made; a foreign write
      notice for a page with pending modifications forces materialization,
      which bounds accumulation to spans with no ordered-in-between foreign
      interval. *)

open Types

val debug : bool
(** [DSM_DEBUG] environment toggle: traces fetches and diff applications. *)

val emit : system -> int -> Dsm_trace.Event.kind -> unit
(** Append a protocol event to the system's sink (no-op when tracing is
    off). Guard call sites with [sys.trace <> None] before building the
    event payload so a disabled trace allocates nothing; emission never
    charges simulated time. *)

val meta : pstate -> nprocs:int -> int -> page_meta
(** Per-page protocol metadata (applied/known watermarks, WRITE_ALL ranges,
    pending lazy interval), created on first use. *)

val runs_of_pages : int list -> (int * int) list
(** Group pages into maximal runs of consecutive numbers: protection
    operations cost one call per contiguous run. *)

val protect_runs : system -> int -> int list -> unit
(** Charge and count one protection operation per contiguous run. *)

val release : system -> int -> (int * int list) option
(** Close the current interval: returns the new log entry [(seq, pages)],
    or [None] when nothing was dirtied. *)

val materialize : system -> writer:int -> page:int -> float
(** Create the writer's pending diff for the page, if any; returns the cost
    to charge (as request service time — the work happens in the writer's
    interrupt handler). Cleans the page (twin dropped, write-protected,
    off the dirty list) unless the writer is mid-interval on it. *)

val apply_notice : system -> int -> writer:int -> seq:int -> pages:int list -> unit
(** Record write notices; invalidate stale local copies; force local
    materialization where needed. *)

val pull_notices : system -> int -> upto:Vc.t -> int
(** Apply every notice in the global interval logs between the processor's
    vector clock and [upto]; advance the clock. Returns the notice count
    (for message-size accounting). *)

(** How a fetch is paid for. *)
type fetch_mode =
  | Rpc  (** on-demand request/response pair(s), one per writer *)
  | Prepaid  (** data already charged (async response consumed at a fault) *)
  | Piggyback of float
      (** one data message per writer, sent at the given time (responses to
          section requests piggy-backed on a synchronization operation) *)

val gather_needs :
  system -> int -> int list -> ?only_via:int -> unit ->
  (int, (int * int * int) list) Hashtbl.t * (int, float ref) Hashtbl.t
(** Which writers' diffs the processor misses for [pages]: a table from
    writer to [(page, applied, known)] requests, plus the materialization
    costs incurred per writer. Applies supersede pruning: when the
    happens-latest candidate diff overwrites a whole page, the older diffs
    are dead data and are marked applied instead of fetched. [only_via r]
    restricts to diffs processor [r] holds locally (lock-grant
    piggy-backing). *)

val fetch_and_apply :
  system -> int -> int list -> mode:fetch_mode -> ?only_via:int -> unit -> unit
(** Fetch and apply every missing diff for [pages], grouped by writer (the
    communication-aggregation optimization passes many pages; the base
    run-time passes the single faulting page). *)

val async_fetch : system -> int -> int list -> unit
(** Asynchronous [Fetch_diffs]: send the requests and record the response
    arrival times; the page-fault handler completes the work at the first
    access (Section 3.2.3). Pages with an outstanding request are
    skipped. *)

val make_consistent : system -> int -> int -> unit
(** Bring one page's copy up to date, consuming a pending asynchronous
    response when present, paying on-demand requests otherwise. *)

val in_dirty : pstate -> int -> bool
(** Membership in the current interval's write set (hash set; O(1)). *)

val mark_dirty : pstate -> int -> unit
(** Add a page to the current interval's write set. *)

val record_write_all : system -> int -> Dsm_rsd.Range.t -> unit
(** Mark byte ranges as validated WRITE_ALL: the fault handler skips twin
    creation for them and materialization copies them verbatim. *)

val apply_access_state :
  system -> int -> ranges:Dsm_rsd.Range.t -> access:access -> unit
(** The protection/twin actions of Figure 3 for a validated section, after
    any required data movement has happened: [READ] write-protects,
    [WRITE]/[READ&WRITE] create twins and enable writing, the [_ALL] types
    enable writing without twins and record the WRITE_ALL ranges. *)

val obj_all_slots : system -> int -> Pset.t
(** Every slot of a page holding objects of the given size: the
    conservative "whole page stale" extent. *)

val obj_slots_of_ranges :
  system -> page:int -> osz:int -> Dsm_rsd.Range.t -> Pset.t
(** Slots of [page] (object size [osz]) covered by [ranges]; a partially
    covered slot counts as covered. *)

val obj_skip :
  system -> int -> ranges:Dsm_rsd.Range.t -> int list -> int list * int list
(** Split a validate's page list into [(fetch, skipped)]. A page is skipped
    when it lies in an object-granularity region, is genuinely stale, its
    stale-slot tracking is live, and every validated object is disjoint
    from the stale slots — page-granularity false sharing with no true
    communication. Counts {!Dsm_sim.Stats.obj_skips} and emits [Obj_skip]
    per skipped page. Identity when [sys.has_objs] is unset or homes are
    replicated. *)

val split_unfaultable :
  system -> int -> int list -> int list * int list
(** Split an asynchronous validate's fetch list into
    [(faultable, unfaultable)]: pages left accessible by an earlier
    object-granularity skip never fault, so their fetch cannot be left to
    the fault handler — the caller fetches them synchronously. Identity
    ([pages], []) when [sys.has_objs] is unset. *)

val read_fault : system -> int -> int -> unit
(** Access-miss handler for a read: counts the fault, makes the page
    consistent, restores read (or read-write, if mid-interval) access. *)

val write_fault : system -> int -> int -> unit
(** Write-detection handler: counts the fault, makes an invalid page
    consistent, creates the twin (unless WRITE_ALL), enables writing and
    adds the page to the dirty list. *)

(* Re-export of the shared processor-id set. The structure moved to
   [Dsm_util] so the trace checker (below this library) shares one
   definition; the run-time keeps referring to it as [Pset]. *)

include Dsm_util.Pset

type system = Types.system
type t = Types.t

type access = Types.access =
  | Read
  | Write
  | Read_write
  | Write_all
  | Read_write_all

module Cluster = Dsm_sim.Cluster
module Config = Dsm_sim.Config
module Engine = Dsm_sim.Engine
module Page_table = Dsm_mem.Page_table

let make ?plan cfg =
  let nprocs = cfg.Config.nprocs in
  (* A plan generated for a different machine shape would seed wrong
     owners (nprocs) or wrong page numbers (page_size): reject it with
     the shared field/range error format rather than misapply it. *)
  (match plan with
  | None -> ()
  | Some (pl : Proto_plan.t) ->
      if pl.Proto_plan.nprocs <> nprocs then
        invalid_arg
          (Dsm_net.Plan.field_error ~field:"plan nprocs"
             ~value:(string_of_int pl.Proto_plan.nprocs)
             ~range:(Printf.sprintf "{%d}" nprocs));
      if pl.Proto_plan.page_size <> cfg.Config.page_size then
        invalid_arg
          (Dsm_net.Plan.field_error ~field:"plan page_size"
             ~value:(string_of_int pl.Proto_plan.page_size)
             ~range:(Printf.sprintf "{%d}" cfg.Config.page_size)));
  let cluster = Cluster.create cfg in
  let net = Dsm_net.Net.create cluster in
  let sys =
  {
    Types.cluster;
    net;
    space = Dsm_mem.Addr_space.create ~page_size:cfg.Config.page_size;
    store = Diff_store.create ~nprocs ~page_size:cfg.Config.page_size;
    states =
      Array.init nprocs (fun p ->
          {
            Types.me = p;
            pt = Dsm_mem.Page_table.create ~page_size:cfg.Config.page_size;
            vc = Vc.create nprocs;
            dirty = Hashtbl.create 64;
            meta = Hashtbl.create 256;
            pending_async = Hashtbl.create 64;
            pending_wsync = [];
            barrier_epoch = 0;
            notices_sent_seq = 0;
            partial_push = [];
          });
    logs = Array.init nprocs (fun _ -> Ilog.create ());
    locks = Hashtbl.create 16;
    barrier =
      {
        Types.epoch = 0;
        arrived = 0;
        arrival_clock = Array.make nprocs 0.0;
        departure_clock = 0.0;
        master_resume_clock = 0.0;
        departure_vc = Vc.create nprocs;
        wsync_tbl = Hashtbl.create 64;
        wsync_done = Hashtbl.create 64;
        bcast_plan = None;
      };
    pushbox = Hashtbl.create 64;
    page_size = cfg.Config.page_size;
    page_shift =
      (let ps = cfg.Config.page_size in
       if ps > 0 && ps land (ps - 1) = 0 then
         let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
         log2 ps 0
       else -1);
    page_mask =
      (let ps = cfg.Config.page_size in
       if ps > 0 && ps land (ps - 1) = 0 then ps - 1 else 0);
    nprocs;
    homes = Hashtbl.create 64;
    iv_dir = Hashtbl.create 64;
    adapt = Hashtbl.create 64;
    adapt_tick = 0;
    ft = Dsm_ft.Ft.create cfg;
    bops =
      (match cfg.Config.backend with
      | Config.Lrc -> Backend.ops (module Backend_lrc)
      | Config.Hlrc -> Backend.ops (module Hlrc)
      | Config.Inval -> Backend.ops (module Invalidate)
      | Config.Adaptive -> Backend.ops (module Adaptive));
    trace = None;
    pending_plan = plan;
    obj_regions = Hashtbl.create 64;
    obj_extents = Hashtbl.create 256;
    obj_decls = [];
    has_objs = false;
  }
  in
  (* net events carry the emitting processor's protocol vector clock, so
     they satisfy the checker's vc rules like any other protocol event *)
  Dsm_net.Net.set_vc_source net (fun p ->
      Vc.copy sys.Types.states.(p).Types.vc);
  sys

(* {1 Static plan seeding}

   Apply a protocol-placement plan's exact directives to the pristine
   system, before any processor runs: set the adaptive backend's initial
   per-page classification (and the matching invalidate-directory /
   home-map state), or — under the plain hlrc backend — just the home
   assignments. Inexact directives are skipped: a widened summary could
   name the wrong owner, and the online machinery corrects cheap
   defaults much faster than wrong seeds. Installation mirrors
   {!Adaptive.switch}'s quiescent-state rewrite, minus the copy
   distribution: at time zero every copy is the identical zero page. *)

let seed_plan sys (pl : Proto_plan.t) =
  let npages = Dsm_mem.Addr_space.n_pages sys.Types.space in
  let backend = sys.Types.bops.Types.b_name in
  let install_adapt page proto owner =
    Hashtbl.replace sys.Types.adapt page
      {
        Types.ap_proto = proto;
        ap_readers = Pset.empty;
        ap_writers = Pset.empty;
        ap_last_writer = owner;
        ap_migrations = 0;
      }
  in
  let seed_inval page owner =
    Hashtbl.remove sys.Types.homes page;
    Hashtbl.replace sys.Types.iv_dir page
      { Types.iv_owner = owner; iv_excl = false; iv_sharers = [ owner ] };
    for q = 0 to sys.Types.nprocs - 1 do
      let pg = Page_table.get sys.Types.states.(q).Types.pt page in
      pg.Page_table.prot <-
        (if q = owner then Page_table.Read_only else Page_table.No_access)
    done
  in
  List.iter
    (fun (d : Proto_plan.directive) ->
      let owner = d.Proto_plan.owner in
      let lo = d.Proto_plan.lo_page
      and hi = min d.Proto_plan.hi_page (npages - 1) in
      let apply =
        match (backend, d.Proto_plan.proto) with
        | "adaptive", Proto_plan.Inval ->
            Some
              (fun page ->
                install_adapt page Types.P_inval owner;
                seed_inval page owner)
        | "adaptive", Proto_plan.Hlrc ->
            Some
              (fun page ->
                install_adapt page Types.P_hlrc owner;
                Hashtbl.replace sys.Types.homes page owner)
        | "hlrc", Proto_plan.Hlrc ->
            Some (fun page -> Hashtbl.replace sys.Types.homes page owner)
        | _ -> None
        (* lrc directives confirm the default — nothing to install; other
           backends have no protocol choice for a plan to make *)
      in
      match apply with
      | Some f when lo <= hi ->
          for page = lo to hi do
            f page
          done;
          Protocol.emit sys 0
            (Dsm_trace.Event.Plan_applied
               {
                 lo_page = lo;
                 hi_page = hi;
                 proto = Proto_plan.proto_name d.Proto_plan.proto;
                 owner;
               })
      | _ -> ())
    (Proto_plan.exact_directives pl)

let run ?trace sys main =
  sys.Types.trace <- trace;
  Dsm_net.Net.set_trace sys.Types.net trace;
  (* one-shot: the digest pass re-enters [run] and must observe the run's
     final protocol state, not a re-seeded one *)
  (match sys.Types.pending_plan with
  | Some pl ->
      sys.Types.pending_plan <- None;
      seed_plan sys pl
  | None -> ());
  (* declare the object-region geometry to the trace, so the checker can
     judge the Obj_skip events against it *)
  if trace <> None then
    List.iter
      (fun (r : Types.obj_region) ->
        Protocol.emit sys 0
          (Dsm_trace.Event.Obj_region
             {
               base_page = r.Types.or_base_page;
               npages = r.Types.or_npages;
               obj_size = r.Types.or_obj_size;
               count = r.Types.or_count;
             }))
      (List.rev sys.Types.obj_decls);
  (* every program ends with an exit barrier, as in TreadMarks: it restores
     full consistency after any trailing Push phases *)
  Fun.protect
    ~finally:(fun () ->
      sys.Types.trace <- None;
      Dsm_net.Net.set_trace sys.Types.net None)
    (fun () ->
      (* the DSM protocol interacts across processors through RPCs,
         hot-spot occupancy and barrier arrival order, so it requires the
         ordered engine; [domains] shards it without reordering slices *)
      Engine.run
        ~domains:sys.Types.cluster.Cluster.cfg.Config.domains
        ~nprocs:sys.Types.nprocs
        (fun p ->
          let t = { Types.sys; p; st = sys.Types.states.(p) } in
          main t;
          sys.Types.bops.Types.b_barrier t))

let update_pages_in_use sys =
  sys.Types.cluster.Cluster.pages_in_use <-
    Dsm_mem.Addr_space.n_pages sys.Types.space

type kind = F64 | I64

module Alloc = struct
  type granularity = Page | Object

  let array sys name (kind : kind) ~dims =
    (* both element kinds are 8 bytes wide on the simulated machine; [kind]
       documents intent and leaves room for narrower elements later *)
    ignore kind;
    let a =
      Dsm_mem.Addr_space.alloc_array sys.Types.space ~name ~elem_size:8
        (Array.of_list dims)
    in
    update_pages_in_use sys;
    a

  let objs sys ?(granularity = Object) name ~obj_size ~count =
    let page_size = sys.Types.page_size in
    if obj_size < 8 || obj_size mod 8 <> 0 || page_size mod obj_size <> 0 then
      invalid_arg
        (Dsm_net.Plan.field_error ~field:"obj_size"
           ~value:(string_of_int obj_size)
           ~range:
             (Printf.sprintf "multiples of 8 dividing the page size (%d)"
                page_size));
    if count < 1 then
      invalid_arg
        (Dsm_net.Plan.field_error ~field:"count" ~value:(string_of_int count)
           ~range:"[1, ...]");
    (* page alignment plus the divisibility constraint together guarantee
       that no object straddles a page boundary *)
    let a =
      Dsm_mem.Addr_space.alloc_array sys.Types.space ~name ~page_align:true
        ~elem_size:8
        [| count * obj_size / 8 |]
    in
    update_pages_in_use sys;
    (match granularity with
    | Page -> ()
    | Object ->
        let base_page = a.Dsm_rsd.Section.base / page_size in
        let npages = ((count * obj_size) + page_size - 1) / page_size in
        for page = base_page to base_page + npages - 1 do
          Hashtbl.replace sys.Types.obj_regions page obj_size
        done;
        sys.Types.obj_decls <-
          {
            Types.or_base_page = base_page;
            or_npages = npages;
            or_obj_size = obj_size;
            or_count = count;
          }
          :: sys.Types.obj_decls;
        sys.Types.has_objs <- true);
    a
end
let pid (t : t) = t.Types.p
let nprocs (t : t) = t.Types.sys.Types.nprocs
let charge (t : t) us = Cluster.charge t.Types.sys.Types.cluster t.Types.p us

(* Every protocol-visible operation dispatches through the backend selected
   in {!make}; a record-field load on operations this coarse is free. *)
let backend_name sys = sys.Types.bops.Types.b_name
let barrier (t : t) = t.Types.sys.Types.bops.Types.b_barrier t
let lock_acquire (t : t) lid = t.Types.sys.Types.bops.Types.b_lock_acquire t lid
let lock_release (t : t) lid = t.Types.sys.Types.bops.Types.b_lock_release t lid

let validate (t : t) ?(async = false) sections access =
  t.Types.sys.Types.bops.Types.b_validate t ~async sections access

let validate_w_sync (t : t) ?(async = false) sections access =
  t.Types.sys.Types.bops.Types.b_validate_w_sync t ~async sections access

let push (t : t) ~read_sections ~write_sections =
  t.Types.sys.Types.bops.Types.b_push t ~read_sections ~write_sections

let elapsed sys = Cluster.elapsed sys.Types.cluster
let time (t : t) = Cluster.time t.Types.sys.Types.cluster t.Types.p
let stats sys = sys.Types.cluster.Cluster.stats
let total_stats sys = Dsm_sim.Stats.total (stats sys)
let cluster sys = sys.Types.cluster

(* Content digest of every allocated array, observed through the protocol
   (an extra run in which processor 0 reads all of shared memory; plain
   byte inspection would see stale local copies). Used by the
   backend-equivalence tests: capture timing/statistics results before
   calling this, as the digest run advances the simulated clocks. *)
let digest sys =
  let buf = Buffer.create 4096 in
  (* the verification read pass observes the (possibly recovered) final
     state; it must not trigger crash events still pending in the schedule *)
  Dsm_ft.Ft.disarm sys.Types.ft;
  (* an object-granularity page skipped by a validate can be left readable
     while some of its slots are stale (the run never read them); the exit
     barrier applies only NEW notices, so the digest's read pass would see
     the stale bytes. Force those pages through the miss path. *)
  if sys.Types.has_objs then begin
    let st0 = sys.Types.states.(0) in
    let forced = ref [] in
    Hashtbl.iter
      (fun page (_ : int) ->
        match Hashtbl.find_opt st0.Types.meta page with
        | Some m when not (Pset.is_empty m.Types.ob_stale) ->
            let pg = Page_table.get st0.Types.pt page in
            if pg.Page_table.prot <> Page_table.No_access then begin
              pg.Page_table.prot <- Page_table.No_access;
              forced := page :: !forced
            end
        | _ -> ())
      sys.Types.obj_regions;
    if !forced <> [] then Protocol.protect_runs sys 0 !forced
  end;
  run sys (fun t ->
      if t.Types.p = 0 then
        List.iter
          (fun (a : Dsm_rsd.Section.array_info) ->
            let n = Array.fold_left ( * ) 1 a.Dsm_rsd.Section.extents in
            for i = 0 to n - 1 do
              Buffer.add_int64_le buf
                (Shm.get_raw64 t (a.Dsm_rsd.Section.base + (8 * i)))
            done)
          (Dsm_mem.Addr_space.arrays sys.Types.space));
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Snapshot of the page-to-home assignments the run actually made, sorted
   by page. Empty unless the hlrc backend assigned any (first-touch makes
   the assignments data-dependent, which is exactly what the determinism
   regression tests compare). Capture before {!digest}: the digest run's
   read pass can itself assign homes to pages nobody had touched. *)
let homes sys =
  List.sort compare
    (Hashtbl.fold (fun page home acc -> (page, home) :: acc) sys.Types.homes [])

(* Final adaptive classification, for grading static predictions against
   what the online classifier converged to. Pages the run never touched
   (and never seeded) are absent: they stayed under the LRC default. *)
let adapt_classes sys =
  Hashtbl.fold
    (fun page (a : Types.adapt_page) acc ->
      let owner =
        match a.Types.ap_proto with
        | Types.P_inval -> (
            match Hashtbl.find_opt sys.Types.iv_dir page with
            | Some e -> e.Types.iv_owner
            | None -> -1)
        | Types.P_hlrc -> (
            match Hashtbl.find_opt sys.Types.homes page with
            | Some h -> h
            | None -> -1)
        | Types.P_lrc -> -1
      in
      (page, Types.page_proto_name a.Types.ap_proto, owner) :: acc)
    sys.Types.adapt []
  |> List.sort compare

module Shm = Shm
module Section = Dsm_rsd.Section
module Rsd = Dsm_rsd.Rsd

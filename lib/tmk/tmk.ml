type system = Types.system
type t = Types.t

type access = Types.access =
  | Read
  | Write
  | Read_write
  | Write_all
  | Read_write_all

module Cluster = Dsm_sim.Cluster
module Config = Dsm_sim.Config
module Engine = Dsm_sim.Engine

let make cfg =
  let nprocs = cfg.Config.nprocs in
  let cluster = Cluster.create cfg in
  let net = Dsm_net.Net.create cluster in
  let sys =
  {
    Types.cluster;
    net;
    space = Dsm_mem.Addr_space.create ~page_size:cfg.Config.page_size;
    store = Diff_store.create ~nprocs ~page_size:cfg.Config.page_size;
    states =
      Array.init nprocs (fun p ->
          {
            Types.me = p;
            pt = Dsm_mem.Page_table.create ~page_size:cfg.Config.page_size;
            vc = Vc.create nprocs;
            dirty = Hashtbl.create 64;
            meta = Hashtbl.create 256;
            pending_async = Hashtbl.create 64;
            pending_wsync = [];
            barrier_epoch = 0;
            notices_sent_seq = 0;
            partial_push = [];
          });
    logs = Array.init nprocs (fun _ -> Ilog.create ());
    locks = Hashtbl.create 16;
    barrier =
      {
        Types.epoch = 0;
        arrived = 0;
        arrival_clock = Array.make nprocs 0.0;
        departure_clock = 0.0;
        master_resume_clock = 0.0;
        departure_vc = Vc.create nprocs;
        wsync_tbl = Hashtbl.create 64;
        wsync_done = Hashtbl.create 64;
        bcast_plan = None;
      };
    pushbox = Hashtbl.create 64;
    page_size = cfg.Config.page_size;
    page_shift =
      (let ps = cfg.Config.page_size in
       if ps > 0 && ps land (ps - 1) = 0 then
         let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
         log2 ps 0
       else -1);
    page_mask =
      (let ps = cfg.Config.page_size in
       if ps > 0 && ps land (ps - 1) = 0 then ps - 1 else 0);
    nprocs;
    trace = None;
  }
  in
  (* net events carry the emitting processor's protocol vector clock, so
     they satisfy the checker's vc rules like any other protocol event *)
  Dsm_net.Net.set_vc_source net (fun p ->
      Vc.copy sys.Types.states.(p).Types.vc);
  sys

let run ?trace sys main =
  sys.Types.trace <- trace;
  Dsm_net.Net.set_trace sys.Types.net trace;
  (* every program ends with an exit barrier, as in TreadMarks: it restores
     full consistency after any trailing Push phases *)
  Fun.protect
    ~finally:(fun () ->
      sys.Types.trace <- None;
      Dsm_net.Net.set_trace sys.Types.net None)
    (fun () ->
      Engine.run ~nprocs:sys.Types.nprocs (fun p ->
          let t = { Types.sys; p; st = sys.Types.states.(p) } in
          main t;
          Sync_ops.barrier t))

let update_pages_in_use sys =
  sys.Types.cluster.Cluster.pages_in_use <-
    Dsm_mem.Addr_space.n_pages sys.Types.space

let alloc_f64_1 sys name n =
  let a =
    Dsm_mem.Addr_space.alloc_array sys.Types.space ~name ~elem_size:8 [| n |]
  in
  update_pages_in_use sys;
  a

let alloc_f64_2 sys name n0 n1 =
  let a =
    Dsm_mem.Addr_space.alloc_array sys.Types.space ~name ~elem_size:8
      [| n0; n1 |]
  in
  update_pages_in_use sys;
  a

let alloc_f64_3 sys name n0 n1 n2 =
  let a =
    Dsm_mem.Addr_space.alloc_array sys.Types.space ~name ~elem_size:8
      [| n0; n1; n2 |]
  in
  update_pages_in_use sys;
  a

let alloc_i64_1 sys name n =
  let a =
    Dsm_mem.Addr_space.alloc_array sys.Types.space ~name ~elem_size:8 [| n |]
  in
  update_pages_in_use sys;
  a

let pid (t : t) = t.Types.p
let nprocs (t : t) = t.Types.sys.Types.nprocs
let charge (t : t) us = Cluster.charge t.Types.sys.Types.cluster t.Types.p us
let barrier = Sync_ops.barrier
let lock_acquire = Sync_ops.lock_acquire
let lock_release = Sync_ops.lock_release
let validate = Validate.validate
let validate_w_sync = Validate.validate_w_sync
let push = Validate.push
let elapsed sys = Cluster.elapsed sys.Types.cluster
let time (t : t) = Cluster.time t.Types.sys.Types.cluster t.Types.p
let stats sys = sys.Types.cluster.Cluster.stats
let total_stats sys = Dsm_sim.Stats.total (stats sys)
let cluster sys = sys.Types.cluster

module Shm = Shm
module Section = Dsm_rsd.Section
module Rsd = Dsm_rsd.Rsd

(* Versioned protocol-placement plans: the artifact that closes the
   compile-time -> run-time loop. [dsm_lint plan] writes one from the
   static sharing-pattern classifier; [dsm_run --plan] loads it and seeds
   the adaptive backend's initial per-page classification (and the HLRC
   home map) before the first access, replacing the first-touch /
   LRC-default warm-up with the compiler's prediction.

   The format is JSONL so plans stream, diff and grep like traces do: a
   header object identifying the plan and its generation parameters,
   then one flat object per directive. Page numbers are absolute (the
   simulated bump allocator is deterministic, so compile time and run
   time agree on the layout); [hi_page] is inclusive. *)

module Jflat = Dsm_util.Jflat
module Plan = Dsm_net.Plan

let magic = "dsm-protocol-plan"
let version = 1

type proto = Lrc | Hlrc | Inval

let proto_name = function Lrc -> "lrc" | Hlrc -> "hlrc" | Inval -> "inval"

let proto_of_string = function
  | "lrc" -> Some Lrc
  | "hlrc" -> Some Hlrc
  | "inval" -> Some Inval
  | _ -> None

type confidence = Exact | Inexact

let confidence_name = function Exact -> "exact" | Inexact -> "inexact"

type directive = {
  array : string;  (** array the page range belongs to (documentation) *)
  lo_page : int;
  hi_page : int;  (** inclusive *)
  proto : proto;
  owner : int;  (** home (hlrc) / holder (inval); -1 under lrc *)
  confidence : confidence;
  reason : string;  (** classifier taxonomy bucket, for humans *)
  est_lrc : float;  (** cost model: estimated msgs/epoch per candidate *)
  est_hlrc : float;
  est_inval : float;
}

type t = {
  program : string;
  nprocs : int;
  page_size : int;
  level : string;  (** transformation level the summaries came from *)
  directives : directive list;
}

(* {1 Validation}

   Every message follows {!Dsm_net.Plan.field_error}'s
   "field: value outside accepted range" shape, so plan schema
   violations read like every other rejected configuration knob. *)

let validate t =
  let err field value range =
    Error (Plan.field_error ~field ~value ~range)
  in
  if t.nprocs < 1 then
    err "nprocs" (string_of_int t.nprocs) "[1, max_int]"
  else if t.page_size < 1 then
    err "page_size" (string_of_int t.page_size) "[1, max_int]"
  else
    let rec check = function
      | [] -> Ok t
      | d :: rest ->
          if d.lo_page < 0 then
            err "lo_page" (string_of_int d.lo_page) "[0, max_int]"
          else if d.hi_page < d.lo_page then
            err "hi_page" (string_of_int d.hi_page)
              (Printf.sprintf "[%d, max_int]" d.lo_page)
          else if d.proto = Lrc && d.owner <> -1 then
            err "owner" (string_of_int d.owner) "{-1} under lrc"
          else if d.proto <> Lrc && not (d.owner >= 0 && d.owner < t.nprocs)
          then
            err "owner" (string_of_int d.owner)
              (Printf.sprintf "[0, %d]" (t.nprocs - 1))
          else check rest
    in
    check t.directives

(* {1 Serialization} *)

let header_json t =
  Printf.sprintf
    "{\"plan\":%S,\"version\":%d,\"program\":%S,\"nprocs\":%d,\"page_size\":%d,\"level\":%S,\"directives\":%d}"
    magic version t.program t.nprocs t.page_size t.level
    (List.length t.directives)

let directive_json d =
  Printf.sprintf
    "{\"array\":%S,\"lo_page\":%d,\"hi_page\":%d,\"proto\":%S,\"owner\":%d,\"confidence\":%S,\"reason\":%S,\"est_lrc\":%g,\"est_hlrc\":%g,\"est_inval\":%g}"
    d.array d.lo_page d.hi_page (proto_name d.proto) d.owner
    (confidence_name d.confidence)
    d.reason d.est_lrc d.est_hlrc d.est_inval

let write oc t =
  output_string oc (header_json t);
  output_char oc '\n';
  List.iter
    (fun d ->
      output_string oc (directive_json d);
      output_char oc '\n')
    t.directives

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc t)

(* {1 Parsing} *)

let parse_directive f =
  let proto_s = Jflat.str f "proto" in
  let proto =
    match proto_of_string proto_s with
    | Some p -> p
    | None ->
        raise
          (Jflat.Parse_error
             (Plan.field_error ~field:"proto" ~value:proto_s
                ~range:"{lrc, hlrc, inval}"))
  in
  let conf_s = Jflat.str f "confidence" in
  let confidence =
    match conf_s with
    | "exact" -> Exact
    | "inexact" -> Inexact
    | _ ->
        raise
          (Jflat.Parse_error
             (Plan.field_error ~field:"confidence" ~value:conf_s
                ~range:"{exact, inexact}"))
  in
  {
    array = Jflat.str f "array";
    lo_page = Jflat.int f "lo_page";
    hi_page = Jflat.int f "hi_page";
    proto;
    owner = Jflat.int f "owner";
    confidence;
    reason = Jflat.str f "reason";
    est_lrc = Jflat.num f "est_lrc";
    est_hlrc = Jflat.num f "est_hlrc";
    est_inval = Jflat.num f "est_inval";
  }

let of_lines lines =
  match lines with
  | [] -> Error "empty plan file"
  | header :: rest -> (
      try
        let h = Jflat.parse_exn header in
        let m = Jflat.str h "plan" in
        if m <> magic then
          Error
            (Plan.field_error ~field:"plan" ~value:(Printf.sprintf "%S" m)
               ~range:(Printf.sprintf "{%S}" magic))
        else
          let v = Jflat.int h "version" in
          if v <> version then
            Error
              (Plan.field_error ~field:"version" ~value:(string_of_int v)
                 ~range:(Printf.sprintf "{%d}" version))
          else
            let count = Jflat.int h "directives" in
            let directives =
              List.map (fun l -> parse_directive (Jflat.parse_exn l)) rest
            in
            if List.length directives <> count then
              Error
                (Plan.field_error ~field:"directives"
                   ~value:(string_of_int (List.length directives))
                   ~range:(Printf.sprintf "{%d}" count))
            else
              validate
                {
                  program = Jflat.str h "program";
                  nprocs = Jflat.int h "nprocs";
                  page_size = Jflat.int h "page_size";
                  level = Jflat.str h "level";
                  directives;
                }
      with Jflat.Parse_error msg -> Error msg)

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (if String.trim line = "" then acc else line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  with
  | lines -> of_lines lines
  | exception Sys_error msg -> Error msg

(* {1 Reporting helpers} *)

let n_pages t =
  List.fold_left (fun n d -> n + (d.hi_page - d.lo_page + 1)) 0 t.directives

let exact_directives t =
  List.filter (fun d -> d.confidence = Exact) t.directives

(* Directive covering [page], if any (first match; the classifier emits
   disjoint ranges). *)
let find t page =
  List.find_opt (fun d -> d.lo_page <= page && page <= d.hi_page) t.directives

(* The coherence-backend interface.

   A backend is one complete consistency protocol: it decides what happens
   at an access miss, how an interval's modifications are collected and
   exchanged at synchronization operations, and how the compiler-directed
   entry points (Validate / Validate_w_sync / Push) move data. Everything
   else — the simulated cluster, the shared address space, write-notice
   logs, vector clocks, the barrier/lock timing skeletons — is shared
   infrastructure (see {!Sync_ops.barrier_with} and friends).

   Two backends ship: the homeless lazy-release-consistency protocol of the
   paper ({!Backend_lrc}, TreadMarks-style: diffs stay with their writers
   and are fetched per writer on a miss) and a home-based LRC ({!Hlrc}:
   every page has a home processor, releasers eagerly flush their diffs to
   the home, and a miss fetches one up-to-date full page from it). *)

module type S = sig
  val name : string
  (** CLI / stats identifier ("lrc", "hlrc"). *)

  val read_fault : Types.system -> int -> int -> unit
  (** [read_fault sys p page]: access-miss handler for a read. *)

  val write_fault : Types.system -> int -> int -> unit
  (** Write-detection handler (invalid or write-protected page). *)

  val barrier : Types.t -> unit

  val lock_acquire : Types.t -> int -> unit

  val lock_release : Types.t -> int -> unit

  val validate :
    Types.t -> async:bool -> Dsm_rsd.Section.t list -> Types.access -> unit
  (** The augmented [Validate(section, access)] call (Figure 3). *)

  val validate_w_sync :
    Types.t -> async:bool -> Dsm_rsd.Section.t list -> Types.access -> unit
  (** [Validate_w_sync]: the request is piggy-backed on the next
      synchronization operation. *)

  val push :
    Types.t ->
    read_sections:Dsm_rsd.Section.t list array ->
    write_sections:Dsm_rsd.Section.t list array ->
    unit
  (** Compiler-directed point-to-point exchange replacing a barrier. *)
end

(* Reify a backend module as the closure record stored in {!Types.system};
   {!Tmk.make} selects the record once from [Config.backend]. *)
let ops (module B : S) : Types.backend_ops =
  {
    Types.b_name = B.name;
    b_read_fault = B.read_fault;
    b_write_fault = B.write_fault;
    b_barrier = B.barrier;
    b_lock_acquire = B.lock_acquire;
    b_lock_release = B.lock_release;
    b_validate = B.validate;
    b_validate_w_sync = B.validate_w_sync;
    b_push = B.push;
  }

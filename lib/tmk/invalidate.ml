(* Directory-based single-writer invalidate protocol.

   A sequentially consistent protocol family deliberately unlike the LRC
   variants, proving {!Backend.S} spans consistency models: each page has
   a directory entry (conceptually on processor [page mod nprocs]) holding
   an M/S/I summary — an owner whose copy is always current, an exclusive
   bit, and the sharer set. A read miss fetches the full page from the
   owner (downgrading it to shared if it held the page exclusively); a
   write fault invalidates every other valid copy before the writer is
   granted exclusivity. There are no twins, diffs, write notices or
   vector-clock traffic: data-race-free programs observe the same memory
   contents as under LRC, one whole page at a time.

   Simulator soundness notes:

   - The page table auto-creates zero-filled readable frames on first
     touch. Before the first directory transaction for a page that is
     fine (every copy is zero, all are valid); at entry creation the
     protocol neutralizes the artifact by forcing every non-directory
     frame to [No_access], so no processor can keep silently reading a
     copy the directory does not track.
   - Fault service never yields the engine turn, so a transaction reads
     quiescent remote state, exactly like the LRC fetch paths.
   - [Validate] with a [WRITE_ALL] access still fetches the page when the
     local copy is invalid: the validated ranges may cover only part of
     the page, and exclusivity over a stale frame would make the
     unwritten bytes authoritative. *)

open Types
module Cluster = Dsm_sim.Cluster
module Config = Dsm_sim.Config
module Stats = Dsm_sim.Stats
module Net = Dsm_net.Net
module Range = Dsm_rsd.Range
module Page_table = Dsm_mem.Page_table
module Prof = Dsm_prof.Prof

let name = "inval"
let dir_of sys page = page mod sys.nprocs

(* Directory entry, created at the first transaction for the page. The
   zero-frame neutralization costs nothing: it models the page starting
   unmapped everywhere except at the directory node, whose zero frame is
   the authoritative initial copy. *)
let entry sys page =
  match Hashtbl.find_opt sys.iv_dir page with
  | Some e -> e
  | None ->
      let d = dir_of sys page in
      for q = 0 to sys.nprocs - 1 do
        let pg = Page_table.get sys.states.(q).pt page in
        if q <> d then pg.Page_table.prot <- Page_table.No_access
      done;
      let e = { iv_owner = d; iv_excl = false; iv_sharers = [ d ] } in
      Hashtbl.replace sys.iv_dir page e;
      e

(* The copy just installed (or pushed whole) is current: advance the LRC
   watermarks so a later protocol switch (adaptive backend) or checker
   replay sees [applied = known]. A no-op under the pure invalidate
   backend, where no write notices ever flow. *)
let mark_current sys p page =
  let m = Protocol.meta sys.states.(p) ~nprocs:sys.nprocs page in
  Wmap.iter
    (fun q kv ->
      if kv > Wmap.get m.applied q then begin
        Wmap.set m.applied q kv;
        Diff_store.note_applied sys.store ~writer:q ~page ~by:p ~seq:kv
      end)
    m.known

(* Install the authoritative copy held by [src] into [p]'s frame, paying
   one data roundtrip (plus a control roundtrip to a remote directory node
   when it is neither endpoint). *)
let fetch_from sys p page ~src =
  let cfg = sys.cluster.Cluster.cfg in
  let d = dir_of sys page in
  if d <> p && d <> src then
    Net.rpc sys.net ~src:p ~dst:d ~req_bytes:16 ~resp_bytes:16 ~service:0.0;
  Net.rpc sys.net ~src:p ~dst:src ~req_bytes:16
    ~resp_bytes:(sys.page_size + 16) ~service:cfg.Config.diff_service_us;
  let spg = Page_table.get sys.states.(src).pt page in
  let pg = Page_table.get sys.states.(p).pt page in
  Bytes.blit spg.Page_table.data 0 pg.Page_table.data 0 sys.page_size;
  Cluster.charge sys.cluster p
    (cfg.Config.diff_apply_per_byte_us *. float_of_int sys.page_size);
  let pstats = sys.cluster.Cluster.stats.(p) in
  pstats.Stats.diff_bytes_applied <-
    pstats.Stats.diff_bytes_applied + sys.page_size;
  mark_current sys p page;
  if sys.trace <> None then
    Protocol.emit sys p (Dsm_trace.Event.Fetch_done { page; full = true })

(* Which processor serves the data: the exclusive owner when there is
   one, otherwise the directory node if its copy is valid (two-hop miss),
   otherwise the owner of record (three-hop miss). *)
let source_of sys e page =
  if e.iv_excl then e.iv_owner
  else
    let d = dir_of sys page in
    if List.mem d e.iv_sharers then d else e.iv_owner

(* {1 The two directory transactions} *)

(* Read miss: join the sharers, downgrading an exclusive owner. *)
let ensure_shared sys p page =
  let e = entry sys page in
  if not (List.mem p e.iv_sharers) then begin
    if e.iv_excl then begin
      let o = e.iv_owner in
      let opg = Page_table.get sys.states.(o).pt page in
      if opg.Page_table.prot = Page_table.Read_write then
        opg.Page_table.prot <- Page_table.Read_only;
      e.iv_excl <- false;
      let ostats = sys.cluster.Cluster.stats.(o) in
      ostats.Stats.downgrades <- ostats.Stats.downgrades + 1;
      if sys.trace <> None then
        Protocol.emit sys o (Dsm_trace.Event.Downgrade { page; reader = p })
    end;
    fetch_from sys p page ~src:(source_of sys e page);
    e.iv_sharers <- List.sort_uniq compare (p :: e.iv_sharers)
  end;
  let pg = Page_table.get sys.states.(p).pt page in
  if pg.Page_table.prot = Page_table.No_access then
    pg.Page_table.prot <- Page_table.Read_only

(* Write fault/upgrade: invalidate every other valid copy, fetching the
   current contents first when the writer's own copy is invalid. *)
let ensure_excl sys p page =
  let e = entry sys page in
  if not (e.iv_excl && e.iv_owner = p) then begin
    let cfg = sys.cluster.Cluster.cfg in
    let d = dir_of sys page in
    if not (List.mem p e.iv_sharers) then
      fetch_from sys p page ~src:(source_of sys e page)
    else if d <> p then
      (* upgrade: control roundtrip to the directory only *)
      Net.rpc sys.net ~src:p ~dst:d ~req_bytes:16 ~resp_bytes:16 ~service:0.0;
    let victims = List.filter (fun q -> q <> p) e.iv_sharers in
    if victims <> [] then begin
      let acks =
        List.map
          (fun q ->
            if sys.trace <> None then
              Protocol.emit sys d (Dsm_trace.Event.Inval_send { page; dst = q });
            let arrival = Net.send sys.net ~src:d ~dst:q ~bytes:16 in
            let qpg = Page_table.get sys.states.(q).pt page in
            qpg.Page_table.prot <- Page_table.No_access;
            (* the victim's handler drops the copy and acks to the writer *)
            let service =
              cfg.Config.interrupt_us +. (2.0 *. cfg.Config.msg_overhead_us)
            in
            Cluster.charge sys.cluster q service;
            let qstats = sys.cluster.Cluster.stats.(q) in
            qstats.Stats.messages <- qstats.Stats.messages + 1;
            qstats.Stats.bytes <- qstats.Stats.bytes + 16;
            if sys.trace <> None then
              Protocol.emit sys q
                (Dsm_trace.Event.Inval_ack { page; writer = p });
            let start =
              Cluster.occupy sys.cluster q ~arrival ~handler_time:service
            in
            start +. service +. cfg.Config.wire_latency_us)
          victims
      in
      List.iter
        (fun ack ->
          Cluster.recv_charge sys.cluster ~dst:p ~arrival:ack ~interrupt:false)
        acks;
      let pstats = sys.cluster.Cluster.stats.(p) in
      pstats.Stats.invals <- pstats.Stats.invals + List.length victims
    end;
    e.iv_owner <- p;
    e.iv_excl <- true;
    e.iv_sharers <- [ p ]
  end;
  (Page_table.get sys.states.(p).pt page).Page_table.prot <-
    Page_table.Read_write

(* {1 Fault handlers} *)

let read_fault sys p page =
  Prof.enter Prof.Protocol;
  let pstats = sys.cluster.Cluster.stats.(p) in
  pstats.Stats.segv <- pstats.Stats.segv + 1;
  Cluster.mm_op sys.cluster p ~npages:1;
  if sys.trace <> None then
    Protocol.emit sys p
      (Dsm_trace.Event.Page_fault { page; write = false; fetch = true });
  ensure_shared sys p page;
  Prof.exit Prof.Protocol

let write_fault sys p page =
  Prof.enter Prof.Protocol;
  let pstats = sys.cluster.Cluster.stats.(p) in
  pstats.Stats.segv <- pstats.Stats.segv + 1;
  Cluster.mm_op sys.cluster p ~npages:1;
  let pg = Page_table.get sys.states.(p).pt page in
  let fetch = pg.Page_table.prot = Page_table.No_access in
  if sys.trace <> None then
    Protocol.emit sys p
      (Dsm_trace.Event.Page_fault { page; write = true; fetch });
  ensure_excl sys p page;
  Prof.exit Prof.Protocol

(* {1 Synchronization}

   The shared skeletons provide the timing; the protocol closes no
   intervals at a release (there are none), and piggy-backed section
   requests are answered by running the directory transactions at the
   synchronization point. *)

let release _sys _p = None
let no_bcast _sys ~epoch:_ ~departure_clock:_ _entries = None

let satisfy_req sys p req =
  let pages = Range.pages ~page_size:sys.page_size req.wr_ranges in
  match req.wr_access with
  | Read -> List.iter (ensure_shared sys p) pages
  | Write | Read_write | Write_all | Read_write_all ->
      List.iter (ensure_excl sys p) pages

let handle_wsync sys p ~epoch:_ ~departure_clock:_ ~my_reqs =
  List.iter (satisfy_req sys p) my_reqs

let barrier t =
  Sync_ops.barrier_with ~release ~plan_bcast:no_bcast ~handle_wsync t

let answer_wsync sys p ~grantor:_ ~grant_ready:_ req = satisfy_req sys p req
let lock_acquire t lid = Sync_ops.lock_acquire_with ~answer_wsync t lid
let lock_release t lid = Sync_ops.lock_release_with ~release t lid

(* {1 The augmented interface} *)

let validate t ~async sections access =
  Prof.enter Prof.Sync;
  let sys = t.sys
  and p = t.p in
  let pstats = Types.stats t in
  pstats.Stats.validates <- pstats.Stats.validates + 1;
  let ranges = Validate.ranges_of_sections sections in
  let pages = Range.pages ~page_size:sys.page_size ranges in
  if sys.trace <> None then
    Protocol.emit sys p
      (Dsm_trace.Event.Validate
         {
           access = access_to_string access;
           npages = List.length pages;
           async;
           w_sync = false;
         });
  (* the asynchronous variant has nothing to overlap with here: a
     directory transaction completes within the call, which is always
     correct (async is a pure optimization hint) *)
  (match access with
  | Read -> List.iter (ensure_shared sys p) pages
  | Write | Read_write | Write_all | Read_write_all ->
      List.iter (ensure_excl sys p) pages);
  Prof.exit Prof.Sync

let validate_w_sync t ~async sections access =
  Validate.validate_w_sync t ~async sections access

(* Push: the sender necessarily owns every page it pushes (it wrote the
   data), so the in-place payload is valid. A receiver whose copy the
   push covers completely joins the sharers — which is a downgrade of the
   exclusive sender, exactly as if the receiver had read-missed: the
   owner loses write access (its next write must re-invalidate the new
   sharers) and the receiver's copy becomes a tracked, current one. A
   partially covered copy stays invalid — the compiler-guaranteed reads
   of the pushed region then fault and fetch the whole page from the
   owner, which the push rendezvous has already ordered after the
   writes. *)
let push_received sys p ~src:_ ~page ~covered =
  if covered then begin
    let e = entry sys page in
    if e.iv_excl then begin
      let o = e.iv_owner in
      let opg = Page_table.get sys.states.(o).pt page in
      if opg.Page_table.prot = Page_table.Read_write then
        opg.Page_table.prot <- Page_table.Read_only;
      e.iv_excl <- false;
      let ostats = sys.cluster.Cluster.stats.(o) in
      ostats.Stats.downgrades <- ostats.Stats.downgrades + 1;
      if sys.trace <> None then
        Protocol.emit sys o (Dsm_trace.Event.Downgrade { page; reader = p })
    end;
    e.iv_sharers <- List.sort_uniq compare (p :: e.iv_sharers);
    mark_current sys p page;
    let pg = Page_table.get sys.states.(p).pt page in
    if pg.Page_table.prot = Page_table.No_access then
      pg.Page_table.prot <- Page_table.Read_only;
    if sys.trace <> None then
      Protocol.emit sys p (Dsm_trace.Event.Fetch_done { page; full = true })
  end

let push t ~read_sections ~write_sections =
  let sys = t.sys
  and p = t.p in
  Validate.push_with ~release
    ~is_inval:(fun _ -> true)
    ~on_inval:(push_received sys p)
    t ~read_sections ~write_sections

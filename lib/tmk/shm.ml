(* Typed access to the simulated shared segment.

   This is the load/store interface of the DSM: each access consults the
   page protection bits and enters the protocol's fault handlers exactly
   where a hardware MMU would deliver SIGSEGV. Elements are 4- or 8-byte
   aligned, and the page size is a multiple of 8, so no element straddles a
   page boundary. *)

open Types
module Page_table = Dsm_mem.Page_table
module Section = Dsm_rsd.Section

(* The common page sizes are powers of two; {!Types.system} caches the
   shift and mask so each access costs two bit ops instead of an integer
   division and a modulo (the dominant host cost of a run is exactly this
   per-element path). *)
let[@inline] page_of t addr =
  let s = t.sys.page_shift in
  if s >= 0 then addr lsr s else addr / t.sys.page_size

let[@inline] offset_of t addr =
  let s = t.sys.page_shift in
  if s >= 0 then addr land t.sys.page_mask else addr mod t.sys.page_size

let[@inline] page_for_read t addr =
  let page = page_of t addr in
  let pg = Page_table.get t.st.pt page in
  match pg.Page_table.prot with
  | Page_table.No_access ->
      (* cold path: enter the selected backend's fault handler *)
      t.sys.bops.b_read_fault t.sys t.p page;
      Page_table.get t.st.pt page
  | Page_table.Read_only | Page_table.Read_write -> pg

let[@inline] page_for_write t addr =
  let page = page_of t addr in
  let pg = Page_table.get t.st.pt page in
  match pg.Page_table.prot with
  | Page_table.Read_write -> pg
  | Page_table.No_access | Page_table.Read_only ->
      t.sys.bops.b_write_fault t.sys t.p page;
      Page_table.get t.st.pt page

(* Unchecked native-order 64-bit access. Eight-byte elements are 8-aligned
   ({!Dsm_mem.Addr_space} aligns every base to 8) and the page size is a
   multiple of 8, so the in-page offset is always within [0, page_size-8]:
   the bound check on every load/store would never fire. Native order
   equals the little-endian wire format everywhere this simulator runs; on
   a big-endian host we fall back to the checked LE accessors so results
   stay identical ([Sys.big_endian] is a compile-time constant). *)
external unsafe_get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set_64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let[@inline] get_64_le b off =
  if Sys.big_endian then Bytes.get_int64_le b off else unsafe_get_64 b off

let[@inline] set_64_le b off v =
  if Sys.big_endian then Bytes.set_int64_le b off v else unsafe_set_64 b off v

let get_f64 t addr =
  let pg = page_for_read t addr in
  Int64.float_of_bits (get_64_le pg.Page_table.data (offset_of t addr))

let set_f64 t addr v =
  let pg = page_for_write t addr in
  set_64_le pg.Page_table.data (offset_of t addr) (Int64.bits_of_float v)

let get_i64 t addr =
  let pg = page_for_read t addr in
  get_64_le pg.Page_table.data (offset_of t addr) |> Int64.to_int

let set_i64 t addr v =
  let pg = page_for_write t addr in
  set_64_le pg.Page_table.data (offset_of t addr) (Int64.of_int v)

let get_raw64 t addr =
  let pg = page_for_read t addr in
  get_64_le pg.Page_table.data (offset_of t addr)

let get_i32 t addr =
  let pg = page_for_read t addr in
  Bytes.get_int32_le pg.Page_table.data (offset_of t addr) |> Int32.to_int

let set_i32 t addr v =
  let pg = page_for_write t addr in
  Bytes.set_int32_le pg.Page_table.data (offset_of t addr) (Int32.of_int v)

(* {1 Array views}

   Thin wrappers computing byte addresses from indices (column-major, as in
   the Fortran originals: the first index is contiguous). *)

module F64_1 = struct
  type t = Section.array_info

  let[@inline] addr (a : t) i = a.Section.base + (8 * i)
  let get tmk a i = get_f64 tmk (addr a i)
  let set tmk a i v = set_f64 tmk (addr a i) v
  let length (a : t) = a.Section.extents.(0)

  let section (a : t) (lo, hi, st) =
    Section.make a (Dsm_rsd.Rsd.make [ (lo, hi, st) ])
end

module F64_2 = struct
  type t = Section.array_info

  (* a 2-D view always carries two extents, so the bound check is dead *)
  let[@inline] addr (a : t) i j =
    a.Section.base + (8 * (i + (Array.unsafe_get a.Section.extents 0 * j)))

  let get tmk a i j = get_f64 tmk (addr a i j)
  let set tmk a i j v = set_f64 tmk (addr a i j) v

  (* read-modify-write with a single page lookup *)
  let rmw tmk a i j f =
    let ad = addr a i j in
    let pg = page_for_write tmk ad in
    let off = offset_of tmk ad in
    let x = Int64.float_of_bits (get_64_le pg.Page_table.data off) in
    set_64_le pg.Page_table.data off (Int64.bits_of_float (f x))
  let dim0 (a : t) = a.Section.extents.(0)
  let dim1 (a : t) = a.Section.extents.(1)

  let section (a : t) (lo0, hi0, st0) (lo1, hi1, st1) =
    Section.make a (Dsm_rsd.Rsd.make [ (lo0, hi0, st0); (lo1, hi1, st1) ])
end

module F64_3 = struct
  type t = Section.array_info

  let[@inline] addr (a : t) i j k =
    let e = a.Section.extents in
    a.Section.base
    + 8 * (i + (Array.unsafe_get e 0 * (j + (Array.unsafe_get e 1 * k))))

  let get tmk a i j k = get_f64 tmk (addr a i j k)
  let set tmk a i j k v = set_f64 tmk (addr a i j k) v

  let section (a : t) d0 d1 d2 =
    let tr (lo, hi, st) = (lo, hi, st) in
    Section.make a (Dsm_rsd.Rsd.make [ tr d0; tr d1; tr d2 ])
end

module I64_1 = struct
  type t = Section.array_info

  let[@inline] addr (a : t) i = a.Section.base + (8 * i)
  let get tmk a i = get_i64 tmk (addr a i)
  let set tmk a i v = set_i64 tmk (addr a i) v
  let length (a : t) = a.Section.extents.(0)

  let section (a : t) (lo, hi, st) =
    Section.make a (Dsm_rsd.Rsd.make [ (lo, hi, st) ])
end

(** Barriers and locks, with the paper's piggy-backing extensions.

    Timing is calibrated against Section 5 of the paper: with the default
    {!Dsm_sim.Config}, an 8-processor barrier costs a client 893 µs and a
    free remote lock acquisition 427 µs.

    {b Barrier}: arrival messages carry the processor's new write notices
    (and any pending [Validate_w_sync] section requests) to the master;
    the master merges and redistributes on the departure messages. Pending
    section requests are answered at departure with the diffs each
    processor holds — by a broadcast when the run-time detects that all
    requesters want the same data from a single producer (Section 3.2.1).

    {b Lock}: requests go to the lock's static manager and are forwarded to
    the holder; the grant message carries the write notices of the
    releaser's happens-before history and, for a piggy-backed section
    request, the diffs the releaser holds locally. Queued requests are
    granted in virtual-time arrival order. *)

val wsync_req_bytes : Types.system -> Types.wsync_req list -> int
(** Wire size of piggy-backed section requests (ranges + per-page
    timestamps). *)

val wsync_req_pages : Types.system -> Types.wsync_req list -> int list

val detect_bcast :
  Types.system ->
  epoch:int ->
  departure_clock:float ->
  (int * Types.wsync_req list) list ->
  (int * Types.bcast_plan) option
(** Homeless-LRC broadcast detection at barrier departure (Section 3.2.1):
    when every requester piggy-backed the same sections and a single
    processor holds all the new data, answer with one broadcast. *)

val handle_wsync_at_barrier :
  Types.system ->
  int ->
  epoch:int ->
  departure_clock:float ->
  my_reqs:Types.wsync_req list ->
  unit
(** Homeless-LRC requester/responder processing of piggy-backed section
    requests after barrier departure. *)

val barrier_with :
  release:(Types.system -> int -> (int * int list) option) ->
  plan_bcast:
    (Types.system ->
    epoch:int ->
    departure_clock:float ->
    (int * Types.wsync_req list) list ->
    (int * Types.bcast_plan) option) ->
  handle_wsync:
    (Types.system ->
    int ->
    epoch:int ->
    departure_clock:float ->
    my_reqs:Types.wsync_req list ->
    unit) ->
  Types.t ->
  unit
(** The protocol-independent barrier skeleton. Arrival/departure timing,
    write-notice redistribution, partial-push rollback and the
    piggy-backed-request plumbing are shared by all backends; the closures
    supply what varies: how the closing interval is released, whether the
    departure plans a broadcast, and how the section requests are
    answered. *)

val barrier : Types.t -> unit
(** {!barrier_with} instantiated for the homeless LRC backend: release,
    arrive, wait for everyone, depart: pull the merged write notices, roll
    back partially pushed pages (full consistency is restored at every
    global synchronization, Section 3.1.2), and process piggy-backed
    section requests. *)

val get_lock : Types.system -> int -> Types.lock

val answer_wsync_from_grantor :
  Types.system ->
  int ->
  grantor:int ->
  grant_ready:float ->
  Types.wsync_req ->
  unit
(** Homeless-LRC answer to a section request piggy-backed on a lock
    acquire: the grantor ships the diffs it holds locally on the grant
    message. *)

val lock_acquire_with :
  answer_wsync:
    (Types.system ->
    int ->
    grantor:int ->
    grant_ready:float ->
    Types.wsync_req ->
    unit) ->
  Types.t ->
  int ->
  unit
(** The protocol-independent lock-acquire skeleton; [answer_wsync] supplies
    the backend's handling of piggy-backed section requests on the grant. *)

val lock_acquire : Types.t -> int -> unit
(** Acquire the lock, receiving the releaser's happens-before write notices
    on the grant; consumes any pending [Validate_w_sync] requests. *)

val lock_release_with :
  release:(Types.system -> int -> (int * int list) option) ->
  Types.t ->
  int ->
  unit
(** The protocol-independent lock-release skeleton; [release] closes the
    current interval the backend's way. *)

val lock_release : Types.t -> int -> unit
(** Release locally (no message); grant to the earliest queued requester,
    if any.
    @raise Invalid_argument if the caller does not hold the lock. *)

(* The augmented run-time interface of Section 3 of the paper: [Validate],
   [Validate_w_sync] and [Push]. *)

open Types
module Cluster = Dsm_sim.Cluster
module Config = Dsm_sim.Config
module Stats = Dsm_sim.Stats
module Engine = Dsm_sim.Engine
module Net = Dsm_net.Net
module Range = Dsm_rsd.Range
module Section = Dsm_rsd.Section
module Page_table = Dsm_mem.Page_table
module Prof = Dsm_prof.Prof

let ranges_of_sections sections =
  List.fold_left
    (fun acc s -> Range.union acc (Section.ranges s))
    Range.empty sections

let clip_to_pages sys ranges pages =
  List.fold_left
    (fun acc page ->
      Range.union acc (Range.clip_to_page ~page_size:sys.page_size ~page ranges))
    Range.empty pages

(* Validate(section, access_type), Figure 3. The synchronous version fetches
   and applies diffs before returning; the asynchronous version only sends
   the fetch requests — the page-fault handler completes the work at the
   first access (Section 3.2.3).

   Pages inside an object-granularity region whose validated objects are
   all current are dropped from the fetch ({!Protocol.obj_skip}); their
   access state is still applied (asynchronous validates apply it
   immediately — no request is in flight, so the fault handler must never
   run for them). The converse case — a page an earlier skip left
   accessible that is now validated with a stale object — cannot be
   fetched asynchronously at all: no fault will run to consume the
   response, so {!Protocol.split_unfaultable} routes it through the
   synchronous fetch. *)
let validate t ?(async = false) sections access =
  Prof.enter Prof.Sync;
  let sys = t.sys
  and p = t.p in
  let pstats = stats t in
  pstats.Stats.validates <- pstats.Stats.validates + 1;
  let ranges = ranges_of_sections sections in
  let pages = Range.pages ~page_size:sys.page_size ranges in
  if sys.trace <> None then
    Protocol.emit sys p
      (Dsm_trace.Event.Validate
         {
           access = access_to_string access;
           npages = List.length pages;
           async;
           w_sync = false;
         });
  (match access with
  | Read | Write | Read_write ->
      let fetch_pages, skipped = Protocol.obj_skip sys p ~ranges pages in
      if async then begin
        let faultable, unfaultable =
          Protocol.split_unfaultable sys p fetch_pages
        in
        Protocol.async_fetch sys p faultable;
        if unfaultable <> [] then
          Protocol.fetch_and_apply sys p unfaultable ~mode:Protocol.Rpc ();
        if skipped <> [] || unfaultable <> [] then
          Protocol.apply_access_state sys p
            ~ranges:(clip_to_pages sys ranges (skipped @ unfaultable))
            ~access
      end
      else begin
        Protocol.fetch_and_apply sys p fetch_pages ~mode:Protocol.Rpc ();
        Protocol.apply_access_state sys p ~ranges ~access
      end
  | Write_all ->
      (* no data movement: consistency deliberately bypassed *)
      Protocol.apply_access_state sys p ~ranges ~access
  | Read_write_all ->
      let fetch_pages, skipped = Protocol.obj_skip sys p ~ranges pages in
      if async then begin
        let faultable, unfaultable =
          Protocol.split_unfaultable sys p fetch_pages
        in
        Protocol.async_fetch sys p faultable;
        if unfaultable <> [] then
          Protocol.fetch_and_apply sys p unfaultable ~mode:Protocol.Rpc ();
        (* record now so the fault handler skips twin creation *)
        Protocol.record_write_all sys p ranges;
        if skipped <> [] || unfaultable <> [] then
          Protocol.apply_access_state sys p
            ~ranges:(clip_to_pages sys ranges (skipped @ unfaultable))
            ~access
      end
      else begin
        Protocol.fetch_and_apply sys p fetch_pages ~mode:Protocol.Rpc ();
        Protocol.apply_access_state sys p ~ranges ~access
      end);
  Prof.exit Prof.Sync

(* Validate_w_sync: identical to Validate, but the request for diffs is
   piggy-backed on the next synchronization operation (lock acquire or
   barrier), where it is answered with the diffs the releaser (or the other
   processors) hold locally. *)
let validate_w_sync t ?(async = false) sections access =
  let sys = t.sys in
  let st = state t in
  let pstats = stats t in
  pstats.Stats.validates <- pstats.Stats.validates + 1;
  let ranges = ranges_of_sections sections in
  if sys.trace <> None then
    Protocol.emit sys t.p
      (Dsm_trace.Event.Validate
         {
           access = access_to_string access;
           npages = List.length (Range.pages ~page_size:sys.page_size ranges);
           async;
           w_sync = true;
         });
  st.pending_wsync <-
    st.pending_wsync
    @ [ { wr_ranges = ranges; wr_access = access; wr_async = async } ]

(* Push(r_section[0..N-1], w_section[0..N-1]), Figure 3: replaces a barrier
   with point-to-point exchanges of exactly the data written before and read
   after. Data is received in place, not as diffs. Only the pushed sections
   are made consistent; full consistency is restored at the next barrier.

   The exchange itself is protocol-independent; [release] closes the
   sender's interval the backend's way (the homeless LRC keeps the diffs
   for later fetches, HLRC additionally flushes them to the homes).

   Pages governed by the single-writer invalidate protocol ([is_inval])
   carry no interval watermarks: the sender owns them exclusively (it
   wrote them), so the payload bytes are valid, but the receiver-side LRC
   bookkeeping (watermarks, partial-push tracking, revalidation) must not
   run — the backend decides what receipt means via [on_inval]. *)
let push_with ~release ?(is_inval = fun _ -> false)
    ?(on_inval = fun ~src:_ ~page:_ ~covered:_ -> ()) t ~read_sections
    ~write_sections =
  Prof.enter Prof.Sync;
  let sys = t.sys
  and p = t.p in
  let st = state t in
  let cfg = sys.cluster.Cluster.cfg in
  let pstats = stats t in
  pstats.Stats.pushes <- pstats.Stats.pushes + 1;
  let entry = release sys p in
  let my_seq = Vc.get st.vc p in
  let my_writes = ranges_of_sections write_sections.(p) in
  (* send phase *)
  for i = 0 to sys.nprocs - 1 do
    if i <> p then begin
      let inter = Range.inter (ranges_of_sections read_sections.(i)) my_writes in
      if not (Range.is_empty inter) then begin
        (* collect payload from my own copy *)
        let payload = ref [] in
        Range.iter inter (fun ~lo ~hi ->
            let buf = Bytes.create (hi - lo) in
            let pos = ref lo in
            while !pos < hi do
              let page = !pos / sys.page_size in
              let off = !pos mod sys.page_size in
              let len = min (hi - !pos) (sys.page_size - off) in
              let pg = Page_table.get st.pt page in
              Bytes.blit pg.Page_table.data off buf (!pos - lo) len;
              pos := !pos + len
            done;
            payload := (lo, buf) :: !payload);
        (* back-pressure: at most one in-flight push per (src, dst) pair *)
        Prof.exit Prof.Sync;
        Engine.block ~until:(fun () -> not (Hashtbl.mem sys.pushbox (p, i)));
        Prof.enter Prof.Sync;
        let bytes = Range.size inter + 32 in
        let arrival = Net.send sys.net ~src:p ~dst:i ~bytes in
        if sys.trace <> None then
          Protocol.emit sys p
            (Dsm_trace.Event.Push_send { dst = i; bytes; seq = my_seq });
        Hashtbl.replace sys.pushbox (p, i)
          {
            pm_arrival = arrival;
            pm_payload = List.rev !payload;
            pm_seq = my_seq;
            pm_notices = (match entry with Some e -> [ e ] | None -> []);
            pm_vc = Vc.copy st.vc;
          }
      end
    end
  done;
  (* receive phase *)
  let my_reads = ranges_of_sections read_sections.(p) in
  for i = 0 to sys.nprocs - 1 do
    if i <> p then begin
      let expect =
        Range.inter (ranges_of_sections write_sections.(i)) my_reads
      in
      if not (Range.is_empty expect) then begin
        Prof.exit Prof.Sync;
        Engine.block ~until:(fun () -> Hashtbl.mem sys.pushbox (i, p));
        Prof.enter Prof.Sync;
        let msg = Hashtbl.find sys.pushbox (i, p) in
        Hashtbl.remove sys.pushbox (i, p);
        Cluster.recv_charge sys.cluster ~dst:p ~arrival:msg.pm_arrival
          ~interrupt:true;
        (* overlay the pushed data in place *)
        let pushed_ranges = ref Range.empty in
        let total = ref 0 in
        List.iter
          (fun (lo, buf) ->
            let hi = lo + Bytes.length buf in
            total := !total + (hi - lo);
            pushed_ranges := Range.union !pushed_ranges (Range.of_interval lo hi);
            let pos = ref lo in
            while !pos < hi do
              let page = !pos / sys.page_size in
              let off = !pos mod sys.page_size in
              let len = min (hi - !pos) (sys.page_size - off) in
              let pg = Page_table.get st.pt page in
              Bytes.blit buf (!pos - lo) pg.Page_table.data off len;
              (match pg.Page_table.twin with
              | Some twin -> Bytes.blit buf (!pos - lo) twin off len
              | None -> ());
              pos := !pos + len
            done)
          msg.pm_payload;
        Cluster.charge sys.cluster p
          (cfg.Config.diff_apply_per_byte_us *. float_of_int !total);
        if sys.trace <> None then
          Protocol.emit sys p
            (Dsm_trace.Event.Push_recv
               {
                 src = i;
                 bytes = !total;
                 seq = msg.pm_seq;
                 pages = Range.pages ~page_size:sys.page_size !pushed_ranges;
               });
        (* The pushed interval counts as received in place for every page it
           touched — even partially covered ones: the compiler guarantees
           the program does not read the regions left inconsistent, and the
           next global synchronization restores full consistency for
           everything else (the sender's write notices still travel with the
           barrier, but find [applied = known] for these pages). *)
        let revalidated = ref [] in
        List.iter
          (fun page ->
            if is_inval page then
              on_inval ~src:i ~page
                ~covered:
                  (Range.covers !pushed_ranges ~lo:(page * sys.page_size)
                     ~hi:((page + 1) * sys.page_size))
            else begin
            let m = Protocol.meta st ~nprocs:sys.nprocs page in
            if msg.pm_seq > Wmap.get m.applied i then begin
              Wmap.set m.applied i msg.pm_seq;
              if msg.pm_seq > Wmap.get m.known i then
                Wmap.set m.known i msg.pm_seq;
              Diff_store.note_applied sys.store ~writer:i ~page ~by:p
                ~seq:msg.pm_seq;
              if
                not
                  (Range.covers !pushed_ranges ~lo:(page * sys.page_size)
                     ~hi:((page + 1) * sys.page_size))
              then
                (* the rest of the page stays inconsistent until the next
                   global synchronization rolls this watermark back *)
                st.partial_push <- (page, i, msg.pm_seq) :: st.partial_push
            end;
            let pg = Page_table.get st.pt page in
            if pg.Page_table.prot = Page_table.No_access then begin
              let stale =
                Wmap.exists
                  (fun q kv -> q <> p && kv > Wmap.get m.applied q)
                  m.known
              in
              if not stale then begin
                pg.Page_table.prot <- Page_table.Read_only;
                revalidated := page :: !revalidated
              end
            end
            end)
          (Range.pages ~page_size:sys.page_size !pushed_ranges);
        if !revalidated <> [] then Protocol.protect_runs sys p !revalidated
      end
    end
  done;
  Prof.exit Prof.Sync

let push t ~read_sections ~write_sections =
  push_with ~release:Protocol.release t ~read_sections ~write_sections

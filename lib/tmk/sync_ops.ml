(* Barrier and lock operations.

   Timing model (calibrated against Section 5 of the paper, see
   {!Dsm_sim.Config}): a barrier costs the arrival messages to the master,
   sequential processing of the n-1 arrivals, n-1 departure sends and the
   return latency; a free remote lock costs a request/grant roundtrip plus
   the manager's service time. Write notices travel on arrival/departure and
   grant messages; piggy-backed section requests (Validate_w_sync) are
   answered with diff messages sent at departure/grant time. *)

open Types
module Cluster = Dsm_sim.Cluster
module Config = Dsm_sim.Config
module Stats = Dsm_sim.Stats
module Engine = Dsm_sim.Engine
module Net = Dsm_net.Net
module Range = Dsm_rsd.Range
module Prof = Dsm_prof.Prof

let wsync_req_bytes sys reqs =
  List.fold_left
    (fun acc r ->
      acc
      + (16 * List.length r.wr_ranges)
      + (8 * List.length (Range.pages ~page_size:sys.page_size r.wr_ranges)))
    0 reqs

let wsync_req_pages sys reqs =
  List.concat_map
    (fun r -> Range.pages ~page_size:sys.page_size r.wr_ranges)
    reqs
  |> List.sort_uniq compare

(* Number of write notices in my log newer than what I last shipped. *)
let new_notice_count sys p =
  let st = sys.states.(p) in
  Ilog.count_since sys.logs.(p) st.notices_sent_seq

(* {1 Barrier} *)

(* Detect the broadcast opportunity: every requester asked for the same
   ranges and a single processor holds all the new data for them. *)
let detect_bcast sys ~epoch ~departure_clock entries =
  if not sys.cluster.Cluster.cfg.Config.enable_bcast then None
  else
  match entries with
  | [] | [ _ ] -> None
  | (_, reqs0) :: _ -> (
      let ranges0 =
        match reqs0 with [ r ] -> Some r.wr_ranges | _ -> None
      in
      match ranges0 with
      | None -> None
      | Some ranges0 ->
          let same =
            List.for_all
              (fun (_, reqs) ->
                match reqs with
                | [ r ] -> r.wr_ranges = ranges0
                | _ -> false)
              entries
          in
          if not same || List.length entries < sys.nprocs - 1 then None
          else begin
            let pages = Range.pages ~page_size:sys.page_size ranges0 in
            let requesters = List.map fst entries in
            (* candidate senders: processors whose write notices — already
               received, or about to be distributed with this departure —
               some requester has not applied yet for the requested pages *)
            let pending_seq q page r =
              (* newest interval of [q] touching [page] within the window
                 the requester [r] is about to learn of *)
              let upto = Vc.get sys.barrier.departure_vc q in
              let lo = Vc.get sys.states.(r).vc q in
              Ilog.newest_containing sys.logs.(q) ~lo ~upto page
            in
            let writers = ref [] in
            List.iter
              (fun (r, _) ->
                List.iter
                  (fun page ->
                    let m =
                      Protocol.meta sys.states.(r) ~nprocs:sys.nprocs page
                    in
                    for q = 0 to sys.nprocs - 1 do
                      if
                        q <> r
                        && (Wmap.get m.applied q < Wmap.get m.known q
                           || Wmap.get m.applied q < pending_seq q page r)
                        && not (List.mem q !writers)
                      then writers := q :: !writers
                    done)
                  pages)
              entries;
            match !writers with
            | [ q ] when not (List.mem q requesters) ->
                let cfg = sys.cluster.Cluster.cfg in
                (* the minimum applied watermark among the requesters
                   determines how much history the broadcast must carry *)
                let bytes =
                  List.fold_left
                    (fun acc page ->
                      ignore (Protocol.materialize sys ~writer:q ~page);
                      let after =
                        List.fold_left
                          (fun acc (r, _) ->
                            let m =
                              Protocol.meta sys.states.(r) ~nprocs:sys.nprocs
                                page
                            in
                            min acc (Wmap.get m.applied q))
                          max_int entries
                      in
                      let f =
                        Diff_store.fetch sys.store ~writer:q ~page ~after
                          ~upto:max_int
                      in
                      acc + f.Diff_store.charge_bytes)
                    0 pages
                in
                let per_hop =
                  cfg.Config.msg_overhead_us
                  +. (cfg.Config.per_byte_us *. float_of_int bytes)
                  +. cfg.Config.wire_latency_us +. cfg.Config.msg_overhead_us
                in
                Some
                  ( epoch,
                    {
                      bp_src = q;
                      bp_pages = pages;
                      bp_base = departure_clock;
                      bp_per_hop = per_hop;
                      bp_requesters = requesters;
                      bp_bytes = bytes;
                    } )
            | _ -> None
          end)

(* Requester/responder processing of piggy-backed section requests, executed
   by each processor right after barrier departure. *)
let handle_wsync_at_barrier sys p ~epoch ~departure_clock ~my_reqs =
  let b = sys.barrier in
  let cfg = sys.cluster.Cluster.cfg in
  let entries = Option.value ~default:[] (Hashtbl.find_opt b.wsync_tbl epoch) in
  (* Responder side: every processor must match every other requester's
     sections against its page list — the per-page overhead that makes
     sync+data merging unprofitable for large page lists (Section 3.3). *)
  List.iter
    (fun (r, reqs) ->
      if r <> p then
        Cluster.charge sys.cluster p
          (cfg.Config.wsync_scan_per_page_us
          *. float_of_int (List.length (wsync_req_pages sys reqs))))
    entries;
  (* Broadcast source side. *)
  (match b.bcast_plan with
  | Some (e, plan) when e = epoch && plan.bp_src = p ->
      let bytes = plan.bp_bytes in
      let pstats = sys.cluster.Cluster.stats.(p) in
      pstats.Stats.messages <- pstats.Stats.messages + (sys.nprocs - 1);
      pstats.Stats.bytes <- pstats.Stats.bytes + (bytes * (sys.nprocs - 1));
      pstats.Stats.broadcasts <- pstats.Stats.broadcasts + 1;
      let hops =
        if cfg.Config.bcast_log_tree then
          int_of_float (ceil (log (float_of_int sys.nprocs) /. log 2.0))
        else sys.nprocs - 1
      in
      Cluster.charge sys.cluster p
        (float_of_int hops
        *. (cfg.Config.msg_overhead_us
           +. (cfg.Config.per_byte_us *. float_of_int bytes)));
      if sys.trace <> None then
        Protocol.emit sys p
          (Dsm_trace.Event.Broadcast
             { bytes; requesters = plan.bp_requesters })
  | Some _ | None -> ());
  (* Requester side: consume responses. The asynchronous variant does not
     wait for the data messages: their arrival times are recorded and the
     page-fault handler completes the work (Section 3.2.3 applies to
     Validate_w_sync as well). *)
  let st = sys.states.(p) in
  List.iter
    (fun req ->
      let pages = Range.pages ~page_size:sys.page_size req.wr_ranges in
      let bcast_for_me =
        match b.bcast_plan with
        | Some (e, plan)
          when e = epoch
               && List.mem p plan.bp_requesters
               && List.for_all (fun pg -> List.mem pg plan.bp_pages) pages ->
            Some plan
        | Some _ | None -> None
      in
      match (req.wr_async, bcast_for_me) with
      | true, Some plan ->
          (* broadcast initiated at departure; don't wait for it *)
          let pos =
            let rec idx i = function
              | [] -> 0
              | r :: _ when r = p -> i
              | _ :: tl -> idx (i + 1) tl
            in
            idx 0 plan.bp_requesters
          in
          let depth = ceil (log (float_of_int (pos + 2)) /. log 2.0) in
          let arrival = plan.bp_base +. (depth *. plan.bp_per_hop) in
          List.iter
            (fun page ->
              let prev =
                Option.value ~default:0.0 (Hashtbl.find_opt st.pending_async page)
              in
              Hashtbl.replace st.pending_async page (Float.max prev arrival))
            pages;
          (match req.wr_access with
          | Write_all | Read_write_all ->
              Protocol.record_write_all sys p req.wr_ranges
          | Read | Write | Read_write -> ())
      | true, None -> begin
        (* one transfer per responding writer arriving after the departure;
           leave the pages invalid for the faults to consume *)
        let by_writer, _ = Protocol.gather_needs sys p pages () in
        Hashtbl.iter
          (fun q reqs ->
            let bytes =
              List.fold_left
                (fun acc (page, after, upto) ->
                  let f = Diff_store.fetch sys.store ~writer:q ~page ~after ~upto in
                  acc + f.Diff_store.charge_bytes)
                0 reqs
            in
            if bytes > 0 then begin
              let qstats = sys.cluster.Cluster.stats.(q) in
              qstats.Stats.messages <- qstats.Stats.messages + 1;
              qstats.Stats.bytes <- qstats.Stats.bytes + bytes;
              Cluster.charge sys.cluster q
                (cfg.Config.msg_overhead_us
                +. (cfg.Config.per_byte_us *. float_of_int bytes));
              let arrival =
                departure_clock
                +. (cfg.Config.per_byte_us *. float_of_int bytes)
                +. cfg.Config.wire_latency_us +. cfg.Config.msg_overhead_us
              in
              List.iter
                (fun (page, _, _) ->
                  let prev =
                    Option.value ~default:0.0
                      (Hashtbl.find_opt st.pending_async page)
                  in
                  Hashtbl.replace st.pending_async page (Float.max prev arrival))
                reqs
            end)
          by_writer;
        match req.wr_access with
        | Write_all | Read_write_all ->
            Protocol.record_write_all sys p req.wr_ranges
        | Read | Write | Read_write -> ()
      end
      | false, Some plan ->
          (* arrival depends on the receiver's depth in the binomial tree *)
          let pos =
            let rec idx i = function
              | [] -> 0
              | r :: _ when r = p -> i
              | _ :: tl -> idx (i + 1) tl
            in
            idx 0 plan.bp_requesters
          in
          let depth = ceil (log (float_of_int (pos + 2)) /. log 2.0) in
          Cluster.sync_clock sys.cluster p
            (plan.bp_base +. (depth *. plan.bp_per_hop));
          Protocol.fetch_and_apply sys p pages ~mode:Protocol.Prepaid ();
          Protocol.apply_access_state sys p ~ranges:req.wr_ranges
            ~access:req.wr_access
      | false, None ->
          Protocol.fetch_and_apply sys p pages
            ~mode:(Protocol.Piggyback departure_clock) ();
          Protocol.apply_access_state sys p ~ranges:req.wr_ranges
            ~access:req.wr_access)
    my_reqs

(* The barrier skeleton is shared by every backend: arrival/departure
   timing, notice redistribution and the piggy-backed-request plumbing are
   protocol-independent. What varies — how an interval is closed at the
   arrival ([release]), whether a departure may turn fetch responses into a
   broadcast ([plan_bcast]) and how the piggy-backed section requests are
   answered ([handle_wsync]) — comes in as closures, so the homeless LRC
   instantiation below stays bit-identical to the pre-backend code (same
   operations in the same floating-point order). *)
let barrier_with ~release ~plan_bcast ~handle_wsync t =
  Prof.enter Prof.Sync;
  let sys = t.sys
  and p = t.p in
  let st = state t in
  let b = sys.barrier in
  let cfg = sys.cluster.Cluster.cfg in
  let pstats = sys.cluster.Cluster.stats.(p) in
  pstats.Stats.barriers <- pstats.Stats.barriers + 1;
  ignore (release sys p);
  (* fault-tolerance hook: checkpoints and scheduled crashes execute at
     barrier arrival, right after the interval closed (and, under hlrc,
     its diffs reached the replica homes) — the fail-stop point where an
     acknowledged write can no longer be lost. A single cheap test when
     the subsystem is idle. *)
  Recover.at_barrier_arrival t;
  let my_epoch = st.barrier_epoch in
  st.barrier_epoch <- my_epoch + 1;
  let my_reqs = st.pending_wsync in
  st.pending_wsync <- [];
  if my_reqs <> [] then begin
    let prev = Option.value ~default:[] (Hashtbl.find_opt b.wsync_tbl my_epoch) in
    Hashtbl.replace b.wsync_tbl my_epoch ((p, my_reqs) :: prev)
  end;
  let nbytes =
    (cfg.Config.notice_bytes * new_notice_count sys p)
    + wsync_req_bytes sys my_reqs
  in
  st.notices_sent_seq <- Vc.get st.vc p;
  if p <> 0 then ignore (Net.send sys.net ~src:p ~dst:0 ~bytes:nbytes);
  b.arrival_clock.(p) <- Cluster.time sys.cluster p;
  if sys.trace <> None then
    Protocol.emit sys p (Dsm_trace.Event.Barrier_arrive { epoch = my_epoch });
  b.arrived <- b.arrived + 1;
  if b.arrived = sys.nprocs then begin
    (* Last arriver performs the master's merge on its behalf. *)
    let alpha = cfg.Config.wire_latency_us
    and o = cfg.Config.msg_overhead_us
    and i = cfg.Config.interrupt_us in
    let latest = ref b.arrival_clock.(0) in
    for q = 1 to sys.nprocs - 1 do
      let at_master = b.arrival_clock.(q) +. alpha in
      if at_master > !latest then latest := at_master
    done;
    let n1 = float_of_int (sys.nprocs - 1) in
    let ready = !latest +. (n1 *. (i +. o)) in
    let dep_send = ready +. (n1 *. o) in
    b.master_resume_clock <- dep_send;
    b.departure_clock <- dep_send +. alpha +. o;
    (* Master's departure messages redistribute all new notices. *)
    let total_new =
      let sum = ref 0 in
      for q = 0 to sys.nprocs - 1 do
        sum := !sum + new_notice_count sys q
      done;
      !sum
    in
    let mstats = sys.cluster.Cluster.stats.(0) in
    mstats.Stats.messages <- mstats.Stats.messages + (sys.nprocs - 1);
    mstats.Stats.bytes <-
      mstats.Stats.bytes
      + ((sys.nprocs - 1) * cfg.Config.notice_bytes * total_new);
    let dvc = Vc.create sys.nprocs in
    Array.iter (fun stq -> Vc.merge dvc stq.vc) sys.states;
    b.departure_vc <- dvc;
    b.bcast_plan <-
      plan_bcast sys ~epoch:my_epoch ~departure_clock:b.departure_clock
        (Option.value ~default:[] (Hashtbl.find_opt b.wsync_tbl my_epoch));
    b.epoch <- b.epoch + 1;
    b.arrived <- 0
  end;
  (* close the span across the suspension: scheduling and sibling fibers'
     work must not be charged to Sync *)
  Prof.exit Prof.Sync;
  Engine.block ~until:(fun () -> b.epoch > my_epoch);
  Prof.enter Prof.Sync;
  if p = 0 then Cluster.sync_clock sys.cluster 0 b.master_resume_clock
  else Cluster.sync_clock sys.cluster p b.departure_clock;
  if sys.trace <> None then
    Protocol.emit sys p (Dsm_trace.Event.Barrier_depart { epoch = my_epoch });
  ignore (Protocol.pull_notices sys p ~upto:b.departure_vc);
  (* restore full consistency for pages only partially covered by pushes:
     roll the applied watermark back so the next access refetches the whole
     modification set *)
  let rolled = ref [] in
  List.iter
    (fun (page, writer, seq) ->
      let m = Protocol.meta st ~nprocs:sys.nprocs page in
      if Wmap.get m.applied writer = seq then begin
        if sys.trace <> None then
          Protocol.emit sys p
            (Dsm_trace.Event.Push_rollback { page; writer; seq });
        Wmap.set m.applied writer (seq - 1);
        (* the rollback regresses [applied], so the stale-slot tracking no
           longer under-approximates what a fetch would bring: stale the
           whole object page conservatively *)
        (if sys.has_objs then
           match Hashtbl.find_opt sys.obj_regions page with
           | None -> ()
           | Some osz -> m.ob_stale <- Protocol.obj_all_slots sys osz);
        let pg = Dsm_mem.Page_table.get st.pt page in
        if pg.Dsm_mem.Page_table.prot <> Dsm_mem.Page_table.No_access then begin
          pg.Dsm_mem.Page_table.prot <- Dsm_mem.Page_table.No_access;
          rolled := page :: !rolled
        end
      end)
    st.partial_push;
  st.partial_push <- [];
  if !rolled <> [] then Protocol.protect_runs sys p !rolled;
  handle_wsync sys p ~epoch:my_epoch ~departure_clock:b.departure_clock
    ~my_reqs;
  (* prune the piggy-backed-request table once every processor has finished
     this epoch's departure processing — without this the table (and the
     departure-count table) grow without bound over a run *)
  let ndone =
    1 + Option.value ~default:0 (Hashtbl.find_opt b.wsync_done my_epoch)
  in
  if ndone >= sys.nprocs then begin
    Hashtbl.remove b.wsync_done my_epoch;
    Hashtbl.remove b.wsync_tbl my_epoch
  end
  else Hashtbl.replace b.wsync_done my_epoch ndone;
  Prof.exit Prof.Sync

let barrier t =
  barrier_with ~release:Protocol.release ~plan_bcast:detect_bcast
    ~handle_wsync:handle_wsync_at_barrier t

(* {1 Locks} *)

let get_lock sys lid =
  match Hashtbl.find_opt sys.locks lid with
  | Some lk -> lk
  | None ->
      let lk =
        {
          lid;
          held_by = None;
          last_releaser = lid mod sys.nprocs;
          release_clock = 0.0;
          release_vc = None;
          pending = [];
          granted = None;
          grant_clock = 0.0;
        }
      in
      Hashtbl.replace sys.locks lid lk;
      lk

(* Homeless-LRC answer to a piggy-backed section request on a lock grant:
   the grantor scans its page list and ships the diffs it holds locally on
   the grant message. *)
let answer_wsync_from_grantor sys p ~grantor ~grant_ready req =
  let cfg = sys.cluster.Cluster.cfg in
  let pages = Range.pages ~page_size:sys.page_size req.wr_ranges in
  if grantor <> p then begin
    Cluster.charge sys.cluster grantor
      (cfg.Config.wsync_scan_per_page_us *. float_of_int (List.length pages));
    Protocol.fetch_and_apply sys p pages ~mode:(Protocol.Piggyback grant_ready)
      ~only_via:grantor ()
  end;
  Protocol.apply_access_state sys p ~ranges:req.wr_ranges ~access:req.wr_access

let lock_acquire_with ~answer_wsync t lid =
  Prof.enter Prof.Sync;
  let sys = t.sys
  and p = t.p in
  let st = state t in
  let cfg = sys.cluster.Cluster.cfg in
  let pstats = sys.cluster.Cluster.stats.(p) in
  pstats.Stats.lock_acquires <- pstats.Stats.lock_acquires + 1;
  let lk = get_lock sys lid in
  let my_reqs = st.pending_wsync in
  st.pending_wsync <- [];
  let req_bytes = 16 + wsync_req_bytes sys my_reqs in
  let manager = lid mod sys.nprocs in
  let arrival = Net.send sys.net ~src:p ~dst:manager ~bytes:req_bytes in
  let arrival =
    if manager <> lk.last_releaser && manager <> p then begin
      (* the manager forwards the request to the current owner *)
      let mstats = sys.cluster.Cluster.stats.(manager) in
      mstats.Stats.messages <- mstats.Stats.messages + 1;
      mstats.Stats.bytes <- mstats.Stats.bytes + req_bytes;
      Cluster.charge sys.cluster manager
        (cfg.Config.interrupt_us +. (2.0 *. cfg.Config.msg_overhead_us));
      arrival
      +. cfg.Config.interrupt_us
      +. (2.0 *. cfg.Config.msg_overhead_us)
      +. cfg.Config.wire_latency_us
    end
    else arrival
  in
  if sys.trace <> None then
    Protocol.emit sys p (Dsm_trace.Event.Lock_request { lock = lid });
  if lk.held_by = None && lk.granted = None && lk.pending = [] then begin
    lk.granted <- Some p;
    lk.grant_clock <- Float.max arrival lk.release_clock
  end
  else
    (* newest first: O(1) instead of a quadratic append; {!lock_release}
       still grants by earliest arrival, oldest enqueued on ties *)
    lk.pending <- (p, arrival) :: lk.pending;
  Prof.exit Prof.Sync;
  Engine.block ~until:(fun () -> lk.granted = Some p);
  Prof.enter Prof.Sync;
  lk.granted <- None;
  lk.held_by <- Some p;
  let grantor = lk.last_releaser in
  let grant_ready =
    lk.grant_clock +. cfg.Config.interrupt_us +. cfg.Config.msg_overhead_us
    +. cfg.Config.lock_service_us
  in
  let ncount =
    if grantor <> p then begin
      (* grant handling steals cycles from the grantor *)
      Cluster.charge sys.cluster grantor
        (cfg.Config.interrupt_us +. cfg.Config.msg_overhead_us
       +. cfg.Config.lock_service_us);
      let gstats = sys.cluster.Cluster.stats.(grantor) in
      gstats.Stats.messages <- gstats.Stats.messages + 1;
      Cluster.sync_clock sys.cluster p
        (grant_ready +. cfg.Config.wire_latency_us +. cfg.Config.msg_overhead_us);
      let upto = match lk.release_vc with Some v -> v | None -> st.vc in
      let ncount = Protocol.pull_notices sys p ~upto in
      let grant_bytes = 16 + (cfg.Config.notice_bytes * ncount) in
      gstats.Stats.bytes <- gstats.Stats.bytes + grant_bytes;
      Cluster.charge sys.cluster p
        (cfg.Config.per_byte_us *. float_of_int grant_bytes);
      ncount
    end
    else begin
      (* re-acquiring a lock this processor released last: local grant *)
      Cluster.sync_clock sys.cluster p grant_ready;
      0
    end
  in
  if sys.trace <> None then
    Protocol.emit sys p
      (Dsm_trace.Event.Lock_grant { lock = lid; grantor; notices = ncount });
  (* piggy-backed section requests are answered on the grant message *)
  List.iter (fun req -> answer_wsync sys p ~grantor ~grant_ready req) my_reqs;
  Prof.exit Prof.Sync

let lock_acquire t lid =
  lock_acquire_with ~answer_wsync:answer_wsync_from_grantor t lid

let lock_release_with ~release t lid =
  Prof.enter Prof.Sync;
  let sys = t.sys
  and p = t.p in
  let lk = get_lock sys lid in
  if lk.held_by <> Some p then invalid_arg "lock_release: not the holder";
  ignore (release sys p);
  lk.release_clock <- Cluster.time sys.cluster p;
  lk.release_vc <- Some (Vc.copy (state t).vc);
  lk.last_releaser <- p;
  lk.held_by <- None;
  (match lk.pending with
  | [] -> ()
  | pending ->
      (* [pending] is newest first; grant the earliest arrival, breaking
         ties towards the oldest enqueued request ([<=] walking
         newest-to-oldest leaves the oldest tied element as winner, exactly
         as the former append-order list with a strict [<] did) *)
      let (next, arr), rest =
        List.fold_left
          (fun ((bp, ba), rest) (q, a) ->
            if a <= ba then ((q, a), (bp, ba) :: rest)
            else ((bp, ba), (q, a) :: rest))
          (List.hd pending, [])
          (List.tl pending)
      in
      lk.pending <- List.rev rest;
      lk.granted <- Some next;
      lk.grant_clock <- Float.max arr lk.release_clock);
  Prof.exit Prof.Sync

let lock_release t lid = lock_release_with ~release:Protocol.release t lid

(* The homeless lazy-release-consistency backend: the protocol of the
   paper, exactly as implemented by {!Protocol}, {!Sync_ops} and
   {!Validate}. Diffs stay distributed with their writers; an access miss
   fetches and merges the missing diffs writer by writer.

   This module is intentionally nothing but delegation — the pre-backend
   code paths are reused verbatim so a run under [--backend lrc] is
   bit-identical to the historical runtime (guarded by the performance
   goldens). *)

let name = "lrc"
let read_fault = Protocol.read_fault
let write_fault = Protocol.write_fault
let barrier = Sync_ops.barrier
let lock_acquire = Sync_ops.lock_acquire
let lock_release = Sync_ops.lock_release
let validate t ~async sections access = Validate.validate t ~async sections access

let validate_w_sync t ~async sections access =
  Validate.validate_w_sync t ~async sections access

let push = Validate.push

(* Crash-stop recovery and replica-group plumbing (interprets {!Dsm_ft.Ft}).

   Three concerns live here, all inert unless the configuration enables
   them ([replicas > 1] or a crash schedule):

   - {e Replica groups}: under [hlrc-r] a page's home is the [k]-member
     group starting at the base home, wrapping over the processors. The
     flush/fetch quorum arithmetic lives in {!Dsm_ft.Schedule}; the
     member selection and liveness filtering live here so {!Hlrc} can
     stay a thin client.

   - {e Suspicion}: a peer inside a scheduled down window is unreachable;
     the first protocol operation of each observer that would have
     contacted it pays the full retransmit-timeout exhaustion budget
     (RTO x max_attempts, the same machinery {!Dsm_net.Net} uses for
     lossy links) and emits a [Suspect] event. Subsequent operations
     skip the dead member for free — the suspicion is cached per
     (observer, peer, window).

   - {e Checkpoint / crash / restart}: executed at barrier arrival,
     immediately after the interval was closed and its diffs flushed to
     the replica homes. Crashing there is the fail-stop point with the
     strongest guarantee the paper's release-consistency contract can
     give: nothing an application thread was acknowledged for (i.e.
     anything up to its last release) is lost, because the release
     itself completed its quorum writes. The wipe destroys all local
     pages, twins and protocol metadata; the restore rebuilds the
     metadata from the newest checkpoint (restoring [known] but not
     [applied] forces a refetch of every page the node had heard of)
     and repairs the pages the node itself homes from the best
     surviving replica. *)

open Types
module Cluster = Dsm_sim.Cluster
module Config = Dsm_sim.Config
module Stats = Dsm_sim.Stats
module Net = Dsm_net.Net
module Ft = Dsm_ft.Ft
module Page_table = Dsm_mem.Page_table
module Plan = Dsm_net.Plan

(* {1 Home assignment}

   Moved here from {!Hlrc} (which re-exports it) so the replica-group map
   and the single-home map share one memoized policy resolution. *)

let home_of sys ~toucher page =
  match Hashtbl.find_opt sys.homes page with
  | Some h -> h
  | None ->
      let h =
        match sys.cluster.Cluster.cfg.Config.home_policy with
        | Config.Home_cyclic -> page mod sys.nprocs
        | Config.Home_first_touch -> toucher
        | Config.Home_block ->
            (* contiguous blocks of the allocated heap, one per processor *)
            let npages = max 1 (Dsm_mem.Addr_space.n_pages sys.space) in
            let per = (npages + sys.nprocs - 1) / sys.nprocs in
            min (page / per) (sys.nprocs - 1)
      in
      Hashtbl.replace sys.homes page h;
      h

(* Replica group of [page]: k consecutive processors starting at the base
   home. With [replicas = 1] this is the singleton base home. *)
let group_of sys ~toucher page =
  let base = home_of sys ~toucher page in
  let k = sys.ft.Ft.replicas in
  List.init k (fun i -> (base + i) mod sys.nprocs)

(* {1 Suspicion} *)

(* [observer] notices that [peer] is inside a down window. The first
   notice per window pays the RTO-exhaustion detection budget — the cost
   the reliable transport would charge for [max_attempts] unanswered
   retransmits — and emits the [Suspect] event. *)
let note_down sys ~observer ~peer ~window =
  if Ft.suspect_once sys.ft ~observer ~peer ~window then begin
    let cfg = sys.cluster.Cluster.cfg in
    Cluster.charge sys.cluster observer
      (cfg.Config.net_rto_us *. float_of_int Plan.default_max_attempts);
    let ostats = sys.cluster.Cluster.stats.(observer) in
    ostats.Stats.suspects <- ostats.Stats.suspects + 1;
    Protocol.emit sys observer
      (Dsm_trace.Event.Suspect
         { peer; attempts = Plan.default_max_attempts })
  end

(* Group members reachable by [p] right now; dead members are suspected
   (and paid for) on first contact. [p] itself always counts as live for
   its own operations — a processor executing code is by definition up,
   even inside its static window (the crash has not executed yet). *)
let live_members sys p members =
  let now = Cluster.time sys.cluster p in
  List.filter
    (fun m ->
      if m = p then true
      else
        match Ft.down_window sys.ft ~peer:m ~at:now with
        | None -> true
        | Some w ->
            note_down sys ~observer:p ~peer:m ~window:w;
            false)
    members

(* {1 Quorum-read source selection}

   Pick the member whose copy dominates what the reader knows: for every
   writer [q], the member's applied watermark must reach the reader's
   known watermark (the lowest-numbered live member wins ties). The
   reader itself is never a candidate — it only asks when its own copy
   is stale or lost. Replica copies can legitimately diverge right after
   a restart (the rejoined member refetches lazily), which is why the
   dominance test is per reader rather than a global "newest copy"
   order. *)
let pick_source sys p page ~live =
  let m = Protocol.meta sys.states.(p) ~nprocs:sys.nprocs page in
  let dominates c =
    let cm = Protocol.meta sys.states.(c) ~nprocs:sys.nprocs page in
    (not (Ft.is_lost sys.ft c page)) && Wmap.dominates cm.applied m.known
  in
  List.find_opt (fun c -> c <> p && dominates c) live

(* {1 Checkpoints} *)

let take_ckpt sys p ~epoch =
  let st = sys.states.(p) in
  let cfg = sys.cluster.Cluster.cfg in
  let known = Hashtbl.create (Hashtbl.length st.meta) in
  Hashtbl.iter
    (fun page (m : page_meta) ->
      (* Wmap snapshots are immutable pair lists: O(1), safely shared *)
      Hashtbl.replace known page (Wmap.to_pairs m.known))
    st.meta;
  let ck =
    Ft.push_ckpt sys.ft p ~epoch ~vc:(Vc.copy st.vc) ~known
  in
  (* stable-storage scan: one pass over the page metadata *)
  Cluster.charge sys.cluster p
    (cfg.Config.wsync_scan_per_page_us
    *. float_of_int (Hashtbl.length st.meta));
  let pstats = sys.cluster.Cluster.stats.(p) in
  pstats.Stats.ckpts <- pstats.Stats.ckpts + 1;
  Protocol.emit sys p
    (Dsm_trace.Event.Ckpt { id = ck.Ft.ck_id; ckpt_epoch = epoch })

(* {1 Crash and restart} *)

(* Destroy [p]'s volatile state: every page copy, twin, protection and
   all protocol metadata. Pages that existed are marked lost so fetches
   after the restart know the local copy is garbage even where the
   restored [known] watermarks alone would not force a refetch. *)
let wipe sys p =
  let st = sys.states.(p) in
  for page = 0 to Dsm_mem.Addr_space.n_pages sys.space - 1 do
    match Page_table.find st.pt page with
    | None -> ()
    | Some pg ->
        Ft.mark_lost sys.ft p page;
        Bytes.fill pg.Page_table.data 0 sys.page_size '\000';
        pg.Page_table.prot <- Page_table.No_access;
        Page_table.drop_twin pg
  done;
  Hashtbl.reset st.meta;
  Hashtbl.reset st.dirty;
  Hashtbl.reset st.pending_async;
  st.pending_wsync <- [];
  st.partial_push <- [];
  (* in-flight push messages addressed to the dead node die with it *)
  let doomed =
    Hashtbl.fold
      (fun ((_, dst) as key) _ acc -> if dst = p then key :: acc else acc)
      sys.pushbox []
  in
  List.iter (Hashtbl.remove sys.pushbox) doomed

(* Rebuild [p]'s metadata from its newest checkpoint. Foreign vector-clock
   components regress to the checkpoint (notices received since are gone
   and will be re-pulled at the next departure); [p]'s own component is
   kept — its interval log survives on the replica homes and the seq
   counter must stay monotonic. Restoring [known] without [applied]
   makes every checkpointed page stale, so ordinary fetches repair it. *)
let restore sys p =
  let st = sys.states.(p) in
  let ck = Ft.latest_ckpt sys.ft p in
  Array.iteri (fun q v -> if q <> p then Vc.set st.vc q v) ck.Ft.ck_vc;
  Hashtbl.iter
    (fun page known ->
      let m = Protocol.meta st ~nprocs:sys.nprocs page in
      List.iter
        (fun (q, v) -> if v > Wmap.get m.known q then Wmap.set m.known q v)
        known)
    ck.Ft.ck_known;
  ck

(* Repair the pages [p] co-homes: a rejoining replica must resynchronize
   its group state or later quorum reads could be served from its wiped
   copy. For each such page, read the best surviving copy (quorum read:
   the member whose applied watermarks dominate every other live
   member's) and install it verbatim. *)
let repair_homed sys p =
  let st = sys.states.(p) in
  let cfg = sys.cluster.Cluster.cfg in
  let pstats = sys.cluster.Cluster.stats.(p) in
  let mine =
    List.sort compare
      (Hashtbl.fold
         (fun page _ acc ->
           if List.mem p (group_of sys ~toucher:p page) then page :: acc
           else acc)
         sys.homes [])
  in
  let by_src = Hashtbl.create 8 in
  List.iter
    (fun page ->
      let live =
        List.filter (fun m -> m <> p)
          (live_members sys p (group_of sys ~toucher:p page))
      in
      (* best copy: applied watermarks dominate every other live member's *)
      let best =
        List.fold_left
          (fun acc c ->
            match acc with
            | None -> Some c
            | Some b ->
                let cm = Protocol.meta sys.states.(c) ~nprocs:sys.nprocs page in
                let bm = Protocol.meta sys.states.(b) ~nprocs:sys.nprocs page in
                if
                  Wmap.exists_gt cm.applied bm.applied
                  && Wmap.dominates cm.applied bm.applied
                then Some c
                else acc)
          None live
      in
      match best with
      | None -> ()  (* nobody else homes it; the lost mark forces a refetch *)
      | Some c ->
          let cm = Protocol.meta sys.states.(c) ~nprocs:sys.nprocs page in
          let cpg = Page_table.get sys.states.(c).pt page in
          let pg = Page_table.get st.pt page in
          Bytes.blit cpg.Page_table.data 0 pg.Page_table.data 0 sys.page_size;
          let m = Protocol.meta st ~nprocs:sys.nprocs page in
          List.iter
            (fun q ->
              let cv = Wmap.get cm.applied q in
              if cv > Wmap.get m.applied q then Wmap.set m.applied q cv;
              let av = Wmap.get m.applied q in
              if Wmap.get m.known q < av then Wmap.set m.known q av;
              Diff_store.note_applied sys.store ~writer:q ~page ~by:p ~seq:av)
            (Wmap.union_keys cm.applied m.applied);
          Ft.clear_lost sys.ft p page;
          pstats.Stats.quorum_reads <- pstats.Stats.quorum_reads + 1;
          Protocol.emit sys p
            (Dsm_trace.Event.Quorum_read
               { page; from = c; acks = live; needed = sys.ft.Ft.quorum });
          Hashtbl.replace by_src c
            (1 + Option.value ~default:0 (Hashtbl.find_opt by_src c)))
    mine;
  (* one aggregated state-transfer RPC per source replica *)
  List.iter
    (fun (c, n) ->
      Net.rpc sys.net ~src:p ~dst:c ~req_bytes:(16 * n)
        ~resp_bytes:((sys.page_size + 16) * n)
        ~service:cfg.Config.diff_service_us)
    (List.sort compare
       (Hashtbl.fold (fun c n acc -> (c, n) :: acc) by_src []))

(* Fail-stop [p] now, sit out the down window, rejoin from the last
   checkpoint. Executed inline in the crashed processor's own engine
   turn: the fiber keeps its control state, which models re-execution
   from the checkpoint — its cost is the down window itself. *)
let crash_restart sys p (e : Dsm_ft.Schedule.event) =
  let st = sys.states.(p) in
  let pstats = sys.cluster.Cluster.stats.(p) in
  Protocol.emit sys p (Dsm_trace.Event.Crash { epoch = st.barrier_epoch });
  pstats.Stats.crashes <- pstats.Stats.crashes + 1;
  wipe sys p;
  (* downtime: the node is gone until the window closes *)
  let now = Cluster.time sys.cluster p in
  Cluster.sync_clock sys.cluster p
    (Float.max now (e.Dsm_ft.Schedule.at_us +. e.Dsm_ft.Schedule.down_us));
  let ck = restore sys p in
  repair_homed sys p;
  pstats.Stats.restarts <- pstats.Stats.restarts + 1;
  Protocol.emit sys p
    (Dsm_trace.Event.Restart
       { epoch = st.barrier_epoch; ckpt = ck.Ft.ck_id })

(* {1 The barrier-arrival hook}

   Called by {!Sync_ops.barrier_with} right after the release closed the
   arriving processor's interval (and, under hlrc, flushed its diffs to
   the homes). Takes a checkpoint when one is due, then executes the
   processor's next scheduled crash. A single cheap test when the
   subsystem is idle. *)
let at_barrier_arrival (t : Types.t) =
  let sys = t.sys
  and p = t.p in
  let ft = sys.ft in
  if ft.Ft.ckpt_every > 0 || Ft.has_crashes ft then begin
    let st = t.st in
    if Ft.ckpt_due ft ~epoch:st.barrier_epoch then
      take_ckpt sys p ~epoch:st.barrier_epoch;
    match Ft.take_crash ft ~proc:p ~now:(Cluster.time sys.cluster p) with
    | Some e -> crash_restart sys p e
    | None -> ()
  end

(** The augmented run-time interface of Section 3 of the paper. *)

val ranges_of_sections : Dsm_rsd.Section.t list -> Dsm_rsd.Range.t
(** Sections are translated to contiguous address ranges, as in the actual
    implementation (Section 3.3). *)

val clip_to_pages :
  Types.system -> Dsm_rsd.Range.t -> int list -> Dsm_rsd.Range.t
(** The sub-ranges of [ranges] falling on the given pages (union of the
    per-page clips); used to apply access state to the object-granularity
    pages a validate skipped. *)

val validate :
  Types.t -> ?async:bool -> Dsm_rsd.Section.t list -> Types.access -> unit
(** [Validate(section, access_type)] (Figure 3). The consistency-preserving
    access types ([READ], [WRITE], [READ&WRITE]) fetch and apply the missing
    diffs — aggregated, one request per writer — and set protections; the
    [_ALL] types additionally disable write detection for the section
    (exact compiler analysis required). With [async], only the fetch
    requests are sent and the page-fault handler completes the work at the
    first access (Section 3.2.3). *)

val validate_w_sync :
  Types.t -> ?async:bool -> Dsm_rsd.Section.t list -> Types.access -> unit
(** Like {!validate}, but the request for diffs is piggy-backed on the next
    synchronization operation (Section 3.1.1). *)

val push_with :
  release:(Types.system -> int -> (int * int list) option) ->
  ?is_inval:(int -> bool) ->
  ?on_inval:(src:int -> page:int -> covered:bool -> unit) ->
  Types.t ->
  read_sections:Dsm_rsd.Section.t list array ->
  write_sections:Dsm_rsd.Section.t list array ->
  unit
(** The protocol-independent [Push] exchange; [release] closes the sender's
    interval the backend's way before the point-to-point sends. Pages for
    which [is_inval] holds are governed by the single-writer invalidate
    protocol: the payload is still received in place, but the LRC
    watermark/revalidation bookkeeping is replaced by the [on_inval]
    callback ([src] is the sending processor, [covered] tells whether the
    push covered the whole page). *)

val push :
  Types.t ->
  read_sections:Dsm_rsd.Section.t list array ->
  write_sections:Dsm_rsd.Section.t list array ->
  unit
(** [Push(r_section[0..N-1], w_section[0..N-1])] (Figure 3): replaces a
    barrier. Each processor sends [w_section(me) inter r_section(i)] to [i] and
    receives its own intersections in place (no diff space). Only the
    pushed sections are made consistent; everything else may remain
    inconsistent until the next global synchronization. Synchronous only,
    as in the paper's implementation (Section 3.3). *)

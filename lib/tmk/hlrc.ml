(* Home-based lazy release consistency (HLRC).

   Every shared page has a {e home} processor whose copy is kept eagerly up
   to date: at each release the writer materializes its diffs for the
   released pages and flushes them into the homes' copies, and an access
   miss is serviced by fetching one full up-to-date page from the home
   instead of per-writer diff sets. Write notices, vector clocks and the
   synchronization skeletons are shared with the homeless protocol — only
   the data movement differs (cf. Zhou et al., "Performance Evaluation of
   Two Home-Based Lazy Release Consistency Protocols", OSDI '96).

   Soundness in this simulator: a flush happens inside the releaser's
   engine turn, strictly before the release's write notices can reach any
   acquirer (notices travel on barrier-departure and lock-grant messages).
   The home copy therefore always covers every interval any processor can
   hold a notice for, so [applied := known] after installing the home copy
   is exact. The trace checker enforces this as the home-fetch-current
   rule. *)

open Types
module Cluster = Dsm_sim.Cluster
module Config = Dsm_sim.Config
module Stats = Dsm_sim.Stats
module Net = Dsm_net.Net
module Range = Dsm_rsd.Range
module Page_table = Dsm_mem.Page_table
module Diff = Dsm_mem.Diff
module Prof = Dsm_prof.Prof

let name = "hlrc"

(* {1 Home assignment} *)

(* Static policy, resolved lazily and memoized in [sys.homes] so every
   backend path (flush, fetch, wsync scan) agrees on the same map. Lives
   in {!Recover} (the replica-group map wraps the same base policy); the
   single-home protocol below is unchanged by the move. *)
let home_of = Recover.home_of

module Ft = Dsm_ft.Ft

(* {1 Release: eager diff flush to the homes} *)

(* Replicated variant of the flush ([replicas > 1]): the closed interval's
   diffs go to every live member of each page's replica group, and the
   release is only sound if at least a quorum of the group acknowledged —
   a crash of any minority of the group can then never lose an
   acknowledged write. Members filter stale units by their applied
   watermark, which makes a re-flush after a writer crash (the writer's
   [home_flushed] restarts at 0, so it re-fetches already-delivered units
   from the store) idempotent. *)
let flush_pages_replicated sys p ~seq pages =
  let st = sys.states.(p) in
  let cfg = sys.cluster.Cluster.cfg in
  let pstats = sys.cluster.Cluster.stats.(p) in
  let quorum = sys.ft.Ft.quorum in
  List.iter
    (fun page ->
      let m = Protocol.meta st ~nprocs:sys.nprocs page in
      let c = Protocol.materialize sys ~writer:p ~page in
      if c > 0.0 then Cluster.charge sys.cluster p c;
      let r =
        Diff_store.fetch sys.store ~writer:p ~page ~after:m.home_flushed
          ~upto:seq
      in
      let high =
        List.fold_left
          (fun acc u -> max acc u.Diff_store.upto_seq)
          seq r.Diff_store.units
      in
      let payload = r.Diff_store.charge_bytes in
      let sorted =
        List.sort
          (fun a b -> compare a.Diff_store.order b.Diff_store.order)
          r.Diff_store.units
      in
      let live =
        Recover.live_members sys p (Recover.group_of sys ~toucher:p page)
      in
      List.iter
        (fun member ->
          if member = p then begin
            (* my copy is current by construction; only the watermark moves *)
            if high > Wmap.get m.applied p then Wmap.set m.applied p high;
            if Wmap.get m.known p < Wmap.get m.applied p then
              Wmap.set m.known p (Wmap.get m.applied p);
            Diff_store.note_applied sys.store ~writer:p ~page ~by:p
              ~seq:(Wmap.get m.applied p)
          end
          else begin
            let hst = sys.states.(member) in
            let arrival =
              Net.send sys.net ~src:p ~dst:member ~bytes:(payload + 16)
            in
            let service =
              cfg.Config.interrupt_us +. cfg.Config.msg_overhead_us
              +. (cfg.Config.diff_apply_per_byte_us *. float_of_int payload)
            in
            Cluster.charge sys.cluster member service;
            ignore
              (Cluster.occupy sys.cluster member ~arrival
                 ~handler_time:service);
            let hm = Protocol.meta hst ~nprocs:sys.nprocs page in
            let hpg = Page_table.get hst.pt page in
            List.iter
              (fun u ->
                if u.Diff_store.upto_seq > Wmap.get hm.applied p then begin
                  Diff.apply u.Diff_store.payload hpg.Page_table.data;
                  match hpg.Page_table.twin with
                  | Some twin -> Diff.apply u.Diff_store.payload twin
                  | None -> ()
                end)
              sorted;
            if high > Wmap.get hm.applied p then Wmap.set hm.applied p high;
            if Wmap.get hm.known p < Wmap.get hm.applied p then
              Wmap.set hm.known p (Wmap.get hm.applied p);
            Diff_store.note_applied sys.store ~writer:p ~page ~by:member
              ~seq:(Wmap.get hm.applied p);
            Ft.clear_lost sys.ft member page;
            pstats.Stats.home_flushes <- pstats.Stats.home_flushes + 1;
            pstats.Stats.home_flush_bytes <-
              pstats.Stats.home_flush_bytes + payload
          end)
        live;
      if List.length live < quorum then
        failwith
          (Printf.sprintf
             "hlrc-r: flush of page %d reached only %d/%d replicas (more \
              concurrent failures than the group tolerates)"
             page (List.length live) quorum);
      if high > m.home_flushed then m.home_flushed <- high;
      pstats.Stats.quorum_writes <- pstats.Stats.quorum_writes + 1;
      if sys.trace <> None then
        Protocol.emit sys p
          (Dsm_trace.Event.Quorum_write
             { page; seq = high; acks = live; needed = quorum }))
    pages

(* Push a closed interval's diffs for [pages] into the home copies. One
   message per home aggregates all of the release's pages homed there.
   After a flush the releaser holds no lazy interval for remotely-homed
   pages: [lazy_hi] is 0 between releases, so foreign notices never force
   a materialization. Factored out of {!release} so the adaptive backend
   can flush just the pages it currently runs under this protocol. *)
let flush_pages sys p ~seq pages =
  let st = sys.states.(p) in
  let cfg = sys.cluster.Cluster.cfg in
  let pstats = sys.cluster.Cluster.stats.(p) in
  let by_home = Array.make sys.nprocs [] in
      List.iter
        (fun page ->
          let home = home_of sys ~toucher:p page in
          if home = p then begin
            (* My copy is the home copy: trivially flushed. The diff is
               still materialized into the store — the store's
               single-writer coalescing is only sound when every real
               writer of a page has a cell, and it also retires the twin
               (the homeless protocol would do both lazily). *)
            let c = Protocol.materialize sys ~writer:p ~page in
            if c > 0.0 then Cluster.charge sys.cluster p c;
            let m = Protocol.meta st ~nprocs:sys.nprocs page in
            if seq > m.home_flushed then m.home_flushed <- seq
          end
          else by_home.(home) <- page :: by_home.(home))
        pages;
      for home = 0 to sys.nprocs - 1 do
        match by_home.(home) with
        | [] -> ()
        | rev_pages ->
            let hpages = List.rev rev_pages in
            let hst = sys.states.(home) in
            let payload = ref 0 in
            let per_page =
              List.map
                (fun page ->
                  let m = Protocol.meta st ~nprocs:sys.nprocs page in
                  let c = Protocol.materialize sys ~writer:p ~page in
                  if c > 0.0 then Cluster.charge sys.cluster p c;
                  let r =
                    Diff_store.fetch sys.store ~writer:p ~page
                      ~after:m.home_flushed ~upto:seq
                  in
                  let high =
                    List.fold_left
                      (fun acc u -> max acc u.Diff_store.upto_seq)
                      seq r.Diff_store.units
                  in
                  payload := !payload + r.Diff_store.charge_bytes;
                  (page, m, r, high))
                hpages
            in
            let bytes = !payload + (16 * List.length hpages) in
            let arrival = Net.send sys.net ~src:p ~dst:home ~bytes in
            (* home-side handler: receive and overlay the diffs *)
            let service =
              cfg.Config.interrupt_us +. cfg.Config.msg_overhead_us
              +. (cfg.Config.diff_apply_per_byte_us *. float_of_int !payload)
            in
            Cluster.charge sys.cluster home service;
            ignore
              (Cluster.occupy sys.cluster home ~arrival ~handler_time:service);
            List.iter
              (fun (page, m, r, high) ->
                let hpg = Page_table.get hst.pt page in
                let sorted =
                  List.sort
                    (fun a b -> compare a.Diff_store.order b.Diff_store.order)
                    r.Diff_store.units
                in
                List.iter
                  (fun u ->
                    Diff.apply u.Diff_store.payload hpg.Page_table.data;
                    match hpg.Page_table.twin with
                    | Some twin -> Diff.apply u.Diff_store.payload twin
                    | None -> ())
                  sorted;
                let hm = Protocol.meta hst ~nprocs:sys.nprocs page in
                if high > Wmap.get hm.applied p then Wmap.set hm.applied p high;
                if Wmap.get hm.known p < Wmap.get hm.applied p then
                  Wmap.set hm.known p (Wmap.get hm.applied p);
                Diff_store.note_applied sys.store ~writer:p ~page ~by:home
                  ~seq:(Wmap.get hm.applied p);
                if high > m.home_flushed then m.home_flushed <- high;
                if sys.trace <> None then
                  Protocol.emit sys p
                    (Dsm_trace.Event.Home_flush
                       {
                         page;
                         home;
                         seq = high;
                         bytes = r.Diff_store.charge_bytes;
                       }))
              per_page;
            pstats.Stats.home_flushes <- pstats.Stats.home_flushes + 1;
            pstats.Stats.home_flush_bytes <-
              pstats.Stats.home_flush_bytes + !payload
  done

(* Close the interval exactly as the homeless protocol does (write notices,
   interval log, write protection), then flush its diffs home. *)
let release sys p =
  match Protocol.release sys p with
  | None -> None
  | Some (seq, pages) as entry ->
      if Ft.replicated sys.ft then flush_pages_replicated sys p ~seq pages
      else flush_pages sys p ~seq pages;
      entry

(* {1 Access misses: full-page fetch from the home} *)

(* A page's copy is stale when a write notice outruns the applied
   watermark. Pages already consistent need no data movement. *)
let stale st ~nprocs p page =
  let m = Protocol.meta st ~nprocs page in
  Wmap.exists (fun q kv -> q <> p && kv > Wmap.get m.applied q) m.known

(* The home's own copy needs no message: flushes landed in it eagerly, so
   it only has to advance its watermarks (this happens after a partial-push
   rollback or a foreign notice invalidated the home's page). *)
let revalidate_local sys p page =
  let st = sys.states.(p) in
  let m = Protocol.meta st ~nprocs:sys.nprocs page in
  Wmap.iter
    (fun q kv ->
      if kv > Wmap.get m.applied q then begin
        Wmap.set m.applied q kv;
        Diff_store.note_applied sys.store ~writer:q ~page ~by:p ~seq:kv
      end)
    m.known;
  m.ob_stale <- Pset.empty;
  if sys.trace <> None then begin
    Protocol.emit sys p
      (Dsm_trace.Event.Home_fetch { page; home = p; bytes = 0 });
    Protocol.emit sys p (Dsm_trace.Event.Fetch_done { page; full = true })
  end

(* Install the home copy into [p]'s page, preserving the current (not yet
   released) local writes: they live only in this copy, and under a
   data-race-free program they touch bytes disjoint from any interval the
   fetch covers. With a twin the writes are recovered as a diff and
   re-applied on top (the twin itself becomes the fresh home copy, so the
   next materialization still captures exactly the local writes); a
   WRITE_ALL page carries no twin, so once it is dirty the validated
   ranges are saved and restored verbatim. A clean page holds no local
   writes — in particular a READ&WRITE_ALL page between the validate and
   its first access must take the home copy unmodified, or the reads
   would see the superseded content. *)
let install_home_copy sys p page ~home =
  let st = sys.states.(p) in
  let hpg = Page_table.get sys.states.(home).pt page in
  let pg = Page_table.get st.pt page in
  let m = Protocol.meta st ~nprocs:sys.nprocs page in
  let cur =
    match pg.Page_table.twin with
    | Some twin -> Some (Diff.create ~twin ~current:pg.Page_table.data)
    | None -> None
  in
  let saved = ref [] in
  if cur = None && Protocol.in_dirty st page
     && not (Range.is_empty m.write_all)
  then
    Range.iter m.write_all (fun ~lo ~hi ->
        let off = lo - (page * sys.page_size) in
        let buf = Bytes.create (hi - lo) in
        Bytes.blit pg.Page_table.data off buf 0 (hi - lo);
        saved := (off, buf) :: !saved);
  Bytes.blit hpg.Page_table.data 0 pg.Page_table.data 0 sys.page_size;
  (match pg.Page_table.twin with
  | Some twin -> Bytes.blit hpg.Page_table.data 0 twin 0 sys.page_size
  | None -> ());
  (match cur with Some d -> Diff.apply d pg.Page_table.data | None -> ());
  List.iter
    (fun (off, buf) ->
      Bytes.blit buf 0 pg.Page_table.data off (Bytes.length buf))
    !saved;
  (* every writer with any watermark: raise applied to known, then restate
     the applied seq to the diff store (a 0 seq is a no-op there) *)
  List.iter
    (fun q ->
      let kv = Wmap.get m.known q in
      if kv > Wmap.get m.applied q then Wmap.set m.applied q kv;
      Diff_store.note_applied sys.store ~writer:q ~page ~by:p
        ~seq:(Wmap.get m.applied q))
    (Wmap.union_keys m.known m.applied);
  (* the installed copy is fully current: no slot is stale any more *)
  m.ob_stale <- Pset.empty

(* Replicated variant of the miss path ([replicas > 1]): each stale or
   lost page is read from the live group member whose applied watermarks
   dominate everything the reader knows (the quorum-read source — cf.
   ABD's read phase adapted to HLRC: watermark dominance replaces the
   highest-timestamp rule), and the read is then imposed on the other
   live members with small confirm messages so a subsequent reader after
   further failures still finds a current copy acknowledged. *)
let quorum_fetch_pages sys p pages ~mode =
  Prof.enter Prof.Protocol;
  let cfg = sys.cluster.Cluster.cfg in
  let pstats = sys.cluster.Cluster.stats.(p) in
  let st = sys.states.(p) in
  let quorum = sys.ft.Ft.quorum in
  let by_src = Array.make sys.nprocs [] in
  List.iter
    (fun page ->
      if stale st ~nprocs:sys.nprocs p page || Ft.is_lost sys.ft p page
      then begin
        let live =
          Recover.live_members sys p (Recover.group_of sys ~toucher:p page)
        in
        match Recover.pick_source sys p page ~live with
        | Some c -> by_src.(c) <- (page, live) :: by_src.(c)
        | None ->
            failwith
              (Printf.sprintf
                 "hlrc-r: no live replica of page %d holds a copy current \
                  enough for processor %d (more concurrent failures than \
                  the group tolerates)"
                 page p)
      end
      else if sys.trace <> None then
        (* already current — typically a cold fault on a page the restart
           repair resynchronized but left protected; the trivially
           complete fetch still closes the checker's fault window *)
        Protocol.emit sys p
          (Dsm_trace.Event.Fetch_done { page; full = true }))
    (List.sort_uniq compare pages);
  for src = 0 to sys.nprocs - 1 do
    match by_src.(src) with
    | [] -> ()
    | rev_entries ->
        let entries = List.rev rev_entries in
        let npages = List.length entries in
        let payload = npages * sys.page_size in
        let resp_bytes = payload + (16 * npages) in
        (match mode with
        | Protocol.Rpc ->
            Net.rpc sys.net ~src:p ~dst:src ~req_bytes:(16 * npages)
              ~resp_bytes ~service:cfg.Config.diff_service_us
        | Protocol.Prepaid -> ()
        | Protocol.Piggyback at ->
            let hstats = sys.cluster.Cluster.stats.(src) in
            hstats.Stats.messages <- hstats.Stats.messages + 1;
            hstats.Stats.bytes <- hstats.Stats.bytes + resp_bytes;
            Cluster.charge sys.cluster src
              (cfg.Config.msg_overhead_us
              +. (cfg.Config.per_byte_us *. float_of_int resp_bytes));
            Cluster.sync_clock sys.cluster p
              (at
              +. (cfg.Config.per_byte_us *. float_of_int resp_bytes)
              +. cfg.Config.wire_latency_us +. cfg.Config.msg_overhead_us));
        List.iter
          (fun (page, live) ->
            install_home_copy sys p page ~home:src;
            (* the source's copy can be ahead of the reader's notices
               (e.g. right after the reader restarted from an old
               checkpoint); adopt its watermarks so the install is not
               immediately re-judged stale *)
            let m = Protocol.meta st ~nprocs:sys.nprocs page in
            let cm =
              Protocol.meta sys.states.(src) ~nprocs:sys.nprocs page
            in
            Wmap.iter
              (fun q cv ->
                if cv > Wmap.get m.applied q then begin
                  Wmap.set m.applied q cv;
                  if Wmap.get m.known q < cv then Wmap.set m.known q cv;
                  Diff_store.note_applied sys.store ~writer:q ~page ~by:p
                    ~seq:cv
                end)
              cm.applied;
            Ft.clear_lost sys.ft p page;
            (* read-impose: confirm the observed watermark with the other
               live members (16-byte control roundtrips) *)
            List.iter
              (fun o ->
                if o <> src && o <> p then
                  Net.rpc sys.net ~src:p ~dst:o ~req_bytes:16 ~resp_bytes:16
                    ~service:cfg.Config.diff_service_us)
              live;
            pstats.Stats.home_fetches <- pstats.Stats.home_fetches + 1;
            pstats.Stats.home_fetch_bytes <-
              pstats.Stats.home_fetch_bytes + sys.page_size;
            pstats.Stats.diff_bytes_applied <-
              pstats.Stats.diff_bytes_applied + sys.page_size;
            pstats.Stats.quorum_reads <- pstats.Stats.quorum_reads + 1;
            if sys.trace <> None then begin
              Protocol.emit sys p
                (Dsm_trace.Event.Quorum_read
                   { page; from = src; acks = live; needed = quorum });
              Protocol.emit sys p
                (Dsm_trace.Event.Fetch_done { page; full = true })
            end)
          entries;
        Cluster.charge sys.cluster p
          (cfg.Config.diff_apply_per_byte_us *. float_of_int payload)
  done;
  Prof.exit Prof.Protocol

(* Fetch and install the home copies of every stale page, one aggregated
   request per home; paid for according to [mode] exactly like the
   homeless protocol's diff fetches. *)
let fetch_pages_single sys p pages ~mode =
  Prof.enter Prof.Protocol;
  let cfg = sys.cluster.Cluster.cfg in
  let pstats = sys.cluster.Cluster.stats.(p) in
  let st = sys.states.(p) in
  let by_home = Array.make sys.nprocs [] in
  List.iter
    (fun page ->
      if stale st ~nprocs:sys.nprocs p page then begin
        let home = home_of sys ~toucher:p page in
        if home = p then revalidate_local sys p page
        else by_home.(home) <- page :: by_home.(home)
      end)
    (List.sort_uniq compare pages);
  for home = 0 to sys.nprocs - 1 do
    match by_home.(home) with
    | [] -> ()
    | rev_pages ->
        let hpages = List.rev rev_pages in
        let npages = List.length hpages in
        let payload = npages * sys.page_size in
        let resp_bytes = payload + (16 * npages) in
        (match mode with
        | Protocol.Rpc ->
            Net.rpc sys.net ~src:p ~dst:home ~req_bytes:(16 * npages)
              ~resp_bytes ~service:cfg.Config.diff_service_us
        | Protocol.Prepaid -> ()
        | Protocol.Piggyback at ->
            let hstats = sys.cluster.Cluster.stats.(home) in
            hstats.Stats.messages <- hstats.Stats.messages + 1;
            hstats.Stats.bytes <- hstats.Stats.bytes + resp_bytes;
            Cluster.charge sys.cluster home
              (cfg.Config.msg_overhead_us
              +. (cfg.Config.per_byte_us *. float_of_int resp_bytes));
            Cluster.sync_clock sys.cluster p
              (at
              +. (cfg.Config.per_byte_us *. float_of_int resp_bytes)
              +. cfg.Config.wire_latency_us +. cfg.Config.msg_overhead_us));
        List.iter
          (fun page ->
            install_home_copy sys p page ~home;
            pstats.Stats.home_fetches <- pstats.Stats.home_fetches + 1;
            pstats.Stats.home_fetch_bytes <-
              pstats.Stats.home_fetch_bytes + sys.page_size;
            pstats.Stats.diff_bytes_applied <-
              pstats.Stats.diff_bytes_applied + sys.page_size;
            if sys.trace <> None then
              Protocol.emit sys p
                (Dsm_trace.Event.Home_fetch
                   { page; home; bytes = sys.page_size }))
          hpages;
        Cluster.charge sys.cluster p
          (cfg.Config.diff_apply_per_byte_us *. float_of_int payload)
  done;
  if sys.trace <> None then
    List.iter
      (fun page ->
        if Array.exists (fun l -> List.memq page l) by_home then
          Protocol.emit sys p (Dsm_trace.Event.Fetch_done { page; full = true }))
      (List.sort_uniq compare pages);
  Prof.exit Prof.Protocol

let fetch_pages sys p pages ~mode =
  if Ft.replicated sys.ft then quorum_fetch_pages sys p pages ~mode
  else fetch_pages_single sys p pages ~mode

(* Asynchronous variant: send the page requests to the homes and record
   the response arrival times; the fault handler installs the copies
   (Section 3.2.3 of the paper applies unchanged). Under replication the
   asynchronous overlap is given up: a quorum read must settle its source
   before the watermarks move, so the request degenerates to the
   synchronous quorum fetch. *)
let async_fetch_single sys p pages =
  Prof.enter Prof.Protocol;
  let st = sys.states.(p) in
  let cfg = sys.cluster.Cluster.cfg in
  let by_home = Array.make sys.nprocs [] in
  List.iter
    (fun page ->
      if
        (not (Hashtbl.mem st.pending_async page))
        && stale st ~nprocs:sys.nprocs p page
      then begin
        let home = home_of sys ~toucher:p page in
        if home = p then revalidate_local sys p page
        else by_home.(home) <- page :: by_home.(home)
      end)
    (List.sort_uniq compare pages);
  for home = 0 to sys.nprocs - 1 do
    match by_home.(home) with
    | [] -> ()
    | rev_pages ->
        let hpages = List.rev rev_pages in
        let npages = List.length hpages in
        let arrival_at_home =
          Net.send sys.net ~src:p ~dst:home ~bytes:(16 * npages)
        in
        let resp_bytes = (npages * sys.page_size) + (16 * npages) in
        let service =
          cfg.Config.interrupt_us +. cfg.Config.msg_overhead_us
          +. cfg.Config.diff_service_us +. cfg.Config.msg_overhead_us
          +. (cfg.Config.per_byte_us *. float_of_int resp_bytes)
        in
        Cluster.charge sys.cluster home service;
        let hstats = sys.cluster.Cluster.stats.(home) in
        hstats.Stats.messages <- hstats.Stats.messages + 1;
        hstats.Stats.bytes <- hstats.Stats.bytes + resp_bytes;
        let start =
          Cluster.occupy sys.cluster home ~arrival:arrival_at_home
            ~handler_time:service
        in
        let arrival = start +. service +. cfg.Config.wire_latency_us in
        List.iter
          (fun page ->
            let prev =
              Option.value ~default:0.0
                (Hashtbl.find_opt st.pending_async page)
            in
            Hashtbl.replace st.pending_async page (Float.max prev arrival))
          hpages
  done;
  Prof.exit Prof.Protocol

let async_fetch sys p pages =
  if Ft.replicated sys.ft then
    quorum_fetch_pages sys p pages ~mode:Protocol.Rpc
  else async_fetch_single sys p pages

let make_consistent sys p page =
  let st = sys.states.(p) in
  match Hashtbl.find_opt st.pending_async page with
  | Some arrival ->
      Hashtbl.remove st.pending_async page;
      Cluster.sync_clock sys.cluster p arrival;
      fetch_pages sys p [ page ] ~mode:Protocol.Prepaid
  | None -> fetch_pages sys p [ page ] ~mode:Protocol.Rpc

(* Fault handlers: identical bookkeeping to the homeless protocol, with
   the home fetch as the data movement. *)
let read_fault sys p page =
  Prof.enter Prof.Protocol;
  let st = sys.states.(p) in
  let pstats = sys.cluster.Cluster.stats.(p) in
  pstats.Stats.segv <- pstats.Stats.segv + 1;
  Cluster.mm_op sys.cluster p ~npages:1;
  if sys.trace <> None then
    Protocol.emit sys p
      (Dsm_trace.Event.Page_fault { page; write = false; fetch = true });
  make_consistent sys p page;
  let pg = Page_table.get st.pt page in
  pg.Page_table.prot <-
    (if Protocol.in_dirty st page then Page_table.Read_write
     else Page_table.Read_only);
  Prof.exit Prof.Protocol

let write_fault sys p page =
  Prof.enter Prof.Protocol;
  let st = sys.states.(p) in
  let pstats = sys.cluster.Cluster.stats.(p) in
  let cfg = sys.cluster.Cluster.cfg in
  pstats.Stats.segv <- pstats.Stats.segv + 1;
  Cluster.mm_op sys.cluster p ~npages:1;
  let pg = Page_table.get st.pt page in
  let m = Protocol.meta st ~nprocs:sys.nprocs page in
  let fetch = pg.Page_table.prot = Page_table.No_access in
  if sys.trace <> None then
    Protocol.emit sys p (Dsm_trace.Event.Page_fault { page; write = true; fetch });
  if fetch then make_consistent sys p page;
  if Range.is_empty m.write_all && pg.Page_table.twin = None then begin
    Page_table.make_twin pg;
    pstats.Stats.twins <- pstats.Stats.twins + 1;
    if sys.trace <> None then Protocol.emit sys p (Dsm_trace.Event.Twin { page });
    Cluster.charge sys.cluster p
      (cfg.Config.twin_per_byte_us *. float_of_int sys.page_size)
  end;
  Protocol.mark_dirty st page;
  pg.Page_table.prot <- Page_table.Read_write;
  Prof.exit Prof.Protocol

(* {1 Synchronization: shared skeletons, home-based data movement} *)

(* Piggy-backed section requests at a barrier. The responder scan runs at
   the homes (each processor matches the other requesters' sections
   against the pages it homes); requesters are answered with home copies
   sent at departure. No broadcast detection: the home copy is already a
   single producer, so the hybrid-update optimization has nothing to
   merge. *)
let handle_wsync sys p ~epoch ~departure_clock ~my_reqs =
  let b = sys.barrier in
  let cfg = sys.cluster.Cluster.cfg in
  let entries =
    Option.value ~default:[] (Hashtbl.find_opt b.wsync_tbl epoch)
  in
  List.iter
    (fun (r, reqs) ->
      if r <> p then begin
        let mine =
          List.filter
            (fun page ->
              (* cost-only peek: this scan must never assign a home. Under
                 first-touch a page with no home yet cannot be "mine", and
                 recording the requester as its toucher here would hand
                 out homes a run without this scan (or with a different
                 departure order) would assign differently — the page's
                 real first toucher claims it when data actually moves. *)
              match Hashtbl.find_opt sys.homes page with
              | Some h -> h = p
              | None -> (
                  match sys.cluster.Cluster.cfg.Config.home_policy with
                  | Config.Home_first_touch -> false
                  | Config.Home_cyclic | Config.Home_block ->
                      home_of sys ~toucher:r page = p))
            (Sync_ops.wsync_req_pages sys reqs)
        in
        if mine <> [] then
          Cluster.charge sys.cluster p
            (cfg.Config.wsync_scan_per_page_us
            *. float_of_int (List.length mine))
      end)
    entries;
  List.iter
    (fun req ->
      let pages = Range.pages ~page_size:sys.page_size req.wr_ranges in
      (* under replication the asynchronous variant falls through to the
         synchronous quorum fetch below, like {!async_fetch} *)
      if req.wr_async && not (Ft.replicated sys.ft) then begin
        let st = sys.states.(p) in
        let by_home = Array.make sys.nprocs [] in
        List.iter
          (fun page ->
            if
              (not (Hashtbl.mem st.pending_async page))
              && stale st ~nprocs:sys.nprocs p page
            then begin
              let home = home_of sys ~toucher:p page in
              if home = p then revalidate_local sys p page
              else by_home.(home) <- page :: by_home.(home)
            end)
          pages;
        for home = 0 to sys.nprocs - 1 do
          match by_home.(home) with
          | [] -> ()
          | rev_pages ->
              (* the request traveled on the arrival message; the home
                 answers at departure and the faults consume the copies *)
              let hpages = List.rev rev_pages in
              let npages = List.length hpages in
              let resp_bytes = (npages * sys.page_size) + (16 * npages) in
              let hstats = sys.cluster.Cluster.stats.(home) in
              hstats.Stats.messages <- hstats.Stats.messages + 1;
              hstats.Stats.bytes <- hstats.Stats.bytes + resp_bytes;
              Cluster.charge sys.cluster home
                (cfg.Config.msg_overhead_us
                +. (cfg.Config.per_byte_us *. float_of_int resp_bytes));
              let arrival =
                departure_clock
                +. (cfg.Config.per_byte_us *. float_of_int resp_bytes)
                +. cfg.Config.wire_latency_us +. cfg.Config.msg_overhead_us
              in
              List.iter
                (fun page ->
                  let prev =
                    Option.value ~default:0.0
                      (Hashtbl.find_opt st.pending_async page)
                  in
                  Hashtbl.replace st.pending_async page
                    (Float.max prev arrival))
                hpages
        done;
        match req.wr_access with
        | Write_all | Read_write_all ->
            Protocol.record_write_all sys p req.wr_ranges
        | Read | Write | Read_write -> ()
      end
      else begin
        fetch_pages sys p pages ~mode:(Protocol.Piggyback departure_clock);
        Protocol.apply_access_state sys p ~ranges:req.wr_ranges
          ~access:req.wr_access
      end)
    my_reqs

let no_bcast _sys ~epoch:_ ~departure_clock:_ _entries = None

let barrier t =
  Sync_ops.barrier_with ~release ~plan_bcast:no_bcast
    ~handle_wsync t

(* On a lock grant, piggy-backed section requests are answered with home
   copies sent at grant time (the grantor's scan cost is absorbed into the
   homes' handlers). *)
let answer_wsync sys p ~grantor:_ ~grant_ready req =
  let pages = Range.pages ~page_size:sys.page_size req.wr_ranges in
  fetch_pages sys p pages ~mode:(Protocol.Piggyback grant_ready);
  Protocol.apply_access_state sys p ~ranges:req.wr_ranges
    ~access:req.wr_access

let lock_acquire t lid = Sync_ops.lock_acquire_with ~answer_wsync t lid
let lock_release t lid = Sync_ops.lock_release_with ~release t lid

(* {1 The augmented interface} *)

let validate t ~async sections access =
  Prof.enter Prof.Sync;
  let sys = t.sys
  and p = t.p in
  let pstats = Types.stats t in
  pstats.Stats.validates <- pstats.Stats.validates + 1;
  let ranges = Validate.ranges_of_sections sections in
  let pages = Range.pages ~page_size:sys.page_size ranges in
  if sys.trace <> None then
    Protocol.emit sys p
      (Dsm_trace.Event.Validate
         {
           access = access_to_string access;
           npages = List.length pages;
           async;
           w_sync = false;
         });
  (match access with
  | Read | Write | Read_write ->
      let to_fetch, skipped = Protocol.obj_skip sys p ~ranges pages in
      if async then begin
        let faultable, unfaultable = Protocol.split_unfaultable sys p to_fetch in
        async_fetch sys p faultable;
        if unfaultable <> [] then
          fetch_pages sys p unfaultable ~mode:Protocol.Rpc;
        if skipped <> [] || unfaultable <> [] then
          Protocol.apply_access_state sys p
            ~ranges:(Validate.clip_to_pages sys ranges (skipped @ unfaultable))
            ~access
      end
      else begin
        fetch_pages sys p to_fetch ~mode:Protocol.Rpc;
        Protocol.apply_access_state sys p ~ranges ~access
      end
  | Write_all -> Protocol.apply_access_state sys p ~ranges ~access
  | Read_write_all ->
      let to_fetch, skipped = Protocol.obj_skip sys p ~ranges pages in
      if async then begin
        let faultable, unfaultable = Protocol.split_unfaultable sys p to_fetch in
        async_fetch sys p faultable;
        if unfaultable <> [] then
          fetch_pages sys p unfaultable ~mode:Protocol.Rpc;
        Protocol.record_write_all sys p ranges;
        if skipped <> [] || unfaultable <> [] then
          Protocol.apply_access_state sys p
            ~ranges:(Validate.clip_to_pages sys ranges (skipped @ unfaultable))
            ~access
      end
      else begin
        fetch_pages sys p to_fetch ~mode:Protocol.Rpc;
        Protocol.apply_access_state sys p ~ranges ~access
      end);
  Prof.exit Prof.Sync

let validate_w_sync t ~async sections access =
  Validate.validate_w_sync t ~async sections access

let push t ~read_sections ~write_sections =
  Validate.push_with ~release t ~read_sections ~write_sections

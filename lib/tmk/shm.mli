(** Typed access to the simulated shared segment: the DSM's load/store
    interface.

    Every access consults the page's protection bits and enters the
    selected coherence backend's fault handlers (via {!Types.backend_ops})
    exactly where a hardware MMU would deliver SIGSEGV: a read of an
    invalid page triggers the backend's read fault (diff or home-page
    fetch), the first write to a write-protected page its write fault
    (twin creation, write detection). Elements are 4- or 8-byte aligned
    and never straddle a page boundary. *)

val page_for_read : Types.t -> int -> Dsm_mem.Page_table.page
val page_for_write : Types.t -> int -> Dsm_mem.Page_table.page

val get_f64 : Types.t -> int -> float
val set_f64 : Types.t -> int -> float -> unit
val get_i64 : Types.t -> int -> int
val set_i64 : Types.t -> int -> int -> unit

val get_raw64 : Types.t -> int -> int64
(** Raw 64-bit load through the read-fault path (little-endian), without
    interpreting the element as float or int: used for content digests. *)

val get_i32 : Types.t -> int -> int
val set_i32 : Types.t -> int -> int -> unit

(** 1-dimensional float array view. *)
module F64_1 : sig
  type t = Dsm_rsd.Section.array_info

  val addr : t -> int -> int
  val get : Types.t -> t -> int -> float
  val set : Types.t -> t -> int -> float -> unit
  val length : t -> int

  val section : t -> int * int * int -> Dsm_rsd.Section.t
  (** [(lo, hi, stride)], inclusive element indices. *)
end

(** 2-dimensional float array view; column-major (the first index is
    contiguous, as in the paper's Fortran programs). *)
module F64_2 : sig
  type t = Dsm_rsd.Section.array_info

  val addr : t -> int -> int -> int
  val get : Types.t -> t -> int -> int -> float
  val set : Types.t -> t -> int -> int -> float -> unit

  val rmw : Types.t -> t -> int -> int -> (float -> float) -> unit
  (** Read-modify-write with a single page lookup. *)

  val dim0 : t -> int
  val dim1 : t -> int
  val section : t -> int * int * int -> int * int * int -> Dsm_rsd.Section.t
end

(** 3-dimensional float array view. *)
module F64_3 : sig
  type t = Dsm_rsd.Section.array_info

  val addr : t -> int -> int -> int -> int
  val get : Types.t -> t -> int -> int -> int -> float
  val set : Types.t -> t -> int -> int -> int -> float -> unit

  val section :
    t -> int * int * int -> int * int * int -> int * int * int ->
    Dsm_rsd.Section.t
end

(** 1-dimensional integer (boxed as 64-bit) array view. *)
module I64_1 : sig
  type t = Dsm_rsd.Section.array_info

  val addr : t -> int -> int
  val get : Types.t -> t -> int -> int
  val set : Types.t -> t -> int -> int -> unit
  val length : t -> int
  val section : t -> int * int * int -> Dsm_rsd.Section.t
end

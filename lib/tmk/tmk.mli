(** TreadMarks-style lazy-release-consistency software DSM, with the
    augmented compiler interface of the paper (Validate, Validate_w_sync,
    Push), and pluggable coherence backends ([Config.backend]): the
    homeless LRC protocol of the paper, or home-based LRC (each page has a
    home processor; releasers flush diffs to it eagerly and misses fetch
    one full page from it).

    Typical use:
    {[
      let sys = Tmk.make (Dsm_sim.Config.default) in
      let b = Tmk.Alloc.array sys "b" Tmk.F64 ~dims:[ rows; cols ] in
      Tmk.run sys (fun t ->
          let p = Tmk.pid t in
          ...
          Tmk.Shm.F64_2.set t b i j v;
          Tmk.barrier t);
      Format.printf "parallel time: %.0f us@." (Tmk.elapsed sys)
    ]} *)

type system = Types.system
type t = Types.t
(** Per-processor handle, passed to the program run on each processor. *)

type access = Types.access =
  | Read
  | Write
  | Read_write
  | Write_all
  | Read_write_all
      (** Access types of the augmented interface (Figure 3 of the paper).
          The first three preserve consistency; the [_all] types disable it
          and require exact compiler analysis. *)

val make : ?plan:Proto_plan.t -> Dsm_sim.Config.t -> system
(** Build a system for [Config.nprocs] processors, driven by the coherence
    backend selected by [Config.backend] (with homes assigned per
    [Config.home_policy] when home-based).

    [plan] is a static protocol-placement plan ({!Proto_plan}, the
    [dsm_run --plan] artifact): its exact-confidence directives seed the
    adaptive backend's initial per-page classification (and the matching
    invalidate-directory / home-map state) — or, under the plain hlrc
    backend, just the home assignments — at the start of the first
    {!run}, before any processor executes. Each applied directive emits
    a [Plan_applied] trace event. Raises [Invalid_argument] (in the
    {!Dsm_net.Plan.field_error} format) when the plan's [nprocs] or
    [page_size] disagree with [cfg]. *)

val backend_name : system -> string
(** Name of the selected backend: ["lrc"] or ["hlrc"]. *)

val run : ?trace:Dsm_trace.Sink.t -> system -> (t -> unit) -> unit
(** Execute the program on every simulated processor. [trace] collects
    typed protocol events (page faults, twins, diff creations/applications,
    write notices, synchronization, Validate/Push) for the duration of this
    run; tracing never charges simulated time, so clocks, statistics and
    shared memory are bit-identical with and without it. The trace can be
    replayed through {!Dsm_trace.Check} or serialized with
    {!Dsm_trace.Sink.write_jsonl}. *)

(** {1 Allocation} (before {!run}) *)

type kind = F64 | I64  (** Element kind of a shared array (8 bytes each). *)

(** Shared-memory allocation. [array] is the general entry point; [objs]
    additionally declares sub-page granularity, the remedy for false
    sharing when many small independent objects pack into one page. *)
module Alloc : sig
  type granularity =
    | Page  (** classic page-granular coherence (the default elsewhere) *)
    | Object
        (** per-object staleness tracking: a validate of objects disjoint
            from every stale slot skips the fetch entirely *)

  val array :
    system -> string -> kind -> dims:int list -> Dsm_rsd.Section.array_info
  (** [array sys name kind ~dims] allocates a shared array of the given
      extents (column-major; the first dimension is contiguous). Access it
      through the {!Shm} view matching its rank and kind. *)

  val objs :
    system ->
    ?granularity:granularity ->
    string ->
    obj_size:int ->
    count:int ->
    Dsm_rsd.Section.array_info
  (** [objs sys name ~obj_size ~count] allocates [count] packed fixed-size
      objects of [obj_size] bytes, page-aligned; [obj_size] must be a
      multiple of 8 dividing the page size, so an object never straddles
      pages. Under [~granularity:Object] (the default) the run-time tracks
      staleness per object slot on top of the page watermarks, and
      validates of current objects skip fetching pages whose staleness is
      pure false sharing; [~granularity:Page] allocates identically but
      keeps page-granular coherence — the experiment control. Raises
      [Invalid_argument] (in the {!Dsm_net.Plan.field_error} format) on a
      bad [obj_size] or [count]. The result is a rank-1 [I64]-kind array
      of [count * obj_size / 8] words; address object [i]'s word [w] at
      [base + i*obj_size + 8*w]. *)
end

(** {1 Per-processor operations} *)

val pid : t -> int
val nprocs : t -> int

val charge : t -> float -> unit
(** Account [us] microseconds of local computation. *)

val barrier : t -> unit
val lock_acquire : t -> int -> unit
val lock_release : t -> int -> unit

val validate :
  t -> ?async:bool -> Dsm_rsd.Section.t list -> access -> unit
(** Inform the run-time of upcoming accesses: fetches and applies the
    missing diffs for the sections (aggregated, one request per writer) and
    sets protections per the access type. [async] sends the fetch requests
    and lets the page-fault handler complete the work (Section 3.2.3). *)

val validate_w_sync :
  t -> ?async:bool -> Dsm_rsd.Section.t list -> access -> unit
(** Like {!validate}, but piggy-backs the diff request on the next
    synchronization operation (lock acquire or barrier). *)

val push :
  t ->
  read_sections:Dsm_rsd.Section.t list array ->
  write_sections:Dsm_rsd.Section.t list array ->
  unit
(** Replace a barrier: point-to-point exchange of
    [w_section(me) inter r_section(i)] (Figure 3). Synchronous only, as in
    the paper's implementation. *)

(** {1 Results} *)

val elapsed : system -> float
(** Parallel execution time so far (max over processor clocks), us. *)

val time : t -> float
val stats : system -> Dsm_sim.Stats.t array
val total_stats : system -> Dsm_sim.Stats.t
val cluster : system -> Dsm_sim.Cluster.t

val digest : system -> string
(** Hex digest of the contents of every allocated array, observed through
    the protocol (an extra {!run} in which processor 0 reads all of shared
    memory). Two backends implementing the same memory model produce equal
    digests for the same program. Capture timing/statistics results before
    calling this: the digest run advances the simulated clocks. *)

val homes : system -> (int * int) list
(** The page-to-home assignments the run made (hlrc backend), sorted by
    page; empty for backends that assign none. Capture before {!digest} —
    the digest run's read pass can itself assign first-touch homes. *)

val adapt_classes : system -> (int * string * int) list
(** Final per-page classification of the adaptive backend, sorted by
    page: (page, protocol name, designated owner) — the home under
    "hlrc", the holder under "inval", -1 under "lrc". Pages the run
    never touched or seeded are absent (they stayed under the LRC
    default). Capture before {!digest}, whose read pass updates the
    sharing observations. *)

(** {1 Raw shared-memory access} *)

module Shm = Shm
module Section = Dsm_rsd.Section
module Rsd = Dsm_rsd.Rsd

(* Indexed per-processor write-notice log.

   [Protocol.release] allocates interval sequence numbers densely (1, 2,
   ...), so the log is an array indexed by seq instead of the former
   newest-first association list. This turns the three hot queries —
   pulling the notices of a vector-clock window, counting notices newer
   than a watermark, and finding the newest interval touching a page —
   from O(full history) scans into O(window) loops or O(1) lookups. A
   cumulative notice count gives the watermark query without touching
   the entries at all.

   Iteration is seq-descending, matching the former newest-first list
   order exactly: simulated results are bit-identical. *)

type t = {
  mutable pages : int list array;  (* slot s: pages of interval seq s *)
  mutable cum : int array;  (* slot s: total notice count of seqs <= s *)
  mutable hi : int;  (* highest recorded seq; slots 1..hi are valid *)
}

let create () = { pages = Array.make 64 []; cum = Array.make 64 0; hi = 0 }

let grow t n =
  let len = Array.length t.pages in
  if n >= len then begin
    let len' = max (n + 1) (2 * len) in
    let p = Array.make len' [] in
    Array.blit t.pages 0 p 0 len;
    t.pages <- p;
    let c = Array.make len' 0 in
    Array.blit t.cum 0 c 0 len;
    t.cum <- c
  end

let add t ~seq pages =
  if seq <> t.hi + 1 then invalid_arg "Ilog.add: non-consecutive seq";
  grow t seq;
  t.pages.(seq) <- pages;
  t.cum.(seq) <- t.cum.(t.hi) + List.length pages;
  t.hi <- seq

let hi t = t.hi

(* Number of write notices in intervals newer than [seq]. *)
let count_since t seq =
  let s = if seq >= t.hi then t.hi else if seq < 0 then 0 else seq in
  t.cum.(t.hi) - t.cum.(s)

(* [f seq pages] for every recorded interval with [lo < seq <= hi],
   newest first. *)
let iter_desc t ~lo ~hi f =
  let top = if hi > t.hi then t.hi else hi in
  for s = top downto lo + 1 do
    f s t.pages.(s)
  done

(* Newest interval with [lo < seq <= upto] whose page list contains
   [page]; 0 if none. *)
let newest_containing t ~lo ~upto page =
  let top = if upto > t.hi then t.hi else upto in
  let rec go s =
    if s <= lo then 0 else if List.mem page t.pages.(s) then s else go (s - 1)
  in
  go top

(* Shared record types of the TreadMarks run-time. Kept in one module so
   that the protocol, synchronization, and augmented-interface modules can
   share them without circular dependencies; the operations live in
   {!Protocol}, {!Sync_ops} and {!Validate}. *)

(* Access types of the augmented interface (Figure 3 of the paper). *)
type access =
  | Read
  | Write
  | Read_write
  | Write_all  (** entire section written before read: consistency disabled *)
  | Read_write_all
      (** entire section written, but partly read first: fetch, no twins *)

let access_to_string = function
  | Read -> "READ"
  | Write -> "WRITE"
  | Read_write -> "READ&WRITE"
  | Write_all -> "WRITE_ALL"
  | Read_write_all -> "READ&WRITE_ALL"

(* Per-page protocol metadata of one processor. The watermark maps are
   sparse ({!Wmap}): dense per-writer arrays would cost O(nprocs) words
   per (processor, page) pair, which forbids 1024-processor clusters. *)
type page_meta = {
  applied : Wmap.t;  (* per-writer interval seq applied into my copy *)
  known : Wmap.t;  (* per-writer highest interval seq noticed *)
  mutable write_all : Dsm_rsd.Range.t;
      (* byte ranges (absolute) validated WRITE_ALL; sticky until the page's
         diff is materialized *)
  mutable lazy_hi : int;
      (* highest released interval seq whose modifications to this page have
         not been materialized as a diff yet (lazy diffing); 0 = none *)
  mutable lazy_vcsum : int;
      (* vector-clock sum at that release: the happens-before order stamp the
         materialized diff must carry (materialization happens much later) *)
  mutable home_flushed : int;
      (* HLRC only: my highest interval seq whose modifications to this page
         have been flushed into the home copy; 0 = none *)
  mutable ob_stale : Pset.t;
      (* object-granularity pages only: slots (page_offset / obj_size) some
         known-but-unapplied foreign interval wrote. A validate whose
         objects are all disjoint from this set may skip the fetch; always
         empty for page-granular pages, and cleared whenever the copy
         becomes fully current *)
}

(* Per-processor run-time state. *)
type pstate = {
  me : int;
  pt : Dsm_mem.Page_table.t;
  vc : Vc.t;
  dirty : (int, unit) Hashtbl.t;
      (* pages write-enabled in the current interval; a set — {!Protocol.release}
         takes a sorted snapshot so behaviour stays deterministic *)
  meta : (int, page_meta) Hashtbl.t;
  pending_async : (int, float) Hashtbl.t;  (* page -> response arrival time *)
  mutable pending_wsync : wsync_req list;
  mutable barrier_epoch : int;
  mutable notices_sent_seq : int;
      (* my highest interval seq already shipped on a barrier arrival;
         arrival-message sizes count only notices newer than this *)
  mutable partial_push : (int * int * int) list;
      (* (page, writer, seq) for push data that only partially covered the
         page: the next barrier rolls the applied watermark back so that the
         whole page becomes consistent again ("the run-time system ensures
         that ... all data is made consistent ... after that global
         synchronization", Section 3.1.2) *)
}

and wsync_req = {
  wr_ranges : Dsm_rsd.Range.t;
  wr_access : access;
  wr_async : bool;
}

type lock = {
  lid : int;
  mutable held_by : int option;
  mutable last_releaser : int;
  mutable release_clock : float;
  mutable release_vc : Vc.t option;  (* None until first release *)
  mutable pending : (int * float) list;  (* (pid, request arrival time) *)
  mutable granted : int option;
  mutable grant_clock : float;
}

(* Decision, made at barrier departure, to broadcast data instead of sending
   per-requester responses (Section 3.2.1: "Fetch_diffs_w_sync uses broadcast
   if the processor can determine that it sends the same data to all other
   processors"). *)
type bcast_plan = {
  bp_src : int;
  bp_pages : int list;
  bp_base : float;  (* broadcast start time (barrier departure) *)
  bp_per_hop : float;  (* one tree-hop transfer time *)
  bp_requesters : int list;
  bp_bytes : int;
}

type barrier = {
  mutable epoch : int;
  mutable arrived : int;
  arrival_clock : float array;  (* per proc, at arrival-send completion *)
  mutable departure_clock : float;  (* resume clock for non-master procs *)
  mutable master_resume_clock : float;
  mutable departure_vc : Vc.t;  (* pointwise max of all vcs at departure *)
  wsync_tbl : (int, (int * wsync_req list) list) Hashtbl.t;
      (* epoch -> requests piggy-backed on arrival messages, per requester *)
  wsync_done : (int, int) Hashtbl.t;
      (* epoch -> processors done with that epoch's departure processing;
         when the count reaches nprocs the epoch's wsync_tbl entry is dead
         and both entries are pruned (the tables stay bounded over a run) *)
  mutable bcast_plan : (int * bcast_plan) option;  (* (epoch, plan) *)
}

type push_msg = {
  pm_arrival : float;
  pm_payload : (int * Bytes.t) list;  (* (absolute address, bytes) runs *)
  pm_seq : int;  (* sender's interval seq covering the pushed writes *)
  pm_notices : (int * int list) list;  (* sender's new (seq, pages) *)
  pm_vc : Vc.t;
}

(* Per-page directory entry of the single-writer invalidate protocol
   ({!Invalidate}); lives conceptually on processor [page mod nprocs].
   [iv_owner] always holds an up-to-date copy; when [iv_excl] it is the
   only valid copy (M), otherwise every processor in [iv_sharers] holds
   one (S). Before the first directory transaction every processor's
   zero-filled initial copy is valid, so a fresh entry lists them all. *)
type iv_entry = {
  mutable iv_owner : int;
  mutable iv_excl : bool;
  mutable iv_sharers : int list;  (* sorted; includes the owner *)
}

(* Adaptive backend: which protocol currently governs a page. *)
type page_proto = P_lrc | P_hlrc | P_inval

let page_proto_name = function
  | P_lrc -> "lrc"
  | P_hlrc -> "hlrc"
  | P_inval -> "inval"

(* Per-page sharing-pattern observations of the adaptive backend, reset at
   each classification window. Populations are {!Pset} processor sets so
   the cluster size is not capped by a bitmask (scaling runs reach 1024
   simulated processors). *)
type adapt_page = {
  mutable ap_proto : page_proto;
  mutable ap_readers : Pset.t;  (* procs that read-faulted/validated *)
  mutable ap_writers : Pset.t;  (* procs that write-faulted/validated *)
  mutable ap_last_writer : int;  (* previous window's single writer, -1 *)
  mutable ap_migrations : int;  (* windows in which the writer changed *)
}

(* One object-granularity shared region ({!Tmk.Alloc.objs}): [or_count]
   packed fixed-size objects starting at a page boundary, [or_obj_size]
   bytes each (a multiple of 8 dividing the page size, so an object never
   straddles pages). *)
type obj_region = {
  or_base_page : int;
  or_npages : int;
  or_obj_size : int;
  or_count : int;
}

type system = {
  cluster : Dsm_sim.Cluster.t;
  net : Dsm_net.Net.t;
      (* reliable transport over the (possibly faulty) modeled network; all
         protocol messages go through it. With a fault-free plan it is a
         bit-identical pass-through to the [cluster] cost functions. *)
  space : Dsm_mem.Addr_space.t;
  store : Diff_store.t;
  states : pstate array;
  logs : Ilog.t array;  (* per proc: write-notice log indexed by seq *)
  locks : (int, lock) Hashtbl.t;
  barrier : barrier;
  pushbox : (int * int, push_msg) Hashtbl.t;  (* (src, dst) *)
  page_size : int;
  page_shift : int;
      (* log2 page_size when the page size is a power of two, -1 otherwise;
         the Shm fast path replaces the per-access div/mod with shift/mask *)
  page_mask : int;  (* page_size - 1 when a power of two, 0 otherwise *)
  nprocs : int;
  homes : (int, int) Hashtbl.t;
      (* HLRC only: page -> home processor, filled lazily by the active
         home-assignment policy; empty under the homeless backend *)
  iv_dir : (int, iv_entry) Hashtbl.t;
      (* invalidate/adaptive only: per-page directory entries, created on
         the first directory transaction for a page *)
  adapt : (int, adapt_page) Hashtbl.t;
      (* adaptive only: per-page protocol mode + sharing observations *)
  mutable adapt_tick : int;
      (* adaptive only: barrier epochs since the last classification *)
  ft : Dsm_ft.Ft.t;
      (* crash-stop fault-tolerance state: crash queues, down windows,
         lost-page sets and checkpoints ({!Recover} interprets them).
         Inert — every hook a single test — unless the configuration sets
         [replicas > 1] or a crash schedule *)
  bops : backend_ops;
      (* the coherence backend driving this system; selected once in
         {!Tmk.make} from [Config.backend] and never changed afterwards *)
  mutable trace : Dsm_trace.Sink.t option;
      (* protocol event sink; [None] (the default) makes every
         instrumentation site a single comparison with no allocation, and
         emission never touches clocks or statistics *)
  mutable pending_plan : Proto_plan.t option;
      (* static protocol-placement plan ([dsm_run --plan]) awaiting
         application; consumed at the start of the first {!Tmk.run} so the
         later digest pass does not re-seed over the run's final state *)
  obj_regions : (int, int) Hashtbl.t;
      (* page -> obj_size for pages inside an object-granularity region
         ({!Tmk.Alloc.objs}); empty (and all hooks dead) for the kernels *)
  obj_extents : (int * int * int, Pset.t) Hashtbl.t;
      (* (writer, seq, page) -> slots the writer's interval [seq] modified
         on the page; recorded at release, consumed when the notice is
         applied to grow the receiver's [ob_stale] *)
  mutable obj_decls : obj_region list;
      (* declaration order reversed; {!Tmk.run} emits one [Obj_region]
         trace event per region so the checker learns the geometry *)
  mutable has_objs : bool;
      (* single-test short-circuit guarding every object-granularity hook
         on the protocol paths the kernels share *)
}

(* Per-processor handle passed to application code. [st] caches
   [sys.states.(p)]: every Shm access starts from the handle, and the
   cached field saves an array bound check plus two loads on that path. *)
and t = { sys : system; p : int; st : pstate }

(* First-class record of one coherence backend's entry points — everything
   the rest of the run-time (fault handlers in {!Shm}, synchronization and
   augmented-interface dispatch in {!Tmk}) needs from a protocol. The
   functions mirror {!Backend.S}; keeping them as a flat record of closures
   lets {!system} carry the selected backend without a functor boundary on
   the hot path (faults are already cold: a dispatch through a record field
   is noise next to the page-table work they do). *)
and backend_ops = {
  b_name : string;
  b_read_fault : system -> int -> int -> unit;  (* sys proc page *)
  b_write_fault : system -> int -> int -> unit;
  b_barrier : t -> unit;
  b_lock_acquire : t -> int -> unit;
  b_lock_release : t -> int -> unit;
  b_validate : t -> async:bool -> Dsm_rsd.Section.t list -> access -> unit;
  b_validate_w_sync :
    t -> async:bool -> Dsm_rsd.Section.t list -> access -> unit;
  b_push :
    t ->
    read_sections:Dsm_rsd.Section.t list array ->
    write_sections:Dsm_rsd.Section.t list array ->
    unit;
}

let state t = t.st
let cfg t = t.sys.cluster.Dsm_sim.Cluster.cfg
let stats t = t.sys.cluster.Dsm_sim.Cluster.stats.(t.p)

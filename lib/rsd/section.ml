type array_info = {
  name : string;
  base : int;
  elem_size : int;
  extents : int array;
}

type t = { arr : array_info; rsd : Rsd.t }

let make arr rsd =
  if Rsd.ndims rsd <> Array.length arr.extents then
    invalid_arg "Section.make: dimension mismatch";
  { arr; rsd }

let whole arr =
  let rsd =
    Rsd.make (Array.to_list arr.extents |> List.map (fun e -> (0, e - 1, 1)))
  in
  { arr; rsd }

let addr_of_index arr idx =
  let n = Array.length arr.extents in
  let off = ref 0 in
  for d = n - 1 downto 0 do
    off := (!off * arr.extents.(d)) + idx.(d)
  done;
  arr.base + (!off * arr.elem_size)

let size_bytes t = Rsd.size t.rsd * t.arr.elem_size

(* Enumerate contiguous runs: the innermost dimension produces a run when its
   stride is 1; outer dimensions multiply the number of runs. *)
let ranges t =
  if Rsd.is_empty t.rsd then Range.empty
  else begin
    let dims = t.rsd.Rsd.dims in
    let n = Array.length dims in
    let acc = ref [] in
    let idx = Array.make n 0 in
    let d0 = dims.(0) in
    let inner_run = d0.Rsd.stride = 1 in
    let rec go d =
      if d = 0 then
        if inner_run then begin
          idx.(0) <- d0.Rsd.lo;
          let lo = addr_of_index t.arr idx in
          let hi = lo + ((d0.Rsd.hi - d0.Rsd.lo + 1) * t.arr.elem_size) in
          acc := (lo, hi) :: !acc
        end
        else begin
          let i = ref d0.Rsd.lo in
          while !i <= d0.Rsd.hi do
            idx.(0) <- !i;
            let lo = addr_of_index t.arr idx in
            acc := (lo, lo + t.arr.elem_size) :: !acc;
            i := !i + d0.Rsd.stride
          done
        end
      else begin
        let dd = dims.(d) in
        let i = ref dd.Rsd.lo in
        while !i <= dd.Rsd.hi do
          idx.(d) <- !i;
          go (d - 1);
          i := !i + dd.Rsd.stride
        done
      end
    in
    go (n - 1);
    Range.normalize !acc
  end

let inter_ranges a b = Range.inter (ranges a) (ranges b)
let diff_ranges a b = Range.diff (ranges a) (ranges b)

let union_ranges l =
  List.fold_left (fun acc s -> Range.union acc (ranges s)) Range.empty l
let is_contiguous t = Range.is_contiguous (ranges t)

let pp ppf t =
  Format.fprintf ppf "%s%a" t.arr.name Rsd.pp t.rsd

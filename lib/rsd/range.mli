(** Sets of byte addresses represented as sorted, disjoint, non-adjacent
    half-open intervals [\[lo, hi)].

    The run-time system receives compiler-computed sections translated into
    contiguous address ranges (Section 3.3 of the paper: "these section
    parameters are translated by the compiler into a set of contiguous
    address ranges"). *)

type t = (int * int) list
(** Invariant: sorted by [lo], pairwise disjoint, no empty or adjacent
    intervals. Use {!normalize} to establish the invariant. *)

val empty : t
val of_interval : int -> int -> t
(** [of_interval lo hi] is the single interval [\[lo, hi)]; empty if
    [hi <= lo]. *)

val normalize : (int * int) list -> t
(** Sort, drop empties, merge overlapping and adjacent intervals. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val size : t -> int
(** Total number of addresses covered. *)

val is_empty : t -> bool
val mem : int -> t -> bool

val covers : t -> lo:int -> hi:int -> bool
(** Whether [\[lo, hi)] is entirely contained. *)

val subset : t -> t -> bool
(** [subset a b]: every address of [a] is in [b] (i.e. [diff a b] is
    empty). *)

val iter : t -> (lo:int -> hi:int -> unit) -> unit

val pages : page_size:int -> t -> int list
(** Sorted list of distinct page numbers touched by the ranges. *)

val clip_to_page : page_size:int -> page:int -> t -> t
(** Restrict the ranges to the given page. *)

val is_contiguous : t -> bool
(** True when the set is empty or a single interval (the paper's
    transformation only uses [Validate ... WRITE_ALL] on contiguous
    sections). *)

val pp : Format.formatter -> t -> unit

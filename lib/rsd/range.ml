type t = (int * int) list

let empty = []
let of_interval lo hi = if hi <= lo then [] else [ (lo, hi) ]

let normalize l =
  let l = List.filter (fun (lo, hi) -> hi > lo) l in
  let l = List.sort compare l in
  let rec merge = function
    | [] -> []
    | [ x ] -> [ x ]
    | (lo1, hi1) :: (lo2, hi2) :: rest ->
        if lo2 <= hi1 then merge ((lo1, max hi1 hi2) :: rest)
        else (lo1, hi1) :: merge ((lo2, hi2) :: rest)
  in
  merge l

let union a b = normalize (a @ b)

let inter a b =
  let rec go a b acc =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | (lo1, hi1) :: ta, (lo2, hi2) :: tb ->
        let lo = max lo1 lo2
        and hi = min hi1 hi2 in
        let acc = if hi > lo then (lo, hi) :: acc else acc in
        if hi1 < hi2 then go ta b acc else go a tb acc
  in
  go a b []

let diff a b =
  let rec go a b acc =
    match (a, b) with
    | [], _ -> List.rev acc
    | _, [] -> List.rev_append acc a
    | (lo1, hi1) :: ta, (lo2, hi2) :: tb ->
        if hi2 <= lo1 then go a tb acc
        else if hi1 <= lo2 then go ta b ((lo1, hi1) :: acc)
        else
          (* overlap *)
          let acc = if lo1 < lo2 then (lo1, lo2) :: acc else acc in
          if hi1 <= hi2 then go ta b acc
          else go ((hi2, hi1) :: ta) tb acc
  in
  go a b []

let size t = List.fold_left (fun acc (lo, hi) -> acc + hi - lo) 0 t
let subset a b = diff a b = []
let is_empty t = t = []
let mem x t = List.exists (fun (lo, hi) -> x >= lo && x < hi) t
let covers t ~lo ~hi = hi <= lo || List.exists (fun (l, h) -> l <= lo && hi <= h) t
let iter t f = List.iter (fun (lo, hi) -> f ~lo ~hi) t

let pages ~page_size t =
  (* the intervals are sorted and disjoint, so pages come out ascending;
     only the boundary between consecutive intervals can repeat a page *)
  let acc = ref [] in
  let last = ref min_int in
  List.iter
    (fun (lo, hi) ->
      let p0 = lo / page_size
      and p1 = (hi - 1) / page_size in
      let p0 = if p0 <= !last then !last + 1 else p0 in
      for p = p0 to p1 do
        acc := p :: !acc
      done;
      if p1 > !last then last := p1)
    t;
  List.rev !acc

let clip_to_page ~page_size ~page t =
  inter t (of_interval (page * page_size) ((page + 1) * page_size))

let is_contiguous = function [] | [ _ ] -> true | _ -> false

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (lo, hi) -> Format.fprintf ppf "[%d,%d)" lo hi))
    t

(** Array sections: a regular section descriptor applied to a concrete
    shared array layout, translated to contiguous byte-address ranges.

    The augmented run-time interface (Figure 3 of the paper) takes sections
    as parameters; per Section 3.3, the implementation works on the
    translated contiguous address ranges, which is what {!ranges} yields. *)

type array_info = {
  name : string;
  base : int;  (** byte address of element (0,...,0) in the shared space *)
  elem_size : int;  (** bytes per element *)
  extents : int array;
      (** per-dimension sizes; Fortran layout: the {e first} dimension is
          contiguous in memory *)
}

type t = { arr : array_info; rsd : Rsd.t }

val make : array_info -> Rsd.t -> t

val whole : array_info -> t
(** The section covering the entire array, 0-based indices. *)

val addr_of_index : array_info -> int array -> int
(** Byte address of an element (0-based indices, column-major). *)

val size_bytes : t -> int

val ranges : t -> Range.t
(** Contiguous byte ranges covered by the section. Adjacent runs are
    merged, so a section covering whole consecutive columns becomes a single
    range. *)

val inter_ranges : t -> t -> Range.t
(** Byte ranges in the intersection of two sections ({!Range.inter} of their
    range translations); used by [Push] to compute what to send. *)

val diff_ranges : t -> t -> Range.t
(** Byte ranges covered by the first section but not the second; used by
    the static lint to report uncovered or excess data. *)

val union_ranges : t list -> Range.t
(** Byte ranges covered by any of the sections. *)

val is_contiguous : t -> bool

val pp : Format.formatter -> t -> unit
(** Paper notation: [name\[lo:hi, lo:hi\]]. *)

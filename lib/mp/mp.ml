module Cluster = Dsm_sim.Cluster
module Config = Dsm_sim.Config
module Engine = Dsm_sim.Engine
module Net = Dsm_net.Net

type msg = { arrival : float; payload : float array }

type system = {
  cluster : Cluster.t;
  net : Net.t;
      (* reliable transport over the (possibly faulty) modeled network;
         a fault-free plan is a bit-identical pass-through *)
  boxes : (int * int * int, msg Queue.t) Hashtbl.t;  (* (src, dst, tag) *)
  nprocs : int;
  lock : Mutex.t;
  mutable parallel : bool;
      (* true while running under the windowed engine: mailbox accesses
         (the only cross-shard interaction of an MP run) take [lock];
         false on the sequential/ordered engines — no locking at all *)
}

type t = { sys : system; p : int }

let make cfg =
  let cluster = Cluster.create cfg in
  {
    cluster;
    net = Net.create cluster;
    boxes = Hashtbl.create 256;
    nprocs = cfg.Config.nprocs;
    lock = Mutex.create ();
    parallel = false;
  }

let[@inline] locked sys f =
  if sys.parallel then Mutex.protect sys.lock f else f ()

(* Message passing is an isolated workload in the {!Engine.run_windowed}
   sense: a send charges the sender alone and appends to a per-(src,dst,
   tag) FIFO, a receive charges the receiver alone — so, under a
   pass-through network plan, shards may advance concurrently inside
   lookahead windows and the run stays bit-identical to the sequential
   engine. A faulty plan shares the fault-PRNG cursor and resequencing
   floors across processors (draw order matters), so it falls back to
   the ordered engine, which is deterministic for every workload. *)
let run sys main =
  let cfg = sys.cluster.Cluster.cfg in
  let domains = cfg.Config.domains in
  if domains > 1 && Net.passthrough sys.net then begin
    sys.parallel <- true;
    Fun.protect
      ~finally:(fun () -> sys.parallel <- false)
      (fun () ->
        Engine.run_windowed ~domains ~nprocs:sys.nprocs
          ~lookahead:(Float.max 1.0 cfg.Config.wire_latency_us)
          ~clock:(fun p -> Cluster.time sys.cluster p)
          (fun p -> main { sys; p }))
  end
  else Engine.run ~domains ~nprocs:sys.nprocs (fun p -> main { sys; p })
let pid t = t.p
let nprocs t = t.sys.nprocs
let charge t us = Cluster.charge t.sys.cluster t.p us
let time t = Cluster.time t.sys.cluster t.p

let box sys key =
  locked sys @@ fun () ->
  match Hashtbl.find_opt sys.boxes key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace sys.boxes key q;
      q

let send_floats t ~dst ~tag payload =
  let bytes = 8 * Array.length payload in
  let arrival = Net.send t.sys.net ~src:t.p ~dst ~bytes in
  let q = box t.sys (t.p, dst, tag) in
  locked t.sys (fun () ->
      Queue.push { arrival; payload = Array.copy payload } q)

let recv_floats t ~src ~tag =
  let q = box t.sys (src, t.p, tag) in
  Engine.block ~until:(fun () ->
      locked t.sys (fun () -> not (Queue.is_empty q)));
  let m = locked t.sys (fun () -> Queue.pop q) in
  Cluster.recv_charge t.sys.cluster ~dst:t.p ~arrival:m.arrival ~interrupt:false;
  m.payload

let sendrecv_floats t ~dst ~src ~tag payload =
  send_floats t ~dst ~tag payload;
  recv_floats t ~src ~tag

(* Binomial tree rooted at [root]: in round r, processors with relative rank
   < 2^r forward to rank + 2^r. *)
let bcast_floats t ~root ~tag payload =
  let n = nprocs t in
  let rel = (t.p - root + n) mod n in
  let data = ref (if t.p = root then Array.copy payload else [||]) in
  let round = ref 1 in
  while !round < n do
    if rel >= !round && rel < 2 * !round && rel - !round < n then begin
      let src = (rel - !round + root) mod n in
      data := recv_floats t ~src ~tag
    end
    else if rel < !round && rel + !round < n then begin
      let dst = (rel + !round + root) mod n in
      send_floats t ~dst ~tag !data
    end;
    round := !round * 2
  done;
  !data

let reduce t ~tag ~op payload =
  (* gather to processor 0 up a binomial tree *)
  let n = nprocs t in
  let acc = ref (Array.copy payload) in
  let round = ref 1 in
  while !round < n do
    if t.p mod (2 * !round) = 0 then begin
      if t.p + !round < n then begin
        let other = recv_floats t ~src:(t.p + !round) ~tag in
        acc := Array.map2 op !acc other
      end
    end
    else if t.p mod (2 * !round) = !round then begin
      send_floats t ~dst:(t.p - !round) ~tag !acc;
      round := n (* done participating *)
    end;
    round := !round * 2
  done;
  !acc

let allreduce_sum t ~tag payload =
  let r = reduce t ~tag ~op:( +. ) payload in
  bcast_floats t ~root:0 ~tag:(tag + 1) r

let allreduce_max t ~tag payload =
  let r = reduce t ~tag ~op:Float.max payload in
  bcast_floats t ~root:0 ~tag:(tag + 1) r

let barrier_tag = -1001

let barrier t =
  ignore (allreduce_sum t ~tag:barrier_tag [| 0.0 |])

let elapsed sys = Cluster.elapsed sys.cluster
let stats sys = sys.cluster.Cluster.stats
let total_stats sys = Dsm_sim.Stats.total (stats sys)

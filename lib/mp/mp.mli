(** PVM-like message passing on the simulated cluster: the substrate for the
    hand-coded ("PVMe") baselines of the paper's evaluation.

    As in the paper's measurements, the message-passing programs run with
    interrupts disabled (Section 5, footnote 1): receives poll, so no
    interrupt cost is charged at the receiver. *)

type system
type t
(** Per-processor handle. *)

val make : Dsm_sim.Config.t -> system

val run : system -> (t -> unit) -> unit
(** Run one fiber per processor to completion. With [cfg.domains > 1]
    and a pass-through network plan, runs on the windowed conservative
    engine ({!Dsm_sim.Engine.run_windowed}) — message passing satisfies
    its isolation contract, so shards advance concurrently with
    bit-identical results; faulty plans fall back to the ordered
    engine. *)

val pid : t -> int
val nprocs : t -> int

val charge : t -> float -> unit
(** Account microseconds of local computation. *)

val time : t -> float
(** Current virtual clock of the calling processor, us — for workloads
    that timestamp individual operations (the KV cache's latency
    percentiles). *)

val send_floats : t -> dst:int -> tag:int -> float array -> unit
(** Asynchronous typed send (the payload is copied). *)

val recv_floats : t -> src:int -> tag:int -> float array
(** Blocking receive, matching on sender and tag. *)

val sendrecv_floats :
  t -> dst:int -> src:int -> tag:int -> float array -> float array
(** Send to [dst] and receive from [src] with the same tag — the classic
    boundary-exchange idiom. *)

val bcast_floats : t -> root:int -> tag:int -> float array -> float array
(** Binomial-tree broadcast; every processor (including the root) returns
    the payload. *)

val allreduce_sum : t -> tag:int -> float array -> float array
(** Element-wise sum across processors (reduce-to-0 + broadcast). *)

val allreduce_max : t -> tag:int -> float array -> float array

val barrier : t -> unit
(** Flat message-passing barrier (gather to 0 + broadcast), for the rare MP
    phases that need one. *)

val elapsed : system -> float
val stats : system -> Dsm_sim.Stats.t array
val total_stats : system -> Dsm_sim.Stats.t

type entry = {
  e_name : string;
  e_wall_ms : float;
  e_alloc_mwords : float;
  e_top_heap_words : int;
  e_digest : string;
}

type t = {
  pr : int;
  label : string;
  quick : bool;
  mutable entries : entry list;  (* reverse order of measurement *)
  mutable prof_invariant : bool option;
  mutable profile : string option;  (* Dsm_prof.Prof.to_json of a profiled run *)
}

let create ~pr ~label ~quick =
  { pr; label; quick; entries = []; prof_invariant = None; profile = None }

let measure t ~name f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  f ppf;
  Format.pp_print_flush ppf ();
  let t1 = Unix.gettimeofday () in
  let g1 = Gc.quick_stat () in
  let out = Buffer.contents buf in
  let alloc =
    g1.Gc.minor_words -. g0.Gc.minor_words
    +. (g1.Gc.major_words -. g0.Gc.major_words)
    -. (g1.Gc.promoted_words -. g0.Gc.promoted_words)
  in
  t.entries <-
    {
      e_name = name;
      e_wall_ms = (t1 -. t0) *. 1000.0;
      e_alloc_mwords = alloc /. 1e6;
      e_top_heap_words = g1.Gc.top_heap_words;
      e_digest = Digest.to_hex (Digest.string out);
    }
    :: t.entries;
  out

let set_prof_invariant t ok = t.prof_invariant <- Some ok
let set_profile t json = t.profile <- Some json
let entries t = List.rev t.entries

(* Best-of-N: keep each experiment's fastest measurement. Wall-clock on a
   busy host is min-stable (noise only ever adds time); digests must not
   disagree between repeats — that would mean nondeterministic simulated
   output, which the comparison gate reports via the surviving entry. *)
let min_merge a b =
  let pick (ea : entry) =
    match List.find_opt (fun e -> e.e_name = ea.e_name) b.entries with
    | Some eb when eb.e_wall_ms < ea.e_wall_ms -> eb
    | _ -> ea
  in
  {
    a with
    entries = List.map pick a.entries;
    profile = (match a.profile with Some _ as p -> p | None -> b.profile);
    prof_invariant =
      (match (a.prof_invariant, b.prof_invariant) with
      | Some x, Some y -> Some (x && y)
      | x, None | None, x -> x);
  }

let total_wall_ms t =
  List.fold_left (fun a e -> a +. e.e_wall_ms) 0.0 t.entries

(* One experiment object per line: {!load} parses line-wise with [Scanf],
   which keeps the reader free of any JSON library dependency. *)
let entry_to_json e =
  Printf.sprintf
    {|    { "name": %S, "wall_ms": %.3f, "alloc_mwords": %.3f, "top_heap_words": %d, "digest": %S }|}
    e.e_name e.e_wall_ms e.e_alloc_mwords e.e_top_heap_words e.e_digest

let to_json t =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": 1,\n");
  Buffer.add_string b (Printf.sprintf "  \"pr\": %d,\n" t.pr);
  Buffer.add_string b (Printf.sprintf "  \"label\": %S,\n" t.label);
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" t.quick);
  (match t.prof_invariant with
  | Some ok -> Buffer.add_string b (Printf.sprintf "  \"prof_invariant\": %b,\n" ok)
  | None -> ());
  (match t.profile with
  | Some json -> Buffer.add_string b (Printf.sprintf "  \"profile\": %s,\n" json)
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "  \"total_wall_ms\": %.3f,\n" (total_wall_ms t));
  Buffer.add_string b "  \"experiments\": [\n";
  let es = entries t in
  List.iteri
    (fun i e ->
      Buffer.add_string b (entry_to_json e);
      if i < List.length es - 1 then Buffer.add_char b ',';
      Buffer.add_char b '\n')
    es;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write t ~path =
  let oc = open_out path in
  output_string oc (to_json t);
  close_out oc

let load ~path =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       match
         Scanf.sscanf line
           " { \"name\": %S, \"wall_ms\": %f, \"alloc_mwords\": %f, \"top_heap_words\": %d, \"digest\": %S"
           (fun n w a h d ->
             {
               e_name = n;
               e_wall_ms = w;
               e_alloc_mwords = a;
               e_top_heap_words = h;
               e_digest = d;
             })
       with
       | e -> entries := e :: !entries
       | exception Scanf.Scan_failure _ | exception End_of_file -> ()
     done
   with End_of_file -> ());
  close_in ic;
  if !entries = [] then failwith (path ^ ": no benchmark entries found");
  List.rev !entries

let compare_against ppf ~baseline ~current ~tolerance =
  let ok = ref true in
  let matched = ref 0 in
  let base_total = ref 0.0 and cur_total = ref 0.0 in
  Format.fprintf ppf "regression gate (tolerance %+.0f%%):@."
    (tolerance *. 100.0);
  Format.fprintf ppf "  %-12s %10s %10s %8s  %s@." "experiment" "base(ms)"
    "now(ms)" "ratio" "digest";
  List.iter
    (fun (c : entry) ->
      match List.find_opt (fun b -> b.e_name = c.e_name) baseline with
      | None -> ()
      | Some b ->
          incr matched;
          base_total := !base_total +. b.e_wall_ms;
          cur_total := !cur_total +. c.e_wall_ms;
          let ratio = if b.e_wall_ms > 0.0 then c.e_wall_ms /. b.e_wall_ms else 1.0 in
          let same = b.e_digest = c.e_digest in
          let slow = c.e_wall_ms > b.e_wall_ms *. (1.0 +. tolerance) in
          if not same then ok := false;
          (* per-experiment slowdowns are reported but do not gate: short
             experiments are dominated by host noise — only the digest and
             the suite total decide pass/fail *)
          Format.fprintf ppf "  %-12s %10.1f %10.1f %7.2fx  %s%s@." c.e_name
            b.e_wall_ms c.e_wall_ms ratio
            (if same then "same" else "DIFFERENT OUTPUT")
            (if slow then "  slow (not gating)" else ""))
    (entries current);
  if !matched = 0 then begin
    Format.fprintf ppf "  no common experiments with the baseline@.";
    ok := false
  end
  else begin
    let ratio =
      if !base_total > 0.0 then !cur_total /. !base_total else 1.0
    in
    if !cur_total > !base_total *. (1.0 +. tolerance) then ok := false;
    Format.fprintf ppf "  %-12s %10.1f %10.1f %7.2fx@." "total" !base_total
      !cur_total ratio
  end;
  Format.fprintf ppf "  => %s@." (if !ok then "PASS" else "FAIL");
  !ok

(** Shared command-line vocabulary of the [dsm_run] and [dsm_lint]
    executables: one source of truth for application and
    optimization-level names, processor-count parsing, coherence
    backend selection and the network fault-injection arguments. *)

(** {1 Applications and levels} *)

val apps : (string * (module Dsm_apps.Workload.S)) list
(** The workload registry ({!Dsm_apps.Registry.all}), keyed by CLI
    names: the six paper kernels plus the [kv] session cache. *)

val find_app : string -> (module Dsm_apps.Workload.S) option
val app_names : string list

val levels : (string * Dsm_apps.App_common.opt_level) list
(** Optimization levels in increasing order, keyed by their CLI names
    (base, aggr, cons, merge, push). *)

val find_level : string -> Dsm_apps.App_common.opt_level option
val level_names : string list

(** {1 List parsing} *)

val parse_name_list :
  known:string list -> what:string -> string -> (string list, string) result
(** [parse_name_list ~known ~what s] parses a comma-separated subset of
    [known]; ["all"] means all of them. [what] names the domain in the
    error message. *)

val parse_procs : string -> (int list, string) result
(** Comma-separated positive processor counts. *)

(** {1 Shared terms} *)

type t = {
  backend : Dsm_sim.Config.backend_kind;
  home_policy : Dsm_sim.Config.home_policy;
  net_drop : float;
  net_dup : float;
  net_jitter_us : float;
  net_seed : int;
  replicas : int;
  ckpt_every : int;
  crash : (int * float * float) list;
  domains : int;
}
(** Arguments common to every executable that builds a
    {!Dsm_sim.Config.t}. *)

val term : t Cmdliner.Term.t
(** [--backend/-b], [--home-policy], [--drop], [--dup], [--jitter],
    [--net-seed], [--replicas], [--ckpt-every], [--crash] and
    [--domains]. *)

val config : ?procs:int -> t -> (Dsm_sim.Config.t, string) result
(** Specialize {!Dsm_sim.Config.default} with the parsed arguments and
    validate the resulting network fault plan and crash schedule (both
    error paths share the {!Dsm_net.Plan.field_error} message format). *)

val plan_conv : Dsm_tmk.Proto_plan.t Cmdliner.Arg.conv
(** Loads and validates a protocol-placement plan file at parse time;
    schema violations surface as usage errors in
    {!Dsm_net.Plan.field_error}'s field/value/range format. *)

val plan_t : Dsm_tmk.Proto_plan.t option Cmdliner.Term.t
(** [--plan FILE] for [dsm_run]: seed the adaptive/hlrc backend from a
    static protocol-placement plan. *)

(** {1 Per-executable terms with shared help text} *)

val app_t : string Cmdliner.Term.t
(** [--app/-a], defaulting to [jacobi]. *)

val knobs_t : (string * string) list Cmdliner.Term.t
(** Workload behavior knobs ([--mix], [--skew], [--sessions],
    [--granularity], [--keys], [--shards]) collected as key/value pairs
    and applied through {!Dsm_apps.Workload.S.with_knob}; a knob the
    selected workload does not understand (or a value out of range) is
    rejected with the standard field/value/range message. *)

val procs_t : int Cmdliner.Term.t
(** [--procs/-p] as a single count, defaulting to 8. *)

val procs_list_t : string Cmdliner.Term.t
(** [--procs/-p] as a comma-separated list, defaulting to [1,2,4,8]. *)

val level_t : default:string -> string Cmdliner.Term.t
(** [--level/-l] with the given default ([all] allowed for list-valued
    consumers). *)

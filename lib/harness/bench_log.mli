(** Machine-readable benchmark trajectory.

    Records, for each experiment of a bench run, the host wall-clock time,
    the words allocated, the process-wide peak heap, and an MD5 digest of
    the experiment's formatted output. The digest is the {e simulated-time
    invariance check}: every number an experiment prints is virtual, so two
    builds that disagree on any digest differ in simulated results — a
    correctness bug, not a performance delta.

    A run serializes to [BENCH_<n>.json] (one experiment object per line,
    parseable by {!load}); committing one file per PR gives the repository
    a performance trajectory that tools — and the CI regression gate — can
    diff without scraping logs. *)

type entry = {
  e_name : string;
  e_wall_ms : float;  (** host wall-clock for the experiment *)
  e_alloc_mwords : float;  (** minor+major words allocated, in millions *)
  e_top_heap_words : int;  (** process-wide peak heap after the run *)
  e_digest : string;  (** MD5 (hex) of the experiment's formatted output *)
}

type t

val create : pr:int -> label:string -> quick:bool -> t

val measure : t -> name:string -> (Format.formatter -> unit) -> string
(** [measure t ~name f] runs [f] against a buffer formatter, appends an
    {!entry} for it, and returns the captured output. *)

val set_prof_invariant : t -> bool -> unit
(** Result of the profiling on/off invariance check: whether enabling
    {!Dsm_prof.Prof} left an experiment's output digest unchanged. *)

val set_profile : t -> string -> unit
(** Attach a {!Dsm_prof.Prof.to_json} per-subsystem profile of a
    representative profiled run; embedded under ["profile"]. *)

val entries : t -> entry list

val min_merge : t -> t -> t
(** Best-of-N de-noising: per experiment (matched by name), keep the faster
    of the two measurements. Wall-clock noise on a shared host only ever
    adds time, so the minimum is the stable statistic. *)

val total_wall_ms : t -> float
val to_json : t -> string
val write : t -> path:string -> unit

val load : path:string -> entry list
(** Parse the experiment entries back from a file {!write} produced (the
    regression gate compares a fresh run against a committed trajectory).
    Raises [Failure] if the file contains no parseable entries. *)

val compare_against :
  Format.formatter -> baseline:entry list -> current:t -> tolerance:float -> bool
(** Compare a fresh run against a loaded baseline, experiment by experiment
    (intersection by name): fails on any output-digest mismatch and when
    the shared total is slower than [baseline * (1 + tolerance)].
    Per-experiment slowdowns are reported but do not gate — short
    experiments are dominated by host noise. Prints a table; returns
    [true] when the run passes. *)

(* Per-phase trace summaries.

   A traced run decomposes into phases delimited by barrier departures:
   phase [k] covers, for each processor, the events between its [k]'th and
   [k+1]'th departures (phase 0 starts at program start). Attribution is
   per-processor — the simulator interleaves processors inside one global
   event order, so a fixed global split would misfile events of processors
   that have not crossed the barrier yet. *)

type phase = {
  epoch : int;
  events : int;
  end_time : float;  (* max virtual time of any event in the phase *)
  faults : int;
  twins : int;
  diffs_created : int;
  diffs_applied : int;
  diff_bytes : int;  (* bytes of diff data applied *)
  notices : int;  (* write notices applied *)
  invalidations : int;
  lock_acquires : int;
  validates : int;
  push_msgs : int;
  push_bytes : int;
  broadcasts : int;
}

let empty epoch =
  {
    epoch;
    events = 0;
    end_time = 0.0;
    faults = 0;
    twins = 0;
    diffs_created = 0;
    diffs_applied = 0;
    diff_bytes = 0;
    notices = 0;
    invalidations = 0;
    lock_acquires = 0;
    validates = 0;
    push_msgs = 0;
    push_bytes = 0;
    broadcasts = 0;
  }

let of_events events =
  let module E = Dsm_trace.Event in
  let phases : (int, phase ref) Hashtbl.t = Hashtbl.create 16 in
  let depart_count : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let phase_of epoch =
    match Hashtbl.find_opt phases epoch with
    | Some r -> r
    | None ->
        let r = ref (empty epoch) in
        Hashtbl.replace phases epoch r;
        r
  in
  List.iter
    (fun (e : E.t) ->
      let k = Option.value ~default:0 (Hashtbl.find_opt depart_count e.proc) in
      let r = phase_of k in
      let ph = !r in
      let ph = { ph with events = ph.events + 1 } in
      let ph =
        if e.time > ph.end_time then { ph with end_time = e.time } else ph
      in
      let ph =
        match e.kind with
        | E.Page_fault _ -> { ph with faults = ph.faults + 1 }
        | E.Twin _ -> { ph with twins = ph.twins + 1 }
        | E.Diff_create _ -> { ph with diffs_created = ph.diffs_created + 1 }
        | E.Diff_apply { bytes; _ } ->
            {
              ph with
              diffs_applied = ph.diffs_applied + 1;
              diff_bytes = ph.diff_bytes + bytes;
            }
        | E.Notice_apply { invalidated; _ } ->
            {
              ph with
              notices = ph.notices + 1;
              invalidations = (ph.invalidations + if invalidated then 1 else 0);
            }
        | E.Lock_grant _ -> { ph with lock_acquires = ph.lock_acquires + 1 }
        | E.Validate _ -> { ph with validates = ph.validates + 1 }
        | E.Push_send { bytes; _ } ->
            {
              ph with
              push_msgs = ph.push_msgs + 1;
              push_bytes = ph.push_bytes + bytes;
            }
        | E.Broadcast _ -> { ph with broadcasts = ph.broadcasts + 1 }
        | E.Home_flush { bytes; _ } ->
            (* HLRC traffic files under the diff columns: a flush is a diff
               application at the home, a fetch a (full-page) diff receipt *)
            {
              ph with
              diffs_applied = ph.diffs_applied + 1;
              diff_bytes = ph.diff_bytes + bytes;
            }
        | E.Home_fetch { bytes; _ } ->
            { ph with diff_bytes = ph.diff_bytes + bytes }
        | E.Inval_ack _ ->
            (* a dropped copy under the single-writer protocol files under
               the same column as LRC notice invalidations *)
            { ph with invalidations = ph.invalidations + 1 }
        | E.Diff_fetch _ | E.Fetch_done _ | E.Notice_send _
        | E.Barrier_arrive _ | E.Barrier_depart _ | E.Lock_request _
        | E.Push_recv _ | E.Push_rollback _ | E.Msg_drop _ | E.Msg_dup _
        | E.Retransmit _ | E.Timeout_fire _ | E.Ack _ | E.Inval_send _
        | E.Downgrade _ | E.Proto_switch _ | E.Plan_applied _
        | E.Obj_region _ | E.Obj_skip _ | E.Crash _
        | E.Restart _
        | E.Suspect _ | E.Quorum_write _ | E.Quorum_read _ | E.Ckpt _ ->
            ph
      in
      r := ph;
      match e.kind with
      | E.Barrier_depart _ -> Hashtbl.replace depart_count e.proc (k + 1)
      | _ -> ())
    events;
  Hashtbl.fold (fun _ r acc -> !r :: acc) phases []
  |> List.sort (fun a b -> compare a.epoch b.epoch)

let pp ppf phases =
  Format.fprintf ppf
    "@[<v>%6s %8s %10s %7s %6s %7s %7s %9s %8s %6s %6s %6s@,"
    "phase" "events" "end(us)" "faults" "twins" "diff_c" "diff_a" "bytes"
    "notices" "locks" "valid" "push";
  List.iter
    (fun p ->
      Format.fprintf ppf
        "%6d %8d %10.0f %7d %6d %7d %7d %9d %8d %6d %6d %6d@," p.epoch
        p.events p.end_time p.faults p.twins p.diffs_created p.diffs_applied
        p.diff_bytes p.notices p.lock_acquires p.validates p.push_msgs)
    phases;
  Format.fprintf ppf "@]"

(* Shared command-line vocabulary of the dsm_run and dsm_lint
   executables. Both drive the same simulated cluster, so the argument
   names, their parsing and their help text live here once: application
   and optimization-level names, processor counts, the coherence
   backend with its home-assignment policy, and the network fault
   injection knobs. Executable-specific arguments (dsm_run's
   --version/--size/--trace, dsm_lint's --program/--mode) stay with
   their executables. *)

open Cmdliner
module Config = Dsm_sim.Config
module A = Dsm_apps.App_common
module Workload = Dsm_apps.Workload

(* {1 Applications and levels}

   The workload table lives in {!Dsm_apps.Registry}; both executables
   and the bench consume it through these aliases. *)

let apps : (string * (module Workload.S)) list = Dsm_apps.Registry.all
let find_app = Dsm_apps.Registry.find
let app_names = Dsm_apps.Registry.names

let levels : (string * A.opt_level) list =
  [
    ("base", A.Base);
    ("aggr", A.Comm_aggr);
    ("cons", A.Cons_elim);
    ("merge", A.Sync_merge);
    ("push", A.Push_opt);
  ]

let find_level name = List.assoc_opt name levels
let level_names = List.map fst levels

(* {1 List parsing} *)

let parse_name_list ~known ~what s =
  if s = "all" then Ok known
  else
    let names = String.split_on_char ',' (String.trim s) in
    let bad = List.filter (fun n -> not (List.mem n known)) names in
    if bad <> [] then
      Error
        (Printf.sprintf "unknown %s: %s (known: %s)" what
           (String.concat ", " bad)
           (String.concat ", " known))
    else Ok names

let parse_procs s =
  try
    let ps =
      List.map
        (fun x -> int_of_string (String.trim x))
        (String.split_on_char ',' s)
    in
    if ps = [] || List.exists (fun p -> p < 1) ps then
      Error "processor counts must be positive"
    else Ok ps
  with Failure _ -> Error ("cannot parse processor list: " ^ s)

(* {1 Shared terms} *)

type t = {
  backend : Config.backend_kind;
  home_policy : Config.home_policy;
  net_drop : float;
  net_dup : float;
  net_jitter_us : float;
  net_seed : int;
  replicas : int;
  ckpt_every : int;
  crash : (int * float * float) list;
  domains : int;
}

(* Both enum flags parse through {!Config.normalize_enum} (so
   [first_touch] and [first-touch] both work) and list the valid choices
   verbatim in their error message. *)
let enum_conv ~what ~choices ~of_string ~to_string =
  let parse s =
    match of_string s with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown %s: %s (choices: %s)" what s
                (String.concat ", " choices)))
  in
  let print fmt v = Format.pp_print_string fmt (to_string v) in
  Arg.conv (parse, print)

let backend_conv =
  enum_conv ~what:"backend" ~choices:Config.backend_choices
    ~of_string:Config.backend_of_string ~to_string:Config.backend_name

let home_policy_conv =
  enum_conv ~what:"home policy" ~choices:Config.home_policy_choices
    ~of_string:Config.home_policy_of_string
    ~to_string:Config.home_policy_name

let term =
  let backend =
    Arg.(
      value
      & opt backend_conv Config.default.Config.backend
      & info [ "backend"; "b" ] ~docv:"NAME"
          ~doc:
            "Coherence backend: $(b,lrc) (homeless lazy release \
             consistency with distributed diffs, the paper's protocol), \
             $(b,hlrc) (home-based: releasers flush diffs to each page's \
             home eagerly, faults fetch one full copy from the home), \
             $(b,inval) (sequentially consistent directory-based \
             single-writer invalidate) or $(b,adaptive) (per-page online \
             switching between the three by observed sharing pattern).")
  in
  let home_policy =
    Arg.(
      value
      & opt home_policy_conv Config.default.Config.home_policy
      & info [ "home-policy" ] ~docv:"NAME"
          ~doc:
            "Static page-to-home assignment for the hlrc backend: \
             $(b,block), $(b,cyclic) or $(b,first-touch).")
  in
  let drop =
    Arg.(
      value & opt float 0.0
      & info [ "drop" ] ~docv:"RATE"
          ~doc:
            "Probability in [0,1] that a transmitted message copy is lost \
             (recovered by timeout and retransmission).")
  in
  let dup =
    Arg.(
      value & opt float 0.0
      & info [ "dup" ] ~docv:"RATE"
          ~doc:
            "Probability in [0,1] that a delivered message is duplicated \
             (the duplicate is suppressed at the receiver).")
  in
  let jitter =
    Arg.(
      value & opt float 0.0
      & info [ "jitter" ] ~docv:"US"
          ~doc:
            "Maximum extra delivery delay, drawn uniformly per message, in \
             microseconds of virtual time.")
  in
  let net_seed =
    Arg.(
      value & opt int 0
      & info [ "net-seed" ] ~docv:"N"
          ~doc:
            "Seed of the deterministic fault-injection PRNG: the same \
             configuration and seed replay the same faulty run exactly.")
  in
  let replicas =
    Arg.(
      value & opt int 1
      & info [ "replicas" ] ~docv:"K"
          ~doc:
            "Fault tolerance (hlrc backend): replicate every page's home \
             over $(docv) consecutive processors; release-time flushes \
             become quorum writes and misses quorum reads. $(b,1) (the \
             default) is the plain single-home protocol.")
  in
  let ckpt_every =
    Arg.(
      value & opt int 0
      & info [ "ckpt-every" ] ~docv:"N"
          ~doc:
            "Fault tolerance: checkpoint each processor's vector clock and \
             per-page watermarks every $(docv) barrier epochs ($(b,0): only \
             the implicit initial checkpoint).")
  in
  let crash_conv =
    let parse s =
      match Dsm_ft.Schedule.parse s with
      | Ok c -> Ok c
      | Error e -> Error (`Msg e)
    in
    let print fmt c =
      Format.pp_print_string fmt
        (String.concat ","
           (List.map
              (fun (p, at, down) -> Printf.sprintf "%d@%g+%g" p at down)
              c))
    in
    Arg.conv (parse, print)
  in
  let crash =
    Arg.(
      value & opt crash_conv []
      & info [ "crash" ] ~docv:"SCHED"
          ~doc:
            "Deterministic crash schedule $(b,P\\@T+D[,P\\@T+D...]): \
             processor $(b,P) fail-stops at its first barrier arrival at or \
             after virtual time $(b,T) us and rejoins from its last \
             checkpoint after $(b,D) us of downtime. Requires the hlrc \
             backend with $(b,--replicas) >= 3.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Shard the simulated processors across $(docv) host OCaml \
             domains (clamped to the processor count). Results are \
             bit-identical to $(b,1) (the default, the sequential \
             scheduler): this is a host-execution knob and never changes \
             simulated clocks, statistics or memory contents.")
  in
  let make backend home_policy net_drop net_dup net_jitter_us net_seed
      replicas ckpt_every crash domains =
    {
      backend;
      home_policy;
      net_drop;
      net_dup;
      net_jitter_us;
      net_seed;
      replicas;
      ckpt_every;
      crash;
      domains;
    }
  in
  Term.(
    const make $ backend $ home_policy $ drop $ dup $ jitter $ net_seed
    $ replicas $ ckpt_every $ crash $ domains)

let config ?procs c =
  let cfg =
    {
      Config.default with
      Config.nprocs =
        (match procs with
        | Some p -> p
        | None -> Config.default.Config.nprocs);
      backend = c.backend;
      home_policy = c.home_policy;
      net_drop = c.net_drop;
      net_dup = c.net_dup;
      net_jitter_us = c.net_jitter_us;
      net_seed = c.net_seed;
      replicas = c.replicas;
      ckpt_every = c.ckpt_every;
      crash = c.crash;
      domains = c.domains;
    }
  in
  if c.domains < 1 then Error "domains must be positive"
  else
  match Dsm_net.Plan.validate (Dsm_net.Plan.of_config cfg) with
  | Error e -> Error ("invalid fault parameters: " ^ e)
  | Ok _ -> (
      match Dsm_ft.Schedule.of_config cfg with
      | Error e -> Error ("invalid fault parameters: " ^ e)
      | Ok _ -> Ok cfg)

(* Protocol-placement plan files parse (and validate) at argument-parse
   time, so a malformed plan is a usage error naming the file and the
   offending field in {!Dsm_net.Plan.field_error}'s field/value/range
   format — the same shape as the fault-plan and crash-schedule
   errors. *)
let plan_conv =
  let parse file =
    match Dsm_tmk.Proto_plan.load file with
    | Ok plan -> Ok plan
    | Error e -> Error (`Msg (Printf.sprintf "plan file %s: %s" file e))
  in
  let print fmt (p : Dsm_tmk.Proto_plan.t) =
    Format.fprintf fmt "<plan %s/%d>" p.Dsm_tmk.Proto_plan.program
      p.Dsm_tmk.Proto_plan.nprocs
  in
  Arg.conv (parse, print)

let plan_t =
  Arg.(
    value
    & opt (some plan_conv) None
    & info [ "plan" ] ~docv:"FILE"
        ~doc:
          "Protocol-placement plan ($(b,dsm_lint plan) output) seeding \
           the adaptive backend's initial per-page protocol and the \
           HLRC home map.")

(* {1 Per-executable terms with shared help text} *)

let app_t =
  Arg.(
    value & opt string "jacobi"
    & info [ "app"; "a" ] ~docv:"NAME"
        ~doc:("Application: " ^ String.concat ", " app_names ^ "."))

(* Behavior knobs travel as (key, value) strings and are interpreted by
   the selected workload's {!Workload.S.with_knob}, so adding a knob to
   one workload does not grow this list of flags' parsing logic — only
   its help text. Unknown/out-of-range values surface as usage errors in
   the standard field/value/range format. *)
let knobs_t =
  let knob key docv doc =
    Arg.(value & opt (some string) None & info [ key ] ~docv ~doc)
  in
  let mix =
    knob "mix" "NAME"
      "Workload knob (kv): operation mix, one of read90, read50, write90."
  in
  let skew =
    knob "skew" "THETA"
      "Workload knob (kv): Zipfian hot-key skew exponent in [0,2] (0 = \
       uniform, 0.99 = classic YCSB skew)."
  in
  let sessions =
    knob "sessions" "N"
      "Workload knob (kv): number of simulated client sessions (operations) \
       across all processors."
  in
  let granularity =
    knob "granularity" "NAME"
      "Workload knob (kv): shared-store allocation granularity, $(b,page) \
       or $(b,object)."
  in
  let keys =
    knob "keys" "N" "Workload knob (kv): size of the key space."
  in
  let shards =
    knob "shards" "N"
      "Workload knob (kv): lock-protected shards per processor."
  in
  let make mix skew sessions granularity keys shards =
    List.filter_map
      (fun (k, v) -> Option.map (fun v -> (k, v)) v)
      [
        ("mix", mix);
        ("skew", skew);
        ("sessions", sessions);
        ("granularity", granularity);
        ("keys", keys);
        ("shards", shards);
      ]
  in
  Term.(const make $ mix $ skew $ sessions $ granularity $ keys $ shards)

let procs_t =
  Arg.(value & opt int 8 & info [ "procs"; "p" ] ~doc:"Processor count.")

let procs_list_t =
  Arg.(
    value & opt string "1,2,4,8"
    & info [ "procs"; "p" ] ~docv:"LIST"
        ~doc:"Comma-separated processor counts.")

let level_t ~default =
  let doc =
    "Optimization level"
    ^ (if default = "all" then "s" else "")
    ^ ": "
    ^ String.concat ", " level_names
    ^ if default = "all" then ", or all." else "."
  in
  Arg.(value & opt string default & info [ "level"; "l" ] ~doc)

(** Uniform driver over the six applications and two data sets: builds the
    runnable matrix for the evaluation section's tables and figures, caching
    each (application, size, variant) run so that experiments sharing runs
    (Table 2, Figures 5-7) execute each configuration once. *)

type variant =
  | Tmk_base
  | Tmk_level of Dsm_apps.App_common.opt_level * bool  (** level, async *)
  | Pvm
  | Xhpf

val variant_name : variant -> string

type sized_app = {
  app_name : string;
  size_label : string;  (** "large" or "small" *)
  size_name : string;  (** e.g. "1024x1024" *)
  seq_time_us : float;
  levels : Dsm_apps.App_common.opt_level list;
  has_xhpf : bool;
  run : variant -> Dsm_apps.App_common.result option;
      (** memoized; [None] for inapplicable variants (e.g. XHPF for IS) *)
}

val speedup : sized_app -> Dsm_apps.App_common.result -> float

val best_opt : sized_app -> Dsm_apps.App_common.result
(** The compiler-optimized version with the best applicable level under
    asynchronous fetching — the paper's "Opt-Tmk" (most sophisticated
    analysis, best run-time support; Section 6.3 found asynchronous fetching
    dominant). *)

val best_level : sized_app -> Dsm_apps.App_common.opt_level
(** The level {!best_opt} selected. *)

val best_opt_sync : sized_app -> Dsm_apps.App_common.result
(** The best level under {e synchronous} fetching: used for Table 2, whose
    point is the elimination of the fault-based mechanisms (asynchronous
    fetching deliberately completes in the fault handler, Section 3.2.3). *)

val base : sized_app -> Dsm_apps.App_common.result

val of_app : (module Dsm_apps.Workload.S) -> Dsm_sim.Config.t -> sized_app list
(** The large and small rows of one workload (those of its {!Workload.S.sizes}
    that exist), run with its default behavior. *)

val all : Dsm_sim.Config.t -> sized_app list
(** The twelve rows of Table 1 — the six kernels from
    {!Dsm_apps.Registry.kernels} at both sizes, in the paper's order. *)

val check : sized_app -> Dsm_apps.App_common.result -> unit
(** Fail loudly if a run produced wrong results. *)

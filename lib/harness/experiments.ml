open Dsm_apps.App_common
module A = Dsm_apps.App_common
module Stats = Dsm_sim.Stats

(* Experiments that size their own data sets (custom [params] literals)
   pack the kernels at their concrete face; everything behavior-knobbed
   goes through {!Dsm_apps.Workload.S}. *)
module type KERNEL = Dsm_apps.Workload.KERNEL

let rule ppf n = Format.fprintf ppf "%s@." (String.make n '-')

let table1 ppf apps =
  Format.fprintf ppf "@.Table 1: applications, data set sizes, and uniprocessor execution times@.";
  rule ppf 64;
  Format.fprintf ppf "%-12s %-12s %14s@." "Application" "Data set" "Time (s)";
  rule ppf 64;
  List.iter
    (fun (sa : Runset.sized_app) ->
      Format.fprintf ppf "%-12s %-12s %14.1f@."
        (sa.Runset.app_name ^ " - " ^ sa.Runset.size_label)
        sa.Runset.size_name
        (sa.Runset.seq_time_us /. 1e6))
    apps;
  rule ppf 64

let pct_reduction base opt =
  100.0 *. (float_of_int base -. float_of_int opt) /. float_of_int (max 1 base)

let table2 ppf apps =
  Format.fprintf ppf
    "@.Table 2: percentage reduction in page faults (segv), messages and data@.";
  Format.fprintf ppf "(compiler-optimized TreadMarks vs base TreadMarks)@.";
  rule ppf 64;
  Format.fprintf ppf "%-22s %8s %8s %8s@." "Application" "% segv" "% msg" "% data";
  rule ppf 64;
  List.iter
    (fun (sa : Runset.sized_app) ->
      let b = Runset.base sa
      and o = Runset.best_opt_sync sa in
      Format.fprintf ppf "%-22s %8.1f %8.1f %8.1f@."
        (sa.Runset.app_name ^ " - " ^ sa.Runset.size_name)
        (pct_reduction b.stats.Stats.segv o.stats.Stats.segv)
        (pct_reduction b.stats.Stats.messages o.stats.Stats.messages)
        (pct_reduction b.stats.Stats.bytes o.stats.Stats.bytes))
    apps;
  rule ppf 64

let pp_speedup ppf = function
  | Some s -> Format.fprintf ppf "%8.2f" s
  | None -> Format.fprintf ppf "%8s" "-"

let figure5 ppf apps =
  Format.fprintf ppf
    "@.Figure 5: speedups on 8 processors (Tmk, Opt-Tmk, XHPF, PVMe)@.";
  rule ppf 70;
  Format.fprintf ppf "%-22s %8s %8s %8s %8s@." "Application" "Tmk" "Opt-Tmk"
    "XHPF" "PVMe";
  rule ppf 70;
  List.iter
    (fun (sa : Runset.sized_app) ->
      let sp r = Runset.speedup sa r in
      Format.fprintf ppf "%-22s %8.2f %8.2f %a %8.2f@."
        (sa.Runset.app_name ^ " - " ^ sa.Runset.size_name)
        (sp (Runset.base sa))
        (sp (Runset.best_opt sa))
        pp_speedup
        (Option.map sp (sa.Runset.run Runset.Xhpf))
        (sp (Option.get (sa.Runset.run Runset.Pvm))))
    apps;
  rule ppf 70

let figure6 ppf apps =
  Format.fprintf ppf
    "@.Figure 6: speedups under cumulative optimization levels@.";
  Format.fprintf ppf
    "(Base / +Comm.Aggr / +Cons.Elim / +Sync+Data merge / +Push; '-' = not applicable)@.";
  rule ppf 100;
  Format.fprintf ppf "%-22s %8s %8s %8s %8s %8s %8s %8s@." "Application" "Base"
    "C.Aggr" "C.Elim" "S+D" "Push" "XHPF" "PVMe";
  rule ppf 100;
  List.iter
    (fun (sa : Runset.sized_app) ->
      let level l =
        Option.map (Runset.speedup sa) (sa.Runset.run (Runset.Tmk_level (l, true)))
      in
      Format.fprintf ppf "%-22s %8.2f %a %a %a %a %a %8.2f@."
        (sa.Runset.app_name ^ " - " ^ sa.Runset.size_name)
        (Runset.speedup sa (Runset.base sa))
        pp_speedup (level Comm_aggr) pp_speedup (level Cons_elim) pp_speedup
        (level Sync_merge) pp_speedup (level Push_opt) pp_speedup
        (Option.map (Runset.speedup sa) (sa.Runset.run Runset.Xhpf))
        (Runset.speedup sa (Option.get (sa.Runset.run Runset.Pvm))))
    apps;
  rule ppf 100

let figure7 ppf apps =
  Format.fprintf ppf
    "@.Figure 7: synchronous vs asynchronous data fetching (large data sets)@.";
  rule ppf 58;
  Format.fprintf ppf "%-22s %8s %8s %8s@." "Application" "Tmk" "Sync" "Async";
  rule ppf 58;
  List.iter
    (fun (sa : Runset.sized_app) ->
      if sa.Runset.size_label = "large" then begin
        (* the contrast is between fetch modes of the Validate-based
           configuration (consistency elimination level, applicable to
           every program); Push is synchronous-only per Section 3.3 *)
        let l = Cons_elim in
        let sync = sa.Runset.run (Runset.Tmk_level (l, false))
        and async = sa.Runset.run (Runset.Tmk_level (l, true)) in
        Format.fprintf ppf "%-22s %8.2f %a %a@."
          (sa.Runset.app_name ^ " - " ^ sa.Runset.size_name)
          (Runset.speedup sa (Runset.base sa))
          pp_speedup
          (Option.map (Runset.speedup sa) sync)
          pp_speedup
          (Option.map (Runset.speedup sa) async)
      end)
    apps;
  rule ppf 58

(* {1 Extension experiments (beyond the paper)} *)

(* {2 Scaling to 64-1024 simulated processors}

   The paper's evaluation stops at 8 processors (the SP/2 it had).
   Section 6.4 conjectures the compiler's optimizations "may be more
   beneficial at larger numbers of processors, since the overhead of global
   synchronization and consistency increases" — these experiments size the
   cluster up to where that claim becomes testable. Data sets grow with
   the processor count (weak scaling: the per-processor slab stays
   meaningful), using each application's large calibrated per-element
   costs; the reported numbers are simulated speedups over the
   uniprocessor run, so they are bit-deterministic and digest-gated like
   every other experiment. *)

(* One application with custom-sized parameters; the existential lets one
   list mix the six apps' distinct params types. *)
type sized_run =
  | Sized : {
      label : string;
      app : (module KERNEL with type params = 'p);
      params : 'p;
    }
      -> sized_run

let scale_backends =
  [
    (Dsm_sim.Config.Lrc, "lrc");
    (Dsm_sim.Config.Hlrc, "hlrc");
    (Dsm_sim.Config.Inval, "inval");
    (Dsm_sim.Config.Adaptive, "adpt");
  ]

let scale_header ppf =
  rule ppf 72;
  Format.fprintf ppf "%-26s %5s" "Application" "procs";
  List.iter (fun (_, n) -> Format.fprintf ppf " %9s" n) scale_backends;
  Format.fprintf ppf "@.";
  rule ppf 72

let scale_row ppf cfg ~procs (Sized { label; app; params }) =
  let module App = (val app) in
  let seq = App.seq_time_us params in
  Format.fprintf ppf "%-26s %5d" label procs;
  Format.pp_print_flush ppf ();
  List.iter
    (fun (backend, bname) ->
      let c = { cfg with Dsm_sim.Config.nprocs = procs; backend } in
      let r = App.run_tmk c params ~level:A.Base ~async:false in
      if r.A.max_err > 1e-6 then
        failwith (label ^ "/" ^ bname ^ ": wrong result");
      Format.fprintf ppf " %9.1f" (seq /. r.A.time_us);
      (* flush per cell: these rows take minutes at 1024 procs, and a
         watcher (CI log, tee) should see progress cell by cell *)
      Format.pp_print_flush ppf ())
    scale_backends;
  Format.fprintf ppf "@."

(* The 64-processor tier: all six applications under all four coherence
   backends. IS is the stress case on purpose — its bucket array is
   written by every processor, so consistency traffic grows quadratically
   with the cluster and the speedup curve bends first. *)
let scaling ppf cfg =
  Format.fprintf ppf
    "@.Scaling: six applications at 64 simulated processors, four backends@.";
  Format.fprintf ppf
    "(weak-scaled data sets; simulated speedup over the uniprocessor run)@.";
  scale_header ppf;
  let apps =
    [
      Sized
        {
          label = "Jacobi 1024x1024 i5";
          app = (module Dsm_apps.Jacobi);
          params = { Dsm_apps.Jacobi.large with m = 1024; iters = 5 };
        };
      Sized
        {
          label = "IS 2^18 keys r2";
          app = (module Dsm_apps.Is);
          params = { Dsm_apps.Is.large with reps = 2 };
        };
      Sized
        {
          label = "Gauss 512x512";
          app = (module Dsm_apps.Gauss);
          params = Dsm_apps.Gauss.large;
        };
      Sized
        {
          label = "3D-FFT 64^3 i1";
          app = (module Dsm_apps.Fft3d);
          params = { Dsm_apps.Fft3d.large with n = 64; iters = 1 };
        };
      Sized
        {
          label = "MGS 256x256";
          app = (module Dsm_apps.Mgs);
          params = Dsm_apps.Mgs.large;
        };
      Sized
        {
          label = "Shallow 512x256 s4";
          app = (module Dsm_apps.Shallow);
          params = { Dsm_apps.Shallow.large with m = 512; n = 256; steps = 4 };
        };
    ]
  in
  List.iter (scale_row ppf cfg ~procs:64) apps;
  rule ppf 72;
  (* Engine cross-check: the domain-sharded scheduler must be invisible in
     the results. One representative row re-run under 4 host domains has to
     match the sequential engine bit for bit (time, messages and the
     protocol-level digest of the final shared state). *)
  let prm = { Dsm_apps.Jacobi.large with m = 1024; iters = 5 } in
  let run domains =
    Dsm_apps.Jacobi.run_tmk ~digest:true
      { cfg with Dsm_sim.Config.nprocs = 64; domains }
      prm ~level:A.Base ~async:false
  in
  let d1 = run 1 and d4 = run 4 in
  if
    d1.A.digest <> d4.A.digest
    || d1.A.time_us <> d4.A.time_us
    || d1.A.stats.Stats.messages <> d4.A.stats.Stats.messages
  then failwith "scaling: domains=4 diverged from the sequential engine";
  Format.fprintf ppf
    "engine cross-check: jacobi/64p bit-identical at --domains 1 and 4@.";
  rule ppf 72

(* The 256- and 1024-processor tiers. Applications whose consistency
   traffic is all-to-all (IS) or whose slab partitioning runs out of planes
   (3D-FFT at n < nprocs) stay in the 64-processor tier; these tiers keep
   the nearest-neighbour and reduction codes where a thousand-processor
   cluster is meaningful. Host cost grows with nprocs^2 per barrier (write
   notices), so this experiment is measured in the full bench set only —
   the quick CI gate runs {!scaling} above. *)
let scaling_deep ppf cfg =
  Format.fprintf ppf
    "@.Scaling deep: 256 and 1024 simulated processors, four backends@.";
  Format.fprintf ppf
    "(weak-scaled data sets; simulated speedup over the uniprocessor run)@.";
  scale_header ppf;
  let tier_256 =
    [
      Sized
        {
          label = "Jacobi 2048x2048 i3";
          app = (module Dsm_apps.Jacobi);
          params = { Dsm_apps.Jacobi.large with m = 2048; iters = 3 };
        };
      Sized
        {
          label = "MGS 512x512";
          app = (module Dsm_apps.Mgs);
          params = { Dsm_apps.Mgs.large with m = 512; n = 512 };
        };
      Sized
        {
          label = "Shallow 1024x512 s3";
          app = (module Dsm_apps.Shallow);
          params =
            { Dsm_apps.Shallow.large with m = 1024; n = 512; steps = 3 };
        };
    ]
  and tier_1024 =
    [
      (* m = 2050: 2048 interior columns, exactly two per processor *)
      Sized
        {
          label = "Jacobi 2050x2050 i2";
          app = (module Dsm_apps.Jacobi);
          params = { Dsm_apps.Jacobi.large with m = 2050; iters = 2 };
        };
    ]
  in
  List.iter (scale_row ppf cfg ~procs:256) tier_256;
  List.iter (scale_row ppf cfg ~procs:1024) tier_1024;
  rule ppf 72

(* Each DESIGN.md mechanism toggled off, on the workload it serves. *)
let ablation ppf cfg =
  Format.fprintf ppf "@.Ablations: run-time mechanisms toggled off@.";
  rule ppf 76;
  Format.fprintf ppf "%-46s %12s %12s@." "mechanism / workload" "on" "off";
  rule ppf 76;
  let time_of (r : A.result) = r.A.time_us /. 1e3 in
  let bytes_of (r : A.result) = float_of_int r.A.stats.Stats.bytes /. 1e6 in
  (* 1. barrier-time broadcast: Gauss sync+data merge *)
  let on = Dsm_apps.Gauss.run_tmk cfg Dsm_apps.Gauss.small ~level:A.Sync_merge ~async:false in
  let off =
    Dsm_apps.Gauss.run_tmk
      { cfg with Dsm_sim.Config.enable_bcast = false }
      Dsm_apps.Gauss.small ~level:A.Sync_merge ~async:false
  in
  Format.fprintf ppf "%-46s %10.0fms %10.0fms@."
    "barrier broadcast (Gauss small, sync+merge)" (time_of on) (time_of off);
  (* 2. supersede pruning: IS cons-elim data volume *)
  let on = Dsm_apps.Is.run_tmk cfg Dsm_apps.Is.small ~level:A.Cons_elim ~async:true in
  let off =
    Dsm_apps.Is.run_tmk
      { cfg with Dsm_sim.Config.enable_supersede = false }
      Dsm_apps.Is.small ~level:A.Cons_elim ~async:true
  in
  Format.fprintf ppf "%-46s %10.1fMB %10.1fMB@."
    "WRITE_ALL supersede (IS small, data moved)" (bytes_of on) (bytes_of off);
  Format.fprintf ppf "%-46s %10.0fms %10.0fms@."
    "WRITE_ALL supersede (IS small, time)" (time_of on) (time_of off);
  (* 3. hot-spot queueing: MGS base (single-producer fetch storms) *)
  let on = Dsm_apps.Mgs.run_tmk cfg Dsm_apps.Mgs.small ~level:A.Base ~async:false in
  let off =
    Dsm_apps.Mgs.run_tmk
      { cfg with Dsm_sim.Config.enable_hotspot_queueing = false }
      Dsm_apps.Mgs.small ~level:A.Base ~async:false
  in
  Format.fprintf ppf "%-46s %10.0fms %10.0fms@."
    "hot-spot queueing (MGS small, base)" (time_of on) (time_of off);
  rule ppf 76

(* Homeless vs home-based LRC, per application and optimization level.
   Correctness is protocol-independent (the backend-equivalence tests
   pin the outputs bit-for-bit); what moves is where modifications live
   and who pays to assemble them, visible as messages, data volume and
   the resulting speedup. *)
let backends ppf cfg =
  let module Config = Dsm_sim.Config in
  Format.fprintf ppf
    "@.Backends: homeless (lrc) vs home-based (hlrc) LRC@.";
  Format.fprintf ppf
    "(small data sets, %d processors, async fetch, hlrc homes: %s)@."
    cfg.Config.nprocs
    (Config.home_policy_name cfg.Config.home_policy);
  rule ppf 86;
  Format.fprintf ppf "%-10s %-10s %9s %9s %9s %9s %8s %8s@." "Application"
    "level" "msg lrc" "msg hlrc" "MB lrc" "MB hlrc" "sp lrc" "sp hlrc";
  rule ppf 86;
  let apps : (string * (module KERNEL)) list =
    [
      ("Jacobi", (module Dsm_apps.Jacobi));
      ("3D-FFT", (module Dsm_apps.Fft3d));
      ("Shallow", (module Dsm_apps.Shallow));
      ("IS", (module Dsm_apps.Is));
      ("Gauss", (module Dsm_apps.Gauss));
      ("MGS", (module Dsm_apps.Mgs));
    ]
  in
  List.iter
    (fun (name, m) ->
      let module App = (val m : KERNEL) in
      let params = App.small in
      let seq = App.seq_time_us params in
      List.iter
        (fun level ->
          let run backend =
            App.run_tmk
              { cfg with Config.backend }
              params ~level ~async:true
          in
          let rl = run Config.Lrc and rh = run Config.Hlrc in
          if rl.A.max_err > 1e-6 || rh.A.max_err > 1e-6 then
            failwith (name ^ ": wrong result");
          let mb (r : A.result) =
            float_of_int r.A.stats.Stats.bytes /. 1e6
          in
          Format.fprintf ppf "%-10s %-10s %9d %9d %9.1f %9.1f %8.2f %8.2f@."
            name
            (A.opt_level_name level)
            rl.A.stats.Stats.messages rh.A.stats.Stats.messages (mb rl)
            (mb rh) (seq /. rl.A.time_us) (seq /. rh.A.time_us))
        App.levels)
    apps;
  rule ppf 86

(* The whole protocol family side by side: which consistency protocol
   suits which sharing pattern. Base rows are fault-driven (the protocol
   alone moves the data); best-level rows show how much the compiler's
   Validate/Push annotations flatten the differences. Correctness is
   again protocol-independent — the table reports only where the costs
   go. *)
let protocol_matrix ppf cfg =
  let module Config = Dsm_sim.Config in
  let backends =
    [
      (Config.Lrc, "lrc");
      (Config.Hlrc, "hlrc");
      (Config.Inval, "inval");
      (Config.Adaptive, "adpt");
    ]
  in
  Format.fprintf ppf
    "@.Protocol matrix: lrc / hlrc / inval / adaptive across the six \
     applications@.";
  Format.fprintf ppf
    "(small data sets, %d processors, async fetch; '*' marks the row's \
     fewest messages and best speedup)@."
    cfg.Config.nprocs;
  rule ppf 112;
  Format.fprintf ppf "%-10s %-10s" "Application" "level";
  List.iter (fun (_, n) -> Format.fprintf ppf " %9s" ("m." ^ n)) backends;
  List.iter (fun (_, n) -> Format.fprintf ppf " %8s" ("s." ^ n)) backends;
  Format.fprintf ppf "@.";
  rule ppf 112;
  let apps : (string * (module KERNEL)) list =
    [
      ("Jacobi", (module Dsm_apps.Jacobi));
      ("3D-FFT", (module Dsm_apps.Fft3d));
      ("Shallow", (module Dsm_apps.Shallow));
      ("IS", (module Dsm_apps.Is));
      ("Gauss", (module Dsm_apps.Gauss));
      ("MGS", (module Dsm_apps.Mgs));
    ]
  in
  List.iter
    (fun (name, m) ->
      let module App = (val m : KERNEL) in
      let params = App.small in
      let seq = App.seq_time_us params in
      let best = List.fold_left (fun _ l -> l) A.Base App.levels in
      List.iter
        (fun level ->
          let rs =
            List.map
              (fun (backend, bname) ->
                let r =
                  App.run_tmk { cfg with Config.backend } params ~level
                    ~async:true
                in
                if r.A.max_err > 1e-6 then
                  failwith (name ^ "/" ^ bname ^ ": wrong result");
                r)
              backends
          in
          let msgs =
            List.map (fun (r : A.result) -> r.A.stats.Stats.messages) rs
          in
          let sps = List.map (fun (r : A.result) -> seq /. r.A.time_us) rs in
          let min_m = List.fold_left min max_int msgs
          and max_s = List.fold_left max 0.0 sps in
          Format.fprintf ppf "%-10s %-10s" name (A.opt_level_name level);
          List.iter
            (fun m ->
              Format.fprintf ppf " %8d%s" m (if m = min_m then "*" else " "))
            msgs;
          List.iter
            (fun s ->
              Format.fprintf ppf " %7.2f%s" s (if s = max_s then "*" else " "))
            sps;
          Format.fprintf ppf "@.")
        (List.sort_uniq compare [ A.Base; best ]))
    apps;
  rule ppf 112

(* Drop-rate sweep over the unreliable transport: correctness must be
   untouched (losses are recovered by the reliable layer), only time and
   the fault counters move. *)
let faults ppf cfg =
  Format.fprintf ppf
    "@.Fault injection: drop-rate sweep (8 processors, small sets, best \
     level; dup 1%%, jitter 50us, seed 1)@.";
  rule ppf 78;
  Format.fprintf ppf "%-12s %6s %12s %8s %8s %8s %8s@." "Application" "drop"
    "time(us)" "dropped" "timeout" "retrans" "dup";
  rule ppf 78;
  let apps : (string * (module KERNEL)) list =
    [
      ("Jacobi", (module Dsm_apps.Jacobi));
      ("3D-FFT", (module Dsm_apps.Fft3d));
      ("Gauss", (module Dsm_apps.Gauss));
      ("IS", (module Dsm_apps.Is));
    ]
  in
  List.iter
    (fun (name, m) ->
      let module App = (val m : KERNEL) in
      let params = App.small in
      let best = List.fold_left (fun _ l -> l) A.Base App.levels in
      List.iter
        (fun drop ->
          let faulty = drop > 0.0 in
          let c =
            {
              cfg with
              Dsm_sim.Config.nprocs = 8;
              net_drop = drop;
              net_dup = (if faulty then 0.01 else 0.0);
              net_jitter_us = (if faulty then 50.0 else 0.0);
              net_seed = 1;
            }
          in
          let r = App.run_tmk c params ~level:best ~async:true in
          if r.A.max_err > 1e-6 then
            failwith (name ^ ": wrong result under faults");
          let s = r.A.stats in
          Format.fprintf ppf "%-12s %6.2f %12.0f %8d %8d %8d %8d@." name drop
            r.A.time_us s.Stats.dropped s.Stats.timeouts s.Stats.retransmits
            s.Stats.duplicates)
        [ 0.0; 0.01; 0.05 ])
    apps;
  rule ppf 78

(* Availability vs overhead: what k-replicated homes cost when nothing
   fails, and what a crash plus recovery costs on top. Every row's final
   shared memory must be bit-identical to the unreplicated baseline —
   the table would be meaningless if fault tolerance changed results. *)
let availability ppf cfg =
  Format.fprintf ppf
    "@.Availability: replicated homes and crash recovery (hlrc, 8 \
     processors, small sets, best level; crash rows: p1 down at 20ms for \
     10ms, checkpoints every 2 epochs)@.";
  rule ppf 100;
  Format.fprintf ppf "%-12s %-10s %12s %6s %9s %12s %6s %6s %6s %7s@."
    "Application" "config" "time(us)" "slow" "msgs" "bytes" "qwrite"
    "qread" "ckpt" "digest";
  rule ppf 100;
  let apps : (string * (module KERNEL)) list =
    [
      ("Jacobi", (module Dsm_apps.Jacobi));
      ("3D-FFT", (module Dsm_apps.Fft3d));
      ("Gauss", (module Dsm_apps.Gauss));
      ("IS", (module Dsm_apps.Is));
    ]
  in
  let crash = [ (1, 20000.0, 10000.0) ] in
  let rows =
    [
      ("k=1", 1, 0, []);
      ("k=3", 3, 2, []);
      ("k=3+crash", 3, 2, crash);
      ("k=5+crash", 5, 2, crash);
    ]
  in
  List.iter
    (fun (name, m) ->
      let module App = (val m : KERNEL) in
      let params = App.small in
      let best = List.fold_left (fun _ l -> l) A.Base App.levels in
      let baseline = ref None in
      List.iter
        (fun (label, replicas, ckpt_every, crash) ->
          let c =
            {
              cfg with
              Dsm_sim.Config.nprocs = 8;
              backend = Dsm_sim.Config.Hlrc;
              replicas;
              ckpt_every;
              crash;
            }
          in
          let r = App.run_tmk ~digest:true c params ~level:best ~async:true in
          if r.A.max_err > 1e-6 then
            failwith (name ^ ": wrong result under " ^ label);
          let base_time, base_digest =
            match !baseline with
            | None ->
                baseline := Some (r.A.time_us, r.A.digest);
                (r.A.time_us, r.A.digest)
            | Some b -> b
          in
          if r.A.digest <> base_digest then
            failwith (name ^ ": digest diverged under " ^ label);
          if crash <> [] && r.A.stats.Stats.crashes = 0 then
            failwith (name ^ ": scheduled crash never executed");
          let s = r.A.stats in
          Format.fprintf ppf
            "%-12s %-10s %12.0f %6.2f %9d %12d %6d %6d %6d %7s@." name label
            r.A.time_us
            (r.A.time_us /. base_time)
            s.Stats.messages s.Stats.bytes s.Stats.quorum_writes
            s.Stats.quorum_reads s.Stats.ckpts "=")
        rows)
    apps;
  rule ppf 100

(* The sharded key-value/session cache: a latency-bound workload (the
   six kernels are throughput-bound), so the table reports tail latency
   percentiles and per-operation traffic instead of speedups. The
   object-granularity rows are the paper's false-sharing remedy at
   allocation granularity: packed 64-byte objects share pages, so at
   page granularity every foreign update to a page-mate invalidates the
   page and a hot-key skew turns that into fetch traffic; per-object
   staleness tracking skips those fetches. The page rows are the
   control, the PVMe rows the hand-coded message-passing bound. *)
let kv ppf cfg =
  let module Config = Dsm_sim.Config in
  let module Kv = Dsm_apps.Kv in
  let pct arr q =
    let n = Array.length arr in
    if n = 0 then 0.0
    else arr.(min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5)))
  in
  let backends =
    [
      (Config.Lrc, "lrc");
      (Config.Hlrc, "hlrc");
      (Config.Inval, "inval");
      (Config.Adaptive, "adpt");
    ]
  in
  let cfg = { cfg with Config.nprocs = 8 } in
  Format.fprintf ppf
    "@.KV session cache: tail latency and per-operation traffic@.";
  Format.fprintf ppf
    "(open-loop sessions, 8 processors, small set, async fetch; object vs \
     page store granularity; pvm = hand-coded message-passing delegation)@.";
  rule ppf 88;
  Format.fprintf ppf "%-8s %-7s %-8s %9s %9s %9s %8s %9s %8s@." "mix" "gran"
    "backend" "p50(us)" "p95(us)" "p99(us)" "msg/op" "B/op" "objskip";
  rule ppf 88;
  let lat_cols ppf (r : A.result) =
    let lats = Option.value ~default:[||] r.A.latencies_us in
    let per x = float_of_int x /. float_of_int (max 1 r.A.nops) in
    Format.fprintf ppf "%9.0f %9.0f %9.0f %8.1f %9.0f" (pct lats 0.50)
      (pct lats 0.95) (pct lats 0.99)
      (per r.A.stats.Stats.messages)
      (per r.A.stats.Stats.bytes)
  in
  (* write90/lrc message counts, for the false-sharing gate below *)
  let gate = Hashtbl.create 4 in
  List.iter
    (fun (mix, _) ->
      List.iter
        (fun (gran, gname) ->
          List.iter
            (fun (backend, bname) ->
              let behavior =
                { Kv.default_behavior with Kv.mix; granularity = gran }
              in
              let r =
                Kv.tmk { cfg with Config.backend } ~size:Kv.small ~behavior
                  ~level:A.Base ~async:true
              in
              if r.A.max_err > 1e-6 then
                failwith ("kv/" ^ mix ^ "/" ^ gname ^ "/" ^ bname
                          ^ ": wrong result");
              if mix = "write90" && backend = Config.Lrc then
                Hashtbl.replace gate gname r.A.stats.Stats.messages;
              Format.fprintf ppf "%-8s %-7s %-8s %a %8d@." mix gname bname
                lat_cols r r.A.stats.Stats.obj_skips)
            backends)
        [ (Dsm_tmk.Tmk.Alloc.Object, "object"); (Dsm_tmk.Tmk.Alloc.Page, "page") ];
      let r = Kv.pvm cfg ~size:Kv.small ~behavior:{ Kv.default_behavior with Kv.mix } in
      if r.A.max_err > 1e-6 then failwith ("kv/" ^ mix ^ "/pvm: wrong result");
      Format.fprintf ppf "%-8s %-7s %-8s %a %8s@." mix "-" "pvm" lat_cols r "-")
    [ ("read90", 0.90); ("write90", 0.10) ];
  rule ppf 88;
  (* the point of the object granularity: under the write-heavy skewed
     mix it must shed messages relative to the page-granular control *)
  let m_obj = Hashtbl.find gate "object"
  and m_page = Hashtbl.find gate "page" in
  if m_obj >= m_page then
    failwith "kv: object granularity did not reduce messages vs page";
  Format.fprintf ppf
    "false sharing (write90, lrc): %d msgs at page granularity, %d at \
     object granularity (-%.0f%%)@."
    m_page m_obj
    (pct_reduction m_page m_obj);
  (* checker coverage: one traced object-granularity run must replay
     cleanly through the LRC invariant checker, with skips exercised *)
  let sink = Dsm_trace.Sink.create ~nprocs:cfg.Config.nprocs () in
  let r =
    Kv.tmk ~trace:sink cfg ~size:Kv.tiny ~behavior:Kv.default_behavior
      ~level:A.Base ~async:true
  in
  let violations = Dsm_trace.Check.run_sink sink in
  if violations <> [] then failwith "kv: traced run violates LRC invariants";
  if r.A.stats.Stats.obj_skips = 0 then
    failwith "kv: traced run exercised no object skips";
  Format.fprintf ppf
    "checker: traced tiny run clean (0 violations, %d object skips)@."
    r.A.stats.Stats.obj_skips;
  rule ppf 88

(* {1 Platform microbenchmarks (Section 5)} *)

let micro ppf cfg =
  let module Cluster = Dsm_sim.Cluster in
  Format.fprintf ppf
    "@.Platform microbenchmarks (Section 5), simulated vs published SP/2@.";
  rule ppf 66;
  (* minimum roundtrip: empty rpc *)
  let c = Cluster.create cfg in
  Cluster.rpc c ~src:0 ~dst:1 ~req_bytes:0 ~resp_bytes:0 ~service:0.0;
  let roundtrip = Cluster.time c 0 in
  (* free remote lock acquisition *)
  let sys = Dsm_tmk.Tmk.make cfg in
  let lock_time = ref 0.0 in
  Dsm_tmk.Tmk.run sys (fun t ->
      if Dsm_tmk.Tmk.pid t = 1 then begin
        Dsm_tmk.Tmk.lock_acquire t 0;
        lock_time := Dsm_tmk.Tmk.time t;
        Dsm_tmk.Tmk.lock_release t 0
      end);
  (* 8-processor barrier: client-side time of the first barrier (the run
     appends the implicit exit barrier, which must not be counted) *)
  let sys2 = Dsm_tmk.Tmk.make cfg in
  let barrier_box = ref 0.0 in
  Dsm_tmk.Tmk.run sys2 (fun t ->
      Dsm_tmk.Tmk.barrier t;
      if Dsm_tmk.Tmk.pid t = 1 then barrier_box := Dsm_tmk.Tmk.time t);
  let barrier_time = !barrier_box in
  Format.fprintf ppf "%-44s %8.0f %8s@." "minimum roundtrip (us)" roundtrip
    "365";
  Format.fprintf ppf "%-44s %8.0f %8s@." "free remote lock acquisition (us)"
    !lock_time "427";
  Format.fprintf ppf "%-44s %8.0f %8s@."
    (Printf.sprintf "%d-processor barrier (us)" cfg.Dsm_sim.Config.nprocs)
    barrier_time "893";
  (* memory-management cost curve *)
  List.iter
    (fun pages ->
      let c = Cluster.create cfg in
      c.Cluster.pages_in_use <- pages;
      Cluster.mm_op c 0 ~npages:1;
      Format.fprintf ppf "%-44s %8.0f %8s@."
        (Printf.sprintf "fault/mprotect cost, %d pages in use (us)" pages)
        (Cluster.time c 0) "18-800")
    [ 100; 500; 2000 ];
  rule ppf 66

(** Regeneration of every table and figure of the paper's evaluation
    (Section 5 and 6), printed in the same row/series structure. Each
    function takes the list produced by {!Runset.all} so runs are shared
    across experiments. *)

val table1 : Format.formatter -> Runset.sized_app list -> unit
(** Table 1: applications, data set sizes, and uniprocessor execution
    times. *)

val table2 : Format.formatter -> Runset.sized_app list -> unit
(** Table 2: percentage reduction in page faults ("segv"), messages
    ("msg"), and data for the compiler-optimized version of TreadMarks
    versus the base version. *)

val figure5 : Format.formatter -> Runset.sized_app list -> unit
(** Figure 5: 8-processor speedups for TreadMarks, optimized TreadMarks,
    XHPF and PVMe (XHPF missing for IS). *)

val figure6 : Format.formatter -> Runset.sized_app list -> unit
(** Figure 6: speedups under the cumulative optimization levels, per
    application and data set, with XHPF and PVMe bars. *)

val figure7 : Format.formatter -> Runset.sized_app list -> unit
(** Figure 7: synchronous vs. asynchronous data fetching on the large data
    sets. *)

val scaling : Format.formatter -> Dsm_sim.Config.t -> unit
(** Beyond the paper: all six applications on a 64-processor simulated
    cluster under all four coherence backends, with weak-scaled data sets
    (the per-processor slab stays meaningful as the cluster grows).
    Section 6.4 conjectures that consistency overhead "increases at larger
    numbers of processors" — this tier is where the curves start to bend,
    with IS's all-to-all bucket updates as the deliberate stress case. The
    experiment ends with an engine cross-check: one row re-run under 4
    host domains must be bit-identical to the sequential scheduler. *)

val scaling_deep : Format.formatter -> Dsm_sim.Config.t -> unit
(** Beyond the paper: the 256- and 1024-processor tiers of the scaling
    study (nearest-neighbour and reduction codes only — see the comment in
    the implementation for why IS and 3D-FFT stay at 64). Simulating a
    barrier's write-notice exchange costs the host O(nprocs²), so this
    experiment is part of the full bench set but not the quick CI gate. *)

val ablation : Format.formatter -> Dsm_sim.Config.t -> unit
(** Beyond the paper: each run-time mechanism this implementation calls out
    in DESIGN.md, toggled off individually — barrier-time broadcast,
    WRITE_ALL supersede pruning, and hot-spot request queueing — on the
    workload that exercises it. *)

val backends : Format.formatter -> Dsm_sim.Config.t -> unit
(** Beyond the paper: homeless LRC vs home-based LRC on every application
    at every applicable optimization level (small data sets) — messages,
    data volume and speedup side by side. Correctness is
    protocol-independent; the table shows where each protocol's costs go:
    hlrc trades the homeless protocol's per-writer diff chatter for eager
    whole-page flushes to a static home. *)

val protocol_matrix : Format.formatter -> Dsm_sim.Config.t -> unit
(** Beyond the paper: the full protocol family — homeless LRC, home-based
    LRC, the directory-based single-writer invalidate protocol and the
    adaptive per-page switcher — on every application (small data sets),
    at the fault-driven base level and at the best compiler-optimized
    level. Messages and speedup side by side, with the per-row winners
    marked: which consistency protocol suits which sharing pattern, and
    how much the compiler's annotations flatten the differences. *)

val faults : Format.formatter -> Dsm_sim.Config.t -> unit
(** Beyond the paper: a drop-rate sweep over the modeled unreliable
    transport (0/1/5% loss with duplication and delivery jitter) on four
    applications at 8 processors. Application results must be unchanged —
    the reliable-delivery layer recovers every loss — so the table reports
    only the time and the fault counters. *)

val availability : Format.formatter -> Dsm_sim.Config.t -> unit
(** Beyond the paper: the cost of fault tolerance on the hlrc backend —
    k-replicated homes at k=1/3/5 with and without a mid-run crash and
    recovery, on four applications at 8 processors. Reports time,
    messages, bytes and the quorum/checkpoint counters; every
    configuration's final memory digest must be bit-identical to the
    unreplicated baseline (the run aborts otherwise). *)

val kv : Format.formatter -> Dsm_sim.Config.t -> unit
(** Beyond the paper: the sharded key-value/session cache — a
    latency-bound workload, reported as tail-latency percentiles (p50,
    p95, p99 over all operations) and per-operation messages and bytes
    rather than speedups. Two operation mixes (read-mostly and
    write-heavy) crossed with the store's allocation granularity (packed
    64-byte objects vs the page-granular control) over all four
    coherence backends, plus the hand-coded message-passing delegation
    baseline. Ends with two self-checks: object granularity must shed
    messages against the page control under the write-heavy skewed mix
    (the false-sharing claim), and a traced run must replay cleanly
    through the LRC invariant checker while exercising object skips. *)

val micro : Format.formatter -> Dsm_sim.Config.t -> unit
(** Section 5's platform microbenchmarks: minimum roundtrip, free-lock
    acquisition, 8-processor barrier, and the memory-management cost curve,
    compared against the published SP/2 numbers. *)

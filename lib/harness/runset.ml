open Dsm_apps.App_common

type variant =
  | Tmk_base
  | Tmk_level of opt_level * bool
  | Pvm
  | Xhpf

let variant_name = function
  | Tmk_base -> "Tmk"
  | Tmk_level (l, async) ->
      Printf.sprintf "Opt-Tmk(%s,%s)" (opt_level_name l)
        (if async then "async" else "sync")
  | Pvm -> "PVMe"
  | Xhpf -> "XHPF"

type sized_app = {
  app_name : string;
  size_label : string;
  size_name : string;
  seq_time_us : float;
  levels : opt_level list;
  has_xhpf : bool;
  run : variant -> result option;
}

let speedup sa (r : result) = sa.seq_time_us /. r.time_us

let check sa (r : result) =
  if r.max_err > 1e-6 then
    failwith
      (Printf.sprintf "%s (%s): wrong results, max err %g" sa.app_name
         sa.size_name r.max_err)

let of_app (module W : Dsm_apps.Workload.S) cfg =
  let behavior = W.default_behavior in
  let mk label size =
    let cache : (variant, result option) Hashtbl.t = Hashtbl.create 16 in
    let rec sa =
      {
        app_name = W.name;
        size_label = label;
        size_name = W.size_name size;
        seq_time_us = W.seq_time_us size;
        levels = W.levels;
        has_xhpf = Option.is_some W.xhpf;
        run =
          (fun v ->
            match Hashtbl.find_opt cache v with
            | Some r -> r
            | None ->
                let r =
                  match v with
                  | Tmk_base ->
                      Some
                        (W.tmk cfg ~size ~behavior ~level:Base ~async:false)
                  | Tmk_level (l, async) ->
                      if List.mem l W.levels then
                        Some (W.tmk cfg ~size ~behavior ~level:l ~async)
                      else None
                  | Pvm -> Some (W.pvm cfg ~size ~behavior)
                  | Xhpf ->
                      Option.map (fun f -> f cfg ~size ~behavior) W.xhpf
                in
                Option.iter (check sa) r;
                Hashtbl.replace cache v r;
                r);
      }
    in
    sa
  in
  List.filter_map
    (fun label ->
      Option.map (mk label) (List.assoc_opt label W.sizes))
    [ "large"; "small" ]

let base sa = Option.get (sa.run Tmk_base)

let best_opt sa =
  (* asynchronous fetching dominates (Section 6.3), so Opt-Tmk is chosen
     among the asynchronous runs of the applicable levels *)
  let candidates =
    List.filter_map
      (fun l -> if l = Base then None else sa.run (Tmk_level (l, true)))
      sa.levels
  in
  match candidates with
  | [] -> base sa
  | first :: rest ->
      List.fold_left
        (fun acc r -> if r.time_us < acc.time_us then r else acc)
        first rest

let best_opt_sync sa =
  let candidates =
    List.filter_map
      (fun l -> if l = Base then None else sa.run (Tmk_level (l, false)))
      sa.levels
  in
  match candidates with
  | [] -> base sa
  | first :: rest ->
      List.fold_left
        (fun acc r -> if r.time_us < acc.time_us then r else acc)
        first rest

let best_level sa =
  let levels = List.filter (fun l -> l <> Base) sa.levels in
  match levels with
  | [] -> Base
  | _ ->
      fst
        (List.fold_left
           (fun (bl, bt) l ->
             match sa.run (Tmk_level (l, true)) with
             | Some r when r.time_us < bt -> (l, r.time_us)
             | _ -> (bl, bt))
           (Base, Float.max_float) levels)

(* The paper's tables and figures run over the six kernels; the KV
   cache reports through its own experiment ({!Experiments.kv}). *)
let all cfg =
  List.concat_map
    (fun (_, m) -> of_app m cfg)
    Dsm_apps.Registry.kernels

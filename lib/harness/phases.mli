(** Per-phase summaries of a protocol trace.

    A traced run decomposes into phases delimited by barrier departures:
    phase [k] covers, for each processor, its events between its [k]'th and
    [k+1]'th barrier departures (phase 0 starts at program start, and the
    run's trailing exit barrier ends the last phase). *)

type phase = {
  epoch : int;
  events : int;
  end_time : float;  (** max virtual time of any event in the phase, us *)
  faults : int;
  twins : int;
  diffs_created : int;
  diffs_applied : int;
  diff_bytes : int;  (** bytes of diff data applied *)
  notices : int;  (** write notices applied *)
  invalidations : int;
  lock_acquires : int;
  validates : int;
  push_msgs : int;
  push_bytes : int;
  broadcasts : int;
}

val of_events : Dsm_trace.Event.t list -> phase list
(** Aggregate an event list (in emission order, e.g. from
    {!Dsm_trace.Sink.events}) into per-phase summaries, sorted by epoch. *)

val pp : Format.formatter -> phase list -> unit
(** Render as an aligned table, one row per phase. *)

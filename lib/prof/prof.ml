type section =
  | Engine
  | Protocol
  | Sync
  | Diff_create
  | Diff_apply
  | Vc
  | Net
  | Trace

let n_sections = 8

let index = function
  | Engine -> 0
  | Protocol -> 1
  | Sync -> 2
  | Diff_create -> 3
  | Diff_apply -> 4
  | Vc -> 5
  | Net -> 6
  | Trace -> 7

let section_name = function
  | Engine -> "engine+app"
  | Protocol -> "protocol"
  | Sync -> "sync"
  | Diff_create -> "diff-create"
  | Diff_apply -> "diff-apply"
  | Vc -> "vc"
  | Net -> "net"
  | Trace -> "trace-sink"

(* The extra slot absorbs slices when no span is open. *)
let unattributed = n_sections

let enabled = ref false

(* {1 Per-domain state}

   Counters, the span stack and the open-slice markers are per-domain
   (domain-local storage): the sharded engine runs spans on every worker
   domain concurrently, and a single global stack would interleave
   them. Each domain charges its own wall-clock and its own minor-heap
   counter (minor words are already a per-domain figure in OCaml 5);
   {!report} and {!reset} aggregate over a registry of every state ever
   created. Enabling, resetting and reporting are assumed to happen on
   the main domain while no worker domains are live — the engine spawns
   workers per run and joins them before returning, so the bench/CLI
   call pattern (enable, run, report) satisfies this. *)

let max_depth = 64

type dstate = {
  calls : int array;
  ops : int array;
  self_s : float array;
  alloc_w : float array;
  stack : int array;
  mutable depth : int;
  mutable slice_start : float;
  mutable slice_alloc : float;
}

let reg_lock = Mutex.create ()
let registry : dstate list ref = ref []

let fresh_state () =
  let st =
    {
      calls = Array.make (n_sections + 1) 0;
      ops = Array.make (n_sections + 1) 0;
      self_s = Array.make (n_sections + 1) 0.0;
      alloc_w = Array.make (n_sections + 1) 0.0;
      stack = Array.make max_depth 0;
      depth = 0;
      slice_start = Unix.gettimeofday ();
      slice_alloc = Gc.minor_words ();
    }
  in
  Mutex.protect reg_lock (fun () -> registry := st :: !registry);
  st

let key = Domain.DLS.new_key fresh_state
let[@inline] state () = Domain.DLS.get key

let enabled_at = ref 0.0
let total_s = ref 0.0

let reset () =
  let now = Unix.gettimeofday () in
  Mutex.protect reg_lock (fun () ->
      List.iter
        (fun (st : dstate) ->
          Array.fill st.calls 0 (n_sections + 1) 0;
          Array.fill st.ops 0 (n_sections + 1) 0;
          Array.fill st.self_s 0 (n_sections + 1) 0.0;
          Array.fill st.alloc_w 0 (n_sections + 1) 0.0;
          st.depth <- 0)
        !registry);
  let st = state () in
  st.slice_start <- now;
  st.slice_alloc <- Gc.minor_words ();
  total_s := 0.0;
  enabled_at := now

let enable () =
  reset ();
  enabled := true

(* Charge the open slice to the innermost open section and start a new
   slice at [now]. *)
let charge_slice st now aw =
  let top = if st.depth = 0 then unattributed else st.stack.(st.depth - 1) in
  st.self_s.(top) <- st.self_s.(top) +. (now -. st.slice_start);
  st.alloc_w.(top) <- st.alloc_w.(top) +. (aw -. st.slice_alloc);
  st.slice_start <- now;
  st.slice_alloc <- aw

let disable () =
  if !enabled then begin
    let now = Unix.gettimeofday () in
    charge_slice (state ()) now (Gc.minor_words ());
    total_s := now -. !enabled_at;
    enabled := false
  end

let enter_on st s =
  let i = index s in
  charge_slice st (Unix.gettimeofday ()) (Gc.minor_words ());
  if st.depth < max_depth then begin
    st.stack.(st.depth) <- i;
    st.depth <- st.depth + 1
  end

let[@inline] enter s = if !enabled then enter_on (state ()) s

let exit_on st s =
  let i = index s in
  charge_slice st (Unix.gettimeofday ()) (Gc.minor_words ());
  (* pop until the matching section is popped: spans abandoned by an
     exception unwind are closed here, keeping the stack consistent *)
  let rec pop () =
    if st.depth > 0 then begin
      st.depth <- st.depth - 1;
      let top = st.stack.(st.depth) in
      st.calls.(top) <- st.calls.(top) + 1;
      if top <> i then pop ()
    end
  in
  pop ()

let[@inline] exit s = if !enabled then exit_on (state ()) s

let[@inline] tick s =
  if !enabled then begin
    let st = state () in
    let i = index s in
    st.ops.(i) <- st.ops.(i) + 1
  end

let span s f =
  if not !enabled then f ()
  else begin
    enter s;
    Fun.protect ~finally:(fun () -> exit s) f
  end

type row = {
  name : string;
  calls : int;
  ops : int;
  self_s : float;
  alloc_mw : float;
}

let all_sections =
  [ Engine; Protocol; Sync; Diff_create; Diff_apply; Vc; Net; Trace ]

let report () =
  (* a live profile (still enabled) reports up to the current instant *)
  if !enabled then begin
    let now = Unix.gettimeofday () in
    charge_slice (state ()) now (Gc.minor_words ());
    total_s := now -. !enabled_at
  end;
  (* aggregate every domain's figures; worker domains have been joined *)
  let calls = Array.make (n_sections + 1) 0 in
  let ops = Array.make (n_sections + 1) 0 in
  let self_s = Array.make (n_sections + 1) 0.0 in
  let alloc_w = Array.make (n_sections + 1) 0.0 in
  Mutex.protect reg_lock (fun () ->
      List.iter
        (fun (st : dstate) ->
          for i = 0 to n_sections do
            calls.(i) <- calls.(i) + st.calls.(i);
            ops.(i) <- ops.(i) + st.ops.(i);
            self_s.(i) <- self_s.(i) +. st.self_s.(i);
            alloc_w.(i) <- alloc_w.(i) +. st.alloc_w.(i)
          done)
        !registry);
  let rows =
    List.filter_map
      (fun s ->
        let i = index s in
        if calls.(i) = 0 && ops.(i) = 0 && self_s.(i) = 0.0 then None
        else
          Some
            {
              name = section_name s;
              calls = calls.(i);
              ops = ops.(i);
              self_s = self_s.(i);
              alloc_mw = alloc_w.(i) /. 1e6;
            })
      all_sections
  in
  let rows =
    if self_s.(unattributed) > 0.0 then
      rows
      @ [
          {
            name = "(unattributed)";
            calls = 0;
            ops = 0;
            self_s = self_s.(unattributed);
            alloc_mw = alloc_w.(unattributed) /. 1e6;
          };
        ]
    else rows
  in
  (rows, !total_s)

let pp_table ppf () =
  let rows, total = report () in
  let pct s = if total > 0.0 then 100.0 *. s /. total else 0.0 in
  Format.fprintf ppf "@[<v>%-16s %10s %12s %10s %7s %12s@,"
    "subsystem" "spans" "ops" "self(ms)" "%" "alloc(Mw)";
  Format.fprintf ppf "%s@," (String.make 70 '-');
  List.iter
    (fun r ->
      Format.fprintf ppf "%-16s %10d %12d %10.1f %6.1f%% %12.2f@," r.name
        r.calls r.ops (1e3 *. r.self_s) (pct r.self_s) r.alloc_mw)
    rows;
  Format.fprintf ppf "%s@," (String.make 70 '-');
  Format.fprintf ppf "%-16s %10s %12s %10.1f %6.1f%%@]" "total" "" ""
    (1e3 *. total) 100.0

let to_json () =
  let rows, total = report () in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"total_s\":";
  Buffer.add_string buf (Printf.sprintf "%.6f" total);
  Buffer.add_string buf ",\"sections\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%S,\"calls\":%d,\"ops\":%d,\"self_s\":%.6f,\"alloc_mw\":%.3f}"
           r.name r.calls r.ops r.self_s r.alloc_mw))
    rows;
  Buffer.add_string buf "]}";
  Buffer.contents buf

type section =
  | Engine
  | Protocol
  | Sync
  | Diff_create
  | Diff_apply
  | Vc
  | Net
  | Trace

let n_sections = 8

let index = function
  | Engine -> 0
  | Protocol -> 1
  | Sync -> 2
  | Diff_create -> 3
  | Diff_apply -> 4
  | Vc -> 5
  | Net -> 6
  | Trace -> 7

let section_name = function
  | Engine -> "engine+app"
  | Protocol -> "protocol"
  | Sync -> "sync"
  | Diff_create -> "diff-create"
  | Diff_apply -> "diff-apply"
  | Vc -> "vc"
  | Net -> "net"
  | Trace -> "trace-sink"

(* The extra slot absorbs slices when no span is open. *)
let unattributed = n_sections

let enabled = ref false
let calls = Array.make (n_sections + 1) 0
let ops = Array.make (n_sections + 1) 0
let self_s = Array.make (n_sections + 1) 0.0
let alloc_w = Array.make (n_sections + 1) 0.0

let max_depth = 64
let stack = Array.make max_depth 0
let depth = ref 0
let slice_start = ref 0.0
let slice_alloc = ref 0.0
let enabled_at = ref 0.0
let total_s = ref 0.0

let reset () =
  Array.fill calls 0 (n_sections + 1) 0;
  Array.fill ops 0 (n_sections + 1) 0;
  Array.fill self_s 0 (n_sections + 1) 0.0;
  Array.fill alloc_w 0 (n_sections + 1) 0.0;
  depth := 0;
  total_s := 0.0;
  let now = Unix.gettimeofday () in
  slice_start := now;
  slice_alloc := Gc.minor_words ();
  enabled_at := now

let enable () =
  reset ();
  enabled := true

(* Charge the open slice to the innermost open section and start a new
   slice at [now]. *)
let charge_slice now aw =
  let top = if !depth = 0 then unattributed else stack.(!depth - 1) in
  self_s.(top) <- self_s.(top) +. (now -. !slice_start);
  alloc_w.(top) <- alloc_w.(top) +. (aw -. !slice_alloc);
  slice_start := now;
  slice_alloc := aw

let disable () =
  if !enabled then begin
    let now = Unix.gettimeofday () in
    charge_slice now (Gc.minor_words ());
    total_s := now -. !enabled_at;
    enabled := false
  end

let enter_on s =
  let i = index s in
  charge_slice (Unix.gettimeofday ()) (Gc.minor_words ());
  if !depth < max_depth then begin
    stack.(!depth) <- i;
    incr depth
  end

let[@inline] enter s = if !enabled then enter_on s

let exit_on s =
  let i = index s in
  charge_slice (Unix.gettimeofday ()) (Gc.minor_words ());
  (* pop until the matching section is popped: spans abandoned by an
     exception unwind are closed here, keeping the stack consistent *)
  let rec pop () =
    if !depth > 0 then begin
      decr depth;
      let top = stack.(!depth) in
      calls.(top) <- calls.(top) + 1;
      if top <> i then pop ()
    end
  in
  pop ()

let[@inline] exit s = if !enabled then exit_on s

let[@inline] tick s =
  if !enabled then begin
    let i = index s in
    ops.(i) <- ops.(i) + 1
  end

let span s f =
  if not !enabled then f ()
  else begin
    enter s;
    Fun.protect ~finally:(fun () -> exit s) f
  end

type row = {
  name : string;
  calls : int;
  ops : int;
  self_s : float;
  alloc_mw : float;
}

let all_sections =
  [ Engine; Protocol; Sync; Diff_create; Diff_apply; Vc; Net; Trace ]

let report () =
  (* a live profile (still enabled) reports up to the current instant *)
  if !enabled then begin
    charge_slice (Unix.gettimeofday ()) (Gc.minor_words ());
    total_s := !slice_start -. !enabled_at
  end;
  let rows =
    List.filter_map
      (fun s ->
        let i = index s in
        if calls.(i) = 0 && ops.(i) = 0 && self_s.(i) = 0.0 then None
        else
          Some
            {
              name = section_name s;
              calls = calls.(i);
              ops = ops.(i);
              self_s = self_s.(i);
              alloc_mw = alloc_w.(i) /. 1e6;
            })
      all_sections
  in
  let rows =
    if self_s.(unattributed) > 0.0 then
      rows
      @ [
          {
            name = "(unattributed)";
            calls = 0;
            ops = 0;
            self_s = self_s.(unattributed);
            alloc_mw = alloc_w.(unattributed) /. 1e6;
          };
        ]
    else rows
  in
  (rows, !total_s)

let pp_table ppf () =
  let rows, total = report () in
  let pct s = if total > 0.0 then 100.0 *. s /. total else 0.0 in
  Format.fprintf ppf "@[<v>%-16s %10s %12s %10s %7s %12s@,"
    "subsystem" "spans" "ops" "self(ms)" "%" "alloc(Mw)";
  Format.fprintf ppf "%s@," (String.make 70 '-');
  List.iter
    (fun r ->
      Format.fprintf ppf "%-16s %10d %12d %10.1f %6.1f%% %12.2f@," r.name
        r.calls r.ops (1e3 *. r.self_s) (pct r.self_s) r.alloc_mw)
    rows;
  Format.fprintf ppf "%s@," (String.make 70 '-');
  Format.fprintf ppf "%-16s %10s %12s %10.1f %6.1f%%@]" "total" "" ""
    (1e3 *. total) 100.0

let to_json () =
  let rows, total = report () in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"total_s\":";
  Buffer.add_string buf (Printf.sprintf "%.6f" total);
  Buffer.add_string buf ",\"sections\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%S,\"calls\":%d,\"ops\":%d,\"self_s\":%.6f,\"alloc_mw\":%.3f}"
           r.name r.calls r.ops r.self_s r.alloc_mw))
    rows;
  Buffer.add_string buf "]}";
  Buffer.contents buf

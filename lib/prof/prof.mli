(** Lightweight self-profiling for the simulator's own host cost.

    The simulator measures {e virtual} time; this module measures the
    {e host} wall-clock and allocation cost of computing it, attributed
    per subsystem. It exists so that optimisation PRs argue from measured
    profiles instead of intuition (see [PERFORMANCE.md]).

    Design constraints:

    - {b Zero cost when disabled.} Every instrumentation site compiles to
      a single load-and-branch on {!val-enabled}; no closure, no
      allocation, no clock read. Profiling defaults to off, so the
      instrumented hot paths run at full speed in normal operation.
    - {b Self-time attribution.} Sections nest ([Engine] runs application
      code that faults into [Protocol] which creates diffs in
      [Diff_create]); an explicit span stack charges each wall-clock and
      allocation slice to the innermost open section, so the report's
      rows are exclusive (self) figures that sum to the enabled
      wall-clock.
    - {b No interference.} Reading the host clock never touches the
      simulated clocks, statistics or trace, so a profiled run produces
      bit-identical simulated results.

    Entry points: [dsm_run --prof] and the bench harness enable
    profiling, run, and print {!pp_table}. *)

(** The instrumented subsystems. *)
type section =
  | Engine  (** fiber scheduling plus un-instrumented application compute *)
  | Protocol  (** LRC fault handling, write notices, diff fetching *)
  | Sync  (** barrier, lock and push operations *)
  | Diff_create  (** twin comparison and diff merging *)
  | Diff_apply  (** applying diff payloads to pages and twins *)
  | Vc  (** vector-clock operations (op-counted, not timed) *)
  | Net  (** reliable-transport layer and cluster cost functions *)
  | Trace  (** event-sink emission (op-counted, not timed) *)

val section_name : section -> string

val enabled : bool ref
(** Exposed for call sites that must guard more than the [enter]/[exit]
    pair (e.g. avoid building an argument). Use {!enable}/{!disable} to
    change it. *)

val enable : unit -> unit
(** Reset all counters and start attributing time slices. *)

val disable : unit -> unit
(** Stop profiling; accumulated figures remain readable. *)

val reset : unit -> unit

val enter : section -> unit
(** Open a span. When profiling is disabled this is one branch. *)

val exit : section -> unit
(** Close the innermost span of this section. Robust against unwinding:
    if intervening spans were abandoned by an exception they are charged
    and popped. *)

val tick : section -> unit
(** Count one operation without timing it — for sub-microsecond paths
    (vector-clock ops, trace emission) where two clock reads would cost
    more than the operation. *)

val span : section -> (unit -> 'a) -> 'a
(** [span s f] = [enter s; f (); exit s], exception-safe. Convenience for
    call sites off the hot path (allocates a closure when enabled). *)

(** One report row; figures are exclusive (self) per section. *)
type row = {
  name : string;
  calls : int;  (** completed [enter]/[exit] spans *)
  ops : int;  (** {!tick} counts *)
  self_s : float;  (** exclusive wall-clock seconds *)
  alloc_mw : float;  (** exclusive minor-heap allocation, millions of words *)
}

val report : unit -> row list * float
(** All rows with any activity — including a synthetic ["(unattributed)"]
    row for time outside every span — plus the total enabled wall-clock
    in seconds. *)

val pp_table : Format.formatter -> unit -> unit
(** The per-subsystem self-time table printed by [dsm_run --prof]. *)

val to_json : unit -> string
(** The same report as a JSON object, embedded in [BENCH_<n>.json]. *)

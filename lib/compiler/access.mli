(** Regular-section access analysis (Section 4.1 of the paper).

    The program is segmented into regions of code between consecutive
    synchronization statements; for the steady state, the body of the
    outermost loop that contains synchronization is treated as a cycle, so
    the region following the {e last} barrier of the loop body wraps around
    to the statements before the first (this is how the paper's Jacobi
    example obtains [Fprec(p1) = b2]).

    For every region the analysis produces, per shared array, a symbolic RSD
    summarizing the accesses, with a tag from
    [{read}, {write}, {read,write}] plus the [write-first] attribute when
    every read is covered by a preceding definition in the region. *)

type tag = { read : bool; write : bool; write_first : bool }

type summary_entry = {
  arr : string;
  rsd : Sym_rsd.t;  (** union of all accesses *)
  reads : Sym_rsd.t option;  (** union of the read accesses *)
  writes : Sym_rsd.t option;  (** union of the write accesses *)
  tag : tag;
}

type region = {
  after_sync : int;  (** traversal index of the sync stmt opening the region *)
  before_sync : int;  (** index of the sync stmt closing the region *)
  summary : summary_entry list;
}

type result = {
  regions : region list;
  sync_count : int;
  cyclic : bool;  (** whether a steady-state loop was found *)
}

val index_syncs : Ir.program -> (int * Ir.stmt) list
(** Pre-order traversal indices of all synchronization statements; the
    indices used by {!region.after_sync}. *)

val analyze : Ir.program -> nprocs:int -> result

(** {2 Accessors used by the static lint} *)

val find_region_after : result -> int -> region option
(** The region opened by the sync statement with the given traversal
    index. *)

val find_region_before : result -> int -> region option
(** The region closed by the sync statement with the given traversal
    index (its preceding region). *)

val entry : region -> string -> summary_entry option
(** The region's summary entry for one shared array. *)

val body_summary : Ir.program -> nprocs:int -> summary_entry list
(** Per-array summary of {e every} shared access in the program body,
    ignoring region boundaries: the fallback access envelope for programs
    without a steady-state loop. *)

val pp_tag : Format.formatter -> tag -> unit
val pp_region : Format.formatter -> region -> unit

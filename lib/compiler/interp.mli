(** Execution of IR programs.

    [execute] runs a (possibly transformed) program on the DSM run-time,
    SPMD-style: each simulated processor runs the same body under its own
    bindings, and the inserted [Validate]/[Push] statements call into the
    augmented TreadMarks interface. [run_sequential] executes the program on
    plain arrays with the single-processor binding — the reference for
    correctness tests and for uniprocessor timings. *)

type outcome = {
  arrays : (string * Dsm_rsd.Section.array_info) list;
  elapsed_us : float;
  stats : Dsm_sim.Stats.t;
}

val execute :
  ?flop_us:float ->
  ?trace:Dsm_trace.Sink.t ->
  Dsm_sim.Config.t ->
  Ir.program ->
  Dsm_tmk.Tmk.system * outcome
(** Allocate the program's arrays in a fresh DSM system, run it on every
    processor, and report the parallel time and aggregate statistics.
    [trace] collects the protocol events of the run (used by the
    [dsm_lint] static-vs-dynamic differential check); later calls such as
    {!fetch_array} are not traced. *)

val fetch_array :
  Dsm_tmk.Tmk.system -> Dsm_rsd.Section.array_info -> float array
(** Read an array's contents through processor 0 (paying whatever faults are
    needed), flattened in column-major order. Call after {!execute}; note
    that it perturbs the statistics, so record them first. *)

val run_sequential : ?flop_us:float -> Ir.program -> (string * float array) list
(** Reference execution with [nprocs = 1] on local arrays; synchronization
    and validate statements are no-ops. *)

val seq_time_us : ?flop_us:float -> Ir.program -> float
(** Virtual uniprocessor time of the sequential execution (computation
    charges only), for speedup baselines. *)

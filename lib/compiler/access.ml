type tag = { read : bool; write : bool; write_first : bool }

type summary_entry = {
  arr : string;
  rsd : Sym_rsd.t;
  reads : Sym_rsd.t option;
  writes : Sym_rsd.t option;
  tag : tag;
}

type region = {
  after_sync : int;
  before_sync : int;
  summary : summary_entry list;
}

type result = { regions : region list; sync_count : int; cyclic : bool }

(* Pre-order numbering of synchronization statements. *)
let index_syncs (prog : Ir.program) =
  let acc = ref [] in
  let n = ref 0 in
  let rec go stmts =
    List.iter
      (fun s ->
        (match s with
        | Ir.For l -> go l.Ir.body
        | Ir.If_lt (_, _, bt, bf) ->
            go bt;
            go bf
        | _ ->
            if Ir.is_sync s then begin
              acc := (!n, s) :: !acc;
              incr n
            end))
      stmts
  in
  go prog.Ir.body;
  List.rev !acc

(* {1 Collecting accesses} *)

type raw_access = { ra_arr : string; ra_rsd : Sym_rsd.t; ra_write : bool }

(* Translate one affine index under the enclosing loop nest into a
   (lo, hi, stride) triple. Returns the dim and whether it is exact, plus
   the induction variable it uses (for the diagonal check). *)
let dim_of_index ~ivars idx =
  let used =
    List.filter (fun (v, _, _) -> Lin.coeff_of idx v <> 0) ivars
  in
  match used with
  | [] -> ((idx, idx, 1), true, None)
  | [ (v, lo, hi) ] ->
      let c = Lin.coeff_of idx v in
      let at_lo = Lin.subst idx v lo
      and at_hi = Lin.subst idx v hi in
      if c > 0 then ((at_lo, at_hi, c), true, Some v)
      else ((at_hi, at_lo, -c), true, Some v)
  | _ ->
      (* multiple induction variables: bound conservatively by substituting
         extremes per sign; flagged inexact *)
      let lo =
        List.fold_left
          (fun e (v, l, h) ->
            let c = Lin.coeff_of e v in
            Lin.subst e v (if c >= 0 then l else h))
          idx used
      and hi =
        List.fold_left
          (fun e (v, l, h) ->
            let c = Lin.coeff_of e v in
            Lin.subst e v (if c >= 0 then h else l))
          idx used
      in
      ((lo, hi, 1), false, None)

let rsd_of_ref ~ivars (r : Ir.aref) =
  let dims_info = List.map (dim_of_index ~ivars) r.Ir.aidx in
  let dims = List.map (fun (d, _, _) -> d) dims_info in
  let exact_dims = List.for_all (fun (_, e, _) -> e) dims_info in
  (* a(i,i): the same induction variable in two dimensions describes a
     diagonal; the box is an over-approximation *)
  let ivs = List.filter_map (fun (_, _, v) -> v) dims_info in
  let no_diag = List.length ivs = List.length (List.sort_uniq compare ivs) in
  Sym_rsd.make ~exact:(exact_dims && no_diag) dims

(* All accesses to shared arrays in a statement list, in execution order
   (loop bodies once, under their symbolic bounds). Private arrays are
   outside the analysis' variable set V. *)
let collect_accesses ~shared stmts =
  let acc = ref [] in
  let rec go_expr ~ivars = function
    | Ir.Fconst _ | Ir.Scalar _ -> ()
    | Ir.Load r ->
        if shared r.Ir.aname then
          acc :=
            { ra_arr = r.Ir.aname; ra_rsd = rsd_of_ref ~ivars r; ra_write = false }
            :: !acc
    | Ir.Bin (_, a, b) ->
        go_expr ~ivars a;
        go_expr ~ivars b
  in
  let rec go ~ivars stmts =
    List.iter
      (fun s ->
        match s with
        | Ir.For l -> go ~ivars:((l.Ir.ivar, l.Ir.lo, l.Ir.hi) :: ivars) l.Ir.body
        | Ir.If_lt (_, _, bt, bf) ->
            (* both branches may run: union their accesses, and flag them
               inexact — the analysis cannot prove which elements are
               touched (the paper treats conditionals as fetch points) *)
            let mark = List.length !acc in
            go ~ivars bt;
            go ~ivars bf;
            let rec demote i l =
              match l with
              | [] -> []
              | x :: tl when i < List.length !acc - mark ->
                  { x with ra_rsd = Sym_rsd.inexact x.ra_rsd } :: demote (i + 1) tl
              | _ -> l
            in
            acc := demote 0 !acc
        | Ir.Assign (lhs, rhs) ->
            go_expr ~ivars rhs;
            if shared lhs.Ir.aname then
              acc :=
                { ra_arr = lhs.Ir.aname; ra_rsd = rsd_of_ref ~ivars lhs; ra_write = true }
                :: !acc
        | Ir.Set_scalar (_, rhs) -> go_expr ~ivars rhs
        | Ir.Barrier _ | Ir.Lock_acquire _ | Ir.Lock_release _ | Ir.Validate _
        | Ir.Validate_w_sync _ | Ir.Push _ ->
            ())
      stmts
  in
  go ~ivars:[] stmts;
  List.rev !acc

(* {1 Region formation} *)

(* Find the outermost loop whose body contains top-level sync statements:
   the steady-state cycle. *)
let rec find_main_loop stmts =
  match stmts with
  | [] -> None
  | Ir.For l :: _ when List.exists Ir.is_sync l.Ir.body -> Some l
  | Ir.For l :: rest -> (
      match find_main_loop l.Ir.body with
      | Some _ as r -> r
      | None -> find_main_loop rest)
  | Ir.If_lt (_, _, bt, bf) :: rest -> (
      match find_main_loop bt with
      | Some _ as r -> r
      | None -> (
          match find_main_loop bf with
          | Some _ as r -> r
          | None -> find_main_loop rest))
  | _ :: rest -> find_main_loop rest

(* Split a statement list into (sync_index, stmts-following) segments.
   [first_index] is the traversal index of the first sync in the list. *)
let segments_of_body ~first_index stmts =
  let segs = ref [] in
  let current = ref [] in
  let cur_sync = ref None in
  let idx = ref first_index in
  List.iter
    (fun s ->
      if Ir.is_sync s then begin
        segs := (!cur_sync, List.rev !current) :: !segs;
        cur_sync := Some !idx;
        incr idx;
        current := []
      end
      else current := s :: !current)
    stmts;
  segs := (!cur_sync, List.rev !current) :: !segs;
  (* produces: leading chunk (before the first sync, cur_sync = None) and a
     chunk after each sync *)
  List.rev !segs

(* Summarize one region's accesses (Section 4.1 steps 2b-2d). *)
let summarize ~probe accesses =
  let arrays =
    List.map (fun a -> a.ra_arr) accesses |> List.sort_uniq compare
  in
  List.filter_map
    (fun arr ->
      let of_arr = List.filter (fun a -> a.ra_arr = arr) accesses in
      match of_arr with
      | [] -> None
      | first :: rest ->
          let union_rsd =
            List.fold_left
              (fun acc a -> Sym_rsd.union ~probe acc a.ra_rsd)
              first.ra_rsd rest
          in
          let read = List.exists (fun a -> not a.ra_write) of_arr in
          let write = List.exists (fun a -> a.ra_write) of_arr in
          (* write-first: every read is covered by the union of the writes
             that precede it in execution order *)
          let exposed = ref false in
          let written = ref None in
          List.iter
            (fun a ->
              if a.ra_write then
                written :=
                  Some
                    (match !written with
                    | None -> a.ra_rsd
                    | Some w -> Sym_rsd.union ~probe w a.ra_rsd)
              else
                match !written with
                | Some w when Sym_rsd.contains ~probe w a.ra_rsd -> ()
                | _ -> exposed := true)
            of_arr;
          let write_first = write && not !exposed in
          let union_of sel =
            match List.filter sel of_arr with
            | [] -> None
            | a0 :: rest ->
                Some
                  (List.fold_left
                     (fun acc a -> Sym_rsd.union ~probe acc a.ra_rsd)
                     a0.ra_rsd rest)
          in
          Some
            {
              arr;
              rsd = union_rsd;
              reads = union_of (fun a -> not a.ra_write);
              writes = union_of (fun a -> a.ra_write);
              tag = { read; write; write_first };
            })
    arrays

let analyze (prog : Ir.program) ~nprocs =
  let probe v = Ir.probe_env prog ~nprocs v in
  let shared name = List.mem_assoc name prog.Ir.arrays in
  let syncs = index_syncs prog in
  let sync_count = List.length syncs in
  match find_main_loop prog.Ir.body with
  | None ->
      (* linear program: regions between consecutive syncs *)
      let segs = segments_of_body ~first_index:0 prog.Ir.body in
      let rec pair = function
        | (Some i, stmts) :: ((Some j, _) :: _ as rest) ->
            { after_sync = i; before_sync = j; summary = summarize ~probe (collect_accesses ~shared stmts) }
            :: pair rest
        | _ :: rest -> pair rest
        | [] -> []
      in
      { regions = pair segs; sync_count; cyclic = false }
  | Some main ->
      (* traversal index of the first sync inside the main loop's body:
         the number of sync statements encountered before reaching it *)
      let count_syncs stmts =
        let c = ref 0 in
        let rec cnt ss =
          List.iter
            (fun s ->
              match s with
              | Ir.For ll -> cnt ll.Ir.body
              | _ -> if Ir.is_sync s then incr c)
            ss
        in
        cnt stmts;
        !c
      in
      let rec locate stmts acc =
        match stmts with
        | [] -> None
        | Ir.For l :: _ when l == main -> Some acc
        | Ir.For l :: rest -> (
            match locate l.Ir.body acc with
            | Some n -> Some n
            | None -> locate rest (acc + count_syncs l.Ir.body))
        | s :: rest -> locate rest (acc + if Ir.is_sync s then 1 else 0)
      in
      let first_index = Option.value ~default:0 (locate prog.Ir.body 0) in
      let segs = segments_of_body ~first_index main.Ir.body in
      (* cyclic: append the leading chunk (before the first sync of the
         body) to the trailing segment *)
      let leading, rest =
        match segs with
        | (None, stmts) :: rest -> (stmts, rest)
        | rest -> ([], rest)
      in
      let rest = Array.of_list rest in
      let nsegs = Array.length rest in
      let regions =
        Array.to_list
          (Array.mapi
             (fun k (sync, stmts) ->
               let sync = Option.get sync in
               let stmts, before =
                 if k = nsegs - 1 then
                   (* wrap around to the head of the loop body *)
                   (stmts @ leading, fst (Array.get rest 0) |> Option.get)
                 else (stmts, Option.get (fst (Array.get rest (k + 1))))
               in
               {
                 after_sync = sync;
                 before_sync = before;
                 summary = summarize ~probe (collect_accesses ~shared stmts);
               })
             rest)
      in
      { regions; sync_count; cyclic = true }

let find_region_after res idx =
  List.find_opt (fun r -> r.after_sync = idx) res.regions

let find_region_before res idx =
  List.find_opt (fun r -> r.before_sync = idx) res.regions

let entry region arr =
  List.find_opt (fun e -> e.arr = arr) region.summary

let body_summary (prog : Ir.program) ~nprocs =
  let probe v = Ir.probe_env prog ~nprocs v in
  let shared name = List.mem_assoc name prog.Ir.arrays in
  summarize ~probe (collect_accesses ~shared prog.Ir.body)

let pp_tag ppf t =
  let parts =
    (if t.read then [ "read" ] else [])
    @ (if t.write then [ "write" ] else [])
    @ if t.write_first then [ "write-first" ] else []
  in
  Format.fprintf ppf "{%s}" (String.concat ", " parts)

let pp_region ppf r =
  Format.fprintf ppf "@[<v2>region after sync #%d (until #%d):@,%a@]"
    r.after_sync r.before_sync
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf e ->
         Format.fprintf ppf "%a %a" (Sym_rsd.pp e.arr) e.rsd pp_tag e.tag))
    r.summary

type opts = {
  aggregate : bool;
  cons_elim : bool;
  sync_merge : bool;
  push : bool;
  async : bool;
}

let base =
  { aggregate = false; cons_elim = false; sync_merge = false; push = false; async = false }

let level_aggregate = { base with aggregate = true }
let level_cons_elim = { level_aggregate with cons_elim = true }
let level_sync_merge = { level_cons_elim with sync_merge = true }
let level_push = { level_sync_merge with push = true }
let all = level_push

type decision =
  | Keep
  | Replaced_by_push of Ir.push_call * Ir.vcall list
  | Validated of Ir.vcall list
  | Merged_with_sync of Ir.vcall list

(* Concrete section evaluation (contiguity, cross-processor dependence
   tests) lives in {!Conc}, shared with the static lint. *)
let contiguous = Conc.contiguous
let cross_overlap = Conc.cross_overlap

(* {1 The decision procedure (Section 4.2)} *)

let push_safe prog ~nprocs ~(before : Access.region) ~(after : Access.region) =
  (* No cross-processor anti- or output-dependence may cross the barrier
     outside the pushed (flow) data. *)
  let arrays =
    List.map (fun (e : Access.summary_entry) -> e.arr)
      (before.summary @ after.summary)
    |> List.sort_uniq compare
  in
  List.for_all
    (fun arr ->
      let find (r : Access.region) sel =
        List.find_opt (fun (e : Access.summary_entry) -> e.arr = arr) r.summary
        |> Fun.flip Option.bind sel
      in
      let read_before = find before (fun e -> e.Access.reads)
      and write_before = find before (fun e -> e.Access.writes)
      and write_after = find after (fun e -> e.Access.writes) in
      let anti =
        match (read_before, write_after) with
        | Some rb, Some wa -> cross_overlap prog ~nprocs arr rb wa
        | _ -> false
      in
      let output =
        match (write_before, write_after) with
        | Some wb, Some wa -> cross_overlap prog ~nprocs arr wb wa
        | _ -> false
      in
      not (anti || output))
    arrays

let decide prog ~nprocs ~opts ~probe ~sync_stmts (regions : Access.region list)
    idx stmt =
  let region_after =
    List.find_opt (fun (r : Access.region) -> r.after_sync = idx) regions
  in
  let region_before =
    List.find_opt (fun (r : Access.region) -> r.before_sync = idx) regions
  in
  let is_barrier i =
    match List.assoc_opt i sync_stmts with
    | Some (Ir.Barrier _) -> true
    | _ -> false
  in
  if not opts.aggregate then Keep
  else
    match region_after with
    | None -> Keep
    | Some after -> (
        let push_applies =
          opts.push
          && (match stmt with Ir.Barrier _ -> true | _ -> false)
          &&
          match region_before with
          | None -> false
          | Some before ->
              is_barrier before.after_sync
              && is_barrier after.before_sync
              && List.for_all
                   (fun (e : Access.summary_entry) -> e.rsd.Sym_rsd.exact)
                   (after.summary @ before.summary)
              && List.exists
                   (fun (e : Access.summary_entry) -> e.tag.Access.write)
                   before.summary
              && push_safe prog ~nprocs ~before ~after
        in
        (* Classify each summarized section: Some (`All call) when the
           consistency-disabling access types apply, Some (`Plain call)
           otherwise, None when the section's accesses are provably local
           (produced by the same processor in the preceding region) and a
           read-only Validate would be pure overhead. *)
        let classify (e : Access.summary_entry) =
          let t = e.tag in
          let exact = e.rsd.Sym_rsd.exact in
          let contig () = contiguous prog ~nprocs e.arr e.rsd in
          let writes_cover_all () =
            match e.Access.writes with
            | Some w -> Sym_rsd.contains ~probe w e.rsd
            | None -> false
          in
          let local_read_only () =
            (not t.Access.write)
            &&
            match region_before with
            | None -> false
            | Some before -> (
                match
                  List.find_opt
                    (fun (b : Access.summary_entry) -> b.arr = e.arr)
                    before.summary
                with
                | Some { Access.writes = Some wb; _ } -> (
                    match e.Access.reads with
                    | Some rd ->
                        (not (cross_overlap prog ~nprocs e.arr rd wb))
                        && Sym_rsd.contains ~probe wb rd
                    | None -> false)
                | _ -> false)
          in
          let mk a =
            { Ir.vsections = [ (e.arr, e.rsd) ]; vaccess = a; vasync = opts.async }
          in
          if opts.cons_elim && exact && t.Access.write then
            if t.Access.write_first && contig () && writes_cover_all () then
              Some (`All (mk Dsm_tmk.Tmk.Write_all))
            else if
              t.Access.read
              && (not t.Access.write_first)
              && contig ()
              && writes_cover_all ()
            then Some (`All (mk Dsm_tmk.Tmk.Read_write_all))
            else
              Some
                (`Plain
                  (mk (if t.Access.read then Dsm_tmk.Tmk.Read_write else Dsm_tmk.Tmk.Write)))
          else if local_read_only () then None
          else
            Some
              (`Plain
                (mk
                   (if t.Access.read && t.Access.write then Dsm_tmk.Tmk.Read_write
                    else if t.Access.write then Dsm_tmk.Tmk.Write
                    else Dsm_tmk.Tmk.Read)))
        in
        let classified = List.filter_map classify after.summary in
        let all_calls =
          List.filter_map (function `All c -> Some c | `Plain _ -> None) classified
        and plain_calls =
          List.filter_map (function `Plain c -> Some c | `All _ -> None) classified
        in
        if push_applies then begin
          let before = Option.get region_before in
          let pread =
            List.filter_map
              (fun (e : Access.summary_entry) ->
                Option.map (fun r -> (e.arr, r)) e.Access.reads)
              after.summary
          and pwrite =
            List.filter_map
              (fun (e : Access.summary_entry) ->
                Option.map (fun w -> (e.arr, w)) e.Access.writes)
              before.summary
          in
          Replaced_by_push ({ Ir.pread; pwrite }, all_calls)
        end
        else begin
          match (all_calls, plain_calls) with
          | [], [] -> Keep
          | alls, plains when opts.sync_merge && plains <> [] ->
              (* plain fetches merge with the synchronization; _ALL
                 validates still go after it *)
              Merged_with_sync (plains @ alls)
          | alls, plains -> Validated (plains @ alls)
        end)

let transform prog ~nprocs ~opts =
  let res = Access.analyze prog ~nprocs in
  let probe v = Ir.probe_env prog ~nprocs v in
  let sync_stmts = Access.index_syncs prog in
  let decisions =
    List.map
      (fun (idx, stmt) ->
        (idx, decide prog ~nprocs ~opts ~probe ~sync_stmts res.Access.regions idx stmt))
      sync_stmts
  in
  (* rebuild the AST *)
  let counter = ref 0 in
  let rec rebuild stmts =
    List.concat_map
      (fun s ->
        match s with
        | Ir.For l -> [ Ir.For { l with Ir.body = rebuild l.Ir.body } ]
        | Ir.If_lt (a, b, bt, bf) -> [ Ir.If_lt (a, b, rebuild bt, rebuild bf) ]
        | _ when Ir.is_sync s -> begin
            let idx = !counter in
            incr counter;
            match List.assoc idx decisions with
            | Keep -> [ s ]
            | Replaced_by_push (pc, calls) ->
                Ir.Push pc :: List.map (fun c -> Ir.Validate c) calls
            | Validated calls -> s :: List.map (fun c -> Ir.Validate c) calls
            | Merged_with_sync calls ->
                (* _ALL calls were appended after the merged ones; emit
                   w_sync calls before the sync and the rest after *)
                let merged, after =
                  List.partition
                    (fun (c : Ir.vcall) ->
                      match c.Ir.vaccess with
                      | Dsm_tmk.Tmk.Write_all | Dsm_tmk.Tmk.Read_write_all ->
                          false
                      | _ -> true)
                    calls
                in
                List.map (fun c -> Ir.Validate_w_sync c) merged
                @ [ s ]
                @ List.map (fun c -> Ir.Validate c) after
          end
        | _ -> [ s ])
      stmts
  in
  let body = rebuild prog.Ir.body in
  ({ prog with Ir.body }, decisions)

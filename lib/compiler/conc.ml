let array_info (prog : Ir.program) name =
  let extents =
    Ir.array_extents prog name
    |> List.map (Lin.eval (fun v -> List.assoc v prog.Ir.params))
    |> Array.of_list
  in
  { Dsm_rsd.Section.name; base = 0; elem_size = 8; extents }

let binding (prog : Ir.program) ~nprocs ~p =
  let bindings = prog.Ir.proc_bindings ~nprocs ~p in
  fun v ->
    match List.assoc_opt v prog.Ir.params with
    | Some x -> x
    | None -> List.assoc v bindings

let section ?info prog ~nprocs ~p name (srsd : Sym_rsd.t) =
  let info = match info with Some i -> i | None -> array_info prog name in
  Dsm_rsd.Section.make info (Sym_rsd.eval (binding prog ~nprocs ~p) srsd)

let ranges prog ~nprocs ~p name srsd =
  Dsm_rsd.Section.ranges (section prog ~nprocs ~p name srsd)

let contiguous prog ~nprocs name srsd =
  let rec all_procs p =
    p >= nprocs
    || (Dsm_rsd.Range.is_contiguous (ranges prog ~nprocs ~p name srsd)
       && all_procs (p + 1))
  in
  all_procs 0

let cross_overlap_witness prog ~nprocs name a b =
  let ra = Array.init nprocs (fun p -> ranges prog ~nprocs ~p name a)
  and rb = Array.init nprocs (fun p -> ranges prog ~nprocs ~p name b) in
  let found = ref None in
  for q = 0 to nprocs - 1 do
    for r = 0 to nprocs - 1 do
      if q <> r && !found = None then begin
        let ov = Dsm_rsd.Range.inter ra.(q) rb.(r) in
        if not (Dsm_rsd.Range.is_empty ov) then found := Some (q, r, ov)
      end
    done
  done;
  !found

let cross_overlap prog ~nprocs name a b =
  cross_overlap_witness prog ~nprocs name a b <> None

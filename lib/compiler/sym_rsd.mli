(** Symbolic regular section descriptors: RSDs whose bounds are linear
    expressions over loop-invariant variables (problem parameters and the
    processor-dependent partition bounds such as [begin], [end]).

    These are the descriptors the compiler computes at analysis time and
    plants in the transformed program; the run-time evaluates them with the
    concrete per-processor bindings (the paper's
    [Push(b\[1,M : begin(p)-1, end(p)+1\], ...)]). *)

type dim = { lo : Lin.t; hi : Lin.t; stride : int }
type t = { dims : dim list; exact : bool }

val make : ?exact:bool -> (Lin.t * Lin.t * int) list -> t

val union : probe:(string -> int) -> t -> t -> t
(** Per-dimension bounding union. Bound comparisons are decided
    symbolically when the difference is a known constant, and under the
    [probe] sample binding otherwise (in which case the result is flagged
    inexact, since the comparison is only tested, not proved). Equal-stride
    arguments whose lower bounds provably differ by a non-multiple of the
    stride (misaligned combs, e.g. red-black's odd reads joined with its
    even writes) also yield an inexact result: the union comb misses
    elements of one argument. *)

val contains : probe:(string -> int) -> t -> t -> bool
(** Conservative containment test, same comparison discipline. *)

val comparable : t -> t -> bool
(** All bound differences between the two descriptors are known constants:
    the condition under which a union is still an exact summary in the
    paper's (bounding) sense. *)

val inexact : t -> t
(** Same elements, flagged as not exactly describing the access set (used
    for accesses under conditionals). *)

val eval : (string -> int) -> t -> Dsm_rsd.Rsd.t
val pp : string -> Format.formatter -> t -> unit
(** [pp name] prints in the paper's notation, e.g.
    [b\[1:M, begin - 1:end + 1\]]. *)

module Tmk = Dsm_tmk.Tmk
module Section = Dsm_rsd.Section

type outcome = {
  arrays : (string * Section.array_info) list;
  elapsed_us : float;
  stats : Dsm_sim.Stats.t;
}

let default_flop_us = 0.05

(* variable lookup: induction variables (mutable), then processor bindings,
   then parameters *)
type env = {
  ivals : (string, int) Hashtbl.t;
  bindings : (string * int) list;
  params : (string * int) list;
}

let lookup env v =
  match Hashtbl.find_opt env.ivals v with
  | Some x -> x
  | None -> (
      match List.assoc_opt v env.bindings with
      | Some x -> x
      | None -> List.assoc v env.params)

let rec op_count = function
  | Ir.Fconst _ | Ir.Scalar _ | Ir.Load _ -> 0
  | Ir.Bin (_, a, b) -> 1 + op_count a + op_count b

let eval_lin env l = Lin.eval (lookup env) l

let addr_of info env (r : Ir.aref) =
  let idx = List.map (eval_lin env) r.Ir.aidx |> Array.of_list in
  Section.addr_of_index info idx

let sections_of_vcall infos env (vc : Ir.vcall) =
  List.map
    (fun (name, srsd) ->
      Section.make (List.assoc name infos) (Sym_rsd.eval (lookup env) srsd))
    vc.Ir.vsections

let execute ?(flop_us = default_flop_us) ?trace cfg (prog : Ir.program) =
  let sys = Tmk.make cfg in
  let nprocs = cfg.Dsm_sim.Config.nprocs in
  let params = prog.Ir.params in
  let infos =
    List.map
      (fun (name, extents) ->
        let ext =
          List.map (Lin.eval (fun v -> List.assoc v params)) extents
        in
        let info =
          match ext with
          | [ n ] -> Tmk.Alloc.array sys name Tmk.F64 ~dims:[ n ]
          | [ n0; n1 ] -> Tmk.Alloc.array sys name Tmk.F64 ~dims:[ n0; n1 ]
          | [ n0; n1; n2 ] -> Tmk.Alloc.array sys name Tmk.F64 ~dims:[ n0; n1; n2 ]
          | _ -> invalid_arg "Interp: arrays must have 1-3 dimensions"
        in
        (name, info))
      prog.Ir.arrays
  in
  Tmk.run ?trace sys (fun t ->
      let p = Tmk.pid t in
      let env =
        {
          ivals = Hashtbl.create 8;
          bindings = prog.Ir.proc_bindings ~nprocs ~p;
          params;
        }
      in
      let scalars = Hashtbl.create 8 in
      (* per-processor private (scratch) arrays, outside the DSM *)
      let privs =
        List.map
          (fun (name, extents) ->
            let ext =
              List.map (Lin.eval (fun v -> List.assoc v params)) extents
              |> Array.of_list
            in
            let n = Array.fold_left ( * ) 1 ext in
            (name, (ext, Array.make n 0.0)))
          prog.Ir.privates
      in
      let flat (exts : int array) (r : Ir.aref) =
        let ia = List.map (eval_lin env) r.Ir.aidx |> Array.of_list in
        let off = ref 0 in
        for d = Array.length exts - 1 downto 0 do
          off := (!off * exts.(d)) + ia.(d)
        done;
        !off
      in
      let rec eval_rexpr = function
        | Ir.Fconst x -> x
        | Ir.Scalar s -> (
            match Hashtbl.find_opt scalars s with Some x -> x | None -> 0.0)
        | Ir.Load r -> (
            match List.assoc_opt r.Ir.aname privs with
            | Some (exts, data) -> data.(flat exts r)
            | None ->
                Dsm_tmk.Shm.get_f64 t
                  (addr_of (List.assoc r.Ir.aname infos) env r))
        | Ir.Bin (op, a, b) -> (
            let x = eval_rexpr a
            and y = eval_rexpr b in
            match op with
            | Ir.Add -> x +. y
            | Ir.Sub -> x -. y
            | Ir.Mul -> x *. y
            | Ir.Div -> x /. y)
      in
      let rec exec stmts =
        List.iter
          (fun s ->
            match s with
            | Ir.For l ->
                let lo = eval_lin env l.Ir.lo
                and hi = eval_lin env l.Ir.hi in
                let saved = Hashtbl.find_opt env.ivals l.Ir.ivar in
                for i = lo to hi do
                  Hashtbl.replace env.ivals l.Ir.ivar i;
                  exec l.Ir.body
                done;
                (match saved with
                | Some x -> Hashtbl.replace env.ivals l.Ir.ivar x
                | None -> Hashtbl.remove env.ivals l.Ir.ivar)
            | Ir.If_lt (a, b, bt, bf) ->
                if eval_lin env a < eval_lin env b then exec bt else exec bf
            | Ir.Assign (lhs, rhs) ->
                let v = eval_rexpr rhs in
                (match List.assoc_opt lhs.Ir.aname privs with
                | Some (exts, data) -> data.(flat exts lhs) <- v
                | None ->
                    Dsm_tmk.Shm.set_f64 t
                      (addr_of (List.assoc lhs.Ir.aname infos) env lhs)
                      v);
                Tmk.charge t (float_of_int (1 + op_count rhs) *. flop_us)
            | Ir.Set_scalar (x, rhs) ->
                Hashtbl.replace scalars x (eval_rexpr rhs);
                Tmk.charge t (float_of_int (1 + op_count rhs) *. flop_us)
            | Ir.Barrier _ -> Tmk.barrier t
            | Ir.Lock_acquire id -> Tmk.lock_acquire t id
            | Ir.Lock_release id -> Tmk.lock_release t id
            | Ir.Validate vc ->
                Tmk.validate t ~async:vc.Ir.vasync
                  (sections_of_vcall infos env vc)
                  vc.Ir.vaccess
            | Ir.Validate_w_sync vc ->
                Tmk.validate_w_sync t ~async:vc.Ir.vasync
                  (sections_of_vcall infos env vc)
                  vc.Ir.vaccess
            | Ir.Push pc ->
                let sections_for pp names =
                  let benv =
                    {
                      ivals = Hashtbl.create 1;
                      bindings = prog.Ir.proc_bindings ~nprocs ~p:pp;
                      params;
                    }
                  in
                  List.map
                    (fun (name, srsd) ->
                      Section.make (List.assoc name infos)
                        (Sym_rsd.eval (lookup benv) srsd))
                    names
                in
                let read_sections =
                  Array.init nprocs (fun pp -> sections_for pp pc.Ir.pread)
                and write_sections =
                  Array.init nprocs (fun pp -> sections_for pp pc.Ir.pwrite)
                in
                Tmk.push t ~read_sections ~write_sections)
          stmts
      in
      exec prog.Ir.body);
  let outcome =
    {
      arrays = infos;
      elapsed_us = Tmk.elapsed sys;
      stats = Tmk.total_stats sys;
    }
  in
  (sys, outcome)

let fetch_array sys (info : Section.array_info) =
  let n = Array.fold_left ( * ) 1 info.Section.extents in
  let out = Array.make n 0.0 in
  Tmk.run sys (fun t ->
      if Tmk.pid t = 0 then
        for k = 0 to n - 1 do
          out.(k) <- Dsm_tmk.Shm.get_f64 t (info.Section.base + (8 * k))
        done);
  out

let run_sequential_full ?(flop_us = default_flop_us) (prog : Ir.program) =
  let params = prog.Ir.params in
  let time = ref 0.0 in
  let arrays =
    List.map
      (fun (name, extents) ->
        let ext = List.map (Lin.eval (fun v -> List.assoc v params)) extents in
        let n = List.fold_left ( * ) 1 ext in
        (name, (Array.of_list ext, Array.make n 0.0)))
      (prog.Ir.arrays @ prog.Ir.privates)
  in
  let env =
    {
      ivals = Hashtbl.create 8;
      bindings = prog.Ir.proc_bindings ~nprocs:1 ~p:0;
      params;
    }
  in
  let scalars = Hashtbl.create 8 in
  let flat (exts : int array) idx =
    let n = Array.length exts in
    let off = ref 0 in
    for d = n - 1 downto 0 do
      off := (!off * exts.(d)) + idx.(d)
    done;
    !off
  in
  let rec eval_rexpr = function
    | Ir.Fconst x -> x
    | Ir.Scalar s -> (
        match Hashtbl.find_opt scalars s with Some x -> x | None -> 0.0)
    | Ir.Load r ->
        let exts, data = List.assoc r.Ir.aname arrays in
        let idx = List.map (eval_lin env) r.Ir.aidx |> Array.of_list in
        data.(flat exts idx)
    | Ir.Bin (op, a, b) -> (
        let x = eval_rexpr a
        and y = eval_rexpr b in
        match op with
        | Ir.Add -> x +. y
        | Ir.Sub -> x -. y
        | Ir.Mul -> x *. y
        | Ir.Div -> x /. y)
  in
  let rec exec stmts =
    List.iter
      (fun s ->
        match s with
        | Ir.For l ->
            let lo = eval_lin env l.Ir.lo
            and hi = eval_lin env l.Ir.hi in
            let saved = Hashtbl.find_opt env.ivals l.Ir.ivar in
            for i = lo to hi do
              Hashtbl.replace env.ivals l.Ir.ivar i;
              exec l.Ir.body
            done;
            (match saved with
            | Some x -> Hashtbl.replace env.ivals l.Ir.ivar x
            | None -> Hashtbl.remove env.ivals l.Ir.ivar)
        | Ir.If_lt (a, b, bt, bf) ->
            if eval_lin env a < eval_lin env b then exec bt else exec bf
        | Ir.Assign (lhs, rhs) ->
            let v = eval_rexpr rhs in
            let exts, data = List.assoc lhs.Ir.aname arrays in
            let idx = List.map (eval_lin env) lhs.Ir.aidx |> Array.of_list in
            data.(flat exts idx) <- v;
            time := !time +. (float_of_int (1 + op_count rhs) *. flop_us)
        | Ir.Set_scalar (x, rhs) ->
            Hashtbl.replace scalars x (eval_rexpr rhs);
            time := !time +. (float_of_int (1 + op_count rhs) *. flop_us)
        | Ir.Barrier _ | Ir.Lock_acquire _ | Ir.Lock_release _ | Ir.Validate _
        | Ir.Validate_w_sync _ | Ir.Push _ ->
            ())
      stmts
  in
  exec prog.Ir.body;
  (List.map (fun (name, (_, data)) -> (name, data)) arrays, !time)

let run_sequential ?flop_us prog = fst (run_sequential_full ?flop_us prog)
let seq_time_us ?flop_us prog = snd (run_sequential_full ?flop_us prog)

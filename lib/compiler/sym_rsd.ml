type dim = { lo : Lin.t; hi : Lin.t; stride : int }
type t = { dims : dim list; exact : bool }

let make ?(exact = true) l =
  { dims = List.map (fun (lo, hi, stride) -> { lo; hi; stride }) l; exact }

(* Compare two bounds: [`Le], [`Ge] (provable), or [`Probed of bool]
   (decided only under the sample binding). *)
let cmp ~probe a b =
  match Lin.diff_const a b with
  | Some d -> if d <= 0 then `Le else `Ge
  | None -> `Probed (Lin.eval probe a <= Lin.eval probe b)

let min_bound ~probe a b =
  match cmp ~probe a b with
  | `Le -> (a, true)
  | `Ge -> (b, true)
  | `Probed le -> ((if le then a else b), false)

let max_bound ~probe a b =
  match cmp ~probe a b with
  | `Le -> (b, true)
  | `Ge -> (a, true)
  | `Probed le -> ((if le then b else a), false)

let union ~probe a b =
  if List.length a.dims <> List.length b.dims then
    invalid_arg "Sym_rsd.union: dimension mismatch";
  let exact = ref (a.exact && b.exact) in
  let dims =
    List.map2
      (fun da db ->
        let lo, p1 = min_bound ~probe da.lo db.lo in
        let hi, p2 = max_bound ~probe da.hi db.hi in
        if not (p1 && p2) then exact := false;
        let stride =
          if da.stride = db.stride then begin
            (* equal strides guarantee an exact comb union only when the two
               sections are aligned: a lower-bound difference that is not a
               multiple of the stride (red-black's odd reads u even writes)
               leaves elements of one argument outside the result comb *)
            (if da.stride > 1 then
               match Lin.diff_const da.lo db.lo with
               | Some d when d mod da.stride <> 0 -> exact := false
               | Some _ -> ()
               | None ->
                   (* alignment not provable; the probed bound comparison
                      already cleared [exact] *)
                   ());
            da.stride
          end
          else begin
            exact := false;
            1
          end
        in
        { lo; hi; stride })
      a.dims b.dims
  in
  { dims; exact = !exact }

let dim_contains ~probe da db =
  let le a b =
    match cmp ~probe a b with `Le -> true | `Ge -> Lin.equal a b | `Probed le -> le
  in
  le da.lo db.lo && le db.hi da.hi
  && (da.stride = 1 || (da.stride = db.stride && Lin.equal da.lo db.lo))

let contains ~probe a b =
  List.length a.dims = List.length b.dims
  && List.for_all2 (dim_contains ~probe) a.dims b.dims

let comparable a b =
  List.length a.dims = List.length b.dims
  && List.for_all2
       (fun da db ->
         Option.is_some (Lin.diff_const da.lo db.lo)
         && Option.is_some (Lin.diff_const da.hi db.hi)
         && da.stride = db.stride)
       a.dims b.dims

let inexact t = { t with exact = false }

let eval lookup t =
  Dsm_rsd.Rsd.make ~exact:t.exact
    (List.map (fun d -> (Lin.eval lookup d.lo, Lin.eval lookup d.hi, d.stride)) t.dims)

let pp name ppf t =
  let pp_dim ppf d =
    if d.stride = 1 then Format.fprintf ppf "%a:%a" Lin.pp d.lo Lin.pp d.hi
    else Format.fprintf ppf "%a:%a:%d" Lin.pp d.lo Lin.pp d.hi d.stride
  in
  Format.fprintf ppf "%s[%a]%s" name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_dim)
    t.dims
    (if t.exact then "" else "~")

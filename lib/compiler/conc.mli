(** Concrete instantiation of symbolic sections under per-processor
    bindings.

    The analysis and the transformation reason symbolically; every
    decision that depends on the actual partition (contiguity of a
    section, cross-processor overlap of two sections, the pages a
    processor can touch) instantiates the symbolic RSDs with each
    processor's [proc_bindings] and compares the resulting byte ranges.
    These helpers are shared by {!Transform} and by the [dsm_lint]
    static analyses. *)

val array_info : Ir.program -> string -> Dsm_rsd.Section.array_info
(** Synthetic per-array layout with base address 0: only intra-array
    comparisons are meaningful on the resulting ranges.
    @raise Not_found for an unknown array. *)

val binding : Ir.program -> nprocs:int -> p:int -> string -> int
(** Lookup of a loop-invariant variable: problem parameters first, then
    processor [p]'s bindings. *)

val section :
  ?info:Dsm_rsd.Section.array_info ->
  Ir.program -> nprocs:int -> p:int -> string -> Sym_rsd.t ->
  Dsm_rsd.Section.t
(** The symbolic descriptor instantiated for processor [p], applied to
    [info] (default: the synthetic base-0 layout of the named array). *)

val ranges :
  Ir.program -> nprocs:int -> p:int -> string -> Sym_rsd.t -> Dsm_rsd.Range.t
(** Byte ranges of {!section} under the synthetic base-0 layout. *)

val contiguous : Ir.program -> nprocs:int -> string -> Sym_rsd.t -> bool
(** Whether every processor's instantiation translates to a single
    contiguous range (the paper's condition for the [_ALL] access types). *)

val cross_overlap :
  Ir.program -> nprocs:int -> string -> Sym_rsd.t -> Sym_rsd.t -> bool
(** Whether the first section of any processor overlaps the second
    section of any {e different} processor. *)

val cross_overlap_witness :
  Ir.program -> nprocs:int -> string -> Sym_rsd.t -> Sym_rsd.t ->
  (int * int * Dsm_rsd.Range.t) option
(** Like {!cross_overlap}, reporting the first offending processor pair
    [(p, q)] (first section of [p], second section of [q]) and the
    overlapping byte ranges, for diagnostics. *)

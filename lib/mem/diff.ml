type t = (int * Bytes.t) list

module Prof = Dsm_prof.Prof

let empty = []
let is_empty t = t = []

(* TreadMarks compares twin and copy at 32-bit word granularity; diffs are
   runs of changed words. *)
(* Unchecked native-order reads for the word-compare scan: offsets are
   bounded by the loop condition, and equality of same-offset words is
   independent of byte order, so these are safe on any host. *)
external unsafe_get_32 : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external unsafe_get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"

let create ~twin ~current =
  Prof.enter Prof.Diff_create;
  let n = Bytes.length current in
  assert (Bytes.length twin = n && n mod 4 = 0);
  let words = n / 4 in
  let differs w =
    unsafe_get_32 twin (4 * w) <> unsafe_get_32 current (4 * w)
  in
  let segs = ref [] in
  let w = ref 0 in
  while !w < words do
    (* fast path: one 64-bit compare skips two equal words — the bulk of a
       page is usually unchanged *)
    if
      !w + 1 < words
      && unsafe_get_64 twin (4 * !w) = unsafe_get_64 current (4 * !w)
    then w := !w + 2
    else if differs !w then begin
      let start = !w in
      while !w < words && differs !w do
        incr w
      done;
      segs :=
        (4 * start, Bytes.sub current (4 * start) (4 * (!w - start))) :: !segs
    end
    else incr w
  done;
  Prof.exit Prof.Diff_create;
  List.rev !segs

let full page = [ (0, Bytes.copy page) ]

let of_range page ~off ~len =
  if len <= 0 then [] else [ (off, Bytes.sub page off len) ]

let apply t dst =
  Prof.enter Prof.Diff_apply;
  List.iter
    (fun (off, payload) ->
      Bytes.blit payload 0 dst off (Bytes.length payload))
    t;
  Prof.exit Prof.Diff_apply

(* Reusable scratch for [merge], grown to the largest page size seen:
   merging is frequent enough that two page-sized allocations per call
   showed up in allocation profiles. *)
let merge_scratch = ref Bytes.empty
let merge_mask = ref Bytes.empty

let merge older newer ~page_size =
  match (older, newer) with
  | [], d | d, [] -> d
  | _ ->
      Prof.enter Prof.Diff_create;
      if Bytes.length !merge_scratch < page_size then begin
        merge_scratch := Bytes.create page_size;
        merge_mask := Bytes.create page_size
      end;
      let scratch = !merge_scratch
      and mask = !merge_mask in
      Bytes.fill mask 0 page_size '\000';
      let overlay d =
        List.iter
          (fun (off, payload) ->
            let len = Bytes.length payload in
            Bytes.blit payload 0 scratch off len;
            Bytes.fill mask off len '\001')
          d
      in
      overlay older;
      overlay newer;
      let segs = ref [] in
      let i = ref 0 in
      while !i < page_size do
        if Bytes.unsafe_get mask !i = '\001' then begin
          let start = !i in
          while !i < page_size && Bytes.unsafe_get mask !i = '\001' do
            incr i
          done;
          segs := (start, Bytes.sub scratch start (!i - start)) :: !segs
        end
        else incr i
      done;
      Prof.exit Prof.Diff_create;
      List.rev !segs

let size_bytes t =
  List.fold_left (fun acc (_, p) -> acc + Bytes.length p) 0 t

let nsegments = List.length

let covers_page t ~page_size =
  match t with [ (0, p) ] -> Bytes.length p = page_size | _ -> false

let pp ppf t =
  Format.fprintf ppf "diff<%d segs, %d B>" (nsegments t) (size_bytes t)

type prot = No_access | Read_only | Read_write

type page = {
  data : Bytes.t;
  mutable prot : prot;
  mutable twin : Bytes.t option;
}

type t = { page_size : int; mutable pages : page option array }

let create ~page_size = { page_size; pages = Array.make 64 None }

let page_size t = t.page_size

let ensure_capacity t n =
  let len = Array.length t.pages in
  if n >= len then begin
    let len' = max (n + 1) (2 * len) in
    let pages = Array.make len' None in
    Array.blit t.pages 0 pages 0 len;
    t.pages <- pages
  end

let get_slow t n =
  ensure_capacity t n;
  match t.pages.(n) with
  | Some p -> p
  | None ->
      let p =
        { data = Bytes.make t.page_size '\000'; prot = Read_only; twin = None }
      in
      t.pages.(n) <- Some p;
      p

(* Every simulated load/store goes through here; the fast path is one
   bounds check and one array read. *)
let[@inline] get t n =
  let pages = t.pages in
  if n >= 0 && n < Array.length pages then
    match Array.unsafe_get pages n with Some p -> p | None -> get_slow t n
  else get_slow t n

let find t n = if n < Array.length t.pages then t.pages.(n) else None

let page_of_addr t addr = addr / t.page_size
let offset_in_page t addr = addr mod t.page_size

let make_twin p =
  match p.twin with
  | Some _ -> ()
  | None -> p.twin <- Some (Bytes.copy p.data)

let drop_twin p = p.twin <- None

(** Typed protocol-event records.

    One event per protocol-level action of the run-time: access misses,
    twin creation, diff creation/fetch/application, write-notice
    send/apply, barrier and lock operations, the augmented-interface calls
    (Validate, Validate_w_sync, Push) and broadcasts. Events carry the
    acting processor, its virtual clock and a vector-clock snapshot, so a
    trace fully determines the happens-before order the LRC protocol must
    respect (see {!Check}). *)

type kind =
  | Page_fault of { page : int; write : bool; fetch : bool }
      (** an access to an invalid (or, for [write], read-only) page;
          [fetch] is true when servicing it pulled remote diffs, false
          when the page was satisfiable locally *)
  | Twin of { page : int }
      (** a pristine copy of [page] was made before its first write in
          the current interval (the source of later diffs) *)
  | Diff_create of { page : int; seq : int; bytes : int; write_all : bool }
      (** the twin/current comparison for [page] in interval [seq]
          produced a [bytes]-byte diff; [write_all] marks a
          compiler-certified whole-page write (no twin was needed and
          the diff supersedes all earlier ones for the page) *)
  | Diff_fetch of { writer : int; page : int; after : int; upto : int }
      (** request to [writer] for its diffs of [page] with interval
          seqs in the entitlement window [(after, upto]] — [after] is
          the newest seq already applied locally for the page, [upto]
          the newest known through received write notices *)
  | Diff_apply of {
      writer : int;
      page : int;
      order : int;
      upto_seq : int;
      bytes : int;
    }
      (** [bytes] of fetched diffs from [writer] were applied to
          [page]; [order] is the writer's vector-clock sum at creation
          (the checker verifies ascending application order) and
          [upto_seq] the newest interval seq the batch covers *)
  | Fetch_done of { page : int; full : bool }
      (** all outstanding fetches for [page] completed; [full] means a
          whole-page copy was transferred instead of diffs *)
  | Notice_send of { seq : int; pages : int list }
      (** at a release, the processor closed interval [seq] and made
          write notices for [pages] available to others *)
  | Notice_apply of { writer : int; seq : int; page : int; invalidated : bool }
      (** a write notice from [writer]'s interval [seq] reached this
          processor; [invalidated] is true when [page] is inaccessible
          after the notice is recorded (it was, or became, invalid) and
          false when a redundant notice left it accessible *)
  | Barrier_arrive of { epoch : int }
  | Barrier_depart of { epoch : int }
  | Lock_request of { lock : int }
  | Lock_grant of { lock : int; grantor : int; notices : int }
      (** [grantor] handed over [lock] along with [notices] write
          notices covering the intervals the requester had not seen *)
  | Validate of { access : string; npages : int; async : bool; w_sync : bool }
      (** an augmented-interface call declared an [access] ("READ",
          "WRITE", "READ&WRITE", "WRITE_ALL", "READ&WRITE_ALL") over
          [npages] pages; [async] marks an overlapped prefetch,
          [w_sync] the combined validate-with-synchronization form *)
  | Push_send of { dst : int; bytes : int; seq : int }
      (** compiler-directed push of this processor's interval-[seq]
          diffs ([bytes] bytes) to [dst] *)
  | Push_recv of { src : int; bytes : int; seq : int; pages : int list }
      (** receipt of a push from [src]; [pages] may later be rolled
          back if a concurrent writer invalidates the speculation *)
  | Push_rollback of { page : int; writer : int; seq : int }
      (** a pushed copy of [page] was discarded because [writer]'s
          interval [seq] proved the push stale *)
  | Broadcast of { bytes : int; requesters : int list }
      (** hybrid update: one writer broadcast [bytes] of diffs to
          [requesters] instead of serving individual fetches *)
  | Home_flush of { page : int; home : int; seq : int; bytes : int }
      (** HLRC: at a release, the writer eagerly flushed its diffs of
          [page] — covering its intervals up to [seq], [bytes] bytes of
          payload — into the copy held by the page's [home] processor *)
  | Home_fetch of { page : int; home : int; bytes : int }
      (** HLRC: a faulting processor replaced its copy of [page] with
          the full up-to-date copy fetched from [home] *)
  | Inval_send of { page : int; dst : int }
      (** invalidate protocol: the directory asked sharer [dst] to drop
          its copy of [page] before granting a writer exclusivity *)
  | Inval_ack of { page : int; writer : int }
      (** invalidate protocol: the emitting processor dropped its copy
          of [page] in answer to an {!Inval_send}, granting [writer]
          exclusivity *)
  | Downgrade of { page : int; reader : int }
      (** invalidate protocol: the exclusive owner's copy of [page] was
          demoted to shared so [reader] could fetch current contents *)
  | Proto_switch of { page : int; proto : string; owner : int; epoch : int }
      (** adaptive backend: at barrier [epoch], [page] switched to
          protocol [proto] ("lrc", "hlrc" or "inval") with designated
          [owner] (home under hlrc, holder under inval, -1 under lrc) *)
  | Plan_applied of { lo_page : int; hi_page : int; proto : string; owner : int }
      (** a static protocol-placement directive ([dsm_run --plan]) seeded
          pages [lo_page..hi_page] with protocol [proto] ("lrc", "hlrc"
          or "inval") and designated [owner] before the first access —
          one event per directive, emitted by processor 0 *)
  | Obj_region of { base_page : int; npages : int; obj_size : int; count : int }
      (** object-granularity allocation ({!Dsm_tmk.Tmk.Alloc.objs}): a
          region of [count] packed objects of [obj_size] bytes over pages
          [base_page..base_page+npages-1] — one event per region, emitted
          by processor 0 at start of run *)
  | Obj_skip of { page : int; slots : int list }
      (** a validate of the object [slots] skipped fetching [page]: the
          page is stale at page granularity but every validated object is
          disjoint from the stale slots (false sharing, no true
          communication) *)
  | Crash of { epoch : int }
      (** fault tolerance: the emitting processor fail-stopped at barrier
          [epoch], losing all volatile state *)
  | Restart of { epoch : int; ckpt : int }
      (** fault tolerance: the processor rejoined at barrier [epoch] from
          checkpoint [ckpt] (0 = the implicit initial checkpoint) *)
  | Suspect of { peer : int; attempts : int }
      (** fault tolerance: the emitter declared [peer] crashed after
          [attempts] unanswered retransmissions *)
  | Quorum_write of { page : int; seq : int; acks : int list; needed : int }
      (** hlrc-r: the release-time flush of [page] up to interval [seq]
          was applied by replica members [acks]; sound iff
          [List.length acks >= needed] *)
  | Quorum_read of { page : int; from : int; acks : int list; needed : int }
      (** hlrc-r: a miss on [page] was served from replica [from], chosen
          among live members [acks] by watermark dominance *)
  | Ckpt of { id : int; ckpt_epoch : int }
      (** fault tolerance: the emitter checkpointed its vector clock and
          per-page watermarks at barrier [ckpt_epoch] *)
  | Msg_drop of { msg : int; src : int; dst : int; attempt : int }
      (** a delivery attempt of reliable-layer message [msg] was lost *)
  | Msg_dup of { msg : int; src : int; dst : int }
      (** the network duplicated a delivery; the receiver suppressed it *)
  | Retransmit of { msg : int; src : int; dst : int; attempt : int }
      (** the reliable layer resent [msg] as delivery attempt [attempt] *)
  | Timeout_fire of {
      msg : int;
      src : int;
      dst : int;
      attempt : int;
      backoff_us : float;
    }  (** the retransmission timer for attempt [attempt] expired *)
  | Ack of { msg : int; src : int; dst : int; attempts : int }
      (** [dst] acknowledged [msg] after [attempts] delivery attempts *)

type t = {
  id : int;  (** global emission order *)
  proc : int;
  time : float;  (** virtual clock of [proc] at emission *)
  vc : int array;  (** vector-clock snapshot of [proc] *)
  kind : kind;
}

val kind_name : kind -> string

val to_json : t -> string
(** One-line JSON object (the [--trace out.jsonl] format of [dsm_run]). *)

exception Parse_error of string

val of_json : string -> t
(** Parse one line of {!to_json} output back into an event.
    @raise Parse_error on malformed input or unknown event kinds. *)

type parse_result =
  | Event of t
  | Unknown_kind of string
      (** structurally valid line whose ["ev"] names a kind this parser
          does not know (e.g. a trace written by a newer binary) *)
  | Malformed of string  (** parse failure with detail *)

val parse_line : string -> parse_result
(** Non-raising form of {!of_json} for offline trace consumers. *)

type load = {
  events : t list;  (** every successfully parsed event, in file order *)
  warnings : (int * string) list;  (** (1-based line number, message) *)
  unknown_kinds : int;  (** lines skipped for an unrecognized kind *)
}

val load_jsonl : string -> load
(** Load a [--trace] JSONL file tolerantly: unknown event kinds become
    counted warnings carrying the line number, and a truncated final line
    (crash mid-write) becomes a clean warning instead of an exception.
    Raises [Sys_error] only if the file cannot be opened. *)

val pp : Format.formatter -> t -> unit

(** Typed protocol-event records.

    One event per protocol-level action of the run-time: access misses,
    twin creation, diff creation/fetch/application, write-notice
    send/apply, barrier and lock operations, the augmented-interface calls
    (Validate, Validate_w_sync, Push) and broadcasts. Events carry the
    acting processor, its virtual clock and a vector-clock snapshot, so a
    trace fully determines the happens-before order the LRC protocol must
    respect (see {!Check}). *)

type kind =
  | Page_fault of { page : int; write : bool; fetch : bool }
  | Twin of { page : int }
  | Diff_create of { page : int; seq : int; bytes : int; write_all : bool }
  | Diff_fetch of { writer : int; page : int; after : int; upto : int }
  | Diff_apply of {
      writer : int;
      page : int;
      order : int;
      upto_seq : int;
      bytes : int;
    }
  | Fetch_done of { page : int; full : bool }
  | Notice_send of { seq : int; pages : int list }
  | Notice_apply of { writer : int; seq : int; page : int; invalidated : bool }
  | Barrier_arrive of { epoch : int }
  | Barrier_depart of { epoch : int }
  | Lock_request of { lock : int }
  | Lock_grant of { lock : int; grantor : int; notices : int }
  | Validate of { access : string; npages : int; async : bool; w_sync : bool }
  | Push_send of { dst : int; bytes : int; seq : int }
  | Push_recv of { src : int; bytes : int; seq : int; pages : int list }
  | Push_rollback of { page : int; writer : int; seq : int }
  | Broadcast of { bytes : int; requesters : int list }
  | Msg_drop of { msg : int; src : int; dst : int; attempt : int }
      (** a delivery attempt of reliable-layer message [msg] was lost *)
  | Msg_dup of { msg : int; src : int; dst : int }
      (** the network duplicated a delivery; the receiver suppressed it *)
  | Retransmit of { msg : int; src : int; dst : int; attempt : int }
      (** the reliable layer resent [msg] as delivery attempt [attempt] *)
  | Timeout_fire of {
      msg : int;
      src : int;
      dst : int;
      attempt : int;
      backoff_us : float;
    }  (** the retransmission timer for attempt [attempt] expired *)
  | Ack of { msg : int; src : int; dst : int; attempts : int }
      (** [dst] acknowledged [msg] after [attempts] delivery attempts *)

type t = {
  id : int;  (** global emission order *)
  proc : int;
  time : float;  (** virtual clock of [proc] at emission *)
  vc : int array;  (** vector-clock snapshot of [proc] *)
  kind : kind;
}

val kind_name : kind -> string

val to_json : t -> string
(** One-line JSON object (the [--trace out.jsonl] format of [dsm_run]). *)

exception Parse_error of string

val of_json : string -> t
(** Parse one line of {!to_json} output back into an event.
    @raise Parse_error on malformed input or unknown event kinds. *)

val pp : Format.formatter -> t -> unit

(** Per-processor ring-buffer event sink.

    The run-time carries a [Sink.t option]; instrumentation sites test it
    before building an event, so a disabled trace costs one comparison and
    allocates nothing. Emission never touches the simulated clocks or the
    statistics counters: enabling tracing cannot perturb the cost model
    (verified by the determinism property test). *)

type t

val default_capacity : int
(** 262144 events per processor. *)

val create : ?capacity:int -> nprocs:int -> unit -> t
(** One ring of [capacity] events per processor; the oldest events are
    dropped on overflow (see {!dropped}). *)

val nprocs : t -> int
val capacity : t -> int

val emit : t -> proc:int -> time:float -> vc:int array -> Event.kind -> unit
(** Append an event to [proc]'s ring, stamping it with the next global
    emission id. [vc] is captured by reference: pass a fresh copy. *)

val emitted : t -> int
(** Total events emitted, including dropped ones. *)

val dropped : t -> int
(** Events lost to ring overflow (0 means {!events} is the full trace). *)

val dropped_of : t -> int -> int
(** [dropped_of t p]: events of processor [p] lost to its ring's
    overflow — lets consumers report drops per processor instead of
    silently under-counting coverage. *)

val proc_events : t -> int -> Event.t list
(** Surviving events of one processor, oldest first. *)

val events : t -> Event.t list
(** All surviving events in global emission order. *)

val clear : t -> unit

val write_jsonl : out_channel -> t -> unit
(** One JSON object per line, in global emission order. *)

(* LRC invariant checker: replay a trace and assert the protocol's
   correctness conditions over the reconstructed per-processor state.

   The checker mirrors, per (processor, page), the applied/known
   watermark arrays the run-time keeps in [page_meta], driven purely by
   the events, and checks:

   - vector clocks are monotone per processor, the own component changes
     only at a release, and no processor's view of another ever exceeds
     the intervals that processor has actually released
     (merge-consistency: the simulator is sequential, so emission order
     is consistent with happens-before);
   - interval sequence numbers are consecutive;
   - write notices are only applied for foreign, already-released
     intervals, and a notice that leaves the page with unapplied foreign
     modifications invalidates the local copy;
   - diffs of one writer apply in non-decreasing interval/stamp order,
     and within one fetch batch a page's diffs apply in non-decreasing
     happens-before stamp order across writers;
   - [applied.(q) <= known.(q)] at all times (an accumulated diff span
     extending past the requested watermark implies the corresponding
     notices, and raises [known] with [applied]);
   - an access miss that must make its page consistent completes an
     unrestricted fetch for that page before the processor's next
     protocol action, and an unrestricted fetch leaves no foreign
     interval known-but-unapplied (no processor reads a page with an
     unapplied happens-before-ordered write notice; lock-grant
     piggy-backed fetches restricted to the grantor's local diffs and
     Push/WRITE_ALL windows are the explicit relaxations);
   - partially pushed pages may roll their watermark back, but only to
     the interval just below the pushed one;
   - barrier arrivals and departures alternate with consecutive epochs;
   - reliable-transport discipline over the unreliable-network events:
     retransmission attempts are consecutive and only follow a drop of
     the outstanding attempt, every dropped attempt is eventually
     retransmitted, each message is acknowledged exactly once (a second
     ack would mean a duplicate was applied twice), the ack's attempt
     count matches the transmissions the trace records, and no message
     is left undelivered at end of trace. *)

module Wmap = Dsm_util.Wmap
module Pset = Dsm_util.Pset

type violation = { event : Event.t option; rule : string; detail : string }

let pp_violation ppf v =
  (match v.event with
  | Some e ->
      Format.fprintf ppf "event #%d (p%d, %s, t=%.1f): " e.Event.id
        e.Event.proc
        (Event.kind_name e.Event.kind)
        e.Event.time
  | None -> ());
  Format.fprintf ppf "[%s] %s" v.rule v.detail

(* Sparse per-writer tables (see Dsm_util.Wmap): a page has few writers,
   and the dense [int array]s of length [nprocs] this replaces made the
   checker O(nprocs) per (processor, page) pair — the reason checked runs
   used to stop at 64 processors. Absent keys read as 0; [last_order]
   distinguishes "never applied" via {!Wmap.find_opt}. *)
type page_state = {
  applied : Wmap.t;
  known : Wmap.t;
  last_order : Wmap.t;  (* per writer, last applied diff stamp *)
  last_upto : Wmap.t;  (* per writer, last applied diff end interval *)
  mutable batch_order : int;  (* max stamp applied since the last fetch *)
}

(* applied(q) := max applied(q) known(q) for every writer q — the sparse
   square-up replacing the dense [for q = 0 to nprocs - 1] scans (only
   explicit [known] entries can raise [applied]). *)
let raise_applied_to_known s =
  Wmap.iter
    (fun q v -> if Wmap.get s.applied q < v then Wmap.set s.applied q v)
    s.known

type proc_state = {
  mutable last_vc : int array option;
  mutable own : int;  (* own interval counter = vc.(p) *)
  mutable last_time : float;
  mutable pending_fetch : int option;  (* faulting page awaiting Fetch_done *)
  mutable in_barrier : bool;
  mutable epoch : int;  (* barriers departed *)
  mutable crashed : bool;  (* between a [Crash] and its [Restart] *)
  mutable ckpt_epoch_hi : int;  (* newest checkpointed barrier epoch *)
  pages : (int, page_state) Hashtbl.t;
}

(* Reliable-delivery state of one transport-level message. The first
   transmission is implicit (attempt 1, no event); retransmissions,
   drops and the final ack are explicit events. *)
type msg_state = {
  m_src : int;
  m_dst : int;
  mutable max_attempt : int;  (* highest transmission attempt recorded *)
  mutable dropped_hi : int;  (* highest attempt reported dropped *)
  mutable acked : bool;
}

(* Single-writer invalidate tracking of one page, opened lazily by the
   first [Inval_send]/[Inval_ack]/[Downgrade] naming it — LRC-only traces
   never allocate any. [iv_transfer] carries the one sanctioned window in
   which a second valid copy may transiently exist: a write-miss fetches
   the current contents from the exclusive owner just before the
   invalidation round that moves ownership to the fetcher. *)
type iv_state = {
  mutable iv_default_invalid : bool;
      (* validity of processors not listed in [iv_flipped]: false for a
         lazily-opened page (everyone starts valid), true for a page
         installed by a protocol switch or plan directive (only the
         owner's copy is mapped) *)
  mutable iv_flipped : Pset.t;  (* procs whose validity differs *)
  mutable iv_pending : int list;  (* dsts of unacknowledged Inval_sends *)
  mutable iv_excl : int option;  (* writer holding the only valid copy *)
  mutable iv_transfer : int option;
      (* proc that fetched under exclusivity and must take ownership next *)
}

(* per proc: copy invalidated, not refetched *)
let iv_invalid s q = Pset.mem q s.iv_flipped <> s.iv_default_invalid

let iv_set_invalid s q b =
  if b = s.iv_default_invalid then s.iv_flipped <- Pset.remove q s.iv_flipped
  else s.iv_flipped <- Pset.add q s.iv_flipped

type state = {
  nprocs : int;
  procs : proc_state array;
  msgs : (int, msg_state) Hashtbl.t;  (* reliable-layer msg id -> state *)
  homes : (int, int) Hashtbl.t;  (* HLRC: page -> home, learned from events *)
  iv : (int, iv_state) Hashtbl.t;  (* invalidate-protocol page tracking *)
  objs : (int, int) Hashtbl.t;
      (* object-granularity regions: page -> obj_size, learned from the
         [Obj_region] declarations at start of trace *)
  mutable violations : violation list;
  mutable nchecked : int;
}

let page_state st p page =
  let ps = st.procs.(p) in
  match Hashtbl.find_opt ps.pages page with
  | Some s -> s
  | None ->
      let s =
        {
          applied = Wmap.create ();
          known = Wmap.create ();
          last_order = Wmap.create ();
          last_upto = Wmap.create ();
          batch_order = min_int;
        }
      in
      Hashtbl.replace ps.pages page s;
      s

let create ~nprocs =
  {
    nprocs;
    procs =
      Array.init nprocs (fun _ ->
          {
            last_vc = None;
            own = 0;
            last_time = 0.0;
            pending_fetch = None;
            in_barrier = false;
            epoch = 0;
            crashed = false;
            ckpt_epoch_hi = 0;
            pages = Hashtbl.create 256;
          });
    msgs = Hashtbl.create 256;
    homes = Hashtbl.create 64;
    iv = Hashtbl.create 64;
    objs = Hashtbl.create 16;
    violations = [];
    nchecked = 0;
  }

let iv_state st page =
  match Hashtbl.find_opt st.iv page with
  | Some s -> s
  | None ->
      let s =
        {
          iv_default_invalid = false;
          iv_flipped = Pset.empty;
          iv_pending = [];
          iv_excl = None;
          iv_transfer = None;
        }
      in
      Hashtbl.replace st.iv page s;
      s

(* Remove one occurrence of [x] (the pending list may name a dst twice
   across overlapping rounds). *)
let rec remove_one x = function
  | [] -> []
  | y :: tl -> if y = x then tl else y :: remove_one x tl

let fail st event rule fmt =
  Printf.ksprintf
    (fun detail ->
      st.violations <- { event = Some event; rule; detail } :: st.violations)
    fmt

(* Look up (or open) the reliable-delivery state of message [msg],
   checking that every event of the message names the same flow. *)
let msg_state st e ~msg ~src ~dst =
  match Hashtbl.find_opt st.msgs msg with
  | Some ms ->
      if ms.m_src <> src || ms.m_dst <> dst then
        fail st e "net-endpoints"
          "message %d seen as p%d->p%d but first recorded as p%d->p%d" msg src
          dst ms.m_src ms.m_dst;
      ms
  | None ->
      let ms =
        { m_src = src; m_dst = dst; max_attempt = 1; dropped_hi = 0;
          acked = false }
      in
      Hashtbl.replace st.msgs msg ms;
      ms

(* HLRC: a page's home is static; the first home-flush/fetch event naming
   a page fixes it, and every later event must agree. *)
let home_of st e ~page ~home =
  (match Hashtbl.find_opt st.homes page with
  | Some h ->
      if h <> home then
        fail st e "home-consistent"
          "page %d homed at p%d but an earlier event homed it at p%d" page
          home h
  | None ->
      if home < 0 || home >= st.nprocs then
        fail st e "home-range" "home p%d out of range" home
      else Hashtbl.replace st.homes page home);
  home

(* A protocol action at which an un-serviced access miss would mean the
   faulting access ran on an inconsistent copy. *)
let closes_fault_window (k : Event.kind) =
  match k with
  | Page_fault _ | Notice_send _ | Barrier_arrive _ | Lock_request _
  | Push_send _ | Validate _ ->
      true
  | _ -> false

let step st (e : Event.t) =
  st.nchecked <- st.nchecked + 1;
  let p = e.proc in
  if p < 0 || p >= st.nprocs then
    fail st e "proc-range" "processor %d out of range" p
  else begin
    let ps = st.procs.(p) in
    (* {2 Vector-clock rules} *)
    if Array.length e.vc <> st.nprocs then
      fail st e "vc-shape" "vector clock has %d components, expected %d"
        (Array.length e.vc) st.nprocs
    else begin
      (match ps.last_vc with
      | Some prev ->
          Array.iteri
            (fun q x ->
              if e.vc.(q) < x then
                fail st e "vc-monotone"
                  "component %d regressed %d -> %d" q x e.vc.(q))
            prev
      | None -> ());
      for q = 0 to st.nprocs - 1 do
        if q <> p && e.vc.(q) > st.procs.(q).own then
          fail st e "vc-merge"
            "view of p%d is %d but p%d has only released interval %d" q
            e.vc.(q) q st.procs.(q).own
      done;
      (match e.kind with
      | Notice_send _ -> ()
      | _ ->
          if e.vc.(p) <> ps.own then
            fail st e "vc-own"
              "own component moved %d -> %d outside a release" ps.own e.vc.(p));
      if e.time < ps.last_time -. 1e-9 then
        fail st e "time-monotone" "clock regressed %.3f -> %.3f" ps.last_time
          e.time;
      ps.last_time <- Float.max ps.last_time e.time;
      ps.last_vc <- Some (Array.copy e.vc)
    end;
    (* {2 Access-miss service window} *)
    (match ps.pending_fetch with
    | Some page when closes_fault_window e.kind ->
        fail st e "fault-serviced"
          "page %d faulted but no unrestricted fetch completed before this \
           action"
          page;
        ps.pending_fetch <- None
    | _ -> ());
    (* {2 Per-kind rules} *)
    match e.kind with
    | Notice_send { seq; pages } ->
        if seq <> ps.own + 1 then
          fail st e "interval-seq" "released interval %d after %d" seq ps.own;
        if e.vc.(p) <> seq then
          fail st e "interval-seq" "own vc component %d /= released seq %d"
            e.vc.(p) seq;
        ps.own <- seq;
        List.iter
          (fun page ->
            let s = page_state st p page in
            Wmap.set s.known p (max (Wmap.get s.known p) seq);
            Wmap.set s.applied p (max (Wmap.get s.applied p) seq))
          pages
    | Notice_apply { writer; seq; page; invalidated } ->
        if writer = p then
          fail st e "notice-writer" "notice from self for page %d" page;
        if writer >= 0 && writer < st.nprocs && seq > st.procs.(writer).own
        then
          fail st e "notice-future"
            "notice for p%d interval %d but only %d released" writer seq
            st.procs.(writer).own;
        let s = page_state st p page in
        Wmap.set s.known writer (max (Wmap.get s.known writer) seq);
        if Wmap.get s.known writer > Wmap.get s.applied writer
           && not invalidated
        then
          fail st e "notice-invalidate"
            "page %d has unapplied interval %d of p%d but stayed readable"
            page (Wmap.get s.known writer) writer
    | Diff_create { seq; _ } ->
        if seq > ps.own then
          fail st e "diff-future"
            "materialized through interval %d but only %d released" seq ps.own
    | Diff_fetch { writer; page; after; upto } ->
        if writer = p then
          fail st e "fetch-writer" "fetch from self for page %d" page;
        if upto < after then
          fail st e "fetch-window" "empty window after=%d upto=%d" after upto;
        let s = page_state st p page in
        if after > Wmap.get s.applied writer then
          fail st e "fetch-window"
            "request after=%d beyond mirrored applied=%d for p%d page %d"
            after (Wmap.get s.applied writer) writer page;
        Wmap.set s.applied writer (max (Wmap.get s.applied writer) upto);
        (* an accumulated span past the requested watermark implies the
           spanned notices *)
        Wmap.set s.known writer
          (max (Wmap.get s.known writer) (Wmap.get s.applied writer))
    | Diff_apply { writer; page; order; upto_seq; bytes = _ } ->
        let s = page_state st p page in
        (match Wmap.find_opt s.last_order writer with
        | Some prev when order < prev ->
            fail st e "apply-order-writer"
              "p%d's diff for page %d applied with stamp %d after %d" writer
              page order prev
        | _ -> ());
        if upto_seq < Wmap.get s.last_upto writer then
          fail st e "apply-order-writer"
            "p%d's diff for page %d covers up to %d after %d" writer page
            upto_seq (Wmap.get s.last_upto writer);
        if order < s.batch_order then
          fail st e "apply-order-page"
            "page %d: stamp %d applied after %d within one fetch batch" page
            order s.batch_order;
        Wmap.set s.last_order writer order;
        Wmap.set s.last_upto writer (max (Wmap.get s.last_upto writer) upto_seq);
        s.batch_order <- max s.batch_order order;
        Wmap.set s.applied writer (max (Wmap.get s.applied writer) upto_seq);
        Wmap.set s.known writer
          (max (Wmap.get s.known writer) (Wmap.get s.applied writer))
    | Fetch_done { page; full } ->
        let s = page_state st p page in
        s.batch_order <- min_int;
        (match ps.pending_fetch with
        | Some pg when pg = page -> ps.pending_fetch <- None
        | _ -> ());
        (match Hashtbl.find_opt st.iv page with
        | Some iv ->
            (* the page is governed by the invalidate protocol: a full
               fetch installs the owner's current copy, which covers
               everything anyone knows of the page (like [Home_fetch]) *)
            raise_applied_to_known s;
            (match iv.iv_transfer with
            | Some q when q <> p ->
                fail st e "inval-single-writer"
                  "p%d fetched page %d while p%d's fetch under exclusivity \
                   had not yet taken ownership"
                  p page q;
                iv.iv_transfer <- None
            | _ -> ());
            iv_set_invalid iv p false;
            (match iv.iv_excl with
            | Some w when w <> p ->
                (* only legal as the data leg of an ownership transfer:
                   the next invalidation round must name [p] the writer *)
                iv.iv_transfer <- Some p
            | _ -> ())
        | None ->
            if full then
              Wmap.iter
                (fun q v ->
                  if q <> p && Wmap.get s.applied q < v then
                    fail st e "fetch-complete"
                      "page %d left with p%d applied=%d < known=%d after an \
                       unrestricted fetch"
                      page q (Wmap.get s.applied q) v)
                s.known)
    | Page_fault { page; fetch; _ } ->
        if fetch then ps.pending_fetch <- Some page
    | Twin _ -> ()
    | Barrier_arrive { epoch } ->
        if ps.in_barrier then
          fail st e "barrier-alternate" "second arrival without departure";
        if epoch <> ps.epoch then
          fail st e "barrier-epoch" "arrived at epoch %d, expected %d" epoch
            ps.epoch;
        ps.in_barrier <- true
    | Barrier_depart { epoch } ->
        if not ps.in_barrier then
          fail st e "barrier-alternate" "departure without arrival";
        if epoch <> ps.epoch then
          fail st e "barrier-epoch" "departed epoch %d, expected %d" epoch
            ps.epoch;
        ps.in_barrier <- false;
        ps.epoch <- ps.epoch + 1
    | Lock_request _ -> ()
    | Lock_grant { grantor; _ } ->
        if grantor < 0 || grantor >= st.nprocs then
          fail st e "lock-grantor" "grantor %d out of range" grantor
    | Validate _ -> ()
    | Push_send { dst; seq; _ } ->
        if dst = p then fail st e "push-self" "push to self";
        if seq > ps.own then
          fail st e "push-future" "pushed interval %d but only %d released"
            seq ps.own
    | Push_recv { src; seq; pages; _ } ->
        if src = p then fail st e "push-self" "push from self";
        List.iter
          (fun page ->
            let s = page_state st p page in
            Wmap.set s.known src (max (Wmap.get s.known src) seq);
            Wmap.set s.applied src (max (Wmap.get s.applied src) seq))
          pages
    | Push_rollback { page; writer; seq } ->
        let s = page_state st p page in
        if Wmap.get s.applied writer <> seq then
          fail st e "push-rollback"
            "rollback of p%d on page %d from %d but applied=%d" writer page
            seq (Wmap.get s.applied writer);
        Wmap.set s.applied writer (seq - 1)
    | Broadcast _ -> ()
    (* {2 Single-writer invalidate rules} *)
    | Inval_send { page; dst } ->
        let s = iv_state st page in
        if dst < 0 || dst >= st.nprocs then
          fail st e "inval-dst-range" "invalidation target p%d out of range"
            dst
        else if iv_invalid s dst then
          fail st e "inval-redundant"
            "invalidation of page %d sent to p%d whose copy is already \
             invalid"
            page dst;
        s.iv_pending <- dst :: s.iv_pending
    | Inval_ack { page; writer } ->
        let s = iv_state st page in
        if not (List.mem p s.iv_pending) then
          fail st e "inval-ack-unrequested"
            "p%d acknowledged an invalidation of page %d that was never sent \
             to it"
            p page
        else s.iv_pending <- remove_one p s.iv_pending;
        if iv_invalid s p then
          fail st e "inval-ack-stale"
            "p%d acknowledged an invalidation of page %d while already \
             invalid (it held a copy the directory did not track)"
            p page;
        if writer < 0 || writer >= st.nprocs then
          fail st e "inval-writer-range" "writer p%d out of range" writer
        else begin
          (* the soundness rule of the write path: exclusivity may only be
             granted over a current copy, so a writer whose own copy was
             invalidated must have completed its fetch first *)
          if iv_invalid s writer then
            fail st e "inval-writer-stale"
              "page %d granted exclusively to p%d whose copy is invalid"
              page writer;
          (match s.iv_transfer with
          | Some q when q <> writer ->
              fail st e "inval-single-writer"
                "p%d fetched page %d under exclusivity but ownership moved \
                 to p%d"
                q page writer
          | _ -> ());
          s.iv_transfer <- None;
          s.iv_excl <- Some writer
        end;
        iv_set_invalid s p true
    | Downgrade { page; reader = _ } ->
        let s = iv_state st page in
        if iv_invalid s p then
          fail st e "inval-downgrade-stale"
            "p%d downgraded page %d but its copy is invalid" p page;
        (match s.iv_transfer with
        | Some q ->
            fail st e "inval-single-writer"
              "page %d downgraded while p%d's fetch under exclusivity had \
               not yet taken ownership"
              page q;
            s.iv_transfer <- None
        | None -> ());
        s.iv_excl <- None
    | Proto_switch { page; proto; owner; epoch = _ } ->
        (* epochal reset at global quiescence: the adaptive backend makes
           the page current everywhere before changing its governing
           protocol, so the per-protocol tracking restarts from scratch
           and every processor's watermarks are squared up *)
        Hashtbl.remove st.iv page;
        Hashtbl.remove st.homes page;
        if owner < 0 || owner >= st.nprocs then
          fail st e "proto-owner-range" "owner p%d out of range" owner
        else if proto = "hlrc" then Hashtbl.replace st.homes page owner
        else if proto = "inval" then begin
          (* install the directory view eagerly: only the owner's copy is
             mapped after the switch, so the page's later [Fetch_done]s are
             judged by the invalidate rules (the generic fetch-complete
             rule would misfire on write notices that straggle in at the
             departures following the switch — the switch itself already
             distributed their data) *)
          let s =
            {
              iv_default_invalid = true;
              iv_flipped = Pset.singleton owner;
              iv_pending = [];
              iv_excl = None;
              iv_transfer = None;
            }
          in
          Hashtbl.replace st.iv page s
        end;
        (* square up only the processors that have state for the page:
           absent page states are all-zero and trivially squared *)
        Array.iter
          (fun qs ->
            match Hashtbl.find_opt qs.pages page with
            | Some s ->
                raise_applied_to_known s;
                s.batch_order <- min_int
            | None -> ())
          st.procs
    | Plan_applied { lo_page; hi_page; proto; owner } ->
        (* a static placement directive seeded pages [lo..hi] before the
           first access: install the same per-protocol tracking a
           [Proto_switch] would, so the seeded state is judged by the
           right rules from the first event on. At start of run all
           watermarks are zero, so there is nothing to square up. *)
        if lo_page < 0 || hi_page < lo_page then
          fail st e "plan-page-range" "empty directive range [%d, %d]" lo_page
            hi_page;
        if proto <> "lrc" && proto <> "hlrc" && proto <> "inval" then
          fail st e "plan-proto" "unknown protocol %S" proto;
        if proto <> "lrc" && (owner < 0 || owner >= st.nprocs) then
          fail st e "plan-owner-range" "owner p%d out of range" owner
        else
          for page = lo_page to max lo_page hi_page do
            Hashtbl.remove st.iv page;
            Hashtbl.remove st.homes page;
            if proto = "hlrc" then Hashtbl.replace st.homes page owner
            else if proto = "inval" then
              Hashtbl.replace st.iv page
                {
                  iv_default_invalid = true;
                  iv_flipped = Pset.singleton owner;
                  iv_pending = [];
                  iv_excl = None;
                  iv_transfer = None;
                }
          done
    (* {2 Object-granularity rules} *)
    | Obj_region { base_page; npages; obj_size; count } ->
        if base_page < 0 || npages < 1 || count < 1 then
          fail st e "obj-region-shape"
            "degenerate region: base_page=%d npages=%d count=%d" base_page
            npages count;
        if obj_size < 8 || obj_size mod 8 <> 0 then
          fail st e "obj-region-size" "object size %d is not a positive \
                                       multiple of 8" obj_size;
        for page = base_page to base_page + max 1 npages - 1 do
          Hashtbl.replace st.objs page obj_size
        done
    | Obj_skip { page; slots } ->
        if not (Hashtbl.mem st.objs page) then
          fail st e "obj-skip-region"
            "page %d skipped but no object region was declared for it" page;
        (match slots with
        | [] -> fail st e "obj-skip-slots" "page %d skipped with no slots" page
        | s0 :: _ ->
            let rec ascending = function
              | a :: (b :: _ as tl) -> a < b && ascending tl
              | _ -> true
            in
            if s0 < 0 || not (ascending slots) then
              fail st e "obj-skip-slots"
                "page %d: slot list is not strictly ascending and \
                 non-negative"
                page);
        (* a skip is only legal while the page is genuinely stale: with
           every foreign interval applied, the run-time's validate would
           have found nothing to fetch and nothing to skip *)
        let s = page_state st p page in
        let stale = ref false in
        Wmap.iter
          (fun q v -> if q <> p && v > Wmap.get s.applied q then stale := true)
          s.known;
        if not !stale then
          fail st e "obj-skip-current"
            "page %d skipped but the mirror shows no unapplied foreign \
             interval"
            page
    (* {2 HLRC home rules} *)
    | Home_flush { page; home; seq; bytes = _ } ->
        let home = home_of st e ~page ~home in
        if home = p then
          fail st e "home-flush-self" "p%d flushed page %d to itself" p page;
        if seq > ps.own then
          fail st e "home-flush-future"
            "flushed through interval %d but only %d released" seq ps.own;
        if home >= 0 && home < st.nprocs && home <> p then begin
          let s = page_state st home page in
          if seq <= Wmap.get s.applied p then
            fail st e "home-flush-stale"
              "flush of page %d covers up to interval %d but the home copy \
               already has %d"
              page seq (Wmap.get s.applied p);
          Wmap.set s.applied p (max (Wmap.get s.applied p) seq);
          Wmap.set s.known p
            (max (Wmap.get s.known p) (Wmap.get s.applied p))
        end
    | Home_fetch { page; home; bytes } ->
        let home = home_of st e ~page ~home in
        let s = page_state st p page in
        if home = p then begin
          (* local revalidation: the home's own copy needs no transfer
             (it only looks stale after a conservative push rollback) *)
          if bytes <> 0 then
            fail st e "home-fetch-self"
              "p%d 'fetched' %d bytes of page %d from itself" p bytes page
        end
        else if home >= 0 && home < st.nprocs then begin
          if bytes <= 0 then
            fail st e "home-fetch-bytes" "empty page transfer for page %d"
              page;
          (* the HLRC soundness condition: every released interval is
             flushed before its notice can travel, so the home copy must
             already cover everything the fetcher knows of the page *)
          let sh = page_state st home page in
          Wmap.iter
            (fun q v ->
              if v > Wmap.get sh.applied q then
                fail st e "home-fetch-current"
                  "page %d: fetcher knows p%d interval %d but the home copy \
                   only has %d"
                  page q v (Wmap.get sh.applied q))
            s.known
        end;
        (* a full-page install leaves nothing known-but-unapplied *)
        raise_applied_to_known s;
        s.batch_order <- min_int
    (* {2 Fault-tolerance rules}

       Replica copies are tracked through the members' own page states: a
       [Quorum_write] advances the writer's watermark in every
       acknowledging member's state (like [Home_flush] does for the single
       home), a [Crash] wipes the crashed processor's states, and a
       [Quorum_read] — both the miss path and the restart repair — must
       name a source whose copy covers everything the reader knows. Chained
       together these prove the headline guarantee: a write acknowledged by
       a quorum survives any crash of a minority, because some surviving
       member's state still carries its watermark and the read rule
       rejects any source without it. *)
    | Crash { epoch = _ } ->
        if ps.crashed then
          fail st e "crash-alternate" "second crash without a restart";
        ps.crashed <- true;
        (* all volatile state is gone: watermarks restart from zero (the
           restore/repair events rebuild them) and the vector clock may
           regress to the checkpointed value *)
        Hashtbl.reset ps.pages;
        ps.pending_fetch <- None;
        ps.last_vc <- None
    | Restart { epoch = _; ckpt } ->
        if not ps.crashed then
          fail st e "crash-alternate" "restart without a crash";
        ps.crashed <- false;
        if ckpt < 0 then
          fail st e "restart-ckpt" "restart from negative checkpoint %d" ckpt
    | Suspect { peer; attempts } ->
        if peer < 0 || peer >= st.nprocs then
          fail st e "suspect-range" "suspected peer p%d out of range" peer;
        if peer = p then fail st e "suspect-range" "p%d suspected itself" p;
        if attempts < 1 then
          fail st e "suspect-attempts"
            "suspicion after %d delivery attempts" attempts
    | Quorum_write { page; seq; acks; needed } ->
        if needed < 1 then
          fail st e "quorum-write-under" "write quorum of %d" needed;
        if List.length acks < needed then
          fail st e "quorum-write-under"
            "flush of page %d acknowledged by %d replicas, quorum is %d" page
            (List.length acks) needed;
        if seq > ps.own then
          fail st e "quorum-write-future"
            "flushed through interval %d but only %d released" seq ps.own;
        if List.sort_uniq compare acks <> List.sort compare acks then
          fail st e "quorum-write-acks"
            "replica acknowledged the flush of page %d twice" page;
        List.iter
          (fun a ->
            if a < 0 || a >= st.nprocs then
              fail st e "quorum-write-acks" "acknowledging replica p%d out \
                                             of range" a
            else begin
              let s = page_state st a page in
              Wmap.set s.applied p (max (Wmap.get s.applied p) seq);
              Wmap.set s.known p
                (max (Wmap.get s.known p) (Wmap.get s.applied p))
            end)
          acks
    | Quorum_read { page; from; acks; needed } ->
        if needed < 1 then
          fail st e "quorum-read-under" "read quorum of %d" needed;
        if List.length acks < needed then
          fail st e "quorum-read-under"
            "read of page %d chose among %d live replicas, quorum is %d" page
            (List.length acks) needed;
        if from < 0 || from >= st.nprocs then
          fail st e "quorum-read-source" "source replica p%d out of range"
            from
        else begin
          if not (List.mem from acks) then
            fail st e "quorum-read-source"
              "page %d read from p%d, which is not among the live replicas"
              page from;
          (* the fault-tolerant analog of home-fetch-current: the chosen
             copy must dominate everything the reader knows — this is the
             rule a lost acknowledged write trips after a crash *)
          let s = page_state st p page in
          let sf = page_state st from page in
          Wmap.iter
            (fun q v ->
              if v > Wmap.get sf.applied q then
                fail st e "quorum-read-current"
                  "page %d: reader knows p%d interval %d but replica p%d \
                   only has %d"
                  page q v from (Wmap.get sf.applied q))
            s.known;
          (* the install adopts the source's copy and watermarks *)
          List.iter
            (fun q ->
              let a =
                max (Wmap.get s.applied q)
                  (max (Wmap.get s.known q) (Wmap.get sf.applied q))
              in
              Wmap.set s.applied q a;
              if Wmap.get s.known q < a then Wmap.set s.known q a)
            (List.sort_uniq compare
               (Wmap.keys s.applied @ Wmap.keys s.known @ Wmap.keys sf.applied));
          s.batch_order <- min_int
        end
    | Ckpt { id; ckpt_epoch } ->
        if id < 1 then
          fail st e "ckpt-id" "checkpoint id %d (0 is the implicit initial \
                               checkpoint)" id;
        if ckpt_epoch <= ps.ckpt_epoch_hi then
          fail st e "ckpt-monotone"
            "checkpoint at epoch %d after one at epoch %d" ckpt_epoch
            ps.ckpt_epoch_hi
        else ps.ckpt_epoch_hi <- ckpt_epoch
    (* {2 Reliable-transport rules} *)
    | Msg_drop { msg; src; dst; attempt } ->
        let ms = msg_state st e ~msg ~src ~dst in
        if ms.acked then
          fail st e "net-after-ack"
            "message %d dropped after it was acknowledged" msg;
        if attempt <> ms.max_attempt then
          fail st e "net-drop-attempt"
            "message %d: drop of attempt %d but outstanding attempt is %d" msg
            attempt ms.max_attempt;
        ms.dropped_hi <- max ms.dropped_hi attempt
    | Timeout_fire { msg; src; dst; attempt; backoff_us = _ } ->
        let ms = msg_state st e ~msg ~src ~dst in
        if ms.acked then
          fail st e "net-after-ack"
            "message %d timed out after it was acknowledged" msg;
        if attempt <> ms.dropped_hi then
          fail st e "net-timeout-order"
            "message %d: timeout for attempt %d but last dropped attempt is %d"
            msg attempt ms.dropped_hi
    | Retransmit { msg; src; dst; attempt } ->
        let ms = msg_state st e ~msg ~src ~dst in
        if ms.acked then
          fail st e "net-after-ack"
            "message %d retransmitted after it was acknowledged" msg;
        if attempt <> ms.max_attempt + 1 then
          fail st e "net-retransmit-order"
            "message %d: retransmission is attempt %d but %d attempts were \
             recorded"
            msg attempt ms.max_attempt;
        if ms.dropped_hi < ms.max_attempt then
          fail st e "net-retransmit-spurious"
            "message %d retransmitted but attempt %d was never dropped" msg
            ms.max_attempt;
        ms.max_attempt <- max ms.max_attempt attempt
    | Msg_dup { msg; src; dst } ->
        let ms = msg_state st e ~msg ~src ~dst in
        if ms.acked then
          fail st e "net-after-ack"
            "message %d duplicated after it was acknowledged" msg
    | Ack { msg; src; dst; attempts } ->
        let ms = msg_state st e ~msg ~src ~dst in
        if ms.acked then
          fail st e "net-ack-once"
            "message %d acknowledged twice (a duplicate was applied)" msg;
        if attempts <> ms.max_attempt then
          fail st e "net-ack-attempts"
            "message %d acknowledged after %d attempts but the trace records \
             %d transmissions"
            msg attempts ms.max_attempt;
        if ms.dropped_hi >= ms.max_attempt then
          fail st e "net-ack-dropped"
            "message %d acknowledged but its last attempt %d was dropped and \
             never retransmitted"
            msg ms.max_attempt;
        ms.acked <- true
  end;
  (* {2 Global watermark invariant} *)
  (match e.kind with
  | Notice_send _ | Notice_apply _ | Diff_fetch _ | Diff_apply _
  | Push_recv _ | Push_rollback _ -> (
      let page =
        match e.kind with
        | Notice_send _ -> None (* several pages; all raised known>=applied *)
        | Notice_apply { page; _ }
        | Diff_fetch { page; _ }
        | Diff_apply { page; _ }
        | Push_rollback { page; _ } ->
            Some page
        | Push_recv _ -> None
        | _ -> None
      in
      match page with
      | Some page when e.proc >= 0 && e.proc < st.nprocs ->
          let s = page_state st e.proc page in
          Wmap.iter
            (fun q v ->
              if v > Wmap.get s.known q then
                fail st e "watermark" "page %d: applied=%d > known=%d for p%d"
                  page v (Wmap.get s.known q) q)
            s.applied
      | _ -> ())
  | _ -> ())

let finish st =
  Array.iteri
    (fun p ps ->
      if ps.in_barrier then
        st.violations <-
          {
            event = None;
            rule = "barrier-alternate";
            detail = Printf.sprintf "p%d arrived at epoch %d and never departed"
                p ps.epoch;
          }
          :: st.violations;
      if ps.crashed then
        st.violations <-
          {
            event = None;
            rule = "crash-alternate";
            detail = Printf.sprintf "p%d crashed and never restarted" p;
          }
          :: st.violations)
    st.procs;
  (* Every invalidation round must complete within the trace: an unacked
     send means a sharer kept a copy the directory believes dead, and a
     fetch under exclusivity that never took ownership is a stale read. *)
  Hashtbl.fold (fun page s acc -> (page, s) :: acc) st.iv []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (page, s) ->
         List.iter
           (fun dst ->
             st.violations <-
               {
                 event = None;
                 rule = "inval-unacked";
                 detail =
                   Printf.sprintf
                     "invalidation of page %d sent to p%d was never \
                      acknowledged"
                     page dst;
               }
               :: st.violations)
           (List.sort_uniq compare s.iv_pending);
         match s.iv_transfer with
         | Some q ->
             st.violations <-
               {
                 event = None;
                 rule = "inval-single-writer";
                 detail =
                   Printf.sprintf
                     "p%d fetched page %d under exclusivity and never took \
                      ownership"
                     q page;
               }
               :: st.violations
         | None -> ());
  (* Every transport-level message must reach its receiver: a dropped
     final attempt with no retransmission is a lost message; a message
     that was transmitted but never acknowledged is undelivered. Sort by
     msg id for deterministic reporting. *)
  Hashtbl.fold (fun msg ms acc -> (msg, ms) :: acc) st.msgs []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (msg, ms) ->
         if not ms.acked then
           let rule, detail =
             if ms.dropped_hi >= ms.max_attempt then
               ( "net-drop-lost",
                 Printf.sprintf
                   "message %d (p%d->p%d): attempt %d was dropped and never \
                    retransmitted"
                   msg ms.m_src ms.m_dst ms.max_attempt )
             else
               ( "net-undelivered",
                 Printf.sprintf
                   "message %d (p%d->p%d) was never acknowledged" msg ms.m_src
                   ms.m_dst )
           in
           st.violations <- { event = None; rule; detail } :: st.violations);
  List.rev st.violations

let run ~nprocs events =
  let st = create ~nprocs in
  List.iter (step st) events;
  finish st

let run_sink sink =
  let violations =
    if Sink.dropped sink > 0 then
      [
        {
          event = None;
          rule = "trace-dropped";
          detail =
            Printf.sprintf
              "%d events lost to ring overflow: trace incomplete, replay \
               unsound (raise the sink capacity)"
              (Sink.dropped sink);
        };
      ]
    else []
  in
  violations @ run ~nprocs:(Sink.nprocs sink) (Sink.events sink)

exception Invariant_violation of violation list

let check_exn sink =
  match run_sink sink with
  | [] -> ()
  | vs -> raise (Invariant_violation vs)

let () =
  Printexc.register_printer (function
    | Invariant_violation vs ->
        Some
          (Format.asprintf "@[<v>Invariant_violation (%d):@,%a@]"
             (List.length vs)
             (Format.pp_print_list pp_violation)
             vs)
    | _ -> None)

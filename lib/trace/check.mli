(** LRC invariant checker.

    Replays a trace and asserts the lazy-release-consistency protocol's
    correctness conditions against the happens-before order the events
    define: vector-clock monotonicity and merge-consistency, consecutive
    interval numbering, notice-before-data, invalidation of stale copies,
    in-order diff application (per writer, and per page within a fetch
    batch), the [applied <= known] watermark invariant, completion of every
    access miss by an unrestricted fetch (the "no read of a page with an
    unapplied happens-before-ordered write notice" rule, with lock-grant
    piggy-backing and Push/WRITE_ALL windows as the explicit relaxations),
    rollback discipline for partially pushed pages, and barrier epoch
    alternation. *)

type violation = {
  event : Event.t option;  (** offending event; [None] for end-of-trace *)
  rule : string;  (** stable rule identifier, e.g. ["vc-monotone"] *)
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

val run : nprocs:int -> Event.t list -> violation list
(** Replay events (which must be in emission order and complete) and
    return all violations, oldest first; [[]] means the trace satisfies
    every invariant. *)

val run_sink : Sink.t -> violation list
(** {!run} over a sink's surviving events. A sink that dropped events
    yields a ["trace-dropped"] violation: replay over an incomplete trace
    is unsound. *)

exception Invariant_violation of violation list

val check_exn : Sink.t -> unit
(** @raise Invariant_violation if {!run_sink} reports anything. *)

(* Per-processor ring-buffer event sink.

   The run-time holds [Sink.t option]; every instrumentation site guards on
   it before building an event, so a disabled trace costs one pointer
   comparison and allocates nothing. When enabled, emission appends to the
   emitting processor's ring (dropping the oldest events past [capacity])
   and never touches the simulated clocks or statistics, so tracing cannot
   perturb the cost model.

   Domain safety under the sharded engine: each ring and its count are
   written only by the processor that owns them — i.e. only by the one
   domain that owns the processor's shard — so the rings need no locks.
   The only cross-shard cell is the global sequence [next_id], which is
   atomic; since the ordered engine serializes slices in the sequential
   pass order, ids are assigned in the same order as the sequential run
   and the ascending-id merge in [events] reproduces the exact
   sequential event stream, bit for bit. *)

type t = {
  nprocs : int;
  capacity : int;  (* per processor *)
  mask : int;  (* capacity - 1 when a power of two, -1 otherwise *)
  rings : Event.t option array array;
  count : int array;  (* total emitted per processor *)
  next_id : int Atomic.t;
}

let default_capacity = 1 lsl 18

let create ?(capacity = default_capacity) ~nprocs () =
  if capacity <= 0 then invalid_arg "Sink.create: capacity must be positive";
  {
    nprocs;
    capacity;
    mask = (if capacity land (capacity - 1) = 0 then capacity - 1 else -1);
    rings = Array.init nprocs (fun _ -> Array.make capacity None);
    count = Array.make nprocs 0;
    next_id = Atomic.make 0;
  }

let nprocs t = t.nprocs
let capacity t = t.capacity

let emit t ~proc ~time ~vc kind =
  Dsm_prof.Prof.tick Dsm_prof.Prof.Trace;
  let id = Atomic.fetch_and_add t.next_id 1 in
  let ring = t.rings.(proc) in
  let c = t.count.(proc) in
  let slot = if t.mask >= 0 then c land t.mask else c mod t.capacity in
  ring.(slot) <- Some { Event.id; proc; time; vc; kind };
  t.count.(proc) <- c + 1

let emitted t = Array.fold_left ( + ) 0 t.count

let dropped_of t p = max 0 (t.count.(p) - t.capacity)
let dropped t =
  let d = ref 0 in
  for p = 0 to t.nprocs - 1 do
    d := !d + dropped_of t p
  done;
  !d

(* Surviving events of one processor, oldest first. *)
let proc_events t p =
  let n = min t.count.(p) t.capacity in
  let start = t.count.(p) - n in
  List.init n (fun i ->
      match t.rings.(p).((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

(* All surviving events in global emission order (ascending id). *)
let events t =
  let all = ref [] in
  for p = t.nprocs - 1 downto 0 do
    all := proc_events t p :: !all
  done;
  List.concat !all
  |> List.sort (fun (a : Event.t) (b : Event.t) -> compare a.id b.id)

let clear t =
  Array.iter (fun ring -> Array.fill ring 0 t.capacity None) t.rings;
  Array.fill t.count 0 t.nprocs 0;
  Atomic.set t.next_id 0

let write_jsonl oc t =
  List.iter
    (fun e ->
      output_string oc (Event.to_json e);
      output_char oc '\n')
    (events t)

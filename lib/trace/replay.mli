(** Replay of the page accesses recorded in a protocol trace.

    The run-time emits an event the first time a page is touched in a
    state that needs protocol work: {!Event.kind.Page_fault} for an
    access to an invalid (or read-only, for a write) page, and
    {!Event.kind.Twin} for the first write to a page in an interval.
    Those events are exactly the observable subset of the program's page
    accesses, which makes them the dynamic side of the [dsm_lint]
    static-vs-dynamic differential check: every replayed access must fall
    inside the compiler's static access summary, or the summary is
    unsound. *)

type access = {
  proc : int;
  page : int;
  write : bool;  (** write fault or twin creation *)
  epoch : int;  (** barrier departures [proc] had completed beforehand *)
  time : float;  (** virtual clock of [proc] at the event *)
}

val accesses : Event.t list -> access list
(** The page accesses of a trace, in emission order. Events must be in
    per-processor emission order ({!Sink.events} and {!Sink.proc_events}
    both qualify). *)

val fold : ('a -> access -> 'a) -> 'a -> Event.t list -> 'a
(** Fold over the page accesses without materializing the list. *)

val pages_by_proc : nprocs:int -> access list -> int list array
(** Distinct pages each processor touched, sorted ascending. *)

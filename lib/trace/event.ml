(* Typed protocol events. One record per protocol-level action, stamped
   with the acting processor, its virtual clock and a vector-clock
   snapshot; [id] is the global emission order (the simulator is
   sequential, so emission order is consistent with happens-before). *)

type kind =
  | Page_fault of { page : int; write : bool; fetch : bool }
      (* [fetch]: the handler had to make the page consistent (the page was
         invalid, or a read miss) *)
  | Twin of { page : int }
  | Diff_create of {
      page : int;
      seq : int;  (* last interval the materialized diff covers *)
      bytes : int;
      write_all : bool;  (* verbatim WRITE_ALL content, no twin comparison *)
    }
  | Diff_fetch of { writer : int; page : int; after : int; upto : int }
      (* applied-watermark advance for [writer]: applied := max applied
         upto. Covers both a served fetch request and supersede pruning
         (where the pruned writers' diffs are marked applied, not sent). *)
  | Diff_apply of {
      writer : int;
      page : int;
      order : int;  (* happens-before stamp (vector-clock sum at release) *)
      upto_seq : int;  (* last interval of the writer the unit covers *)
      bytes : int;
    }
  | Fetch_done of { page : int; full : bool }
      (* a fetch-and-apply pass over [page] completed; [full] when it was
         unrestricted (not limited to the diffs one processor holds) and
         therefore must have left the copy fully consistent *)
  | Notice_send of { seq : int; pages : int list }
      (* release: interval [seq] closed, write notices recorded *)
  | Notice_apply of {
      writer : int;
      seq : int;
      page : int;
      invalidated : bool;  (* local copy unreadable after the notice *)
    }
  | Barrier_arrive of { epoch : int }
  | Barrier_depart of { epoch : int }
  | Lock_request of { lock : int }
  | Lock_grant of { lock : int; grantor : int; notices : int }
  | Validate of { access : string; npages : int; async : bool; w_sync : bool }
  | Push_send of { dst : int; bytes : int; seq : int }
  | Push_recv of { src : int; bytes : int; seq : int; pages : int list }
  | Push_rollback of { page : int; writer : int; seq : int }
      (* barrier rolled the applied watermark back over a partially pushed
         page, restoring full consistency on the next access *)
  | Broadcast of { bytes : int; requesters : int list }
  (* Home-based LRC (HLRC) events. A page's home holds a copy that every
     released interval has been eagerly flushed into; faulting processors
     fetch that single full copy instead of merging per-writer diffs. *)
  | Home_flush of { page : int; home : int; seq : int; bytes : int }
      (* the releaser flushed its diffs for [page], covering its intervals
         up to [seq], into the home copy at processor [home] *)
  | Home_fetch of { page : int; home : int; bytes : int }
      (* a faulting processor installed the full page copy held by [home] *)
  (* Directory-based single-writer invalidate events. The directory entry
     for a page lives on processor [page mod nprocs]; a write fault sends
     [Inval_send] to every sharer (answered by [Inval_ack]) before the
     writer is granted exclusivity, and a read miss on an exclusive page
     downgrades the owner to shared. *)
  | Inval_send of { page : int; dst : int }
      (* the directory asked sharer [dst] to drop its copy of [page] *)
  | Inval_ack of { page : int; writer : int }
      (* the emitting processor dropped its copy of [page] so that
         [writer] could take it exclusively *)
  | Downgrade of { page : int; reader : int }
      (* the exclusive owner's copy of [page] was demoted to shared so
         that [reader] could be served the current contents *)
  | Proto_switch of { page : int; proto : string; owner : int; epoch : int }
      (* adaptive backend: at barrier [epoch] the page moved to protocol
         [proto] ("lrc", "hlrc" or "inval") with designated [owner]
         (home under hlrc, current holder under inval, -1 under lrc) *)
  | Plan_applied of { lo_page : int; hi_page : int; proto : string; owner : int }
      (* a static protocol-placement directive ([dsm_run --plan]) seeded
         pages [lo_page..hi_page] with protocol [proto] and designated
         [owner] before the program ran — one event per directive, emitted
         by processor 0 at start of run *)
  (* Object-granularity allocation ([Tmk.Alloc.objs]): sub-page staleness
     tracking on top of the page watermarks. *)
  | Obj_region of { base_page : int; npages : int; obj_size : int; count : int }
      (* an object-granularity region: [count] packed objects of
         [obj_size] bytes over pages [base_page..base_page+npages-1] —
         one event per region, emitted by processor 0 at start of run *)
  | Obj_skip of { page : int; slots : int list }
      (* a validate of the object [slots] skipped fetching [page]: the
         page is stale at page granularity but every validated object is
         disjoint from the stale slots (false sharing, no communication) *)
  (* Fault-tolerance events (lib/ft + Dsm_tmk.Recover). Crash-stop node
     failures execute at release points; homes are k-replica groups whose
     flushes are quorum writes and whose misses are quorum reads. *)
  | Crash of { epoch : int }
      (* the emitting processor fail-stopped at barrier epoch [epoch],
         wiping all page state; its vc snapshot is taken pre-wipe *)
  | Restart of { epoch : int; ckpt : int }
      (* the processor rejoined from checkpoint [ckpt] (plus replica
         state); its vc snapshot shows the restored (possibly regressed
         in foreign components) clock *)
  | Suspect of { peer : int; attempts : int }
      (* the emitting processor's reliable layer exhausted [attempts]
         delivery attempts against [peer] and declared it suspected *)
  | Quorum_write of { page : int; seq : int; acks : int list; needed : int }
      (* release-time flush of the writer's intervals up to [seq] into
         [page]'s replica group; [acks] are the members that applied it
         (|acks| >= [needed] or the write would not be acknowledged) *)
  | Quorum_read of { page : int; from : int; acks : int list; needed : int }
      (* miss serviced by the replica group: the full copy came from
         [from], the highest-watermark member among [acks] *)
  | Ckpt of { id : int; ckpt_epoch : int }
      (* barrier-quiesced checkpoint [id] of the emitting processor's
         vector clock and per-page watermarks, at epoch [ckpt_epoch] *)
  (* Transport-level events of the unreliable-network model (lib/net).
     [msg] is the global message id of the reliable-delivery layer; each
     event names the flow endpoints so the checker can reason per message
     without flow state. *)
  | Msg_drop of { msg : int; src : int; dst : int; attempt : int }
      (* delivery attempt [attempt] of message [msg] was lost *)
  | Msg_dup of { msg : int; src : int; dst : int }
      (* the network duplicated a delivery; the copy was suppressed *)
  | Retransmit of { msg : int; src : int; dst : int; attempt : int }
      (* the reliable layer resent [msg]; this is attempt [attempt] *)
  | Timeout_fire of {
      msg : int;
      src : int;
      dst : int;
      attempt : int;  (* the attempt whose loss the timeout detected *)
      backoff_us : float;  (* rto * 2^(attempt-1): exponential backoff *)
    }
  | Ack of { msg : int; src : int; dst : int; attempts : int }
      (* [dst] acknowledged [msg] after [attempts] delivery attempts *)

type t = {
  id : int;  (* global emission order *)
  proc : int;
  time : float;  (* virtual clock of [proc] at emission *)
  vc : int array;  (* vector-clock snapshot of [proc] *)
  kind : kind;
}

let kind_name = function
  | Page_fault _ -> "page_fault"
  | Twin _ -> "twin"
  | Diff_create _ -> "diff_create"
  | Diff_fetch _ -> "diff_fetch"
  | Diff_apply _ -> "diff_apply"
  | Fetch_done _ -> "fetch_done"
  | Notice_send _ -> "notice_send"
  | Notice_apply _ -> "notice_apply"
  | Barrier_arrive _ -> "barrier_arrive"
  | Barrier_depart _ -> "barrier_depart"
  | Lock_request _ -> "lock_request"
  | Lock_grant _ -> "lock_grant"
  | Validate _ -> "validate"
  | Push_send _ -> "push_send"
  | Push_recv _ -> "push_recv"
  | Push_rollback _ -> "push_rollback"
  | Broadcast _ -> "broadcast"
  | Home_flush _ -> "home_flush"
  | Home_fetch _ -> "home_fetch"
  | Inval_send _ -> "inval_send"
  | Inval_ack _ -> "inval_ack"
  | Downgrade _ -> "downgrade"
  | Proto_switch _ -> "proto_switch"
  | Plan_applied _ -> "plan_applied"
  | Obj_region _ -> "obj_region"
  | Obj_skip _ -> "obj_skip"
  | Crash _ -> "crash"
  | Restart _ -> "restart"
  | Suspect _ -> "suspect"
  | Quorum_write _ -> "quorum_write"
  | Quorum_read _ -> "quorum_read"
  | Ckpt _ -> "ckpt"
  | Msg_drop _ -> "msg_drop"
  | Msg_dup _ -> "msg_dup"
  | Retransmit _ -> "retransmit"
  | Timeout_fire _ -> "timeout_fire"
  | Ack _ -> "ack"

(* {1 JSONL encoding} *)

let json_int_list l =
  "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

let kind_fields = function
  | Page_fault { page; write; fetch } ->
      Printf.sprintf "\"page\":%d,\"write\":%b,\"fetch\":%b" page write fetch
  | Twin { page } -> Printf.sprintf "\"page\":%d" page
  | Diff_create { page; seq; bytes; write_all } ->
      Printf.sprintf "\"page\":%d,\"seq\":%d,\"bytes\":%d,\"write_all\":%b"
        page seq bytes write_all
  | Diff_fetch { writer; page; after; upto } ->
      Printf.sprintf "\"writer\":%d,\"page\":%d,\"after\":%d,\"upto\":%d"
        writer page after upto
  | Diff_apply { writer; page; order; upto_seq; bytes } ->
      Printf.sprintf
        "\"writer\":%d,\"page\":%d,\"order\":%d,\"upto_seq\":%d,\"bytes\":%d"
        writer page order upto_seq bytes
  | Fetch_done { page; full } ->
      Printf.sprintf "\"page\":%d,\"full\":%b" page full
  | Notice_send { seq; pages } ->
      Printf.sprintf "\"seq\":%d,\"pages\":%s" seq (json_int_list pages)
  | Notice_apply { writer; seq; page; invalidated } ->
      Printf.sprintf "\"writer\":%d,\"seq\":%d,\"page\":%d,\"invalidated\":%b"
        writer seq page invalidated
  | Barrier_arrive { epoch } | Barrier_depart { epoch } ->
      Printf.sprintf "\"epoch\":%d" epoch
  | Lock_request { lock } -> Printf.sprintf "\"lock\":%d" lock
  | Lock_grant { lock; grantor; notices } ->
      Printf.sprintf "\"lock\":%d,\"grantor\":%d,\"notices\":%d" lock grantor
        notices
  | Validate { access; npages; async; w_sync } ->
      Printf.sprintf "\"access\":%S,\"npages\":%d,\"async\":%b,\"w_sync\":%b"
        access npages async w_sync
  | Push_send { dst; bytes; seq } ->
      Printf.sprintf "\"dst\":%d,\"bytes\":%d,\"seq\":%d" dst bytes seq
  | Push_recv { src; bytes; seq; pages } ->
      Printf.sprintf "\"src\":%d,\"bytes\":%d,\"seq\":%d,\"pages\":%s" src
        bytes seq (json_int_list pages)
  | Push_rollback { page; writer; seq } ->
      Printf.sprintf "\"page\":%d,\"writer\":%d,\"seq\":%d" page writer seq
  | Broadcast { bytes; requesters } ->
      Printf.sprintf "\"bytes\":%d,\"requesters\":%s" bytes
        (json_int_list requesters)
  | Home_flush { page; home; seq; bytes } ->
      Printf.sprintf "\"page\":%d,\"home\":%d,\"seq\":%d,\"bytes\":%d" page
        home seq bytes
  | Home_fetch { page; home; bytes } ->
      Printf.sprintf "\"page\":%d,\"home\":%d,\"bytes\":%d" page home bytes
  | Inval_send { page; dst } ->
      Printf.sprintf "\"page\":%d,\"dst\":%d" page dst
  | Inval_ack { page; writer } ->
      Printf.sprintf "\"page\":%d,\"writer\":%d" page writer
  | Downgrade { page; reader } ->
      Printf.sprintf "\"page\":%d,\"reader\":%d" page reader
  | Proto_switch { page; proto; owner; epoch } ->
      Printf.sprintf "\"page\":%d,\"proto\":%S,\"owner\":%d,\"epoch\":%d" page
        proto owner epoch
  | Plan_applied { lo_page; hi_page; proto; owner } ->
      Printf.sprintf
        "\"lo_page\":%d,\"hi_page\":%d,\"proto\":%S,\"owner\":%d" lo_page
        hi_page proto owner
  | Obj_region { base_page; npages; obj_size; count } ->
      Printf.sprintf
        "\"base_page\":%d,\"npages\":%d,\"obj_size\":%d,\"count\":%d"
        base_page npages obj_size count
  | Obj_skip { page; slots } ->
      Printf.sprintf "\"page\":%d,\"slots\":%s" page (json_int_list slots)
  | Crash { epoch } -> Printf.sprintf "\"epoch\":%d" epoch
  | Restart { epoch; ckpt } ->
      Printf.sprintf "\"epoch\":%d,\"ckpt\":%d" epoch ckpt
  | Suspect { peer; attempts } ->
      Printf.sprintf "\"peer\":%d,\"attempts\":%d" peer attempts
  | Quorum_write { page; seq; acks; needed } ->
      Printf.sprintf "\"page\":%d,\"seq\":%d,\"acks\":%s,\"needed\":%d" page
        seq (json_int_list acks) needed
  | Quorum_read { page; from; acks; needed } ->
      Printf.sprintf "\"page\":%d,\"from\":%d,\"acks\":%s,\"needed\":%d" page
        from (json_int_list acks) needed
  | Ckpt { id; ckpt_epoch } ->
      Printf.sprintf "\"ckpt_id\":%d,\"epoch\":%d" id ckpt_epoch
  | Msg_drop { msg; src; dst; attempt } ->
      Printf.sprintf "\"msg\":%d,\"src\":%d,\"dst\":%d,\"attempt\":%d" msg src
        dst attempt
  | Msg_dup { msg; src; dst } ->
      Printf.sprintf "\"msg\":%d,\"src\":%d,\"dst\":%d" msg src dst
  | Retransmit { msg; src; dst; attempt } ->
      Printf.sprintf "\"msg\":%d,\"src\":%d,\"dst\":%d,\"attempt\":%d" msg src
        dst attempt
  | Timeout_fire { msg; src; dst; attempt; backoff_us } ->
      Printf.sprintf
        "\"msg\":%d,\"src\":%d,\"dst\":%d,\"attempt\":%d,\"backoff_us\":%.3f"
        msg src dst attempt backoff_us
  | Ack { msg; src; dst; attempts } ->
      Printf.sprintf "\"msg\":%d,\"src\":%d,\"dst\":%d,\"attempts\":%d" msg src
        dst attempts

let to_json e =
  Printf.sprintf "{\"id\":%d,\"proc\":%d,\"time\":%.3f,\"vc\":%s,\"ev\":%S,%s}"
    e.id e.proc e.time
    (json_int_list (Array.to_list e.vc))
    (kind_name e.kind) (kind_fields e.kind)

let pp ppf e =
  Format.fprintf ppf "#%d p%d @@%.1f %s" e.id e.proc e.time (to_json e)

(* {1 JSONL decoding}

   Minimal parser for the flat one-line objects [to_json] produces:
   values are numbers, booleans, quoted strings or arrays of integers.
   Used to re-check trace files offline ([dsm_run --trace] output fed
   back to the checker) and to round-trip-test the encoding. *)

exception Parse_error of string

(* Internal: lets {!parse_line} tell an event kind this parser does not
   know (a trace written by a newer binary) apart from malformed input. *)
exception Unknown_kind_exn of string

type jv = Num of float | Bool of bool | Str of string | Ints of int list

let parse_exn line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let skip_ws () =
    while
      !pos < n
      && match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false
    do
      incr pos
    done
  in
  let peek () =
    skip_ws ();
    if !pos < n then line.[!pos] else fail "unexpected end of input"
  in
  let expect c =
    if peek () = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match line.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match line.[!pos] with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | c -> Buffer.add_char b c);
          incr pos;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let parse_value () =
    match peek () with
    | '"' -> Str (parse_string ())
    | 't' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
          pos := !pos + 4;
          Bool true
        end
        else fail "expected 'true'"
    | 'f' ->
        if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
          pos := !pos + 5;
          Bool false
        end
        else fail "expected 'false'"
    | '[' ->
        incr pos;
        let items = ref [] in
        if peek () = ']' then incr pos
        else begin
          let rec go () =
            items := int_of_float (parse_number ()) :: !items;
            match peek () with
            | ',' ->
                incr pos;
                go ()
            | ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          go ()
        end;
        Ints (List.rev !items)
    | _ -> Num (parse_number ())
  in
  let fields = ref [] in
  expect '{';
  if peek () = '}' then incr pos
  else begin
    let rec go () =
      let k = parse_string () in
      expect ':';
      fields := (k, parse_value ()) :: !fields;
      match peek () with
      | ',' ->
          incr pos;
          go ()
      | '}' -> incr pos
      | _ -> fail "expected ',' or '}'"
    in
    go ()
  end;
  let fields = !fields in
  let get k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> raise (Parse_error (Printf.sprintf "missing field %S" k))
  in
  let num k =
    match get k with
    | Num f -> f
    | _ -> raise (Parse_error (Printf.sprintf "field %S: expected a number" k))
  in
  let int k = int_of_float (num k) in
  let bool k =
    match get k with
    | Bool b -> b
    | _ -> raise (Parse_error (Printf.sprintf "field %S: expected a bool" k))
  in
  let str k =
    match get k with
    | Str s -> s
    | _ -> raise (Parse_error (Printf.sprintf "field %S: expected a string" k))
  in
  let ints k =
    match get k with
    | Ints l -> l
    | _ ->
        raise (Parse_error (Printf.sprintf "field %S: expected an int array" k))
  in
  let kind =
    match str "ev" with
    | "page_fault" ->
        Page_fault
          { page = int "page"; write = bool "write"; fetch = bool "fetch" }
    | "twin" -> Twin { page = int "page" }
    | "diff_create" ->
        Diff_create
          {
            page = int "page";
            seq = int "seq";
            bytes = int "bytes";
            write_all = bool "write_all";
          }
    | "diff_fetch" ->
        Diff_fetch
          {
            writer = int "writer";
            page = int "page";
            after = int "after";
            upto = int "upto";
          }
    | "diff_apply" ->
        Diff_apply
          {
            writer = int "writer";
            page = int "page";
            order = int "order";
            upto_seq = int "upto_seq";
            bytes = int "bytes";
          }
    | "fetch_done" -> Fetch_done { page = int "page"; full = bool "full" }
    | "notice_send" -> Notice_send { seq = int "seq"; pages = ints "pages" }
    | "notice_apply" ->
        Notice_apply
          {
            writer = int "writer";
            seq = int "seq";
            page = int "page";
            invalidated = bool "invalidated";
          }
    | "barrier_arrive" -> Barrier_arrive { epoch = int "epoch" }
    | "barrier_depart" -> Barrier_depart { epoch = int "epoch" }
    | "lock_request" -> Lock_request { lock = int "lock" }
    | "lock_grant" ->
        Lock_grant
          {
            lock = int "lock";
            grantor = int "grantor";
            notices = int "notices";
          }
    | "validate" ->
        Validate
          {
            access = str "access";
            npages = int "npages";
            async = bool "async";
            w_sync = bool "w_sync";
          }
    | "push_send" ->
        Push_send { dst = int "dst"; bytes = int "bytes"; seq = int "seq" }
    | "push_recv" ->
        Push_recv
          {
            src = int "src";
            bytes = int "bytes";
            seq = int "seq";
            pages = ints "pages";
          }
    | "push_rollback" ->
        Push_rollback
          { page = int "page"; writer = int "writer"; seq = int "seq" }
    | "broadcast" ->
        Broadcast { bytes = int "bytes"; requesters = ints "requesters" }
    | "home_flush" ->
        Home_flush
          {
            page = int "page";
            home = int "home";
            seq = int "seq";
            bytes = int "bytes";
          }
    | "home_fetch" ->
        Home_fetch { page = int "page"; home = int "home"; bytes = int "bytes" }
    | "inval_send" -> Inval_send { page = int "page"; dst = int "dst" }
    | "inval_ack" -> Inval_ack { page = int "page"; writer = int "writer" }
    | "downgrade" -> Downgrade { page = int "page"; reader = int "reader" }
    | "proto_switch" ->
        Proto_switch
          {
            page = int "page";
            proto = str "proto";
            owner = int "owner";
            epoch = int "epoch";
          }
    | "plan_applied" ->
        Plan_applied
          {
            lo_page = int "lo_page";
            hi_page = int "hi_page";
            proto = str "proto";
            owner = int "owner";
          }
    | "obj_region" ->
        Obj_region
          {
            base_page = int "base_page";
            npages = int "npages";
            obj_size = int "obj_size";
            count = int "count";
          }
    | "obj_skip" -> Obj_skip { page = int "page"; slots = ints "slots" }
    | "crash" -> Crash { epoch = int "epoch" }
    | "restart" -> Restart { epoch = int "epoch"; ckpt = int "ckpt" }
    | "suspect" -> Suspect { peer = int "peer"; attempts = int "attempts" }
    | "quorum_write" ->
        Quorum_write
          {
            page = int "page";
            seq = int "seq";
            acks = ints "acks";
            needed = int "needed";
          }
    | "quorum_read" ->
        Quorum_read
          {
            page = int "page";
            from = int "from";
            acks = ints "acks";
            needed = int "needed";
          }
    | "ckpt" -> Ckpt { id = int "ckpt_id"; ckpt_epoch = int "epoch" }
    | "msg_drop" ->
        Msg_drop
          {
            msg = int "msg";
            src = int "src";
            dst = int "dst";
            attempt = int "attempt";
          }
    | "msg_dup" ->
        Msg_dup { msg = int "msg"; src = int "src"; dst = int "dst" }
    | "retransmit" ->
        Retransmit
          {
            msg = int "msg";
            src = int "src";
            dst = int "dst";
            attempt = int "attempt";
          }
    | "timeout_fire" ->
        Timeout_fire
          {
            msg = int "msg";
            src = int "src";
            dst = int "dst";
            attempt = int "attempt";
            backoff_us = num "backoff_us";
          }
    | "ack" ->
        Ack
          {
            msg = int "msg";
            src = int "src";
            dst = int "dst";
            attempts = int "attempts";
          }
    | ev -> raise (Unknown_kind_exn ev)
  in
  {
    id = int "id";
    proc = int "proc";
    time = num "time";
    vc = Array.of_list (ints "vc");
    kind;
  }

(* {1 Tolerant line/file entry points}

   A trace file may have been written by a newer binary (event kinds this
   parser does not know) or cut short by a crash mid-write (truncated final
   line). Offline consumers must degrade to warnings in both cases instead
   of dying mid-file, so the checker can still validate every event it does
   understand. *)

type parse_result = Event of t | Unknown_kind of string | Malformed of string

let parse_line line =
  match parse_exn line with
  | e -> Event e
  | exception Unknown_kind_exn ev -> Unknown_kind ev
  | exception Parse_error msg -> Malformed msg

let of_json line =
  match parse_exn line with
  | e -> e
  | exception Unknown_kind_exn ev ->
      raise (Parse_error (Printf.sprintf "unknown event kind %S" ev))

type load = {
  events : t list;  (* every successfully parsed event, in file order *)
  warnings : (int * string) list;  (* (1-based line number, message) *)
  unknown_kinds : int;  (* lines skipped because of an unrecognized kind *)
}

let load_jsonl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let events = ref [] and warnings = ref [] and unknown = ref 0 in
      let lineno = ref 0 in
      let rec go () =
        match input_line ic with
        | exception End_of_file -> ()
        | line ->
            incr lineno;
            let last = in_channel_length ic = pos_in ic in
            (if String.trim line = "" then ()
             else
               match parse_exn line with
               | e -> events := e :: !events
               | exception Unknown_kind_exn ev ->
                   incr unknown;
                   warnings :=
                     (!lineno, Printf.sprintf "unknown event kind %S" ev)
                     :: !warnings
               | exception Parse_error msg ->
                   warnings :=
                     ( !lineno,
                       if last then
                         Printf.sprintf
                           "truncated final line (crash mid-write?): %s" msg
                       else Printf.sprintf "malformed line: %s" msg )
                     :: !warnings);
            go ()
      in
      go ();
      {
        events = List.rev !events;
        warnings = List.rev !warnings;
        unknown_kinds = !unknown;
      })

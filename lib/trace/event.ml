(* Typed protocol events. One record per protocol-level action, stamped
   with the acting processor, its virtual clock and a vector-clock
   snapshot; [id] is the global emission order (the simulator is
   sequential, so emission order is consistent with happens-before). *)

type kind =
  | Page_fault of { page : int; write : bool; fetch : bool }
      (* [fetch]: the handler had to make the page consistent (the page was
         invalid, or a read miss) *)
  | Twin of { page : int }
  | Diff_create of {
      page : int;
      seq : int;  (* last interval the materialized diff covers *)
      bytes : int;
      write_all : bool;  (* verbatim WRITE_ALL content, no twin comparison *)
    }
  | Diff_fetch of { writer : int; page : int; after : int; upto : int }
      (* applied-watermark advance for [writer]: applied := max applied
         upto. Covers both a served fetch request and supersede pruning
         (where the pruned writers' diffs are marked applied, not sent). *)
  | Diff_apply of {
      writer : int;
      page : int;
      order : int;  (* happens-before stamp (vector-clock sum at release) *)
      upto_seq : int;  (* last interval of the writer the unit covers *)
      bytes : int;
    }
  | Fetch_done of { page : int; full : bool }
      (* a fetch-and-apply pass over [page] completed; [full] when it was
         unrestricted (not limited to the diffs one processor holds) and
         therefore must have left the copy fully consistent *)
  | Notice_send of { seq : int; pages : int list }
      (* release: interval [seq] closed, write notices recorded *)
  | Notice_apply of {
      writer : int;
      seq : int;
      page : int;
      invalidated : bool;  (* local copy unreadable after the notice *)
    }
  | Barrier_arrive of { epoch : int }
  | Barrier_depart of { epoch : int }
  | Lock_request of { lock : int }
  | Lock_grant of { lock : int; grantor : int; notices : int }
  | Validate of { access : string; npages : int; async : bool; w_sync : bool }
  | Push_send of { dst : int; bytes : int; seq : int }
  | Push_recv of { src : int; bytes : int; seq : int; pages : int list }
  | Push_rollback of { page : int; writer : int; seq : int }
      (* barrier rolled the applied watermark back over a partially pushed
         page, restoring full consistency on the next access *)
  | Broadcast of { bytes : int; requesters : int list }

type t = {
  id : int;  (* global emission order *)
  proc : int;
  time : float;  (* virtual clock of [proc] at emission *)
  vc : int array;  (* vector-clock snapshot of [proc] *)
  kind : kind;
}

let kind_name = function
  | Page_fault _ -> "page_fault"
  | Twin _ -> "twin"
  | Diff_create _ -> "diff_create"
  | Diff_fetch _ -> "diff_fetch"
  | Diff_apply _ -> "diff_apply"
  | Fetch_done _ -> "fetch_done"
  | Notice_send _ -> "notice_send"
  | Notice_apply _ -> "notice_apply"
  | Barrier_arrive _ -> "barrier_arrive"
  | Barrier_depart _ -> "barrier_depart"
  | Lock_request _ -> "lock_request"
  | Lock_grant _ -> "lock_grant"
  | Validate _ -> "validate"
  | Push_send _ -> "push_send"
  | Push_recv _ -> "push_recv"
  | Push_rollback _ -> "push_rollback"
  | Broadcast _ -> "broadcast"

(* {1 JSONL encoding} *)

let json_int_list l =
  "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

let kind_fields = function
  | Page_fault { page; write; fetch } ->
      Printf.sprintf "\"page\":%d,\"write\":%b,\"fetch\":%b" page write fetch
  | Twin { page } -> Printf.sprintf "\"page\":%d" page
  | Diff_create { page; seq; bytes; write_all } ->
      Printf.sprintf "\"page\":%d,\"seq\":%d,\"bytes\":%d,\"write_all\":%b"
        page seq bytes write_all
  | Diff_fetch { writer; page; after; upto } ->
      Printf.sprintf "\"writer\":%d,\"page\":%d,\"after\":%d,\"upto\":%d"
        writer page after upto
  | Diff_apply { writer; page; order; upto_seq; bytes } ->
      Printf.sprintf
        "\"writer\":%d,\"page\":%d,\"order\":%d,\"upto_seq\":%d,\"bytes\":%d"
        writer page order upto_seq bytes
  | Fetch_done { page; full } ->
      Printf.sprintf "\"page\":%d,\"full\":%b" page full
  | Notice_send { seq; pages } ->
      Printf.sprintf "\"seq\":%d,\"pages\":%s" seq (json_int_list pages)
  | Notice_apply { writer; seq; page; invalidated } ->
      Printf.sprintf "\"writer\":%d,\"seq\":%d,\"page\":%d,\"invalidated\":%b"
        writer seq page invalidated
  | Barrier_arrive { epoch } | Barrier_depart { epoch } ->
      Printf.sprintf "\"epoch\":%d" epoch
  | Lock_request { lock } -> Printf.sprintf "\"lock\":%d" lock
  | Lock_grant { lock; grantor; notices } ->
      Printf.sprintf "\"lock\":%d,\"grantor\":%d,\"notices\":%d" lock grantor
        notices
  | Validate { access; npages; async; w_sync } ->
      Printf.sprintf "\"access\":%S,\"npages\":%d,\"async\":%b,\"w_sync\":%b"
        access npages async w_sync
  | Push_send { dst; bytes; seq } ->
      Printf.sprintf "\"dst\":%d,\"bytes\":%d,\"seq\":%d" dst bytes seq
  | Push_recv { src; bytes; seq; pages } ->
      Printf.sprintf "\"src\":%d,\"bytes\":%d,\"seq\":%d,\"pages\":%s" src
        bytes seq (json_int_list pages)
  | Push_rollback { page; writer; seq } ->
      Printf.sprintf "\"page\":%d,\"writer\":%d,\"seq\":%d" page writer seq
  | Broadcast { bytes; requesters } ->
      Printf.sprintf "\"bytes\":%d,\"requesters\":%s" bytes
        (json_int_list requesters)

let to_json e =
  Printf.sprintf "{\"id\":%d,\"proc\":%d,\"time\":%.3f,\"vc\":%s,\"ev\":%S,%s}"
    e.id e.proc e.time
    (json_int_list (Array.to_list e.vc))
    (kind_name e.kind) (kind_fields e.kind)

let pp ppf e =
  Format.fprintf ppf "#%d p%d @@%.1f %s" e.id e.proc e.time (to_json e)

type access = {
  proc : int;
  page : int;
  write : bool;
  epoch : int;
  time : float;
}

let fold f init events =
  let epochs = Hashtbl.create 8 in
  let epoch_of p = Option.value ~default:0 (Hashtbl.find_opt epochs p) in
  List.fold_left
    (fun acc (e : Event.t) ->
      match e.Event.kind with
      | Event.Barrier_depart _ ->
          Hashtbl.replace epochs e.Event.proc (epoch_of e.Event.proc + 1);
          acc
      | Event.Page_fault { page; write; _ } ->
          f acc
            {
              proc = e.Event.proc;
              page;
              write;
              epoch = epoch_of e.Event.proc;
              time = e.Event.time;
            }
      | Event.Twin { page } ->
          f acc
            {
              proc = e.Event.proc;
              page;
              write = true;
              epoch = epoch_of e.Event.proc;
              time = e.Event.time;
            }
      | _ -> acc)
    init events

let accesses events = List.rev (fold (fun acc a -> a :: acc) [] events)

let pages_by_proc ~nprocs accs =
  let sets = Array.make nprocs [] in
  List.iter
    (fun a ->
      if a.proc >= 0 && a.proc < nprocs then
        sets.(a.proc) <- a.page :: sets.(a.proc))
    accs;
  Array.map (fun l -> List.sort_uniq compare l) sets

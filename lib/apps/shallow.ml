(* The NCAR shallow-water benchmark: finite-difference weather model on a
   two-dimensional periodic grid. Three compute phases per time step
   (velocity fluxes/potential vorticity; new time level; time smoothing),
   separated by barriers; columns are block-partitioned and sharing happens
   only across partition edges. As in the paper, only communication
   aggregation and consistency elimination apply (merging with
   synchronization and Push would need interprocedural analysis); the
   consistency-elimination gains are relatively larger than Jacobi's
   because many more pages are in use (13 shared arrays). Periodic
   continuation is expressed with wrap-around indexing rather than the
   original's copy loops (a documented simplification with the same
   cross-processor communication pattern). *)

module Tmk = Dsm_tmk.Tmk
module Shm = Dsm_tmk.Shm
module Mp = Dsm_mp.Mp
module Hpf = Dsm_hpf.Hpf
open App_common

let name = "Shallow"

type params = { m : int; n : int; steps : int; point_cost : float }

(* 256x256 and 256x128 stand in for the paper's 1024x1024 and 1024x512;
   per-step uniprocessor compute calibrated to Table 1. *)
let large = { m = 256; n = 256; steps = 8; point_cost = 7.6 }
let small = { m = 256; n = 128; steps = 8; point_cost = 7.6 }
let size_name p = Printf.sprintf "%dx%d" p.m p.n
let levels = [ Base; Comm_aggr; Cons_elim ]

(* physical constants of the benchmark *)
let dt = 90.0
let dx = 100000.0
let dy = 100000.0
let a_const = 1000000.0
let alpha = 0.001
let el = 102400000.0  (* n * dx for the original; any constant works *)
let pi = 4.0 *. atan 1.0
let tpi = pi +. pi
let pcf = (pi *. pi *. a_const *. a_const) /. (el *. el)

let fsdx = 4.0 /. dx
let fsdy = 4.0 /. dy

let psi_init m n i j =
  a_const
  *. sin ((float_of_int i +. 0.5) *. tpi /. float_of_int m)
  *. sin ((float_of_int j +. 0.5) *. tpi /. float_of_int n)

let u_init m n i j =
  -.(psi_init m n i ((j + 1) mod n) -. psi_init m n i j) /. dy

let v_init m n i j =
  (psi_init m n ((i + 1) mod m) j -. psi_init m n i j) /. dx

let p_init m n i j =
  pcf
  *. (cos (2.0 *. float_of_int i *. tpi /. float_of_int m)
     +. cos (2.0 *. float_of_int j *. tpi /. float_of_int n))
  +. 50000.0

(* {1 The model, over an abstract array accessor}

   The same phase functions drive the sequential arrays, the DSM and the
   message-passing versions, guaranteeing an identical operation order. *)

type grid = {
  get : int -> int -> int -> float;  (* array-id, i, j *)
  set : int -> int -> int -> float -> unit;
}

(* array ids *)
let iu = 0
and iv = 1
and ip = 2
and iunew = 3
and ivnew = 4
and ipnew = 5
and iuold = 6
and ivold = 7
and ipold = 8
and icu = 9
and icv = 10
and iz = 11
and ih = 12

let n_arrays = 13

let phase1 g m n jlo jhi =
  for j = jlo to jhi do
    let jp = (j + 1) mod n in
    for i = 0 to m - 1 do
      let ipp = (i + 1) mod m in
      g.set icu i j (0.5 *. (g.get ip i j +. g.get ip ((i + m - 1) mod m) j) *. g.get iu i j);
      g.set icv i j (0.5 *. (g.get ip i j +. g.get ip i ((j + n - 1) mod n)) *. g.get iv i j);
      g.set iz i j
        (((fsdx *. (g.get iv ipp j -. g.get iv i j))
         -. (fsdy *. (g.get iu i jp -. g.get iu i j)))
        /. (g.get ip i j +. g.get ip ipp j +. g.get ip ipp jp +. g.get ip i jp));
      g.set ih i j
        (g.get ip i j
        +. (0.25
           *. ((g.get iu i j *. g.get iu i j)
              +. (g.get iu ipp j *. g.get iu ipp j)
              +. (g.get iv i j *. g.get iv i j)
              +. (g.get iv i jp *. g.get iv i jp))))
    done
  done

let phase2 g m n ~tdt jlo jhi =
  let tdts8 = tdt /. 8.0
  and tdtsdx = tdt /. dx
  and tdtsdy = tdt /. dy in
  for j = jlo to jhi do
    let jm = (j + n - 1) mod n in
    for i = 0 to m - 1 do
      let im = (i + m - 1) mod m in
      g.set iunew i j
        (g.get iuold i j
        +. (tdts8
           *. (g.get iz i j +. g.get iz i ((j + 1) mod n))
           *. (g.get icv i j +. g.get icv im j
              +. g.get icv im ((j + 1) mod n)
              +. g.get icv i ((j + 1) mod n)))
        -. (tdtsdx *. (g.get ih i j -. g.get ih im j)));
      g.set ivnew i j
        (g.get ivold i j
        -. (tdts8
           *. (g.get iz i j +. g.get iz ((i + 1) mod m) j)
           *. (g.get icu i j +. g.get icu ((i + 1) mod m) j
              +. g.get icu ((i + 1) mod m) jm
              +. g.get icu i jm))
        -. (tdtsdy *. (g.get ih i j -. g.get ih i jm)));
      g.set ipnew i j
        (g.get ipold i j
        -. (tdtsdx *. (g.get icu ((i + 1) mod m) j -. g.get icu i j))
        -. (tdtsdy *. (g.get icv i ((j + 1) mod n) -. g.get icv i j)))
    done
  done

let phase3 g m ~first jlo jhi =
  ignore m;
  for j = jlo to jhi do
    for i = 0 to m - 1 do
      if first then begin
        g.set iuold i j (g.get iu i j);
        g.set ivold i j (g.get iv i j);
        g.set ipold i j (g.get ip i j);
        g.set iu i j (g.get iunew i j);
        g.set iv i j (g.get ivnew i j);
        g.set ip i j (g.get ipnew i j)
      end
      else begin
        let su = g.get iu i j
        and sv = g.get iv i j
        and sp = g.get ip i j in
        g.set iuold i j
          (su +. (alpha *. (g.get iunew i j -. (2.0 *. su) +. g.get iuold i j)));
        g.set ivold i j
          (sv +. (alpha *. (g.get ivnew i j -. (2.0 *. sv) +. g.get ivold i j)));
        g.set ipold i j
          (sp +. (alpha *. (g.get ipnew i j -. (2.0 *. sp) +. g.get ipold i j)));
        g.set iu i j (g.get iunew i j);
        g.set iv i j (g.get ivnew i j);
        g.set ip i j (g.get ipnew i j)
      end
    done
  done

let init g m n jlo jhi =
  for j = jlo to jhi do
    for i = 0 to m - 1 do
      g.set iu i j (u_init m n i j);
      g.set iv i j (v_init m n i j);
      g.set ip i j (p_init m n i j);
      g.set iuold i j (u_init m n i j);
      g.set ivold i j (v_init m n i j);
      g.set ipold i j (p_init m n i j)
    done
  done

(* {1 Sequential reference} *)

let seq_arrays { m; n; steps; _ } =
  let data = Array.init n_arrays (fun _ -> Array.make (m * n) 0.0) in
  let g =
    {
      get = (fun a i j -> data.(a).((j * m) + i));
      set = (fun a i j v -> data.(a).((j * m) + i) <- v);
    }
  in
  init g m n 0 (n - 1);
  let tdt = ref dt in
  for step = 1 to steps do
    phase1 g m n 0 (n - 1);
    phase2 g m n ~tdt:!tdt 0 (n - 1);
    phase3 g m ~first:(step = 1) 0 (n - 1);
    if step = 1 then tdt := !tdt +. !tdt
  done;
  data

let seq_memo : (int * int * int, float array array) Hashtbl.t = Hashtbl.create 4

let reference prm =
  memo seq_memo (prm.m, prm.n, prm.steps) (fun () -> seq_arrays prm)

let seq_time_us { m; n; steps; point_cost } =
  float_of_int steps *. 3.0 *. float_of_int (m * n) *. point_cost
  +. (float_of_int (m * n) *. point_cost)

(* {1 TreadMarks versions} *)

let bounds n nprocs p =
  let w = (n + nprocs - 1) / nprocs in
  (p * w, min (n - 1) (((p + 1) * w) - 1))

let run_tmk ?trace ?(digest = false) ?plan cfg ({ m; n; steps; point_cost } as prm) ~level ~async =
  let sys = Tmk.make ?plan cfg in
  let names =
    [| "u"; "v"; "p"; "unew"; "vnew"; "pnew"; "uold"; "vold"; "pold";
       "cu"; "cv"; "z"; "h" |]
  in
  let arrs = Array.map (fun nm -> Tmk.Alloc.array sys nm Tmk.F64 ~dims:[ m; n ]) names in
  let np = cfg.Dsm_sim.Config.nprocs in
  Tmk.run ?trace sys (fun t ->
      let p = Tmk.pid t in
      let jlo, jhi = bounds n np p in
      let width = jhi - jlo + 1 in
      let g =
        {
          get = (fun a i j -> Shm.F64_2.get t arrs.(a) i j);
          set = (fun a i j v -> Shm.F64_2.set t arrs.(a) i j v);
        }
      in
      (* sections: own partition and the (wrapped) neighbour columns *)
      let own a = Shm.F64_2.section arrs.(a) (0, m - 1, 1) (jlo, jhi, 1) in
      let left_col = (jlo + n - 1) mod n
      and right_col = (jhi + 1) mod n in
      let halo a side =
        let c = match side with `L -> left_col | `R -> right_col in
        Shm.F64_2.section arrs.(a) (0, m - 1, 1) (c, c, 1)
      in
      (* one-sided sections, exactly what regular section analysis derives
         from the stencils of each phase *)
      let validate_reads specs =
        match level with
        | Comm_aggr | Cons_elim ->
            Tmk.validate t ~async
              (List.map (fun (a, side) -> halo a side) specs)
              Tmk.Read
        | Base | Sync_merge | Push_opt -> ()
      in
      let validate_writes ids =
        match level with
        | Comm_aggr -> Tmk.validate t (List.map own ids) Tmk.Write
        | Cons_elim -> Tmk.validate t (List.map own ids) Tmk.Write_all
        | Base | Sync_merge | Push_opt -> ()
      in
      let validate_rw ids =
        (* phase-3 arrays are read and fully overwritten, all locally *)
        match level with
        | Comm_aggr -> Tmk.validate t (List.map own ids) Tmk.Read_write
        | Cons_elim -> Tmk.validate t (List.map own ids) Tmk.Read_write_all
        | Base | Sync_merge | Push_opt -> ()
      in
      validate_writes [ iu; iv; ip; iuold; ivold; ipold ];
      init g m n jlo jhi;
      Tmk.charge t (point_cost *. float_of_int (m * width));
      Tmk.barrier t;
      let tdt = ref dt in
      for step = 1 to steps do
        validate_reads [ (ip, `L); (ip, `R); (iu, `R) ];
        validate_writes [ icu; icv; iz; ih ];
        phase1 g m n jlo jhi;
        Tmk.charge t (point_cost *. float_of_int (m * width));
        Tmk.barrier t;
        validate_reads [ (icu, `L); (ih, `L); (iz, `R); (icv, `R) ];
        validate_writes [ iunew; ivnew; ipnew ];
        phase2 g m n ~tdt:!tdt jlo jhi;
        Tmk.charge t (point_cost *. float_of_int (m * width));
        Tmk.barrier t;
        validate_rw [ iu; iv; ip; iuold; ivold; ipold ];
        phase3 g m ~first:(step = 1) jlo jhi;
        Tmk.charge t (point_cost *. float_of_int (m * width));
        Tmk.barrier t;
        if step = 1 then tdt := !tdt +. !tdt
      done);
  let time_us = Tmk.elapsed sys in
  let stats = Tmk.total_stats sys in
  let dref = reference prm in
  let err = ref 0.0 in
  Tmk.run sys (fun t ->
      if Tmk.pid t = 0 then
        List.iter
          (fun a ->
            for j = 0 to n - 1 do
              for i = 0 to m - 1 do
                err :=
                  combine_err !err
                    (Shm.F64_2.get t arrs.(a) i j -. dref.(a).((j * m) + i))
              done
            done)
          [ iu; iv; ip ]);
  let homes = Tmk.homes sys in
  let classes = Tmk.adapt_classes sys in
  make_result ~time_us ~stats ~max_err:!err
    ~digest:(if digest then Tmk.digest sys else "")
    ~homes ~classes ()

(* {1 Message-passing versions}

   Each processor holds full columns for its partition plus one halo column
   on each side; the halos of the arrays a phase reads are refreshed by a
   ring exchange before the phase. *)

let run_mp ~pack cfg ({ m; n; steps; point_cost } as prm) =
  let sys = Mp.make cfg in
  let np = cfg.Dsm_sim.Config.nprocs in
  let results = Array.make np [||] in
  Mp.run sys (fun t ->
      let p = Mp.pid t in
      let jlo, jhi = bounds n np p in
      let width = jhi - jlo + 1 in
      (* local storage: every array gets all n columns, but only the own
         partition and the two halo columns are ever valid *)
      let data = Array.init n_arrays (fun _ -> Array.make (m * n) 0.0) in
      let g =
        {
          get = (fun a i j -> data.(a).((j * m) + i));
          set = (fun a i j v -> data.(a).((j * m) + i) <- v);
        }
      in
      let left_n = (p + np - 1) mod np
      and right_n = (p + 1) mod np in
      let left_col = (jlo + n - 1) mod n
      and right_col = (jhi + 1) mod n in
      let exchange ids =
        (* send own edge columns, receive halos (periodic ring) *)
        let count = List.length ids in
        let sendbuf edge =
          let buf = Array.make (count * m) 0.0 in
          List.iteri
            (fun k a -> Array.blit data.(a) (edge * m) buf (k * m) m)
            ids;
          buf
        in
        pack t (count * m * 2);
        Mp.send_floats t ~dst:left_n ~tag:7 (sendbuf jlo);
        Mp.send_floats t ~dst:right_n ~tag:8 (sendbuf jhi);
        let from_right = Mp.recv_floats t ~src:right_n ~tag:7 in
        let from_left = Mp.recv_floats t ~src:left_n ~tag:8 in
        pack t (count * m * 2);
        List.iteri
          (fun k a ->
            Array.blit from_left (k * m) data.(a) (left_col * m) m;
            Array.blit from_right (k * m) data.(a) (right_col * m) m)
          ids
      in
      init g m n jlo jhi;
      init g m n left_col left_col;
      init g m n right_col right_col;
      Mp.charge t (point_cost *. float_of_int (m * width));
      let tdt = ref dt in
      for step = 1 to steps do
        phase1 g m n jlo jhi;
        Mp.charge t (point_cost *. float_of_int (m * width));
        exchange [ icu; icv; iz; ih ];
        phase2 g m n ~tdt:!tdt jlo jhi;
        Mp.charge t (point_cost *. float_of_int (m * width));
        phase3 g m ~first:(step = 1) jlo jhi;
        Mp.charge t (point_cost *. float_of_int (m * width));
        exchange [ iu; iv; ip ];
        if step = 1 then tdt := !tdt +. !tdt
      done;
      results.(p) <- Array.concat (Array.to_list data));
  let dref = reference prm in
  let err = ref 0.0 in
  Array.iteri
    (fun q res ->
      let jlo, jhi = bounds n np q in
      List.iter
        (fun a ->
          for j = jlo to jhi do
            for i = 0 to m - 1 do
              err :=
                combine_err !err
                  (res.((a * m * n) + (j * m) + i) -. dref.(a).((j * m) + i))
            done
          done)
        [ iu; iv; ip ])
    results;
  make_result ~time_us:(Mp.elapsed sys) ~stats:(Mp.total_stats sys)
    ~max_err:!err ()

let run_pvm cfg prm = run_mp ~pack:(fun _ _ -> ()) cfg prm

let run_xhpf =
  Some (fun cfg prm -> run_mp ~pack:(fun t e -> Hpf.charge_pack t e) cfg prm)

(* {1 Workload.S instance: sizes are the params records, no behavior
      knobs} *)

type size = params
type behavior = unit

let sizes = [ ("large", large); ("small", small) ]
let default_behavior = ()
let knob_doc = []
let with_knob = Workload.no_knobs ~workload:name

let tmk ?trace ?digest ?plan cfg ~size ~behavior:() ~level ~async =
  run_tmk ?trace ?digest ?plan cfg size ~level ~async

let pvm cfg ~size ~behavior:() = run_pvm cfg size
let xhpf = Option.map (fun f cfg ~size ~behavior:() -> f cfg size) run_xhpf

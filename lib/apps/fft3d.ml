(* 3D Fast Fourier Transform, after the NAS FT benchmark: each iteration
   evolves the data, performs the x/y FFTs locally on the processor's slabs,
   transposes the distributed dimension (the producer-consumer communication
   at the barrier the paper describes), runs the z FFT locally, and
   transposes back.

   The cube X is slab-distributed along z; its transpose Y along x. A
   transpose reader needs a thin slice of every page of the source array, so
   the base run-time transfers whole-page diffs that mostly contain other
   readers' slices — the false-sharing-style data amplification that [Push]
   eliminates by sending exactly the per-processor intersections. All five
   optimization levels apply, as in the paper. *)

module Tmk = Dsm_tmk.Tmk
module Shm = Dsm_tmk.Shm
module Mp = Dsm_mp.Mp
module Hpf = Dsm_hpf.Hpf
open App_common

let name = "3D-FFT"

type params = { n : int; iters : int; bf_cost : float }

(* Stand-ins for the paper's 2^6x2^6x2^6 and 2^5x2^6x2^5 sets; per-iteration
   compute calibrated to Table 1. *)
let large = { n = 32; iters = 3; bf_cost = 6.4 }
let small = { n = 16; iters = 3; bf_cost = 13.0 }
let size_name p = Printf.sprintf "%dx%dx%d" p.n p.n p.n
let levels = [ Base; Comm_aggr; Cons_elim; Sync_merge; Push_opt ]

let init_re i1 i2 i3 =
  float_of_int ((((i1 * 7) + (i2 * 13) + (i3 * 29)) mod 201) - 100) /. 100.0

let init_im i1 i2 i3 =
  float_of_int ((((i1 * 11) + (i2 * 3) + (i3 * 17)) mod 201) - 100) /. 100.0

(* the per-iteration "evolve" factor: a unit-modulus rotation *)
let evolve_re = cos 0.7
let evolve_im = sin 0.7

(* In-place iterative radix-2 complex FFT over local buffers. *)
let fft_inplace re im =
  let n = Array.length re in
  (* bit reversal *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* butterflies *)
  let len = ref 2 in
  while !len <= n do
    let ang = -2.0 *. Float.pi /. float_of_int !len in
    let wr = cos ang
    and wi = sin ang in
    let half = !len / 2 in
    let i = ref 0 in
    while !i < n do
      let cr = ref 1.0
      and ci = ref 0.0 in
      for k = 0 to half - 1 do
        let a = !i + k
        and b = !i + k + half in
        let tr = (re.(b) *. !cr) -. (im.(b) *. !ci) in
        let ti = (re.(b) *. !ci) +. (im.(b) *. !cr) in
        re.(b) <- re.(a) -. tr;
        im.(b) <- im.(a) -. ti;
        re.(a) <- re.(a) +. tr;
        im.(a) <- im.(a) +. ti;
        let nr = (!cr *. wr) -. (!ci *. wi) in
        ci := (!cr *. wi) +. (!ci *. wr);
        cr := nr
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

(* slab bounds along one dimension *)
let bounds n nprocs p =
  let w = (n + nprocs - 1) / nprocs in
  (p * w, min (n - 1) (((p + 1) * w) - 1))

(* {1 Sequential reference}

   Identical operation sequence on plain arrays; X and Y are stored flat in
   the same layout as the shared versions: X.(d0 + 2n*(i2 + n*i3)). *)

let seq_arrays { n; iters; _ } =
  let sz = 2 * n * n * n in
  let x = Array.make sz 0.0 in
  let y = Array.make sz 0.0 in
  let idx i1 i2 i3 = 2 * (i1 + (n * (i2 + (n * i3)))) in
  for i3 = 0 to n - 1 do
    for i2 = 0 to n - 1 do
      for i1 = 0 to n - 1 do
        x.(idx i1 i2 i3) <- init_re i1 i2 i3;
        x.(idx i1 i2 i3 + 1) <- init_im i1 i2 i3
      done
    done
  done;
  let re = Array.make n 0.0
  and im = Array.make n 0.0 in
  for _k = 1 to iters do
    (* evolve *)
    for t = 0 to (n * n * n) - 1 do
      let r = x.(2 * t)
      and i = x.((2 * t) + 1) in
      x.(2 * t) <- (r *. evolve_re) -. (i *. evolve_im);
      x.((2 * t) + 1) <- (r *. evolve_im) +. (i *. evolve_re)
    done;
    (* FFT along i1 then i2, per i3 plane *)
    for i3 = 0 to n - 1 do
      for i2 = 0 to n - 1 do
        for i1 = 0 to n - 1 do
          re.(i1) <- x.(idx i1 i2 i3);
          im.(i1) <- x.(idx i1 i2 i3 + 1)
        done;
        fft_inplace re im;
        for i1 = 0 to n - 1 do
          x.(idx i1 i2 i3) <- re.(i1);
          x.(idx i1 i2 i3 + 1) <- im.(i1)
        done
      done;
      for i1 = 0 to n - 1 do
        for i2 = 0 to n - 1 do
          re.(i2) <- x.(idx i1 i2 i3);
          im.(i2) <- x.(idx i1 i2 i3 + 1)
        done;
        fft_inplace re im;
        for i2 = 0 to n - 1 do
          x.(idx i1 i2 i3) <- re.(i2);
          x.(idx i1 i2 i3 + 1) <- im.(i2)
        done
      done
    done;
    (* transpose x<->z into Y: Y(i3,i2;i1) = X(i1,i2,i3) *)
    for i1 = 0 to n - 1 do
      for i2 = 0 to n - 1 do
        for i3 = 0 to n - 1 do
          y.(idx i3 i2 i1) <- x.(idx i1 i2 i3);
          y.(idx i3 i2 i1 + 1) <- x.(idx i1 i2 i3 + 1)
        done
      done
    done;
    (* FFT along z (dim0 of Y) *)
    for i1 = 0 to n - 1 do
      for i2 = 0 to n - 1 do
        for i3 = 0 to n - 1 do
          re.(i3) <- y.(idx i3 i2 i1);
          im.(i3) <- y.(idx i3 i2 i1 + 1)
        done;
        fft_inplace re im;
        for i3 = 0 to n - 1 do
          y.(idx i3 i2 i1) <- re.(i3);
          y.(idx i3 i2 i1 + 1) <- im.(i3)
        done
      done
    done;
    (* transpose back *)
    for i3 = 0 to n - 1 do
      for i2 = 0 to n - 1 do
        for i1 = 0 to n - 1 do
          x.(idx i1 i2 i3) <- y.(idx i3 i2 i1);
          x.(idx i1 i2 i3 + 1) <- y.(idx i3 i2 i1 + 1)
        done
      done
    done
  done;
  x

let seq_memo : (int * int, float array) Hashtbl.t = Hashtbl.create 4

let reference prm =
  memo seq_memo (prm.n, prm.iters) (fun () -> seq_arrays prm)

(* virtual-time charges per iteration, per processor slab of width w *)
let fft_phase_cost bf n cols =
  bf *. float_of_int (cols * (n / 2)) *. (log (float_of_int n) /. log 2.0)

let seq_time_us { n; iters; bf_cost } =
  let cols = n * n in
  let per_iter =
    (bf_cost /. 4.0 *. float_of_int (n * n * n)) (* evolve *)
    +. (3.0 *. fft_phase_cost bf_cost n cols) (* three FFT dimensions *)
    +. (bf_cost /. 2.0 *. float_of_int (2 * n * n * n))
    (* two transposes *)
  in
  float_of_int iters *. per_iter

(* {1 TreadMarks versions} *)

let run_tmk ?trace ?(digest = false) ?plan cfg ({ n; iters; bf_cost } as prm) ~level ~async =
  let sys = Tmk.make ?plan cfg in
  let x = Tmk.Alloc.array sys "x" Tmk.F64 ~dims:[ (2 * n); n; n ] in
  let y = Tmk.Alloc.array sys "y" Tmk.F64 ~dims:[ (2 * n); n; n ] in
  let np = cfg.Dsm_sim.Config.nprocs in
  (* X is slab-distributed along i3 (last dim), Y along i1 (its last dim,
     which holds X's first) *)
  let x_own_sections =
    Array.init np (fun q ->
        let lo, hi = bounds n np q in
        [ Shm.F64_3.section x (0, (2 * n) - 1, 1) (0, n - 1, 1) (lo, hi, 1) ])
  and x_slice_sections =
    (* the transpose reader q needs i1 in q's Y-slab, all i2, i3 *)
    Array.init np (fun q ->
        let lo, hi = bounds n np q in
        [ Shm.F64_3.section x (2 * lo, (2 * hi) + 1, 1) (0, n - 1, 1) (0, n - 1, 1) ])
  and y_own_sections =
    Array.init np (fun q ->
        let lo, hi = bounds n np q in
        [ Shm.F64_3.section y (0, (2 * n) - 1, 1) (0, n - 1, 1) (lo, hi, 1) ])
  and y_slice_sections =
    Array.init np (fun q ->
        let lo, hi = bounds n np q in
        [ Shm.F64_3.section y (2 * lo, (2 * hi) + 1, 1) (0, n - 1, 1) (0, n - 1, 1) ])
  in
  Tmk.run ?trace sys (fun t ->
      let p = Tmk.pid t in
      let lo, hi = bounds n np p in
      let w = hi - lo + 1 in
      let re = Array.make n 0.0
      and im = Array.make n 0.0 in
      (* initialize own X slab *)
      (match level with
      | Cons_elim | Sync_merge | Push_opt ->
          Tmk.validate t x_own_sections.(p) Tmk.Write_all
      | Base | Comm_aggr -> ());
      for i3 = lo to hi do
        for i2 = 0 to n - 1 do
          for i1 = 0 to n - 1 do
            Shm.F64_3.set t x (2 * i1) i2 i3 (init_re i1 i2 i3);
            Shm.F64_3.set t x ((2 * i1) + 1) i2 i3 (init_im i1 i2 i3)
          done
        done
      done;
      Tmk.charge t (bf_cost /. 4.0 *. float_of_int (n * n * w));
      Tmk.barrier t;
      for _k = 1 to iters do
        (* evolve + 2D FFT on own X slab: the slab is overwritten after
           being read *)
        (match level with
        | Cons_elim | Sync_merge | Push_opt ->
            Tmk.validate t x_own_sections.(p) Tmk.Read_write_all
        | Comm_aggr -> Tmk.validate t x_own_sections.(p) Tmk.Read_write
        | Base -> ());
        for i3 = lo to hi do
          for i2 = 0 to n - 1 do
            for i1 = 0 to n - 1 do
              let r = Shm.F64_3.get t x (2 * i1) i2 i3
              and i = Shm.F64_3.get t x ((2 * i1) + 1) i2 i3 in
              Shm.F64_3.set t x (2 * i1) i2 i3
                ((r *. evolve_re) -. (i *. evolve_im));
              Shm.F64_3.set t x ((2 * i1) + 1) i2 i3
                ((r *. evolve_im) +. (i *. evolve_re))
            done
          done
        done;
        Tmk.charge t (bf_cost /. 4.0 *. float_of_int (n * n * w));
        for i3 = lo to hi do
          for i2 = 0 to n - 1 do
            for i1 = 0 to n - 1 do
              re.(i1) <- Shm.F64_3.get t x (2 * i1) i2 i3;
              im.(i1) <- Shm.F64_3.get t x ((2 * i1) + 1) i2 i3
            done;
            fft_inplace re im;
            for i1 = 0 to n - 1 do
              Shm.F64_3.set t x (2 * i1) i2 i3 re.(i1);
              Shm.F64_3.set t x ((2 * i1) + 1) i2 i3 im.(i1)
            done
          done;
          for i1 = 0 to n - 1 do
            for i2 = 0 to n - 1 do
              re.(i2) <- Shm.F64_3.get t x (2 * i1) i2 i3;
              im.(i2) <- Shm.F64_3.get t x ((2 * i1) + 1) i2 i3
            done;
            fft_inplace re im;
            for i2 = 0 to n - 1 do
              Shm.F64_3.set t x (2 * i1) i2 i3 re.(i2);
              Shm.F64_3.set t x ((2 * i1) + 1) i2 i3 im.(i2)
            done
          done
        done;
        Tmk.charge t (2.0 *. fft_phase_cost bf_cost n (n * w));
        (* barrier A: producer-consumer for the transpose *)
        (match level with
        | Sync_merge ->
            Tmk.validate_w_sync t ~async x_slice_sections.(p) Tmk.Read;
            Tmk.barrier t
        | Push_opt ->
            Tmk.push t ~read_sections:x_slice_sections
              ~write_sections:x_own_sections
        | Base | Comm_aggr | Cons_elim -> Tmk.barrier t);
        (match level with
        | Comm_aggr | Cons_elim ->
            Tmk.validate t ~async x_slice_sections.(p) Tmk.Read
        | Base | Sync_merge | Push_opt -> ());
        (* transpose into own Y slab, then FFT along z *)
        (match level with
        | Cons_elim | Sync_merge | Push_opt ->
            Tmk.validate t y_own_sections.(p) Tmk.Write_all
        | Comm_aggr -> Tmk.validate t y_own_sections.(p) Tmk.Write
        | Base -> ());
        for i1 = lo to hi do
          for i2 = 0 to n - 1 do
            for i3 = 0 to n - 1 do
              Shm.F64_3.set t y (2 * i3) i2 i1 (Shm.F64_3.get t x (2 * i1) i2 i3);
              Shm.F64_3.set t y ((2 * i3) + 1) i2 i1
                (Shm.F64_3.get t x ((2 * i1) + 1) i2 i3)
            done
          done
        done;
        Tmk.charge t (bf_cost /. 2.0 *. float_of_int (n * n * w));
        for i1 = lo to hi do
          for i2 = 0 to n - 1 do
            for i3 = 0 to n - 1 do
              re.(i3) <- Shm.F64_3.get t y (2 * i3) i2 i1;
              im.(i3) <- Shm.F64_3.get t y ((2 * i3) + 1) i2 i1
            done;
            fft_inplace re im;
            for i3 = 0 to n - 1 do
              Shm.F64_3.set t y (2 * i3) i2 i1 re.(i3);
              Shm.F64_3.set t y ((2 * i3) + 1) i2 i1 im.(i3)
            done
          done
        done;
        Tmk.charge t (fft_phase_cost bf_cost n (n * w));
        (* barrier B: transpose back *)
        (match level with
        | Sync_merge ->
            Tmk.validate_w_sync t ~async y_slice_sections.(p) Tmk.Read;
            Tmk.barrier t
        | Push_opt ->
            Tmk.push t ~read_sections:y_slice_sections
              ~write_sections:y_own_sections
        | Base | Comm_aggr | Cons_elim -> Tmk.barrier t);
        (match level with
        | Comm_aggr | Cons_elim ->
            Tmk.validate t ~async y_slice_sections.(p) Tmk.Read
        | Base | Sync_merge | Push_opt -> ());
        (match level with
        | Cons_elim | Sync_merge | Push_opt ->
            Tmk.validate t x_own_sections.(p) Tmk.Write_all
        | Comm_aggr -> Tmk.validate t x_own_sections.(p) Tmk.Write
        | Base -> ());
        for i3 = lo to hi do
          for i2 = 0 to n - 1 do
            for i1 = 0 to n - 1 do
              Shm.F64_3.set t x (2 * i1) i2 i3 (Shm.F64_3.get t y (2 * i3) i2 i1);
              Shm.F64_3.set t x ((2 * i1) + 1) i2 i3
                (Shm.F64_3.get t y ((2 * i3) + 1) i2 i1)
            done
          done
        done;
        Tmk.charge t (bf_cost /. 2.0 *. float_of_int (n * n * w));
        (* barrier C: end of iteration (no cross-processor reads follow
           until the next transpose, so it stays a plain barrier) *)
        Tmk.barrier t
      done);
  let time_us = Tmk.elapsed sys in
  let stats = Tmk.total_stats sys in
  let xref = reference prm in
  let err = ref 0.0 in
  Tmk.run sys (fun t ->
      if Tmk.pid t = 0 then
        for i3 = 0 to n - 1 do
          for i2 = 0 to n - 1 do
            for d0 = 0 to (2 * n) - 1 do
              let v = Shm.F64_3.get t x d0 i2 i3 in
              err :=
                combine_err !err
                  (v -. xref.(d0 + (2 * n * (i2 + (n * i3)))))
            done
          done
        done);
  let homes = Tmk.homes sys in
  let classes = Tmk.adapt_classes sys in
  make_result ~time_us ~stats ~max_err:!err
    ~digest:(if digest then Tmk.digest sys else "")
    ~homes ~classes ()

(* {1 Message-passing versions}

   Local slabs; the transpose is an all-to-all where each pair exchanges the
   intersection of the sender's slab and the receiver's target slab. *)

let run_mp ~pack cfg ({ n; iters; bf_cost } as prm) =
  let sys = Mp.make cfg in
  let np = cfg.Dsm_sim.Config.nprocs in
  let results = Array.make np [||] in
  Mp.run sys (fun t ->
      let p = Mp.pid t in
      let lo, hi = bounds n np p in
      let w = hi - lo + 1 in
      (* local slabs, same index order as the shared layout *)
      let idx i1 i2 i3l = 2 * (i1 + (n * (i2 + (n * i3l)))) in
      let x = Array.make (2 * n * n * w) 0.0 in
      let y = Array.make (2 * n * n * w) 0.0 in
      for i3 = lo to hi do
        for i2 = 0 to n - 1 do
          for i1 = 0 to n - 1 do
            x.(idx i1 i2 (i3 - lo)) <- init_re i1 i2 i3;
            x.(idx i1 i2 (i3 - lo) + 1) <- init_im i1 i2 i3
          done
        done
      done;
      Mp.charge t (bf_cost /. 4.0 *. float_of_int (n * n * w));
      let re = Array.make n 0.0
      and im = Array.make n 0.0 in
      let transpose src dst =
        (* send to q: src(i1 in q's slab, all i2, own i3) *)
        for q = 0 to np - 1 do
          if q <> p then begin
            let qlo, qhi = bounds n np q in
            let qw = qhi - qlo + 1 in
            let buf = Array.make (2 * qw * n * w) 0.0 in
            let pos = ref 0 in
            for i3l = 0 to w - 1 do
              for i2 = 0 to n - 1 do
                for i1 = qlo to qhi do
                  buf.(!pos) <- src.(idx i1 i2 i3l);
                  buf.(!pos + 1) <- src.(idx i1 i2 i3l + 1);
                  pos := !pos + 2
                done
              done
            done;
            pack t (2 * qw * n * w);
            Mp.send_floats t ~dst:q ~tag:(300 + p) buf
          end
        done;
        (* local part *)
        for i3l = 0 to w - 1 do
          for i2 = 0 to n - 1 do
            for i1 = lo to hi do
              dst.(idx (i3l + lo) i2 (i1 - lo)) <- src.(idx i1 i2 i3l);
              dst.(idx (i3l + lo) i2 (i1 - lo) + 1) <- src.(idx i1 i2 i3l + 1)
            done
          done
        done;
        for q = 0 to np - 1 do
          if q <> p then begin
            let qlo, qhi = bounds n np q in
            let qw = qhi - qlo + 1 in
            let buf = Mp.recv_floats t ~src:q ~tag:(300 + q) in
            pack t (2 * qw * n * w);
            (* buf holds src_q(i1 in own slab, i2, i3 in q's slab):
               dst(i3, i2; i1) = src(i1, i2, i3) *)
            let pos = ref 0 in
            for i3 = qlo to qhi do
              for i2 = 0 to n - 1 do
                for i1 = lo to hi do
                  dst.(idx i3 i2 (i1 - lo)) <- buf.(!pos);
                  dst.(idx i3 i2 (i1 - lo) + 1) <- buf.(!pos + 1);
                  pos := !pos + 2
                done
              done
            done
          end
        done;
        Mp.charge t (bf_cost /. 2.0 *. float_of_int (n * n * w))
      in
      for _k = 1 to iters do
        (* evolve + 2D FFT *)
        for i3l = 0 to w - 1 do
          for i2 = 0 to n - 1 do
            for i1 = 0 to n - 1 do
              let r = x.(idx i1 i2 i3l)
              and i = x.(idx i1 i2 i3l + 1) in
              x.(idx i1 i2 i3l) <- (r *. evolve_re) -. (i *. evolve_im);
              x.(idx i1 i2 i3l + 1) <- (r *. evolve_im) +. (i *. evolve_re)
            done
          done
        done;
        Mp.charge t (bf_cost /. 4.0 *. float_of_int (n * n * w));
        for i3l = 0 to w - 1 do
          for i2 = 0 to n - 1 do
            for i1 = 0 to n - 1 do
              re.(i1) <- x.(idx i1 i2 i3l);
              im.(i1) <- x.(idx i1 i2 i3l + 1)
            done;
            fft_inplace re im;
            for i1 = 0 to n - 1 do
              x.(idx i1 i2 i3l) <- re.(i1);
              x.(idx i1 i2 i3l + 1) <- im.(i1)
            done
          done;
          for i1 = 0 to n - 1 do
            for i2 = 0 to n - 1 do
              re.(i2) <- x.(idx i1 i2 i3l);
              im.(i2) <- x.(idx i1 i2 i3l + 1)
            done;
            fft_inplace re im;
            for i2 = 0 to n - 1 do
              x.(idx i1 i2 i3l) <- re.(i2);
              x.(idx i1 i2 i3l + 1) <- im.(i2)
            done
          done
        done;
        Mp.charge t (2.0 *. fft_phase_cost bf_cost n (n * w));
        transpose x y;
        for i1l = 0 to w - 1 do
          for i2 = 0 to n - 1 do
            for i3 = 0 to n - 1 do
              re.(i3) <- y.(idx i3 i2 i1l);
              im.(i3) <- y.(idx i3 i2 i1l + 1)
            done;
            fft_inplace re im;
            for i3 = 0 to n - 1 do
              y.(idx i3 i2 i1l) <- re.(i3);
              y.(idx i3 i2 i1l + 1) <- im.(i3)
            done
          done
        done;
        Mp.charge t (fft_phase_cost bf_cost n (n * w));
        transpose y x
      done;
      results.(p) <- x);
  let xref = reference prm in
  let err = ref 0.0 in
  Array.iteri
    (fun q xs ->
      let qlo, qhi = bounds n np q in
      for i3 = qlo to qhi do
        for i2 = 0 to n - 1 do
          for d0 = 0 to (2 * n) - 1 do
            err :=
              combine_err !err
                (xs.(d0 + (2 * n * (i2 + (n * (i3 - qlo)))))
                -. xref.(d0 + (2 * n * (i2 + (n * i3)))))
          done
        done
      done)
    results;
  make_result ~time_us:(Mp.elapsed sys) ~stats:(Mp.total_stats sys)
    ~max_err:!err ()

let run_pvm cfg prm = run_mp ~pack:(fun _ _ -> ()) cfg prm

let run_xhpf =
  Some (fun cfg prm -> run_mp ~pack:(fun t elems -> Hpf.charge_pack t elems) cfg prm)

(* {1 Workload.S instance: sizes are the params records, no behavior
      knobs} *)

type size = params
type behavior = unit

let sizes = [ ("large", large); ("small", small) ]
let default_behavior = ()
let knob_doc = []
let with_knob = Workload.no_knobs ~workload:name

let tmk ?trace ?digest ?plan cfg ~size ~behavior:() ~level ~async =
  run_tmk ?trace ?digest ?plan cfg size ~level ~async

let pvm cfg ~size ~behavior:() = run_pvm cfg size
let xhpf = Option.map (fun f cfg ~size ~behavior:() -> f cfg size) run_xhpf

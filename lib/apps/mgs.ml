(* Modified Gram-Schmidt: computes an orthonormal basis for a set of
   m-dimensional vectors (stored as columns), distributed cyclically. At
   iteration i the owner normalizes vector i; after a barrier every
   processor makes its own vectors j > i orthogonal to vector i. Vector i
   is logically broadcast — like Gauss, barrier-time broadcast (sync+data
   merge) is the profitable optimization; the cyclic distribution's strided
   ownership adds run-time overhead for the compiler-optimized and XHPF
   versions relative to PVMe, as the paper observes. *)

module Tmk = Dsm_tmk.Tmk
module Shm = Dsm_tmk.Shm
module Mp = Dsm_mp.Mp
module Hpf = Dsm_hpf.Hpf
open App_common

let name = "MGS"

type params = { m : int; n : int; dot_cost : float }

(* Per-iteration uniprocessor compute calibrated to Table 1 (2048^2:
   219 ms/iter; 1024^2: 55 ms/iter => ~6.7 us per element of a dot+axpy). *)
let large = { m = 256; n = 256; dot_cost = 6.7 }
let small = { m = 128; n = 128; dot_cost = 6.7 }

(* Keep the paper's geometry: a vector (column) is an exact multiple of the
   page size (see Gauss). *)
let page_size { m; _ } = if m >= 256 then 2048 else 1024
let size_name p = Printf.sprintf "%dx%d" p.m p.n

let norm_cost d = d *. 0.8

let levels = [ Base; Comm_aggr; Cons_elim; Sync_merge ]

let init_value i j =
  (float_of_int ((((i * 17) + (j * 257) + (i * j)) mod 1003) - 501) /. 197.0)
  +. if i = j then 4.0 else 0.0

(* {1 Sequential reference} *)

let seq_arrays { m; n; _ } =
  let q = Array.init n (fun j -> Array.init m (fun i -> init_value i j)) in
  for i = 0 to n - 1 do
    let qi = q.(i) in
    let norm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 qi) in
    for r = 0 to m - 1 do
      qi.(r) <- qi.(r) /. norm
    done;
    for j = i + 1 to n - 1 do
      let qj = q.(j) in
      let d = ref 0.0 in
      for r = 0 to m - 1 do
        d := !d +. (qi.(r) *. qj.(r))
      done;
      for r = 0 to m - 1 do
        qj.(r) <- qj.(r) -. (!d *. qi.(r))
      done
    done
  done;
  q

let seq_memo : (int * int, float array array) Hashtbl.t = Hashtbl.create 4

let reference p = memo seq_memo (p.m, p.n) (fun () -> seq_arrays p)

let seq_time_us { m; n; dot_cost } =
  let t = ref 0.0 in
  for i = 0 to n - 1 do
    t := !t +. (norm_cost dot_cost *. float_of_int m);
    t := !t +. (dot_cost *. float_of_int (m * (n - 1 - i)))
  done;
  !t

(* {1 TreadMarks versions} *)

let run_tmk ?trace ?(digest = false) ?plan cfg ({ m; n; dot_cost } as prm) ~level ~async =
  let cfg = { cfg with Dsm_sim.Config.page_size = page_size prm } in
  let sys = Tmk.make ?plan cfg in
  let q = Tmk.Alloc.array sys "q" Tmk.F64 ~dims:[ m; n ] in
  let np = cfg.Dsm_sim.Config.nprocs in
  Tmk.run ?trace sys (fun t ->
      let p = Tmk.pid t in
      for j = 0 to n - 1 do
        if j mod np = p then begin
          for i = 0 to m - 1 do
            Shm.F64_2.set t q i j (init_value i j)
          done;
          Tmk.charge t (0.03 *. float_of_int m)
        end
      done;
      Tmk.barrier t;
      for i = 0 to n - 1 do
        let owner = i mod np in
        let vec_section = [ Shm.F64_2.section q (0, m - 1, 1) (i, i, 1) ] in
        if p = owner then begin
          (* normalize: the whole vector is read, then overwritten *)
          (match level with
          | Cons_elim | Sync_merge ->
              Tmk.validate t vec_section Tmk.Read_write_all
          | Comm_aggr -> Tmk.validate t vec_section Tmk.Read_write
          | Base | Push_opt -> ());
          let s = ref 0.0 in
          for r = 0 to m - 1 do
            let x = Shm.F64_2.get t q r i in
            s := !s +. (x *. x)
          done;
          let norm = sqrt !s in
          for r = 0 to m - 1 do
            Shm.F64_2.set t q r i (Shm.F64_2.get t q r i /. norm)
          done;
          Tmk.charge t (norm_cost dot_cost *. float_of_int m)
        end
        else begin
          match level with
          | Sync_merge -> Tmk.validate_w_sync t ~async vec_section Tmk.Read
          | Base | Comm_aggr | Cons_elim | Push_opt -> ()
        end;
        Tmk.barrier t;
        if p <> owner then begin
          match level with
          | Comm_aggr | Cons_elim -> Tmk.validate t ~async vec_section Tmk.Read
          | Base | Sync_merge | Push_opt -> ()
        end;
        (match level with
        | Comm_aggr | Cons_elim | Sync_merge ->
            let own_cols = ref [] in
            for j = i + 1 to n - 1 do
              if j mod np = p then
                own_cols :=
                  Shm.F64_2.section q (0, m - 1, 1) (j, j, 1) :: !own_cols
            done;
            if !own_cols <> [] then Tmk.validate t !own_cols Tmk.Read_write
        | Base | Push_opt -> ());
        (* copy vector i to a private buffer: the shared reads fault once,
           the repeated uses below are local *)
        let vi = Array.init m (fun r -> Shm.F64_2.get t q r i) in
        for j = i + 1 to n - 1 do
          if j mod np = p then begin
            let d = ref 0.0 in
            for r = 0 to m - 1 do
              d := !d +. (vi.(r) *. Shm.F64_2.get t q r j)
            done;
            let dv = !d in
            for r = 0 to m - 1 do
              Shm.F64_2.rmw t q r j (fun x -> x -. (dv *. vi.(r)))
            done;
            Tmk.charge t (dot_cost *. float_of_int m)
          end
        done;
        Tmk.barrier t
      done);
  let time_us = Tmk.elapsed sys in
  let stats = Tmk.total_stats sys in
  let qref = reference prm in
  let err = ref 0.0 in
  Tmk.run sys (fun t ->
      if Tmk.pid t = 0 then
        for j = 0 to n - 1 do
          for i = 0 to m - 1 do
            err := combine_err !err (Shm.F64_2.get t q i j -. qref.(j).(i))
          done
        done);
  let homes = Tmk.homes sys in
  let classes = Tmk.adapt_classes sys in
  make_result ~time_us ~stats ~max_err:!err
    ~digest:(if digest then Tmk.digest sys else "")
    ~homes ~classes ()

(* {1 Message-passing versions} *)

let run_mp ~bcast cfg ({ m; n; dot_cost } as prm) =
  let sys = Mp.make cfg in
  let results = Array.make cfg.Dsm_sim.Config.nprocs [||] in
  Mp.run sys (fun t ->
      let p = Mp.pid t
      and np = Mp.nprocs t in
      let ncols = (n - p + np - 1) / np in
      let cols =
        Array.init ncols (fun c -> Array.init m (fun i -> init_value i ((c * np) + p)))
      in
      Mp.charge t (0.03 *. float_of_int (m * ncols));
      for i = 0 to n - 1 do
        let owner = i mod np in
        let vi =
          if p = owner then begin
            let qi = cols.(i / np) in
            let s = ref 0.0 in
            for r = 0 to m - 1 do
              s := !s +. (qi.(r) *. qi.(r))
            done;
            let norm = sqrt !s in
            for r = 0 to m - 1 do
              qi.(r) <- qi.(r) /. norm
            done;
            Mp.charge t (norm_cost dot_cost *. float_of_int m);
            qi
          end
          else [||]
        in
        let vi = bcast t ~root:owner ~tag:i vi in
        for j = i + 1 to n - 1 do
          if j mod np = p then begin
            let qj = cols.(j / np) in
            let d = ref 0.0 in
            for r = 0 to m - 1 do
              d := !d +. (vi.(r) *. qj.(r))
            done;
            for r = 0 to m - 1 do
              qj.(r) <- qj.(r) -. (!d *. vi.(r))
            done;
            Mp.charge t (dot_cost *. float_of_int m)
          end
        done
      done;
      results.(p) <- cols);
  let qref = reference prm in
  let err = ref 0.0 in
  Array.iteri
    (fun p cols ->
      Array.iteri
        (fun c col ->
          let j = (c * cfg.Dsm_sim.Config.nprocs) + p in
          for i = 0 to m - 1 do
            err := combine_err !err (col.(i) -. qref.(j).(i))
          done)
        cols)
    results;
  make_result ~time_us:(Mp.elapsed sys) ~stats:(Mp.total_stats sys)
    ~max_err:!err ()

let run_pvm cfg prm =
  run_mp ~bcast:(fun t ~root ~tag msg -> Mp.bcast_floats t ~root ~tag msg) cfg prm

let run_xhpf =
  Some
    (fun cfg prm ->
      run_mp
        ~bcast:(fun t ~root ~tag msg -> Hpf.bcast_section t ~root ~tag msg)
        cfg prm)

(* {1 Workload.S instance: sizes are the params records, no behavior
      knobs} *)

type size = params
type behavior = unit

let sizes = [ ("large", large); ("small", small) ]
let default_behavior = ()
let knob_doc = []
let with_knob = Workload.no_knobs ~workload:name

let tmk ?trace ?digest ?plan cfg ~size ~behavior:() ~level ~async =
  run_tmk ?trace ?digest ?plan cfg size ~level ~async

let pvm cfg ~size ~behavior:() = run_pvm cfg size
let xhpf = Option.map (fun f cfg ~size ~behavior:() -> f cfg size) run_xhpf

(* Gaussian elimination with partial pivoting, columns distributed
   cyclically for load balance (Section 5 of the paper). At iteration k the
   owner of column k selects the pivot row and computes the multiplier
   column; the pivot row number and the multipliers are "logically
   broadcast" through a shared work array that every other processor reads
   after the barrier — the pattern that makes merging data movement with
   synchronization (barrier-time broadcast) the most effective optimization
   for this program. *)

module Tmk = Dsm_tmk.Tmk
module Shm = Dsm_tmk.Shm
module Mp = Dsm_mp.Mp
module Hpf = Dsm_hpf.Hpf
open App_common

let name = "Gauss"

type params = { m : int; update_cost : float }

(* Per-iteration uniprocessor compute calibrated to Table 1 (2048^2:
   1.63 s per elimination step; 1024^2: 0.27 s). *)
let large = { m = 512; update_cost = 18.7 }
let small = { m = 256; update_cost = 12.2 }

(* Columns are contiguous and cyclically distributed; as in the paper's
   2048x2048 runs, a column is an exact multiple of the page size (the page
   size is scaled with the data set, keeping the paper's layout geometry and
   avoiding false sharing the original did not have). *)
let page_size { m; _ } = if m >= 512 then 4096 else 2048
let size_name p = Printf.sprintf "%dx%d" p.m p.m

(* serial-section costs derive from the update cost *)
let pivot_scan_cost u = u /. 4.0
let mult_cost u = u /. 2.0
let swap_cost u = u /. 5.0

let levels = [ Base; Comm_aggr; Cons_elim; Sync_merge ]

let init_value i j =
  let v = float_of_int ((((i * 131) + (j * 37)) mod 2003) - 1001) /. 173.0 in
  if i = j then v +. 8.0 else v

(* {1 Sequential reference}

   The parallel versions perform exactly the same per-element operations in
   the same order, so results match bit-for-bit. *)

let seq_arrays { m; _ } =
  let a = Array.init m (fun j -> Array.init m (fun i -> init_value i j)) in
  (* a.(j).(i): column-major like the shared array *)
  for k = 0 to m - 2 do
    let colk = a.(k) in
    let piv = ref k in
    for i = k + 1 to m - 1 do
      if abs_float colk.(i) > abs_float colk.(!piv) then piv := i
    done;
    let piv = !piv in
    if piv <> k then begin
      let tmp = colk.(k) in
      colk.(k) <- colk.(piv);
      colk.(piv) <- tmp
    end;
    let l = Array.make m 0.0 in
    for i = k + 1 to m - 1 do
      l.(i) <- colk.(i) /. colk.(k);
      colk.(i) <- l.(i)
    done;
    for j = k + 1 to m - 1 do
      let colj = a.(j) in
      if piv <> k then begin
        let tmp = colj.(k) in
        colj.(k) <- colj.(piv);
        colj.(piv) <- tmp
      end;
      for i = k + 1 to m - 1 do
        colj.(i) <- colj.(i) -. (l.(i) *. colj.(k))
      done
    done
  done;
  a

let seq_memo : (int, float array array) Hashtbl.t = Hashtbl.create 4

let reference p = memo seq_memo p.m (fun () -> seq_arrays p)

let seq_time_us { m; update_cost = u } =
  let t = ref 0.0 in
  for k = 0 to m - 2 do
    let rem = float_of_int (m - 1 - k) in
    t :=
      !t
      +. (rem *. pivot_scan_cost u)
      +. (rem *. mult_cost u)
      +. (rem *. ((rem *. u) +. swap_cost u))
  done;
  !t

(* {1 TreadMarks versions} *)

let run_tmk ?trace ?(digest = false) ?plan cfg ({ m; update_cost = u } as prm) ~level ~async =
  let cfg = { cfg with Dsm_sim.Config.page_size = page_size prm } in
  let sys = Tmk.make ?plan cfg in
  let a = Tmk.Alloc.array sys "a" Tmk.F64 ~dims:[ m; m ] in
  (* work(k+1) = pivot row (as float); work(k+1+d) = multiplier l(k+d) *)
  let work = Tmk.Alloc.array sys "work" Tmk.F64 ~dims:[ (m + 1) ] in
  let np = cfg.Dsm_sim.Config.nprocs in
  Tmk.run ?trace sys (fun t ->
      let p = Tmk.pid t in
      (* initialize own (cyclic) columns *)
      for j = 0 to m - 1 do
        if j mod np = p then begin
          for i = 0 to m - 1 do
            Shm.F64_2.set t a i j (init_value i j)
          done;
          Tmk.charge t (0.03 *. float_of_int m)
        end
      done;
      Tmk.barrier t;
      for k = 0 to m - 2 do
        let owner = k mod np in
        let work_section = [ Shm.F64_1.section work (k + 1, m, 1) ] in
        if p = owner then begin
          (* the owner writes the whole broadcast section first *)
          (match level with
          | Cons_elim | Sync_merge ->
              Tmk.validate t work_section Tmk.Write_all
          | Comm_aggr -> Tmk.validate t work_section Tmk.Write
          | Base | Push_opt -> ());
          let piv = ref k in
          for i = k + 1 to m - 1 do
            if
              abs_float (Shm.F64_2.get t a i k)
              > abs_float (Shm.F64_2.get t a !piv k)
            then piv := i
          done;
          Tmk.charge t (pivot_scan_cost u *. float_of_int (m - 1 - k));
          let piv = !piv in
          if piv <> k then begin
            let tmp = Shm.F64_2.get t a k k in
            Shm.F64_2.set t a k k (Shm.F64_2.get t a piv k);
            Shm.F64_2.set t a piv k tmp
          end;
          Shm.F64_1.set t work (k + 1) (float_of_int piv);
          let akk = Shm.F64_2.get t a k k in
          for i = k + 1 to m - 1 do
            let l = Shm.F64_2.get t a i k /. akk in
            Shm.F64_2.set t a i k l;
            Shm.F64_1.set t work (k + 1 + (i - k)) l
          done;
          Tmk.charge t (mult_cost u *. float_of_int (m - 1 - k))
        end
        else begin
          (* readers announce the section they will read after the barrier *)
          match level with
          | Sync_merge -> Tmk.validate_w_sync t ~async work_section Tmk.Read
          | Base | Comm_aggr | Cons_elim | Push_opt -> ()
        end;
        Tmk.barrier t;
        if p <> owner then begin
          match level with
          | Comm_aggr | Cons_elim ->
              Tmk.validate t ~async work_section Tmk.Read
          | Base | Sync_merge | Push_opt -> ()
        end;
        (* own (cyclic) columns j > k are read-modify-written: validating
           them in bulk bypasses the per-page write faults; the strided
           sections cost per-column run-time work, the overhead the paper
           attributes to the cyclic access pattern *)
        (match level with
        | Comm_aggr | Cons_elim | Sync_merge ->
            let own_cols = ref [] in
            for j = k + 1 to m - 1 do
              if j mod np = p then
                own_cols :=
                  Shm.F64_2.section a (0, m - 1, 1) (j, j, 1) :: !own_cols
            done;
            if !own_cols <> [] then Tmk.validate t !own_cols Tmk.Read_write
        | Base | Push_opt -> ());
        let piv = int_of_float (Shm.F64_1.get t work (k + 1)) in
        (* copy the multipliers to a private buffer; the shared reads fault
           once, further uses are local *)
        let l = Array.make m 0.0 in
        for i = k + 1 to m - 1 do
          l.(i) <- Shm.F64_1.get t work (k + 1 + (i - k))
        done;
        (* update own columns j > k *)
        for j = k + 1 to m - 1 do
          if j mod np = p then begin
            if piv <> k then begin
              let tmp = Shm.F64_2.get t a k j in
              Shm.F64_2.set t a k j (Shm.F64_2.get t a piv j);
              Shm.F64_2.set t a piv j tmp
            end;
            Tmk.charge t (swap_cost u);
            let akj = Shm.F64_2.get t a k j in
            for i = k + 1 to m - 1 do
              Shm.F64_2.rmw t a i j (fun x -> x -. (l.(i) *. akj))
            done;
            Tmk.charge t (u *. float_of_int (m - 1 - k))
          end
        done;
        Tmk.barrier t
      done);
  let time_us = Tmk.elapsed sys in
  let stats = Tmk.total_stats sys in
  let aref = reference prm in
  let err = ref 0.0 in
  Tmk.run sys (fun t ->
      if Tmk.pid t = 0 then
        for j = 0 to m - 1 do
          for i = 0 to m - 1 do
            err := combine_err !err (Shm.F64_2.get t a i j -. aref.(j).(i))
          done
        done);
  let homes = Tmk.homes sys in
  let classes = Tmk.adapt_classes sys in
  make_result ~time_us ~stats ~max_err:!err
    ~digest:(if digest then Tmk.digest sys else "")
    ~homes ~classes ()

(* {1 Message-passing versions} *)

let run_mp ~bcast cfg ({ m; update_cost = u } as prm) =
  let sys = Mp.make cfg in
  let results = Array.make cfg.Dsm_sim.Config.nprocs [||] in
  Mp.run sys (fun t ->
      let p = Mp.pid t
      and np = Mp.nprocs t in
      let ncols = (m - p + np - 1) / np in
      let cols = Array.init ncols (fun c -> Array.init m (fun i -> init_value i ((c * np) + p))) in
      Mp.charge t (0.03 *. float_of_int (m * ncols));
      (* local column index of global column j (owned iff j mod np = p) *)
      let local j = j / np in
      for k = 0 to m - 2 do
        let owner = k mod np in
        let msg =
          if p = owner then begin
            let colk = cols.(local k) in
            let piv = ref k in
            for i = k + 1 to m - 1 do
              if abs_float colk.(i) > abs_float colk.(!piv) then piv := i
            done;
            Mp.charge t (pivot_scan_cost u *. float_of_int (m - 1 - k));
            let piv = !piv in
            if piv <> k then begin
              let tmp = colk.(k) in
              colk.(k) <- colk.(piv);
              colk.(piv) <- tmp
            end;
            let buf = Array.make (m - k) 0.0 in
            buf.(0) <- float_of_int piv;
            for i = k + 1 to m - 1 do
              let l = colk.(i) /. colk.(k) in
              colk.(i) <- l;
              buf.(i - k) <- l
            done;
            Mp.charge t (mult_cost u *. float_of_int (m - 1 - k));
            buf
          end
          else [||]
        in
        let buf = bcast t ~root:owner ~tag:k msg in
        let piv = int_of_float buf.(0) in
        for j = k + 1 to m - 1 do
          if j mod np = p then begin
            let colj = cols.(local j) in
            if piv <> k then begin
              let tmp = colj.(k) in
              colj.(k) <- colj.(piv);
              colj.(piv) <- tmp
            end;
            Mp.charge t (swap_cost u);
            let akj = colj.(k) in
            for i = k + 1 to m - 1 do
              colj.(i) <- colj.(i) -. (buf.(i - k) *. akj)
            done;
            Mp.charge t (u *. float_of_int (m - 1 - k))
          end
        done
      done;
      results.(p) <- cols);
  let aref = reference prm in
  let err = ref 0.0 in
  Array.iteri
    (fun p cols ->
      Array.iteri
        (fun c col ->
          let j = (c * cfg.Dsm_sim.Config.nprocs) + p in
          for i = 0 to m - 1 do
            err := combine_err !err (col.(i) -. aref.(j).(i))
          done)
        cols)
    results;
  make_result ~time_us:(Mp.elapsed sys) ~stats:(Mp.total_stats sys)
    ~max_err:!err ()

let run_pvm cfg prm =
  run_mp ~bcast:(fun t ~root ~tag msg -> Mp.bcast_floats t ~root ~tag msg) cfg prm

let run_xhpf =
  Some
    (fun cfg prm ->
      run_mp
        ~bcast:(fun t ~root ~tag msg -> Hpf.bcast_section t ~root ~tag msg)
        cfg prm)

(* {1 Workload.S instance: sizes are the params records, no behavior
      knobs} *)

type size = params
type behavior = unit

let sizes = [ ("large", large); ("small", small) ]
let default_behavior = ()
let knob_doc = []
let with_knob = Workload.no_knobs ~workload:name

let tmk ?trace ?digest ?plan cfg ~size ~behavior:() ~level ~async =
  run_tmk ?trace ?digest ?plan cfg size ~level ~async

let pvm cfg ~size ~behavior:() = run_pvm cfg size
let xhpf = Option.map (fun f cfg ~size ~behavior:() -> f cfg size) run_xhpf

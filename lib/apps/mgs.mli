(** Modified Gram-Schmidt: orthonormalization of a cyclically distributed
    set of vectors. Like Gauss, the normalized vector is logically
    broadcast each iteration and barrier-time broadcast is the profitable
    optimization; the strided cyclic ownership costs extra run-time work,
    which keeps both the optimized DSM and XHPF behind PVMe (Section 6.2). *)

type params = { m : int; n : int; dot_cost : float }
(** Vector length, vector count and calibrated per-element cost (us). Exposed so callers can size custom runs. *)

val page_size : params -> int
(** The page size the tmk run forces for this problem size. Exposed for
    the static sharing-pattern models ({!Dsm_lint.App_models}). *)

include App_common.APP with type params := params

(** Modified Gram-Schmidt: orthonormalization of a cyclically distributed
    set of vectors. Like Gauss, the normalized vector is logically
    broadcast each iteration and barrier-time broadcast is the profitable
    optimization; the strided cyclic ownership costs extra run-time work,
    which keeps both the optimized DSM and XHPF behind PVMe (Section 6.2). *)

type params = { m : int; n : int; dot_cost : float }
(** Vector length, vector count and calibrated per-element cost (us). Exposed so callers can size custom runs. *)

val page_size : params -> int
(** The page size the tmk run forces for this problem size. Exposed for
    the static sharing-pattern models ({!Dsm_lint.App_models}). *)

val large : params
val small : params

val run_tmk :
  ?trace:Dsm_trace.Sink.t ->
  ?digest:bool ->
  ?plan:Dsm_tmk.Proto_plan.t ->
  Dsm_sim.Config.t ->
  params ->
  level:App_common.opt_level ->
  async:bool ->
  App_common.result
(** Concrete entry point with an explicit [params] record, kept for
    callers that size custom runs; {!tmk} below is the registry-facing
    equivalent. *)

val run_pvm : Dsm_sim.Config.t -> params -> App_common.result
val run_xhpf : (Dsm_sim.Config.t -> params -> App_common.result) option

include Workload.S with type size = params and type behavior = unit

type opt_level = Base | Comm_aggr | Cons_elim | Sync_merge | Push_opt

let opt_level_name = function
  | Base -> "base"
  | Comm_aggr -> "comm-aggr"
  | Cons_elim -> "cons-elim"
  | Sync_merge -> "sync-merge"
  | Push_opt -> "push"

let rank = function
  | Base -> 0
  | Comm_aggr -> 1
  | Cons_elim -> 2
  | Sync_merge -> 3
  | Push_opt -> 4

let level_leq a b = rank a <= rank b

type result = {
  time_us : float;
  stats : Dsm_sim.Stats.t;
  max_err : float;
  digest : string;
      (* content digest of the final shared state, observed through the
         protocol ({!Dsm_tmk.Tmk.digest}); computed only when [run_tmk
         ~digest:true] asks for it (an extra read pass), and [""]
         otherwise. A string, never a closure over the system: results
         are memoized across the whole benchmark suite, and anything
         that kept the run-time state reachable would pin every page,
         twin and diff store of every completed run in the heap. *)
  homes : (int * int) list;
      (* page-to-home assignments the run made ({!Dsm_tmk.Tmk.homes}),
         snapshotted before the digest pass; [[]] for non-tmk versions
         and for backends that assign none. The first-touch determinism
         regression compares these across traced and untraced runs. *)
  classes : (int * string * int) list;
      (* final per-page (page, protocol, owner) classification of the
         adaptive backend ({!Dsm_tmk.Tmk.adapt_classes}), snapshotted with
         [homes]; [[]] for non-tmk versions and other backends. The static
         plan grading compares these against the compile-time
         predictions. *)
  latencies_us : float array option;
      (* per-operation latencies of a transaction-style workload (KV),
         sorted ascending; [None] for the kernels, whose unit of work is
         the whole run. Plain data, like [digest]: memoized results must
         never pin run-time state. *)
  nops : int;
      (* operations completed by a transaction-style workload, the
         denominator of msgs/op and bytes/op; [0] for the kernels. *)
}

(* Results are built through this constructor so new optional fields
   (latencies, op counts) extend the record without touching the six
   kernels' construction sites again. *)
let make_result ~time_us ~stats ~max_err ?(digest = "") ?(homes = [])
    ?(classes = []) ?latencies_us ?(nops = 0) () =
  { time_us; stats; max_err; digest; homes; classes; latencies_us; nops }

let combine_err a b = Float.max a (abs_float b)

(* Memoization of each app's sequential reference solution. One process-
   wide lock, held across the compute: the tables are tiny (a handful of
   problem sizes), the compute is deterministic, and the harness fans
   independent runs out across domains (Fanout), where an unlocked
   Hashtbl.replace would race. *)
let memo_lock = Mutex.create ()

let memo tbl key compute =
  Mutex.protect memo_lock (fun () ->
      match Hashtbl.find_opt tbl key with
      | Some v -> v
      | None ->
          let v = compute () in
          Hashtbl.replace tbl key v;
          v)


type opt_level = Base | Comm_aggr | Cons_elim | Sync_merge | Push_opt

let opt_level_name = function
  | Base -> "base"
  | Comm_aggr -> "comm-aggr"
  | Cons_elim -> "cons-elim"
  | Sync_merge -> "sync-merge"
  | Push_opt -> "push"

let rank = function
  | Base -> 0
  | Comm_aggr -> 1
  | Cons_elim -> 2
  | Sync_merge -> 3
  | Push_opt -> 4

let level_leq a b = rank a <= rank b

type result = {
  time_us : float;
  stats : Dsm_sim.Stats.t;
  max_err : float;
  digest : string;
      (* content digest of the final shared state, observed through the
         protocol ({!Dsm_tmk.Tmk.digest}); computed only when [run_tmk
         ~digest:true] asks for it (an extra read pass), and [""]
         otherwise. A string, never a closure over the system: results
         are memoized across the whole benchmark suite, and anything
         that kept the run-time state reachable would pin every page,
         twin and diff store of every completed run in the heap. *)
  homes : (int * int) list;
      (* page-to-home assignments the run made ({!Dsm_tmk.Tmk.homes}),
         snapshotted before the digest pass; [[]] for non-tmk versions
         and for backends that assign none. The first-touch determinism
         regression compares these across traced and untraced runs. *)
  classes : (int * string * int) list;
      (* final per-page (page, protocol, owner) classification of the
         adaptive backend ({!Dsm_tmk.Tmk.adapt_classes}), snapshotted with
         [homes]; [[]] for non-tmk versions and other backends. The static
         plan grading compares these against the compile-time
         predictions. *)
}

let combine_err a b = Float.max a (abs_float b)

(* Memoization of each app's sequential reference solution. One process-
   wide lock, held across the compute: the tables are tiny (a handful of
   problem sizes), the compute is deterministic, and the harness fans
   independent runs out across domains (Fanout), where an unlocked
   Hashtbl.replace would race. *)
let memo_lock = Mutex.create ()

let memo tbl key compute =
  Mutex.protect memo_lock (fun () ->
      match Hashtbl.find_opt tbl key with
      | Some v -> v
      | None ->
          let v = compute () in
          Hashtbl.replace tbl key v;
          v)

module type APP = sig
  val name : string

  type params

  val large : params
  val small : params
  val size_name : params -> string
  val seq_time_us : params -> float

  val run_tmk :
    ?trace:Dsm_trace.Sink.t ->
    ?digest:bool ->
    ?plan:Dsm_tmk.Proto_plan.t ->
    Dsm_sim.Config.t -> params -> level:opt_level -> async:bool -> result
  (** [trace] records the compute run's protocol events (the untimed
      verification pass stays untraced). [digest] (default false) adds
      a protocol-level read pass over the final shared state and
      records its content digest in the result. [plan] seeds the
      adaptive/hlrc backend's per-page protocol state from a static
      protocol-placement plan before the first access
      ({!Dsm_tmk.Tmk.make}). *)

  val run_pvm : Dsm_sim.Config.t -> params -> result
  val run_xhpf : (Dsm_sim.Config.t -> params -> result) option
  val levels : opt_level list
end

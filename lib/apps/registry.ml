(* The one table of every workload in the system, consumed by
   Harness.Cli, dsm_run, dsm_lint --app, the runset and the bench — the
   per-binary application lists this replaces drifted by construction.
   Order is presentation order in tables and --list output. *)

let all : (string * (module Workload.S)) list =
  [
    ("jacobi", (module Jacobi));
    ("fft3d", (module Fft3d));
    ("shallow", (module Shallow));
    ("is", (module Is));
    ("gauss", (module Gauss));
    ("mgs", (module Mgs));
    ("kv", (module Kv));
  ]

let find name = List.assoc_opt name all
let names = List.map fst all

(* The paper's six scientific kernels: the subset every table and figure
   of Section 5/6 regenerates over (the KV cache has its own experiment,
   with latency percentiles instead of speedups). *)
let kernels = List.filter (fun (n, _) -> n <> "kv") all

(** The NCAR shallow-water benchmark: three finite-difference phases per
    time step over 13 shared arrays on a periodic grid, columns
    block-partitioned. Only communication aggregation and consistency
    elimination apply (merging with synchronization and Push would need
    interprocedural analysis, Section 6.2); the consistency-elimination
    gains are relatively larger than Jacobi's because many more pages are
    in use. *)

type params = { m : int; n : int; steps : int; point_cost : float }
(** Grid dimensions, time steps and calibrated per-point cost (us). Exposed so callers can size custom runs. *)

val bounds : int -> int -> int -> int * int
(** [bounds n nprocs p] — the inclusive column block [(jlo, jhi)] that
    processor [p] owns. Exposed for the static sharing-pattern models
    ({!Dsm_lint.App_models}). *)

val large : params
val small : params

val run_tmk :
  ?trace:Dsm_trace.Sink.t ->
  ?digest:bool ->
  ?plan:Dsm_tmk.Proto_plan.t ->
  Dsm_sim.Config.t ->
  params ->
  level:App_common.opt_level ->
  async:bool ->
  App_common.result
(** Concrete entry point with an explicit [params] record, kept for
    callers that size custom runs; {!tmk} below is the registry-facing
    equivalent. *)

val run_pvm : Dsm_sim.Config.t -> params -> App_common.result
val run_xhpf : (Dsm_sim.Config.t -> params -> App_common.result) option

include Workload.S with type size = params and type behavior = unit

(** The NCAR shallow-water benchmark: three finite-difference phases per
    time step over 13 shared arrays on a periodic grid, columns
    block-partitioned. Only communication aggregation and consistency
    elimination apply (merging with synchronization and Push would need
    interprocedural analysis, Section 6.2); the consistency-elimination
    gains are relatively larger than Jacobi's because many more pages are
    in use. *)

type params = { m : int; n : int; steps : int; point_cost : float }
(** Grid dimensions, time steps and calibrated per-point cost (us). Exposed so callers can size custom runs. *)

val bounds : int -> int -> int -> int * int
(** [bounds n nprocs p] — the inclusive column block [(jlo, jhi)] that
    processor [p] owns. Exposed for the static sharing-pattern models
    ({!Dsm_lint.App_models}). *)

include App_common.APP with type params := params

(** Shared vocabulary of the six benchmark applications.

    Every application comes in four versions, matching Section 5 of the
    paper: the base TreadMarks program, the compiler-optimized TreadMarks
    program (with cumulative optimization levels as in Figure 6), a
    hand-coded PVMe-style message-passing program, and (except IS) an
    XHPF-style message-passing program over the mini-HPF run-time. *)

(** Cumulative optimization levels of Figure 6. *)
type opt_level =
  | Base
  | Comm_aggr  (** communication aggregation: consistency-preserving
                   Validates, one diff request per writer *)
  | Cons_elim  (** + consistency elimination: WRITE_ALL family *)
  | Sync_merge  (** + merging data movement with synchronization *)
  | Push_opt  (** + replacing barriers with Push *)

val opt_level_name : opt_level -> string
val level_leq : opt_level -> opt_level -> bool
(** Ordering of the cumulative levels. *)

(** Outcome of one parallel run. *)
type result = {
  time_us : float;  (** parallel virtual execution time *)
  stats : Dsm_sim.Stats.t;  (** aggregate over processors *)
  max_err : float;  (** max |difference| against the sequential reference *)
  digest : string;
      (** content digest of the final shared state through the protocol
          ({!Dsm_tmk.Tmk.digest}), when the run asked for it with
          [run_tmk ~digest:true]; [""] otherwise (and always for the
          message-passing versions, which have no shared state). Kept a
          plain string so memoized results never pin run-time state. *)
  homes : (int * int) list;
      (** page-to-home assignments the run made ({!Dsm_tmk.Tmk.homes}),
          snapshotted before the digest pass; [[]] for the message-passing
          versions and for backends that assign none. The first-touch
          determinism regression compares these across traced and
          untraced runs. *)
  classes : (int * string * int) list;
      (** final per-page (page, protocol, owner) classification of the
          adaptive backend ({!Dsm_tmk.Tmk.adapt_classes}), snapshotted
          with [homes]; [[]] elsewhere. Compared against the static
          sharing-pattern predictions by the plan grading. *)
}

val combine_err : float -> float -> float

val memo : ('k, 'v) Hashtbl.t -> 'k -> (unit -> 'v) -> 'v
(** [memo tbl key compute] returns the cached value for [key], computing
    and caching it under a process-wide lock otherwise. Used for the
    apps' sequential reference solutions, which are shared across runs —
    including runs the harness fans out over several domains, where an
    unlocked table would race. *)

module type APP = sig
  val name : string

  type params

  val large : params
  val small : params
  val size_name : params -> string
  val seq_time_us : params -> float
  (** Virtual uniprocessor execution time (Table 1 baseline). *)

  val run_tmk :
    ?trace:Dsm_trace.Sink.t ->
    ?digest:bool ->
    ?plan:Dsm_tmk.Proto_plan.t ->
    Dsm_sim.Config.t -> params -> level:opt_level -> async:bool -> result
  (** [trace] records the compute run's protocol events (the untimed
      verification pass stays untraced). [digest] (default false) adds
      a protocol-level read pass over the final shared state and
      records its content digest in the result. [plan] seeds the
      adaptive/hlrc backend's initial per-page protocol state from a
      static protocol-placement plan ({!Dsm_tmk.Tmk.make}). *)

  val run_pvm : Dsm_sim.Config.t -> params -> result

  val run_xhpf : (Dsm_sim.Config.t -> params -> result) option
  (** [None] for IS: XHPF cannot parallelize it (indirect accesses). *)

  val levels : opt_level list
  (** The optimization levels applicable to this application, as reported
      in Figure 6 of the paper. *)
end

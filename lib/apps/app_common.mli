(** Shared vocabulary of the six benchmark applications.

    Every application comes in four versions, matching Section 5 of the
    paper: the base TreadMarks program, the compiler-optimized TreadMarks
    program (with cumulative optimization levels as in Figure 6), a
    hand-coded PVMe-style message-passing program, and (except IS) an
    XHPF-style message-passing program over the mini-HPF run-time. *)

(** Cumulative optimization levels of Figure 6. *)
type opt_level =
  | Base
  | Comm_aggr  (** communication aggregation: consistency-preserving
                   Validates, one diff request per writer *)
  | Cons_elim  (** + consistency elimination: WRITE_ALL family *)
  | Sync_merge  (** + merging data movement with synchronization *)
  | Push_opt  (** + replacing barriers with Push *)

val opt_level_name : opt_level -> string
val level_leq : opt_level -> opt_level -> bool
(** Ordering of the cumulative levels. *)

(** Outcome of one parallel run. Built with {!make_result} so optional
    fields can be added without revisiting every construction site. *)
type result = {
  time_us : float;  (** parallel virtual execution time *)
  stats : Dsm_sim.Stats.t;  (** aggregate over processors *)
  max_err : float;  (** max |difference| against the sequential reference *)
  digest : string;
      (** content digest of the final shared state through the protocol
          ({!Dsm_tmk.Tmk.digest}), when the run asked for it with
          [run_tmk ~digest:true]; [""] otherwise (and always for the
          message-passing versions, which have no shared state). Kept a
          plain string so memoized results never pin run-time state. *)
  homes : (int * int) list;
      (** page-to-home assignments the run made ({!Dsm_tmk.Tmk.homes}),
          snapshotted before the digest pass; [[]] for the message-passing
          versions and for backends that assign none. The first-touch
          determinism regression compares these across traced and
          untraced runs. *)
  classes : (int * string * int) list;
      (** final per-page (page, protocol, owner) classification of the
          adaptive backend ({!Dsm_tmk.Tmk.adapt_classes}), snapshotted
          with [homes]; [[]] elsewhere. Compared against the static
          sharing-pattern predictions by the plan grading. *)
  latencies_us : float array option;
      (** per-operation latencies of a transaction-style workload (KV),
          sorted ascending; [None] for the kernels. Plain data — memoized
          results must never pin run-time state. *)
  nops : int;
      (** operations completed by a transaction-style workload, the
          denominator of msgs/op and bytes/op; [0] for the kernels. *)
}

val make_result :
  time_us:float ->
  stats:Dsm_sim.Stats.t ->
  max_err:float ->
  ?digest:string ->
  ?homes:(int * int) list ->
  ?classes:(int * string * int) list ->
  ?latencies_us:float array ->
  ?nops:int ->
  unit ->
  result
(** Smart constructor with neutral defaults for every optional field
    ([digest = ""], [homes = []], [classes = []], [latencies_us = None],
    [nops = 0]). *)

val combine_err : float -> float -> float

val memo : ('k, 'v) Hashtbl.t -> 'k -> (unit -> 'v) -> 'v
(** [memo tbl key compute] returns the cached value for [key], computing
    and caching it under a process-wide lock otherwise. Used for the
    apps' sequential reference solutions, which are shared across runs —
    including runs the harness fans out over several domains, where an
    unlocked table would race. *)

(** The informal [APP] module type that used to live here was replaced
    by the first-class {!Dsm_apps.Workload.S}, which splits [params]
    into size and behavior knobs; the workloads are enumerated once in
    {!Dsm_apps.Registry}. *)

(* First-class workload interface: the contract every application in
   the registry implements — the six scientific kernels of the paper and
   the transaction-style KV cache alike.

   The old informal [App_common.APP] signature conflated everything into
   one [params] record. [S] splits it:

   - [size] fixes the problem geometry (arrays, key space, session
     count) and is selected by name from {!S.sizes} ("large"/"small",
     possibly more);
   - [behavior] carries the run-shaping knobs (operation mix, skew,
     session override) and is refined from {!S.default_behavior} with
     {!S.with_knob}, a string key/value interface so drivers (dsm_run's
     [--mix]/[--skew]/[--sessions]) need no per-workload argument
     plumbing. Workloads without knobs (the kernels) reject every key
     with {!no_knobs}'s standard error format.

   Results stay {!App_common.result}, which is extensible through
   {!App_common.make_result} (op latencies and counts ride along without
   touching the kernels). *)

module type S = sig
  val name : string

  type size
  type behavior

  val sizes : (string * size) list
  (** Named problem sizes; every workload provides at least ["large"]
      and ["small"]. *)

  val size_name : size -> string
  val seq_time_us : size -> float
  (** Virtual uniprocessor execution time (Table 1 baseline). *)

  val default_behavior : behavior

  val knob_doc : (string * string) list
  (** [(key, one-line description)] of every accepted behavior knob. *)

  val with_knob :
    behavior -> key:string -> value:string -> (behavior, string) result
  (** Refine a behavior with one string-valued knob. Unknown keys and
      out-of-range values return [Error] in the standard
      field/value/range format ({!Dsm_net.Plan.field_error}). *)

  val levels : App_common.opt_level list
  (** The optimization levels applicable to this workload, as in
      Figure 6 of the paper. *)

  val tmk :
    ?trace:Dsm_trace.Sink.t ->
    ?digest:bool ->
    ?plan:Dsm_tmk.Proto_plan.t ->
    Dsm_sim.Config.t ->
    size:size ->
    behavior:behavior ->
    level:App_common.opt_level ->
    async:bool ->
    App_common.result
  (** Run on the DSM run-time. [trace] records the compute run's
      protocol events (the untimed verification pass stays untraced);
      [digest] (default false) adds a protocol-level read pass over the
      final shared state; [plan] seeds the adaptive/hlrc backend's
      per-page protocol state before the first access
      ({!Dsm_tmk.Tmk.make}). *)

  val pvm :
    Dsm_sim.Config.t -> size:size -> behavior:behavior -> App_common.result
  (** The hand-coded message-passing baseline. *)

  val xhpf :
    (Dsm_sim.Config.t -> size:size -> behavior:behavior -> App_common.result)
    option
  (** [None] when XHPF cannot parallelize the workload (IS's indirect
      accesses; the KV cache's data-dependent control flow). *)
end

(* The concrete face the six paper kernels keep exporting alongside
   {!S}: a [params] record with calibrated [large]/[small] instances and
   direct (behavior-free) entry points. Tests and experiments that build
   custom [params] literals pack kernels at this type; the KV cache does
   not match it (its behavior is not part of [params]). *)
module type KERNEL = sig
  type params

  val name : string
  val large : params
  val small : params
  val size_name : params -> string
  val seq_time_us : params -> float
  val levels : App_common.opt_level list

  val run_tmk :
    ?trace:Dsm_trace.Sink.t ->
    ?digest:bool ->
    ?plan:Dsm_tmk.Proto_plan.t ->
    Dsm_sim.Config.t ->
    params ->
    level:App_common.opt_level ->
    async:bool ->
    App_common.result

  val run_pvm : Dsm_sim.Config.t -> params -> App_common.result

  val run_xhpf :
    (Dsm_sim.Config.t -> params -> App_common.result) option
end

(* {1 Helpers for implementations} *)

let no_knobs ~workload () ~key ~value:_ =
  Error
    (Printf.sprintf "unknown knob for %s: %s (this workload has none)"
       workload key)

(* Shared by drivers: apply a [(key, value)] list left to right. *)
let apply_knobs (type b) ~(with_knob :
                            b -> key:string -> value:string -> (b, string) result)
    ~(default : b) knobs =
  List.fold_left
    (fun acc (key, value) ->
      match acc with
      | Error _ as e -> e
      | Ok b -> with_knob b ~key ~value)
    (Ok default) knobs

(* Integer Sort from the NAS benchmarks: ranks N keys in [0, Bmax) by bucket
   sort. Private counting, then the shared buckets are updated section by
   section under per-section locks, accessed in a staggered (migratory)
   manner; after a barrier every processor reads all buckets to rank its own
   keys (Section 6 of the paper).

   This is the program where base TreadMarks suffers diff accumulation: the
   shared buckets are modified by every processor, so a faulting processor
   receives many overlapping diffs. The compiler-optimized version validates
   the bucket sections with READ&WRITE_ALL, so no twins or diffs are made
   and a single full copy supersedes the accumulation. XHPF cannot
   parallelize IS (indirect access to the main array). *)

module Tmk = Dsm_tmk.Tmk
module Shm = Dsm_tmk.Shm
module Mp = Dsm_mp.Mp
open App_common

let name = "IS"

type params = {
  n_keys : int;
  n_buckets : int;  (** multiple of the processor count *)
  reps : int;
  key_cost : float;  (** per key counted/ranked *)
  bucket_cost : float;  (** per bucket summed/prefixed *)
}

(* Stand-ins for the paper's 2^23/2^19 and 2^20/2^15 data sets; per-rep
   uniprocessor compute calibrated to Table 1 (9.12 s and 0.39 s per rep). *)
let large =
  { n_keys = 1 lsl 18; n_buckets = 1 lsl 15; reps = 5; key_cost = 14.0; bucket_cost = 5.0 }

let small =
  { n_keys = 1 lsl 15; n_buckets = 1 lsl 11; reps = 5; key_cost = 4.8; bucket_cost = 2.0 }

let size_name p =
  Printf.sprintf "2^%d-2^%d"
    (int_of_float (log (float_of_int p.n_keys) /. log 2.0))
    (int_of_float (log (float_of_int p.n_buckets) /. log 2.0))

let levels = [ Base; Comm_aggr; Cons_elim; Sync_merge ]

(* deterministic key sequence; proc [p] of [np] owns keys [p*chunk ..] *)
let key n_buckets i =
  let x = ((i * 1103515245) + 12345) land 0x3FFFFFFF in
  x mod n_buckets

(* {1 Sequential reference: ranks of every key} *)

let seq_ranks { n_keys; n_buckets; _ } ~nprocs =
  let bucket = Array.make n_buckets 0 in
  for i = 0 to n_keys - 1 do
    bucket.(key n_buckets i) <- bucket.(key n_buckets i) + 1
  done;
  let rank_base = Array.make n_buckets 0 in
  let acc = ref 0 in
  for v = 0 to n_buckets - 1 do
    rank_base.(v) <- !acc;
    acc := !acc + bucket.(v)
  done;
  (* rank of each key instance: global base + occurrence among the owner's
     earlier equal keys (deterministic per-processor tie-breaking) *)
  let chunk = n_keys / nprocs in
  let ranks = Array.make n_keys 0 in
  for p = 0 to nprocs - 1 do
    let seen = Hashtbl.create 97 in
    for i = p * chunk to ((p + 1) * chunk) - 1 do
      let v = key n_buckets i in
      let prior = Option.value ~default:0 (Hashtbl.find_opt seen v) in
      ranks.(i) <- rank_base.(v) + prior;
      Hashtbl.replace seen v (prior + 1)
    done
  done;
  ranks

let seq_memo : (int * int * int, int array) Hashtbl.t = Hashtbl.create 4

let reference prm ~nprocs =
  memo seq_memo
    (prm.n_keys, prm.n_buckets, nprocs)
    (fun () -> seq_ranks prm ~nprocs)

let seq_time_us { n_keys; n_buckets; reps; key_cost; bucket_cost } =
  float_of_int reps
  *. ((2.0 *. float_of_int n_keys *. key_cost)
     +. (2.0 *. float_of_int n_buckets *. bucket_cost))

(* {1 TreadMarks versions} *)

(* keep the paper's geometry: a bucket section is a whole number of
   pages (2^19 4-byte buckets over 8 sections were page multiples) *)
let run_page_size ~nprocs ~page_size { n_buckets; _ } =
  min page_size (n_buckets / nprocs * 8)

let run_tmk ?trace ?(digest = false) ?plan cfg ({ n_keys; n_buckets; reps; key_cost; bucket_cost } as prm)
    ~level ~async =
  (* Our buckets stand in for 16x the paper's (2^19 vs 2^15, 2^15 vs 2^11):
     scale the per-page cost of matching piggy-backed section requests
     against the local page list accordingly, so that the Section 3.3
     trade-off (merging data with synchronization loses when the page list
     is large) appears at the paper's magnitude. *)
  let cfg =
    {
      cfg with
      Dsm_sim.Config.wsync_scan_per_page_us =
        cfg.Dsm_sim.Config.wsync_scan_per_page_us *. 16.0;
      per_byte_us = cfg.Dsm_sim.Config.per_byte_us *. 16.0;
      page_size =
        run_page_size ~nprocs:cfg.Dsm_sim.Config.nprocs
          ~page_size:cfg.Dsm_sim.Config.page_size prm;
    }
  in
  let sys = Tmk.make ?plan cfg in
  let bucket = Tmk.Alloc.array sys "bucket" Tmk.I64 ~dims:[ n_buckets ] in
  let np = cfg.Dsm_sim.Config.nprocs in
  let chunk = n_keys / np in
  let sec_len = n_buckets / np in
  let sec_section s =
    [ Shm.I64_1.section bucket (s * sec_len, ((s + 1) * sec_len) - 1, 1) ]
  in
  let whole_section = [ Shm.I64_1.section bucket (0, n_buckets - 1, 1) ] in
  let ranks = Array.make n_keys 0 in
  Tmk.run ?trace sys (fun t ->
      let p = Tmk.pid t in
      let priv = Array.make n_buckets 0 in
      let my_lo = p * chunk in
      for _rep = 1 to reps do
        (* zero own section of the shared buckets *)
        (match level with
        | Cons_elim | Sync_merge -> Tmk.validate t (sec_section p) Tmk.Write_all
        | Base | Comm_aggr | Push_opt -> ());
        for k = p * sec_len to ((p + 1) * sec_len) - 1 do
          Shm.I64_1.set t bucket k 0
        done;
        Tmk.charge t (bucket_cost *. float_of_int sec_len);
        (* private counting *)
        Array.fill priv 0 n_buckets 0;
        for i = my_lo to my_lo + chunk - 1 do
          let v = key n_buckets i in
          priv.(v) <- priv.(v) + 1
        done;
        Tmk.charge t (key_cost *. float_of_int chunk);
        Tmk.barrier t;
        (* staggered lock-protected section updates (migratory data) *)
        for step = 0 to np - 1 do
          let s = (p + step) mod np in
          (match level with
          | Sync_merge ->
              Tmk.validate_w_sync t ~async (sec_section s) Tmk.Read_write_all
          | Base | Comm_aggr | Cons_elim | Push_opt -> ());
          Tmk.lock_acquire t s;
          (match level with
          | Comm_aggr -> Tmk.validate t ~async (sec_section s) Tmk.Read_write
          | Cons_elim ->
              Tmk.validate t ~async (sec_section s) Tmk.Read_write_all
          | Base | Sync_merge | Push_opt -> ());
          for k = s * sec_len to ((s + 1) * sec_len) - 1 do
            Shm.I64_1.set t bucket k (Shm.I64_1.get t bucket k + priv.(k))
          done;
          Tmk.charge t (bucket_cost *. float_of_int sec_len);
          Tmk.lock_release t s
        done;
        (* ranking phase: read all buckets *)
        (match level with
        | Sync_merge -> Tmk.validate_w_sync t ~async whole_section Tmk.Read
        | Base | Comm_aggr | Cons_elim | Push_opt -> ());
        Tmk.barrier t;
        (match level with
        | Comm_aggr | Cons_elim -> Tmk.validate t ~async whole_section Tmk.Read
        | Base | Sync_merge | Push_opt -> ());
        let rank_base = Array.make n_buckets 0 in
        let acc = ref 0 in
        for v = 0 to n_buckets - 1 do
          rank_base.(v) <- !acc;
          acc := !acc + Shm.I64_1.get t bucket v
        done;
        Tmk.charge t (bucket_cost *. float_of_int n_buckets);
        let seen = Hashtbl.create 97 in
        for i = my_lo to my_lo + chunk - 1 do
          let v = key n_buckets i in
          let prior = Option.value ~default:0 (Hashtbl.find_opt seen v) in
          ranks.(i) <- rank_base.(v) + prior;
          Hashtbl.replace seen v (prior + 1)
        done;
        Tmk.charge t (key_cost *. float_of_int chunk);
        Tmk.barrier t
      done);
  let time_us = Tmk.elapsed sys in
  let stats = Tmk.total_stats sys in
  let rref = reference prm ~nprocs:np in
  let err = ref 0.0 in
  for i = 0 to n_keys - 1 do
    err := combine_err !err (float_of_int (ranks.(i) - rref.(i)))
  done;
  let homes = Tmk.homes sys in
  let classes = Tmk.adapt_classes sys in
  make_result ~time_us ~stats ~max_err:!err
    ~digest:(if digest then Tmk.digest sys else "")
    ~homes ~classes ()

(* {1 Hand-coded message passing}

   As in the paper's PVMe version, the bucket sections are pipelined around
   a ring: each partial sum travels to the next processor, which adds its
   own counts; after np-1 hops the completed sections are broadcast for the
   ranking phase. *)

let run_pvm cfg ({ n_keys; n_buckets; reps; key_cost; bucket_cost } as prm) =
  (* same wire-cost scaling as the DSM versions (see run_tmk) *)
  let cfg =
    { cfg with Dsm_sim.Config.per_byte_us = cfg.Dsm_sim.Config.per_byte_us *. 16.0 }
  in
  let sys = Mp.make cfg in
  let np = cfg.Dsm_sim.Config.nprocs in
  let chunk = n_keys / np in
  let sec_len = n_buckets / np in
  let ranks = Array.make n_keys 0 in
  Mp.run sys (fun t ->
      let p = Mp.pid t in
      let priv = Array.make n_buckets 0 in
      let my_lo = p * chunk in
      for _rep = 1 to reps do
        Array.fill priv 0 n_buckets 0;
        for i = my_lo to my_lo + chunk - 1 do
          let v = key n_buckets i in
          priv.(v) <- priv.(v) + 1
        done;
        Mp.charge t (key_cost *. float_of_int chunk);
        (* pipeline: section s starts at processor (s+1) mod np and ends at
           its final owner s after np-1 hops *)
        let full = Array.make n_buckets 0.0 in
        for step = 0 to np - 1 do
          let s = (p + step) mod np in
          let base = s * sec_len in
          let part =
            if step = 0 then begin
              let a = Array.make sec_len 0.0 in
              for k = 0 to sec_len - 1 do
                a.(k) <- float_of_int priv.(base + k)
              done;
              a
            end
            else begin
              let a = Mp.recv_floats t ~src:((p + 1) mod np) ~tag:(1000 + s) in
              for k = 0 to sec_len - 1 do
                a.(k) <- a.(k) +. float_of_int priv.(base + k)
              done;
              a
            end
          in
          Mp.charge t (bucket_cost *. float_of_int sec_len);
          if step < np - 1 then
            Mp.send_floats t ~dst:((p + np - 1) mod np) ~tag:(1000 + s) part
          else
            Array.blit part 0 full base sec_len
        done;
        (* ring allgather of the completed sections for ranking; after np-1
           hops the completed section s sits at processor (s+1) mod np, so
           processor p starts the ring with section p-1 *)
        let cur = ref ((p + np - 1) mod np) in
        for _hop = 0 to np - 2 do
          let base = !cur * sec_len in
          Mp.send_floats t ~dst:((p + 1) mod np) ~tag:(2000 + !cur)
            (Array.sub full base sec_len);
          let prev = (!cur + np - 1) mod np in
          let sec = Mp.recv_floats t ~src:((p + np - 1) mod np) ~tag:(2000 + prev) in
          Array.blit sec 0 full (prev * sec_len) sec_len;
          cur := prev
        done;
        let rank_base = Array.make n_buckets 0 in
        let acc = ref 0 in
        for v = 0 to n_buckets - 1 do
          rank_base.(v) <- !acc;
          acc := !acc + int_of_float full.(v)
        done;
        Mp.charge t (bucket_cost *. float_of_int n_buckets);
        let seen = Hashtbl.create 97 in
        for i = my_lo to my_lo + chunk - 1 do
          let v = key n_buckets i in
          let prior = Option.value ~default:0 (Hashtbl.find_opt seen v) in
          ranks.(i) <- rank_base.(v) + prior;
          Hashtbl.replace seen v (prior + 1)
        done;
        Mp.charge t (key_cost *. float_of_int chunk)
      done);
  let rref = reference prm ~nprocs:np in
  let err = ref 0.0 in
  for i = 0 to n_keys - 1 do
    err := combine_err !err (float_of_int (ranks.(i) - rref.(i)))
  done;
  make_result ~time_us:(Mp.elapsed sys) ~stats:(Mp.total_stats sys)
    ~max_err:!err ()

let run_xhpf = None

(* {1 Workload.S instance: sizes are the params records, no behavior
      knobs} *)

type size = params
type behavior = unit

let sizes = [ ("large", large); ("small", small) ]
let default_behavior = ()
let knob_doc = []
let with_knob = Workload.no_knobs ~workload:name

let tmk ?trace ?digest ?plan cfg ~size ~behavior:() ~level ~async =
  run_tmk ?trace ?digest ?plan cfg size ~level ~async

let pvm cfg ~size ~behavior:() = run_pvm cfg size
let xhpf = Option.map (fun f cfg ~size ~behavior:() -> f cfg size) run_xhpf

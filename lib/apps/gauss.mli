(** Gaussian elimination with partial pivoting, columns distributed
    cyclically. The per-iteration pivot row number and multiplier column
    are logically broadcast through a shared work array; merging data
    movement with synchronization (barrier-time broadcast) is the most
    effective optimization, as in the paper. No [Push] (two barriers per
    iteration carry anti-dependences). *)

type params = { m : int; update_cost : float }
(** Matrix edge and calibrated per-element elimination cost (us). Exposed so callers can size custom runs. *)

val page_size : params -> int
(** The page size the tmk run forces for this problem size. Exposed for
    the static sharing-pattern models ({!Dsm_lint.App_models}). *)

val large : params
val small : params

val run_tmk :
  ?trace:Dsm_trace.Sink.t ->
  ?digest:bool ->
  ?plan:Dsm_tmk.Proto_plan.t ->
  Dsm_sim.Config.t ->
  params ->
  level:App_common.opt_level ->
  async:bool ->
  App_common.result
(** Concrete entry point with an explicit [params] record, kept for
    callers that size custom runs; {!tmk} below is the registry-facing
    equivalent. *)

val run_pvm : Dsm_sim.Config.t -> params -> App_common.result
val run_xhpf : (Dsm_sim.Config.t -> params -> App_common.result) option

include Workload.S with type size = params and type behavior = unit

(** Gaussian elimination with partial pivoting, columns distributed
    cyclically. The per-iteration pivot row number and multiplier column
    are logically broadcast through a shared work array; merging data
    movement with synchronization (barrier-time broadcast) is the most
    effective optimization, as in the paper. No [Push] (two barriers per
    iteration carry anti-dependences). *)

type params = { m : int; update_cost : float }
(** Matrix edge and calibrated per-element elimination cost (us). Exposed so callers can size custom runs. *)

val page_size : params -> int
(** The page size the tmk run forces for this problem size. Exposed for
    the static sharing-pattern models ({!Dsm_lint.App_models}). *)

include App_common.APP with type params := params

(* Jacobi iteration (Section 2 of the paper, Figures 1 and 2): nearest-
   neighbour averaging over an m x m grid, interior columns block-partitioned
   across processors. The grid [b] is shared; the intermediate [a] is
   private scratch. Two barriers per iteration in the base version; the
   optimized versions follow the compiler output of Figure 2. *)

module Tmk = Dsm_tmk.Tmk
module Shm = Dsm_tmk.Shm
module Mp = Dsm_mp.Mp
module Hpf = Dsm_hpf.Hpf
open App_common

let name = "Jacobi"

type params = { m : int; iters : int; update_cost : float; copy_cost : float }

(* Data sets stand in for the paper's at reduced memory resolution: the
   per-element costs are calibrated so that one iteration's uniprocessor
   compute time matches Table 1 (4096^2: 2.88 s/iter; 1024^2: 177 ms/iter),
   keeping the paper's computation-to-communication ratio per epoch. *)
let large = { m = 1024; iters = 10; update_cost = 2.13; copy_cost = 0.64 }
let small = { m = 512; iters = 10; update_cost = 0.52; copy_cost = 0.16 }
let size_name p = Printf.sprintf "%dx%d" p.m p.m

let init_cost = 0.03

let levels = [ Base; Comm_aggr; Cons_elim; Sync_merge; Push_opt ]

let init_value i j = float_of_int (((i * 31) + (j * 17)) mod 1000) /. 100.0

(* Block partition of the interior columns [1 .. m-2]. With more
   processors than interior columns the tail processors get an empty range
   (hi = lo - 1); [lo] is clamped so the range stays within the array and
   the last processor still owns the static boundary column. *)
let bounds m nprocs p =
  let count = m - 2 in
  let w = (count + nprocs - 1) / nprocs in
  let lo = min (m - 1) (1 + (p * w)) in
  let hi = min (m - 2) (lo + w - 1) in
  (lo, hi)

(* {1 Sequential reference} *)

let seq_arrays { m; iters; _ } =
  let b = Array.init (m * m) (fun k -> init_value (k mod m) (k / m)) in
  let a = Array.make (m * m) 0.0 in
  for _k = 1 to iters do
    for j = 1 to m - 2 do
      for i = 1 to m - 2 do
        a.((j * m) + i) <-
          0.25
          *. (b.((j * m) + i - 1)
             +. b.((j * m) + i + 1)
             +. b.(((j - 1) * m) + i)
             +. b.(((j + 1) * m) + i))
      done
    done;
    for j = 1 to m - 2 do
      for i = 0 to m - 1 do
        b.((j * m) + i) <- a.((j * m) + i)
      done
    done
  done;
  b

let seq_memo : (int * int, float array) Hashtbl.t = Hashtbl.create 4

let reference p = memo seq_memo (p.m, p.iters) (fun () -> seq_arrays p)

let seq_time_us { m; iters; update_cost; copy_cost } =
  let interior = float_of_int ((m - 2) * (m - 2)) in
  let copied = float_of_int ((m - 2) * m) in
  (float_of_int (m * m) *. init_cost)
  +. (float_of_int iters *. ((interior *. update_cost) +. (copied *. copy_cost)))

(* {1 TreadMarks versions} *)

let run_tmk ?trace ?(digest = false) ?plan cfg ({ m; iters; update_cost; copy_cost } as prm) ~level ~async =
  let sys = Tmk.make ?plan cfg in
  let b = Tmk.Alloc.array sys "b" Tmk.F64 ~dims:[ m; m ] in
  let np = cfg.Dsm_sim.Config.nprocs in
  let read_sections =
    Array.init np (fun q ->
        let lo, hi = bounds m np q in
        [ Shm.F64_2.section b (0, m - 1, 1) (lo - 1, hi + 1, 1) ])
  and write_sections =
    Array.init np (fun q ->
        let lo, hi = bounds m np q in
        [ Shm.F64_2.section b (0, m - 1, 1) (lo, hi, 1) ])
  in
  Tmk.run ?trace sys (fun t ->
      let p = Tmk.pid t in
      let lo, hi = bounds m np p in
      let width = hi - lo + 1 in
      let a = Array.make (m * width) 0.0 in
      (* initialize own columns; the edge processors also own the static
         boundary columns *)
      let ilo = if p = 0 then 0 else lo
      and ihi = if p = np - 1 then m - 1 else hi in
      (match level with
      | Cons_elim | Sync_merge | Push_opt ->
          Tmk.validate t
            [ Shm.F64_2.section b (0, m - 1, 1) (ilo, ihi, 1) ]
            Tmk.Write_all
      | Base | Comm_aggr -> ());
      for j = ilo to ihi do
        for i = 0 to m - 1 do
          Shm.F64_2.set t b i j (init_value i j)
        done;
        Tmk.charge t (init_cost *. float_of_int m)
      done;
      Tmk.barrier t;
      for _k = 1 to iters do
        (* compiler-inserted calls for the region after Barrier(2): the
           boundary-read validate (dropped at Push level, where the data
           has been pushed) *)
        (match level with
        | Comm_aggr | Cons_elim ->
            Tmk.validate t ~async read_sections.(p) Tmk.Read
        | Base | Sync_merge | Push_opt -> ());
        (* phase 1: a <- average of b *)
        for j = lo to hi do
          for i = 1 to m - 2 do
            a.(((j - lo) * m) + i) <-
              0.25
              *. (Shm.F64_2.get t b (i - 1) j
                 +. Shm.F64_2.get t b (i + 1) j
                 +. Shm.F64_2.get t b i (j - 1)
                 +. Shm.F64_2.get t b i (j + 1))
          done;
          Tmk.charge t (update_cost *. float_of_int (m - 2))
        done;
        Tmk.barrier t;
        (* region after Barrier(1): b is written first over the whole own
           section *)
        (match level with
        | Comm_aggr -> Tmk.validate t ~async write_sections.(p) Tmk.Write
        | Cons_elim | Sync_merge | Push_opt ->
            Tmk.validate t write_sections.(p) Tmk.Write_all
        | Base -> ());
        (* phase 2: b <- a *)
        for j = lo to hi do
          for i = 0 to m - 1 do
            Shm.F64_2.set t b i j a.(((j - lo) * m) + i)
          done;
          Tmk.charge t (copy_cost *. float_of_int m)
        done;
        match level with
        | Push_opt -> Tmk.push t ~read_sections ~write_sections
        | Base | Comm_aggr | Cons_elim -> Tmk.barrier t
        | Sync_merge ->
            Tmk.validate_w_sync t ~async read_sections.(p) Tmk.Read;
            Tmk.barrier t
      done);
  let time_us = Tmk.elapsed sys in
  let stats = Tmk.total_stats sys in
  (* verification (perturbs neither the time nor the recorded stats) *)
  let bref = reference prm in
  let err = ref 0.0 in
  Tmk.run sys (fun t ->
      if Tmk.pid t = 0 then
        for j = 0 to m - 1 do
          for i = 0 to m - 1 do
            err :=
              combine_err !err (Shm.F64_2.get t b i j -. bref.((j * m) + i))
          done
        done);
  let homes = Tmk.homes sys in
  let classes = Tmk.adapt_classes sys in
  make_result ~time_us ~stats ~max_err:!err
    ~digest:(if digest then Tmk.digest sys else "")
    ~homes ~classes ()

(* {1 Message-passing versions}

   Local arrays with halo columns; one send to each neighbour per
   iteration (the paper's 2(n-1) messages). *)

let mp_body ~exchange ~charge t { m; iters; update_cost; copy_cost } =
  let p = Mp.pid t
  and np = Mp.nprocs t in
  let lo, hi = bounds m np p in
  let width = hi - lo + 1 in
  if width = 0 then
    invalid_arg "jacobi mp: more processors than interior columns";
  (* local columns lo-1 .. hi+1 *)
  let col j = Array.init m (fun i -> init_value i j) in
  let b = Array.init (width + 2) (fun k -> col (lo - 1 + k)) in
  let a = Array.make_matrix width m 0.0 in
  charge t (init_cost *. float_of_int (m * width));
  for _k = 1 to iters do
    for j = 0 to width - 1 do
      let bj = b.(j + 1) in
      let bl = b.(j)
      and br = b.(j + 2) in
      for i = 1 to m - 2 do
        a.(j).(i) <- 0.25 *. (bj.(i - 1) +. bj.(i + 1) +. bl.(i) +. br.(i))
      done;
      charge t (update_cost *. float_of_int (m - 2))
    done;
    for j = 0 to width - 1 do
      let bj = b.(j + 1) in
      for i = 0 to m - 1 do
        bj.(i) <- a.(j).(i)
      done;
      charge t (copy_cost *. float_of_int m)
    done;
    let from_left, from_right = exchange t ~left:b.(1) ~right:b.(width) in
    (match from_left with Some c -> b.(0) <- c | None -> ());
    match from_right with Some c -> b.(width + 1) <- c | None -> ()
  done;
  (b, lo, hi)

(* Verification is done outside the timed run, directly against the
   per-processor partitions, so it does not perturb times or statistics. *)
let mp_err prm results =
  let bref = reference prm in
  let m = prm.m in
  let err = ref 0.0 in
  Array.iter
    (fun (b, lo, hi) ->
      for j = lo to hi do
        for i = 0 to m - 1 do
          err := combine_err !err (b.(j - lo + 1).(i) -. bref.((j * m) + i))
        done
      done)
    results;
  !err

let run_mp ~exchange cfg prm =
  let sys = Mp.make cfg in
  let results =
    Array.make cfg.Dsm_sim.Config.nprocs ([| [| 0.0 |] |], 0, -1)
  in
  Mp.run sys (fun t ->
      results.(Mp.pid t) <- mp_body ~exchange ~charge:Mp.charge t prm);
  make_result ~time_us:(Mp.elapsed sys) ~stats:(Mp.total_stats sys)
    ~max_err:(mp_err prm results) ()

let run_pvm cfg prm =
  let exchange t ~left ~right =
    let p = Mp.pid t
    and np = Mp.nprocs t in
    if p > 0 then Mp.send_floats t ~dst:(p - 1) ~tag:1 left;
    if p < np - 1 then Mp.send_floats t ~dst:(p + 1) ~tag:1 right;
    let fl = if p > 0 then Some (Mp.recv_floats t ~src:(p - 1) ~tag:1) else None in
    let fr =
      if p < np - 1 then Some (Mp.recv_floats t ~src:(p + 1) ~tag:1) else None
    in
    (fl, fr)
  in
  run_mp ~exchange cfg prm

let run_xhpf =
  Some
    (fun cfg prm ->
      let exchange t ~left ~right = Hpf.shift_exchange t ~tag:1 ~left ~right in
      run_mp ~exchange cfg prm)

(* {1 Workload.S instance: sizes are the params records, no behavior
      knobs} *)

type size = params
type behavior = unit

let sizes = [ ("large", large); ("small", small) ]
let default_behavior = ()
let knob_doc = []
let with_knob = Workload.no_knobs ~workload:name

let tmk ?trace ?digest ?plan cfg ~size ~behavior:() ~level ~async =
  run_tmk ?trace ?digest ?plan cfg size ~level ~async

let pvm cfg ~size ~behavior:() = run_pvm cfg size
let xhpf = Option.map (fun f cfg ~size ~behavior:() -> f cfg size) run_xhpf

(** Jacobi iteration (Section 2 of the paper, Figures 1 and 2):
    nearest-neighbour averaging over a shared grid, interior columns
    block-partitioned. The running example of the paper: the optimized
    versions follow the compiler output of Figure 2 — a
    [Validate(b[...], WRITE_ALL)] after Barrier(1) and Barrier(2) replaced
    by [Push]. All five optimization levels apply. *)

type params = { m : int; iters : int; update_cost : float; copy_cost : float }
(** Grid edge, iteration count, calibrated per-element costs (us). The
    record is exposed so callers can size custom runs, e.g.
    [{ small with m = 128; iters = 3 }]. *)

val bounds : int -> int -> int -> int * int
(** [bounds m nprocs p] — the inclusive interior-column block
    [(lo, hi)] that processor [p] owns. Exposed for the static
    sharing-pattern models ({!Dsm_lint.App_models}). *)

val large : params
val small : params

val run_tmk :
  ?trace:Dsm_trace.Sink.t ->
  ?digest:bool ->
  ?plan:Dsm_tmk.Proto_plan.t ->
  Dsm_sim.Config.t ->
  params ->
  level:App_common.opt_level ->
  async:bool ->
  App_common.result
(** Concrete entry point with an explicit [params] record, kept for
    callers that size custom runs; {!tmk} below is the registry-facing
    equivalent. *)

val run_pvm : Dsm_sim.Config.t -> params -> App_common.result
val run_xhpf : (Dsm_sim.Config.t -> params -> App_common.result) option

include Workload.S with type size = params and type behavior = unit

(** Jacobi iteration (Section 2 of the paper, Figures 1 and 2):
    nearest-neighbour averaging over a shared grid, interior columns
    block-partitioned. The running example of the paper: the optimized
    versions follow the compiler output of Figure 2 — a
    [Validate(b[...], WRITE_ALL)] after Barrier(1) and Barrier(2) replaced
    by [Push]. All five optimization levels apply. *)

type params = { m : int; iters : int; update_cost : float; copy_cost : float }
(** Grid edge, iteration count, calibrated per-element costs (us). The
    record is exposed so callers can size custom runs, e.g.
    [{ small with m = 128; iters = 3 }]. *)

val bounds : int -> int -> int -> int * int
(** [bounds m nprocs p] — the inclusive interior-column block
    [(lo, hi)] that processor [p] owns. Exposed for the static
    sharing-pattern models ({!Dsm_lint.App_models}). *)

include App_common.APP with type params := params

(** Integer Sort from the NAS benchmarks: bucket-sort ranking with private
    counting, staggered lock-protected updates of the shared buckets
    (migratory data) and a read-everything ranking phase. The program where
    base TreadMarks suffers diff accumulation, and where
    [Validate(..., READ&WRITE_ALL)] pays the most; no [Push] (the last
    lock holder is statically unknown) and no XHPF (indirect accesses). *)

type params = {
  n_keys : int;
  n_buckets : int;  (** multiple of the processor count *)
  reps : int;
  key_cost : float;  (** per key counted/ranked *)
  bucket_cost : float;  (** per bucket summed/prefixed *)
}
(** Key/bucket counts, repetitions and calibrated per-item costs (us). Exposed so callers can size custom runs. *)

val run_page_size : nprocs:int -> page_size:int -> params -> int
(** The page size the tmk run actually uses: the configured size capped
    so a bucket section is a whole number of pages. Exposed for the
    static sharing-pattern models ({!Dsm_lint.App_models}). *)

val large : params
val small : params

val run_tmk :
  ?trace:Dsm_trace.Sink.t ->
  ?digest:bool ->
  ?plan:Dsm_tmk.Proto_plan.t ->
  Dsm_sim.Config.t ->
  params ->
  level:App_common.opt_level ->
  async:bool ->
  App_common.result
(** Concrete entry point with an explicit [params] record, kept for
    callers that size custom runs; {!tmk} below is the registry-facing
    equivalent. *)

val run_pvm : Dsm_sim.Config.t -> params -> App_common.result
val run_xhpf : (Dsm_sim.Config.t -> params -> App_common.result) option

include Workload.S with type size = params and type behavior = unit

(* Sharded key-value/session cache on the DSM: the transaction-style
   workload the paper's scientific kernels do not cover. A shared store
   of [keys] packed fixed-size objects (a version counter and a derived
   payload word each) is partitioned into [nprocs * shards_per_proc]
   lock-protected shards; every simulated client session performs one
   operation — a lookup or an update of a single object — under its
   shard's lock, against a Zipfian-skewed key popularity.

   Sessions arrive open-loop on the virtual clock: processor [p]'s k-th
   session arrives at [k * arrival_us] regardless of how fast earlier
   ones completed, so per-operation latency includes queueing delay when
   the DSM cannot keep up — the quantity the p50/p95/p99 percentiles in
   {!App_common.result.latencies_us} measure (the kernels' speedup
   metric is meaningless here; there is no fixed parallel work to
   divide).

   The store is allocated with {!Dsm_tmk.Tmk.Alloc.objs}: many 64-byte
   objects per 4KB page, written by whichever processor's shard lock
   covers them — textbook false sharing. Under [~granularity:Object]
   (the default, knob [--granularity]) the run-time tracks staleness per
   object slot and a validate of objects disjoint from every stale slot
   skips the page fetch; [--granularity page] is the experiment control
   at classic page granularity.

   Updates only bump a per-object version counter and rewrite the
   payload as a function of (key, version), so the final shared state
   depends on the per-key operation counts alone, not on the
   interleaving: digests are identical across backends, processor
   schedules and granularities, and verification compares versions
   against a sequentially computed count. *)

module Tmk = Dsm_tmk.Tmk
module Shm = Dsm_tmk.Shm
module Mp = Dsm_mp.Mp
open App_common

let name = "KV"

(* {1 Problem sizes} *)

type size = {
  keys : int;  (** key-space size; a power of two *)
  obj_bytes : int;  (** per-object footprint, multiple of 8, <= page *)
  shards_per_proc : int;  (** lock-protected shards per processor *)
  sessions : int;  (** total operations across all processors *)
  op_cost : float;  (** us of local compute per operation *)
  arrival_us : float;  (** open-loop inter-arrival per processor, us *)
}

let large =
  {
    keys = 16384;
    obj_bytes = 64;
    shards_per_proc = 4;
    sessions = 32768;
    op_cost = 8.0;
    arrival_us = 2000.0;
  }

let small = { large with keys = 2048; sessions = 8192 }

(* test-suite size: one object page per two processors at 8 procs *)
let tiny = { large with keys = 512; shards_per_proc = 2; sessions = 1024 }

let sizes = [ ("large", large); ("small", small); ("tiny", tiny) ]

let size_name s = Printf.sprintf "%d-keys/%d-ops" s.keys s.sessions

(* The uniprocessor baseline is pure service time: every session's
   compute, no consistency or lock traffic and no idle arrival gaps. *)
let seq_time_us s = float_of_int s.sessions *. s.op_cost

let levels = [ Base ]

(* {1 Behavior knobs} *)

let mixes = [ ("read90", 0.90); ("read50", 0.50); ("write90", 0.10) ]

type behavior = {
  mix : string;  (** name in {!mixes}; fixes the lookup fraction *)
  theta : float;  (** Zipfian skew exponent; 0 = uniform *)
  sessions : int option;  (** override of [size.sessions] *)
  granularity : Tmk.Alloc.granularity;
  keys : int option;  (** override of [size.keys] *)
  shards : int option;  (** override of [size.shards_per_proc] *)
}

let default_behavior =
  {
    mix = "read90";
    theta = 0.99;
    sessions = None;
    granularity = Tmk.Alloc.Object;
    keys = None;
    shards = None;
  }

let knob_doc =
  [
    ("mix", "operation mix: read90, read50 or write90");
    ("skew", "Zipfian hot-key exponent in [0, 2] (0 = uniform)");
    ("sessions", "total simulated client sessions (operations)");
    ("granularity", "store allocation granularity: page or object");
    ("keys", "key-space size (a power of two in [64, 1048576])");
    ("shards", "lock-protected shards per processor, in [1, 64]");
  ]

let is_pow2 n = n > 0 && n land (n - 1) = 0

let err ~field ~value ~range =
  Error (Dsm_net.Plan.field_error ~field ~value ~range)

let with_knob b ~key ~value =
  match key with
  | "mix" ->
      if List.mem_assoc value mixes then Ok { b with mix = value }
      else err ~field:"mix" ~value ~range:"read90, read50, write90"
  | "skew" -> (
      match float_of_string_opt value with
      | Some t when t >= 0.0 && t <= 2.0 -> Ok { b with theta = t }
      | _ -> err ~field:"skew" ~value ~range:"[0, 2]")
  | "sessions" -> (
      match int_of_string_opt value with
      | Some n when n >= 1 && n <= 100_000_000 ->
          Ok { b with sessions = Some n }
      | _ -> err ~field:"sessions" ~value ~range:"[1, 100000000]")
  | "granularity" -> (
      match value with
      | "page" -> Ok { b with granularity = Tmk.Alloc.Page }
      | "object" -> Ok { b with granularity = Tmk.Alloc.Object }
      | _ -> err ~field:"granularity" ~value ~range:"page, object")
  | "keys" -> (
      match int_of_string_opt value with
      | Some n when is_pow2 n && n >= 64 && n <= 1_048_576 ->
          Ok { b with keys = Some n }
      | _ -> err ~field:"keys" ~value ~range:"powers of two in [64, 1048576]")
  | "shards" -> (
      match int_of_string_opt value with
      | Some n when n >= 1 && n <= 64 -> Ok { b with shards = Some n }
      | _ -> err ~field:"shards" ~value ~range:"[1, 64]")
  | _ ->
      Error
        (Printf.sprintf "unknown knob for %s: %s (available: %s)" name key
           (String.concat ", " (List.map fst knob_doc)))

(* {1 Effective run parameters (size refined by behavior)} *)

type eff = {
  e_keys : int;
  e_nshards : int;
  e_per_proc : int;  (** sessions per processor *)
  e_read_frac : float;
  e_theta : float;
}

let effective (size : size) (b : behavior) ~nprocs =
  let keys = Option.value ~default:size.keys b.keys in
  let spp = Option.value ~default:size.shards_per_proc b.shards in
  let sessions = Option.value ~default:size.sessions b.sessions in
  {
    e_keys = keys;
    e_nshards = nprocs * spp;
    e_per_proc = max 1 (sessions / nprocs);
    e_read_frac = List.assoc b.mix mixes;
    e_theta = b.theta;
  }

(* {1 Deterministic operation streams}

   Each processor draws its sessions from a private 63-bit LCG, so the
   stream depends only on (pid, session index) — never on protocol
   timing — and the sequential reference can replay it exactly. *)

let lcg s = (s * 2862933555777941757) + 3037000493
let unit_float s = float_of_int ((s lsr 11) land 0xFFFFFFFF) /. 4294967296.0
let seed p = lcg (0x9E3779B9 + ((p + 1) * 0x85EBCA6B))

(* Zipf(theta) over ranks 1..keys as a normalized CDF; popularity rank
   [r] is scattered over the key space by an odd multiplier so hot keys
   land in different shards (and pages) rather than clustering at 0. *)
let zipf_memo : (int * int64, float array) Hashtbl.t = Hashtbl.create 8

let zipf_cdf ~keys ~theta =
  memo zipf_memo
    (keys, Int64.bits_of_float theta)
    (fun () ->
      let cdf = Array.make keys 0.0 in
      let acc = ref 0.0 in
      for r = 0 to keys - 1 do
        acc := !acc +. (1.0 /. (float_of_int (r + 1) ** theta));
        cdf.(r) <- !acc
      done;
      let total = !acc in
      Array.map (fun w -> w /. total) cdf)

let rank_of_u cdf u =
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let scatter ~keys rank = (rank * 0x61C88647) land (keys - 1)

(* One session: [(is_lookup, key)]; advances the caller's LCG state. *)
let next_op st cdf ~keys ~read_frac =
  let s1 = lcg !st in
  let s2 = lcg s1 in
  st := s2;
  let is_lookup = unit_float s1 < read_frac in
  let key = scatter ~keys (rank_of_u cdf (unit_float s2)) in
  (is_lookup, key)

(* The payload word is a pure function of (key, version): an updater
   writes both words under the shard lock, so a lookup that observes
   [payload <> payload_of key version] caught a torn or stale object. *)
let payload_of key version =
  if version = 0 then 0
  else ((key * 1000003) + (version * 65599)) land 0x3FFFFFFF

(* {1 Sequential reference: per-key update counts}

   The store's final state is (count, payload_of key count) per key —
   update order is irrelevant — so the reference is just a replay of
   every processor's op stream counting updates. *)

let counts_memo : (int * int * int * int64 * int64, int array) Hashtbl.t =
  Hashtbl.create 8

let reference e ~nprocs =
  (* fetched outside the memo thunk: [memo]'s process-wide lock is not
     reentrant, and [zipf_cdf] takes it too *)
  let cdf = zipf_cdf ~keys:e.e_keys ~theta:e.e_theta in
  memo counts_memo
    ( e.e_keys,
      e.e_per_proc,
      nprocs,
      Int64.bits_of_float e.e_theta,
      Int64.bits_of_float e.e_read_frac )
    (fun () ->
      let counts = Array.make e.e_keys 0 in
      for p = 0 to nprocs - 1 do
        let st = ref (seed p) in
        for _k = 1 to e.e_per_proc do
          let is_lookup, key =
            next_op st cdf ~keys:e.e_keys ~read_frac:e.e_read_frac
          in
          if not is_lookup then counts.(key) <- counts.(key) + 1
        done
      done;
      counts)

(* {1 TreadMarks version} *)

let run_tmk ?trace ?(digest = false) ?plan cfg size behavior ~level:_ ~async =
  let np = cfg.Dsm_sim.Config.nprocs in
  let e = effective size behavior ~nprocs:np in
  let sys = Tmk.make ?plan cfg in
  let store =
    Tmk.Alloc.objs sys ~granularity:behavior.granularity "kv"
      ~obj_size:size.obj_bytes ~count:e.e_keys
  in
  let wpo = size.obj_bytes / 8 in
  let cdf = zipf_cdf ~keys:e.e_keys ~theta:e.e_theta in
  let lat = Array.init np (fun _ -> Array.make e.e_per_proc 0.0) in
  let errs = Array.make np 0.0 in
  Tmk.run ?trace sys (fun t ->
      let p = Tmk.pid t in
      let st = ref (seed p) in
      for k = 0 to e.e_per_proc - 1 do
        let arrival = float_of_int k *. size.arrival_us in
        let now = Tmk.time t in
        if now < arrival then Tmk.charge t (arrival -. now);
        let is_lookup, key =
          next_op st cdf ~keys:e.e_keys ~read_frac:e.e_read_frac
        in
        let shard = key mod e.e_nshards in
        let lo = key * wpo in
        Tmk.lock_acquire t shard;
        Tmk.validate t ~async
          [ Shm.I64_1.section store (lo, lo + wpo - 1, 1) ]
          (if is_lookup then Tmk.Read else Tmk.Read_write);
        if is_lookup then begin
          let v = Shm.I64_1.get t store lo in
          let pl = Shm.I64_1.get t store (lo + 1) in
          if pl <> payload_of key v then
            errs.(p) <- combine_err errs.(p) 1.0
        end
        else begin
          let v = Shm.I64_1.get t store lo + 1 in
          Shm.I64_1.set t store lo v;
          Shm.I64_1.set t store (lo + 1) (payload_of key v)
        end;
        Tmk.charge t size.op_cost;
        Tmk.lock_release t shard;
        lat.(p).(k) <- Tmk.time t -. arrival
      done);
  let time_us = Tmk.elapsed sys in
  let stats = Tmk.total_stats sys in
  let homes = Tmk.homes sys in
  let classes = Tmk.adapt_classes sys in
  (* Untimed verification pass (a second run, like the digest pass:
     time/stats above are already captured): processor 0 validates and
     reads the whole store through the protocol and compares every
     version against the sequential reference counts. The whole-store
     validate never object-skips — its slot set meets every stale
     slot — so the read observes all updates. *)
  let counts = reference e ~nprocs:np in
  Tmk.run sys (fun t ->
      if Tmk.pid t = 0 then begin
        Tmk.validate t
          [ Shm.I64_1.section store (0, (e.e_keys * wpo) - 1, 1) ]
          Tmk.Read;
        for key = 0 to e.e_keys - 1 do
          let lo = key * wpo in
          let v = Shm.I64_1.get t store lo in
          errs.(0) <- combine_err errs.(0) (float_of_int (v - counts.(key)));
          if Shm.I64_1.get t store (lo + 1) <> payload_of key v then
            errs.(0) <- combine_err errs.(0) 1.0
        done
      end);
  let max_err = Array.fold_left combine_err 0.0 errs in
  let latencies = Array.concat (Array.to_list lat) in
  Array.sort compare latencies;
  make_result ~time_us ~stats ~max_err
    ~digest:(if digest then Tmk.digest sys else "")
    ~homes ~classes ~latencies_us:latencies
    ~nops:(e.e_per_proc * np) ()

(* {1 Hand-coded message passing}

   The natural MP design needs no coherence at all: each shard's
   objects live only at the shard's owner, and clients delegate
   operations by RPC. Requests are batched per window of [mp_window]
   sessions (two all-to-all rounds: requests out, per-owner error
   counts back), so an operation's latency is the window's round-trip
   — batching is how a real session cache would amortize the
   per-message cost. *)

let mp_window = 64

let run_pvm cfg size behavior =
  let np = cfg.Dsm_sim.Config.nprocs in
  let e = effective size behavior ~nprocs:np in
  let cdf = zipf_cdf ~keys:e.e_keys ~theta:e.e_theta in
  let counts = reference e ~nprocs:np in
  let sys = Mp.make cfg in
  let owner shard = shard mod np in
  let lat = Array.init np (fun _ -> Array.make e.e_per_proc 0.0) in
  let errs = Array.make np 0.0 in
  Mp.run sys (fun t ->
      let p = Mp.pid t in
      (* owner-local half of the store: only the entries of keys whose
         shard this processor owns are ever touched *)
      let vers = Array.make e.e_keys 0 in
      let payl = Array.make e.e_keys 0 in
      let st = ref (seed p) in
      let apply is_lookup key =
        if is_lookup then begin
          if payl.(key) <> payload_of key vers.(key) then
            errs.(p) <- combine_err errs.(p) 1.0
        end
        else begin
          vers.(key) <- vers.(key) + 1;
          payl.(key) <- payload_of key vers.(key)
        end;
        Mp.charge t size.op_cost
      in
      let serve a =
        let n = Array.length a / 2 in
        for i = 0 to n - 1 do
          apply (a.(2 * i) = 0.0) (int_of_float a.((2 * i) + 1))
        done
      in
      let done_ops = ref 0 in
      let window_no = ref 0 in
      while !done_ops < e.e_per_proc do
        let w = min mp_window (e.e_per_proc - !done_ops) in
        let first = !done_ops in
        (* open-loop: the window starts no earlier than its first
           session's arrival *)
        let arrival0 = float_of_int first *. size.arrival_us in
        let now = Mp.time t in
        if now < arrival0 then Mp.charge t (arrival0 -. now);
        (* generate and partition the window's sessions by owner,
           encoded [kind; key] per op (kind 0 = lookup, 1 = update) *)
        let batches = Array.make np [] in
        for _k = 1 to w do
          let is_lookup, key =
            next_op st cdf ~keys:e.e_keys ~read_frac:e.e_read_frac
          in
          let q = owner (key mod e.e_nshards) in
          batches.(q) <-
            float_of_int key :: (if is_lookup then 0.0 else 1.0) :: batches.(q)
        done;
        let tag_req = 2 * !window_no and tag_rep = (2 * !window_no) + 1 in
        for q = 0 to np - 1 do
          if q <> p then
            Mp.send_floats t ~dst:q ~tag:tag_req
              (Array.of_list (List.rev batches.(q)))
        done;
        (* serve own sessions, then every peer's delegated batch *)
        serve (Array.of_list (List.rev batches.(p)));
        for q = 0 to np - 1 do
          if q <> p then serve (Mp.recv_floats t ~src:q ~tag:tag_req)
        done;
        (* completion acknowledgements back to the clients; a window's
           sessions complete when every owner has acknowledged *)
        for q = 0 to np - 1 do
          if q <> p then Mp.send_floats t ~dst:q ~tag:tag_rep [| 1.0 |]
        done;
        for q = 0 to np - 1 do
          if q <> p then ignore (Mp.recv_floats t ~src:q ~tag:tag_rep)
        done;
        let fin = Mp.time t in
        for k = first to first + w - 1 do
          (* the batch usually drains before the window's later sessions
             even arrive; a session still cannot complete earlier than
             its own arrival plus service *)
          lat.(p).(k) <-
            Float.max size.op_cost
              (fin -. (float_of_int k *. size.arrival_us))
        done;
        incr window_no;
        done_ops := !done_ops + w
      done;
      (* final check of the owned keys against the reference counts *)
      for key = 0 to e.e_keys - 1 do
        if owner (key mod e.e_nshards) = p then begin
          errs.(p) <-
            combine_err errs.(p) (float_of_int (vers.(key) - counts.(key)));
          if payl.(key) <> payload_of key vers.(key) then
            errs.(p) <- combine_err errs.(p) 1.0
        end
      done);
  let latencies = Array.concat (Array.to_list lat) in
  Array.sort compare latencies;
  make_result ~time_us:(Mp.elapsed sys) ~stats:(Mp.total_stats sys)
    ~max_err:(Array.fold_left combine_err 0.0 errs)
    ~latencies_us:latencies
    ~nops:(e.e_per_proc * np) ()

(* {1 Workload.S instance} *)

let tmk ?trace ?digest ?plan cfg ~size ~behavior ~level ~async =
  run_tmk ?trace ?digest ?plan cfg size behavior ~level ~async

let pvm cfg ~size ~behavior = run_pvm cfg size behavior

(* XHPF cannot parallelize the cache: which object an operation touches
   is data-dependent (drawn from the Zipfian stream), outside its
   regular-section analysis. *)
let xhpf :
    (Dsm_sim.Config.t -> size:size -> behavior:behavior -> App_common.result)
    option =
  None

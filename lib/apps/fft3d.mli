(** 3D Fast Fourier Transform, after the NAS FT benchmark: per iteration an
    evolve step, local x/y FFTs on the z-slabs, a distributed transpose
    (producer-consumer communication at a barrier), a local z FFT, and the
    inverse transpose. The transpose reads a thin slice of every source
    page, so base TreadMarks moves whole-page diffs that mostly carry other
    readers' slices — the false-sharing amplification [Push] removes. All
    five optimization levels apply. *)

type params = { n : int; iters : int; bf_cost : float }
(** Cube edge, iteration count and calibrated per-butterfly cost (us). Exposed so callers can size custom runs. *)

val bounds : int -> int -> int -> int * int
(** [bounds n nprocs p] — the inclusive slab [(lo, hi)] along one
    dimension that processor [p] owns. Exposed for the static
    sharing-pattern models ({!Dsm_lint.App_models}). *)

val large : params
val small : params

val run_tmk :
  ?trace:Dsm_trace.Sink.t ->
  ?digest:bool ->
  ?plan:Dsm_tmk.Proto_plan.t ->
  Dsm_sim.Config.t ->
  params ->
  level:App_common.opt_level ->
  async:bool ->
  App_common.result
(** Concrete entry point with an explicit [params] record, kept for
    callers that size custom runs; {!tmk} below is the registry-facing
    equivalent. *)

val run_pvm : Dsm_sim.Config.t -> params -> App_common.result
val run_xhpf : (Dsm_sim.Config.t -> params -> App_common.result) option

include Workload.S with type size = params and type behavior = unit

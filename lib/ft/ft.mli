(** Run-time state of the crash-stop fault-tolerance subsystem: per-node
    crash queues, static down-window queries, suspicion caching, lost-page
    sets and checkpoint stacks. Consumed by [Dsm_tmk.Recover]; owns no
    protocol logic of its own. *)

type ckpt = {
  ck_id : int;
  ck_epoch : int;  (** barrier epoch the checkpoint was taken at *)
  ck_vc : int array;
  ck_known : (int, (int * int) list) Hashtbl.t;
      (** page -> per-writer known watermark at the checkpoint *)
}

type t = {
  nprocs : int;
  replicas : int;
  quorum : int;  (** ⌈(replicas+1)/2⌉ *)
  ckpt_every : int;
  mutable armed : bool;
  pending : Schedule.event list array;
  windows : Schedule.event list array;
  lost : (int, unit) Hashtbl.t array;
  ckpts : ckpt list array;
  mutable next_ckpt_id : int;
  suspected : (int * int * int, unit) Hashtbl.t;
}

val create : Dsm_sim.Config.t -> t
(** Build from the configuration's [replicas]/[ckpt_every]/[crash] fields.
    @raise Invalid_argument when {!Schedule.validate} rejects them. *)

val replicated : t -> bool
(** [replicas > 1]: homes are replica groups, flushes are quorum writes. *)

val has_crashes : t -> bool

val active : t -> bool
(** Replicated or crash-scheduled; when false every hook is a no-op and the
    runtime stays bit-identical to the pre-fault-tolerance code. *)

val disarm : t -> unit
(** Stop injecting crashes (the digest/verification read pass observes the
    recovered state without new failures). Replication stays in force. *)

val down_window : t -> peer:int -> at:float -> int option
(** Index of [peer]'s static down window covering virtual time [at]. *)

val is_down : t -> peer:int -> at:float -> bool

val suspect_once : t -> observer:int -> peer:int -> window:int -> bool
(** True exactly once per (observer, peer, window): the caller pays the
    RTO-exhaustion detection cost and emits the [Suspect] event. *)

val take_crash : t -> proc:int -> now:float -> Schedule.event option
(** Next crash of [proc] due at or before [now], consumed once. *)

val mark_lost : t -> int -> int -> unit
val is_lost : t -> int -> int -> bool
val clear_lost : t -> int -> int -> unit

val ckpt_due : t -> epoch:int -> bool

val push_ckpt :
  t -> int -> epoch:int -> vc:int array ->
  known:(int, (int * int) list) Hashtbl.t -> ckpt

val latest_ckpt : t -> int -> ckpt
(** Newest checkpoint of the processor; the implicit empty initial
    checkpoint when none has been taken. *)

(** Deterministic crash-stop schedule: parsing, validation and ordering of
    the [(proc, at_us, down_us)] triples carried by
    {!Dsm_sim.Config.t.crash}. Pure configuration — the runtime
    interpretation lives in [Dsm_tmk.Recover]. *)

type event = {
  proc : int;  (** the processor that fail-stops *)
  at_us : float;
      (** virtual-time trigger: the crash executes at the processor's first
          release point (barrier arrival) at or after this time *)
  down_us : float;  (** length of the static down window *)
}

type t = event list
(** Sorted by [at_us], then [proc]. *)

val quorum_of : replicas:int -> int
(** ⌈(k+1)/2⌉: acks required for a quorum write, copies consulted by a
    quorum read. *)

val tolerance : replicas:int -> int
(** [replicas - quorum_of]: concurrent failures per replica group the
    protocol survives without losing an acknowledged write. *)

val parse : string -> ((int * float * float) list, string) result
(** ["P\@T+D[,P\@T+D...]"]: processor [P] crashes at virtual time [T] for
    [D] microseconds; [""] is the empty schedule. *)

val validate :
  nprocs:int ->
  backend:Dsm_sim.Config.backend_kind ->
  replicas:int ->
  ckpt_every:int ->
  (int * float * float) list ->
  (t, string) result
(** Check every fault-tolerance field together: [replicas] within
    [1, nprocs], non-negative [ckpt_every], schedule triples in range,
    per-processor windows non-overlapping, a non-empty schedule restricted
    to the hlrc backend with [replicas >= 3], and the maximum number of
    concurrent windows within the {!tolerance} budget. Error messages
    follow {!Dsm_net.Plan.field_error}. *)

val of_config : Dsm_sim.Config.t -> (t, string) result
(** {!validate} applied to the configuration's own fields. *)

val pp : Format.formatter -> t -> unit

(* Run-time state of the crash-stop fault-tolerance subsystem.

   This module owns everything the coherence backends need to consult about
   failures, without depending on them: the per-processor crash queues
   derived from the validated {!Schedule}, the static down-window queries
   peers use to skip (and suspect) a dead replica, the per-processor
   checkpoint stacks, and the lost-page sets that force a rejoining node to
   refetch pages whose only copy it wiped. The protocol-side interpretation
   — quorum writes/reads, the wipe/restore sequence — lives in
   [Dsm_tmk.Recover]. *)

module Config = Dsm_sim.Config

type ckpt = {
  ck_id : int;
  ck_epoch : int;
  ck_vc : int array;  (* vector clock at the checkpoint barrier *)
  ck_known : (int, (int * int) list) Hashtbl.t;
      (* page -> sparse (writer, seq) known watermarks, ascending by writer;
         restoring [known] without [applied] is what forces a refetch of
         every page the node had heard of *)
}

type t = {
  nprocs : int;
  replicas : int;
  quorum : int;
  ckpt_every : int;
  mutable armed : bool;
      (* failures fire only while armed; the digest/verification read pass
         disarms the schedule so it observes the recovered state without
         injecting further crashes *)
  pending : Schedule.event list array;
      (* per proc, time-ordered; consumed as crashes execute *)
  windows : Schedule.event list array;
      (* per proc, static; never consumed — peers query down windows
         against these regardless of whether the crash has executed yet *)
  lost : (int, unit) Hashtbl.t array;  (* per proc: pages wiped by a crash *)
  ckpts : ckpt list array;  (* per proc, newest first *)
  mutable next_ckpt_id : int;
  suspected : (int * int * int, unit) Hashtbl.t;
      (* (observer, peer, window index): suspicion is established (and its
         RTO-exhaustion cost paid) once per observer per down window *)
}

let initial_ckpt nprocs =
  { ck_id = 0; ck_epoch = 0; ck_vc = Array.make nprocs 0;
    ck_known = Hashtbl.create 16 }

let create (cfg : Config.t) =
  match Schedule.of_config cfg with
  | Error msg -> invalid_arg ("Ft.create: " ^ msg)
  | Ok events ->
      let nprocs = cfg.Config.nprocs in
      let per_proc =
        Array.init nprocs (fun p ->
            List.filter (fun e -> e.Schedule.proc = p) events)
      in
      {
        nprocs;
        replicas = cfg.Config.replicas;
        quorum = Schedule.quorum_of ~replicas:cfg.Config.replicas;
        ckpt_every = cfg.Config.ckpt_every;
        armed = true;
        pending = Array.copy per_proc;
        windows = per_proc;
        lost = Array.init nprocs (fun _ -> Hashtbl.create 64);
        ckpts = Array.init nprocs (fun _ -> [ initial_ckpt nprocs ]);
        next_ckpt_id = 1;
        suspected = Hashtbl.create 16;
      }

let replicated t = t.replicas > 1
let has_crashes t = Array.exists (fun l -> l <> []) t.windows
let active t = replicated t || has_crashes t
let disarm t = t.armed <- false

(* {1 Down windows} *)

(* Window index of [peer]'s schedule covering virtual time [at], if any.
   Indices are per peer and stable, so they key the suspicion cache. *)
let down_window t ~peer ~at =
  if not t.armed then None
  else
    let rec go i = function
      | [] -> None
      | e :: rest ->
          if at >= e.Schedule.at_us && at < e.Schedule.at_us +. e.Schedule.down_us
          then Some i
          else go (i + 1) rest
    in
    go 0 t.windows.(peer)

let is_down t ~peer ~at = down_window t ~peer ~at <> None

(* First-time suspicion of [peer]'s given down window by [observer]:
   returns true exactly once per (observer, peer, window), so the caller
   charges the RTO-exhaustion detection cost once. *)
let suspect_once t ~observer ~peer ~window =
  let key = (observer, peer, window) in
  if Hashtbl.mem t.suspected key then false
  else begin
    Hashtbl.replace t.suspected key ();
    true
  end

(* Next crash of [proc] due at or before virtual time [now]; consumed. *)
let take_crash t ~proc ~now =
  if not t.armed then None
  else
    match t.pending.(proc) with
    | e :: rest when e.Schedule.at_us <= now ->
        t.pending.(proc) <- rest;
        Some e
    | _ -> None

(* {1 Lost pages} *)

let mark_lost t proc page = Hashtbl.replace t.lost.(proc) page ()
let is_lost t proc page = Hashtbl.mem t.lost.(proc) page
let clear_lost t proc page = Hashtbl.remove t.lost.(proc) page

(* {1 Checkpoints} *)

let ckpt_due t ~epoch =
  t.ckpt_every > 0 && epoch > 0 && epoch mod t.ckpt_every = 0

let push_ckpt t proc ~epoch ~vc ~known =
  let id = t.next_ckpt_id in
  t.next_ckpt_id <- id + 1;
  let ck = { ck_id = id; ck_epoch = epoch; ck_vc = vc; ck_known = known } in
  t.ckpts.(proc) <- ck :: t.ckpts.(proc);
  ck

let latest_ckpt t proc =
  match t.ckpts.(proc) with ck :: _ -> ck | [] -> initial_ckpt t.nprocs

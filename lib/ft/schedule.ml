(* Deterministic crash-stop schedule.

   A schedule is pure configuration, exactly like {!Dsm_net.Plan}: the set
   of node failures of a run is fixed up front as [(proc, at_us, down_us)]
   triples carried by {!Dsm_sim.Config}, so a faulty run is bit-for-bit
   reproducible from its configuration alone. The runtime interpretation
   (fail-stop at the next release point at or after [at_us], rejoin after
   [down_us] of virtual downtime) lives in [Dsm_tmk.Recover]; this module
   only parses, validates and orders the triples. *)

module Config = Dsm_sim.Config
module Plan = Dsm_net.Plan

type event = { proc : int; at_us : float; down_us : float }
type t = event list

let quorum_of ~replicas = (replicas / 2) + 1
let tolerance ~replicas = replicas - quorum_of ~replicas

(* "P@T+D[,P@T+D...]": processor P crashes at virtual time T for D
   microseconds. The empty string is the empty schedule. *)
let parse s =
  let s = String.trim s in
  if s = "" then Ok []
  else
    let parse_one spec =
      let fail () =
        Error
          (Printf.sprintf
             "crash: cannot parse %S (expected PROC@AT_US+DOWN_US)" spec)
      in
      match String.index_opt spec '@' with
      | None -> fail ()
      | Some i -> (
          let proc = String.sub spec 0 i in
          let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
          match String.index_opt rest '+' with
          | None -> fail ()
          | Some j -> (
              let at = String.sub rest 0 j in
              let down =
                String.sub rest (j + 1) (String.length rest - j - 1)
              in
              match
                ( int_of_string_opt (String.trim proc),
                  float_of_string_opt (String.trim at),
                  float_of_string_opt (String.trim down) )
              with
              | Some p, Some a, Some d -> Ok (p, a, d)
              | _ -> fail ()))
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | spec :: rest -> (
          match parse_one spec with
          | Ok e -> go (e :: acc) rest
          | Error _ as e -> e)
    in
    go [] (String.split_on_char ',' s)

(* Sort by trigger time, then processor: the order in which the runtime
   consumes the events is part of the deterministic contract. *)
let order events =
  List.sort
    (fun a b ->
      match compare a.at_us b.at_us with 0 -> compare a.proc b.proc | c -> c)
    events

(* Largest number of schedule windows open at one instant; crash-stop
   tolerance requires it to stay below the quorum margin. *)
let max_concurrent events =
  let edges =
    List.concat_map
      (fun e -> [ (e.at_us, 1); (e.at_us +. e.down_us, -1) ])
      events
  in
  let edges =
    List.sort
      (fun (ta, da) (tb, db) ->
        match compare ta tb with 0 -> compare da db | c -> c)
      edges
  in
  let cur = ref 0
  and best = ref 0 in
  List.iter
    (fun (_, d) ->
      cur := !cur + d;
      if !cur > !best then best := !cur)
    edges;
  !best

let validate ~nprocs ~backend ~replicas ~ckpt_every crash =
  let err field value range =
    Error (Plan.field_error ~field ~value ~range)
  in
  if replicas < 1 || replicas > nprocs then
    err "replicas" (string_of_int replicas)
      (Printf.sprintf "[1, nprocs=%d]" nprocs)
  else if ckpt_every < 0 then
    err "ckpt_every" (string_of_int ckpt_every) "[0, max_int]"
  else if crash <> [] && backend <> Config.Hlrc then
    Error "crash: a crash schedule requires the hlrc backend"
  else if crash <> [] && replicas < 3 then
    err "replicas" (string_of_int replicas)
      "[3, nprocs] when a crash schedule is set"
  else begin
    let bad =
      List.find_map
        (fun (p, at, down) ->
          if p < 0 || p >= nprocs then
            Some
              (Plan.field_error ~field:"crash proc" ~value:(string_of_int p)
                 ~range:(Printf.sprintf "[0, nprocs=%d)" nprocs))
          else if not (at >= 0.0) then
            Some
              (Plan.field_error ~field:"crash at_us"
                 ~value:(Printf.sprintf "%g" at)
                 ~range:"[0, inf)")
          else if not (down > 0.0) then
            Some
              (Plan.field_error ~field:"crash down_us"
                 ~value:(Printf.sprintf "%g" down)
                 ~range:"(0, inf)")
          else None)
        crash
    in
    match bad with
    | Some msg -> Error msg
    | None ->
        let events =
          order
            (List.map
               (fun (proc, at_us, down_us) -> { proc; at_us; down_us })
               crash)
        in
        (* per-processor windows must not overlap: a node cannot crash
           again before it has rejoined *)
        let overlap = ref None in
        List.iteri
          (fun i a ->
            List.iteri
              (fun j b ->
                if
                  j > i && a.proc = b.proc
                  && a.at_us +. a.down_us > b.at_us
                then overlap := Some a.proc)
              events)
          events;
        (match !overlap with
        | Some p ->
            Error
              (Printf.sprintf
                 "crash: overlapping windows for processor %d (a node must \
                  rejoin before it can crash again)"
                 p)
        | None ->
            let concurrent = max_concurrent events in
            let budget = tolerance ~replicas in
            if crash <> [] && concurrent > budget then
              Error
                (Plan.field_error ~field:"crash concurrent failures"
                   ~value:(string_of_int concurrent)
                   ~range:
                     (Printf.sprintf "[0, %d] for replicas=%d" budget
                        replicas))
            else Ok events)
  end

let of_config (c : Config.t) =
  validate ~nprocs:c.Config.nprocs ~backend:c.Config.backend
    ~replicas:c.Config.replicas ~ckpt_every:c.Config.ckpt_every
    c.Config.crash

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       (fun ppf e ->
         Format.fprintf ppf "%d@@%g+%g" e.proc e.at_us e.down_us))
    t

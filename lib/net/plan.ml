(* Per-run fault plan of the modeled unreliable transport.

   The plan is carried by {!Dsm_sim.Config} (so it reaches every subsystem
   that builds a cluster without threading new parameters through the
   application interfaces) and interpreted here. All fault decisions are
   drawn from a counter-based splitmix64 stream seeded with [seed]: the
   simulator's scheduler is deterministic, so a faulty run is exactly
   reproducible from [(config, seed)]. *)

module Config = Dsm_sim.Config

type t = {
  drop : float;  (* per-attempt loss probability *)
  dup : float;  (* per-delivery duplication probability *)
  jitter_us : float;  (* max uniform extra delivery delay *)
  seed : int;
  rto_us : float;  (* base retransmission timeout *)
  max_attempts : int;  (* the last attempt is forced through, so even a
                          drop rate of 1.0 terminates *)
}

let default_max_attempts = 16

let default =
  {
    drop = 0.0;
    dup = 0.0;
    jitter_us = 0.0;
    seed = 0;
    rto_us = 1000.0;
    max_attempts = default_max_attempts;
  }

let of_config (c : Config.t) =
  {
    drop = c.Config.net_drop;
    dup = c.Config.net_dup;
    jitter_us = c.Config.net_jitter_us;
    seed = c.Config.net_seed;
    rto_us = c.Config.net_rto_us;
    max_attempts = default_max_attempts;
  }

let is_passthrough t = t.drop = 0.0 && t.dup = 0.0 && t.jitter_us = 0.0

(* The [not (x >= lo && x <= hi)] form also rejects NaN. *)
let validate t =
  if not (t.drop >= 0.0 && t.drop <= 1.0) then
    Error (Printf.sprintf "drop rate %g outside [0,1]" t.drop)
  else if not (t.dup >= 0.0 && t.dup <= 1.0) then
    Error (Printf.sprintf "duplication rate %g outside [0,1]" t.dup)
  else if not (t.jitter_us >= 0.0) then
    Error (Printf.sprintf "jitter %g us is negative" t.jitter_us)
  else if t.seed < 0 then
    Error (Printf.sprintf "net seed %d is negative" t.seed)
  else if not (t.rto_us > 0.0) then
    Error (Printf.sprintf "retransmission timeout %g us must be positive"
             t.rto_us)
  else if t.max_attempts < 1 then
    Error (Printf.sprintf "max attempts %d must be at least 1" t.max_attempts)
  else Ok t

let pp ppf t =
  Format.fprintf ppf "drop=%g dup=%g jitter=%gus seed=%d rto=%gus" t.drop
    t.dup t.jitter_us t.seed t.rto_us

(* Per-run fault plan of the modeled unreliable transport.

   The plan is carried by {!Dsm_sim.Config} (so it reaches every subsystem
   that builds a cluster without threading new parameters through the
   application interfaces) and interpreted here. All fault decisions are
   drawn from a counter-based splitmix64 stream seeded with [seed]: the
   simulator's scheduler is deterministic, so a faulty run is exactly
   reproducible from [(config, seed)]. *)

module Config = Dsm_sim.Config

type t = {
  drop : float;  (* per-attempt loss probability *)
  dup : float;  (* per-delivery duplication probability *)
  jitter_us : float;  (* max uniform extra delivery delay *)
  seed : int;
  rto_us : float;  (* base retransmission timeout *)
  max_attempts : int;  (* the last attempt is forced through, so even a
                          drop rate of 1.0 terminates *)
}

let default_max_attempts = 16

let default =
  {
    drop = 0.0;
    dup = 0.0;
    jitter_us = 0.0;
    seed = 0;
    rto_us = 1000.0;
    max_attempts = default_max_attempts;
  }

let of_config (c : Config.t) =
  {
    drop = c.Config.net_drop;
    dup = c.Config.net_dup;
    jitter_us = c.Config.net_jitter_us;
    seed = c.Config.net_seed;
    rto_us = c.Config.net_rto_us;
    max_attempts = default_max_attempts;
  }

let is_passthrough t = t.drop = 0.0 && t.dup = 0.0 && t.jitter_us = 0.0

(* One format for every out-of-range configuration value, shared with the
   crash-schedule validation in [Dsm_ft.Schedule]: name the field, show the
   offending value and state the accepted range, so a CLI error pinpoints
   which flag to fix. *)
let field_error ~field ~value ~range =
  Printf.sprintf "%s: %s outside accepted range %s" field value range

(* The [not (x >= lo && x <= hi)] form also rejects NaN. *)
let validate t =
  if not (t.drop >= 0.0 && t.drop <= 1.0) then
    Error
      (field_error ~field:"drop" ~value:(Printf.sprintf "%g" t.drop)
         ~range:"[0, 1]")
  else if not (t.dup >= 0.0 && t.dup <= 1.0) then
    Error
      (field_error ~field:"dup" ~value:(Printf.sprintf "%g" t.dup)
         ~range:"[0, 1]")
  else if not (t.jitter_us >= 0.0) then
    Error
      (field_error ~field:"jitter_us"
         ~value:(Printf.sprintf "%g" t.jitter_us)
         ~range:"[0, inf)")
  else if t.seed < 0 then
    Error
      (field_error ~field:"net_seed" ~value:(string_of_int t.seed)
         ~range:"[0, max_int]")
  else if not (t.rto_us > 0.0) then
    Error
      (field_error ~field:"rto_us" ~value:(Printf.sprintf "%g" t.rto_us)
         ~range:"(0, inf)")
  else if t.max_attempts < 1 then
    Error
      (field_error ~field:"max_attempts" ~value:(string_of_int t.max_attempts)
         ~range:"[1, max_int]")
  else Ok t

let pp ppf t =
  Format.fprintf ppf "drop=%g dup=%g jitter=%gus seed=%d rto=%gus" t.drop
    t.dup t.jitter_us t.seed t.rto_us

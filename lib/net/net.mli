(** Modeled unreliable transport with a reliable-delivery layer on top.

    Drop-in replacements for the {!Dsm_sim.Cluster} cost functions
    ([send]/[rpc]/[bcast]) that route every message over a network which
    may drop, duplicate, delay or reorder copies according to the run's
    {!Plan}, and recover exactly-once in-order delivery with sequence
    numbers, acks, timeout + exponential-backoff retransmission,
    duplicate suppression and per-flow resequencing. Recovery costs
    (retransmit wire time, timeout stalls, ack overhead) are charged to
    the virtual clocks and counted in the new {!Dsm_sim.Stats} fields
    ([retransmits], [timeouts], [dropped], [duplicates]).

    With a passthrough plan (all fault rates zero) every function
    delegates directly to the corresponding [Cluster] function —
    bit-identical clocks, statistics and trace. All fault decisions come
    from a counter-based deterministic PRNG, so a faulty run is exactly
    reproducible from [(config, seed)]. *)

type t

val create : ?plan:Plan.t -> Dsm_sim.Cluster.t -> t
(** Build a transport over a cluster. [plan] defaults to
    {!Plan.of_config} of the cluster's configuration.
    @raise Invalid_argument if the plan fails {!Plan.validate}. *)

val cluster : t -> Dsm_sim.Cluster.t
val plan : t -> Plan.t

val passthrough : t -> bool
(** The plan has no faults: this transport is a bit-identical
    pass-through to the raw cluster cost functions. *)

val set_trace : t -> Dsm_trace.Sink.t option -> unit
(** Attach/detach the sink that receives [Msg_drop]/[Msg_dup]/
    [Retransmit]/[Timeout_fire]/[Ack] events. *)

val set_vc_source : t -> (int -> int array) -> unit
(** Provide per-processor vector-clock snapshots for emitted events (the
    DSM run-time points this at its protocol vector clocks so net events
    satisfy the checker's vc rules). Defaults to all-zero clocks. *)

val send : t -> src:int -> dst:int -> bytes:int -> float
(** Reliable one-way message of [bytes] payload bytes; returns the
    delivery time at [dst] as a virtual clock value in µs (resequenced:
    never earlier than the previous [src]→[dst] delivery, after any
    retransmissions and jitter). The sender's CPU is charged for the
    initial attempt and every retransmission; the ack leg is charged to
    both ends. None of this touches the host clock — like every cost
    function here it is deterministic given [(plan, call sequence)]. *)

val rpc :
  t -> src:int -> dst:int -> req_bytes:int -> resp_bytes:int ->
  service:float -> unit
(** Synchronous request/response over two reliable legs, with [service]
    µs of handler time at [dst] between them. Request-leg faults delay
    handler occupancy at [dst] (and so every later request serialized
    behind it — the hot-spot effect); response-leg faults delay the
    requester's unblock time and charge the responder's CPU. Advances
    [src]'s virtual clock past the full roundtrip; does not suspend the
    calling fiber. *)

val bcast : t -> src:int -> bytes:int -> float
(** Binary-tree broadcast of [bytes] to all other processors; each tree
    hop is its own reliable leg, so a fault on one hop delays that whole
    subtree. Returns the root's completion time (virtual µs). *)

(** {1 Exposed for tests} *)

val u01 : seed:int -> int -> float
(** [u01 ~seed n] is the [n]-th uniform draw in [0,1) of the
    counter-based splitmix64 generator driving all fault decisions: a
    pure function of [(seed, n)], so tests can predict — and replay
    tools re-derive — every drop/duplicate/jitter choice of a run
    without sharing generator state. *)

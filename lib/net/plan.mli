(** Per-run fault plan of the modeled unreliable transport: loss,
    duplication and delay-jitter probabilities plus the seed of the
    deterministic PRNG that drives them, and the reliable layer's
    retransmission-timeout parameters.

    A plan is pure configuration — it owns no state. All randomness is
    re-derived from [(seed, draw counter)] by {!Net.u01}, which is what
    makes a faulty run bit-for-bit replayable and lets [dsm_run]'s
    [--drop]/[--dup]/[--jitter]/[--net-seed] flags define the run
    completely. *)

type t = {
  drop : float;  (** per-attempt loss probability, in [0,1]; applies
                     independently to every delivery attempt, including
                     retransmissions and ack legs *)
  dup : float;  (** per-delivery duplication probability, in [0,1]; the
                    duplicate is suppressed at the receiver but charges
                    wire and interrupt costs like any delivery *)
  jitter_us : float;  (** maximum extra delivery delay, drawn uniformly
                          per message copy, in virtual µs (>= 0) *)
  seed : int;  (** PRNG seed; a faulty run replays exactly from
                   [(config, seed)] *)
  rto_us : float;  (** base retransmission timeout in virtual µs; doubles
                       on every expiry (exponential backoff) *)
  max_attempts : int;
      (** delivery-attempt cap; the final attempt is forced through so every
          run terminates even under a drop rate of 1.0 *)
}

val default : t
(** All fault rates zero: the exactly-once substrate of the paper.
    [rto_us] and [max_attempts] keep sane values so a plan built by
    updating only the rates still validates. *)

val default_max_attempts : int
(** The delivery-attempt cap of {!default}; also the number of unanswered
    retransmissions after which a peer inside a scheduled down window is
    suspected ([Dsm_tmk.Recover] charges [rto_us * default_max_attempts]
    for the detection). *)

val of_config : Dsm_sim.Config.t -> t
(** Read the plan from the [net_*] fields of a cluster configuration. *)

val is_passthrough : t -> bool
(** No drop, duplication or jitter: the transport must behave bit-identically
    to the raw {!Dsm_sim.Cluster} cost functions. *)

val field_error : field:string -> value:string -> range:string -> string
(** ["field: value outside accepted range range"] — the one error format
    every fault-configuration validator uses ({!validate} here, the crash
    schedule in [Dsm_ft.Schedule]), so a rejected flag names the field and
    its accepted range. *)

val validate : t -> (t, string) result
(** Reject rates outside [0,1], negative jitter or seed, and non-positive
    timeouts (NaN included). Error messages follow {!field_error}. *)

val pp : Format.formatter -> t -> unit

(** Per-run fault plan of the modeled unreliable transport: loss,
    duplication and delay-jitter probabilities plus the seed of the
    deterministic PRNG that drives them, and the reliable layer's
    retransmission-timeout parameters. *)

type t = {
  drop : float;  (** per-attempt loss probability, in [0,1] *)
  dup : float;  (** per-delivery duplication probability, in [0,1] *)
  jitter_us : float;  (** max uniform extra delivery delay, us *)
  seed : int;  (** PRNG seed; a faulty run replays exactly from (config, seed) *)
  rto_us : float;  (** base retransmission timeout (doubles per loss) *)
  max_attempts : int;
      (** delivery-attempt cap; the final attempt is forced through so every
          run terminates even under a drop rate of 1.0 *)
}

val default : t
(** All fault rates zero: the exactly-once substrate of the paper. *)

val of_config : Dsm_sim.Config.t -> t
(** Read the plan from the [net_*] fields of a cluster configuration. *)

val is_passthrough : t -> bool
(** No drop, duplication or jitter: the transport must behave bit-identically
    to the raw {!Dsm_sim.Cluster} cost functions. *)

val validate : t -> (t, string) result
(** Reject rates outside [0,1], negative jitter or seed, and non-positive
    timeouts (NaN included). *)

val pp : Format.formatter -> t -> unit

(* Modeled unreliable transport with a reliable-delivery layer on top.

   Every protocol message of the DSM run-time and the message-passing
   library is routed through here instead of calling the raw
   {!Dsm_sim.Cluster} cost functions. The network below can drop,
   duplicate, reorder (jitter) or delay message copies according to the
   run's {!Plan}; the reliable layer recovers exactly-once in-order
   delivery with sequence numbers, acknowledgements, timeout-driven
   retransmission with exponential backoff, duplicate suppression and
   per-flow resequencing, and charges every recovery cost (retransmit
   wire time, timeout stalls, ack overhead) to the virtual clocks and the
   per-processor {!Dsm_sim.Stats}.

   Two properties the tests pin down:

   - With a passthrough plan (drop = dup = jitter = 0) every function
     delegates directly to the corresponding [Cluster] function: no PRNG
     draws, no acks, no events — bit-identical clocks, stats and results.
   - All fault decisions come from a counter-based splitmix64 stream, and
     the simulator's fiber scheduler is deterministic, so a faulty run is
     exactly reproducible from [(config, seed)].

   Modeling notes (documented approximations):
   - Acks are 8-byte wire messages whose CPU overhead is charged (sender
     and receiver) but whose wire latency never blocks anyone; they are
     modeled as never lost — losing an ack only causes a spurious
     retransmit that duplicate suppression absorbs, a second-order cost
     folded into the drop rate itself.
   - For a *blocking* transfer (an RPC leg) retransmission delay
     surfaces purely as a later delivery time: the requester is stalled
     waiting either way. For a *non-blocking* send the sender's CPU is
     charged for each retransmission (timeout interrupt + resend
     overhead) since it happens concurrently with its own progress.
   - In-order delivery per flow is modeled by flooring each delivery at
     the flow's previous delivery time (a reordered copy waits in the
     resequencing buffer). *)

module Config = Dsm_sim.Config
module Cluster = Dsm_sim.Cluster
module Stats = Dsm_sim.Stats
module Event = Dsm_trace.Event
module Sink = Dsm_trace.Sink
module Prof = Dsm_prof.Prof

(* {1 Deterministic counter-based PRNG (splitmix64)} *)

let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform float in [0,1) from (seed, counter): draw [ctr]'s position in
   the splitmix64 sequence seeded with [seed], keep the top 53 bits. *)
let u01 ~seed ctr =
  let z =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int ctr) 0x9e3779b97f4a7c15L)
         (Int64.of_int seed))
  in
  let mant = Int64.to_int (Int64.shift_right_logical z 11) in
  float_of_int mant *. (1.0 /. 9007199254740992.0)

let ack_bytes = 8

type t = {
  cluster : Cluster.t;
  plan : Plan.t;
  passthrough : bool;
  mutable rng_ctr : int;  (* next PRNG counter: the fault-stream cursor *)
  mutable next_msg : int;  (* next reliable-layer sequence number *)
  last_delivery : (int * int, float) Hashtbl.t;
      (* per-flow (src,dst) resequencing floor: in-order delivery *)
  mutable trace : Sink.t option;
  mutable vc_of : int -> int array;
      (* vector-clock snapshot provider for emitted events; the DSM
         run-time points this at its per-processor vector clocks so net
         events satisfy the checker's vc rules *)
}

let create ?plan cluster =
  let plan =
    match plan with
    | Some p -> p
    | None -> Plan.of_config cluster.Cluster.cfg
  in
  match Plan.validate plan with
  | Error msg -> invalid_arg ("Net.create: " ^ msg)
  | Ok plan ->
      {
        cluster;
        plan;
        passthrough = Plan.is_passthrough plan;
        rng_ctr = 0;
        next_msg = 0;
        last_delivery = Hashtbl.create 64;
        trace = None;
        vc_of = (fun _ -> Array.make (Cluster.nprocs cluster) 0);
      }

let cluster t = t.cluster
let plan t = t.plan
let passthrough t = t.passthrough
let set_trace t sink = t.trace <- sink
let set_vc_source t f = t.vc_of <- f

let draw t =
  let u = u01 ~seed:t.plan.Plan.seed t.rng_ctr in
  t.rng_ctr <- t.rng_ctr + 1;
  u

let emit t p kind =
  match t.trace with
  | None -> ()
  | Some sink ->
      Sink.emit sink ~proc:p ~time:(Cluster.time t.cluster p) ~vc:(t.vc_of p)
        kind

(* {1 The reliable leg} *)

type leg = {
  msg : int;
  attempts : int;  (* delivery attempts including the first transmission *)
  deliver : float;  (* delivery time at the receiver, after resequencing *)
  dup : bool;  (* the network duplicated the final delivery *)
}

(* Sample the fate of one reliable one-way transfer of [bytes] from [src]
   to [dst] whose first copy hits the wire at [xmit]. Updates statistics
   and emits trace events for every drop, timeout, retransmission and
   duplicate, but performs NO clock charging: where retransmit CPU time
   and duplicate-suppression overhead land depends on whether the sender
   blocks, so the callers charge. *)
let reliable_leg t ~src ~dst ~bytes ~xmit =
  let c = t.cluster.Cluster.cfg in
  let plan = t.plan in
  let msg = t.next_msg in
  t.next_msg <- msg + 1;
  let st_src = t.cluster.Cluster.stats.(src) in
  let st_dst = t.cluster.Cluster.stats.(dst) in
  let rec attempt k x =
    (* Short-circuit at the cap without consuming a draw: the final
       attempt is forced through, so even drop = 1.0 terminates. *)
    if
      k < plan.Plan.max_attempts
      && plan.Plan.drop > 0.0
      && draw t < plan.Plan.drop
    then begin
      st_src.Stats.dropped <- st_src.Stats.dropped + 1;
      emit t src (Event.Msg_drop { msg; src; dst; attempt = k });
      let backoff = plan.Plan.rto_us *. (2.0 ** float_of_int (k - 1)) in
      st_src.Stats.timeouts <- st_src.Stats.timeouts + 1;
      emit t src
        (Event.Timeout_fire { msg; src; dst; attempt = k; backoff_us = backoff });
      st_src.Stats.retransmits <- st_src.Stats.retransmits + 1;
      st_src.Stats.messages <- st_src.Stats.messages + 1;
      st_src.Stats.bytes <- st_src.Stats.bytes + bytes;
      emit t src (Event.Retransmit { msg; src; dst; attempt = k + 1 });
      attempt (k + 1) (x +. backoff)
    end
    else (k, x)
  in
  let attempts, last_xmit = attempt 1 xmit in
  let jitter =
    if plan.Plan.jitter_us > 0.0 then draw t *. plan.Plan.jitter_us else 0.0
  in
  let arrival = last_xmit +. c.Config.wire_latency_us +. jitter in
  let flow = (src, dst) in
  let deliver =
    match Hashtbl.find_opt t.last_delivery flow with
    | Some floor when floor > arrival -> floor
    | _ -> arrival
  in
  Hashtbl.replace t.last_delivery flow deliver;
  let dup = plan.Plan.dup > 0.0 && draw t < plan.Plan.dup in
  if dup then begin
    st_dst.Stats.duplicates <- st_dst.Stats.duplicates + 1;
    emit t dst (Event.Msg_dup { msg; src; dst })
  end;
  { msg; attempts; deliver; dup }

(* Acknowledge a delivered leg: the receiver returns an [ack_bytes] wire
   message (charged to its CPU and message counts); the original sender
   pays receive overhead. *)
let ack t ~src ~dst ~msg ~attempts =
  let c = t.cluster.Cluster.cfg in
  let st_dst = t.cluster.Cluster.stats.(dst) in
  st_dst.Stats.messages <- st_dst.Stats.messages + 1;
  st_dst.Stats.bytes <- st_dst.Stats.bytes + ack_bytes;
  Cluster.charge t.cluster dst
    (c.Config.msg_overhead_us
    +. (c.Config.per_byte_us *. float_of_int ack_bytes));
  Cluster.charge t.cluster src c.Config.msg_overhead_us;
  emit t dst (Event.Ack { msg; src; dst; attempts })

(* CPU cost one retransmission imposes on the resending processor:
   timeout interrupt plus the resend overhead. *)
let retransmit_cpu c ~bytes =
  c.Config.interrupt_us +. c.Config.msg_overhead_us
  +. (c.Config.per_byte_us *. float_of_int bytes)

(* {1 The transport cost functions} *)

let send t ~src ~dst ~bytes =
  Prof.enter Prof.Net;
  let r =
  if t.passthrough then Cluster.send t.cluster ~src ~dst ~bytes
  else begin
    let c = t.cluster.Cluster.cfg in
    let base_arrival = Cluster.send t.cluster ~src ~dst ~bytes in
    let xmit = base_arrival -. c.Config.wire_latency_us in
    let l = reliable_leg t ~src ~dst ~bytes ~xmit in
    (* Non-blocking send: the sender's CPU pays for each retransmission. *)
    if l.attempts > 1 then
      Cluster.charge t.cluster src
        (float_of_int (l.attempts - 1) *. retransmit_cpu c ~bytes);
    (* Duplicate suppression: the receiver takes the interrupt, matches
       the sequence number against its window and discards the copy. *)
    if l.dup then Cluster.charge t.cluster dst c.Config.msg_overhead_us;
    ack t ~src ~dst ~msg:l.msg ~attempts:l.attempts;
    l.deliver
  end
  in
  Prof.exit Prof.Net;
  r

let rpc t ~src ~dst ~req_bytes ~resp_bytes ~service =
  Prof.enter Prof.Net;
  (if t.passthrough then
    Cluster.rpc t.cluster ~src ~dst ~req_bytes ~resp_bytes ~service
  else begin
    let c = t.cluster.Cluster.cfg in
    (* Mirror Cluster.rpc's accounting, with both legs made reliable. *)
    let st_src = t.cluster.Cluster.stats.(src)
    and st_dst = t.cluster.Cluster.stats.(dst) in
    st_src.Stats.messages <- st_src.Stats.messages + 1;
    st_src.Stats.bytes <- st_src.Stats.bytes + req_bytes;
    st_dst.Stats.messages <- st_dst.Stats.messages + 1;
    st_dst.Stats.bytes <- st_dst.Stats.bytes + resp_bytes;
    let handler_time =
      c.Config.interrupt_us +. c.Config.msg_overhead_us +. service
      +. c.Config.msg_overhead_us
      +. (c.Config.per_byte_us *. float_of_int resp_bytes)
    in
    Cluster.charge t.cluster dst handler_time;
    let send_done =
      Cluster.time t.cluster src
      +. c.Config.msg_overhead_us
      +. (c.Config.per_byte_us *. float_of_int req_bytes)
    in
    (* Request leg: [src] blocks for the reply, so retransmission delay
       shows up purely as a later arrival at the handler. *)
    let rl = reliable_leg t ~src ~dst ~bytes:req_bytes ~xmit:send_done in
    if rl.dup then Cluster.charge t.cluster dst c.Config.msg_overhead_us;
    let start = Cluster.occupy t.cluster dst ~arrival:rl.deliver ~handler_time in
    ack t ~src ~dst ~msg:rl.msg ~attempts:rl.attempts;
    (* Response leg: the responder's CPU pays for each retransmission of
       the reply (it is not blocked on the requester). *)
    let resp_xmit = start +. handler_time in
    let sl =
      reliable_leg t ~src:dst ~dst:src ~bytes:resp_bytes ~xmit:resp_xmit
    in
    if sl.attempts > 1 then
      Cluster.charge t.cluster dst
        (float_of_int (sl.attempts - 1) *. retransmit_cpu c ~bytes:resp_bytes);
    Cluster.sync_clock t.cluster src (sl.deliver +. c.Config.msg_overhead_us);
    if sl.dup then Cluster.charge t.cluster src c.Config.msg_overhead_us;
    ack t ~src:dst ~dst:src ~msg:sl.msg ~attempts:sl.attempts
  end);
  Prof.exit Prof.Net

let bcast t ~src ~bytes =
  Prof.enter Prof.Net;
  let r =
  if t.passthrough then Cluster.bcast t.cluster ~src ~bytes
  else begin
    let c = t.cluster.Cluster.cfg in
    let n = Cluster.nprocs t.cluster in
    let st = t.cluster.Cluster.stats.(src) in
    st.Stats.messages <- st.Stats.messages + (n - 1);
    st.Stats.bytes <- st.Stats.bytes + (bytes * (n - 1));
    st.Stats.broadcasts <- st.Stats.broadcasts + 1;
    let per_hop =
      c.Config.msg_overhead_us
      +. (c.Config.per_byte_us *. float_of_int bytes)
      +. c.Config.wire_latency_us +. c.Config.msg_overhead_us
    in
    let hops =
      if c.Config.bcast_log_tree then
        int_of_float (ceil (log (float_of_int n) /. log 2.0))
      else n - 1
    in
    (* Model each of the root's tree hops as a reliable leg to that hop's
       first receiver; faults on a hop delay every later hop (the tree
       stages serialize at the root). [penalty] accumulates the extra
       delay plus the root's retransmission CPU. *)
    let penalty = ref 0.0 in
    for h = 0 to hops - 1 do
      let dst =
        if c.Config.bcast_log_tree then (src + (1 lsl h)) mod n
        else (src + h + 1) mod n
      in
      let xmit =
        Cluster.time t.cluster src
        +. !penalty
        +. (float_of_int h *. per_hop)
        +. c.Config.msg_overhead_us
        +. (c.Config.per_byte_us *. float_of_int bytes)
      in
      let l = reliable_leg t ~src ~dst ~bytes ~xmit in
      penalty :=
        !penalty
        +. (l.deliver -. (xmit +. c.Config.wire_latency_us))
        +. float_of_int (l.attempts - 1) *. retransmit_cpu c ~bytes;
      if l.dup then Cluster.charge t.cluster dst c.Config.msg_overhead_us;
      ack t ~src ~dst ~msg:l.msg ~attempts:l.attempts
    done;
    Cluster.charge t.cluster src ((float_of_int hops *. per_hop) +. !penalty);
    Cluster.time t.cluster src
  end
  in
  Prof.exit Prof.Net;
  r

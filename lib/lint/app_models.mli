(** Per-application access models for the static sharing-pattern
    classifier.

    Each model is a small IR program whose barrier epochs reproduce the
    shared-array accesses of the corresponding {!Dsm_apps} application:
    same allocation order, same partition functions (imported from the
    apps), same per-epoch read/write sections. [dsm_lint plan] feeds a
    model to {!Classify.plan} to produce the protocol-placement plan
    that [dsm_run --plan] then consumes. *)

val jacobi :
  Dsm_apps.Jacobi.params ->
  nprocs:int ->
  page_size:int ->
  Classify.model

val gauss :
  Dsm_apps.Gauss.params -> nprocs:int -> page_size:int -> Classify.model

val mgs : Dsm_apps.Mgs.params -> nprocs:int -> page_size:int -> Classify.model
val is : Dsm_apps.Is.params -> nprocs:int -> page_size:int -> Classify.model

val shallow :
  Dsm_apps.Shallow.params -> nprocs:int -> page_size:int -> Classify.model

val fft3d :
  Dsm_apps.Fft3d.params -> nprocs:int -> page_size:int -> Classify.model

(** {1 Registry} *)

type size = Small | Large

type spec = {
  name : string;
  build : nprocs:int -> page_size:int -> size:size -> Classify.model;
}

val all : spec list
(** One spec per shipped application, in the CLI's order. *)

val find : string -> spec option
val names : string list

(** Static-vs-dynamic differential check.

    Runs a program on the simulated run-time with protocol tracing
    enabled, replays the recorded page accesses
    ({!Dsm_trace.Replay.accesses}), and verifies that every page a
    processor faulted on (or twinned) falls inside that processor's
    static access summary. A page outside the summary means the
    compiler under-approximated the access set — exactly the situation
    in which an inserted [Validate] could miss data and the transformed
    program could read stale values — and is reported as an
    {!Diag.kind.Uncovered_access} error.

    The static side is the per-processor union of every region's read
    and write sections, instantiated against the {e real} array layout
    of the run ({!Dsm_compiler.Interp.outcome.arrays}); a faulted page
    is covered when its byte interval intersects that set. *)

type proc_stat = {
  static_pages : int;  (** pages in the processor's static summary *)
  dynamic_pages : int;  (** distinct pages it touched at run time *)
  covered_pages : int;  (** dynamic pages inside the static summary *)
  dropped : int;
      (** trace events this processor lost to ring overflow — its pages
          are undercounted by up to this many *)
}

type report = {
  nprocs : int;
  per_proc : proc_stat array;
  dropped : int;
      (** trace events lost to ring overflow — nonzero means the check
          is incomplete *)
  diags : Diag.t list;
}

val check :
  program:string ->
  page_size:int ->
  nprocs:int ->
  static:Dsm_rsd.Range.t array ->
  ?page_owner:(int -> string option) ->
  Dsm_trace.Replay.access list ->
  report
(** Pure core: compare replayed accesses against per-processor static
    byte ranges (real addresses). Exposed so tests can seed a truncated
    summary and watch the check fail. [dropped] is reported as 0. *)

val static_ranges :
  Dsm_compiler.Ir.program ->
  nprocs:int ->
  arrays:(string * Dsm_rsd.Section.array_info) list ->
  Dsm_rsd.Range.t array
(** Per-processor static access envelope: union over all regions (or
    the whole body, for programs without a steady-state loop) of the
    concrete read and write sections, under the given array layout. *)

val run :
  ?opts:Dsm_compiler.Transform.opts ->
  ?cfg:Dsm_sim.Config.t ->
  Dsm_compiler.Ir.program ->
  nprocs:int ->
  report
(** Transform the program (default {!Dsm_compiler.Transform.all}),
    execute it with tracing, and {!check} the trace against
    {!static_ranges} of the {e original} program. Per-processor
    [dropped] counts are filled from the sink's ring statistics. *)

(** {1 Static protocol-plan grading}

    Compares a static protocol-placement plan against what a traced
    adaptive run actually did: the final per-page classification
    ({!Dsm_apps.App_common.result}[.classes]) and every [Proto_switch]
    event. A switch {e away} from an exact-confidence static decision is
    a misprediction even if the run later converged back. *)

type misprediction = {
  mp_page : int;
  mp_array : string;
  mp_expected : string * int;  (** static (protocol, owner) *)
  mp_got : (string * int) option;
      (** final dynamic class; [None] — never left the LRC default *)
  mp_switched : bool;
      (** a [Proto_switch] moved the page off the static decision *)
}

type class_stat = {
  cs_proto : string;
  cs_confidence : Dsm_tmk.Proto_plan.confidence;
  cs_pages : int;
  cs_agreed : int;
}

type grading = {
  exact_pages : int;
  exact_agreed : int;
  inexact_pages : int;
  inexact_agreed : int;
  by_class : class_stat list;  (** per (protocol, confidence) *)
  mispredictions : misprediction list;
      (** exact-confidence pages whose final class disagrees or that
          switched away mid-run *)
}

val grade :
  plan:Dsm_tmk.Proto_plan.t ->
  classes:(int * string * int) list ->
  events:Dsm_trace.Event.t list ->
  grading
(** Inexact pages never yield mispredictions — the plan marked them as
    hints. A page absent from [classes] counts as agreeing only with an
    [lrc] prediction (the adaptive table only holds observed pages). *)

module Range = Dsm_rsd.Range
module Section = Dsm_rsd.Section
open Dsm_compiler

type proc_stat = {
  static_pages : int;
  dynamic_pages : int;
  covered_pages : int;
}

type report = {
  nprocs : int;
  per_proc : proc_stat array;
  dropped : int;
  diags : Diag.t list;
}

let check ~program ~page_size ~nprocs ~static ?page_owner accesses =
  let page_owner = Option.value ~default:(fun _ -> None) page_owner in
  let dynamic = Array.make nprocs [] in
  let diags = ref [] in
  let reported = Hashtbl.create 16 in
  List.iter
    (fun (a : Dsm_trace.Replay.access) ->
      if a.Dsm_trace.Replay.proc >= 0 && a.Dsm_trace.Replay.proc < nprocs
      then begin
        let p = a.Dsm_trace.Replay.proc
        and page = a.Dsm_trace.Replay.page in
        dynamic.(p) <- page :: dynamic.(p);
        let interval =
          Range.of_interval (page * page_size) ((page + 1) * page_size)
        in
        if
          Range.is_empty (Range.inter static.(p) interval)
          && not (Hashtbl.mem reported (p, page))
        then begin
          Hashtbl.add reported (p, page) ();
          diags :=
            Diag.make Diag.Error ~program
              (Diag.Uncovered_access
                 {
                   p;
                   page;
                   epoch = a.Dsm_trace.Replay.epoch;
                   write = a.Dsm_trace.Replay.write;
                   array = page_owner page;
                 })
            :: !diags
        end
      end)
    accesses;
  let per_proc =
    Array.init nprocs (fun p ->
        let dyn = List.sort_uniq compare dynamic.(p) in
        {
          static_pages = List.length (Range.pages ~page_size static.(p));
          dynamic_pages = List.length dyn;
          covered_pages =
            List.length
              (List.filter
                 (fun page ->
                   not
                     (Range.is_empty
                        (Range.inter static.(p)
                           (Range.of_interval (page * page_size)
                              ((page + 1) * page_size)))))
                 dyn);
        })
  in
  { nprocs; per_proc; dropped = 0; diags = List.rev !diags }

let static_ranges (prog : Ir.program) ~nprocs ~arrays =
  let summaries =
    let res = Access.analyze prog ~nprocs in
    match res.Access.regions with
    | [] -> [ Access.body_summary prog ~nprocs ]
    | regions ->
        (* Regions cover only the code between syncs; the body summary
           adds the leading/trailing statements of linear programs. *)
        let all =
          List.map (fun (r : Access.region) -> r.Access.summary) regions
        in
        if res.Access.cyclic then all
        else Access.body_summary prog ~nprocs :: all
  in
  Array.init nprocs (fun p ->
      let binding = Conc.binding prog ~nprocs ~p in
      List.fold_left
        (fun acc summary ->
          List.fold_left
            (fun acc (e : Access.summary_entry) ->
              match List.assoc_opt e.Access.arr arrays with
              | None -> acc
              | Some info ->
                  let add acc = function
                    | None -> acc
                    | Some srsd ->
                        Range.union acc
                          (Section.ranges
                             (Section.make info
                                (Sym_rsd.eval binding srsd)))
                  in
                  add (add acc e.Access.reads) e.Access.writes)
            acc summary)
        Range.empty summaries)

let run ?(opts = Transform.all) ?cfg (prog : Ir.program) ~nprocs =
  let cfg =
    match cfg with
    | Some c -> Dsm_sim.Config.with_procs c nprocs
    | None -> Dsm_sim.Config.with_procs Dsm_sim.Config.default nprocs
  in
  let transformed, _ = Transform.transform prog ~nprocs ~opts in
  let sink = Dsm_trace.Sink.create ~nprocs () in
  let _sys, outcome = Interp.execute ~trace:sink cfg transformed in
  let static = static_ranges prog ~nprocs ~arrays:outcome.Interp.arrays in
  let page_owner page =
    let lo = page * cfg.Dsm_sim.Config.page_size in
    let hi = lo + cfg.Dsm_sim.Config.page_size in
    List.find_map
      (fun (name, info) ->
        if
          not
            (Range.is_empty
               (Range.inter
                  (Section.ranges (Section.whole info))
                  (Range.of_interval lo hi)))
        then Some name
        else None)
      outcome.Interp.arrays
  in
  let accesses = Dsm_trace.Replay.accesses (Dsm_trace.Sink.events sink) in
  let report =
    check ~program:prog.Ir.pname
      ~page_size:cfg.Dsm_sim.Config.page_size ~nprocs ~static ~page_owner
      accesses
  in
  { report with dropped = Dsm_trace.Sink.dropped sink }

module Range = Dsm_rsd.Range
module Section = Dsm_rsd.Section
open Dsm_compiler

type proc_stat = {
  static_pages : int;
  dynamic_pages : int;
  covered_pages : int;
  dropped : int;
}

type report = {
  nprocs : int;
  per_proc : proc_stat array;
  dropped : int;
  diags : Diag.t list;
}

let check ~program ~page_size ~nprocs ~static ?page_owner accesses =
  let page_owner = Option.value ~default:(fun _ -> None) page_owner in
  let dynamic = Array.make nprocs [] in
  let diags = ref [] in
  let reported = Hashtbl.create 16 in
  List.iter
    (fun (a : Dsm_trace.Replay.access) ->
      if a.Dsm_trace.Replay.proc >= 0 && a.Dsm_trace.Replay.proc < nprocs
      then begin
        let p = a.Dsm_trace.Replay.proc
        and page = a.Dsm_trace.Replay.page in
        dynamic.(p) <- page :: dynamic.(p);
        let interval =
          Range.of_interval (page * page_size) ((page + 1) * page_size)
        in
        if
          Range.is_empty (Range.inter static.(p) interval)
          && not (Hashtbl.mem reported (p, page))
        then begin
          Hashtbl.add reported (p, page) ();
          diags :=
            Diag.make Diag.Error ~program
              (Diag.Uncovered_access
                 {
                   p;
                   page;
                   epoch = a.Dsm_trace.Replay.epoch;
                   write = a.Dsm_trace.Replay.write;
                   array = page_owner page;
                 })
            :: !diags
        end
      end)
    accesses;
  let per_proc =
    Array.init nprocs (fun p ->
        let dyn = List.sort_uniq compare dynamic.(p) in
        {
          static_pages = List.length (Range.pages ~page_size static.(p));
          dynamic_pages = List.length dyn;
          covered_pages =
            List.length
              (List.filter
                 (fun page ->
                   not
                     (Range.is_empty
                        (Range.inter static.(p)
                           (Range.of_interval (page * page_size)
                              ((page + 1) * page_size)))))
                 dyn);
          dropped = 0;
        })
  in
  { nprocs; per_proc; dropped = 0; diags = List.rev !diags }

let static_ranges (prog : Ir.program) ~nprocs ~arrays =
  let summaries =
    let res = Access.analyze prog ~nprocs in
    match res.Access.regions with
    | [] -> [ Access.body_summary prog ~nprocs ]
    | regions ->
        (* Regions cover only the code between syncs; the body summary
           adds the leading/trailing statements of linear programs. *)
        let all =
          List.map (fun (r : Access.region) -> r.Access.summary) regions
        in
        if res.Access.cyclic then all
        else Access.body_summary prog ~nprocs :: all
  in
  Array.init nprocs (fun p ->
      let binding = Conc.binding prog ~nprocs ~p in
      List.fold_left
        (fun acc summary ->
          List.fold_left
            (fun acc (e : Access.summary_entry) ->
              match List.assoc_opt e.Access.arr arrays with
              | None -> acc
              | Some info ->
                  let add acc = function
                    | None -> acc
                    | Some srsd ->
                        Range.union acc
                          (Section.ranges
                             (Section.make info
                                (Sym_rsd.eval binding srsd)))
                  in
                  add (add acc e.Access.reads) e.Access.writes)
            acc summary)
        Range.empty summaries)

let run ?(opts = Transform.all) ?cfg (prog : Ir.program) ~nprocs =
  let cfg =
    match cfg with
    | Some c -> Dsm_sim.Config.with_procs c nprocs
    | None -> Dsm_sim.Config.with_procs Dsm_sim.Config.default nprocs
  in
  let transformed, _ = Transform.transform prog ~nprocs ~opts in
  let sink = Dsm_trace.Sink.create ~nprocs () in
  let _sys, outcome = Interp.execute ~trace:sink cfg transformed in
  let static = static_ranges prog ~nprocs ~arrays:outcome.Interp.arrays in
  let page_owner page =
    let lo = page * cfg.Dsm_sim.Config.page_size in
    let hi = lo + cfg.Dsm_sim.Config.page_size in
    List.find_map
      (fun (name, info) ->
        if
          not
            (Range.is_empty
               (Range.inter
                  (Section.ranges (Section.whole info))
                  (Range.of_interval lo hi)))
        then Some name
        else None)
      outcome.Interp.arrays
  in
  let accesses = Dsm_trace.Replay.accesses (Dsm_trace.Sink.events sink) in
  let report =
    check ~program:prog.Ir.pname
      ~page_size:cfg.Dsm_sim.Config.page_size ~nprocs ~static ~page_owner
      accesses
  in
  let per_proc =
    Array.mapi
      (fun p (st : proc_stat) ->
        { st with dropped = Dsm_trace.Sink.dropped_of sink p })
      report.per_proc
  in
  { report with per_proc; dropped = Dsm_trace.Sink.dropped sink }

(* {1 Static protocol-plan grading} *)

module Plan = Dsm_tmk.Proto_plan

type misprediction = {
  mp_page : int;
  mp_array : string;
  mp_expected : string * int;
  mp_got : (string * int) option;
  mp_switched : bool;
}

type class_stat = {
  cs_proto : string;
  cs_confidence : Plan.confidence;
  cs_pages : int;
  cs_agreed : int;
}

type grading = {
  exact_pages : int;
  exact_agreed : int;
  inexact_pages : int;
  inexact_agreed : int;
  by_class : class_stat list;
  mispredictions : misprediction list;  (** exact-confidence pages only *)
}

let grade ~(plan : Plan.t) ~classes ~events =
  let dyn = Hashtbl.create 64 in
  List.iter (fun (page, proto, owner) -> Hashtbl.replace dyn page (proto, owner)) classes;
  let switches = Hashtbl.create 16 in
  List.iter
    (fun (ev : Dsm_trace.Event.t) ->
      match ev.Dsm_trace.Event.kind with
      | Dsm_trace.Event.Proto_switch { page; proto; owner; _ } ->
          Hashtbl.replace switches page
            ((proto, owner)
            :: Option.value ~default:[] (Hashtbl.find_opt switches page))
      | _ -> ())
    events;
  let stats = Hashtbl.create 8 in
  let mis = ref [] in
  let ex = ref 0 and exa = ref 0 and inx = ref 0 and inxa = ref 0 in
  List.iter
    (fun (d : Plan.directive) ->
      let pname = Plan.proto_name d.Plan.proto in
      let expected = (pname, d.Plan.owner) in
      for page = d.Plan.lo_page to d.Plan.hi_page do
        let got = Hashtbl.find_opt dyn page in
        let agree =
          match got with
          | Some (proto, owner) ->
              proto = pname && (pname = "lrc" || owner = d.Plan.owner)
          | None ->
              (* absent from the adaptive table means the page stayed
                 under the homeless-LRC default *)
              pname = "lrc"
        in
        let switched =
          d.Plan.confidence = Plan.Exact
          && List.exists
               (fun (proto, owner) ->
                 not (proto = pname && (pname = "lrc" || owner = d.Plan.owner)))
               (Option.value ~default:[] (Hashtbl.find_opt switches page))
        in
        let key = (pname, d.Plan.confidence) in
        let pages, agreed =
          Option.value ~default:(0, 0) (Hashtbl.find_opt stats key)
        in
        Hashtbl.replace stats key (pages + 1, agreed + if agree then 1 else 0);
        (match d.Plan.confidence with
        | Plan.Exact ->
            incr ex;
            if agree then incr exa
        | Plan.Inexact ->
            incr inx;
            if agree then incr inxa);
        if d.Plan.confidence = Plan.Exact && ((not agree) || switched) then
          mis :=
            {
              mp_page = page;
              mp_array = d.Plan.array;
              mp_expected = expected;
              mp_got = got;
              mp_switched = switched;
            }
            :: !mis
      done)
    plan.Plan.directives;
  let by_class =
    List.sort compare
      (Hashtbl.fold
         (fun (proto, conf) (pages, agreed) acc ->
           {
             cs_proto = proto;
             cs_confidence = conf;
             cs_pages = pages;
             cs_agreed = agreed;
           }
           :: acc)
         stats [])
  in
  {
    exact_pages = !ex;
    exact_agreed = !exa;
    inexact_pages = !inx;
    inexact_agreed = !inxa;
    by_class;
    mispredictions = List.rev !mis;
  }

(** Static cross-processor data-race detection.

    LRC is only correct for data-race-free programs (Section 2 of the
    paper): two accesses to the same location by different processors,
    at least one a write, must be ordered by synchronization. The
    detector instantiates each region's symbolic access summaries
    ({!Dsm_compiler.Access.analyze}) under every processor's bindings
    and intersects the resulting byte ranges pairwise.

    Regions are grouped into {e barrier epochs}: consecutive regions
    separated only by lock operations run concurrently, so conflicts are
    checked both inside one region and across the regions of an epoch.
    Two accesses both inside critical sections of the same lock are
    ordered by it and exempt. A [Push] statement is treated as the
    barrier it replaced — legal only on programs whose pushes the
    {!Verify} pass accepts, which proves no conflicting access crosses
    that point outside the pushed data.

    Overlaps involving an inexact summary (conditionals, coupled
    subscripts) are reported at {!Diag.severity.Warning} — the sections
    are over-approximations, so the race is possible but not proved.
    Exact overlaps are {!Diag.severity.Error}s. *)

val check : Dsm_compiler.Ir.program -> nprocs:int -> Diag.t list

(** {1 Epoch structure} (shared with the sharing-pattern classifier) *)

val protect :
  (int * Dsm_compiler.Ir.stmt) list ->
  Dsm_compiler.Access.region ->
  int option
(** The lock whose critical section contains the region, if any
    ([syncs] is {!Dsm_compiler.Access.index_syncs} output). *)

val opens_epoch :
  (int * Dsm_compiler.Ir.stmt) list -> Dsm_compiler.Access.region -> bool
(** Whether the region starts a new barrier epoch (it was opened by a
    barrier, or by the Push that replaced one). *)

val epochs :
  (int * Dsm_compiler.Ir.stmt) list ->
  Dsm_compiler.Access.result ->
  Dsm_compiler.Access.region list list
(** Regions grouped into barrier epochs, in program order. For cyclic
    (steady-state) programs the leading lock-opened regions are folded
    into the last epoch — they are the tail of the previous iteration's
    final epoch. *)

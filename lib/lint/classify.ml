(* Static sharing-pattern classification (the compile-time half of the
   adaptive backend's online classifier).

   The input is a {e model}: an IR program whose steady-state loop
   reproduces, epoch by epoch, the shared-array accesses of one of the
   shipped applications, plus the concrete allocation list. The analysis
   instantiates every barrier epoch's access summaries under each
   processor's bindings, accumulates per-page reader/writer processor
   sets, and runs the exact decision rule of
   {!Dsm_tmk.Adaptive.reclassify} over every classification window the
   online backend could observe. A page whose decision is the same in
   every window (and whose contributing summaries are all exact) gets an
   [Exact] directive: seeding it is guaranteed to agree with what the
   online classifier would eventually decide, so the warm-up switches
   are pure savings. Everything else is emitted [Inexact], with the
   whole-cycle union decision as a hint that the run-time may ignore. *)

module Ir = Dsm_compiler.Ir
module Access = Dsm_compiler.Access
module Conc = Dsm_compiler.Conc
module Section = Dsm_rsd.Section
module Range = Dsm_rsd.Range
module Pset = Dsm_util.Pset
module Plan = Dsm_tmk.Proto_plan

(* {1 Models} *)

type model = {
  prog : Ir.program;
      (* steady-state model: a cyclic program whose barrier epochs carry
         the application's per-epoch access summaries. The loop body must
         start with a barrier so the epoch list comes out in execution
         order (the first-window check below depends on it). *)
  init : Ir.program option;
      (* the accesses before the first barrier (initialization), as a
         separate linear program summarized whole; [None] when the
         application performs no shared writes before its first barrier *)
  arrays : (string * int list) list;
      (* allocation order and extents, exactly as the application calls
         {!Dsm_tmk.Tmk.Alloc.array}: the layout replica below depends on it *)
  page_size : int;  (* the page size the application's run will use *)
}

(* Replica of the bump allocator ({!Dsm_mem.Addr_space.alloc}): 8-byte
   aligned, allocation order. This is what makes the plan's absolute page
   numbers meaningful at run time. *)
let layout arrays =
  let align_up x a = (x + a - 1) / a * a in
  let brk = ref 0 in
  List.map
    (fun (name, dims) ->
      let base = align_up !brk 8 in
      let bytes = 8 * List.fold_left ( * ) 1 dims in
      brk := base + bytes;
      {
        Section.name;
        base;
        elem_size = 8;
        extents = Array.of_list dims;
      })
    arrays

(* {1 Per-epoch page populations} *)

type acc = {
  mutable readers : Pset.t;
  mutable writers : Pset.t;
  mutable exact : bool;  (* every contributing summary was exact *)
}

let empty_acc () = { readers = Pset.empty; writers = Pset.empty; exact = true }

let union_acc a b =
  {
    readers = Pset.union a.readers b.readers;
    writers = Pset.union a.writers b.writers;
    exact = a.exact && b.exact;
  }

(* The decision rule, kept literally in step with
   {!Dsm_tmk.Adaptive.reclassify}: no writers — no decision; a single
   writer that is also the only user — invalidate owned by it; a single
   writer with other readers — home-based LRC homed at the writer;
   several writers — homeless LRC. *)
let taxonomy a =
  let users = Pset.union a.readers a.writers in
  let nw = Pset.cardinal a.writers in
  if nw = 0 then None
  else if nw = 1 && Pset.equal users a.writers then
    Some (Plan.Inval, Pset.min_elt a.writers)
  else if nw = 1 then Some (Plan.Hlrc, Pset.min_elt a.writers)
  else Some (Plan.Lrc, -1)

let decision_equal a b =
  match (a, b) with
  | Some (p, o), Some (p', o') -> p = p' && o = o'
  | None, None -> true
  | _ -> false

(* {1 The per-page rule}

   [epochs] is one page's reader/writer populations over one steady
   cycle, in execution order; [init] the populations of the code before
   the first barrier. The online classifier decides every [window]
   barrier epochs, and the alignment of its windows against the cycle is
   an accident of the cycle length — so a prediction is only safe when
   {e every} cyclic window of [window] consecutive epochs yields the same
   decision (windows with no writer yield no decision and never switch),
   and the first window (init accesses plus the leading epochs) agrees
   too. *)
let classify_page ~window ~init epochs =
  let ne = Array.length epochs in
  let win o =
    let a = ref (empty_acc ()) in
    for k = 0 to window - 1 do
      a := union_acc !a epochs.((o + k) mod ne)
    done;
    !a
  in
  let steady =
    if ne = 0 then []
    else List.filter_map (fun o -> taxonomy (win o)) (List.init ne Fun.id)
  in
  let init_acc = match init with Some a -> a | None -> empty_acc () in
  let first_window =
    (* what the online classifier sees before its first decision: the
       init accesses plus the first [window - 1] steady epochs *)
    let a = ref init_acc in
    for k = 0 to min (window - 1) ne - 1 do
      a := union_acc !a epochs.(k)
    done;
    !a
  in
  let first_dec = taxonomy first_window in
  let all_exact =
    init_acc.exact && Array.for_all (fun a -> a.exact) epochs
  in
  let whole =
    Array.fold_left union_acc init_acc epochs
  in
  match steady with
  | [] ->
      (* never written in steady state: the first window's decision (if
         any) is final — nothing ever reverts it *)
      let conf = if all_exact then Plan.Exact else Plan.Inexact in
      let reason = if all_exact then "init-only" else "inexact-summary" in
      (first_dec, conf, reason)
  | d :: rest ->
      let stable = List.for_all (decision_equal (Some d)) (List.map Option.some rest) in
      let first_ok = first_dec = None || decision_equal first_dec (Some d) in
      (* The run's last window is truncated wherever the program stops
         (a trailing write-only phase is typical), so every contiguous
         sub-window shorter than [window] must also be unable to revert
         the decision: it must yield nothing or the same answer. *)
      let edges_ok =
        List.for_all
          (fun o ->
            List.for_all
              (fun len ->
                let a = ref (empty_acc ()) in
                for k = 0 to len - 1 do
                  a := union_acc !a epochs.((o + k) mod ne)
                done;
                match taxonomy !a with
                | None -> true
                | dec -> decision_equal dec (Some d))
              (List.init (min (window - 1) ne) (fun i -> i + 1)))
          (List.init ne Fun.id)
      in
      if not all_exact then (Some d, Plan.Inexact, "inexact-summary")
      else if stable && first_ok && edges_ok then (Some d, Plan.Exact, "steady")
      else if stable && first_ok then (Some d, Plan.Inexact, "run-edge")
      else (taxonomy whole, Plan.Inexact, "mixed-windows")

(* {1 Cost model}

   Estimated protocol messages per steady epoch for each candidate,
   counting request/response pairs: under homeless LRC every non-writing
   reader fetches one diff per writer; under home-based LRC every
   non-home writer flushes and every non-home non-writer reader fetches
   a page; under invalidate, ownership moves when the writer is not the
   previous owner and every reader outside the writer set re-fetches. *)
let costs ~init epochs =
  let eps =
    if Array.length epochs > 0 then epochs
    else [| (match init with Some a -> a | None -> empty_acc ()) |]
  in
  let card_minus s t =
    List.length (List.filter (fun p -> not (Pset.mem p t)) (Pset.to_list s))
  in
  let home =
    match taxonomy (Array.fold_left union_acc (empty_acc ()) eps) with
    | Some (_, o) when o >= 0 -> o
    | _ -> 0
  in
  let lrc = ref 0.0 and hlrc = ref 0.0 and inval = ref 0.0 in
  let prev = ref (match init with
    | Some a when Pset.cardinal a.writers = 1 -> Pset.min_elt a.writers
    | _ -> -1)
  in
  Array.iter
    (fun e ->
      let nw = Pset.cardinal e.writers in
      let outside_readers = card_minus e.readers e.writers in
      lrc := !lrc +. float_of_int (2 * nw * outside_readers);
      let home_set = Pset.singleton home in
      hlrc :=
        !hlrc
        +. float_of_int
             (2 * card_minus e.writers home_set
             + 2 * card_minus e.readers (Pset.union home_set e.writers));
      let w_moves =
        if nw = 0 then 0
        else
          card_minus e.writers
            (if !prev >= 0 then Pset.singleton !prev else Pset.empty)
      in
      inval := !inval +. float_of_int (2 * w_moves + 2 * outside_readers);
      if nw = 1 then prev := Pset.min_elt e.writers)
    eps;
  let n = float_of_int (Array.length eps) in
  let per x = Float.round (x /. n *. 100.0) /. 100.0 in
  (per !lrc, per !hlrc, per !inval)

(* {1 Driving the access analysis} *)

type page_class = {
  page : int;
  array : string;
  decision : (Plan.proto * int) option;
  confidence : Plan.confidence;
  reason : string;
  est_lrc : float;
  est_hlrc : float;
  est_inval : float;
}

(* Accumulate one region summary entry, instantiated for processor [p],
   into the epoch's page table. *)
let accumulate tbl prog ~nprocs ~page_size infos ~p (en : Access.summary_entry)
    =
  match List.assoc_opt en.Access.arr infos with
  | None -> ()
  | Some info ->
      let touch ~write (rsd : Dsm_compiler.Sym_rsd.t) =
        let sec = Conc.section ~info prog ~nprocs ~p en.Access.arr rsd in
        let pages = Range.pages ~page_size (Section.ranges sec) in
        List.iter
          (fun g ->
            let a =
              match Hashtbl.find_opt tbl g with
              | Some a -> a
              | None ->
                  let a = empty_acc () in
                  Hashtbl.replace tbl g a;
                  a
            in
            if write then a.writers <- Pset.add p a.writers
            else a.readers <- Pset.add p a.readers;
            if not rsd.Dsm_compiler.Sym_rsd.exact then a.exact <- false)
          pages
      in
      let reads =
        match en.Access.reads with
        | Some r -> Some r
        | None -> if en.Access.tag.Access.read then Some en.Access.rsd else None
      and writes =
        match en.Access.writes with
        | Some w -> Some w
        | None -> if en.Access.tag.Access.write then Some en.Access.rsd else None
      in
      Option.iter (touch ~write:false) reads;
      Option.iter (touch ~write:true) writes

let classify ?(window = Dsm_sim.Config.default.Dsm_sim.Config.adapt_window)
    ~nprocs (m : model) : page_class list =
  let window = max 1 window in
  let page_size = m.page_size in
  let infos_l = layout m.arrays in
  let infos = List.map (fun i -> (i.Section.name, i)) infos_l in
  let res = Access.analyze m.prog ~nprocs in
  let syncs = Access.index_syncs m.prog in
  let epoch_regions = Race.epochs syncs res in
  let ne = List.length epoch_regions in
  let tbls = Array.init (max ne 1) (fun _ -> Hashtbl.create 256) in
  List.iteri
    (fun ei regions ->
      List.iter
        (fun (r : Access.region) ->
          for p = 0 to nprocs - 1 do
            List.iter
              (accumulate tbls.(ei) m.prog ~nprocs ~page_size infos ~p)
              r.Access.summary
          done)
        regions)
    epoch_regions;
  let init_tbl = Hashtbl.create 256 in
  (match m.init with
  | None -> ()
  | Some ip ->
      let summary = Access.body_summary ip ~nprocs in
      for p = 0 to nprocs - 1 do
        List.iter (accumulate init_tbl ip ~nprocs ~page_size infos ~p) summary
      done);
  let pages = Hashtbl.create 1024 in
  Array.iter (Hashtbl.iter (fun g _ -> Hashtbl.replace pages g ())) tbls;
  Hashtbl.iter (fun g _ -> Hashtbl.replace pages g ()) init_tbl;
  let array_of_page g =
    let lo = g * page_size and hi = ((g + 1) * page_size) - 1 in
    let covers i =
      let bytes = 8 * Array.fold_left ( * ) 1 i.Section.extents in
      i.Section.base <= hi && i.Section.base + bytes - 1 >= lo
    in
    match List.find_opt covers infos_l with
    | Some i -> i.Section.name
    | None -> "?"
  in
  Hashtbl.fold (fun g () l -> g :: l) pages []
  |> List.sort compare
  |> List.map (fun g ->
         let epochs =
           Array.init ne (fun ei ->
               match Hashtbl.find_opt tbls.(ei) g with
               | Some a -> a
               | None -> empty_acc ())
         in
         let init =
           if m.init = None then None
           else
             Some
               (match Hashtbl.find_opt init_tbl g with
               | Some a -> a
               | None -> empty_acc ())
         in
         let decision, confidence, reason =
           classify_page ~window ~init epochs
         in
         let est_lrc, est_hlrc, est_inval = costs ~init epochs in
         {
           page = g;
           array = array_of_page g;
           decision;
           confidence;
           reason;
           est_lrc;
           est_hlrc;
           est_inval;
         })

(* {1 Plan emission} *)

(* Coalesce adjacent same-decision pages of one array into directives;
   the per-page cost estimates are averaged over the run. *)
let plan ?window ~program ~level ~nprocs (m : model) : Plan.t =
  let classes = classify ?window ~nprocs m in
  let directive_of run =
    match run with
    | [] -> None
    | first :: _ -> (
        match first.decision with
        | None -> None
        | Some (proto, owner) ->
            let n = float_of_int (List.length run) in
            let avg f =
              Float.round (List.fold_left (fun s c -> s +. f c) 0.0 run /. n *. 100.0)
              /. 100.0
            in
            Some
              {
                Plan.array = first.array;
                lo_page = first.page;
                hi_page = (List.nth run (List.length run - 1)).page;
                proto;
                owner;
                confidence = first.confidence;
                reason = first.reason;
                est_lrc = avg (fun c -> c.est_lrc);
                est_hlrc = avg (fun c -> c.est_hlrc);
                est_inval = avg (fun c -> c.est_inval);
              })
  in
  let same a b =
    a.array = b.array && a.decision = b.decision
    && a.confidence = b.confidence && a.reason = b.reason
  in
  let rec runs acc cur = function
    | [] -> List.rev (List.rev cur :: acc)
    | c :: rest -> (
        match cur with
        | prev :: _ when same prev c && c.page = prev.page + 1 ->
            runs acc (c :: cur) rest
        | [] -> runs acc [ c ] rest
        | _ -> runs (List.rev cur :: acc) [ c ] rest)
  in
  let directives =
    match classes with
    | [] -> []
    | _ -> List.filter_map directive_of (runs [] [] classes)
  in
  let t =
    {
      Plan.program;
      nprocs;
      page_size = m.page_size;
      level;
      directives;
    }
  in
  match Plan.validate t with
  | Ok t -> t
  | Error e -> invalid_arg ("Classify.plan produced an invalid plan: " ^ e)

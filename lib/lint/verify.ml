module Range = Dsm_rsd.Range
open Dsm_compiler

type att = {
  mutable after : Ir.vcall list;  (* Validate following sync k *)
  mutable before : Ir.vcall list;  (* Validate_w_sync merged into sync k *)
  mutable push : Ir.push_call option;
}

type walk = {
  atts : att array;
  mutable last : int;  (* index of the last sync seen, -1 before any *)
  mutable next : int;  (* next sync index to assign *)
  mutable head : Ir.vcall list;  (* Validates before the first sync *)
  mutable pending : Ir.vcall list;  (* Validate_w_sync awaiting a sync *)
  mutable kinds : (int * Ir.stmt) list;  (* sync index -> statement *)
}

let rec walk_stmts w stmts = List.iter (walk_stmt w) stmts

and walk_stmt w = function
  | Ir.For l -> walk_stmts w l.Ir.body
  | Ir.If_lt (_, _, t, e) ->
      walk_stmts w t;
      walk_stmts w e
  | Ir.Validate vc ->
      if w.last < 0 then w.head <- vc :: w.head
      else if w.last < Array.length w.atts then
        w.atts.(w.last).after <- vc :: w.atts.(w.last).after
  | Ir.Validate_w_sync vc -> w.pending <- vc :: w.pending
  | (Ir.Barrier _ | Ir.Lock_acquire _ | Ir.Lock_release _ | Ir.Push _) as s
    ->
      let k = w.next in
      w.next <- k + 1;
      w.last <- k;
      w.kinds <- (k, s) :: w.kinds;
      if k < Array.length w.atts then begin
        w.atts.(k).before <- List.rev_append w.pending w.atts.(k).before;
        w.pending <- [];
        match s with Ir.Push pc -> w.atts.(k).push <- Some pc | _ -> ()
      end
  | Ir.Assign _ | Ir.Set_scalar _ -> ()

let rec active stmts =
  List.exists
    (function
      | Ir.Validate _ | Ir.Validate_w_sync _ | Ir.Push _ -> true
      | Ir.For l -> active l.Ir.body
      | Ir.If_lt (_, _, t, e) -> active t || active e
      | _ -> false)
    stmts

let ranges_of prog ~nprocs ~p arr = function
  | None -> Range.empty
  | Some s -> Conc.ranges prog ~nprocs ~p arr s

let inexact_of = function None -> false | Some s -> not s.Sym_rsd.exact

(* Sections named for [arr] across a list of validate calls, instantiated
   for processor [p]. *)
let vcall_ranges prog ~nprocs ~p arr vcalls =
  List.fold_left
    (fun acc (vc : Ir.vcall) ->
      List.fold_left
        (fun acc (a, srsd) ->
          if a = arr then Range.union acc (Conc.ranges prog ~nprocs ~p a srsd)
          else acc)
        acc vc.Ir.vsections)
    Range.empty vcalls

(* Data pushed to processor [p] for [arr]: what any other processor
   declares written, intersected with what [p] declares read. *)
let pushed_to prog ~nprocs ~p arr (pc : Ir.push_call) =
  let read_p =
    List.fold_left
      (fun acc (a, srsd) ->
        if a = arr then Range.union acc (Conc.ranges prog ~nprocs ~p a srsd)
        else acc)
      Range.empty pc.Ir.pread
  in
  if Range.is_empty read_p then Range.empty
  else
    List.fold_left
      (fun acc (a, srsd) ->
        if a <> arr then acc
        else
          List.fold_left
            (fun acc q ->
              if q = p then acc
              else
                Range.union acc
                  (Range.inter read_p (Conc.ranges prog ~nprocs ~p:q a srsd)))
            acc
            (List.init nprocs (fun q -> q)))
      Range.empty pc.Ir.pwrite

let diag sev ~program kind = Diag.make sev ~program kind

let run ~orig ~transformed ~nprocs =
  let program = orig.Ir.pname in
  let err = diag Diag.Error ~program in
  let warn = diag Diag.Warning ~program in
  let orig_syncs = Access.index_syncs orig in
  let nsync = List.length orig_syncs in
  if not (active transformed.Ir.body) then []
  else if nsync = 0 then
    [
      warn
        (Diag.Structure
           {
             reason =
               "consistency annotations in a program without \
                synchronization";
           });
    ]
  else begin
    let w =
      {
        atts =
          Array.init nsync (fun _ ->
              { after = []; before = []; push = None });
        last = -1;
        next = 0;
        head = [];
        pending = [];
        kinds = [];
      }
    in
    walk_stmts w transformed.Ir.body;
    if w.next <> nsync then
      [
        err
          (Diag.Structure
             {
               reason =
                 Printf.sprintf
                   "transformed program has %d synchronization \
                    statements, original has %d"
                   w.next nsync;
             });
      ]
    else begin
      let mismatch =
        List.filter_map
          (fun (k, s) ->
            match (List.assoc_opt k w.kinds, s) with
            | Some t, o when t = o -> None
            | Some (Ir.Push _), Ir.Barrier _ -> None
            | _ ->
                Some
                  (err
                     (Diag.Structure
                        {
                          reason =
                            Printf.sprintf
                              "sync #%d changed kind (only Barrier -> \
                               Push is legal)"
                              k;
                        })))
          orig_syncs
      in
      if mismatch <> [] then mismatch
      else begin
        (* Every annotation must name a shared array of the original
           program; Conc instantiation is undefined otherwise. *)
        let unknown = ref [] in
        let check_names l =
          List.iter
            (fun (a, _) ->
              if
                (not (List.mem_assoc a orig.Ir.arrays))
                && not (List.mem a !unknown)
              then unknown := a :: !unknown)
            l
        in
        Array.iter
          (fun a ->
            List.iter
              (fun (vc : Ir.vcall) -> check_names vc.Ir.vsections)
              (a.after @ a.before);
            match a.push with
            | None -> ()
            | Some pc ->
                check_names pc.Ir.pread;
                check_names pc.Ir.pwrite)
          w.atts;
        if !unknown <> [] then
          List.map
            (fun a ->
              err
                (Diag.Structure
                   {
                     reason =
                       Printf.sprintf
                         "annotation names unknown shared array %s" a;
                   }))
            !unknown
        else begin
        let res = Access.analyze orig ~nprocs in
        let diags = ref [] in
        let emit d = diags := d :: !diags in
        (* Head validates in a steady-state program belong to the
           wrap-around region after the last sync; a pending
           Validate_w_sync wraps to the first sync. In a linear program
           both are structural mistakes. *)
        if w.head <> [] then begin
          if res.Access.cyclic then
            w.atts.(nsync - 1).after <-
              List.rev_append w.head w.atts.(nsync - 1).after
          else
            emit
              (warn
                 (Diag.Structure
                    {
                      reason =
                        "Validate before the first synchronization \
                         statement";
                    }))
        end;
        if w.pending <> [] then begin
          if res.Access.cyclic then
            w.atts.(0).before <-
              List.rev_append w.pending w.atts.(0).before
          else
            emit
              (warn
                 (Diag.Structure
                    {
                      reason =
                        "Validate_w_sync not followed by a \
                         synchronization statement";
                    }))
        end;
        let procs = List.init nprocs (fun p -> p) in
        let rng = ranges_of orig ~nprocs in
        (* V1: completeness. For each region, everything a processor
           can fetch (its accesses that another processor wrote in the
           preceding or current region) must be covered at the opening
           sync. *)
        List.iter
          (fun (r : Access.region) ->
            let k = r.Access.after_sync in
            let prev = Access.find_region_before res k in
            let a = w.atts.(k) in
            List.iter
              (fun (e : Access.summary_entry) ->
                let arr = e.Access.arr in
                let prev_entry =
                  match prev with
                  | None -> None
                  | Some pr -> Access.entry pr arr
                in
                List.iter
                  (fun p ->
                    let access_p =
                      Range.union
                        (rng ~p arr e.Access.reads)
                        (rng ~p arr e.Access.writes)
                    in
                    let others =
                      List.fold_left
                        (fun acc q ->
                          if q = p then acc
                          else
                            let acc =
                              Range.union acc (rng ~p:q arr e.Access.writes)
                            in
                            match prev_entry with
                            | None -> acc
                            | Some pe ->
                                Range.union acc
                                  (rng ~p:q arr pe.Access.writes))
                        Range.empty procs
                    in
                    let fetchable = Range.inter access_p others in
                    if not (Range.is_empty fetchable) then begin
                      let covered =
                        Range.union
                          (vcall_ranges orig ~nprocs ~p arr
                             (a.after @ a.before))
                          (match a.push with
                          | None -> Range.empty
                          | Some pc -> pushed_to orig ~nprocs ~p arr pc)
                      in
                      let uncovered = Range.diff fetchable covered in
                      if not (Range.is_empty uncovered) then begin
                        let inexact =
                          inexact_of e.Access.reads
                          || inexact_of e.Access.writes
                          ||
                          match prev_entry with
                          | None -> false
                          | Some pe -> inexact_of pe.Access.writes
                        in
                        emit
                          (diag
                             (if inexact then Diag.Warning else Diag.Error)
                             ~program
                             (Diag.Missing_validate
                                {
                                  array = arr;
                                  region = (k, r.Access.before_sync);
                                  p;
                                  uncovered;
                                }))
                      end
                    end)
                  procs)
              r.Access.summary)
          res.Access.regions;
        (* V2: the _ALL access types disable consistency on the pages
           they cover; each use must meet the paper's conditions. *)
        Array.iteri
          (fun k a ->
            List.iter
              (fun (vc : Ir.vcall) ->
                match vc.Ir.vaccess with
                | Dsm_tmk.Tmk.Write_all | Dsm_tmk.Tmk.Read_write_all ->
                    let bad arr reason =
                      emit
                        (err
                           (Diag.Bad_all_validate { sync = k; array = arr; reason }))
                    in
                    List.iter
                      (fun (arr, (srsd : Sym_rsd.t)) ->
                        if not srsd.Sym_rsd.exact then
                          bad arr "section is inexact"
                        else if not (Conc.contiguous orig ~nprocs arr srsd)
                        then
                          bad arr
                            "section is not contiguous for every processor"
                        else
                          match Access.find_region_after res k with
                          | None ->
                              bad arr "no region follows the sync"
                          | Some r -> (
                              match Access.entry r arr with
                              | None ->
                                  bad arr
                                    "the following region never accesses \
                                     the array"
                              | Some e ->
                                  if e.Access.writes = None then
                                    bad arr
                                      "the following region never writes \
                                       the array"
                                  else if inexact_of e.Access.writes then
                                    bad arr
                                      "the written section is inexact"
                                  else if
                                    List.exists
                                      (fun p ->
                                        not
                                          (Range.subset
                                             (Conc.ranges orig ~nprocs ~p
                                                arr srsd)
                                             (rng ~p arr e.Access.writes)))
                                      procs
                                  then
                                    bad arr
                                      "section is not entirely written in \
                                       the following region"
                                  else if
                                    vc.Ir.vaccess = Dsm_tmk.Tmk.Write_all
                                    && e.Access.tag.Access.read
                                    && not e.Access.tag.Access.write_first
                                  then
                                    bad arr
                                      "the following region has exposed \
                                       reads; WRITE_ALL would skip \
                                       fetching them"))
                      vc.Ir.vsections
                | _ -> ())
              (a.after @ a.before))
          w.atts;
        (* V3: push legality — no cross-processor anti or output
           dependence may cross the eliminated barrier. *)
        Array.iteri
          (fun k a ->
            match a.push with
            | None -> ()
            | Some pc -> (
                match
                  ( Access.find_region_before res k,
                    Access.find_region_after res k )
                with
                | None, _ | _, None ->
                    emit
                      (err
                         (Diag.Structure
                            {
                              reason =
                                Printf.sprintf
                                  "Push at sync #%d without a region on \
                                   both sides"
                                  k;
                            }))
                | Some before, Some after ->
                    let arrays =
                      List.sort_uniq compare
                        (List.map
                           (fun (e : Access.summary_entry) -> e.Access.arr)
                           (before.Access.summary @ after.Access.summary)
                        @ List.map fst pc.Ir.pwrite
                        @ List.map fst pc.Ir.pread)
                    in
                    List.iter
                      (fun arr ->
                        let eb = Access.entry before arr
                        and ea = Access.entry after arr in
                        let dep d sb sa =
                          match (sb, sa) with
                          | Some sb, Some sa -> (
                              match
                                Conc.cross_overlap_witness orig ~nprocs arr
                                  sb sa
                              with
                              | None -> ()
                              | Some (p, q, overlap) ->
                                  emit
                                    (err
                                       (Diag.Illegal_push
                                          {
                                            sync = k;
                                            array = arr;
                                            dep = d;
                                            p;
                                            q;
                                            overlap;
                                          })))
                          | _ -> ()
                        in
                        let reads_b =
                          Option.bind eb (fun e -> e.Access.reads)
                        and writes_b =
                          Option.bind eb (fun e -> e.Access.writes)
                        and writes_a =
                          Option.bind ea (fun e -> e.Access.writes)
                        in
                        dep `Anti reads_b writes_a;
                        dep `Output writes_b writes_a;
                        (* Declared write sections must be written. *)
                        List.iter
                          (fun (a', srsd) ->
                            if a' = arr then
                              List.iter
                                (fun p ->
                                  let declared =
                                    Conc.ranges orig ~nprocs ~p arr srsd
                                  in
                                  let written =
                                    match eb with
                                    | None -> Range.empty
                                    | Some e -> rng ~p arr e.Access.writes
                                  in
                                  let excess =
                                    Range.diff declared written
                                  in
                                  if not (Range.is_empty excess) then
                                    emit
                                      (warn
                                         (Diag.Push_unwritten
                                            {
                                              sync = k;
                                              array = arr;
                                              p;
                                              excess;
                                            })))
                                procs)
                          pc.Ir.pwrite;
                        (* Pushed data the receiver never reads. *)
                        List.iter
                          (fun (a', srsd_w) ->
                            if a' = arr then
                              List.iter
                                (fun q ->
                                  let pw =
                                    Conc.ranges orig ~nprocs ~p:q arr srsd_w
                                  in
                                  List.iter
                                    (fun p ->
                                      if p <> q then begin
                                        let pr =
                                          List.fold_left
                                            (fun acc (a'', srsd_r) ->
                                              if a'' = arr then
                                                Range.union acc
                                                  (Conc.ranges orig ~nprocs
                                                     ~p arr srsd_r)
                                              else acc)
                                            Range.empty pc.Ir.pread
                                        in
                                        let pushed = Range.inter pw pr in
                                        if not (Range.is_empty pushed) then begin
                                          let reads_after =
                                            match ea with
                                            | None -> Range.empty
                                            | Some e ->
                                                rng ~p arr e.Access.reads
                                          in
                                          let excess =
                                            Range.diff pushed reads_after
                                          in
                                          if not (Range.is_empty excess)
                                          then
                                            emit
                                              (warn
                                                 (Diag.Push_overreach
                                                    {
                                                      sync = k;
                                                      array = arr;
                                                      src = q;
                                                      dst = p;
                                                      excess;
                                                    }))
                                        end
                                      end)
                                    procs)
                                procs)
                          pc.Ir.pwrite)
                      arrays))
          w.atts;
        (* V5: hygiene — dead and duplicate validates. *)
        Array.iteri
          (fun k a ->
            let all = a.after @ a.before in
            List.iter
              (fun (vc : Ir.vcall) ->
                match vc.Ir.vaccess with
                | Dsm_tmk.Tmk.Read | Dsm_tmk.Tmk.Write
                | Dsm_tmk.Tmk.Read_write ->
                    List.iter
                      (fun (arr, srsd) ->
                        let dead =
                          match Access.find_region_after res k with
                          | None -> true
                          | Some r -> (
                              match Access.entry r arr with
                              | None -> true
                              | Some e ->
                                  List.for_all
                                    (fun p ->
                                      Range.is_empty
                                        (Range.inter
                                           (Conc.ranges orig ~nprocs ~p arr
                                              srsd)
                                           (Range.union
                                              (rng ~p arr e.Access.reads)
                                              (rng ~p arr e.Access.writes))))
                                    procs)
                        in
                        if dead then
                          emit
                            (warn (Diag.Dead_validate { sync = k; array = arr })))
                      vc.Ir.vsections
                | _ -> ())
              all;
            (* overlapping sections for one array validated twice at the
               same sync *)
            let sections =
              List.concat_map (fun (vc : Ir.vcall) -> vc.Ir.vsections) all
            in
            let rec dups = function
              | [] -> ()
              | (arr, s1) :: rest ->
                  List.iter
                    (fun (arr', s2) ->
                      if arr' = arr then begin
                        let overlap =
                          List.fold_left
                            (fun acc p ->
                              Range.union acc
                                (Range.inter
                                   (Conc.ranges orig ~nprocs ~p arr s1)
                                   (Conc.ranges orig ~nprocs ~p arr s2)))
                            Range.empty procs
                        in
                        if not (Range.is_empty overlap) then
                          emit
                            (warn
                               (Diag.Duplicate_validate
                                  { sync = k; array = arr; overlap }))
                      end)
                    rest;
                  dups rest
            in
            dups sections)
          w.atts;
        List.rev !diags
        end
      end
    end
  end

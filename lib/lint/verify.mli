(** Soundness verification of transformed programs.

    Given the original program and a transformed version (whether
    produced by {!Dsm_compiler.Transform} or by hand), checks that the
    inserted consistency annotations preserve the original semantics for
    a given processor count:

    - {b completeness} — every datum a processor can fetch in a region
      (data another processor wrote in the preceding or current region)
      is covered by a [Validate], a [Validate_w_sync] merged into the
      opening sync, or the data pushed to it ({!Diag.kind.Missing_validate});
    - {b consistency elimination} — every [WRITE_ALL] /
      [READ&WRITE_ALL] validate names an exact, per-processor
      contiguous section that the following region writes entirely,
      with no exposed reads under [WRITE_ALL]
      ({!Diag.kind.Bad_all_validate});
    - {b push legality} — a [Push] that replaced a barrier admits no
      cross-processor anti- or output-dependence across that point
      ({!Diag.kind.Illegal_push}), declares only data its processor
      actually writes beforehand ({!Diag.kind.Push_unwritten}), and
      pushes only data the receiver's next region reads
      ({!Diag.kind.Push_overreach});
    - {b hygiene} — validates of data the following region never
      touches, or overlapping validates at one sync, are flagged
      ({!Diag.kind.Dead_validate}, {!Diag.kind.Duplicate_validate}).

    Sync statements of the two programs are matched by pre-order index
    ([Push] counts as a sync, so a replaced barrier keeps its index); a
    count or kind mismatch aborts with a {!Diag.kind.Structure} error.
    A transformed program containing no annotation at all (level
    [base]) passes vacuously. *)

val run :
  orig:Dsm_compiler.Ir.program ->
  transformed:Dsm_compiler.Ir.program ->
  nprocs:int ->
  Diag.t list

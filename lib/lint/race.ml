module Range = Dsm_rsd.Range
open Dsm_compiler

let ranges_of prog ~nprocs ~p arr = function
  | None -> Range.empty
  | Some s -> Conc.ranges prog ~nprocs ~p arr s

let inexact_of = function None -> false | Some s -> not s.Sym_rsd.exact

let section_str prog ~nprocs ~p arr = function
  | None -> "<none>"
  | Some s ->
      Format.asprintf "%a" Dsm_rsd.Section.pp
        (Conc.section prog ~nprocs ~p arr s)

(* The lock, if any, whose critical section contains a region: the
   region was opened by its acquire. Accesses in two regions protected
   by the same lock are ordered by it and cannot race. *)
let protect syncs (r : Access.region) =
  match List.assoc_opt r.Access.after_sync syncs with
  | Some (Ir.Lock_acquire l) -> Some l
  | _ -> None

(* A region opened by a barrier (or by the Push that replaced one)
   starts a new epoch; lock-opened regions run concurrently with the
   rest of their epoch. *)
let opens_epoch syncs (r : Access.region) =
  match List.assoc_opt r.Access.after_sync syncs with
  | Some (Ir.Barrier _ | Ir.Push _) -> true
  | _ -> false

let epochs syncs (res : Access.result) =
  let groups =
    List.fold_left
      (fun acc r ->
        match acc with
        | cur :: rest when not (opens_epoch syncs r) -> (r :: cur) :: rest
        | _ -> [ r ] :: acc)
      [] res.Access.regions
  in
  let groups = List.rev_map List.rev groups in
  (* In the steady state the leading regions (not opened by a barrier)
     are the tail of the previous iteration's last epoch. *)
  match groups with
  | first :: (_ :: _ as rest)
    when res.Access.cyclic
         && not (opens_epoch syncs (List.hd first)) ->
      let rec append_last = function
        | [ last ] -> [ last @ first ]
        | g :: tl -> g :: append_last tl
        | [] -> assert false
      in
      append_last rest
  | _ -> groups

type ctx = {
  prog : Ir.program;
  nprocs : int;
  name : string;
  memo : (int * string * int * bool, Range.t) Hashtbl.t;
}

(* Concrete byte ranges of a region entry's reads or writes under one
   processor, memoized per (region, array, proc, is_write). *)
let entry_ranges ctx (r : Access.region) (e : Access.summary_entry) ~p
    ~write =
  let key = (r.Access.after_sync, e.Access.arr, p, write) in
  match Hashtbl.find_opt ctx.memo key with
  | Some v -> v
  | None ->
      let srsd = if write then e.Access.writes else e.Access.reads in
      let v =
        ranges_of ctx.prog ~nprocs:ctx.nprocs ~p e.Access.arr srsd
      in
      Hashtbl.add ctx.memo key v;
      v

let report ctx ~(r1 : Access.region) ~(e1 : Access.summary_entry) ~p
    ~p_write ~(r2 : Access.region) ~(e2 : Access.summary_entry) ~q acc =
  let w1 = entry_ranges ctx r1 e1 ~p ~write:p_write in
  let w2 = entry_ranges ctx r2 e2 ~p:q ~write:true in
  let overlap = Range.inter w1 w2 in
  if Range.is_empty overlap then acc
  else
    let s1 = if p_write then e1.Access.writes else e1.Access.reads in
    let s2 = e2.Access.writes in
    let inexact = inexact_of s1 || inexact_of s2 in
    let severity = if inexact then Diag.Warning else Diag.Error in
    Diag.make severity ~program:ctx.name
      (Diag.Race
         {
           array = e1.Access.arr;
           region = (r1.Access.after_sync, r1.Access.before_sync);
           race = (if p_write then Diag.Write_write else Diag.Read_write);
           p;
           q;
           p_section =
             section_str ctx.prog ~nprocs:ctx.nprocs ~p e1.Access.arr s1;
           q_section =
             section_str ctx.prog ~nprocs:ctx.nprocs ~p:q e1.Access.arr s2;
           overlap;
           inexact;
         })
    :: acc

(* Conflicts between the accesses of region [r1] under proc [p] and the
   accesses of region [r2] under proc [q] (p <> q). Checks p's writes
   against q's writes, and each side's reads against the other's
   writes. [ww] dedups the symmetric write/write pair when the caller
   enumerates both (p, q) and (q, p). *)
let check_pair ctx ~ww (r1 : Access.region) (r2 : Access.region) ~p ~q acc
    =
  List.fold_left
    (fun acc (e1 : Access.summary_entry) ->
      match Access.entry r2 e1.Access.arr with
      | None -> acc
      | Some e2 ->
          let acc =
            if ww && e1.Access.tag.Access.write && e2.Access.tag.Access.write
            then report ctx ~r1 ~e1 ~p ~p_write:true ~r2 ~e2 ~q acc
            else acc
          in
          if e1.Access.tag.Access.read && e2.Access.tag.Access.write then
            report ctx ~r1 ~e1 ~p ~p_write:false ~r2 ~e2 ~q acc
          else acc)
    acc r1.Access.summary

let check prog ~nprocs =
  let res = Access.analyze prog ~nprocs in
  let syncs = Access.index_syncs prog in
  let ctx =
    { prog; nprocs; name = prog.Ir.pname; memo = Hashtbl.create 64 }
  in
  let procs = List.init nprocs (fun p -> p) in
  let same_lock r1 r2 =
    match (protect syncs r1, protect syncs r2) with
    | Some l1, Some l2 -> l1 = l2
    | _ -> false
  in
  let acc =
    List.fold_left
      (fun acc epoch ->
        (* Within one region: distinct procs run the same code. *)
        let acc =
          List.fold_left
            (fun acc r ->
              if same_lock r r then acc
              else
                List.fold_left
                  (fun acc p ->
                    List.fold_left
                      (fun acc q ->
                        if q <= p then acc
                        else
                          let acc =
                            check_pair ctx ~ww:true r r ~p ~q acc
                          in
                          (* reads of q vs writes of p *)
                          check_pair ctx ~ww:false r r ~p:q ~q:p acc)
                      acc procs)
                  acc procs)
            acc epoch
        in
        (* Across distinct regions of the same epoch (lock-separated
           regions run concurrently). *)
        let rec pairs acc = function
          | [] -> acc
          | r1 :: rest ->
              let acc =
                List.fold_left
                  (fun acc r2 ->
                    if same_lock r1 r2 then acc
                    else
                      List.fold_left
                        (fun acc p ->
                          List.fold_left
                            (fun acc q ->
                              if q = p then acc
                              else check_pair ctx ~ww:true r1 r2 ~p ~q acc)
                            acc procs)
                        acc procs)
                  acc rest
              in
              pairs acc rest
        in
        pairs acc epoch)
      []
      (epochs syncs res)
  in
  List.rev acc

(** Structured diagnostics of the [dsm_lint] static analyses.

    Every finding carries the program it concerns, a severity, and a
    typed payload naming the array, the synchronization region (by the
    traversal indices of its opening and closing sync statements, as in
    {!Dsm_compiler.Access}), the processors involved and the offending
    ranges. Ranges are reported twice: as byte ranges under the
    synthetic base-0 per-array layout, and pretty-printed as linear
    (column-major) element indices. *)

type severity = Info | Warning | Error

type race_kind = Write_write | Read_write

type kind =
  | Race of {
      array : string;
      region : int * int;  (** (after_sync, before_sync) indices *)
      race : race_kind;
      p : int;  (** first accessor (the reader for {!Read_write}) *)
      q : int;  (** second accessor (always a writer) *)
      p_section : string;  (** [p]'s concrete section, paper notation *)
      q_section : string;
      overlap : Dsm_rsd.Range.t;  (** overlapping byte ranges, base 0 *)
      inexact : bool;
          (** an involved summary is inexact (conditional or coupled
              subscripts): the overlap is possible, not proved *)
    }
  | Missing_validate of {
      array : string;
      region : int * int;
      p : int;
      uncovered : Dsm_rsd.Range.t;
          (** data [p] can fetch in the region that no inserted
              [Validate]/[Validate_w_sync]/[Push] covers *)
    }
  | Bad_all_validate of {
      sync : int;
      array : string;
      reason : string;
          (** why the [_ALL] access type is unsound here (inexact
              section, non-contiguous, not fully written, exposed
              reads) *)
    }
  | Illegal_push of {
      sync : int;
      array : string;
      dep : [ `Anti | `Output ];
      p : int;
      q : int;
      overlap : Dsm_rsd.Range.t;
    }
  | Push_overreach of {
      sync : int;
      array : string;
      src : int;
      dst : int;
      excess : Dsm_rsd.Range.t;
          (** pushed data the receiver's next region never reads *)
    }
  | Push_unwritten of {
      sync : int;
      array : string;
      p : int;
      excess : Dsm_rsd.Range.t;
          (** declared write section not written in the preceding
              region *)
    }
  | Dead_validate of { sync : int; array : string }
  | Duplicate_validate of {
      sync : int;
      array : string;
      overlap : Dsm_rsd.Range.t;
    }
  | Uncovered_access of {
      p : int;
      page : int;
      epoch : int;
      write : bool;
      array : string option;  (** owning array, when identifiable *)
    }
  | Structure of { reason : string }

type t = { severity : severity; program : string; kind : kind }

val make : severity -> program:string -> kind -> t
val severity_name : severity -> string
val is_error : t -> bool

val max_severity : t list -> severity option
(** [None] on an empty report. *)

val exit_code : ?strict:bool -> t list -> int
(** 0 when nothing above {!Info} was reported (or, without [strict],
    nothing above {!Warning}); 1 for warnings under [strict]; 2 for any
    {!Error}. *)

val sort : t list -> t list
(** Most severe first, stable within a severity. *)

val pp : Format.formatter -> t -> unit
val pp_report : Format.formatter -> t list -> unit
(** The sorted diagnostics followed by a one-line summary. *)

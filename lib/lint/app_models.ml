(* Per-application access models for the static sharing-pattern
   classifier.

   Each model is a small IR program whose barrier epochs reproduce the
   shared-array accesses of the corresponding {!Dsm_apps} application —
   same allocation order, same partition functions (imported from the
   apps, not re-derived), same per-epoch read/write sections. The
   classifier only consumes per-page reader/writer processor sets, so
   the models may over-approximate {e within} a processor's own
   partition (e.g. "the owner touches all its cyclic columns" instead of
   "column k of iteration k"): that never changes which processors touch
   a page. What the models must get exactly right is which {e other}
   processors touch each page — halo columns (including the periodic
   wrap), broadcast regions, transpose slices, lock-shared sections.

   Accesses of one array that the analysis cannot compare symbolically
   (own partition vs. a wrapped halo column, both processor-dependent)
   are kept in separate regions with an empty lock critical section
   between them: regions separated only by lock operations stay in the
   same barrier epoch, and per-region accumulation sidesteps the
   probe-tested (inexact) union. *)

module Ir = Dsm_compiler.Ir
module Lin = Dsm_compiler.Lin

let c = Lin.const
let v = Lin.var

(* {1 IR builders} *)

(* A section spec is one (lo, count-1, stride) triple per dimension: the
   generated loop runs an index from 0 to count-1 and accesses
   [lo + stride * index], which the access analysis summarizes as the
   exact RSD (lo, lo + stride*(count-1), stride). Emptiness is a binding
   choice: count-1 = -1 yields a hi < lo descriptor that evaluates to no
   pages. *)
let nest dims mk =
  let rec go i dims idxs =
    match dims with
    | [] -> mk (List.rev idxs)
    | (lo, cnt1, stride) :: rest ->
        let ivar = Printf.sprintf "q%d" i in
        let idx = Lin.add lo (Lin.var ~coeff:stride ivar) in
        Ir.For
          { ivar; lo = c 0; hi = cnt1; body = [ go (i + 1) rest (idx :: idxs) ] }
  in
  [ go 0 dims [] ]

let rd arr dims =
  nest dims (fun aidx -> Ir.Set_scalar ("t", Ir.Load { Ir.aname = arr; aidx }))

let wr arr dims =
  nest dims (fun aidx -> Ir.Assign ({ Ir.aname = arr; aidx }, Ir.Fconst 0.0))

let rw arr dims =
  nest dims (fun aidx ->
      Ir.Assign ({ Ir.aname = arr; aidx }, Ir.Load { Ir.aname = arr; aidx }))

let lohi lo hi = (lo, Lin.sub hi lo, 1)

(* Empty critical section: a region separator that keeps the surrounding
   accesses in distinct regions of the same barrier epoch. *)
let sep k = [ Ir.Lock_acquire k; Ir.Lock_release k ]

let steady ~pname ~params ~arrays ~bindings body =
  {
    Ir.pname;
    params;
    arrays;
    privates = [];
    proc_bindings = bindings;
    body = [ Ir.For { ivar = "it"; lo = c 0; hi = c 3; body } ];
  }

let linear prog ~pname body = { prog with Ir.pname; body }

(* {1 Jacobi} *)

let jacobi (prm : Dsm_apps.Jacobi.params) ~nprocs:_ ~page_size =
  let m = prm.Dsm_apps.Jacobi.m in
  let rows = lohi (c 0) (c (m - 1)) in
  let bindings ~nprocs ~p =
    let lo, hi = Dsm_apps.Jacobi.bounds m nprocs p in
    (* the initialization loop covers the static boundary columns from
       the edge processors *)
    let ilo = if p = 0 then 0 else lo
    and ihi = if p = nprocs - 1 then m - 1 else hi in
    [ ("lo", lo); ("hi", hi); ("ilo", ilo); ("ihi", ihi) ]
  in
  let prog =
    steady ~pname:"jacobi-model"
      ~params:[ ("m", m) ]
      ~arrays:[ ("b", [ c m; c m ]) ]
      ~bindings
      ([ Ir.Barrier 0 ]
      (* phase 1: the stencil reads own and neighbour columns *)
      @ rd "b" [ rows; lohi (Lin.offset (v "lo") (-1)) (Lin.offset (v "hi") 1) ]
      @ [ Ir.Barrier 1 ]
      (* phase 2: copy back into the own columns *)
      @ wr "b" [ rows; lohi (v "lo") (v "hi") ])
  in
  {
    Classify.prog;
    init =
      Some
        (linear prog ~pname:"jacobi-init"
           (wr "b" [ rows; lohi (v "ilo") (v "ihi") ]));
    arrays = [ ("b", [ m; m ]) ];
    page_size;
  }

(* {1 Gauss}

   Columns cyclic; the pivot/multiplier broadcast rotates through the
   [work] array. The steady cycle unrolls one full rotation (nprocs
   eliminations, two epochs each) so the classifier sees the ownership
   of the broadcast region move — that rotation is exactly why [work]'s
   pages classify inexact while [a]'s columns (touched only by their
   cyclic owner, every epoch) classify exact. *)

let cyclic_cols ~count = (v "p", v "mycols", count)

let gauss (prm : Dsm_apps.Gauss.params) ~nprocs ~page_size:_ =
  let m = prm.Dsm_apps.Gauss.m in
  let page_size = Dsm_apps.Gauss.page_size prm in
  let rows = lohi (c 0) (c (m - 1)) in
  let own = [ rows; cyclic_cols ~count:nprocs ] in
  let bindings ~nprocs ~p =
    [ ("p", p); ("mycols", (m - 1 - p) / nprocs) ]
    @ List.init nprocs (fun e ->
          (Printf.sprintf "w%dcnt" e, if p = e then m - 1 else -1))
  in
  let body =
    List.concat
      (List.init nprocs (fun e ->
           [ Ir.Barrier (2 * e) ]
           (* elimination step k = e (mod nprocs): the owner scans and
              swaps its pivot column and writes the broadcast section *)
           @ rw "a" own
           @ wr "work" [ (c 1, v (Printf.sprintf "w%dcnt" e), 1) ]
           @ [ Ir.Barrier ((2 * e) + 1) ]
           (* everyone reads the broadcast and updates its own columns *)
           @ rd "work" [ lohi (c 1) (c m) ]
           @ rw "a" own))
  in
  let prog =
    steady ~pname:"gauss-model"
      ~params:[ ("m", m) ]
      ~arrays:[ ("a", [ c m; c m ]); ("work", [ c (m + 1) ]) ]
      ~bindings body
  in
  {
    Classify.prog;
    init = Some (linear prog ~pname:"gauss-init" (wr "a" own));
    arrays = [ ("a", [ m; m ]); ("work", [ m + 1 ]) ];
    page_size;
  }

(* {1 Modified Gram-Schmidt}

   Same rotation structure as Gauss, but the broadcast region is the
   just-normalized column of [q] itself: the owner's column pages are
   read by everyone once per sweep, so they oscillate between private
   and producer-consumer windows — inexact by design, with the
   whole-cycle union (home-based LRC at the owner) as the hint. *)

let mgs (prm : Dsm_apps.Mgs.params) ~nprocs ~page_size:_ =
  let m = prm.Dsm_apps.Mgs.m and n = prm.Dsm_apps.Mgs.n in
  let page_size = Dsm_apps.Mgs.page_size prm in
  let rows = lohi (c 0) (c (m - 1)) in
  let own = [ rows; cyclic_cols ~count:nprocs ] in
  let bindings ~nprocs ~p = [ ("p", p); ("mycols", (n - 1 - p) / nprocs) ] in
  let body =
    List.concat
      (List.init nprocs (fun e ->
           [ Ir.Barrier (2 * e) ]
           (* the owner normalizes vector i = e (mod nprocs) *)
           @ rw "q" own
           @ [ Ir.Barrier ((2 * e) + 1) ]
           (* everyone reads the normalized vector (a column of
              processor e) and updates its own later columns *)
           @ rd "q" [ rows; (c e, c ((n - 1 - e) / nprocs), nprocs) ]
           @ sep 90
           @ rw "q" own))
  in
  let prog =
    steady ~pname:"mgs-model"
      ~params:[ ("m", m); ("n", n) ]
      ~arrays:[ ("q", [ c m; c n ]) ]
      ~bindings body
  in
  {
    Classify.prog;
    init = Some (linear prog ~pname:"mgs-init" (wr "q" own));
    arrays = [ ("q", [ m; n ]) ];
    page_size;
  }

(* {1 Integer Sort} *)

let is (prm : Dsm_apps.Is.params) ~nprocs ~page_size =
  let nb = prm.Dsm_apps.Is.n_buckets in
  let page_size = Dsm_apps.Is.run_page_size ~nprocs ~page_size prm in
  let whole = [ lohi (c 0) (c (nb - 1)) ] in
  let bindings ~nprocs ~p =
    [ ("slo", p * (nb / nprocs)); ("scnt", (nb / nprocs) - 1) ]
  in
  let body =
    [ Ir.Barrier 0 ]
    (* zero the own section of the shared buckets *)
    @ wr "bucket" [ (v "slo", v "scnt", 1) ]
    @ [ Ir.Barrier 1; Ir.Lock_acquire 0 ]
    (* staggered lock-protected accumulation touches every section *)
    @ rw "bucket" whole
    @ [ Ir.Lock_release 0; Ir.Barrier 2 ]
    (* ranking reads all buckets *)
    @ rd "bucket" whole
  in
  let prog =
    steady ~pname:"is-model"
      ~params:[ ("nb", nb) ]
      ~arrays:[ ("bucket", [ c nb ]) ]
      ~bindings body
  in
  { Classify.prog; init = None; arrays = [ ("bucket", [ nb ]) ]; page_size }

(* {1 Shallow}

   Thirteen arrays, block columns, periodic halos. The wrapped neighbour
   columns are per-processor bindings ([hl]/[hr]); they sit in separate
   lock-delimited regions so their union with the own partition (not
   symbolically comparable) never degrades the summaries to inexact. *)

let shallow (prm : Dsm_apps.Shallow.params) ~nprocs:_ ~page_size =
  let m = prm.Dsm_apps.Shallow.m and n = prm.Dsm_apps.Shallow.n in
  let rows = lohi (c 0) (c (m - 1)) in
  let own = [ rows; lohi (v "jlo") (v "jhi") ] in
  let col x = [ rows; lohi (v x) (v x) ] in
  let bindings ~nprocs ~p =
    let jlo, jhi = Dsm_apps.Shallow.bounds n nprocs p in
    [
      ("jlo", jlo);
      ("jhi", jhi);
      ("hl", (jlo + n - 1) mod n);
      ("hr", (jhi + 1) mod n);
    ]
  in
  let body =
    [ Ir.Barrier 0 ]
    (* phase 1: cu,cv,z,h from u,v,p *)
    @ rd "u" own @ rd "v" own @ rd "p" own
    @ wr "cu" own @ wr "cv" own @ wr "z" own @ wr "h" own
    @ sep 90
    @ rd "p" (col "hl")
    @ sep 91
    @ rd "p" (col "hr") @ rd "u" (col "hr") @ rd "v" (col "hr")
    @ [ Ir.Barrier 1 ]
    (* phase 2: unew,vnew,pnew from cu,cv,z,h and the old arrays *)
    @ rd "uold" own @ rd "vold" own @ rd "pold" own
    @ rd "cu" own @ rd "cv" own @ rd "z" own @ rd "h" own
    @ wr "unew" own @ wr "vnew" own @ wr "pnew" own
    @ sep 92
    @ rd "cu" (col "hl") @ rd "h" (col "hl")
    @ sep 93
    @ rd "z" (col "hr") @ rd "cv" (col "hr")
    @ [ Ir.Barrier 2 ]
    (* phase 3: time filter, all within the own partition *)
    @ rw "u" own @ rw "v" own @ rw "p" own
    @ rw "uold" own @ rw "vold" own @ rw "pold" own
    @ rd "unew" own @ rd "vnew" own @ rd "pnew" own
  in
  let names =
    [ "u"; "v"; "p"; "unew"; "vnew"; "pnew"; "uold"; "vold"; "pold";
      "cu"; "cv"; "z"; "h" ]
  in
  let prog =
    steady ~pname:"shallow-model"
      ~params:[ ("m", m); ("n", n) ]
      ~arrays:(List.map (fun nm -> (nm, [ c m; c n ])) names)
      ~bindings body
  in
  let init_body =
    List.concat_map (fun a -> wr a own) [ "u"; "v"; "p"; "uold"; "vold"; "pold" ]
  in
  {
    Classify.prog;
    init = Some (linear prog ~pname:"shallow-init" init_body);
    arrays = List.map (fun nm -> (nm, [ m; n ])) names;
    page_size;
  }

(* {1 FFT3D} *)

let fft3d (prm : Dsm_apps.Fft3d.params) ~nprocs:_ ~page_size =
  let n = prm.Dsm_apps.Fft3d.n in
  let d0 = lohi (c 0) (c ((2 * n) - 1)) and all = lohi (c 0) (c (n - 1)) in
  let own a = [ d0; all; lohi (v (a ^ "lo")) (v (a ^ "hi")) ] in
  let slice a =
    (* the transpose reader needs its target slab's rows of every source
       plane: a thin slice of every page *)
    [
      lohi (Lin.scale 2 (v (a ^ "lo"))) (Lin.offset (Lin.scale 2 (v (a ^ "hi"))) 1);
      all;
      all;
    ]
  in
  let bindings ~nprocs ~p =
    let lo, hi = Dsm_apps.Fft3d.bounds n nprocs p in
    [ ("xlo", lo); ("xhi", hi); ("ylo", lo); ("yhi", hi) ]
  in
  let body =
    [ Ir.Barrier 0 ]
    (* evolve + x/y FFTs over the own X slab *)
    @ rw "x" (own "x")
    @ [ Ir.Barrier 1 ]
    (* transpose: read X slices, z-FFT the own Y slab *)
    @ rd "x" (slice "y")
    @ rw "y" (own "y")
    @ [ Ir.Barrier 2 ]
    (* inverse transpose: read Y slices, rebuild the own X slab *)
    @ rd "y" (slice "x")
    @ wr "x" (own "x")
  in
  let dims = [ c (2 * n); c n; c n ] in
  let prog =
    steady ~pname:"fft3d-model"
      ~params:[ ("n", n) ]
      ~arrays:[ ("x", dims); ("y", dims) ]
      ~bindings body
  in
  let cdims = [ 2 * n; n; n ] in
  {
    Classify.prog;
    init = Some (linear prog ~pname:"fft3d-init" (wr "x" (own "x")));
    arrays = [ ("x", cdims); ("y", cdims) ];
    page_size;
  }

(* {1 Registry} *)

type size = Small | Large

type spec = {
  name : string;
  build : nprocs:int -> page_size:int -> size:size -> Classify.model;
}

let pick small large = function Small -> small | Large -> large

let all =
  [
    {
      name = "jacobi";
      build =
        (fun ~nprocs ~page_size ~size ->
          jacobi (pick Dsm_apps.Jacobi.small Dsm_apps.Jacobi.large size)
            ~nprocs ~page_size);
    };
    {
      name = "fft3d";
      build =
        (fun ~nprocs ~page_size ~size ->
          fft3d (pick Dsm_apps.Fft3d.small Dsm_apps.Fft3d.large size) ~nprocs
            ~page_size);
    };
    {
      name = "shallow";
      build =
        (fun ~nprocs ~page_size ~size ->
          shallow (pick Dsm_apps.Shallow.small Dsm_apps.Shallow.large size)
            ~nprocs ~page_size);
    };
    {
      name = "is";
      build =
        (fun ~nprocs ~page_size ~size ->
          is (pick Dsm_apps.Is.small Dsm_apps.Is.large size) ~nprocs ~page_size);
    };
    {
      name = "gauss";
      build =
        (fun ~nprocs ~page_size ~size ->
          gauss (pick Dsm_apps.Gauss.small Dsm_apps.Gauss.large size) ~nprocs
            ~page_size);
    };
    {
      name = "mgs";
      build =
        (fun ~nprocs ~page_size ~size ->
          mgs (pick Dsm_apps.Mgs.small Dsm_apps.Mgs.large size) ~nprocs
            ~page_size);
    };
  ]

let find name = List.find_opt (fun s -> s.name = name) all
let names = List.map (fun s -> s.name) all

(** Static sharing-pattern classification and protocol placement.

    The compile-time half of the adaptive backend's online classifier
    ({!Dsm_tmk.Adaptive}): from a model of an application's per-epoch
    shared accesses it computes, per page, the reader and writer
    processor populations of every barrier epoch, applies the online
    decision rule over every classification window the run-time could
    observe, and emits a {!Dsm_tmk.Proto_plan} directive per contiguous
    page run. A directive is [Exact] only when every window agrees and
    every contributing access summary was exact — the condition under
    which seeding the decision is guaranteed to match what the online
    classifier would converge to, so [dsm_run --plan] can skip the
    warm-up switches without changing the final classification. *)

module Pset = Dsm_util.Pset
module Plan = Dsm_tmk.Proto_plan

type model = {
  prog : Dsm_compiler.Ir.program;
      (** steady-state model, cyclic; the loop body must begin with a
          barrier so epochs come out in execution order *)
  init : Dsm_compiler.Ir.program option;
      (** shared accesses before the first barrier, summarized whole *)
  arrays : (string * int list) list;
      (** allocation order and extents, as passed to {!Dsm_tmk.Tmk.Alloc.array} *)
  page_size : int;
}

val layout : (string * int list) list -> Dsm_rsd.Section.array_info list
(** Replica of the deterministic bump allocator: 8-byte-aligned bases in
    allocation order, 8-byte elements. *)

(** {1 The pure decision rule} (exposed for property tests) *)

type acc = {
  mutable readers : Pset.t;
  mutable writers : Pset.t;
  mutable exact : bool;
}

val empty_acc : unit -> acc
val union_acc : acc -> acc -> acc

val taxonomy : acc -> (Plan.proto * int) option
(** The decision rule of {!Dsm_tmk.Adaptive.reclassify}, verbatim: no
    writers — [None]; one writer and no other users — invalidate at the
    writer; one writer with readers — home-based LRC homed at the
    writer; several writers — homeless LRC (owner [-1]). *)

val classify_page :
  window:int ->
  init:acc option ->
  acc array ->
  (Plan.proto * int) option * Plan.confidence * string
(** [classify_page ~window ~init epochs] decides one page from its
    per-epoch populations over one steady cycle (execution order) and
    its pre-first-barrier populations. Exact iff every cyclic window of
    [window] epochs yields one stable decision, the first window (init
    plus leading epochs) agrees, and all populations are exact. *)

(** {1 Whole-model classification} *)

type page_class = {
  page : int;
  array : string;
  decision : (Plan.proto * int) option;
  confidence : Plan.confidence;
  reason : string;
  est_lrc : float;
  est_hlrc : float;
  est_inval : float;
}

val classify : ?window:int -> nprocs:int -> model -> page_class list
(** Every page any processor touches, sorted; [window] defaults to
    {!Dsm_sim.Config.default}'s [adapt_window]. *)

val plan :
  ?window:int ->
  program:string ->
  level:string ->
  nprocs:int ->
  model ->
  Plan.t
(** {!classify} coalesced into a validated plan: adjacent pages of one
    array with the same decision, confidence and reason merge into one
    directive, averaging the per-page cost estimates. *)

type severity = Info | Warning | Error

type race_kind = Write_write | Read_write

type kind =
  | Race of {
      array : string;
      region : int * int;
      race : race_kind;
      p : int;
      q : int;
      p_section : string;
      q_section : string;
      overlap : Dsm_rsd.Range.t;
      inexact : bool;
    }
  | Missing_validate of {
      array : string;
      region : int * int;
      p : int;
      uncovered : Dsm_rsd.Range.t;
    }
  | Bad_all_validate of { sync : int; array : string; reason : string }
  | Illegal_push of {
      sync : int;
      array : string;
      dep : [ `Anti | `Output ];
      p : int;
      q : int;
      overlap : Dsm_rsd.Range.t;
    }
  | Push_overreach of {
      sync : int;
      array : string;
      src : int;
      dst : int;
      excess : Dsm_rsd.Range.t;
    }
  | Push_unwritten of {
      sync : int;
      array : string;
      p : int;
      excess : Dsm_rsd.Range.t;
    }
  | Dead_validate of { sync : int; array : string }
  | Duplicate_validate of {
      sync : int;
      array : string;
      overlap : Dsm_rsd.Range.t;
    }
  | Uncovered_access of {
      p : int;
      page : int;
      epoch : int;
      write : bool;
      array : string option;
    }
  | Structure of { reason : string }

type t = { severity : severity; program : string; kind : kind }

let make severity ~program kind = { severity; program; kind }

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let is_error d = d.severity = Error

let rank = function Error -> 2 | Warning -> 1 | Info -> 0

let max_severity = function
  | [] -> None
  | l ->
      Some
        (List.fold_left
           (fun acc d -> if rank d.severity > rank acc then d.severity else acc)
           Info l)

let exit_code ?(strict = false) diags =
  match max_severity diags with
  | Some Error -> 2
  | Some Warning when strict -> 1
  | _ -> 0

let sort diags =
  List.stable_sort (fun a b -> compare (rank b.severity) (rank a.severity)) diags

(* Byte ranges under the synthetic base-0 layout, rendered as linear
   element indices (8-byte elements, column-major). *)
let pp_elems ppf (r : Dsm_rsd.Range.t) =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (lo, hi) ->
         Format.fprintf ppf "[%d..%d]" (lo / 8) ((hi / 8) - 1)))
    r

let pp_kind ppf = function
  | Race r ->
      Format.fprintf ppf
        "race/%s: array %s, region #%d->#%d, procs %d/%d, elements %a (%s vs \
         %s)%s"
        (match r.race with
        | Write_write -> "write-write"
        | Read_write -> "read-write")
        r.array (fst r.region) (snd r.region) r.p r.q pp_elems r.overlap
        r.p_section r.q_section
        (if r.inexact then " [inexact sections: possible, not proved]" else "")
  | Missing_validate m ->
      Format.fprintf ppf
        "missing-validate: array %s, region #%d->#%d, proc %d fetches \
         elements %a outside every Validate/Push"
        m.array (fst m.region) (snd m.region) m.p pp_elems m.uncovered
  | Bad_all_validate b ->
      Format.fprintf ppf "bad-all-validate: sync #%d, array %s: %s" b.sync
        b.array b.reason
  | Illegal_push i ->
      Format.fprintf ppf
        "illegal-push: sync #%d, array %s, cross-processor %s dependence \
         procs %d/%d over elements %a"
        i.sync i.array
        (match i.dep with `Anti -> "anti" | `Output -> "output")
        i.p i.q pp_elems i.overlap
  | Push_overreach o ->
      Format.fprintf ppf
        "push-overreach: sync #%d, array %s, %d->%d pushes elements %a the \
         receiver's next region never reads"
        o.sync o.array o.src o.dst pp_elems o.excess
  | Push_unwritten u ->
      Format.fprintf ppf
        "push-unwritten: sync #%d, array %s, proc %d declares elements %a it \
         does not write in the preceding region"
        u.sync u.array u.p pp_elems u.excess
  | Dead_validate d ->
      Format.fprintf ppf
        "dead-validate: sync #%d, array %s: validated data the following \
         region never accesses"
        d.sync d.array
  | Duplicate_validate d ->
      Format.fprintf ppf
        "duplicate-validate: sync #%d, array %s: overlapping sections \
         (elements %a) validated twice"
        d.sync d.array pp_elems d.overlap
  | Uncovered_access u ->
      Format.fprintf ppf
        "uncovered-access: proc %d %s page %d (epoch %d%s) outside the \
         static access summary"
        u.p
        (if u.write then "wrote" else "read")
        u.page u.epoch
        (match u.array with None -> "" | Some a -> ", array " ^ a)
  | Structure s -> Format.fprintf ppf "structure: %s" s.reason

let pp ppf d =
  Format.fprintf ppf "%s[%s] %a"
    (severity_name d.severity)
    d.program pp_kind d.kind

let pp_report ppf diags =
  let diags = sort diags in
  let count s = List.length (List.filter (fun d -> d.severity = s) diags) in
  List.iter (fun d -> Format.fprintf ppf "%a@," pp d) diags;
  Format.fprintf ppf "%d error(s), %d warning(s), %d info" (count Error)
    (count Warning) (count Info)

(** Shared state of a simulated cluster run: per-processor virtual clocks,
    statistics, and the network cost model.

    All times are in microseconds of virtual time. Computation is charged
    explicitly with {!charge}; communication with the [send]/[rpc]/[bcast]
    cost functions, which update both clocks and statistics.

    Request handlers (diff requests, lock grants) in the DSM run synchronously
    in simulation: the requester directly manipulates the target's state and
    the cost functions account for the interrupt time stolen from the target
    processor (see DESIGN.md section 4).

    {2 Domain safety}

    Nothing here is locked. Under {!Engine.run} every slice — and therefore
    every call into this module — executes inside the engine's critical
    section, whatever the domain count, so clocks, statistics and occupancy
    intervals need no protection of their own. Under {!Engine.run_windowed}
    the isolation contract applies: a fiber may touch only its own
    processor's rows (its clock, its [Stats] row), and the cross-processor
    cost functions ({!rpc}, {!bcast}, {!occupy} — which mutate the {e
    target's} state) must not be used from concurrently-running shards.
    The message-passing runtime satisfies this by charging sends to the
    sender alone; the DSM runtime does not, and always runs ordered. *)

type t = {
  cfg : Config.t;
  clocks : float array;  (** per-processor virtual clock, us *)
  stats : Stats.t array;
  busy_start : float array;
  busy_until : float array;
      (** per-processor request-handler occupancy interval: overlapping
          requests to one processor serialize (hot-spot contention) *)
  mutable pages_in_use : int;
      (** shared-space pages allocated so far; fault and mprotect costs are a
          linear function of this, as measured on AIX 3.2.5 in Section 5 *)
}

val create : Config.t -> t
val nprocs : t -> int

val time : t -> int -> float
(** Current virtual clock of a processor. *)

val elapsed : t -> float
(** Maximum clock over all processors: the parallel execution time. *)

val charge : t -> int -> float -> unit
(** [charge t p dt] advances processor [p]'s clock by [dt] us of local work. *)

val sync_clock : t -> int -> float -> unit
(** [sync_clock t p at] sets [p]'s clock to [max (time t p) at]: the causal
    effect of consuming an event that happened at time [at] elsewhere. *)

(** {1 Network cost functions} *)

val send : t -> src:int -> dst:int -> bytes:int -> float
(** One-way message: charges the sender its CPU overhead and the wire time,
    counts one message and [bytes] payload bytes, and returns the arrival
    time at [dst]. The receiver's costs are charged when it consumes the
    message (see {!recv_charge}). *)

val recv_charge : t -> dst:int -> arrival:float -> interrupt:bool -> unit
(** Consume a message that arrived at [arrival]: advances [dst]'s clock to
    the arrival time plus receive overhead (plus interrupt dispatch if
    [interrupt]). *)

val rpc :
  t -> src:int -> dst:int -> req_bytes:int -> resp_bytes:int ->
  service:float -> unit
(** Synchronous request/response pair ([src] blocks for the reply). Charges
    the requester the full roundtrip and the target the interrupt-stolen
    handler time; counts two messages. With zero payloads and zero service
    this costs the paper's 365 us minimum roundtrip. *)

val bcast : t -> src:int -> bytes:int -> float
(** Broadcast from [src] to all other processors; returns the completion
    time (arrival at the last receiver). Counts [nprocs-1] messages. Modeled
    as a binomial tree when [cfg.bcast_log_tree]. *)

val occupy : t -> int -> arrival:float -> handler_time:float -> float
(** Claim a processor's request handler: returns the service start time,
    serializing behind an overlapping busy period. *)

val mm_op : t -> int -> npages:int -> unit
(** Charge a memory-management operation (page fault handling or an mprotect
    call covering [npages] pages) to processor [p]; cost is linear in
    {!field-pages_in_use}. Counts as one mprotect in the statistics only when
    recorded separately by the caller. *)

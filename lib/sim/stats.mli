(** Per-processor execution statistics.

    These counters back Table 2 of the paper (percentage reductions in page
    faults, messages, and data) and the detailed per-application discussion
    in Section 6. *)

type t = {
  mutable messages : int;  (** messages sent by this processor *)
  mutable bytes : int;  (** payload bytes sent by this processor *)
  mutable segv : int;  (** simulated page faults (access violations) *)
  mutable mprotects : int;  (** memory-protection operations *)
  mutable twins : int;  (** twin (page copy) creations *)
  mutable diffs_created : int;
  mutable diffs_applied : int;
  mutable diff_bytes_applied : int;
  mutable lock_acquires : int;
  mutable barriers : int;
  mutable validates : int;  (** calls to the augmented [Validate] interface *)
  mutable pushes : int;  (** calls to the augmented [Push] interface *)
  mutable broadcasts : int;  (** barrier-time data broadcasts *)
  mutable retransmits : int;
      (** reliable-layer retransmissions sent after a delivery-attempt loss *)
  mutable timeouts : int;  (** retransmission timeouts fired *)
  mutable dropped : int;  (** delivery attempts lost by the modeled network *)
  mutable duplicates : int;
      (** network-duplicated deliveries suppressed by the reliable layer *)
  mutable home_flushes : int;
      (** HLRC: eager diff flushes sent to a page's home at release *)
  mutable home_flush_bytes : int;  (** HLRC: payload bytes of those flushes *)
  mutable home_fetches : int;
      (** HLRC: full-page copies fetched from a home at a fault *)
  mutable home_fetch_bytes : int;  (** HLRC: payload bytes of those fetches *)
  mutable invals : int;
      (** invalidate backend: invalidation requests sent to sharers *)
  mutable downgrades : int;
      (** invalidate backend: exclusive copies downgraded to shared *)
  mutable proto_switches : int;
      (** adaptive backend: per-page protocol switches at barriers *)
  mutable obj_skips : int;
      (** object-granularity allocations: consistency fetches avoided
          because every stale object of the page was outside the
          validated objects *)
  mutable crashes : int;  (** fault tolerance: crash-stop failures executed *)
  mutable restarts : int;
      (** fault tolerance: rejoins from the last checkpoint *)
  mutable suspects : int;
      (** fault tolerance: peers declared crashed after RTO exhaustion *)
  mutable quorum_writes : int;
      (** hlrc-r: release-time flushes acknowledged by a replica quorum *)
  mutable quorum_reads : int;
      (** hlrc-r: misses served by a quorum read from a replica group *)
  mutable ckpts : int;  (** fault tolerance: checkpoints taken *)
}

val create : unit -> t
val reset : t -> unit

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc] field-wise. *)

val total : t array -> t
(** Field-wise sum over all processors. *)

val pp : Format.formatter -> t -> unit

(* Deterministic scheduler for simulated processors, in two engines:

   - a sequential cooperative scheduler (the original engine), used when
     [domains <= 1]: one round-robin pass resumes every runnable fiber in
     processor order;
   - a sharded parallel engine on OCaml 5 domains, used when
     [domains > 1]: processors are split into contiguous shards, each
     fiber is created and resumed only on the domain that owns its shard,
     and a token rotating through the shards serializes slice execution
     in exactly the sequential engine's pass-major/processor-minor order.
     Identical total order of slices means identical floating-point
     charge order, hot-spot queueing and tie-breaks — bit-identical
     results versus the sequential engine (the perf-golden bar).

   A third entry point, {!run_windowed}, is the conservative
   parallel-discrete-event (CMB-style) engine: shards advance truly
   concurrently inside virtual-time windows bounded by the lookahead.
   It is only deterministic for isolated workloads (see the mli);
   the message-passing runtime qualifies, the DSM runtime does not. *)

exception Deadlock of string

exception Proc_failure of int * exn
(* An exception escaped one simulated processor's fiber; carries the
   processor id and the original exception. The scheduler discontinues the
   surviving fibers before re-raising, so no continuation is leaked. *)

let () =
  Printexc.register_printer (function
    | Proc_failure (p, e) ->
        Some (Printf.sprintf "Proc_failure (p%d, %s)" p (Printexc.to_string e))
    | _ -> None)

type _ Effect.t += Block : (unit -> bool) -> unit Effect.t

let block ~until = Effect.perform (Block until)

let yield () =
  (* Blocking with an immediately-true predicate re-enters the scheduler:
     every other runnable fiber gets its turn before this one resumes. *)
  Effect.perform (Block (fun () -> true))

type cell =
  | Not_started of (unit -> unit)
  | Waiting of { pred : unit -> bool; k : (unit, unit) Effect.Deep.continuation }
  | Running
  | Finished

(* {1 Sharding}

   Balanced contiguous shards: shard [d] of [D] owns processors
   [d*n/D .. (d+1)*n/D - 1]. Contiguity keeps each barrier subtree and
   each block-partitioned array mostly shard-local. *)

let shard_bounds ~domains ~nprocs d =
  (d * nprocs / domains, (d + 1) * nprocs / domains)

let shard_of ~domains ~nprocs p = (((p + 1) * domains) - 1) / nprocs

(* Shared fiber-table helpers (both engines). *)

let handler cells p =
  {
    Effect.Deep.retc = (fun () -> cells.(p) <- Finished);
    exnc =
      (fun e ->
        (* the raising fiber is done; mark it so the cleanup pass below
           only discontinues the genuinely suspended siblings *)
        cells.(p) <- Finished;
        match e with
        | Proc_failure _ -> raise e
        | e -> raise (Proc_failure (p, e)));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Block pred ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                cells.(p) <- Waiting { pred; k })
        | _ -> None);
  }

(* Unwind the suspended fibers in [lo, hi) (running their cleanup
   handlers) so the scheduler never leaks a continuation when one
   processor fails. Each continuation is discontinued on the domain that
   owns its shard — a continuation never moves across domains. *)
let discontinue_range cells lo hi =
  for q = lo to hi - 1 do
    match cells.(q) with
    | Waiting { k; _ } ->
        cells.(q) <- Finished;
        (try Effect.Deep.discontinue k Exit with _ -> ())
    | Not_started _ | Running | Finished -> ()
  done

let blocked_list cells =
  Array.to_seq cells
  |> Seq.mapi (fun p c -> (p, c))
  |> Seq.filter_map (fun (p, c) ->
         match c with
         | Waiting _ -> Some (string_of_int p)
         | Not_started _ | Running | Finished -> None)
  |> List.of_seq |> String.concat ","

let deadlock cells =
  Deadlock (Printf.sprintf "fibers blocked: [%s]" (blocked_list cells))

(* {1 The sequential engine} — the pre-existing single-domain scheduler,
   byte-for-byte the hot path when [domains <= 1]. *)

let run_seq ~nprocs main =
  let cells = Array.init nprocs (fun p -> Not_started (fun () -> main p)) in
  let rec loop () =
    let progress = ref false in
    let unfinished = ref false in
    for p = 0 to nprocs - 1 do
      match cells.(p) with
      | Not_started f ->
          progress := true;
          cells.(p) <- Running;
          Effect.Deep.match_with f () (handler cells p)
      | Waiting { pred; k } ->
          if pred () then begin
            progress := true;
            cells.(p) <- Running;
            Effect.Deep.continue k ()
          end
      | Running -> ()
      | Finished -> ()
    done;
    Array.iter (function Finished -> () | _ -> unfinished := true) cells;
    if !unfinished then
      if !progress then loop () else raise (deadlock cells)
  in
  Dsm_prof.Prof.enter Dsm_prof.Prof.Engine;
  Fun.protect
    ~finally:(fun () -> Dsm_prof.Prof.exit Dsm_prof.Prof.Engine)
    (fun () ->
      try loop ()
      with e ->
        discontinue_range cells 0 nprocs;
        raise e)

(* {1 The sharded ordered engine}

   One domain per shard; a token rotates through the shards in order.
   Only the token holder runs slices, under the engine mutex (every
   other domain is parked in [Condition.wait]), so the execution is a
   serialization of exactly the sequential pass order and every slice is
   separated from the next by a mutex release/acquire pair — the
   happens-before edge that makes all simulator state (clocks, stats,
   page tables, trace rings) safely visible across domains without any
   per-structure locking.

   The pass structure mirrors [run_seq]: shard [D-1] closes each pass,
   deciding termination (all fibers finished), deadlock (no slice ran in
   a full pass) or another pass. On deadlock or a fiber failure the
   token keeps rotating in [Unwinding] phase: each shard discontinues
   its own suspended fibers on its own domain; when all shards have
   unwound, everyone stops and the first failure is re-raised on the
   calling domain. *)

type phase = Scheduling | Unwinding | Stopped

let run_sharded ~domains ~nprocs main =
  let cells = Array.init nprocs (fun p -> Not_started (fun () -> main p)) in
  let m = Mutex.create () in
  let turn_cv = Condition.create () in
  let turn = ref 0 in
  let progress = ref false in
  let phase = ref Scheduling in
  let failure = ref None in
  let unwound = Array.make domains false in
  let n_unwound = ref 0 in
  let fail e =
    if !failure = None then failure := Some e;
    phase := Unwinding
  in
  (* Close of a pass (only shard [domains-1], only in [Scheduling]):
     the same decision the sequential loop takes after its for-loop. *)
  let finish_pass () =
    let unfinished = ref false in
    Array.iter (function Finished -> () | _ -> unfinished := true) cells;
    if not !unfinished then phase := Stopped
    else if !progress then progress := false
    else fail (deadlock cells)
  in
  let worker d =
    let lo, hi = shard_bounds ~domains ~nprocs d in
    let run_slot () =
      for p = lo to hi - 1 do
        match cells.(p) with
        | Not_started f ->
            progress := true;
            cells.(p) <- Running;
            Effect.Deep.match_with f () (handler cells p)
        | Waiting { pred; k } ->
            if pred () then begin
              progress := true;
              cells.(p) <- Running;
              Effect.Deep.continue k ()
            end
        | Running | Finished -> ()
      done
    in
    Dsm_prof.Prof.enter Dsm_prof.Prof.Engine;
    Mutex.lock m;
    Fun.protect
      ~finally:(fun () ->
        Mutex.unlock m;
        Dsm_prof.Prof.exit Dsm_prof.Prof.Engine)
    @@ fun () ->
    let rec loop () =
      while !turn <> d && !phase <> Stopped do
        Condition.wait turn_cv m
      done;
      if !phase <> Stopped then begin
        (match !phase with
        | Scheduling ->
            (try run_slot () with e -> fail e);
            if !phase = Scheduling && d = domains - 1 then finish_pass ()
        | Unwinding ->
            if not unwound.(d) then begin
              unwound.(d) <- true;
              discontinue_range cells lo hi;
              incr n_unwound;
              if !n_unwound = domains then phase := Stopped
            end
        | Stopped -> ());
        turn := (d + 1) mod domains;
        Condition.broadcast turn_cv;
        loop ()
      end
    in
    loop ()
  in
  let spawned =
    Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  let join_all () = Array.iter Domain.join spawned in
  (match worker 0 with
  | () -> join_all ()
  | exception e ->
      (* defensive: the worker body catches fiber failures itself, but a
         crash of the scheduler proper must still release the others *)
      Mutex.lock m;
      fail e;
      phase := Stopped;
      Condition.broadcast turn_cv;
      Mutex.unlock m;
      join_all ());
  match !failure with Some e -> raise e | None -> ()

let run ?(domains = 1) ~nprocs main =
  let domains = max 1 (min domains nprocs) in
  if domains = 1 then run_seq ~nprocs main
  else run_sharded ~domains ~nprocs main

(* {1 The windowed conservative engine}

   Classic CMB-style conservative parallel simulation: each domain
   advances its own shard's fibers truly concurrently, but only while
   their virtual clocks stay below the current window end
   [min unfinished clock + lookahead]. When no fiber of a shard is
   eligible the domain enters the window barrier; the last arriver
   recomputes the window from the (now quiescent, and therefore
   consistent) global clock minimum, detects termination and deadlock,
   and releases a new round. A round with no global progress whose
   runnable fibers are all beyond the window advances the window to the
   earliest runnable clock instead of deadlocking — the engine's
   substitute for CMB null messages. *)

let run_windowed ~domains ~nprocs ~lookahead ~clock main =
  let domains = max 1 (min domains nprocs) in
  let cells = Array.init nprocs (fun p -> Not_started (fun () -> main p)) in
  let m = Mutex.create () in
  let round_cv = Condition.create () in
  let window_end = ref lookahead in
  let round = ref 0 in
  let arrived = ref 0 in
  let any_progress = ref false in
  let phase = ref Scheduling in
  let failure = ref None in
  let unwound = Array.make domains false in
  let n_unwound = ref 0 in
  (* cross-domain "stop scanning" signal readable without the mutex *)
  let abort = Atomic.make false in
  let fail e =
    if !failure = None then failure := Some e;
    phase := Unwinding;
    Atomic.set abort true
  in
  (* Window-barrier close, by the last arriver, engine mutex held: every
     other domain is parked, so reading all clocks and predicates here is
     race-free and current. *)
  let close_round () =
    if !phase = Scheduling then begin
      let unfinished = ref false
      and min_clock = ref infinity
      and min_runnable = ref infinity in
      Array.iteri
        (fun p c ->
          match c with
          | Finished -> ()
          | Running ->
              (* unreachable: a quiescent shard has no Running cell *)
              unfinished := true
          | Not_started _ ->
              unfinished := true;
              min_clock := Float.min !min_clock (clock p);
              min_runnable := Float.min !min_runnable (clock p)
          | Waiting { pred; _ } ->
              unfinished := true;
              min_clock := Float.min !min_clock (clock p);
              if pred () then min_runnable := Float.min !min_runnable (clock p))
        cells;
      if not !unfinished then phase := Stopped
      else if (not !any_progress) && !min_runnable = infinity then
        fail (deadlock cells)
      else begin
        (* conservative base; escape via the earliest runnable when the
           window alone gated a whole quiescent round *)
        let base = if !any_progress then !min_clock else !min_runnable in
        window_end := base +. lookahead
      end
    end;
    any_progress := false;
    arrived := 0;
    incr round;
    Condition.broadcast round_cv
  in
  let worker d =
    let lo, hi = shard_bounds ~domains ~nprocs d in
    (* Run eligible fibers of [lo,hi) until a full scan runs none.
       Outside the mutex: cells of this shard are domain-private, and the
       caller's shared structures are the caller's to lock (see mli). *)
    let scan_until_quiescent () =
      let again = ref true in
      let ran = ref false in
      while !again && not (Atomic.get abort) do
        again := false;
        for p = lo to hi - 1 do
          if not (Atomic.get abort) then
            match cells.(p) with
            | Not_started f when clock p < !window_end ->
                ran := true;
                again := true;
                cells.(p) <- Running;
                Effect.Deep.match_with f () (handler cells p)
            | Waiting { pred; k } when clock p < !window_end && pred () ->
                ran := true;
                again := true;
                cells.(p) <- Running;
                Effect.Deep.continue k ()
            | _ -> ()
        done
      done;
      !ran
    in
    Dsm_prof.Prof.enter Dsm_prof.Prof.Engine;
    Fun.protect
      ~finally:(fun () -> Dsm_prof.Prof.exit Dsm_prof.Prof.Engine)
    @@ fun () ->
    let continue_ = ref true in
    while !continue_ do
      let ran = try scan_until_quiescent () with e -> Mutex.lock m; fail e;
                                                     Mutex.unlock m; false in
      Mutex.lock m;
      if ran then any_progress := true;
      incr arrived;
      let my_round = !round in
      if !arrived = domains then close_round ()
      else
        while !round = my_round && !phase <> Stopped do
          Condition.wait round_cv m
        done;
      (match !phase with
      | Unwinding ->
          (* unwind order across shards is whoever reaches here first;
             a failing run makes no determinism promise *)
          if not unwound.(d) then begin
            unwound.(d) <- true;
            discontinue_range cells lo hi;
            incr n_unwound;
            if !n_unwound = domains then begin
              phase := Stopped;
              (* peers may be parked at the round barrier: the round will
                 never close (we exit without arriving), so wake them *)
              Condition.broadcast round_cv
            end
          end;
          if !phase = Stopped then continue_ := false
      | Stopped -> continue_ := false
      | Scheduling -> ());
      Mutex.unlock m
    done
  in
  let spawned =
    Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  let join_all () = Array.iter Domain.join spawned in
  (match worker 0 with
  | () -> join_all ()
  | exception e ->
      Mutex.lock m;
      fail e;
      phase := Stopped;
      incr round;
      Condition.broadcast round_cv;
      Mutex.unlock m;
      join_all ());
  match !failure with Some e -> raise e | None -> ()

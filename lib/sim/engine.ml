exception Deadlock of string

exception Proc_failure of int * exn
(* An exception escaped one simulated processor's fiber; carries the
   processor id and the original exception. The scheduler discontinues the
   surviving fibers before re-raising, so no continuation is leaked. *)

let () =
  Printexc.register_printer (function
    | Proc_failure (p, e) ->
        Some (Printf.sprintf "Proc_failure (p%d, %s)" p (Printexc.to_string e))
    | _ -> None)

type _ Effect.t += Block : (unit -> bool) -> unit Effect.t

let block ~until = Effect.perform (Block until)

let yield () =
  (* Blocking with an immediately-true predicate re-enters the scheduler:
     every other runnable fiber gets its turn before this one resumes. *)
  Effect.perform (Block (fun () -> true))

type cell =
  | Not_started of (unit -> unit)
  | Waiting of { pred : unit -> bool; k : (unit, unit) Effect.Deep.continuation }
  | Running
  | Finished

let run ~nprocs main =
  let cells = Array.init nprocs (fun p -> Not_started (fun () -> main p)) in
  let handler p =
    {
      Effect.Deep.retc = (fun () -> cells.(p) <- Finished);
      exnc =
        (fun e ->
          (* the raising fiber is done; mark it so the cleanup pass below
             only discontinues the genuinely suspended siblings *)
          cells.(p) <- Finished;
          match e with
          | Proc_failure _ -> raise e
          | e -> raise (Proc_failure (p, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Block pred ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  cells.(p) <- Waiting { pred; k })
          | _ -> None);
    }
  in
  (* Unwind every suspended fiber (running its cleanup handlers) so the
     scheduler never leaks a continuation when one processor fails. *)
  let discontinue_waiting () =
    Array.iteri
      (fun q c ->
        match c with
        | Waiting { k; _ } ->
            cells.(q) <- Finished;
            (try Effect.Deep.discontinue k Exit with _ -> ())
        | Not_started _ | Running | Finished -> ())
      cells
  in
  let rec loop () =
    let progress = ref false in
    let unfinished = ref false in
    for p = 0 to nprocs - 1 do
      match cells.(p) with
      | Not_started f ->
          progress := true;
          cells.(p) <- Running;
          Effect.Deep.match_with f () (handler p)
      | Waiting { pred; k } ->
          if pred () then begin
            progress := true;
            cells.(p) <- Running;
            Effect.Deep.continue k ()
          end
      | Running -> ()
      | Finished -> ()
    done;
    Array.iter
      (function Finished -> () | _ -> unfinished := true)
      cells;
    if !unfinished then
      if !progress then loop ()
      else begin
        let blocked =
          Array.to_seq cells |> Seq.mapi (fun p c -> (p, c))
          |> Seq.filter_map (fun (p, c) ->
                 match c with
                 | Waiting _ -> Some (string_of_int p)
                 | Not_started _ | Running | Finished -> None)
          |> List.of_seq |> String.concat ","
        in
        raise (Deadlock (Printf.sprintf "fibers blocked: [%s]" blocked))
      end
  in
  Dsm_prof.Prof.enter Dsm_prof.Prof.Engine;
  Fun.protect
    ~finally:(fun () -> Dsm_prof.Prof.exit Dsm_prof.Prof.Engine)
    (fun () ->
      try loop ()
      with e ->
        discontinue_waiting ();
        raise e)

(** Cost-model parameters of the simulated cluster.

    The defaults are calibrated from the measurements published in Section 5
    of the paper for the 8-node IBM SP/2 under AIX 3.2.5 with user-space MPL
    communication:

    - minimum small-message roundtrip (send/recv + interrupt): 365 us
    - minimum acquisition of a free lock: 427 us
    - minimum 8-processor barrier: 893 us
    - page fault / memory-protection cost: linear in the number of pages in
      use (18..800 us with 2000 pages in use).

    With the defaults, [2 * wire_latency_us + 4 * msg_overhead_us +
    interrupt_us = 365], and the barrier formula
    [2 * wire_latency_us + 16 * msg_overhead_us + 7 * interrupt_us = 893]
    (see {!Dsm_tmk.Barrier}), reproducing the published platform numbers. *)

type backend_kind =
  | Lrc  (** homeless LRC: distributed diffs, TreadMarks-style (the paper) *)
  | Hlrc
      (** home-based LRC: each page has a home processor; releasers flush
          diffs to the home eagerly, faults fetch one full page copy *)
  | Inval
      (** sequentially consistent directory-based single-writer invalidate:
          one writer or many readers per page, enforced by a per-page
          directory entry on processor [page mod nprocs] *)
  | Adaptive
      (** per-page protocol switching: pages start under [Lrc] and migrate
          between lrc/hlrc/invalidate modes at barrier epochs based on the
          observed sharing pattern *)

type home_policy =
  | Home_block  (** contiguous page ranges per processor *)
  | Home_cyclic  (** page [g] homed on [g mod nprocs] *)
  | Home_first_touch
      (** first processor to flush to or fetch a page becomes its home *)

val normalize_enum : string -> string
(** Canonical spelling of an enum-flag value: trimmed, lower-case, with
    ['_'] mapped to ['-']. All [*_of_string] parsers below apply it, so
    ["first-touch"] and ["first_touch"] are the same policy. *)

val backend_name : backend_kind -> string
val backend_of_string : string -> backend_kind option

val backend_choices : string list
(** Canonical names accepted by {!backend_of_string}, for error messages. *)

val home_policy_name : home_policy -> string
val home_policy_of_string : string -> home_policy option

val home_policy_choices : string list
(** Canonical names accepted by {!home_policy_of_string}. *)

type t = {
  nprocs : int;  (** number of simulated processors *)
  page_size : int;  (** bytes per virtual-memory page *)
  wire_latency_us : float;  (** one-way network latency (alpha) *)
  per_byte_us : float;  (** per-byte network cost (beta), ~1/35 MB/s *)
  msg_overhead_us : float;  (** per-message CPU send/receive overhead (o) *)
  interrupt_us : float;  (** interrupt dispatch cost at a request target *)
  lock_service_us : float;  (** lock-manager service time *)
  mm_base_us : float;  (** fixed cost of a fault or mprotect call *)
  mm_per_inuse_page_us : float;  (** additional cost per page in use *)
  mm_per_op_page_us : float;  (** additional cost per page covered by call *)
  twin_per_byte_us : float;  (** cost per byte of twin creation (memcpy) *)
  diff_create_per_byte_us : float;  (** cost per byte of twin/copy compare *)
  diff_apply_per_byte_us : float;  (** cost per byte of diff application *)
  wsync_scan_per_page_us : float;
      (** cost, per page examined, of matching a piggy-backed section request
          against the local diff store in [Fetch_diffs_w_sync] *)
  diff_service_us : float;
      (** fixed handler time to service a diff request, on top of per-byte
          response costs *)
  notice_bytes : int;  (** wire size of one write notice *)
  bcast_log_tree : bool;
      (** model broadcast as a binomial tree (true) or as sequential sends *)
  enable_bcast : bool;
      (** ablation: barrier-time broadcast detection in
          [Fetch_diffs_w_sync] (Section 3.2.1) *)
  enable_supersede : bool;
      (** ablation: WRITE_ALL full-page diffs supersede older overlapping
          diffs at fetch (removes the IS diff accumulation) *)
  enable_hotspot_queueing : bool;
      (** ablation: overlapping requests to one processor serialize behind
          its handler occupancy *)
  net_drop : float;
      (** probability that a transmitted message copy is lost in the network
          (per delivery attempt); 0 = the SP/2's exactly-once MPL substrate *)
  net_dup : float;
      (** probability that a delivered message is duplicated by the network
          (the duplicate is suppressed by the reliable layer at the receiver) *)
  net_jitter_us : float;
      (** maximum extra delivery delay drawn uniformly per message, us *)
  net_seed : int;
      (** PRNG seed of the fault plan: any faulty run is exactly reproducible
          from [(config, seed)] *)
  net_rto_us : float;
      (** base retransmission timeout of the reliable-delivery layer; doubles
          on every consecutive loss (exponential backoff) *)
  backend : backend_kind;  (** coherence protocol run by {!Dsm_tmk.Tmk} *)
  home_policy : home_policy;
      (** static page-to-home assignment (HLRC only) *)
  adapt_window : int;
      (** adaptive backend: barrier epochs observed per classification
          window; a page's protocol can switch once per window *)
  replicas : int;
      (** fault tolerance: size [k] of each page's home replica group under
          the hlrc backend. Release-time flushes become quorum writes (acked
          by ⌈(k+1)/2⌉ members) and misses quorum reads. [1] (the default)
          keeps the plain single-home protocol bit-identical to the
          pre-replication runtime. *)
  ckpt_every : int;
      (** fault tolerance: barrier epochs between checkpoints of each
          processor's vector clock and per-page watermarks; [0] = only the
          implicit (empty) initial checkpoint, so recovery re-pulls the full
          notice history *)
  crash : (int * float * float) list;
      (** fault tolerance: deterministic crash-stop schedule
          [(proc, at_us, down_us)]. The processor fail-stops at its first
          release point (barrier arrival) at or after [at_us], loses all
          page state, and rejoins from its last checkpoint plus replica
          state after [down_us] of virtual downtime. Requires the hlrc
          backend with [replicas >= 3]. *)
  domains : int;
      (** number of host OCaml domains the engine shards the simulated
          processors across (clamped to [nprocs]). [1] (the default)
          runs the sequential scheduler; [> 1] the sharded ordered
          engine, with bit-identical results — see {!Dsm_sim.Engine}.
          This is a host-execution knob: it never affects simulated
          clocks, statistics or memory contents. *)
}

val default : t
(** SP/2-calibrated parameters with 8 processors and 4 KiB pages. *)

val with_procs : t -> int -> t
(** [with_procs cfg n] is [cfg] with [nprocs = n]. *)

val with_domains : t -> int -> t
(** [with_domains cfg d] is [cfg] with [domains = d]. *)

val pp : Format.formatter -> t -> unit

(** Deterministic cooperative scheduler for simulated processors.

    Each simulated processor runs as an OCaml-5 effect-based fiber. A fiber
    that must wait for another processor (barrier, lock, message receive)
    performs {!block}, giving a predicate that becomes true when it may
    continue. The scheduler resumes fibers round-robin; because the programs
    executed on the DSM are data-race free (conflicting accesses are ordered
    by synchronization), the round-robin order at blocking points fully
    determines the result and the simulation is deterministic. *)

exception Deadlock of string
(** Raised when no fiber can make progress but some have not terminated. *)

exception Proc_failure of int * exn
(** An exception escaped processor [p]'s fiber: re-raised as
    [Proc_failure (p, original)] after every suspended sibling fiber has
    been discontinued (unwound through its cleanup handlers), so a failing
    run leaks no continuation and leaves no fiber marked running. *)

val block : until:(unit -> bool) -> unit
(** Suspend the calling fiber until [until ()] holds. Must be called from
    within {!run}. The predicate is re-evaluated by the scheduler; it must be
    made true by the action of some other fiber. *)

val yield : unit -> unit
(** Give other fibers a chance to run, then continue. *)

val run : nprocs:int -> (int -> unit) -> unit
(** [run ~nprocs main] executes [main p] for [p = 0..nprocs-1] as cooperative
    fibers until all terminate.

    @raise Deadlock if all remaining fibers are blocked on predicates that no
    runnable fiber can satisfy.
    @raise Proc_failure if an exception escapes one of the fibers; the
    remaining fibers are discontinued first. *)

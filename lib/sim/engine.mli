(** Deterministic scheduler for simulated processors — sequential, or
    sharded across OCaml 5 domains.

    Each simulated processor runs as an OCaml-5 effect-based fiber. A
    fiber that must wait for another processor (barrier arrival, lock
    grant, message receive) performs {!block} with a predicate that some
    {e other} fiber's action will make true; the scheduler suspends it
    and resumes the next runnable fiber. Virtual time lives entirely in
    {!Cluster} — the engine never looks at clocks except in
    {!run_windowed}, which is handed an explicit [clock] function.

    {2 Execution model and determinism}

    {!run} executes fibers in {e slices}: a slice is the host-time span
    from resuming a fiber to its next [Block] (or its return). Slices
    are scheduled in {e pass order}: repeatedly sweep processors
    [0..nprocs-1], resuming each runnable fiber once per pass. Because
    the programs executed on the DSM are data-race free (conflicting
    accesses are ordered by synchronization), this fixed order at
    blocking points fully determines the result: clocks, statistics,
    memory contents and trace are functions of the configuration alone.

    With [domains > 1], {!run} keeps {e exactly the same total order of
    slices}. Processors are split into contiguous shards
    ({!shard_bounds}), one domain per shard; fibers are created,
    resumed and discontinued only on their owning domain; and a token
    rotating through the shards serializes slice execution in the
    sequential pass order, each slice inside a mutex-held critical
    section. Identical slice order means identical floating-point
    accumulation order, identical hot-spot queueing decisions and
    identical tie-breaks — results are bit-identical to [domains = 1]
    (enforced by the perf-golden suite). What sharding buys is not
    intra-run concurrency but domain affinity: each fiber's working set
    stays on one domain, and independent runs can occupy sibling
    domains (see {!Dsm_harness}'s fan-out).

    {!run_windowed} is the genuinely concurrent engine — conservative
    parallel discrete-event simulation in the Chandy–Misra–Bryant
    style — and trades the universal determinism guarantee for an
    isolation contract stated below. *)

exception Deadlock of string
(** Raised when some fibers have not terminated but no fiber can make
    progress: a full pass (or, in {!run_windowed}, a full window round)
    resumed nothing and every remaining fiber's predicate is false. The
    message lists the blocked processor ids, e.g.
    ["fibers blocked: [1,3]"]. All engines raise it with the same
    message format, and all unwind the remaining fibers (as for
    {!Proc_failure}) before the exception escapes. *)

exception Proc_failure of int * exn
(** An exception escaped processor [p]'s fiber: re-raised as
    [Proc_failure (p, original)] after every suspended sibling fiber
    has been discontinued (unwound through its cleanup handlers, each
    on the domain that owns it), so a failing run leaks no continuation
    and leaves no fiber marked running. If several fibers fail in one
    multi-domain run, the first failure in scheduling order wins; the
    rest are unwound like any other sibling. *)

val block : until:(unit -> bool) -> unit
(** Suspend the calling fiber until [until ()] holds. Must be called
    from within {!run} or {!run_windowed}.

    The predicate is re-evaluated by the scheduler — at least once per
    pass while the fiber is suspended — and must be made true by the
    action of some other fiber (or be immediately true, as in
    {!yield}). It must be pure apart from reading simulator state: it
    can run many times, and under {!run_windowed} it may be evaluated
    by the window-barrier closer on a different domain than the fiber's
    own, so anything it reads that another domain mutates must be
    protected by the caller (the message-passing runtime locks its
    mailboxes for exactly this reason). *)

val yield : unit -> unit
(** Re-enter the scheduler with an immediately-true predicate: every
    other runnable fiber gets one slice before the caller continues.
    Useful to break one processor's long computation into slices that
    interleave deterministically with its peers. *)

val run : ?domains:int -> nprocs:int -> (int -> unit) -> unit
(** [run ~domains ~nprocs main] executes [main p] for
    [p = 0..nprocs-1] as cooperative fibers until all terminate.

    [domains] (default [1], clamped to [\[1, nprocs\]]) selects the
    engine: [1] runs the single-domain sequential scheduler — the exact
    pre-existing code path, no mutexes, no spawns, zero overhead;
    [> 1] spawns [domains - 1] further domains and runs the sharded
    ordered engine described above, producing bit-identical results.

    @raise Deadlock if all remaining fibers are blocked on predicates
    that no runnable fiber can satisfy.
    @raise Proc_failure if an exception escapes one of the fibers; the
    remaining fibers are discontinued first, each on its owning
    domain. *)

val run_windowed :
  domains:int ->
  nprocs:int ->
  lookahead:float ->
  clock:(int -> float) ->
  (int -> unit) ->
  unit
(** [run_windowed ~domains ~nprocs ~lookahead ~clock main] is the
    conservative parallel engine: shards advance truly concurrently
    inside virtual-time windows.

    A fiber is eligible only while [clock p < window_end]; when a shard
    has no eligible fiber its domain enters the window barrier; the
    last arriver recomputes [window_end = min unfinished clock +
    lookahead] (all shards being quiescent, the minimum is consistent)
    and releases the next round. [lookahead] is the minimum virtual
    latency of any cross-processor interaction — for the simulated
    cluster, the wire latency — so within a window no fiber can affect
    a peer earlier than the window end. A quiescent round gated only by
    the window (runnable fibers exist beyond it) advances the window to
    the earliest runnable clock instead — the engine's substitute for
    CMB null messages; a quiescent round with no runnable fiber at all
    is a {!Deadlock}.

    {b Isolation contract} — results are deterministic (and equal to
    [run ~domains:1]) only if concurrently-running fibers are
    {e isolated}: a fiber may freely mutate state owned by its
    processor (its clock, its statistics row, its pages), and may
    interact with other processors only through order-insensitive
    channels — per-pair FIFO queues whose contents and costs do not
    depend on the global interleaving, with sends charged to the sender
    alone. The message-passing runtime with a pass-through network plan
    satisfies this; the DSM runtime (cross-processor RPC charges,
    hot-spot occupancy, barrier-arrival ordering) does not and must use
    {!run}. Shared structures touched from predicates or slices of
    different shards must be locked by the caller.

    @raise Deadlock / @raise Proc_failure as for {!run}, except that
    the unwind order across shards is not deterministic (a failing run
    makes no determinism promise). *)

(** {2 Sharding layout}

    Exposed for tests, the harness fan-out and the trace merger: the
    assignment is a pure function of [(domains, nprocs)], so any layer
    can predict which domain owns a processor without asking the
    engine. *)

val shard_bounds : domains:int -> nprocs:int -> int -> int * int
(** [shard_bounds ~domains ~nprocs d] is the half-open processor range
    [(lo, hi)] owned by shard [d]: contiguous, balanced to within one
    processor ([lo = d*nprocs/domains]). *)

val shard_of : domains:int -> nprocs:int -> int -> int
(** [shard_of ~domains ~nprocs p] is the shard owning processor [p] —
    the inverse of {!shard_bounds}. *)

type backend_kind = Lrc | Hlrc | Inval | Adaptive
type home_policy = Home_block | Home_cyclic | Home_first_touch

(* One normalization for every enum-valued flag: trim surrounding
   whitespace, lower-case, and treat '_' and '-' as the same separator, so
   "first-touch", "first_touch" and "First-Touch" all name one policy. *)
let normalize_enum s =
  String.trim s |> String.lowercase_ascii
  |> String.map (function '_' -> '-' | c -> c)

let backend_name = function
  | Lrc -> "lrc"
  | Hlrc -> "hlrc"
  | Inval -> "inval"
  | Adaptive -> "adaptive"

let backend_choices = [ "lrc"; "hlrc"; "inval"; "adaptive" ]

let backend_of_string s =
  match normalize_enum s with
  | "lrc" -> Some Lrc
  | "hlrc" -> Some Hlrc
  | "inval" | "invalidate" -> Some Inval
  | "adaptive" -> Some Adaptive
  | _ -> None

let home_policy_name = function
  | Home_block -> "block"
  | Home_cyclic -> "cyclic"
  | Home_first_touch -> "first-touch"

let home_policy_choices = [ "block"; "cyclic"; "first-touch" ]

let home_policy_of_string s =
  match normalize_enum s with
  | "block" -> Some Home_block
  | "cyclic" -> Some Home_cyclic
  | "first-touch" -> Some Home_first_touch
  | _ -> None

type t = {
  nprocs : int;
  page_size : int;
  wire_latency_us : float;
  per_byte_us : float;
  msg_overhead_us : float;
  interrupt_us : float;
  lock_service_us : float;
  mm_base_us : float;
  mm_per_inuse_page_us : float;
  mm_per_op_page_us : float;
  twin_per_byte_us : float;
  diff_create_per_byte_us : float;
  diff_apply_per_byte_us : float;
  wsync_scan_per_page_us : float;
  diff_service_us : float;
  notice_bytes : int;
  bcast_log_tree : bool;
  enable_bcast : bool;
  enable_supersede : bool;
  enable_hotspot_queueing : bool;
  net_drop : float;
  net_dup : float;
  net_jitter_us : float;
  net_seed : int;
  net_rto_us : float;
  backend : backend_kind;
  home_policy : home_policy;
  adapt_window : int;
      (* adaptive backend: number of barrier epochs observed before a page's
         sharing pattern is (re)classified and its protocol may switch *)
  replicas : int;
      (* fault tolerance: size k of each page's home replica group (hlrc
         only); 1 = the plain single-home protocol, bit-identical to the
         pre-replication runtime *)
  ckpt_every : int;
      (* fault tolerance: barrier epochs between checkpoints of the vector
         clocks and per-page watermarks; 0 = only the implicit initial
         checkpoint *)
  crash : (int * float * float) list;
      (* fault tolerance: deterministic crash schedule [(proc, at_us,
         down_us)]; the processor fail-stops at its first release point at
         or after [at_us] and rejoins after [down_us] of virtual downtime *)
  domains : int;
      (* host domains the engine shards the simulated processors across;
         1 = the sequential scheduler. Results are bit-identical either
         way (see Engine) *)
}

(* Calibration (see config.mli): solving the roundtrip, lock and barrier
   equations from Section 5 of the paper gives alpha = 118.5, o = 20,
   i = 48, lock service = 62. *)
let default =
  {
    nprocs = 8;
    page_size = 4096;
    wire_latency_us = 118.5;
    per_byte_us = 0.03;
    msg_overhead_us = 20.0;
    interrupt_us = 48.0;
    lock_service_us = 81.0;
    mm_base_us = 18.0;
    mm_per_inuse_page_us = 0.12;
    mm_per_op_page_us = 2.0;
    twin_per_byte_us = 0.005;
    diff_create_per_byte_us = 0.01;
    diff_apply_per_byte_us = 0.006;
    wsync_scan_per_page_us = 2.5;
    diff_service_us = 25.0;
    notice_bytes = 12;
    bcast_log_tree = true;
    enable_bcast = true;
    enable_supersede = true;
    enable_hotspot_queueing = true;
    net_drop = 0.0;
    net_dup = 0.0;
    net_jitter_us = 0.0;
    net_seed = 0;
    net_rto_us = 1000.0;
    backend = Lrc;
    home_policy = Home_block;
    adapt_window = 2;
    replicas = 1;
    ckpt_every = 0;
    crash = [];
    domains = 1;
  }

let with_procs cfg n = { cfg with nprocs = n }
let with_domains cfg d = { cfg with domains = d }

let pp ppf c =
  Format.fprintf ppf
    "@[<v>nprocs=%d page=%dB alpha=%.1fus beta=%.4fus/B o=%.1fus i=%.1fus@]"
    c.nprocs c.page_size c.wire_latency_us c.per_byte_us c.msg_overhead_us
    c.interrupt_us

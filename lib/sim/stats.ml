type t = {
  mutable messages : int;
  mutable bytes : int;
  mutable segv : int;
  mutable mprotects : int;
  mutable twins : int;
  mutable diffs_created : int;
  mutable diffs_applied : int;
  mutable diff_bytes_applied : int;
  mutable lock_acquires : int;
  mutable barriers : int;
  mutable validates : int;
  mutable pushes : int;
  mutable broadcasts : int;
  mutable retransmits : int;
  mutable timeouts : int;
  mutable dropped : int;
  mutable duplicates : int;
  mutable home_flushes : int;
  mutable home_flush_bytes : int;
  mutable home_fetches : int;
  mutable home_fetch_bytes : int;
  mutable invals : int;
  mutable downgrades : int;
  mutable proto_switches : int;
  mutable obj_skips : int;
  mutable crashes : int;
  mutable restarts : int;
  mutable suspects : int;
  mutable quorum_writes : int;
  mutable quorum_reads : int;
  mutable ckpts : int;
}

let create () =
  {
    messages = 0;
    bytes = 0;
    segv = 0;
    mprotects = 0;
    twins = 0;
    diffs_created = 0;
    diffs_applied = 0;
    diff_bytes_applied = 0;
    lock_acquires = 0;
    barriers = 0;
    validates = 0;
    pushes = 0;
    broadcasts = 0;
    retransmits = 0;
    timeouts = 0;
    dropped = 0;
    duplicates = 0;
    home_flushes = 0;
    home_flush_bytes = 0;
    home_fetches = 0;
    home_fetch_bytes = 0;
    invals = 0;
    downgrades = 0;
    proto_switches = 0;
    obj_skips = 0;
    crashes = 0;
    restarts = 0;
    suspects = 0;
    quorum_writes = 0;
    quorum_reads = 0;
    ckpts = 0;
  }

let reset t =
  t.messages <- 0;
  t.bytes <- 0;
  t.segv <- 0;
  t.mprotects <- 0;
  t.twins <- 0;
  t.diffs_created <- 0;
  t.diffs_applied <- 0;
  t.diff_bytes_applied <- 0;
  t.lock_acquires <- 0;
  t.barriers <- 0;
  t.validates <- 0;
  t.pushes <- 0;
  t.broadcasts <- 0;
  t.retransmits <- 0;
  t.timeouts <- 0;
  t.dropped <- 0;
  t.duplicates <- 0;
  t.home_flushes <- 0;
  t.home_flush_bytes <- 0;
  t.home_fetches <- 0;
  t.home_fetch_bytes <- 0;
  t.invals <- 0;
  t.downgrades <- 0;
  t.proto_switches <- 0;
  t.obj_skips <- 0;
  t.crashes <- 0;
  t.restarts <- 0;
  t.suspects <- 0;
  t.quorum_writes <- 0;
  t.quorum_reads <- 0;
  t.ckpts <- 0

let add acc x =
  acc.messages <- acc.messages + x.messages;
  acc.bytes <- acc.bytes + x.bytes;
  acc.segv <- acc.segv + x.segv;
  acc.mprotects <- acc.mprotects + x.mprotects;
  acc.twins <- acc.twins + x.twins;
  acc.diffs_created <- acc.diffs_created + x.diffs_created;
  acc.diffs_applied <- acc.diffs_applied + x.diffs_applied;
  acc.diff_bytes_applied <- acc.diff_bytes_applied + x.diff_bytes_applied;
  acc.lock_acquires <- acc.lock_acquires + x.lock_acquires;
  acc.barriers <- acc.barriers + x.barriers;
  acc.validates <- acc.validates + x.validates;
  acc.pushes <- acc.pushes + x.pushes;
  acc.broadcasts <- acc.broadcasts + x.broadcasts;
  acc.retransmits <- acc.retransmits + x.retransmits;
  acc.timeouts <- acc.timeouts + x.timeouts;
  acc.dropped <- acc.dropped + x.dropped;
  acc.duplicates <- acc.duplicates + x.duplicates;
  acc.home_flushes <- acc.home_flushes + x.home_flushes;
  acc.home_flush_bytes <- acc.home_flush_bytes + x.home_flush_bytes;
  acc.home_fetches <- acc.home_fetches + x.home_fetches;
  acc.home_fetch_bytes <- acc.home_fetch_bytes + x.home_fetch_bytes;
  acc.invals <- acc.invals + x.invals;
  acc.downgrades <- acc.downgrades + x.downgrades;
  acc.proto_switches <- acc.proto_switches + x.proto_switches;
  acc.obj_skips <- acc.obj_skips + x.obj_skips;
  acc.crashes <- acc.crashes + x.crashes;
  acc.restarts <- acc.restarts + x.restarts;
  acc.suspects <- acc.suspects + x.suspects;
  acc.quorum_writes <- acc.quorum_writes + x.quorum_writes;
  acc.quorum_reads <- acc.quorum_reads + x.quorum_reads;
  acc.ckpts <- acc.ckpts + x.ckpts

let total arr =
  let acc = create () in
  Array.iter (fun x -> add acc x) arr;
  acc

let pp ppf t =
  Format.fprintf ppf
    "@[<v>msgs=%d bytes=%d segv=%d mprotect=%d twins=%d diffs+%d/-%d \
     diff_bytes=%d locks=%d barriers=%d validates=%d pushes=%d bcasts=%d \
     retx=%d tmo=%d drop=%d dup=%d@]"
    t.messages t.bytes t.segv t.mprotects t.twins t.diffs_created
    t.diffs_applied t.diff_bytes_applied t.lock_acquires t.barriers t.validates
    t.pushes t.broadcasts t.retransmits t.timeouts t.dropped t.duplicates;
  (* home-based counters stay silent under the homeless protocol so that
     LRC output is unchanged byte-for-byte *)
  if t.home_flushes <> 0 || t.home_fetches <> 0 then
    Format.fprintf ppf "@[<v> hflush=%d/%dB hfetch=%d/%dB@]" t.home_flushes
      t.home_flush_bytes t.home_fetches t.home_fetch_bytes;
  (* likewise for the invalidate/adaptive counters *)
  if t.invals <> 0 || t.downgrades <> 0 || t.proto_switches <> 0 then
    Format.fprintf ppf "@[<v> inval=%d downgrade=%d switch=%d@]" t.invals
      t.downgrades t.proto_switches;
  (* the object-granularity counter stays silent for page-granular
     workloads, keeping kernel output byte-identical *)
  if t.obj_skips <> 0 then
    Format.fprintf ppf "@[<v> objskip=%d@]" t.obj_skips;
  (* and for the fault-tolerance counters: fault-free single-home runs keep
     byte-identical output *)
  if
    t.crashes <> 0 || t.suspects <> 0 || t.quorum_writes <> 0
    || t.quorum_reads <> 0 || t.ckpts <> 0
  then
    Format.fprintf ppf
      "@[<v> crash=%d restart=%d suspect=%d qwrite=%d qread=%d ckpt=%d@]"
      t.crashes t.restarts t.suspects t.quorum_writes t.quorum_reads t.ckpts

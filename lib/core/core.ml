(* Public facade of the integrated compile-time/run-time software DSM
   system: one module path for the whole library.

   - {!Tmk}: the TreadMarks-style LRC run-time with the augmented interface
     (Validate, Validate_w_sync, Push)
   - {!Compiler}: the Parascope-style analysis and the Section 4.2
     source-to-source transformation over the explicitly-parallel loop IR
   - {!Sim}, {!Mem}, {!Rsd}: the simulated cluster, paged memory and
     regular-section substrates
   - {!Mp}, {!Hpf}: the message-passing baselines' substrates
   - {!Apps}, {!Harness}: the six benchmark applications and the
     table/figure regeneration harness *)

module Config = Dsm_sim.Config
module Cluster = Dsm_sim.Cluster
module Engine = Dsm_sim.Engine
module Stats = Dsm_sim.Stats
module Net = Dsm_net.Net
module Net_plan = Dsm_net.Plan
module Range = Dsm_rsd.Range
module Rsd = Dsm_rsd.Rsd
module Section = Dsm_rsd.Section
module Diff = Dsm_mem.Diff
module Addr_space = Dsm_mem.Addr_space
module Page_table = Dsm_mem.Page_table
module Tmk = Dsm_tmk.Tmk
module Proto_plan = Dsm_tmk.Proto_plan
module Shm = Dsm_tmk.Shm
module Vc = Dsm_tmk.Vc
module Prof = Dsm_prof.Prof

module Trace = struct
  module Event = Dsm_trace.Event
  module Sink = Dsm_trace.Sink
  module Check = Dsm_trace.Check
  module Replay = Dsm_trace.Replay
end

module Lint = struct
  module Diag = Dsm_lint.Diag
  module Race = Dsm_lint.Race
  module Verify = Dsm_lint.Verify
  module Differential = Dsm_lint.Differential
  module Classify = Dsm_lint.Classify
  module App_models = Dsm_lint.App_models
end
module Mp = Dsm_mp.Mp
module Hpf = Dsm_hpf.Hpf

module Ft = struct
  module Schedule = Dsm_ft.Schedule
  module State = Dsm_ft.Ft
end

module Compiler = struct
  module Lin = Dsm_compiler.Lin
  module Sym_rsd = Dsm_compiler.Sym_rsd
  module Ir = Dsm_compiler.Ir
  module Access = Dsm_compiler.Access
  module Transform = Dsm_compiler.Transform
  module Interp = Dsm_compiler.Interp
  module Pretty = Dsm_compiler.Pretty
  module Programs = Dsm_compiler.Programs
end

module Apps = struct
  module Common = Dsm_apps.App_common
  module Workload = Dsm_apps.Workload
  module Registry = Dsm_apps.Registry
  module Jacobi = Dsm_apps.Jacobi
  module Fft3d = Dsm_apps.Fft3d
  module Shallow = Dsm_apps.Shallow
  module Is = Dsm_apps.Is
  module Gauss = Dsm_apps.Gauss
  module Mgs = Dsm_apps.Mgs
  module Kv = Dsm_apps.Kv
end

module Harness = struct
  module Runset = Dsm_harness.Runset
  module Experiments = Dsm_harness.Experiments
  module Phases = Dsm_harness.Phases
  module Cli = Dsm_harness.Cli
end

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Tables 1 and 2, Figures 5, 6 and 7), plus the
   Section 5 platform microbenchmarks.

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe table1          -- one experiment
     dune exec bench/main.exe bechamel        -- wall-clock Bechamel runs

   Virtual times come from the simulator; they model the paper's 8-node IBM
   SP/2. The Bechamel mode instead measures the wall-clock cost of running
   each experiment's simulation (one Test.make per table/figure). *)

module Experiments = Dsm_harness.Experiments
module Runset = Dsm_harness.Runset

let ppf = Format.std_formatter

let with_apps =
  let cache = ref None in
  fun f ->
    let apps =
      match !cache with
      | Some apps -> apps
      | None ->
          let apps = Runset.all Dsm_sim.Config.default in
          cache := Some apps;
          apps
    in
    f apps

let run_one = function
  | "table1" -> with_apps (Experiments.table1 ppf)
  | "table2" -> with_apps (Experiments.table2 ppf)
  | "fig5" | "figure5" -> with_apps (Experiments.figure5 ppf)
  | "fig6" | "figure6" -> with_apps (Experiments.figure6 ppf)
  | "fig7" | "figure7" -> with_apps (Experiments.figure7 ppf)
  | "micro" -> Experiments.micro ppf Dsm_sim.Config.default
  | "scale" | "scaling" -> Experiments.scaling ppf Dsm_sim.Config.default
  | "ablation" -> Experiments.ablation ppf Dsm_sim.Config.default
  | "faults" -> Experiments.faults ppf Dsm_sim.Config.default
  | name -> failwith ("unknown experiment: " ^ name)

let run_all () =
  Experiments.micro ppf Dsm_sim.Config.default;
  with_apps (fun apps ->
      Experiments.table1 ppf apps;
      Experiments.table2 ppf apps;
      Experiments.figure5 ppf apps;
      Experiments.figure6 ppf apps;
      Experiments.figure7 ppf apps);
  Experiments.scaling ppf Dsm_sim.Config.default;
  Experiments.ablation ppf Dsm_sim.Config.default;
  Experiments.faults ppf Dsm_sim.Config.default

(* Bechamel wall-clock benchmarks: one Test.make per table/figure. Each run
   re-executes the experiment's simulations from scratch (no caching), so
   the estimate reflects the simulator's own cost. *)
let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let quick name f = Test.make ~name (Staged.stage f) in
  let null = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let mk_apps () = Runset.all Dsm_sim.Config.default in
  let tests =
    Test.make_grouped ~name:"paper-experiments"
      [
        quick "micro" (fun () -> Experiments.micro null Dsm_sim.Config.default);
        quick "table1" (fun () -> Experiments.table1 null (mk_apps ()));
        quick "table2" (fun () -> Experiments.table2 null (mk_apps ()));
        quick "figure5" (fun () -> Experiments.figure5 null (mk_apps ()));
        quick "figure6" (fun () -> Experiments.figure6 null (mk_apps ()));
        quick "figure7" (fun () -> Experiments.figure7 null (mk_apps ()));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2 ~quota:(Time.second 30.0) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Format.printf "%-40s %14.0f ns/run@." name est
      | _ -> Format.printf "%-40s (no estimate)@." name)
    results

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] -> run_all ()
  | [ "bechamel" ] -> bechamel ()
  | names -> List.iter run_one names

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Tables 1 and 2, Figures 5, 6 and 7), plus the
   Section 5 platform microbenchmarks.

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe table1          -- one experiment
     dune exec bench/main.exe bechamel        -- wall-clock Bechamel runs
     dune exec bench/main.exe bechamel micro  -- hot-primitive Bechamel runs
     dune exec bench/main.exe json [--quick] [--out F] [--against F]
                                              -- machine-readable trajectory

   Virtual times come from the simulator; they model the paper's 8-node IBM
   SP/2. The Bechamel modes instead measure host wall-clock: of each
   experiment's simulation, and of the hot run-time primitives. The json
   mode writes a BENCH_<n>.json trajectory file (see {!Dsm_harness.Bench_log})
   and, with [--against], gates on a committed baseline. *)

module Experiments = Dsm_harness.Experiments
module Runset = Dsm_harness.Runset
module Bench_log = Dsm_harness.Bench_log

let ppf = Format.std_formatter

let with_apps =
  let cache = ref None in
  fun f ->
    let apps =
      match !cache with
      | Some apps -> apps
      | None ->
          let apps = Runset.all Dsm_sim.Config.default in
          cache := Some apps;
          apps
    in
    f apps

let run_one = function
  | "table1" -> with_apps (Experiments.table1 ppf)
  | "table2" -> with_apps (Experiments.table2 ppf)
  | "fig5" | "figure5" -> with_apps (Experiments.figure5 ppf)
  | "fig6" | "figure6" -> with_apps (Experiments.figure6 ppf)
  | "fig7" | "figure7" -> with_apps (Experiments.figure7 ppf)
  | "micro" -> Experiments.micro ppf Dsm_sim.Config.default
  | "scale" | "scaling" -> Experiments.scaling ppf Dsm_sim.Config.default
  | "scale-deep" | "scaling-deep" ->
      Experiments.scaling_deep ppf Dsm_sim.Config.default
  | "ablation" -> Experiments.ablation ppf Dsm_sim.Config.default
  | "faults" -> Experiments.faults ppf Dsm_sim.Config.default
  | "availability" -> Experiments.availability ppf Dsm_sim.Config.default
  | "backends" -> Experiments.backends ppf Dsm_sim.Config.default
  | "protocols" | "matrix" ->
      Experiments.protocol_matrix ppf Dsm_sim.Config.default
  | "kv" -> Experiments.kv ppf Dsm_sim.Config.default
  | name -> failwith ("unknown experiment: " ^ name)

let run_all () =
  Experiments.micro ppf Dsm_sim.Config.default;
  with_apps (fun apps ->
      Experiments.table1 ppf apps;
      Experiments.table2 ppf apps;
      Experiments.figure5 ppf apps;
      Experiments.figure6 ppf apps;
      Experiments.figure7 ppf apps);
  Experiments.scaling ppf Dsm_sim.Config.default;
  Experiments.scaling_deep ppf Dsm_sim.Config.default;
  Experiments.ablation ppf Dsm_sim.Config.default;
  Experiments.faults ppf Dsm_sim.Config.default;
  Experiments.availability ppf Dsm_sim.Config.default;
  Experiments.backends ppf Dsm_sim.Config.default;
  Experiments.protocol_matrix ppf Dsm_sim.Config.default;
  Experiments.kv ppf Dsm_sim.Config.default

(* Bechamel wall-clock benchmarks: one Test.make per table/figure. Each run
   re-executes the experiment's simulations from scratch (no caching), so
   the estimate reflects the simulator's own cost. *)
let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let quick name f = Test.make ~name (Staged.stage f) in
  let null = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let mk_apps () = Runset.all Dsm_sim.Config.default in
  let tests =
    Test.make_grouped ~name:"paper-experiments"
      [
        quick "micro" (fun () -> Experiments.micro null Dsm_sim.Config.default);
        quick "table1" (fun () -> Experiments.table1 null (mk_apps ()));
        quick "table2" (fun () -> Experiments.table2 null (mk_apps ()));
        quick "figure5" (fun () -> Experiments.figure5 null (mk_apps ()));
        quick "figure6" (fun () -> Experiments.figure6 null (mk_apps ()));
        quick "figure7" (fun () -> Experiments.figure7 null (mk_apps ()));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2 ~quota:(Time.second 30.0) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Format.printf "%-40s %14.0f ns/run@." name est
      | _ -> Format.printf "%-40s (no estimate)@." name)
    results

(* Bechamel over the hot run-time primitives the profiling work optimized:
   diff creation/application/merge, vector-clock operations, range-to-page
   conversion and the indexed write-notice log. These complement the
   per-experiment timings above with per-operation costs. *)
let bechamel_micro () =
  let open Bechamel in
  let open Toolkit in
  let quick name f = Test.make ~name (Staged.stage f) in
  let page_size = 4096 in
  let twin = Bytes.make page_size 'a' in
  let current = Bytes.copy twin in
  List.iter (fun off -> Bytes.fill current off 16 'b') [ 256; 1600; 3900 ];
  let diff = Dsm_mem.Diff.create ~twin ~current in
  let dst = Bytes.copy twin in
  let vc_a = Dsm_tmk.Vc.create 8 and vc_b = Dsm_tmk.Vc.create 8 in
  for q = 0 to 7 do
    Dsm_tmk.Vc.set vc_a q (q * 3);
    Dsm_tmk.Vc.set vc_b q (24 - q)
  done;
  let ranges = [ (0, 512); (8192, 12288); (40960, 41984) ] in
  let tests =
    Test.make_grouped ~name:"primitives"
      [
        quick "diff-create" (fun () ->
            ignore (Dsm_mem.Diff.create ~twin ~current));
        quick "diff-apply" (fun () -> Dsm_mem.Diff.apply diff dst);
        quick "diff-merge" (fun () ->
            ignore (Dsm_mem.Diff.merge diff diff ~page_size));
        quick "vc-merge" (fun () -> Dsm_tmk.Vc.merge vc_a vc_b);
        quick "vc-leq" (fun () -> ignore (Dsm_tmk.Vc.leq vc_a vc_b));
        quick "vc-copy+sum" (fun () ->
            ignore (Dsm_tmk.Vc.sum (Dsm_tmk.Vc.copy vc_a)));
        quick "range-pages" (fun () ->
            ignore (Dsm_rsd.Range.pages ~page_size ranges));
        quick "ilog-64-adds+scan" (fun () ->
            let l = Dsm_tmk.Ilog.create () in
            for s = 1 to 64 do
              Dsm_tmk.Ilog.add l ~seq:s [ s; s + 1 ]
            done;
            ignore (Dsm_tmk.Ilog.count_since l 0);
            Dsm_tmk.Ilog.iter_desc l ~lo:0 ~hi:64 (fun _ _ -> ()));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Format.printf "%-40s %14.1f ns/run@." name est
      | _ -> Format.printf "%-40s (no estimate)@." name)
    results

(* Machine-readable trajectory: run the experiments, timing each against a
   buffer formatter, and emit BENCH_<n>.json. Experiments share the lazily
   memoized runset, so each entry carries its incremental host cost and the
   sum matches a plain [run_all]. *)
let json_mode args =
  let quick = List.mem "--quick" args in
  let rec keyed k = function
    | a :: b :: _ when a = k -> Some b
    | _ :: tl -> keyed k tl
    | [] -> None
  in
  let out = Option.value ~default:"BENCH_8.json" (keyed "--out" args) in
  let against = keyed "--against" args in
  let tolerance =
    match keyed "--tolerance" args with
    | Some s -> float_of_string s
    | None -> 0.20
  in
  let repeat =
    match keyed "--repeat" args with
    | Some s -> int_of_string s
    | None -> if quick then 2 else 1
  in
  (* profiling on/off invariance: the same experiment must produce the same
     simulated output whether or not the self-profiler is enabled *)
  let digest_of f =
    let buf = Buffer.create 1024 in
    let bppf = Format.formatter_of_buffer buf in
    f bppf;
    Format.pp_print_flush bppf ();
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  let micro ppf = Experiments.micro ppf Dsm_sim.Config.default in
  let d_off = digest_of micro in
  Dsm_prof.Prof.enable ();
  let d_on = digest_of micro in
  Dsm_prof.Prof.disable ();
  (* per-subsystem profile of one representative workload, embedded in the
     trajectory so a PR's profile shift is machine-diffable too *)
  Dsm_prof.Prof.enable ();
  ignore
    (digest_of (fun ppf -> Experiments.ablation ppf Dsm_sim.Config.default));
  let profile_json = Dsm_prof.Prof.to_json () in
  Dsm_prof.Prof.disable ();
  let measure_once round =
    let log =
      Bench_log.create ~pr:8 ~label:(if quick then "quick" else "full") ~quick
    in
    Bench_log.set_prof_invariant log (d_off = d_on);
    Bench_log.set_profile log profile_json;
    let m name f =
      ignore (Bench_log.measure log ~name f);
      Format.printf "  [%d/%d] %-10s done@." round repeat name
    in
    m "micro" micro;
    if not quick then begin
      (* building the runset runs the uniprocessor sims eagerly; everything
         else is memoized and charged to the first experiment that asks *)
      let apps = ref [] in
      m "runset" (fun ppf ->
          apps := Runset.all Dsm_sim.Config.default;
          Format.fprintf ppf "built %d sized-app rows@." (List.length !apps));
      let apps = !apps in
      m "table1" (fun ppf -> Experiments.table1 ppf apps);
      m "table2" (fun ppf -> Experiments.table2 ppf apps);
      m "figure5" (fun ppf -> Experiments.figure5 ppf apps);
      m "figure6" (fun ppf -> Experiments.figure6 ppf apps);
      m "figure7" (fun ppf -> Experiments.figure7 ppf apps)
    end;
    m "scaling" (fun ppf -> Experiments.scaling ppf Dsm_sim.Config.default);
    if not quick then
      (* 256/1024-processor tiers: the barrier write-notice exchange costs
         the host O(nprocs^2), too slow for the quick CI gate *)
      m "scaling_deep" (fun ppf ->
          Experiments.scaling_deep ppf Dsm_sim.Config.default);
    m "ablation" (fun ppf -> Experiments.ablation ppf Dsm_sim.Config.default);
    m "faults" (fun ppf -> Experiments.faults ppf Dsm_sim.Config.default);
    m "availability" (fun ppf ->
        Experiments.availability ppf Dsm_sim.Config.default);
    m "backends" (fun ppf ->
        Experiments.backends ppf Dsm_sim.Config.default);
    m "protocols" (fun ppf ->
        Experiments.protocol_matrix ppf Dsm_sim.Config.default);
    m "kv" (fun ppf -> Experiments.kv ppf Dsm_sim.Config.default);
    log
  in
  Format.printf "bench json (%s set, best of %d):@."
    (if quick then "quick" else "full")
    repeat;
  let log = ref (measure_once 1) in
  for round = 2 to repeat do
    log := Bench_log.min_merge !log (measure_once round)
  done;
  let log = !log in
  Bench_log.write log ~path:out;
  Format.printf "wrote %s (total %.1f ms, prof-invariant %b)@." out
    (Bench_log.total_wall_ms log)
    (d_off = d_on);
  let ok_gate =
    match against with
    | None -> true
    | Some path ->
        let baseline = Bench_log.load ~path in
        Bench_log.compare_against Format.std_formatter ~baseline ~current:log
          ~tolerance
  in
  if d_off <> d_on then begin
    Format.printf "FAIL: enabling profiling changed simulated output@.";
    exit 1
  end;
  if not ok_gate then exit 1

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] -> run_all ()
  | [ "bechamel" ] -> bechamel ()
  | [ "bechamel"; "micro" ] | [ "bechamel-micro" ] -> bechamel_micro ()
  | "json" :: rest -> json_mode rest
  | names -> List.iter run_one names

(* Replacing a barrier with Push: the paper's Figure 2, by hand.

   A two-phase stencil loop over a shared grid (the Jacobi pattern): the
   optimized version validates its own partition with WRITE_ALL (no twins,
   no diffs) and replaces the end-of-iteration barrier with a Push that
   sends each neighbour exactly the boundary columns it will read —
   message-passing behaviour inside the shared-memory programming model.

     dune exec examples/stencil_push.exe *)

module Tmk = Core.Tmk
module Shm = Core.Shm

let m = 256
let iters = 8

let bounds nprocs p =
  let w = (m - 2 + nprocs - 1) / nprocs in
  (1 + (p * w), min (m - 2) (p * w + w))

let run ~push =
  let cfg = Core.Config.default in
  let sys = Tmk.make cfg in
  let b = Tmk.Alloc.array sys "b" Tmk.F64 ~dims:[ m; m ] in
  let np = cfg.Core.Config.nprocs in
  let read_sections =
    Array.init np (fun q ->
        let lo, hi = bounds np q in
        [ Shm.F64_2.section b (0, m - 1, 1) (lo - 1, hi + 1, 1) ])
  and write_sections =
    Array.init np (fun q ->
        let lo, hi = bounds np q in
        [ Shm.F64_2.section b (0, m - 1, 1) (lo, hi, 1) ])
  in
  Tmk.run sys (fun t ->
      let p = Tmk.pid t in
      let lo, hi = bounds np p in
      let a = Array.make_matrix (hi - lo + 1) m 0.0 in
      for j = lo to hi do
        for i = 0 to m - 1 do
          Shm.F64_2.set t b i j (float_of_int ((i + j) mod 17))
        done
      done;
      Tmk.barrier t;
      for _k = 1 to iters do
        for j = lo to hi do
          for i = 1 to m - 2 do
            a.(j - lo).(i) <-
              0.25
              *. (Shm.F64_2.get t b (i - 1) j
                 +. Shm.F64_2.get t b (i + 1) j
                 +. Shm.F64_2.get t b i (j - 1)
                 +. Shm.F64_2.get t b i (j + 1))
          done
        done;
        Tmk.charge t (0.5 *. float_of_int ((hi - lo + 1) * m));
        Tmk.barrier t;
        if push then Tmk.validate t write_sections.(p) Tmk.Write_all;
        for j = lo to hi do
          for i = 1 to m - 2 do
            Shm.F64_2.set t b i j a.(j - lo).(i)
          done
        done;
        Tmk.charge t (0.2 *. float_of_int ((hi - lo + 1) * m));
        if push then Tmk.push t ~read_sections ~write_sections
        else Tmk.barrier t
      done);
  (Tmk.elapsed sys, Tmk.total_stats sys)

let () =
  let bt, bs = run ~push:false in
  let pt, ps = run ~push:true in
  Format.printf "barrier version: %8.0f us  msgs=%5d segv=%5d twins=%4d@." bt
    bs.Core.Stats.messages bs.Core.Stats.segv bs.Core.Stats.twins;
  Format.printf "push version:    %8.0f us  msgs=%5d segv=%5d twins=%4d@." pt
    ps.Core.Stats.messages ps.Core.Stats.segv ps.Core.Stats.twins;
  Format.printf "@.execution time improvement: %.1f%%@."
    (100.0 *. (bt -. pt) /. bt)

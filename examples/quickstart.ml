(* Quickstart: a shared counter-grid on the software DSM in ~40 lines.

   Eight simulated processors each fill a block of a shared vector, a
   barrier makes everything consistent, and everyone reads a neighbour's
   block. The run prints the virtual parallel time (modeled after an 8-node
   IBM SP/2) and the protocol statistics: messages, page faults, twins,
   diffs.

     dune exec examples/quickstart.exe *)

module Tmk = Core.Tmk
module Shm = Core.Shm

let () =
  let cfg = Core.Config.default in
  let sys = Tmk.make cfg in
  let n = 1024 in
  let v = Tmk.Alloc.array sys "v" Tmk.F64 ~dims:[ n ] in
  Tmk.run sys (fun t ->
      let p = Tmk.pid t
      and np = Tmk.nprocs t in
      let chunk = n / np in
      (* write my block *)
      for i = p * chunk to ((p + 1) * chunk) - 1 do
        Shm.F64_1.set t v i (float_of_int (i * i))
      done;
      Tmk.charge t (0.1 *. float_of_int chunk);
      (* lazy release consistency: the barrier exchanges write notices *)
      Tmk.barrier t;
      (* read the next processor's block: page faults fetch the diffs *)
      let q = (p + 1) mod np in
      let sum = ref 0.0 in
      for i = q * chunk to ((q + 1) * chunk) - 1 do
        sum := !sum +. Shm.F64_1.get t v i
      done;
      Tmk.charge t (0.1 *. float_of_int chunk);
      Format.printf "processor %d read neighbour sum %.0f@." p !sum);
  Format.printf "@.parallel time: %.0f us (virtual, SP/2 model)@."
    (Tmk.elapsed sys);
  Format.printf "%a@." Core.Stats.pp (Tmk.total_stats sys);

  (* The same program, letting the compiler-style Validate aggregate the
     reads into one request per writer instead of a fault per page: *)
  let sys2 = Tmk.make cfg in
  let v2 = Tmk.Alloc.array sys2 "v" Tmk.F64 ~dims:[ n ] in
  Tmk.run sys2 (fun t ->
      let p = Tmk.pid t
      and np = Tmk.nprocs t in
      let chunk = n / np in
      Tmk.validate t
        [ Shm.F64_1.section v2 (p * chunk, ((p + 1) * chunk) - 1, 1) ]
        Tmk.Write_all;
      for i = p * chunk to ((p + 1) * chunk) - 1 do
        Shm.F64_1.set t v2 i (float_of_int (i * i))
      done;
      Tmk.charge t (0.1 *. float_of_int chunk);
      Tmk.barrier t;
      let q = (p + 1) mod np in
      Tmk.validate t
        [ Shm.F64_1.section v2 (q * chunk, ((q + 1) * chunk) - 1, 1) ]
        Tmk.Read;
      let sum = ref 0.0 in
      for i = q * chunk to ((q + 1) * chunk) - 1 do
        sum := !sum +. Shm.F64_1.get t v2 i
      done;
      Tmk.charge t (0.1 *. float_of_int chunk);
      ignore !sum);
  Format.printf "@.with Validate (aggregated, no twins/diffs):@.";
  Format.printf "parallel time: %.0f us@." (Tmk.elapsed sys2);
  Format.printf "%a@." Core.Stats.pp (Tmk.total_stats sys2)

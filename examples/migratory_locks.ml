(* Migratory data under locks: the Integer-Sort pattern from Section 6 of
   the paper, reduced to its essence.

   A shared table of accumulators is divided into per-lock sections; the
   processors visit the sections in a staggered order, each adding its
   private contribution. In the base run-time every visit faults and fetches
   one diff per previous writer — the "diff accumulation" pathology. With
   the compiler-produced [Validate_w_sync(..., READ&WRITE_ALL)] the request
   travels with the lock message, no twins or diffs are made, and one full
   copy supersedes the accumulation.

     dune exec examples/migratory_locks.exe *)

module Tmk = Core.Tmk
module Shm = Core.Shm

let n_slots = 4096 (* 8 pages *)

let run ~optimized =
  let cfg = Core.Config.default in
  let sys = Tmk.make cfg in
  let table = Tmk.Alloc.array sys "table" Tmk.I64 ~dims:[ n_slots ] in
  let np = cfg.Core.Config.nprocs in
  let sec_len = n_slots / np in
  Tmk.run sys (fun t ->
      let p = Tmk.pid t in
      for step = 0 to np - 1 do
        let s = (p + step) mod np in
        let section =
          [ Shm.I64_1.section table (s * sec_len, ((s + 1) * sec_len) - 1, 1) ]
        in
        if optimized then Tmk.validate_w_sync t section Tmk.Read_write_all;
        Tmk.lock_acquire t s;
        for k = s * sec_len to ((s + 1) * sec_len) - 1 do
          Shm.I64_1.set t table k (Shm.I64_1.get t table k + (p + 1))
        done;
        Tmk.charge t (0.2 *. float_of_int sec_len);
        Tmk.lock_release t s
      done;
      Tmk.barrier t;
      (* check: every slot accumulated 1+2+...+np *)
      if p = 0 then begin
        let expect = np * (np + 1) / 2 in
        for k = 0 to n_slots - 1 do
          assert (Shm.I64_1.get t table k = expect)
        done
      end);
  (Tmk.elapsed sys, Tmk.total_stats sys)

let () =
  let bt, bs = run ~optimized:false in
  let ot, os = run ~optimized:true in
  Format.printf "base TreadMarks:     %8.0f us  %a@." bt Core.Stats.pp bs;
  Format.printf "with Validate_w_sync:%8.0f us  %a@." ot Core.Stats.pp os;
  Format.printf
    "@.data reduced %.0f%%, messages reduced %.0f%%, twins %d -> %d@."
    (100.
    *. float_of_int (bs.Core.Stats.bytes - os.Core.Stats.bytes)
    /. float_of_int bs.Core.Stats.bytes)
    (100.
    *. float_of_int (bs.Core.Stats.messages - os.Core.Stats.messages)
    /. float_of_int bs.Core.Stats.messages)
    bs.Core.Stats.twins os.Core.Stats.twins

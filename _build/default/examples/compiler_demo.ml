(* Compiler demo: carries the paper's Jacobi example (Figure 1) through
   regular section analysis and the Section 4.2 transformation, prints the
   result (which should have the shape of the paper's Figure 2: a
   Validate(b[...], WRITE_ALL) after Barrier(1) and Barrier(2) replaced by a
   Push), then executes both versions on the simulated DSM and compares
   execution time, messages and faults. *)

module Access = Dsm_compiler.Access
module Transform = Dsm_compiler.Transform
module Interp = Dsm_compiler.Interp
module Pretty = Dsm_compiler.Pretty
module Programs = Dsm_compiler.Programs
module Stats = Dsm_sim.Stats

let () =
  let nprocs = 8 in
  let cfg = { Dsm_sim.Config.default with nprocs } in
  let prog = Programs.jacobi ~m:256 ~iters:10 in

  Format.printf "=== Original program ===@.%s@.@." (Pretty.program_to_string prog);

  let result = Access.analyze prog ~nprocs in
  Format.printf "=== Access analysis (%s regions) ===@."
    (string_of_int (List.length result.Access.regions));
  List.iter
    (fun r -> Format.printf "%a@." Access.pp_region r)
    result.Access.regions;
  Format.printf "@.";

  let transformed, decisions =
    Transform.transform prog ~nprocs ~opts:Transform.all
  in
  Format.printf "=== Transformed program ===@.%s@.@."
    (Pretty.program_to_string transformed);
  List.iter
    (fun (idx, d) ->
      Format.printf "sync #%d: %s@." idx
        (match d with
        | Transform.Keep -> "kept"
        | Transform.Replaced_by_push _ -> "replaced by Push"
        | Transform.Validated _ -> "Validate inserted after"
        | Transform.Merged_with_sync _ -> "Validate_w_sync inserted before"))
    decisions;
  Format.printf "@.";

  let reference = List.assoc "b" (Interp.run_sequential prog) in
  let check name program =
    let sys, outcome = Interp.execute cfg program in
    let b = List.assoc "b" outcome.Interp.arrays in
    let got = Interp.fetch_array sys b in
    let ok = ref true in
    Array.iteri
      (fun k x -> if abs_float (x -. reference.(k)) > 1e-9 then ok := false)
      got;
    Format.printf
      "%-12s time=%8.0f us  msgs=%6d  segv=%5d  twins=%5d  diffs=%5d  %s@."
      name outcome.Interp.elapsed_us outcome.Interp.stats.Stats.messages
      outcome.Interp.stats.Stats.segv outcome.Interp.stats.Stats.twins
      outcome.Interp.stats.Stats.diffs_created
      (if !ok then "CORRECT" else "WRONG RESULTS");
    outcome.Interp.elapsed_us
  in
  let t_base = check "base" prog in
  let t_opt = check "optimized" transformed in
  Format.printf "@.improvement: %.1f%%@." (100.0 *. (t_base -. t_opt) /. t_base);

  (* The other IR programs, through the same pipeline: *)
  Format.printf "@.=== Other programs through the pipeline ===@.";
  List.iter
    (fun (prog, what) ->
      let transformed, decisions =
        Transform.transform prog ~nprocs ~opts:Transform.all
      in
      ignore transformed;
      let summary =
        List.map
          (fun (idx, d) ->
            Printf.sprintf "#%d:%s" idx
              (match d with
              | Transform.Keep -> "kept"
              | Transform.Replaced_by_push _ -> "push"
              | Transform.Validated _ -> "validate"
              | Transform.Merged_with_sync _ -> "w_sync"))
          decisions
      in
      Format.printf "%-12s %-38s -> %s@." prog.Dsm_compiler.Ir.pname what
        (String.concat " " summary))
    [
      (Programs.transpose ~m:64 ~iters:2, "all-to-all transpose (push twice)");
      (Programs.redblack ~n:128 ~iters:2, "strided sections (no _ALL/push)");
      (Programs.masked ~m:64 ~iters:2, "conditional guard (partial analysis)");
      (Programs.lock_accum ~n:64 ~iters:2, "lock-migratory (Section 4.3 IS)");
    ]

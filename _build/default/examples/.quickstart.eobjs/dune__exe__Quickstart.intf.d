examples/quickstart.mli:

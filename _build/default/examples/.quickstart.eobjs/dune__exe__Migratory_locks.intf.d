examples/migratory_locks.mli:

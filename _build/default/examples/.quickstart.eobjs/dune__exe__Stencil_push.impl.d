examples/stencil_push.ml: Array Core Format

examples/migratory_locks.ml: Core Format

examples/stencil_push.mli:

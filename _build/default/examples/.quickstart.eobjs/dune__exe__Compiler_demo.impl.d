examples/compiler_demo.ml: Array Dsm_compiler Dsm_sim Format List Printf String

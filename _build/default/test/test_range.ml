(* Range: sorted disjoint interval sets — unit tests plus property-based
   comparison against a naive set-of-integers model. *)

module Range = Dsm_rsd.Range

let check = Alcotest.(check (list (pair int int)))

let test_normalize () =
  check "merge overlapping" [ (0, 10) ] (Range.normalize [ (3, 10); (0, 5) ]);
  check "merge adjacent" [ (0, 10) ] (Range.normalize [ (0, 5); (5, 10) ]);
  check "drop empty" [ (1, 2) ] (Range.normalize [ (5, 5); (1, 2); (3, 3) ]);
  check "keep disjoint" [ (0, 1); (3, 4) ] (Range.normalize [ (3, 4); (0, 1) ])

let test_union () =
  check "union" [ (0, 6) ] (Range.union [ (0, 3) ] [ (2, 6) ]);
  check "union disjoint" [ (0, 1); (5, 6) ] (Range.union [ (0, 1) ] [ (5, 6) ])

let test_inter () =
  check "inter" [ (2, 3) ] (Range.inter [ (0, 3) ] [ (2, 6) ]);
  check "inter empty" [] (Range.inter [ (0, 2) ] [ (4, 6) ]);
  check "inter multi"
    [ (1, 2); (4, 5) ]
    (Range.inter [ (0, 2); (4, 8) ] [ (1, 5) ])

let test_diff () =
  check "diff splits" [ (0, 2); (4, 6) ] (Range.diff [ (0, 6) ] [ (2, 4) ]);
  check "diff all" [] (Range.diff [ (2, 4) ] [ (0, 6) ])

let test_queries () =
  Alcotest.(check int) "size" 5 (Range.size [ (0, 2); (4, 7) ]);
  Alcotest.(check bool) "mem" true (Range.mem 5 [ (0, 2); (4, 7) ]);
  Alcotest.(check bool) "not mem" false (Range.mem 3 [ (0, 2); (4, 7) ]);
  Alcotest.(check bool) "covers" true (Range.covers [ (0, 10) ] ~lo:2 ~hi:8);
  Alcotest.(check bool) "covers gap" false
    (Range.covers [ (0, 4); (6, 10) ] ~lo:2 ~hi:8);
  Alcotest.(check bool) "covers empty interval" true
    (Range.covers [] ~lo:5 ~hi:5)

let test_pages () =
  Alcotest.(check (list int))
    "pages" [ 0; 1; 2 ]
    (Range.pages ~page_size:100 [ (50, 250) ]);
  Alcotest.(check (list int))
    "page boundary" [ 0 ]
    (Range.pages ~page_size:100 [ (0, 100) ]);
  check "clip" [ (100, 150) ]
    (Range.clip_to_page ~page_size:100 ~page:1 [ (50, 150) ])

let test_contiguous () =
  Alcotest.(check bool) "empty" true (Range.is_contiguous []);
  Alcotest.(check bool) "one" true (Range.is_contiguous [ (0, 5) ]);
  Alcotest.(check bool) "two" false (Range.is_contiguous [ (0, 1); (3, 4) ])

(* property-based: compare against a set-of-ints model over [0, 64) *)
let gen_range =
  QCheck.Gen.(
    list_size (int_bound 5)
      (map2 (fun a b -> (min a b, max a b)) (int_bound 63) (int_bound 63)))
  |> QCheck.make ~print:(fun l ->
         String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) l))

let model r =
  List.concat_map (fun (lo, hi) -> List.init (max 0 (hi - lo)) (fun k -> lo + k)) r
  |> List.sort_uniq compare

let prop name f = QCheck.Test.make ~count:500 ~name (QCheck.pair gen_range gen_range) f

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop "union = model union" (fun (a, b) ->
          let a = Range.normalize a
          and b = Range.normalize b in
          model (Range.union a b)
          = List.sort_uniq compare (model a @ model b));
      prop "inter = model inter" (fun (a, b) ->
          let a = Range.normalize a
          and b = Range.normalize b in
          model (Range.inter a b)
          = List.filter (fun x -> List.mem x (model b)) (model a));
      prop "diff = model diff" (fun (a, b) ->
          let a = Range.normalize a
          and b = Range.normalize b in
          model (Range.diff a b)
          = List.filter (fun x -> not (List.mem x (model b))) (model a));
      prop "size = model card" (fun (a, _) ->
          let a = Range.normalize a in
          Range.size a = List.length (model a));
      prop "normalize idempotent" (fun (a, _) ->
          let a = Range.normalize a in
          Range.normalize a = a);
      prop "union commutative" (fun (a, b) ->
          let a = Range.normalize a
          and b = Range.normalize b in
          Range.union a b = Range.union b a);
      prop "inter subset of both" (fun (a, b) ->
          let a = Range.normalize a
          and b = Range.normalize b in
          let i = Range.inter a b in
          List.for_all (fun x -> Range.mem x a && Range.mem x b) (model i));
    ]

let tests =
  [
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "inter" `Quick test_inter;
    Alcotest.test_case "diff" `Quick test_diff;
    Alcotest.test_case "queries" `Quick test_queries;
    Alcotest.test_case "pages" `Quick test_pages;
    Alcotest.test_case "contiguous" `Quick test_contiguous;
  ]
  @ qcheck_tests

(* The compiler: linear expressions, symbolic RSDs, the access analysis,
   the Section 4.2 transformation, and end-to-end execution equivalence. *)

module Lin = Dsm_compiler.Lin
module Sym_rsd = Dsm_compiler.Sym_rsd
module Ir = Dsm_compiler.Ir
module Access = Dsm_compiler.Access
module Transform = Dsm_compiler.Transform
module Interp = Dsm_compiler.Interp
module Pretty = Dsm_compiler.Pretty
module Programs = Dsm_compiler.Programs
module Config = Dsm_sim.Config

(* {1 Lin} *)

let lin_str l = Format.asprintf "%a" Lin.pp l

let test_lin_algebra () =
  let x = Lin.var "x"
  and y = Lin.var "y" in
  let e = Lin.add (Lin.scale 2 x) (Lin.offset y 3) in
  Alcotest.(check int) "eval" 14
    (Lin.eval (function "x" -> 4 | _ -> 3) e);
  Alcotest.(check bool) "equal normal forms" true
    (Lin.equal (Lin.add x y) (Lin.add y x));
  Alcotest.(check (option int)) "diff const" (Some 3)
    (Lin.diff_const (Lin.offset x 5) (Lin.offset x 2));
  Alcotest.(check (option int)) "diff not const" None
    (Lin.diff_const x y);
  Alcotest.(check string) "pp" "2*x + y + 3" (lin_str e)

let test_lin_subst () =
  let e = Lin.add (Lin.scale 3 (Lin.var "i")) (Lin.const 1) in
  let s = Lin.subst e "i" (Lin.offset (Lin.var "k") 2) in
  Alcotest.(check int) "subst eval" 22 (Lin.eval (fun _ -> 5) s);
  Alcotest.(check int) "coeff gone" 0 (Lin.coeff_of s "i");
  Alcotest.(check int) "coeff moved" 3 (Lin.coeff_of s "k")

let qcheck_lin =
  let gen =
    QCheck.Gen.(
      map3
        (fun a b c -> (a, b, c))
        (int_range (-5) 5) (int_range (-5) 5) (int_range (-5) 5))
  in
  QCheck.Test.make ~count:300 ~name:"lin eval homomorphic"
    (QCheck.make gen) (fun (a, b, c) ->
      let e =
        Lin.add
          (Lin.scale a (Lin.var "x"))
          (Lin.add (Lin.scale b (Lin.var "y")) (Lin.const c))
      in
      let env = function "x" -> 7 | _ -> -2 in
      Lin.eval env e = (a * 7) + (b * -2) + c)

(* {1 Sym_rsd} *)

let probe = function "M" -> 64 | "begin" -> 9 | "end" -> 16 | _ -> 0

let test_sym_union () =
  (* the Jacobi column union: [begin-1,end-1] u [begin,end] u [begin+1,end+1] *)
  let d v k = (Lin.offset (Lin.var v) k, Lin.offset (Lin.var v) k, 1) in
  ignore d;
  let mk lo hi = Sym_rsd.make [ (lo, hi, 1) ] in
  let b = Lin.var "begin"
  and e = Lin.var "end" in
  let u =
    Sym_rsd.union ~probe
      (Sym_rsd.union ~probe
         (mk (Lin.offset b (-1)) (Lin.offset e (-1)))
         (mk b e))
      (mk (Lin.offset b 1) (Lin.offset e 1))
  in
  Alcotest.(check bool) "exact" true u.Sym_rsd.exact;
  let r = Sym_rsd.eval probe u in
  Alcotest.(check int) "concrete size" (16 + 1 - 9 + 2) (Dsm_rsd.Rsd.size r)

let test_sym_contains () =
  let mk lo hi = Sym_rsd.make [ (Lin.const lo, hi, 1) ] in
  let a = mk 0 (Lin.offset (Lin.var "M") (-1)) in
  let b = mk 1 (Lin.offset (Lin.var "M") (-2)) in
  Alcotest.(check bool) "contains" true (Sym_rsd.contains ~probe a b);
  Alcotest.(check bool) "not contained" false (Sym_rsd.contains ~probe b a)

(* {1 Access analysis on the Jacobi example (Section 4.3)} *)

let nprocs = 4

let find_region regions after =
  List.find (fun (r : Access.region) -> r.Access.after_sync = after) regions

let test_jacobi_analysis () =
  let prog = Programs.jacobi ~m:64 ~iters:3 in
  let res = Access.analyze prog ~nprocs in
  Alcotest.(check int) "two regions" 2 (List.length res.Access.regions);
  Alcotest.(check bool) "cyclic" true res.Access.cyclic;
  (* region after Barrier(1): b {write, write-first} over the own columns *)
  let r1 = find_region res.Access.regions 0 in
  (match r1.Access.summary with
  | [ e ] ->
      Alcotest.(check string) "array" "b" e.Access.arr;
      Alcotest.(check bool) "write" true e.Access.tag.Access.write;
      Alcotest.(check bool) "write-first" true e.Access.tag.Access.write_first;
      Alcotest.(check string) "section"
        "b[0:M - 1, begin:end]"
        (Format.asprintf "%a" (Sym_rsd.pp "b") e.Access.rsd)
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l));
  (* region after Barrier(2): b {read} of [begin-1, end+1] *)
  let r2 = find_region res.Access.regions 1 in
  match r2.Access.summary with
  | [ e ] ->
      Alcotest.(check bool) "read only" true
        (e.Access.tag.Access.read && not e.Access.tag.Access.write);
      Alcotest.(check string) "section"
        "b[0:M - 1, begin - 1:end + 1]"
        (Format.asprintf "%a" (Sym_rsd.pp "b") e.Access.rsd)
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)

let test_jacobi_transform () =
  (* the paper's Figure 2: Barrier(2) becomes a Push, a WRITE_ALL Validate
     follows Barrier(1), and Barrier(1) itself is kept (the anti-dependence
     on b makes its removal unsafe) *)
  let prog = Programs.jacobi ~m:64 ~iters:3 in
  let _, decisions = Transform.transform prog ~nprocs ~opts:Transform.all in
  (match List.assoc 0 decisions with
  | Transform.Validated [ vc ] ->
      Alcotest.(check bool) "WRITE_ALL at Barrier(1)" true
        (vc.Ir.vaccess = Dsm_tmk.Tmk.Write_all)
  | _ -> Alcotest.fail "expected a Validate after Barrier(1)");
  match List.assoc 1 decisions with
  | Transform.Replaced_by_push (pc, _) ->
      Alcotest.(check int) "push reads b" 1 (List.length pc.Ir.pread);
      Alcotest.(check int) "push writes b" 1 (List.length pc.Ir.pwrite)
  | _ -> Alcotest.fail "expected Barrier(2) replaced by Push"

let test_transform_levels () =
  let prog = Programs.jacobi ~m:64 ~iters:3 in
  (* base: untouched *)
  let _, d0 = Transform.transform prog ~nprocs ~opts:Transform.base in
  Alcotest.(check bool) "base keeps everything" true
    (List.for_all (fun (_, d) -> d = Transform.Keep) d0);
  (* aggregation only: consistency-preserving access types *)
  let _, d1 = Transform.transform prog ~nprocs ~opts:Transform.level_aggregate in
  List.iter
    (fun (_, d) ->
      match d with
      | Transform.Validated calls | Transform.Merged_with_sync calls ->
          List.iter
            (fun (c : Ir.vcall) ->
              match c.Ir.vaccess with
              | Dsm_tmk.Tmk.Write_all | Dsm_tmk.Tmk.Read_write_all ->
                  Alcotest.fail "aggregation level must preserve consistency"
              | _ -> ())
            calls
      | Transform.Replaced_by_push _ ->
          Alcotest.fail "no push at aggregation level"
      | Transform.Keep -> ())
    d1

let test_redblack_strided () =
  (* stride-2 sections: exact but not contiguous, so consistency elimination
     must fall back to consistency-preserving validates *)
  let prog = Programs.redblack ~n:64 ~iters:2 in
  let res = Access.analyze prog ~nprocs in
  let r = find_region res.Access.regions 0 in
  (match r.Access.summary with
  | e :: _ ->
      Alcotest.(check bool) "strided dim" true
        (List.exists (fun d -> d.Sym_rsd.stride = 2) e.Access.rsd.Sym_rsd.dims)
  | [] -> Alcotest.fail "no summary");
  let _, decisions =
    Transform.transform prog ~nprocs ~opts:Transform.level_cons_elim
  in
  List.iter
    (fun (_, d) ->
      match d with
      | Transform.Validated calls ->
          List.iter
            (fun (c : Ir.vcall) ->
              match c.Ir.vaccess with
              | Dsm_tmk.Tmk.Write_all | Dsm_tmk.Tmk.Read_write_all ->
                  Alcotest.fail "non-contiguous sections cannot use _ALL"
              | _ -> ())
            calls
      | _ -> ())
    decisions

(* {1 End-to-end equivalence} *)

let cfg = { Config.default with Config.nprocs }

let max_err a b =
  let e = ref 0.0 in
  Array.iteri (fun i x -> e := Float.max !e (abs_float (x -. b.(i)))) a;
  !e

let check_program_all_levels prog shared_name =
  let seq = List.assoc shared_name (Interp.run_sequential prog) in
  List.iter
    (fun (label, opts) ->
      let transformed, _ = Transform.transform prog ~nprocs ~opts in
      let sys, outcome = Interp.execute cfg transformed in
      let got =
        Interp.fetch_array sys (List.assoc shared_name outcome.Interp.arrays)
      in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "%s @ %s" prog.Ir.pname label)
        0.0 (max_err got seq))
    [
      ("base", Transform.base);
      ("aggregate", Transform.level_aggregate);
      ("cons-elim", Transform.level_cons_elim);
      ("sync-merge", Transform.level_sync_merge);
      ("push", Transform.level_push);
    ]

let test_exec_jacobi () =
  check_program_all_levels (Programs.jacobi ~m:48 ~iters:3) "b"

let test_exec_transpose () =
  check_program_all_levels (Programs.transpose ~m:32 ~iters:2) "a"

let test_masked_conditional () =
  (* conditionals make the guarded sections inexact: no WRITE_ALL, no Push *)
  let prog = Programs.masked ~m:64 ~iters:3 in
  let res = Access.analyze prog ~nprocs in
  let all_entries =
    List.concat_map (fun (r : Access.region) -> r.Access.summary) res.Access.regions
  in
  Alcotest.(check bool) "some inexact section" true
    (List.exists (fun (e : Access.summary_entry) -> not e.Access.rsd.Sym_rsd.exact)
       all_entries);
  let _, decisions = Transform.transform prog ~nprocs ~opts:Transform.all in
  List.iter
    (fun (_, d) ->
      match d with
      | Transform.Replaced_by_push _ -> Alcotest.fail "no push under conditionals"
      | Transform.Validated calls | Transform.Merged_with_sync calls ->
          (* _ALL access types may only be attached to exact sections (the
             unconditional copy-back phase legitimately earns a WRITE_ALL;
             the conditional phase must not) *)
          List.iter
            (fun (cl : Ir.vcall) ->
              match cl.Ir.vaccess with
              | Dsm_tmk.Tmk.Write_all | Dsm_tmk.Tmk.Read_write_all ->
                  List.iter
                    (fun (_, srsd) ->
                      Alcotest.(check bool) "_ALL only on exact sections" true
                        srsd.Sym_rsd.exact)
                    cl.Ir.vsections
              | _ -> ())
            calls
      | Transform.Keep -> ())
    decisions;
  check_program_all_levels prog "u"

let test_exec_redblack () =
  check_program_all_levels (Programs.redblack ~n:128 ~iters:3) "u"

let test_lock_accum_validate_at_acquire () =
  (* Section 4.3: "our analysis creates a section for the sub-array and
     issues a Validate when the lock is acquired" *)
  let prog = Programs.lock_accum ~n:64 ~iters:3 in
  let _, decisions =
    Transform.transform prog ~nprocs ~opts:Transform.level_cons_elim
  in
  (* sync #0 is the Lock_acquire *)
  (match List.assoc 0 decisions with
  | Transform.Validated [ vc ] ->
      Alcotest.(check bool) "READ&WRITE_ALL at the acquire" true
        (vc.Ir.vaccess = Dsm_tmk.Tmk.Read_write_all)
  | _ -> Alcotest.fail "expected a Validate after the lock acquire");
  (* every processor increments every slot in every iteration, so the
     analytic result is nprocs * iters (the sequential interpreter is not a
     reference here: this program's work is not partitioned) *)
  List.iter
    (fun (label, opts) ->
      let transformed, _ = Transform.transform prog ~nprocs ~opts in
      let sys, outcome = Interp.execute cfg transformed in
      let got =
        Interp.fetch_array sys (List.assoc "acc" outcome.Interp.arrays)
      in
      Array.iteri
        (fun i x ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "lock_accum @ %s slot %d" label i)
            (float_of_int (nprocs * 3))
            x)
        got)
    [
      ("base", Transform.base);
      ("cons-elim", Transform.level_cons_elim);
      ("sync-merge", Transform.level_sync_merge);
    ]

let test_optimized_is_faster () =
  let prog = Programs.jacobi ~m:64 ~iters:5 in
  let run opts =
    let p, _ = Transform.transform prog ~nprocs ~opts in
    let _, o = Interp.execute cfg p in
    o.Interp.elapsed_us
  in
  Alcotest.(check bool) "optimization helps" true
    (run Transform.all < run Transform.base)

let test_pretty_roundtrip_mentions () =
  let prog = Programs.jacobi ~m:64 ~iters:3 in
  let t, _ = Transform.transform prog ~nprocs ~opts:Transform.all in
  let s = Pretty.program_to_string t in
  let contains hay needle =
    let nh = String.length hay
    and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " printed") true (contains s needle))
    [ "WRITE_ALL"; "call Push"; "call Barrier(1)" ]

(* {1 Property: analysis soundness}

   Random single-array loop nests: every element the program actually
   accesses must lie inside the region summary. *)

let gen_prog =
  QCheck.Gen.(
    let idx =
      map2
        (fun c off ->
          if c = 0 then Lin.const (abs off mod 8)
          else Lin.offset (Lin.var "i") (off mod 4))
        (int_bound 1) (int_range 0 16)
    in
    map2
      (fun i1 i2 -> (i1, i2))
      idx idx)

let qcheck_soundness =
  QCheck.Test.make ~count:200 ~name:"access analysis covers all accesses"
    (QCheck.make gen_prog) (fun (widx, ridx) ->
      let m = 32 in
      let prog =
        {
          Ir.pname = "rand";
          params = [ ("M", m) ];
          arrays = [ ("a", [ Lin.const m ]) ];
          privates = [];
          proc_bindings = (fun ~nprocs:_ ~p -> [ ("p", p) ]);
          body =
            [
              Ir.For
                {
                  ivar = "k";
                  lo = Lin.const 1;
                  hi = Lin.const 2;
                  body =
                    [
                      Ir.For
                        {
                          ivar = "i";
                          lo = Lin.const 4;
                          hi = Lin.const 20;
                          body =
                            [
                              Ir.Assign
                                ( { Ir.aname = "a"; aidx = [ widx ] },
                                  Ir.Bin
                                    ( Ir.Add,
                                      Ir.Load { Ir.aname = "a"; aidx = [ ridx ] },
                                      Ir.Fconst 1.0 ) );
                            ];
                        };
                      Ir.Barrier 1;
                    ];
                };
            ];
        }
      in
      let res = Access.analyze prog ~nprocs:1 in
      match res.Access.regions with
      | [ r ] -> (
          match r.Access.summary with
          | [ e ] ->
              let rsd = Sym_rsd.eval (fun v -> List.assoc v prog.Ir.params) e.Access.rsd in
              let mem idx =
                Dsm_rsd.Rsd.mem rsd [| idx |]
                || not rsd.Dsm_rsd.Rsd.exact
              in
              let covered = ref true in
              for i = 4 to 20 do
                let wv = Lin.eval (function "i" -> i | v -> List.assoc v prog.Ir.params) widx in
                let rv = Lin.eval (function "i" -> i | v -> List.assoc v prog.Ir.params) ridx in
                if not (mem wv && mem rv) then covered := false
              done;
              !covered
          | _ -> false)
      | _ -> false)

let tests =
  [
    Alcotest.test_case "lin algebra" `Quick test_lin_algebra;
    Alcotest.test_case "lin subst" `Quick test_lin_subst;
    Alcotest.test_case "sym union (jacobi columns)" `Quick test_sym_union;
    Alcotest.test_case "sym contains" `Quick test_sym_contains;
    Alcotest.test_case "jacobi analysis = Section 4.3" `Quick test_jacobi_analysis;
    Alcotest.test_case "jacobi transform = Figure 2" `Quick test_jacobi_transform;
    Alcotest.test_case "transform levels" `Quick test_transform_levels;
    Alcotest.test_case "redblack strided sections" `Quick test_redblack_strided;
    Alcotest.test_case "exec jacobi (all levels)" `Quick test_exec_jacobi;
    Alcotest.test_case "exec transpose (all levels)" `Quick test_exec_transpose;
    Alcotest.test_case "exec redblack (all levels)" `Quick test_exec_redblack;
    Alcotest.test_case "masked conditional (partial analysis)" `Quick
      test_masked_conditional;
    Alcotest.test_case "lock_accum: Validate at acquire (Section 4.3)" `Quick
      test_lock_accum_validate_at_acquire;
    Alcotest.test_case "optimized faster" `Quick test_optimized_is_faster;
    Alcotest.test_case "pretty printing" `Quick test_pretty_roundtrip_mentions;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ qcheck_lin; qcheck_soundness ]

(* Regular section descriptors: algebra vs an enumerated-point model. *)

module Rsd = Dsm_rsd.Rsd

let mk l = Rsd.make l

let test_size () =
  Alcotest.(check int) "1d" 5 (Rsd.size (mk [ (0, 4, 1) ]));
  Alcotest.(check int) "strided" 3 (Rsd.size (mk [ (0, 4, 2) ]));
  Alcotest.(check int) "2d" 15 (Rsd.size (mk [ (0, 4, 1); (1, 3, 1) ]));
  Alcotest.(check int) "empty" 0 (Rsd.size (mk [ (3, 2, 1) ]))

let test_mem () =
  let r = mk [ (0, 8, 2); (1, 5, 1) ] in
  Alcotest.(check bool) "in" true (Rsd.mem r [| 4; 3 |]);
  Alcotest.(check bool) "off stride" false (Rsd.mem r [| 3; 3 |]);
  Alcotest.(check bool) "out of range" false (Rsd.mem r [| 4; 6 |])

let test_inter () =
  let a = mk [ (0, 10, 2) ]
  and b = mk [ (4, 20, 2) ] in
  let i = Rsd.inter a b in
  Alcotest.(check int) "inter strided size" 4 (Rsd.size i);
  Alcotest.(check bool) "inter exact" true i.Rsd.exact;
  (* incompatible phases: empty *)
  let c = mk [ (1, 11, 2) ] in
  Alcotest.(check int) "phase mismatch" 0 (Rsd.size (Rsd.inter a c))

let test_union_exact () =
  (* the Jacobi pattern: column ranges differing by constants merge exactly *)
  let a = mk [ (1, 6, 1) ]
  and b = mk [ (0, 5, 1) ] in
  let u = Rsd.union a b in
  Alcotest.(check bool) "exact" true u.Rsd.exact;
  Alcotest.(check int) "size" 7 (Rsd.size u);
  (* disjoint pieces: inexact bounding *)
  let c = mk [ (10, 12, 1) ] in
  let u2 = Rsd.union a c in
  Alcotest.(check bool) "bounding inexact" false u2.Rsd.exact

let test_union_2d () =
  (* [1,M-2:b,e] u [3,M:b,e] u [2,M-1:b-1,e-1] u [2,M-1:b+1,e+1] as in
     Section 4.3 *)
  let m = 16
  and b = 4
  and e = 7 in
  let u =
    List.fold_left Rsd.union
      (mk [ (0, m - 3, 1); (b, e, 1) ])
      [
        mk [ (2, m - 1, 1); (b, e, 1) ];
        mk [ (1, m - 2, 1); (b - 1, e - 1, 1) ];
        mk [ (1, m - 2, 1); (b + 1, e + 1, 1) ];
      ]
  in
  Alcotest.(check int) "rows full" (m * (e - b + 3)) (Rsd.size u)

let test_contains () =
  let a = mk [ (0, 10, 1); (0, 10, 1) ] in
  Alcotest.(check bool) "contains" true
    (Rsd.contains a (mk [ (2, 8, 2); (3, 5, 1) ]));
  Alcotest.(check bool) "not contains" false
    (Rsd.contains a (mk [ (2, 12, 1); (3, 5, 1) ]))

(* qcheck: 1-d descriptors vs enumeration *)
let gen_dim =
  QCheck.Gen.(
    map3
      (fun lo len st -> (lo, lo + len, 1 + st))
      (int_bound 20) (int_bound 20) (int_bound 3))

let enum (lo, hi, st) =
  let rec go i = if i > hi then [] else i :: go (i + st) in
  go lo

let arb2 =
  QCheck.make
    ~print:(fun ((a, b, c), (d, e, f)) ->
      Printf.sprintf "(%d,%d,%d) (%d,%d,%d)" a b c d e f)
    QCheck.Gen.(pair gen_dim gen_dim)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:500 ~name:"1d size = enum length"
        (QCheck.make gen_dim) (fun d -> Rsd.size (mk [ d ]) = List.length (enum d));
      QCheck.Test.make ~count:500 ~name:"inter sound (subset of both)" arb2
        (fun (d1, d2) ->
          let i = Rsd.inter (mk [ d1 ]) (mk [ d2 ]) in
          (not i.Rsd.exact)
          || List.for_all
               (fun x -> List.mem x (enum d1) && List.mem x (enum d2))
               (match i.Rsd.dims.(0) with
               | { Rsd.lo; hi; stride } -> enum (lo, hi, stride)));
      QCheck.Test.make ~count:500 ~name:"exact inter complete" arb2
        (fun (d1, d2) ->
          let i = Rsd.inter (mk [ d1 ]) (mk [ d2 ]) in
          (not i.Rsd.exact)
          || List.for_all
               (fun x -> Rsd.mem i [| x |])
               (List.filter (fun x -> List.mem x (enum d2)) (enum d1)));
      QCheck.Test.make ~count:500 ~name:"union covers both" arb2
        (fun (d1, d2) ->
          let u = Rsd.union (mk [ d1 ]) (mk [ d2 ]) in
          List.for_all
            (fun x -> Rsd.mem u [| x |])
            (enum d1 @ enum d2));
      QCheck.Test.make ~count:500 ~name:"exact union is precise" arb2
        (fun (d1, d2) ->
          let u = Rsd.union (mk [ d1 ]) (mk [ d2 ]) in
          (not u.Rsd.exact)
          ||
          let pts = List.sort_uniq compare (enum d1 @ enum d2) in
          Rsd.size u = List.length pts);
      QCheck.Test.make ~count:500 ~name:"contains transitive with mem" arb2
        (fun (d1, d2) ->
          let a = mk [ d1 ]
          and b = mk [ d2 ] in
          (not (Rsd.contains a b))
          || List.for_all (fun x -> Rsd.mem a [| x |]) (enum d2));
    ]

let tests =
  [
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "mem" `Quick test_mem;
    Alcotest.test_case "inter" `Quick test_inter;
    Alcotest.test_case "union exactness" `Quick test_union_exact;
    Alcotest.test_case "union 2d jacobi" `Quick test_union_2d;
    Alcotest.test_case "contains" `Quick test_contains;
  ]
  @ qcheck_tests

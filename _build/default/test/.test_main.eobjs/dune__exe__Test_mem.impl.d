test/test_mem.ml: Alcotest Bytes Char Dsm_mem Dsm_rsd List QCheck QCheck_alcotest

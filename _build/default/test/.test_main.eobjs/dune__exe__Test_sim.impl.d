test/test_sim.ml: Alcotest Array Dsm_sim Dsm_tmk List QCheck QCheck_alcotest

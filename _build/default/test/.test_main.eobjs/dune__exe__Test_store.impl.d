test/test_store.ml: Alcotest Bytes Dsm_mem Dsm_tmk List

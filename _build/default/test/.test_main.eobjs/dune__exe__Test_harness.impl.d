test/test_harness.ml: Alcotest Dsm_apps Dsm_harness Dsm_sim Format List

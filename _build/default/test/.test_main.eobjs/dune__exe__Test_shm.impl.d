test/test_shm.ml: Alcotest Dsm_rsd Dsm_sim Dsm_tmk

test/test_props.ml: Alcotest Array Dsm_sim Dsm_tmk List Printf QCheck QCheck_alcotest String

test/test_main.ml: Alcotest Test_apps Test_compiler Test_harness Test_mem Test_mp Test_props Test_range Test_rsd Test_shm Test_sim Test_store Test_tmk

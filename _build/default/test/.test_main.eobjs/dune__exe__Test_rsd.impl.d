test/test_rsd.ml: Alcotest Array Dsm_rsd List Printf QCheck QCheck_alcotest

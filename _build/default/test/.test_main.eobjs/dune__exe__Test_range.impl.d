test/test_range.ml: Alcotest Dsm_rsd List Printf QCheck QCheck_alcotest String

test/test_compiler.ml: Alcotest Array Dsm_compiler Dsm_rsd Dsm_sim Dsm_tmk Float Format List Printf QCheck QCheck_alcotest String

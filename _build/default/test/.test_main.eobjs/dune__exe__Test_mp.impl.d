test/test_mp.ml: Alcotest Array Dsm_hpf Dsm_mp Dsm_sim List Printf

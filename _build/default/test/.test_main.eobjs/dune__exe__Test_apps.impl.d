test/test_apps.ml: Alcotest Dsm_apps Dsm_sim List Printf

test/test_tmk.ml: Alcotest Array Dsm_sim Dsm_tmk Printf

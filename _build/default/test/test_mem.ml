(* Diffs, the address space, sections and page tables. *)

module Diff = Dsm_mem.Diff
module Addr_space = Dsm_mem.Addr_space
module Page_table = Dsm_mem.Page_table
module Section = Dsm_rsd.Section
module Rsd = Dsm_rsd.Rsd
module Range = Dsm_rsd.Range

let page_size = 256

let test_diff_roundtrip () =
  let twin = Bytes.init page_size (fun i -> Char.chr (i mod 251)) in
  let current = Bytes.copy twin in
  Bytes.set current 10 'x';
  Bytes.set current 100 'y';
  Bytes.set current 101 'z';
  let d = Diff.create ~twin ~current in
  let dst = Bytes.copy twin in
  Diff.apply d dst;
  Alcotest.(check bool) "roundtrip" true (Bytes.equal dst current);
  Alcotest.(check bool) "nonempty" false (Diff.is_empty d)

let test_diff_word_granularity () =
  let twin = Bytes.make page_size 'a' in
  let current = Bytes.copy twin in
  Bytes.set current 17 'b' (* one byte changed -> whole 4-byte word in diff *);
  let d = Diff.create ~twin ~current in
  Alcotest.(check int) "word granularity" 4 (Diff.size_bytes d)

let test_diff_empty () =
  let twin = Bytes.make page_size 'q' in
  let d = Diff.create ~twin ~current:(Bytes.copy twin) in
  Alcotest.(check bool) "empty" true (Diff.is_empty d);
  Alcotest.(check int) "no bytes" 0 (Diff.size_bytes d)

let test_diff_full_and_range () =
  let page = Bytes.init page_size (fun i -> Char.chr (i mod 256)) in
  let f = Diff.full page in
  Alcotest.(check bool) "covers page" true (Diff.covers_page f ~page_size);
  Alcotest.(check int) "full size" page_size (Diff.size_bytes f);
  let r = Diff.of_range page ~off:16 ~len:32 in
  Alcotest.(check bool) "partial not covering" false
    (Diff.covers_page r ~page_size);
  let dst = Bytes.make page_size '\000' in
  Diff.apply r dst;
  Alcotest.(check char) "inside" (Bytes.get page 20) (Bytes.get dst 20);
  Alcotest.(check char) "outside untouched" '\000' (Bytes.get dst 8)

let test_diff_merge () =
  let base = Bytes.make page_size '\000' in
  let p1 = Bytes.copy base in
  Bytes.set p1 4 'a';
  let p2 = Bytes.copy base in
  Bytes.set p2 4 'b';
  Bytes.set p2 8 'c';
  let d1 = Diff.create ~twin:base ~current:p1 in
  let d2 = Diff.create ~twin:base ~current:p2 in
  let m = Diff.merge d1 d2 ~page_size in
  let dst = Bytes.copy base in
  Diff.apply m dst;
  Alcotest.(check char) "newer wins" 'b' (Bytes.get dst 4);
  Alcotest.(check char) "union" 'c' (Bytes.get dst 8)

(* qcheck: random mutations -> create/apply reconstructs *)
let qcheck_diff =
  let gen =
    QCheck.Gen.(list_size (int_bound 30) (pair (int_bound (page_size - 1)) char))
  in
  QCheck.Test.make ~count:300
    ~name:"diff create/apply reconstructs arbitrary mutations"
    (QCheck.make gen) (fun muts ->
      let twin = Bytes.init page_size (fun i -> Char.chr (i mod 199)) in
      let current = Bytes.copy twin in
      List.iter (fun (off, c) -> Bytes.set current off c) muts;
      let dst = Bytes.copy twin in
      Diff.apply (Diff.create ~twin ~current) dst;
      Bytes.equal dst current)

let qcheck_merge =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_bound 20) (pair (int_bound (page_size - 1)) char))
        (list_size (int_bound 20) (pair (int_bound (page_size - 1)) char)))
  in
  QCheck.Test.make ~count:300 ~name:"merge = apply older then newer"
    (QCheck.make gen) (fun (m1, m2) ->
      let base = Bytes.init page_size (fun i -> Char.chr (i mod 97)) in
      let c1 = Bytes.copy base in
      List.iter (fun (o, c) -> Bytes.set c1 o c) m1;
      let c2 = Bytes.copy base in
      List.iter (fun (o, c) -> Bytes.set c2 o c) m2;
      let d1 = Diff.create ~twin:base ~current:c1 in
      let d2 = Diff.create ~twin:base ~current:c2 in
      let seq = Bytes.copy base in
      Diff.apply d1 seq;
      Diff.apply d2 seq;
      let merged = Bytes.copy base in
      Diff.apply (Diff.merge d1 d2 ~page_size) merged;
      Bytes.equal seq merged)

let test_addr_space () =
  let sp = Addr_space.create ~page_size:4096 in
  let a = Addr_space.alloc sp ~name:"a" ~bytes:100 () in
  let b = Addr_space.alloc sp ~name:"b" ~bytes:100 () in
  Alcotest.(check int) "first at 0" 0 a;
  Alcotest.(check bool) "8-aligned" true (b mod 8 = 0);
  Alcotest.(check bool) "disjoint" true (b >= a + 100);
  let c = Addr_space.alloc sp ~name:"c" ~page_align:true ~bytes:10 () in
  Alcotest.(check int) "page aligned" 0 (c mod 4096);
  Alcotest.(check bool) "pages counted" true (Addr_space.n_pages sp >= 2)

let test_array_layout () =
  let sp = Addr_space.create ~page_size:4096 in
  let info = Addr_space.alloc_array sp ~name:"m" ~elem_size:8 [| 10; 5 |] in
  (* column-major: first index contiguous *)
  Alcotest.(check int) "addr (0,0)" info.Section.base
    (Section.addr_of_index info [| 0; 0 |]);
  Alcotest.(check int) "addr (1,0)" (info.Section.base + 8)
    (Section.addr_of_index info [| 1; 0 |]);
  Alcotest.(check int) "addr (0,1)" (info.Section.base + 80)
    (Section.addr_of_index info [| 0; 1 |])

let test_section_ranges () =
  let sp = Addr_space.create ~page_size:4096 in
  let info = Addr_space.alloc_array sp ~name:"m" ~elem_size:8 [| 16; 16 |] in
  (* whole columns merge into one contiguous run *)
  let s = Section.make info (Rsd.make [ (0, 15, 1); (2, 4, 1) ]) in
  let r = Section.ranges s in
  Alcotest.(check bool) "columns merge" true (Range.is_contiguous r);
  Alcotest.(check int) "bytes" (16 * 3 * 8) (Range.size r);
  (* a row is strided: 16 separate element runs *)
  let row = Section.make info (Rsd.make [ (3, 3, 1); (0, 15, 1) ]) in
  Alcotest.(check int) "row runs" 16 (List.length (Section.ranges row));
  Alcotest.(check bool) "row not contiguous" false (Section.is_contiguous row)

let test_section_inter () =
  let sp = Addr_space.create ~page_size:4096 in
  let info = Addr_space.alloc_array sp ~name:"m" ~elem_size:8 [| 8; 8 |] in
  let a = Section.make info (Rsd.make [ (0, 7, 1); (0, 3, 1) ]) in
  let b = Section.make info (Rsd.make [ (0, 7, 1); (2, 5, 1) ]) in
  Alcotest.(check int) "overlap bytes" (8 * 2 * 8)
    (Range.size (Section.inter_ranges a b))

let test_page_table () =
  let pt = Page_table.create ~page_size:128 in
  let pg = Page_table.get pt 5 in
  Alcotest.(check bool) "starts read-only" true
    (pg.Page_table.prot = Page_table.Read_only);
  Alcotest.(check bool) "zeroed" true
    (Bytes.for_all (fun c -> c = '\000') pg.Page_table.data);
  Alcotest.(check bool) "find existing" true (Page_table.find pt 5 <> None);
  Alcotest.(check bool) "find missing" true (Page_table.find pt 9999 = None);
  Page_table.make_twin pg;
  Alcotest.(check bool) "twin made" true (pg.Page_table.twin <> None);
  Bytes.set pg.Page_table.data 0 'x';
  (match pg.Page_table.twin with
  | Some twin ->
      Alcotest.(check char) "twin unchanged" '\000' (Bytes.get twin 0)
  | None -> Alcotest.fail "twin");
  Page_table.drop_twin pg;
  Alcotest.(check bool) "twin dropped" true (pg.Page_table.twin = None)

let tests =
  [
    Alcotest.test_case "diff roundtrip" `Quick test_diff_roundtrip;
    Alcotest.test_case "diff word granularity" `Quick test_diff_word_granularity;
    Alcotest.test_case "diff empty" `Quick test_diff_empty;
    Alcotest.test_case "diff full/range" `Quick test_diff_full_and_range;
    Alcotest.test_case "diff merge" `Quick test_diff_merge;
    Alcotest.test_case "addr space" `Quick test_addr_space;
    Alcotest.test_case "array layout" `Quick test_array_layout;
    Alcotest.test_case "section ranges" `Quick test_section_ranges;
    Alcotest.test_case "section inter" `Quick test_section_inter;
    Alcotest.test_case "page table" `Quick test_page_table;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ qcheck_diff; qcheck_merge ]

(* The experiment harness and the ablation switches. *)

module Runset = Dsm_harness.Runset
module Experiments = Dsm_harness.Experiments
module Config = Dsm_sim.Config
open Dsm_apps.App_common

let null =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let cfg4 = { Config.default with Config.nprocs = 4 }

let test_runset_shape () =
  let apps = Runset.all cfg4 in
  Alcotest.(check int) "12 rows (6 apps x 2 sizes)" 12 (List.length apps);
  let names = List.map (fun (a : Runset.sized_app) -> a.Runset.app_name) apps in
  List.iter
    (fun n -> Alcotest.(check bool) n true (List.mem n names))
    [ "Jacobi"; "3D-FFT"; "Shallow"; "IS"; "Gauss"; "MGS" ];
  let is_rows =
    List.filter (fun (a : Runset.sized_app) -> a.Runset.app_name = "IS") apps
  in
  List.iter
    (fun (a : Runset.sized_app) ->
      Alcotest.(check bool) "IS has no xhpf" false a.Runset.has_xhpf;
      Alcotest.(check bool) "IS xhpf run is None" true
        (a.Runset.run Runset.Xhpf = None))
    is_rows

let test_run_caching () =
  let apps = Runset.all cfg4 in
  let jac =
    List.find
      (fun (a : Runset.sized_app) ->
        a.Runset.app_name = "Jacobi" && a.Runset.size_label = "small")
      apps
  in
  let r1 = Runset.base jac
  and r2 = Runset.base jac in
  Alcotest.(check bool) "memoized (same result)" true (r1 == r2)

let test_best_opt_beats_base () =
  let apps = Runset.all cfg4 in
  List.iter
    (fun (a : Runset.sized_app) ->
      if a.Runset.size_label = "small" then begin
        let b = Runset.base a
        and o = Runset.best_opt a in
        Alcotest.(check bool)
          (a.Runset.app_name ^ ": optimization does not hurt")
          true
          (o.time_us <= b.time_us)
      end)
    apps

let test_micro_prints () = Experiments.micro null Config.default

let test_ablation_supersede () =
  (* turning supersede pruning off must increase IS's data volume *)
  let on = Dsm_apps.Is.run_tmk cfg4 Dsm_apps.Is.small ~level:Cons_elim ~async:true in
  let off =
    Dsm_apps.Is.run_tmk
      { cfg4 with Config.enable_supersede = false }
      Dsm_apps.Is.small ~level:Cons_elim ~async:true
  in
  Alcotest.(check (float 1e-6)) "still correct" 0.0 off.max_err;
  Alcotest.(check bool) "more data without pruning" true
    (off.stats.Dsm_sim.Stats.bytes > on.stats.Dsm_sim.Stats.bytes)

let test_ablation_bcast () =
  (* without broadcast detection, no broadcasts happen and results hold *)
  let off =
    Dsm_apps.Gauss.run_tmk
      { cfg4 with Config.enable_bcast = false }
      Dsm_apps.Gauss.small ~level:Sync_merge ~async:false
  in
  Alcotest.(check (float 1e-6)) "still correct" 0.0 off.max_err;
  Alcotest.(check int) "no broadcasts" 0 off.stats.Dsm_sim.Stats.broadcasts

let test_ablation_queueing () =
  (* disabling hot-spot queueing only changes time, never results *)
  let off =
    Dsm_apps.Mgs.run_tmk
      { cfg4 with Config.enable_hotspot_queueing = false }
      Dsm_apps.Mgs.small ~level:Base ~async:false
  in
  Alcotest.(check (float 1e-6)) "still correct" 0.0 off.max_err

let test_determinism () =
  (* identical runs produce identical virtual times and statistics *)
  let r1 = Dsm_apps.Jacobi.run_tmk cfg4 Dsm_apps.Jacobi.small ~level:Push_opt ~async:true in
  let r2 = Dsm_apps.Jacobi.run_tmk cfg4 Dsm_apps.Jacobi.small ~level:Push_opt ~async:true in
  Alcotest.(check (float 0.0)) "same time" r1.time_us r2.time_us;
  Alcotest.(check int) "same messages" r1.stats.Dsm_sim.Stats.messages
    r2.stats.Dsm_sim.Stats.messages;
  Alcotest.(check int) "same bytes" r1.stats.Dsm_sim.Stats.bytes
    r2.stats.Dsm_sim.Stats.bytes

let tests =
  [
    Alcotest.test_case "runset shape" `Slow test_runset_shape;
    Alcotest.test_case "run caching" `Slow test_run_caching;
    Alcotest.test_case "best opt beats base" `Slow test_best_opt_beats_base;
    Alcotest.test_case "micro experiment prints" `Quick test_micro_prints;
    Alcotest.test_case "ablation: supersede" `Slow test_ablation_supersede;
    Alcotest.test_case "ablation: broadcast" `Slow test_ablation_bcast;
    Alcotest.test_case "ablation: queueing" `Slow test_ablation_queueing;
    Alcotest.test_case "determinism" `Slow test_determinism;
  ]

lib/tmk/sync_ops.mli: Types

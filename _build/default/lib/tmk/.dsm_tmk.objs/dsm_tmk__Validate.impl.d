lib/tmk/validate.ml: Array Bytes Diff_store Dsm_mem Dsm_rsd Dsm_sim Hashtbl List Protocol Types Vc

lib/tmk/protocol.ml: Array Diff_store Dsm_mem Dsm_rsd Dsm_sim Float Format Hashtbl List Option Printf String Sys Types Vc

lib/tmk/diff_store.mli: Dsm_mem

lib/tmk/tmk.ml: Array Diff_store Dsm_mem Dsm_rsd Dsm_sim Hashtbl Shm Sync_ops Types Validate Vc

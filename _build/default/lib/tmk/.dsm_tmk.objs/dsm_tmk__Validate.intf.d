lib/tmk/validate.mli: Dsm_rsd Types

lib/tmk/tmk.mli: Dsm_rsd Dsm_sim Shm Types

lib/tmk/vc.mli: Format

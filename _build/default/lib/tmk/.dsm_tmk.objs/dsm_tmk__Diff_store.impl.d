lib/tmk/diff_store.ml: Array Dsm_mem Hashtbl List Option

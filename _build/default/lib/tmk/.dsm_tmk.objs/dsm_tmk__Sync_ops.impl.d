lib/tmk/sync_ops.ml: Array Diff_store Dsm_mem Dsm_rsd Dsm_sim Float Hashtbl List Option Protocol Types Vc

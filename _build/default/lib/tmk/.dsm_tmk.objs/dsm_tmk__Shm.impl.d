lib/tmk/shm.ml: Array Bytes Dsm_mem Dsm_rsd Int32 Int64 Protocol Types

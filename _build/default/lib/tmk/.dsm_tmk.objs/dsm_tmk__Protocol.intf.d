lib/tmk/protocol.mli: Dsm_rsd Hashtbl Types Vc

lib/tmk/shm.mli: Dsm_mem Dsm_rsd Types

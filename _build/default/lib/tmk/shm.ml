(* Typed access to the simulated shared segment.

   This is the load/store interface of the DSM: each access consults the
   page protection bits and enters the protocol's fault handlers exactly
   where a hardware MMU would deliver SIGSEGV. Elements are 4- or 8-byte
   aligned, and the page size is a multiple of 8, so no element straddles a
   page boundary. *)

open Types
module Page_table = Dsm_mem.Page_table
module Section = Dsm_rsd.Section

let[@inline] page_for_read t addr =
  let st = state t in
  let page = addr / t.sys.page_size in
  let pg = Page_table.get st.pt page in
  match pg.Page_table.prot with
  | Page_table.No_access ->
      Protocol.read_fault t.sys t.p page;
      Page_table.get st.pt page
  | Page_table.Read_only | Page_table.Read_write -> pg

let[@inline] page_for_write t addr =
  let st = state t in
  let page = addr / t.sys.page_size in
  let pg = Page_table.get st.pt page in
  match pg.Page_table.prot with
  | Page_table.Read_write -> pg
  | Page_table.No_access | Page_table.Read_only ->
      Protocol.write_fault t.sys t.p page;
      Page_table.get st.pt page

let get_f64 t addr =
  let pg = page_for_read t addr in
  Int64.float_of_bits
    (Bytes.get_int64_le pg.Page_table.data (addr mod t.sys.page_size))

let set_f64 t addr v =
  let pg = page_for_write t addr in
  Bytes.set_int64_le pg.Page_table.data
    (addr mod t.sys.page_size)
    (Int64.bits_of_float v)

let get_i64 t addr =
  let pg = page_for_read t addr in
  Bytes.get_int64_le pg.Page_table.data (addr mod t.sys.page_size)
  |> Int64.to_int

let set_i64 t addr v =
  let pg = page_for_write t addr in
  Bytes.set_int64_le pg.Page_table.data
    (addr mod t.sys.page_size)
    (Int64.of_int v)

let get_i32 t addr =
  let pg = page_for_read t addr in
  Bytes.get_int32_le pg.Page_table.data (addr mod t.sys.page_size)
  |> Int32.to_int

let set_i32 t addr v =
  let pg = page_for_write t addr in
  Bytes.set_int32_le pg.Page_table.data
    (addr mod t.sys.page_size)
    (Int32.of_int v)

(* {1 Array views}

   Thin wrappers computing byte addresses from indices (column-major, as in
   the Fortran originals: the first index is contiguous). *)

module F64_1 = struct
  type t = Section.array_info

  let[@inline] addr (a : t) i = a.Section.base + (8 * i)
  let get tmk a i = get_f64 tmk (addr a i)
  let set tmk a i v = set_f64 tmk (addr a i) v
  let length (a : t) = a.Section.extents.(0)

  let section (a : t) (lo, hi, st) =
    Section.make a (Dsm_rsd.Rsd.make [ (lo, hi, st) ])
end

module F64_2 = struct
  type t = Section.array_info

  let[@inline] addr (a : t) i j =
    a.Section.base + (8 * (i + (a.Section.extents.(0) * j)))

  let get tmk a i j = get_f64 tmk (addr a i j)
  let set tmk a i j v = set_f64 tmk (addr a i j) v

  (* read-modify-write with a single page lookup *)
  let rmw tmk a i j f =
    let ad = addr a i j in
    let pg = page_for_write tmk ad in
    let off = ad mod tmk.sys.page_size in
    let x = Int64.float_of_bits (Bytes.get_int64_le pg.Page_table.data off) in
    Bytes.set_int64_le pg.Page_table.data off (Int64.bits_of_float (f x))
  let dim0 (a : t) = a.Section.extents.(0)
  let dim1 (a : t) = a.Section.extents.(1)

  let section (a : t) (lo0, hi0, st0) (lo1, hi1, st1) =
    Section.make a (Dsm_rsd.Rsd.make [ (lo0, hi0, st0); (lo1, hi1, st1) ])
end

module F64_3 = struct
  type t = Section.array_info

  let[@inline] addr (a : t) i j k =
    let e = a.Section.extents in
    a.Section.base + (8 * (i + (e.(0) * (j + (e.(1) * k)))))

  let get tmk a i j k = get_f64 tmk (addr a i j k)
  let set tmk a i j k v = set_f64 tmk (addr a i j k) v

  let section (a : t) d0 d1 d2 =
    let tr (lo, hi, st) = (lo, hi, st) in
    Section.make a (Dsm_rsd.Rsd.make [ tr d0; tr d1; tr d2 ])
end

module I64_1 = struct
  type t = Section.array_info

  let[@inline] addr (a : t) i = a.Section.base + (8 * i)
  let get tmk a i = get_i64 tmk (addr a i)
  let set tmk a i v = set_i64 tmk (addr a i) v
  let length (a : t) = a.Section.extents.(0)

  let section (a : t) (lo, hi, st) =
    Section.make a (Dsm_rsd.Rsd.make [ (lo, hi, st) ])
end

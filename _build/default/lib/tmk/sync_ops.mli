(** Barriers and locks, with the paper's piggy-backing extensions.

    Timing is calibrated against Section 5 of the paper: with the default
    {!Dsm_sim.Config}, an 8-processor barrier costs a client 893 µs and a
    free remote lock acquisition 427 µs.

    {b Barrier}: arrival messages carry the processor's new write notices
    (and any pending [Validate_w_sync] section requests) to the master;
    the master merges and redistributes on the departure messages. Pending
    section requests are answered at departure with the diffs each
    processor holds — by a broadcast when the run-time detects that all
    requesters want the same data from a single producer (Section 3.2.1).

    {b Lock}: requests go to the lock's static manager and are forwarded to
    the holder; the grant message carries the write notices of the
    releaser's happens-before history and, for a piggy-backed section
    request, the diffs the releaser holds locally. Queued requests are
    granted in virtual-time arrival order. *)

val wsync_req_bytes : Types.system -> Types.wsync_req list -> int
(** Wire size of piggy-backed section requests (ranges + per-page
    timestamps). *)

val wsync_req_pages : Types.system -> Types.wsync_req list -> int list

val barrier : Types.t -> unit
(** Release, arrive, wait for everyone, depart: pull the merged write
    notices, roll back partially pushed pages (full consistency is restored
    at every global synchronization, Section 3.1.2), and process
    piggy-backed section requests. *)

val get_lock : Types.system -> int -> Types.lock

val lock_acquire : Types.t -> int -> unit
(** Acquire the lock, receiving the releaser's happens-before write notices
    on the grant; consumes any pending [Validate_w_sync] requests. *)

val lock_release : Types.t -> int -> unit
(** Release locally (no message); grant to the earliest queued requester,
    if any.
    @raise Invalid_argument if the caller does not hold the lock. *)

(** Global repository of diffs and write notices.

    The store holds, per (writer, page), the list of intervals in which the
    writer modified the page, with the corresponding diffs. Diffs are created
    eagerly at a release (see DESIGN.md: the eager-diffing LRC variant) and
    fetched lazily on access misses or through the augmented [Validate]
    interface.

    Memory is bounded by coalescing diff {e payloads} while preserving the
    per-interval {e size accounting}: a fetch is charged the sum of the sizes
    of the individual historical diffs it covers — this reproduces the diff
    accumulation phenomenon of Section 6 (IS, MGS) — but applies a merged
    payload. Payload coalescing is performed only when it cannot change
    values: for intervals every processor has already applied, or when the
    page has a single writer so far. A [WRITE_ALL] full diff supersedes the
    writer's earlier payloads {e and} sizes for the page (Section 3.1.1: no
    twins or diffs are made; the whole section content stands in). *)

type t

type unit_to_apply = {
  order : int;  (** sort key consistent with happens-before (vc sum) *)
  payload : Dsm_mem.Diff.t;
  writer : int;
  upto_seq : int;  (** highest interval sequence number this unit covers *)
}

type fetch_result = {
  units : unit_to_apply list;  (** apply in increasing [order] *)
  charge_bytes : int;  (** what the diff response message carries *)
  ndiffs : int;  (** number of (historical) diffs transferred *)
}

val create : nprocs:int -> page_size:int -> t

val add :
  t -> writer:int -> page:int -> seq:int -> vcsum:int ->
  diff:Dsm_mem.Diff.t -> supersedes:bool -> unit
(** Record a diff for [writer]'s interval [seq]. [vcsum] is the vector-clock
    sum at the {e release} that created the interval — the happens-before
    stamp used to order diff application. [supersedes] marks a
    [WRITE_ALL]-style full-range diff that replaces the writer's earlier
    diffs for the page. *)

val fetch : t -> writer:int -> page:int -> after:int -> upto:int -> fetch_result
(** Diffs of [writer] for [page] with [after < seq <= upto-entitlement]:
    only intervals the requester holds write notices for are sent, except
    that an accumulated diff {e spanning} past [upto] is included whole (the
    absence of a forced materialization proves no foreign interval is
    ordered within its span). The requester's applied watermark should
    advance to [max upto (highest covered seq)]. *)

val has_any : t -> writer:int -> page:int -> after:int -> bool

val note_applied : t -> writer:int -> page:int -> by:int -> seq:int -> unit
(** Inform the store that processor [by] has applied [writer]'s diffs up to
    [seq] for [page]; enables payload coalescing. *)

val writers_of_page : t -> page:int -> int list

val latest_vcsum : t -> writer:int -> page:int -> int option
(** Vector-clock sum of the writer's most recent stored diff for the page. *)

val latest_full_page : t -> writer:int -> page:int -> (int * int) option
(** [(vcsum, seq)] of the writer's most recent diff when that diff
    overwrites the entire page (a materialized WRITE_ALL/READ&WRITE_ALL
    covering the page). Such a diff makes {e every} happens-before diff of
    the page — from any writer — redundant: the fetch logic uses this to
    avoid transferring accumulated overlapping diffs (the IS phenomenon of
    Section 6 disappears under READ&WRITE_ALL). *)

type t = int array

let create n = Array.make n 0
let copy = Array.copy
let get v q = v.(q)
let set v q x = v.(q) <- x

let merge dst src =
  Array.iteri (fun i x -> if x > dst.(i) then dst.(i) <- x) src

let leq a b =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let dominates a b = leq b a
let sum = Array.fold_left ( + ) 0

let pp ppf v =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (Array.to_seq v)

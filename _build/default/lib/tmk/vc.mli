(** Vector timestamps (reference [17] of the paper, Keleher et al.).

    [v.(q)] is the sequence number of the most recent interval of processor
    [q] whose write notices the owner of the clock has seen. *)

type t = int array

val create : int -> t
val copy : t -> t
val get : t -> int -> int
val set : t -> int -> int -> unit

val merge : t -> t -> unit
(** [merge dst src]: pointwise maximum, into [dst]. *)

val leq : t -> t -> bool
(** Pointwise [<=]: happens-before-or-equal. *)

val dominates : t -> t -> bool
(** [dominates a b] iff [leq b a]. *)

val sum : t -> int
(** Total of the components. Sorting application units by [sum] yields an
    order consistent with happens-before (strictly smaller sums for strictly
    dominated clocks); concurrent intervals touch disjoint bytes in
    data-race-free programs, so their relative order is immaterial. *)

val pp : Format.formatter -> t -> unit

(** Diffs: run-length encodings of the modifications made to a page
    (reference [8] of the paper, Carter et al.).

    A diff is created by comparing a page against its twin (the copy made at
    the first write) and applied by overlaying its segments onto another copy
    of the page. *)

type t
(** A list of (offset, payload) segments, sorted by offset, disjoint. *)

val empty : t
val is_empty : t -> bool

val create : twin:Bytes.t -> current:Bytes.t -> t
(** Word-granularity comparison of twin and current page contents. *)

val full : Bytes.t -> t
(** A "diff" carrying the entire page verbatim: produced at a release for
    pages validated with [WRITE_ALL] access (no twin exists; the whole page
    content stands in for the modifications, superseding older diffs). *)

val of_range : Bytes.t -> off:int -> len:int -> t
(** A diff carrying the page subrange [\[off, off+len)] verbatim. *)

val apply : t -> Bytes.t -> unit
(** Overlay the segments onto the destination page. *)

val merge : t -> t -> page_size:int -> t
(** [merge older newer ~page_size]: a diff equivalent to applying [older]
    then [newer]. *)

val size_bytes : t -> int
(** Payload bytes (what a diff message carries). *)

val nsegments : t -> int
val covers_page : t -> page_size:int -> bool
(** Whether the diff overwrites every byte of the page. *)

val pp : Format.formatter -> t -> unit

type t = (int * Bytes.t) list

let empty = []
let is_empty t = t = []

(* TreadMarks compares twin and copy at 32-bit word granularity; diffs are
   runs of changed words. *)
let create ~twin ~current =
  let n = Bytes.length current in
  assert (Bytes.length twin = n && n mod 4 = 0);
  let words = n / 4 in
  let differs w =
    Bytes.get_int32_le twin (4 * w) <> Bytes.get_int32_le current (4 * w)
  in
  let segs = ref [] in
  let w = ref 0 in
  while !w < words do
    if differs !w then begin
      let start = !w in
      while !w < words && differs !w do
        incr w
      done;
      segs :=
        (4 * start, Bytes.sub current (4 * start) (4 * (!w - start))) :: !segs
    end
    else incr w
  done;
  List.rev !segs

let full page = [ (0, Bytes.copy page) ]

let of_range page ~off ~len =
  if len <= 0 then [] else [ (off, Bytes.sub page off len) ]

let apply t dst =
  List.iter
    (fun (off, payload) ->
      Bytes.blit payload 0 dst off (Bytes.length payload))
    t

let merge older newer ~page_size =
  match (older, newer) with
  | [], d | d, [] -> d
  | _ ->
      let scratch = Bytes.create page_size in
      let mask = Bytes.make page_size '\000' in
      let overlay d =
        List.iter
          (fun (off, payload) ->
            let len = Bytes.length payload in
            Bytes.blit payload 0 scratch off len;
            Bytes.fill mask off len '\001')
          d
      in
      overlay older;
      overlay newer;
      let segs = ref [] in
      let i = ref 0 in
      while !i < page_size do
        if Bytes.unsafe_get mask !i = '\001' then begin
          let start = !i in
          while !i < page_size && Bytes.unsafe_get mask !i = '\001' do
            incr i
          done;
          segs := (start, Bytes.sub scratch start (!i - start)) :: !segs
        end
        else incr i
      done;
      List.rev !segs

let size_bytes t =
  List.fold_left (fun acc (_, p) -> acc + Bytes.length p) 0 t

let nsegments = List.length

let covers_page t ~page_size =
  match t with [ (0, p) ] -> Bytes.length p = page_size | _ -> false

let pp ppf t =
  Format.fprintf ppf "diff<%d segs, %d B>" (nsegments t) (size_bytes t)

(** Per-processor page table for the simulated shared segment.

    This is the software stand-in for the hardware MMU: every shared load
    and store consults the page's protection bits, and the DSM protocol
    manipulates them exactly as TreadMarks manipulates [mprotect] state. *)

type prot =
  | No_access  (** invalid: any access faults *)
  | Read_only  (** valid: writes fault (write detection) *)
  | Read_write  (** valid and dirty-capable *)

type page = {
  data : Bytes.t;
  mutable prot : prot;
  mutable twin : Bytes.t option;  (** copy made at the first write *)
}

type t

val create : page_size:int -> t
val page_size : t -> int

val get : t -> int -> page
(** Page record for page number [n]; created zero-filled and [Read_only] on
    first use (all replicas start consistent: the segment is zero
    initialized). *)

val find : t -> int -> page option
(** Like {!get} but without materializing an untouched page. *)

val page_of_addr : t -> int -> int
val offset_in_page : t -> int -> int

val make_twin : page -> unit
val drop_twin : page -> unit

type t = {
  page_size : int;
  mutable brk : int;
  mutable arrs : Dsm_rsd.Section.array_info list;
}

let create ~page_size = { page_size; brk = 0; arrs = [] }
let page_size t = t.page_size

let align_up x a = (x + a - 1) / a * a

let alloc t ~name:_ ?(page_align = false) ~bytes () =
  let base = align_up t.brk (if page_align then t.page_size else 8) in
  t.brk <- base + bytes;
  base

let alloc_array t ~name ?(page_align = false) ~elem_size extents =
  let n = Array.fold_left ( * ) 1 extents in
  let base = alloc t ~name ~page_align ~bytes:(n * elem_size) () in
  let info = { Dsm_rsd.Section.name; base; elem_size; extents } in
  t.arrs <- info :: t.arrs;
  info

let used_bytes t = t.brk
let n_pages t = (t.brk + t.page_size - 1) / t.page_size
let arrays t = List.rev t.arrs

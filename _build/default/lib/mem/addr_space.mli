(** Layout of the simulated shared virtual address space.

    A single shared segment (the paper's Fortran programs put all shared
    variables in one common block, [shared_common]); arrays are allocated by
    a bump allocator. Allocation only defines the layout — the data lives in
    the per-processor page tables. *)

type t

val create : page_size:int -> t
val page_size : t -> int

val alloc : t -> name:string -> ?page_align:bool -> bytes:int -> unit -> int
(** Reserve [bytes] and return the base address. [page_align] defaults to
    false: the paper discusses false sharing precisely because array
    boundaries need not coincide with page boundaries. 8-byte alignment is
    always guaranteed. *)

val alloc_array :
  t -> name:string -> ?page_align:bool -> elem_size:int -> int array ->
  Dsm_rsd.Section.array_info
(** Allocate a (column-major) array with the given per-dimension extents and
    return its layout record. *)

val used_bytes : t -> int
val n_pages : t -> int
(** Pages in use: determines fault/mprotect cost (Section 5 of the paper). *)

val arrays : t -> Dsm_rsd.Section.array_info list
(** All arrays allocated so far, in allocation order. *)

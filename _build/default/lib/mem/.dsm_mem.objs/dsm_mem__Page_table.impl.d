lib/mem/page_table.ml: Array Bytes

lib/mem/diff.ml: Bytes Format List

lib/mem/diff.mli: Bytes Format

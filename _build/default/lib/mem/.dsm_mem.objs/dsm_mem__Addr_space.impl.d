lib/mem/addr_space.ml: Array Dsm_rsd List

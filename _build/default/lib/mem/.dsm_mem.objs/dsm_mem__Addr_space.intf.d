lib/mem/addr_space.mli: Dsm_rsd

lib/harness/runset.mli: Dsm_apps Dsm_sim

lib/harness/experiments.mli: Dsm_sim Format Runset

lib/harness/runset.ml: Dsm_apps Float Hashtbl List Option Printf

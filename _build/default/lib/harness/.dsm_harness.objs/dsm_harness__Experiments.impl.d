lib/harness/experiments.ml: Dsm_apps Dsm_sim Dsm_tmk Format List Option Printf Runset String

lib/mp/mp.ml: Array Dsm_sim Float Hashtbl Queue

lib/mp/mp.mli: Dsm_sim

(** Jacobi iteration (Section 2 of the paper, Figures 1 and 2):
    nearest-neighbour averaging over a shared grid, interior columns
    block-partitioned. The running example of the paper: the optimized
    versions follow the compiler output of Figure 2 — a
    [Validate(b[...], WRITE_ALL)] after Barrier(1) and Barrier(2) replaced
    by [Push]. All five optimization levels apply. *)

include App_common.APP

(** The NCAR shallow-water benchmark: three finite-difference phases per
    time step over 13 shared arrays on a periodic grid, columns
    block-partitioned. Only communication aggregation and consistency
    elimination apply (merging with synchronization and Push would need
    interprocedural analysis, Section 6.2); the consistency-elimination
    gains are relatively larger than Jacobi's because many more pages are
    in use. *)

include App_common.APP

(** Integer Sort from the NAS benchmarks: bucket-sort ranking with private
    counting, staggered lock-protected updates of the shared buckets
    (migratory data) and a read-everything ranking phase. The program where
    base TreadMarks suffers diff accumulation, and where
    [Validate(..., READ&WRITE_ALL)] pays the most; no [Push] (the last
    lock holder is statically unknown) and no XHPF (indirect accesses). *)

include App_common.APP

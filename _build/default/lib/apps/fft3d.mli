(** 3D Fast Fourier Transform, after the NAS FT benchmark: per iteration an
    evolve step, local x/y FFTs on the z-slabs, a distributed transpose
    (producer-consumer communication at a barrier), a local z FFT, and the
    inverse transpose. The transpose reads a thin slice of every source
    page, so base TreadMarks moves whole-page diffs that mostly carry other
    readers' slices — the false-sharing amplification [Push] removes. All
    five optimization levels apply. *)

include App_common.APP

lib/apps/app_common.mli: Dsm_sim

lib/apps/shallow.mli: App_common

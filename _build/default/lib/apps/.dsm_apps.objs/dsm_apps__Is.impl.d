lib/apps/is.ml: App_common Array Dsm_mp Dsm_sim Dsm_tmk Hashtbl Option Printf

lib/apps/fft3d.ml: App_common Array Dsm_hpf Dsm_mp Dsm_sim Dsm_tmk Float Hashtbl Printf

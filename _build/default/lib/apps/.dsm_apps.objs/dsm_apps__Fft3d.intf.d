lib/apps/fft3d.mli: App_common

lib/apps/app_common.ml: Dsm_sim Float

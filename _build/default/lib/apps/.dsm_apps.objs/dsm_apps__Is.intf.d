lib/apps/is.mli: App_common

lib/apps/gauss.ml: App_common Array Dsm_hpf Dsm_mp Dsm_sim Dsm_tmk Hashtbl Printf

lib/apps/mgs.ml: App_common Array Dsm_hpf Dsm_mp Dsm_sim Dsm_tmk Hashtbl Printf

lib/apps/jacobi.mli: App_common

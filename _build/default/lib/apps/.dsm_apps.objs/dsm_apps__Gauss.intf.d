lib/apps/gauss.mli: App_common

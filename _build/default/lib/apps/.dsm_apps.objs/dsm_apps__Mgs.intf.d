lib/apps/mgs.mli: App_common

(** IR sources carried end-to-end through the compiler pipeline (analysis,
    transformation, execution on the DSM). *)

val jacobi : m:int -> iters:int -> Ir.program
(** The paper's running example (Figures 1 and 2): nearest-neighbour
    averaging over an [m x m] grid, interior columns block-partitioned.
    After transformation with {!Transform.all}, [Barrier(2)] becomes a
    [Push] and the copy-back phase gets a [Validate ... WRITE_ALL] — the
    exact shape of the paper's Figure 2. *)

val transpose : m:int -> iters:int -> Ir.program
(** 3D-FFT-like kernel: a local compute phase followed by a distributed
    transpose; the transpose barrier exhibits the producer-consumer
    communication that [Push] turns into an all-to-all exchange. *)

val redblack : n:int -> iters:int -> Ir.program
(** One-dimensional red-black relaxation: the strided (stride-2) sections
    exercise the non-contiguous path, where consistency elimination must be
    skipped and plain aggregated [Validate]s are used. *)

val masked : m:int -> iters:int -> Ir.program
(** A 1-D stencil whose update is guarded by a conditional on the column
    index. Conditionals are "possible fetch points" (Section 4.1); the
    analysis summarizes the guarded accesses inexactly, so the
    transformation keeps the consistency-preserving access types — the
    paper's "partial compiler analysis" scenario. *)

val lock_accum : n:int -> iters:int -> Ir.program
(** The Section 4.3 IS example, reduced: a shared array read-modify-written
    under a lock. The transformation inserts
    [Validate(acc[...], READ&WRITE_ALL)] at the lock acquisition. *)

(** Source-to-source transformation (Section 4.2 of the paper): given the
    access summaries, insert [Validate] / [Validate_w_sync] calls and replace
    barriers with [Push] where the analysis permits.

    The optimization knobs correspond to the cumulative levels of Figure 6:

    - [aggregate]: insert consistency-preserving [Validate]s (communication
      aggregation only; access types READ / WRITE / READ&WRITE).
    - [cons_elim]: additionally use WRITE_ALL / READ&WRITE_ALL where the
      section is exact, appropriately tagged, and contiguous.
    - [sync_merge]: use [Validate_w_sync] before the synchronization instead
      of [Validate] after it.
    - [push]: replace qualifying barriers with [Push].
    - [async]: emit asynchronous validates (Figure 7's comparison).

    Beyond the paper's stated conditions, barrier replacement additionally
    verifies that no cross-processor anti- or output-dependence crosses the
    barrier outside the pushed data (evaluated with the concrete processor
    bindings); the paper's Jacobi example relies on this implicitly —
    Barrier(1) must stay a barrier even though its sections are exact. *)

type opts = {
  aggregate : bool;
  cons_elim : bool;
  sync_merge : bool;
  push : bool;
  async : bool;
}

val base : opts
(** Everything off: the program is passed through unchanged. *)

val all : opts
val level_aggregate : opts
val level_cons_elim : opts
val level_sync_merge : opts
val level_push : opts

type decision =
  | Keep
  | Replaced_by_push of Ir.push_call * Ir.vcall list
      (** the barrier becomes a [Push]; the consistency-elimination
          validates ([WRITE_ALL] family) for the following region are still
          inserted after it *)
  | Validated of Ir.vcall list  (** inserted after the sync *)
  | Merged_with_sync of Ir.vcall list  (** inserted before the sync *)

val transform :
  Ir.program -> nprocs:int -> opts:opts -> Ir.program * (int * decision) list
(** Returns the transformed program and, for inspection and testing, the
    decision taken at each synchronization statement (by traversal index). *)

(** Pseudo-Fortran rendering of IR programs, in the style of the paper's
    Figures 1 and 2 — used by the compiler demo and for eyeballing what the
    transformation produced. *)

val pp_stmt : Format.formatter -> Ir.stmt -> unit
val pp_program : Format.formatter -> Ir.program -> unit
val program_to_string : Ir.program -> string

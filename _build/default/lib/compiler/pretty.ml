let rec pp_rexpr ppf = function
  | Ir.Fconst x -> Format.fprintf ppf "%g" x
  | Ir.Scalar s -> Format.pp_print_string ppf s
  | Ir.Load r -> pp_aref ppf r
  | Ir.Bin (op, a, b) ->
      let s =
        match op with Ir.Add -> "+" | Ir.Sub -> "-" | Ir.Mul -> "*" | Ir.Div -> "/"
      in
      Format.fprintf ppf "(%a %s %a)" pp_rexpr a s pp_rexpr b

and pp_aref ppf (r : Ir.aref) =
  Format.fprintf ppf "%s(%a)" r.Ir.aname
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Lin.pp)
    r.Ir.aidx

let access_name = Dsm_tmk.Types.access_to_string

let pp_vcall kind ppf (vc : Ir.vcall) =
  Format.fprintf ppf "call %s(%a, %s%s)" kind
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (name, srsd) -> Sym_rsd.pp name ppf srsd))
    vc.Ir.vsections
    (access_name vc.Ir.vaccess)
    (if vc.Ir.vasync then ", ASYNC" else "")

let rec pp_stmt ppf = function
  | Ir.For l ->
      Format.fprintf ppf "@[<v2>do %s = %a, %a@,%a@]@,enddo" l.Ir.ivar Lin.pp
        l.Ir.lo Lin.pp l.Ir.hi pp_body l.Ir.body
  | Ir.If_lt (a, b, bt, bf) ->
      Format.fprintf ppf "@[<v2>if (%a < %a) then@,%a@]@," Lin.pp a Lin.pp b
        pp_body bt;
      if bf <> [] then Format.fprintf ppf "@[<v2>else@,%a@]@," pp_body bf;
      Format.fprintf ppf "endif"
  | Ir.Assign (lhs, rhs) -> Format.fprintf ppf "%a = %a" pp_aref lhs pp_rexpr rhs
  | Ir.Set_scalar (x, rhs) -> Format.fprintf ppf "%s = %a" x pp_rexpr rhs
  | Ir.Barrier n -> Format.fprintf ppf "call Barrier(%d)" n
  | Ir.Lock_acquire n -> Format.fprintf ppf "call Lock_acquire(%d)" n
  | Ir.Lock_release n -> Format.fprintf ppf "call Lock_release(%d)" n
  | Ir.Validate vc -> pp_vcall "Validate" ppf vc
  | Ir.Validate_w_sync vc -> pp_vcall "Validate_w_sync" ppf vc
  | Ir.Push pc ->
      Format.fprintf ppf "call Push(%a ; %a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (name, srsd) -> Sym_rsd.pp name ppf srsd))
        pc.Ir.pread
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (name, srsd) -> Sym_rsd.pp name ppf srsd))
        pc.Ir.pwrite

and pp_body ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf stmts

let pp_program ppf (p : Ir.program) =
  Format.fprintf ppf "@[<v>c %s  (params: %s)@,%a@]" p.Ir.pname
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) p.Ir.params))
    pp_body p.Ir.body

let program_to_string p = Format.asprintf "%a" pp_program p

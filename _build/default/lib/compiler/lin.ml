type t = { const : int; terms : (string * int) list }

let norm terms =
  terms
  |> List.filter (fun (_, c) -> c <> 0)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let const c = { const = c; terms = [] }
let var ?(coeff = 1) v = { const = 0; terms = norm [ (v, coeff) ] }

let add a b =
  let merged =
    List.fold_left
      (fun acc (v, c) ->
        match List.assoc_opt v acc with
        | Some c' -> (v, c + c') :: List.remove_assoc v acc
        | None -> (v, c) :: acc)
      a.terms b.terms
  in
  { const = a.const + b.const; terms = norm merged }

let scale k a =
  { const = k * a.const; terms = norm (List.map (fun (v, c) -> (v, k * c)) a.terms) }

let sub a b = add a (scale (-1) b)
let offset a k = { a with const = a.const + k }
let equal a b = a.const = b.const && a.terms = b.terms
let is_const a = if a.terms = [] then Some a.const else None
let vars a = List.map fst a.terms
let coeff_of a v = Option.value ~default:0 (List.assoc_opt v a.terms)

let subst a v e =
  let c = coeff_of a v in
  if c = 0 then a
  else
    add
      { const = a.const; terms = norm (List.remove_assoc v a.terms) }
      (scale c e)

let eval lookup a =
  List.fold_left (fun acc (v, c) -> acc + (c * lookup v)) a.const a.terms

let diff_const a b = is_const (sub a b)

let pp ppf a =
  let pp_term first ppf (v, c) =
    if c = 1 then Format.fprintf ppf "%s%s" (if first then "" else " + ") v
    else if c = -1 then Format.fprintf ppf "%s%s" (if first then "-" else " - ") v
    else if c >= 0 then
      Format.fprintf ppf "%s%d*%s" (if first then "" else " + ") c v
    else Format.fprintf ppf "%s%d*%s" (if first then "" else " - ") (-c) v
  in
  match a.terms with
  | [] -> Format.fprintf ppf "%d" a.const
  | t0 :: rest ->
      pp_term true ppf t0;
      List.iter (pp_term false ppf) rest;
      if a.const > 0 then Format.fprintf ppf " + %d" a.const
      else if a.const < 0 then Format.fprintf ppf " - %d" (-a.const)

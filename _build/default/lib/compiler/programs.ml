let c = Lin.const
let v = Lin.var
let ( +! ) = Lin.add
let ( -! ) = Lin.sub

let aref name idx = { Ir.aname = name; aidx = idx }
let load name idx = Ir.Load (aref name idx)

let fbin op a b = Ir.Bin (op, a, b)
let fadd = fbin Ir.Add
let fmul = fbin Ir.Mul

(* Block partition of [lo..hi] among [nprocs]: processor [p]'s slice. *)
let block_bounds ~lo ~hi ~nprocs ~p =
  let count = hi - lo + 1 in
  let w = (count + nprocs - 1) / nprocs in
  let b = lo + (p * w) in
  let e = min hi (lo + (((p + 1) * w) - 1)) in
  (b, min e hi)

let jacobi ~m ~iters =
  {
    Ir.pname = "jacobi";
    params = [ ("M", m); ("T", iters) ];
    arrays = [ ("b", [ c m; c m ]) ];
    privates = [ ("a", [ c m; c m ]) ];
    proc_bindings =
      (fun ~nprocs ~p ->
        let b, e = block_bounds ~lo:1 ~hi:(m - 2) ~nprocs ~p in
        [ ("begin", b); ("end", e); ("p", p) ]);
    body =
      [
        Ir.For
          {
            ivar = "k";
            lo = c 1;
            hi = v "T";
            body =
              [
                Ir.For
                  {
                    ivar = "j";
                    lo = v "begin";
                    hi = v "end";
                    body =
                      [
                        Ir.For
                          {
                            ivar = "i";
                            lo = c 1;
                            hi = v "M" -! c 2;
                            body =
                              [
                                Ir.Assign
                                  ( aref "a" [ v "i"; v "j" ],
                                    fmul (Ir.Fconst 0.25)
                                      (fadd
                                         (fadd
                                            (load "b" [ v "i" -! c 1; v "j" ])
                                            (load "b" [ v "i" +! c 1; v "j" ]))
                                         (fadd
                                            (load "b" [ v "i"; v "j" -! c 1 ])
                                            (load "b" [ v "i"; v "j" +! c 1 ])))
                                  );
                              ];
                          };
                      ];
                  };
                Ir.Barrier 1;
                Ir.For
                  {
                    ivar = "j";
                    lo = v "begin";
                    hi = v "end";
                    body =
                      [
                        Ir.For
                          {
                            ivar = "i";
                            lo = c 0;
                            hi = v "M" -! c 1;
                            body =
                              [
                                Ir.Assign
                                  ( aref "b" [ v "i"; v "j" ],
                                    load "a" [ v "i"; v "j" ] );
                              ];
                          };
                      ];
                  };
                Ir.Barrier 2;
              ];
          };
      ];
  }

let transpose ~m ~iters =
  {
    Ir.pname = "transpose";
    params = [ ("M", m); ("T", iters) ];
    arrays = [ ("a", [ c m; c m ]); ("at", [ c m; c m ]) ];
    privates = [];
    proc_bindings =
      (fun ~nprocs ~p ->
        let b, e = block_bounds ~lo:0 ~hi:(m - 1) ~nprocs ~p in
        [ ("begin", b); ("end", e); ("p", p) ]);
    body =
      [
        Ir.For
          {
            ivar = "k";
            lo = c 1;
            hi = v "T";
            body =
              [
                (* local compute on own columns of a *)
                Ir.For
                  {
                    ivar = "j";
                    lo = v "begin";
                    hi = v "end";
                    body =
                      [
                        Ir.For
                          {
                            ivar = "i";
                            lo = c 0;
                            hi = v "M" -! c 1;
                            body =
                              [
                                Ir.Assign
                                  ( aref "a" [ v "i"; v "j" ],
                                    fadd
                                      (fmul (Ir.Fconst 0.5)
                                         (load "a" [ v "i"; v "j" ]))
                                      (Ir.Fconst 1.0) );
                              ];
                          };
                      ];
                  };
                Ir.Barrier 1;
                (* distributed transpose: read rows of a, write own columns
                   of at *)
                Ir.For
                  {
                    ivar = "j";
                    lo = v "begin";
                    hi = v "end";
                    body =
                      [
                        Ir.For
                          {
                            ivar = "i";
                            lo = c 0;
                            hi = v "M" -! c 1;
                            body =
                              [
                                Ir.Assign
                                  ( aref "at" [ v "i"; v "j" ],
                                    load "a" [ v "j"; v "i" ] );
                              ];
                          };
                      ];
                  };
                Ir.Barrier 2;
                (* fold the transposed data back into a (local) *)
                Ir.For
                  {
                    ivar = "j";
                    lo = v "begin";
                    hi = v "end";
                    body =
                      [
                        Ir.For
                          {
                            ivar = "i";
                            lo = c 0;
                            hi = v "M" -! c 1;
                            body =
                              [
                                Ir.Assign
                                  ( aref "a" [ v "i"; v "j" ],
                                    fmul (Ir.Fconst 0.5)
                                      (load "at" [ v "i"; v "j" ]) );
                              ];
                          };
                      ];
                  };
                Ir.Barrier 3;
              ];
          };
      ];
  }

let redblack ~n ~iters =
  (* u has n cells; odd cells updated from even neighbours, then even from
     odd. Each processor owns a block of the index range of each colour. *)
  let half = n / 2 in
  {
    Ir.pname = "redblack";
    params = [ ("N", n); ("H", half); ("T", iters) ];
    arrays = [ ("u", [ c n ]) ];
    privates = [];
    proc_bindings =
      (fun ~nprocs ~p ->
        (* indices of colour classes: odd = 2h+1 for h in [0, half-2];
           even = 2h for h in [1, half-1] *)
        let ob, oe = block_bounds ~lo:0 ~hi:(half - 2) ~nprocs ~p in
        let eb, ee = block_bounds ~lo:1 ~hi:(half - 1) ~nprocs ~p in
        [ ("ob", ob); ("oe", oe); ("eb", eb); ("ee", ee); ("p", p) ]);
    body =
      [
        Ir.For
          {
            ivar = "k";
            lo = c 1;
            hi = v "T";
            body =
              [
                (* odd sweep: u(2h+1) = (u(2h) + u(2h+2)) / 2 *)
                Ir.For
                  {
                    ivar = "h";
                    lo = v "ob";
                    hi = v "oe";
                    body =
                      [
                        Ir.Assign
                          ( aref "u" [ Lin.scale 2 (v "h") +! c 1 ],
                            fmul (Ir.Fconst 0.5)
                              (fadd
                                 (load "u" [ Lin.scale 2 (v "h") ])
                                 (load "u" [ Lin.scale 2 (v "h") +! c 2 ])) );
                      ];
                  };
                Ir.Barrier 1;
                (* even sweep: u(2h) = (u(2h-1) + u(2h+1)) / 2 *)
                Ir.For
                  {
                    ivar = "h";
                    lo = v "eb";
                    hi = v "ee";
                    body =
                      [
                        Ir.Assign
                          ( aref "u" [ Lin.scale 2 (v "h") ],
                            fmul (Ir.Fconst 0.5)
                              (fadd
                                 (load "u" [ Lin.scale 2 (v "h") -! c 1 ])
                                 (load "u" [ Lin.scale 2 (v "h") +! c 1 ])) );
                      ];
                  };
                Ir.Barrier 2;
              ];
          };
      ];
  }

(* A stencil whose update is guarded by a conditional on the column index:
   demonstrates partial analysis. The accesses under the conditional are
   summarized inexactly, so the transformation falls back to the
   consistency-preserving Validate and never uses WRITE_ALL or Push here —
   yet the program still runs correctly at every optimization level. *)
let masked ~m ~iters =
  {
    Ir.pname = "masked";
    params = [ ("M", m); ("T", iters); ("HALF", m / 2) ];
    arrays = [ ("u", [ c m ]) ];
    privates = [ ("w", [ c m ]) ];
    proc_bindings =
      (fun ~nprocs ~p ->
        let b, e = block_bounds ~lo:1 ~hi:(m - 2) ~nprocs ~p in
        [ ("begin", b); ("end", e); ("p", p) ]);
    body =
      [
        Ir.For
          {
            ivar = "k";
            lo = c 1;
            hi = v "T";
            body =
              [
                Ir.For
                  {
                    ivar = "i";
                    lo = v "begin";
                    hi = v "end";
                    body =
                      [
                        Ir.If_lt
                          ( v "i",
                            v "HALF",
                            [
                              Ir.Assign
                                ( aref "w" [ v "i" ],
                                  fmul (Ir.Fconst 0.5)
                                    (fadd
                                       (load "u" [ v "i" -! c 1 ])
                                       (load "u" [ v "i" +! c 1 ])) );
                            ],
                            [
                              Ir.Assign
                                ( aref "w" [ v "i" ],
                                  fadd (load "u" [ v "i" ]) (Ir.Fconst 1.0) );
                            ] );
                      ];
                  };
                Ir.Barrier 1;
                Ir.For
                  {
                    ivar = "i";
                    lo = v "begin";
                    hi = v "end";
                    body =
                      [ Ir.Assign (aref "u" [ v "i" ], load "w" [ v "i" ]) ];
                  };
                Ir.Barrier 2;
              ];
          };
      ];
  }

(* The paper's Section 4.3 IS example, reduced: a shared accumulator array
   passed between processors under a lock. The analysis creates a section
   for the array and the transformation issues a Validate when the lock is
   acquired (READ&WRITE_ALL: the whole section is read-modify-written) —
   the case where partial compiler analysis pays although a message-passing
   translation is impossible (the last holder is unknown statically). *)
let lock_accum ~n ~iters =
  {
    Ir.pname = "lock_accum";
    params = [ ("N", n); ("T", iters) ];
    arrays = [ ("acc", [ c n ]) ];
    privates = [];
    proc_bindings = (fun ~nprocs:_ ~p -> [ ("p", p) ]);
    body =
      [
        Ir.For
          {
            ivar = "k";
            lo = c 1;
            hi = v "T";
            body =
              [
                Ir.Lock_acquire 0;
                Ir.For
                  {
                    ivar = "i";
                    lo = c 0;
                    hi = v "N" -! c 1;
                    body =
                      [
                        Ir.Assign
                          ( aref "acc" [ v "i" ],
                            fadd (load "acc" [ v "i" ]) (Ir.Fconst 1.0) );
                      ];
                  };
                Ir.Lock_release 0;
                Ir.Barrier 1;
              ];
          };
      ];
  }

type aref = { aname : string; aidx : Lin.t list }
type binop = Add | Sub | Mul | Div

type rexpr =
  | Fconst of float
  | Scalar of string
  | Load of aref
  | Bin of binop * rexpr * rexpr

type access = Dsm_tmk.Tmk.access

type stmt =
  | For of loop
  | If_lt of Lin.t * Lin.t * stmt list * stmt list
  | Assign of aref * rexpr
  | Set_scalar of string * rexpr
  | Barrier of int
  | Lock_acquire of int
  | Lock_release of int
  | Validate of vcall
  | Validate_w_sync of vcall
  | Push of push_call

and loop = { ivar : string; lo : Lin.t; hi : Lin.t; body : stmt list }

and vcall = {
  vsections : (string * Sym_rsd.t) list;
  vaccess : access;
  vasync : bool;
}

and push_call = {
  pread : (string * Sym_rsd.t) list;
  pwrite : (string * Sym_rsd.t) list;
}

type program = {
  pname : string;
  params : (string * int) list;
  arrays : (string * Lin.t list) list;
  privates : (string * Lin.t list) list;
  proc_bindings : nprocs:int -> p:int -> (string * int) list;
  body : stmt list;
}

let is_sync = function
  | Barrier _ | Lock_acquire _ | Lock_release _ | Push _ -> true
  | For _ | If_lt _ | Assign _ | Set_scalar _ | Validate _ | Validate_w_sync _
    ->
      false

let is_fetch_point = is_sync

let array_extents p name = List.assoc name p.arrays

let probe_env prog ~nprocs v =
  match List.assoc_opt v prog.params with
  | Some x -> x
  | None -> (
      let bindings = prog.proc_bindings ~nprocs ~p:(min 1 (nprocs - 1)) in
      match List.assoc_opt v bindings with
      | Some x -> x
      | None -> raise Not_found)

lib/compiler/sym_rsd.ml: Dsm_rsd Format Lin List Option

lib/compiler/transform.mli: Ir

lib/compiler/interp.ml: Array Dsm_rsd Dsm_sim Dsm_tmk Hashtbl Ir Lin List Sym_rsd

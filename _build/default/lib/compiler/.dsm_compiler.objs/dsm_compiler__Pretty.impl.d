lib/compiler/pretty.ml: Dsm_tmk Format Ir Lin List Printf String Sym_rsd

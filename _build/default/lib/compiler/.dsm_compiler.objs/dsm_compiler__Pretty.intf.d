lib/compiler/pretty.mli: Format Ir

lib/compiler/access.mli: Format Ir Sym_rsd

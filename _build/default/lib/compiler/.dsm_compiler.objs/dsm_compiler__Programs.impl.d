lib/compiler/programs.ml: Ir Lin

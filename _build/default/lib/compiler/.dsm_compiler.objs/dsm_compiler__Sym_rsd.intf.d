lib/compiler/sym_rsd.mli: Dsm_rsd Format Lin

lib/compiler/lin.ml: Format List Option

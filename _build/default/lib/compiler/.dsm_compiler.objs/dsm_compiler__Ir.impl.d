lib/compiler/ir.ml: Dsm_tmk Lin List Sym_rsd

lib/compiler/access.ml: Array Format Ir Lin List Option String Sym_rsd

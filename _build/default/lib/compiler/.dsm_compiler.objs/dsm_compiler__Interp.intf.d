lib/compiler/interp.mli: Dsm_rsd Dsm_sim Dsm_tmk Ir

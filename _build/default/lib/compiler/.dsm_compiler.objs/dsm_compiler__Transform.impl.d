lib/compiler/transform.ml: Access Array Dsm_rsd Dsm_tmk Fun Ir Lin List Option Sym_rsd

lib/compiler/programs.mli: Ir

lib/compiler/lin.mli: Format

lib/compiler/ir.mli: Dsm_tmk Lin Sym_rsd

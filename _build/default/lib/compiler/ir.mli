(** Explicitly-parallel loop IR: the abstract syntax the Parascope-style
    analysis and transformation operate on.

    Programs are SPMD: every processor executes the same statement list,
    with processor-dependent bindings (typically the partition bounds
    [begin]/[end]) supplied by {!field-proc_bindings}. Shared arrays live in
    the DSM; scalars named in the environment are private. *)

type aref = { aname : string; aidx : Lin.t list }
(** Array reference with affine indices (first index contiguous,
    Fortran-style). *)

type binop = Add | Sub | Mul | Div

type rexpr =
  | Fconst of float
  | Scalar of string  (** private scalar variable *)
  | Load of aref
  | Bin of binop * rexpr * rexpr

type access = Dsm_tmk.Tmk.access

type stmt =
  | For of loop
  | If_lt of Lin.t * Lin.t * stmt list * stmt list
      (** [if a < b then ... else ...] on index expressions; conditionals
          are "possible fetch points" in the paper's analysis (Section 4.1)
          and make the enclosing region's sections inexact here *)
  | Assign of aref * rexpr
  | Set_scalar of string * rexpr  (** private scalar assignment *)
  | Barrier of int
  | Lock_acquire of int
  | Lock_release of int
  | Validate of vcall  (** inserted by the transformation *)
  | Validate_w_sync of vcall
  | Push of push_call

and loop = { ivar : string; lo : Lin.t; hi : Lin.t; body : stmt list }

and vcall = {
  vsections : (string * Sym_rsd.t) list;
  vaccess : access;
  vasync : bool;
}

and push_call = {
  pread : (string * Sym_rsd.t) list;  (** read after, in terms of [p] *)
  pwrite : (string * Sym_rsd.t) list;  (** written before, in terms of [p] *)
}

type program = {
  pname : string;
  params : (string * int) list;  (** problem-size parameters, e.g. M *)
  arrays : (string * Lin.t list) list;  (** shared arrays and extents *)
  privates : (string * Lin.t list) list;
      (** per-processor private arrays (scratch); outside the analysis'
          variable set V and outside the DSM *)
  proc_bindings : nprocs:int -> p:int -> (string * int) list;
      (** processor-dependent loop-invariant variables ([begin], [end], [p]) *)
  body : stmt list;
}

val is_sync : stmt -> bool
val is_fetch_point : stmt -> bool

val array_extents : program -> string -> Lin.t list
(** @raise Not_found for an unknown array. *)

val probe_env : program -> nprocs:int -> string -> int
(** Sample binding used by the symbolic analysis to test comparisons it
    cannot prove: parameters at their declared values, processor-dependent
    variables at processor 1's values. *)

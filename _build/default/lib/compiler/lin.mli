(** Linear (affine) integer expressions over named variables: the currency
    of regular section analysis. The paper's analysis handles array indices
    that depend on zero or one induction variable, with loop bounds that are
    themselves linear functions of variables (Section 4.4). *)

type t = { const : int; terms : (string * int) list }
(** [const + sum coeff*var]; terms sorted by variable name, no zero
    coefficients. *)

val const : int -> t
val var : ?coeff:int -> string -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val offset : t -> int -> t

val equal : t -> t -> bool
val is_const : t -> int option

val vars : t -> string list
val coeff_of : t -> string -> int

val subst : t -> string -> t -> t
(** [subst t v e]: replace variable [v] by expression [e]. *)

val eval : (string -> int) -> t -> int
(** Evaluate under a full binding.
    @raise Not_found when a variable is unbound. *)

val diff_const : t -> t -> int option
(** [diff_const a b] is [Some (a - b)] when the difference is a known
    constant — the decidable comparison the symbolic analysis relies on. *)

val pp : Format.formatter -> t -> unit
(** Fortran-flavoured rendering, e.g. [begin - 1], [2*k + 1]. *)

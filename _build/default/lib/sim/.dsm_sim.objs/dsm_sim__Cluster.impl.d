lib/sim/cluster.ml: Array Config Stats

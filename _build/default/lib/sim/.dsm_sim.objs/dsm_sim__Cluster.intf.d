lib/sim/cluster.mli: Config Stats

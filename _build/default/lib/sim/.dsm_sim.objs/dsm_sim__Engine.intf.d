lib/sim/engine.mli:

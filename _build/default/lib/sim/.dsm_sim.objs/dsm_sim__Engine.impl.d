lib/sim/engine.ml: Array Effect List Printf Seq String

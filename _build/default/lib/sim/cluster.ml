type t = {
  cfg : Config.t;
  clocks : float array;
  stats : Stats.t array;
  busy_start : float array;
  busy_until : float array;
      (* per-processor interrupt-handler occupancy interval: requests that
         arrive inside it serialize behind it (the hot-spot effect that
         barrier-time broadcast avoids); requests arriving before it (a
         processor whose virtual time lags the simulation order) are served
         at their own arrival time *)
  mutable pages_in_use : int;
}

let create cfg =
  {
    cfg;
    clocks = Array.make cfg.Config.nprocs 0.0;
    stats = Array.init cfg.Config.nprocs (fun _ -> Stats.create ());
    busy_start = Array.make cfg.Config.nprocs 0.0;
    busy_until = Array.make cfg.Config.nprocs 0.0;
    pages_in_use = 0;
  }

let nprocs t = t.cfg.Config.nprocs
let time t p = t.clocks.(p)

let elapsed t = Array.fold_left max 0.0 t.clocks

let charge t p dt = t.clocks.(p) <- t.clocks.(p) +. dt

let sync_clock t p at = if at > t.clocks.(p) then t.clocks.(p) <- at

let send t ~src ~dst:_ ~bytes =
  let c = t.cfg in
  let st = t.stats.(src) in
  st.Stats.messages <- st.Stats.messages + 1;
  st.Stats.bytes <- st.Stats.bytes + bytes;
  charge t src (c.Config.msg_overhead_us +. (c.Config.per_byte_us *. float_of_int bytes));
  t.clocks.(src) +. c.Config.wire_latency_us

let recv_charge t ~dst ~arrival ~interrupt =
  let c = t.cfg in
  sync_clock t dst arrival;
  charge t dst
    (c.Config.msg_overhead_us
    +. if interrupt then c.Config.interrupt_us else 0.0)

(* Claim the target's handler: serialize behind an overlapping busy period,
   start a new one otherwise. *)
let occupy t dst ~arrival ~handler_time =
  if not t.cfg.Config.enable_hotspot_queueing then arrival
  else if arrival >= t.busy_until.(dst) then begin
    t.busy_start.(dst) <- arrival;
    t.busy_until.(dst) <- arrival +. handler_time;
    arrival
  end
  else if arrival >= t.busy_start.(dst) then begin
    let start = t.busy_until.(dst) in
    t.busy_until.(dst) <- start +. handler_time;
    start
  end
  else arrival (* served in the past; occupancy unknown, assume free *)

let rpc t ~src ~dst ~req_bytes ~resp_bytes ~service =
  let c = t.cfg in
  let st_src = t.stats.(src)
  and st_dst = t.stats.(dst) in
  st_src.Stats.messages <- st_src.Stats.messages + 1;
  st_src.Stats.bytes <- st_src.Stats.bytes + req_bytes;
  st_dst.Stats.messages <- st_dst.Stats.messages + 1;
  st_dst.Stats.bytes <- st_dst.Stats.bytes + resp_bytes;
  let handler_time =
    c.Config.interrupt_us +. c.Config.msg_overhead_us +. service
    +. c.Config.msg_overhead_us
    +. (c.Config.per_byte_us *. float_of_int resp_bytes)
  in
  (* Interrupt handling steals cycles from the target processor; back-to-back
     requests to the same target serialize behind its handler occupancy. *)
  charge t dst handler_time;
  let send_done =
    t.clocks.(src)
    +. c.Config.msg_overhead_us
    +. (c.Config.per_byte_us *. float_of_int req_bytes)
  in
  let arrival = send_done +. c.Config.wire_latency_us in
  let start = occupy t dst ~arrival ~handler_time in
  t.clocks.(src) <-
    start +. handler_time +. c.Config.wire_latency_us
    +. c.Config.msg_overhead_us

let bcast t ~src ~bytes =
  let c = t.cfg in
  let n = nprocs t in
  let st = t.stats.(src) in
  st.Stats.messages <- st.Stats.messages + (n - 1);
  st.Stats.bytes <- st.Stats.bytes + (bytes * (n - 1));
  st.Stats.broadcasts <- st.Stats.broadcasts + 1;
  let per_hop =
    c.Config.msg_overhead_us
    +. (c.Config.per_byte_us *. float_of_int bytes)
    +. c.Config.wire_latency_us +. c.Config.msg_overhead_us
  in
  let hops =
    if c.Config.bcast_log_tree then
      int_of_float (ceil (log (float_of_int n) /. log 2.0))
    else n - 1
  in
  charge t src (float_of_int hops *. per_hop);
  t.clocks.(src)

let mm_op t p ~npages =
  let c = t.cfg in
  charge t p
    (c.Config.mm_base_us
    +. (c.Config.mm_per_inuse_page_us *. float_of_int t.pages_in_use)
    +. (c.Config.mm_per_op_page_us *. float_of_int npages))

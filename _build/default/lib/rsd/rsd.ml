type dim = { lo : int; hi : int; stride : int }
type t = { dims : dim array; exact : bool }

let make ?(exact = true) l =
  let dims =
    List.map
      (fun (lo, hi, stride) ->
        if stride < 1 then invalid_arg "Rsd.make: stride must be >= 1";
        { lo; hi; stride })
      l
    |> Array.of_list
  in
  { dims; exact }

let ndims t = Array.length t.dims
let dim_is_empty d = d.hi < d.lo
let is_empty t = Array.exists dim_is_empty t.dims
let dim_count d = if dim_is_empty d then 0 else ((d.hi - d.lo) / d.stride) + 1

let size t =
  if is_empty t then 0
  else Array.fold_left (fun acc d -> acc * dim_count d) 1 t.dims

let dim_mem d i = i >= d.lo && i <= d.hi && (i - d.lo) mod d.stride = 0

let mem t idx =
  Array.length idx = ndims t
  && (not (is_empty t))
  && Array.for_all2 (fun d i -> dim_mem d i) t.dims idx

let dim_equal a b =
  (dim_is_empty a && dim_is_empty b)
  || (a.lo = b.lo && a.stride = b.stride && dim_count a = dim_count b)

let equal a b =
  ndims a = ndims b
  && ((is_empty a && is_empty b) || Array.for_all2 dim_equal a.dims b.dims)

(* Intersection of two strided ranges. Exact when one stride divides the
   other and the phases agree; otherwise a conservative bounding range. *)
let dim_inter a b =
  let lo = max a.lo b.lo
  and hi = min a.hi b.hi in
  if hi < lo then ({ lo = 1; hi = 0; stride = 1 }, true)
  else if a.stride = 1 && b.stride = 1 then ({ lo; hi; stride = 1 }, true)
  else begin
    let s = max a.stride b.stride
    and s' = min a.stride b.stride in
    if s mod s' = 0 then begin
      (* phases must be compatible *)
      let big, small = if a.stride >= b.stride then (a, b) else (b, a) in
      if (big.lo - small.lo) mod small.stride <> 0 then
        ({ lo = 1; hi = 0; stride = 1 }, true)
      else begin
        (* first element of [big] that is >= lo: big.lo is in both grids *)
        let start = if big.lo >= lo then big.lo else
          big.lo + ((lo - big.lo + s - 1) / s * s)
        in
        if start > hi then ({ lo = 1; hi = 0; stride = 1 }, true)
        else
          let last = start + ((hi - start) / s * s) in
          ({ lo = start; hi = last; stride = s }, true)
      end
    end
    else ({ lo; hi; stride = 1 }, false)
  end

let inter a b =
  if ndims a <> ndims b then invalid_arg "Rsd.inter: dimension mismatch";
  let exact = ref (a.exact && b.exact) in
  let dims =
    Array.map2
      (fun da db ->
        let d, ex = dim_inter da db in
        if not ex then exact := false;
        d)
      a.dims b.dims
  in
  { dims; exact = !exact }

let dim_contains a b =
  dim_is_empty b
  || ((not (dim_is_empty a))
     && dim_mem a b.lo
     && b.hi <= a.hi
     && b.stride mod a.stride = 0)

let contains a b =
  ndims a = ndims b
  && (is_empty b || Array.for_all2 dim_contains a.dims b.dims)

(* Can two strided ranges be unioned exactly into one? *)
let dim_union_exact a b =
  if dim_is_empty a then Some b
  else if dim_is_empty b then Some a
  else if dim_contains a b then Some a
  else if dim_contains b a then Some b
  else if a.stride = b.stride && (b.lo - a.lo) mod a.stride = 0 then begin
    let s = a.stride in
    if b.lo <= a.hi + s && a.lo <= b.hi + s then
      Some { lo = min a.lo b.lo; hi = max a.hi b.hi; stride = s }
    else None
  end
  else None

(* Conservative per-dimension bound: the common stride may be kept only if
   the two ranges share its phase, otherwise elements would be missed. *)
let bounding_dim da db =
  let stride =
    if da.stride = db.stride && (db.lo - da.lo) mod da.stride = 0 then da.stride
    else 1
  in
  { lo = min da.lo db.lo; hi = max da.hi db.hi; stride }

let union a b =
  if ndims a <> ndims b then invalid_arg "Rsd.union: dimension mismatch";
  if is_empty a then b
  else if is_empty b then a
  else if contains a b then a
  else if contains b a then b
  else begin
    (* Count dimensions on which the two differ; an exact merge is possible
       when they differ on at most one dimension that merges exactly. *)
    let n = ndims a in
    let differing = ref [] in
    for i = 0 to n - 1 do
      if not (dim_equal a.dims.(i) b.dims.(i)) then differing := i :: !differing
    done;
    match !differing with
    | [ i ] -> (
        match dim_union_exact a.dims.(i) b.dims.(i) with
        | Some d ->
            let dims = Array.copy a.dims in
            dims.(i) <- d;
            { dims; exact = a.exact && b.exact }
        | None ->
            let dims = Array.map2 bounding_dim a.dims b.dims in
            { dims; exact = false })
    | _ ->
        let dims = Array.map2 bounding_dim a.dims b.dims in
        { dims; exact = false }
  end

let inexact t = { t with exact = false }

let pp ppf t =
  let pp_dim ppf d =
    if d.stride = 1 then Format.fprintf ppf "%d:%d" d.lo d.hi
    else Format.fprintf ppf "%d:%d:%d" d.lo d.hi d.stride
  in
  Format.fprintf ppf "[%a]%s"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_dim)
    (Array.to_seq t.dims)
    (if t.exact then "" else "~")

(** Regular section descriptors (RSDs), after Havlak & Kennedy (reference
    [13] of the paper).

    An RSD concisely describes the set of array elements accessed by a loop
    nest: per array dimension a triplet [lo:hi:stride] (inclusive bounds, in
    elements). RSDs support union and intersection; union is in general a
    conservative (bounding) approximation, and the descriptor records whether
    it is still {e exact}, because the paper's transformation (Section 4.2)
    may only apply the consistency-disabling optimizations ([WRITE_ALL],
    [Push]) when the analysis is exact. *)

type dim = { lo : int; hi : int; stride : int }
(** One dimension: indices [lo, lo+stride, ..., <= hi]. [stride >= 1].
    Empty if [hi < lo]. *)

type t = { dims : dim array; exact : bool }

val make : ?exact:bool -> (int * int * int) list -> t
(** [make [(lo, hi, stride); ...]] builds a descriptor, dimension order
    matching the array's (first = innermost/contiguous, Fortran style). *)

val ndims : t -> int
val is_empty : t -> bool

val size : t -> int
(** Number of elements described. *)

val dim_count : dim -> int
(** Number of indices in one dimension. *)

val mem : t -> int array -> bool
(** Does the descriptor contain the given index point? *)

val equal : t -> t -> bool

val inter : t -> t -> t
(** Exact intersection when strides agree or divide each other on each
    dimension; conservative otherwise (result flagged inexact). *)

val union : t -> t -> t
(** Bounding union. The result is flagged exact only when one argument
    contains the other, or the two differ in a single dimension whose ranges
    overlap or are adjacent with equal strides (the cases the paper's
    analysis produces, e.g. the Jacobi read sections merging into
    [1,M : begin-1, end+1]). *)

val contains : t -> t -> bool
(** [contains a b]: every element of [b] is in [a] (conservative: may return
    false for exotic stride combinations). *)

val inexact : t -> t
(** Same elements, flagged as not exactly describing the access set. *)

val pp : Format.formatter -> t -> unit
(** Prints in the paper's notation: [\[lo:hi:stride, ...\]]. *)

lib/rsd/section.ml: Array Format List Range Rsd

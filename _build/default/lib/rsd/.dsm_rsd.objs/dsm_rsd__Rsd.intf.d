lib/rsd/rsd.mli: Format

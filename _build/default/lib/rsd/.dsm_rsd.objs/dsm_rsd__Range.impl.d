lib/rsd/range.ml: Format Hashtbl List

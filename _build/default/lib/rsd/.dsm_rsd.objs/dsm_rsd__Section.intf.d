lib/rsd/section.mli: Format Range Rsd

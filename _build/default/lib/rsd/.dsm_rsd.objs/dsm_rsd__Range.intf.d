lib/rsd/range.mli: Format

lib/hpf/hpf.ml: Array Dsm_mp

lib/hpf/hpf.mli: Dsm_mp

(** A miniature HPF-style run-time, the substrate for the "XHPF" baseline.

    The Forge XHPF compiler translates data-parallel Fortran into message
    passing over a generic distribution run-time: communication goes through
    general section pack/unpack routines rather than the hand-specialized
    buffers of a PVMe program. This module reproduces that structure on top
    of {!Dsm_mp.Mp}: the same algorithms as the hand-coded baselines, plus
    per-element packing charges and per-operation distribution bookkeeping.
    The result tracks the paper's observation that XHPF is usually within a
    few percent of PVMe, a bit slower where access patterns are strided
    (MGS, Gauss). *)

module Dist : sig
  type t = Block | Cyclic

  val owner : t -> nprocs:int -> n:int -> int -> int
  (** Owning processor of global index [i]. *)

  val local_count : t -> nprocs:int -> n:int -> p:int -> int
  (** Number of indices owned by processor [p]. *)

  val block_lo : nprocs:int -> n:int -> p:int -> int
  val block_hi : nprocs:int -> n:int -> p:int -> int
  (** Inclusive global bounds of a BLOCK partition. *)
end

val pack_us_per_elem : float
(** Cost charged per element on each side of a generic section
    pack/unpack. *)

val comm_setup_us : float
(** Per-communication distribution bookkeeping. *)

val shift_exchange :
  Dsm_mp.Mp.t -> tag:int -> left:float array -> right:float array ->
  float array option * float array option
(** BLOCK-distribution halo exchange: send [left] to processor [p-1] and
    [right] to [p+1]; returns the halos received from the left and right
    neighbors (None at the ends). Charges generic packing on both sides. *)

val bcast_section : Dsm_mp.Mp.t -> root:int -> tag:int -> float array -> float array
(** Broadcast of an owned section through the distribution run-time. *)

val allreduce_sum : Dsm_mp.Mp.t -> tag:int -> float array -> float array
val allreduce_max : Dsm_mp.Mp.t -> tag:int -> float array -> float array

val charge_pack : Dsm_mp.Mp.t -> int -> unit
(** Charge generic pack/unpack handling for [n] elements (used by XHPF app
    codes for communications they route through {!Dsm_mp.Mp} directly). *)

module Mp = Dsm_mp.Mp

module Dist = struct
  type t = Block | Cyclic

  let owner t ~nprocs ~n i =
    match t with
    | Block ->
        let per = (n + nprocs - 1) / nprocs in
        i / per
    | Cyclic -> i mod nprocs

  let local_count t ~nprocs ~n ~p =
    match t with
    | Block ->
        let per = (n + nprocs - 1) / nprocs in
        let lo = p * per in
        if lo >= n then 0 else min per (n - lo)
    | Cyclic -> (n - p + nprocs - 1) / nprocs

  let block_lo ~nprocs ~n ~p =
    let per = (n + nprocs - 1) / nprocs in
    ignore n;
    p * per

  let block_hi ~nprocs ~n ~p =
    let per = (n + nprocs - 1) / nprocs in
    min (n - 1) (((p + 1) * per) - 1)
end

let pack_us_per_elem = 0.012
let comm_setup_us = 8.0

let charge_pack t n = Mp.charge t (pack_us_per_elem *. float_of_int n)

let shift_exchange t ~tag ~left ~right =
  let p = Mp.pid t
  and n = Mp.nprocs t in
  Mp.charge t comm_setup_us;
  if p > 0 then begin
    charge_pack t (Array.length left);
    Mp.send_floats t ~dst:(p - 1) ~tag left
  end;
  if p < n - 1 then begin
    charge_pack t (Array.length right);
    Mp.send_floats t ~dst:(p + 1) ~tag right
  end;
  let from_left =
    if p > 0 then begin
      let x = Mp.recv_floats t ~src:(p - 1) ~tag in
      charge_pack t (Array.length x);
      Some x
    end
    else None
  in
  let from_right =
    if p < n - 1 then begin
      let x = Mp.recv_floats t ~src:(p + 1) ~tag in
      charge_pack t (Array.length x);
      Some x
    end
    else None
  in
  (from_left, from_right)

let bcast_section t ~root ~tag payload =
  Mp.charge t comm_setup_us;
  if Mp.pid t = root then charge_pack t (Array.length payload);
  let r = Mp.bcast_floats t ~root ~tag payload in
  if Mp.pid t <> root then charge_pack t (Array.length r);
  r

let allreduce_sum t ~tag payload =
  Mp.charge t comm_setup_us;
  charge_pack t (Array.length payload);
  Mp.allreduce_sum t ~tag payload

let allreduce_max t ~tag payload =
  Mp.charge t comm_setup_us;
  charge_pack t (Array.length payload);
  Mp.allreduce_max t ~tag payload

(* dsm_run: command-line driver for the benchmark applications.

     dsm_run --app jacobi --version tmk --level push --size large
     dsm_run --app is --version pvm --procs 4
     dsm_run --app gauss --backend hlrc --home-policy cyclic
     dsm_run --app gauss --trace gauss.jsonl --check
     dsm_run --list

   Prints the virtual execution time, speedup over the uniprocessor time,
   and the protocol statistics of the run. [--backend
   {lrc,hlrc,inval,adaptive}] selects the coherence protocol of the tmk
   run-time. [--trace FILE] records the protocol events of a tmk run as
   JSON lines and prints a per-phase summary; [--check] replays the trace
   through the protocol invariant checker; [--recheck FILE] replays a
   previously written trace file instead of running anything (unknown
   event kinds and a truncated final line are warnings, not errors, so
   traces from newer builds or crashed runs stay usable).
   [--drop R --dup R --jitter US --net-seed N] inject
   deterministic network faults: messages are dropped/duplicated/delayed
   and recovered by the reliable-delivery layer, whose costs appear in
   the statistics and in a per-run fault summary.

   The argument vocabulary shared with dsm_lint (applications, levels,
   processors, backend, network faults) lives in {!Core.Harness.Cli}. *)

open Cmdliner
module A = Core.Apps.Common
module Workload = Core.Apps.Workload
module Cli = Core.Harness.Cli

(* Replay a trace file through the checker without running anything.
   Malformed input degrades to warnings: unknown event kinds are skipped
   with a count (trace written by a newer build), and a torn final line
   (crash mid-write) is reported but does not fail the load. *)
let recheck_file ~nprocs ~strict file =
  match Core.Trace.Event.load_jsonl file with
  | exception Sys_error msg -> `Error (false, "cannot read trace: " ^ msg)
  | { Core.Trace.Event.events; warnings; unknown_kinds } -> (
      List.iter
        (fun (line, msg) ->
          Format.eprintf "%s:%d: warning: %s@." file line msg)
        warnings;
      if unknown_kinds > 0 then
        Format.eprintf "%s: skipped %d events of unknown kind@." file
          unknown_kinds;
      (* unknown kinds are already in [warnings] — no double count *)
      let nwarnings = List.length warnings in
      match Core.Trace.Check.run ~nprocs events with
      | [] when strict && nwarnings > 0 ->
          Format.printf "%s: %d events, 0 violations, %d warnings@." file
            (List.length events) nwarnings;
          `Error
            ( false,
              "trace loaded with warnings (tolerated without \
               --strict-recheck)" )
      | [] ->
          Format.printf "%s: %d events, 0 violations@." file
            (List.length events);
          `Ok ()
      | vs ->
          Format.printf "@[<v>%s: %d events, %d violations@,%a@]@." file
            (List.length events) (List.length vs)
            (Format.pp_print_list Core.Trace.Check.pp_violation)
            vs;
          `Error (false, "protocol invariant violations found"))

let run app version level size procs common sync trace_file check recheck
    strict_recheck digest proto_plan prof list knobs =
  if list then begin
    List.iter
      (fun (name, m) ->
        let module W = (val m : Workload.S) in
        Format.printf "%-8s sizes=%-12s levels=%s%s%s@." name
          (String.concat "," (List.map fst W.sizes))
          (String.concat "," (List.map A.opt_level_name W.levels))
          (if Option.is_some W.xhpf then " (+xhpf)" else "")
          (match W.knob_doc with
          | [] -> ""
          | ks ->
              " knobs=" ^ String.concat "," (List.map fst ks));
        List.iter
          (fun (k, doc) -> Format.printf "           --%s: %s@." k doc)
          W.knob_doc)
      Cli.apps;
    `Ok ()
  end
  else
    match recheck with
    | Some file -> recheck_file ~nprocs:procs ~strict:strict_recheck file
    | None -> (
    match Cli.find_app app with
    | None -> `Error (false, "unknown application: " ^ app)
    | Some m -> (
        let module W = (val m : Workload.S) in
        match List.assoc_opt size W.sizes with
        | None ->
            `Error
              ( false,
                Printf.sprintf "unknown size for %s: %s (choices: %s)" app
                  size
                  (String.concat ", " (List.map fst W.sizes)) )
        | Some wsize -> (
        match
          Workload.apply_knobs ~with_knob:W.with_knob
            ~default:W.default_behavior knobs
        with
        | Error e -> `Error (false, e)
        | Ok behavior -> (
        match Cli.config ~procs common with
        | Error e -> `Error (false, e)
        | Ok cfg ->
        let plan = Core.Net_plan.of_config cfg in
        let sink =
          if (trace_file <> None || check) && version <> "tmk" then None
          else if trace_file <> None || check then
            Some (Core.Trace.Sink.create ~nprocs:procs ())
          else None
        in
        if prof then Core.Prof.enable ();
        let result =
          match version with
          | "tmk" -> (
              match Cli.find_level level with
              | None -> Error ("unknown level: " ^ level)
              | Some l -> (
                  (* a plan whose geometry disagrees with the run (procs,
                     page size, program) is rejected by Tmk.make *)
                  match
                    W.tmk ?trace:sink ~digest ?plan:proto_plan cfg
                      ~size:wsize ~behavior ~level:l ~async:(not sync)
                  with
                  | r -> Ok r
                  | exception Invalid_argument e ->
                      Error ("plan rejected: " ^ e)))
          | "pvm" ->
              if proto_plan <> None then
                Format.eprintf
                  "note: --plan applies to the tmk version only@.";
              Ok (W.pvm cfg ~size:wsize ~behavior)
          | "xhpf" -> (
              match W.xhpf with
              | Some f -> Ok (f cfg ~size:wsize ~behavior)
              | None -> Error "XHPF cannot parallelize this application")
          | v -> Error ("unknown version: " ^ v)
        in
        if prof then Core.Prof.disable ();
        (match result with
        | Error e -> `Error (false, e)
        | Ok r ->
            let seq = W.seq_time_us wsize in
            let version_name =
              if version = "tmk" then
                "tmk/" ^ Core.Config.backend_name cfg.Core.Config.backend
              else version
            in
            Format.printf "%s (%s), %s, %d processors@." W.name
              (W.size_name wsize) version_name procs;
            Format.printf "  uniprocessor time: %12.0f us@." seq;
            Format.printf "  parallel time:     %12.0f us  (speedup %.2f)@."
              r.A.time_us (seq /. r.A.time_us);
            Format.printf "  verification:      max error %g %s@." r.A.max_err
              (if r.A.max_err <= 1e-6 then "(correct)" else "(WRONG)");
            Format.printf "  %a@." Core.Stats.pp r.A.stats;
            if digest && r.A.digest <> "" then
              Format.printf "  digest:            %s@." r.A.digest;
            if prof then
              Format.printf "@[<v>  host-cost profile:@,%a@]@." Core.Prof.pp_table
                ();
            if not (Core.Net_plan.is_passthrough plan) then begin
              let s = r.A.stats in
              Format.printf "  fault plan:        %a@." Core.Net_plan.pp plan;
              Format.printf "  fault summary:     %10s %10s %10s %10s@."
                "dropped" "timeouts" "retrans" "duplicates";
              Format.printf "                     %10d %10d %10d %10d@."
                s.Core.Stats.dropped s.Core.Stats.timeouts
                s.Core.Stats.retransmits s.Core.Stats.duplicates
            end;
            (match sink with
            | None ->
                if trace_file <> None || check then
                  Format.eprintf
                    "note: --trace/--check apply to the tmk version only@.";
                `Ok ()
            | Some sink ->
                Format.printf "  trace: %d events (%d dropped)@."
                  (Core.Trace.Sink.emitted sink)
                  (Core.Trace.Sink.dropped sink);
                Format.printf "%a@." Core.Harness.Phases.pp
                  (Core.Harness.Phases.of_events (Core.Trace.Sink.events sink));
                let write_err =
                  match trace_file with
                  | Some file -> (
                      match open_out file with
                      | oc ->
                          Fun.protect
                            ~finally:(fun () -> close_out oc)
                            (fun () -> Core.Trace.Sink.write_jsonl oc sink);
                          Format.printf "  trace written to %s@." file;
                          None
                      | exception Sys_error msg ->
                          Some ("cannot write trace: " ^ msg))
                  | None -> None
                in
                match write_err with
                | Some msg -> `Error (false, msg)
                | None ->
                if check then begin
                  match Core.Trace.Check.run_sink sink with
                  | [] ->
                      Format.printf "  checker: 0 violations@.";
                      `Ok ()
                  | vs ->
                      Format.printf "@[<v>  checker: %d violations@,%a@]@."
                        (List.length vs)
                        (Format.pp_print_list Core.Trace.Check.pp_violation)
                        vs;
                      `Error (false, "LRC invariant violations found")
                end
                else `Ok ()))))))

let cmd =
  let version =
    Arg.(
      value & opt string "tmk"
      & info [ "version"; "v" ] ~doc:"Version: tmk, pvm or xhpf.")
  in
  let size =
    Arg.(value & opt string "small" & info [ "size"; "s" ] ~doc:"large or small.")
  in
  let sync =
    Arg.(value & flag & info [ "sync" ] ~doc:"Synchronous data fetching.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record the protocol events of the (tmk) run to $(docv) as JSON \
             lines and print a per-phase summary.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Replay the recorded trace through the LRC invariant checker; \
             exit non-zero on violations.")
  in
  let recheck =
    Arg.(
      value
      & opt (some string) None
      & info [ "recheck" ] ~docv:"FILE"
          ~doc:
            "Replay a previously recorded JSONL trace through the invariant \
             checker instead of running an application ($(b,--procs) must \
             match the recorded run). Unknown event kinds and a truncated \
             final line are reported as warnings and skipped.")
  in
  let strict_recheck =
    Arg.(
      value & flag
      & info [ "strict-recheck" ]
          ~doc:
            "With $(b,--recheck): exit non-zero when the trace loaded with \
             any warnings (unknown event kinds, torn final line), not only \
             on invariant violations — for CI, where a silently truncated \
             trace must not pass as checked.")
  in
  let digest =
    Arg.(
      value & flag
      & info [ "digest" ]
          ~doc:
            "Print a content digest of the final shared state, read through \
             the protocol after the run (tmk versions only). Two runs that \
             print the same digest ended with bit-identical shared memory — \
             the basis of the crash-recovery equivalence check in CI.")
  in
  let prof =
    Arg.(
      value & flag
      & info [ "prof" ]
          ~doc:
            "Profile the simulator's own host cost: print a per-subsystem \
             self-time and allocation table after the run. Simulated results \
             are unchanged.")
  in
  let list = Arg.(value & flag & info [ "list" ] ~doc:"List applications.") in
  let knobs = Cli.knobs_t in
  let doc = "run a benchmark application on the simulated DSM" in
  Cmd.v
    (Cmd.info "dsm_run" ~doc)
    Term.(
      ret
        (const run $ Cli.app_t $ version $ Cli.level_t ~default:"push" $ size
       $ Cli.procs_t $ Cli.term $ sync $ trace_file $ check $ recheck
       $ strict_recheck $ digest $ Cli.plan_t $ prof $ list $ knobs))

let () = exit (Cmd.eval cmd)

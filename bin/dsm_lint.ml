(* dsm_lint: static data-race detector and Validate/Push soundness
   verifier for the IR pipeline.

     dsm_lint --program all --procs 1,2,4,8 --mode race
     dsm_lint --program jacobi --procs 2 --mode verify --level push
     dsm_lint --program jacobi --procs 2 --mode diff
     dsm_lint --program all --procs 1,2,4,8            # all modes

   Modes:
     race    cross-processor data-race detection on the source program
             and on each requested transformation level's output
     verify  Validate/Push soundness of each transformation level
     diff    run the transformed program on the simulated run-time and
             check every dynamic page access against the static summary

   Exit code 0 when nothing above a warning was found (or nothing at
   all under --strict), 1 for warnings under --strict, 2 for errors.

   The argument vocabulary shared with dsm_run (levels, processors,
   backend, network faults) lives in {!Core.Harness.Cli}; [--backend]
   and the fault knobs select the run-time configuration of the
   dynamic diff mode (race and verify are static and unaffected). *)

open Cmdliner
module Ir = Core.Compiler.Ir
module Programs = Core.Compiler.Programs
module Transform = Core.Compiler.Transform
module Diag = Core.Lint.Diag
module Cli = Core.Harness.Cli

let programs : (string * Ir.program) list =
  [
    ("jacobi", Programs.jacobi ~m:48 ~iters:3);
    ("transpose", Programs.transpose ~m:32 ~iters:2);
    ("redblack", Programs.redblack ~n:128 ~iters:3);
    ("masked", Programs.masked ~m:64 ~iters:3);
    ("lock_accum", Programs.lock_accum ~n:64 ~iters:3);
  ]

(* The level names are {!Cli.level_names}; the transformation recipes
   they select are compiler-side and so stay here. *)
let levels : (string * Transform.opts) list =
  List.map
    (fun name ->
      ( name,
        match name with
        | "base" -> Transform.base
        | "aggr" -> Transform.level_aggregate
        | "cons" -> Transform.level_cons_elim
        | "merge" -> Transform.level_sync_merge
        | "push" -> Transform.level_push
        | _ -> assert false ))
    Cli.level_names

let run_race prog ~nprocs =
  let source = Core.Lint.Race.check prog ~nprocs in
  (* A race in the source shows up at every level; only scan the
     transformed outputs when the source is clean. *)
  if source <> [] then source
  else
    List.concat_map
      (fun (_, opts) ->
        let transformed, _ = Transform.transform prog ~nprocs ~opts in
        Core.Lint.Race.check transformed ~nprocs)
      levels

let run_verify prog ~nprocs level_names =
  List.concat_map
    (fun name ->
      let opts = List.assoc name levels in
      let transformed, _ = Transform.transform prog ~nprocs ~opts in
      Core.Lint.Verify.run ~orig:prog ~transformed ~nprocs)
    level_names

let run_diff prog ~cfg ~nprocs level_names =
  if nprocs = 1 then []
    (* single-processor runs have no consistency traffic to check *)
  else
    List.concat_map
      (fun lname ->
        let opts = List.assoc lname levels in
        let r = Core.Lint.Differential.run ~opts ~cfg prog ~nprocs in
        Array.iteri
          (fun p (s : Core.Lint.Differential.proc_stat) ->
            Format.printf
              "  %-10s %-5s p%d: %d static pages, %d dynamic, %d covered@."
              prog.Ir.pname lname p s.Core.Lint.Differential.static_pages
              s.Core.Lint.Differential.dynamic_pages
              s.Core.Lint.Differential.covered_pages)
          r.Core.Lint.Differential.per_proc;
        if r.Core.Lint.Differential.dropped > 0 then
          Diag.make Diag.Warning ~program:prog.Ir.pname
            (Diag.Structure
               {
                 reason =
                   Printf.sprintf
                     "trace dropped %d events; check incomplete"
                     r.Core.Lint.Differential.dropped;
               })
          :: r.Core.Lint.Differential.diags
        else r.Core.Lint.Differential.diags)
      level_names

let main prog_arg procs_arg mode level_arg common strict =
  let ( let* ) r f = match r with Error e -> `Error (false, e) | Ok v -> f v in
  let* prog_names =
    Cli.parse_name_list ~known:(List.map fst programs) ~what:"program" prog_arg
  in
  let* level_names =
    Cli.parse_name_list ~known:Cli.level_names ~what:"level" level_arg
  in
  let* procs = Cli.parse_procs procs_arg in
  let* cfg = Cli.config common in
  let* modes =
    match mode with
    | "all" -> Ok [ "race"; "verify"; "diff" ]
    | ("race" | "verify" | "diff") as m -> Ok [ m ]
    | m -> Error ("unknown mode: " ^ m ^ " (race, verify, diff or all)")
  in
  let diags =
    List.concat_map
      (fun pname ->
        let prog = List.assoc pname programs in
        List.concat_map
          (fun nprocs ->
            List.concat_map
              (function
                | "race" -> run_race prog ~nprocs
                | "verify" -> run_verify prog ~nprocs level_names
                | "diff" -> run_diff prog ~cfg ~nprocs level_names
                | _ -> assert false)
              modes)
          procs)
      prog_names
  in
  Format.printf "@[<v>%a@]@." Diag.pp_report diags;
  let code = Diag.exit_code ~strict diags in
  if code = 0 then `Ok () else exit code

let cmd =
  let prog =
    Arg.(
      value & opt string "all"
      & info [ "program"; "P" ] ~docv:"NAME"
          ~doc:
            "Comma-separated IR programs to lint, or $(b,all): jacobi, \
             transpose, redblack, masked, lock_accum.")
  in
  let mode =
    Arg.(
      value & opt string "all"
      & info [ "mode"; "m" ] ~doc:"Analysis: race, verify, diff or all.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Exit non-zero on warnings as well.")
  in
  let doc = "static data-race detection and transformation verification" in
  Cmd.v
    (Cmd.info "dsm_lint" ~doc)
    Term.(
      ret
        (const main $ prog $ Cli.procs_list_t $ mode
       $ Cli.level_t ~default:"all" $ Cli.term $ strict))

let () = exit (Cmd.eval cmd)

(* dsm_lint: static data-race detector and Validate/Push soundness
   verifier for the IR pipeline.

     dsm_lint --program all --procs 1,2,4,8 --mode race
     dsm_lint --program jacobi --procs 2 --mode verify --level push
     dsm_lint --program jacobi --procs 2 --mode diff
     dsm_lint --program all --procs 1,2,4,8            # all modes
     dsm_lint --mode plan --app jacobi --procs 4 --level push \
              --plan-out jacobi.plan.jsonl
     dsm_lint --mode plan --app all --procs 4 --grade

   Modes:
     race    cross-processor data-race detection on the source program
             and on each requested transformation level's output
     verify  Validate/Push soundness of each transformation level
     diff    run the transformed program on the simulated run-time and
             check every dynamic page access against the static summary
     plan    classify every shared page's sharing pattern statically
             (--app selects the benchmark applications), write protocol-
             placement plans for dsm_run --plan, and with --grade run
             the traced adaptive backend and grade the predictions

   Exit code 0 when nothing above a warning was found (or nothing at
   all under --strict), 1 for warnings under --strict, 2 for errors.

   The argument vocabulary shared with dsm_run (levels, processors,
   backend, network faults) lives in {!Core.Harness.Cli}; [--backend]
   and the fault knobs select the run-time configuration of the
   dynamic diff mode (race and verify are static and unaffected). *)

open Cmdliner
module Ir = Core.Compiler.Ir
module Programs = Core.Compiler.Programs
module Transform = Core.Compiler.Transform
module Diag = Core.Lint.Diag
module Cli = Core.Harness.Cli

let programs : (string * Ir.program) list =
  [
    ("jacobi", Programs.jacobi ~m:48 ~iters:3);
    ("transpose", Programs.transpose ~m:32 ~iters:2);
    ("redblack", Programs.redblack ~n:128 ~iters:3);
    ("masked", Programs.masked ~m:64 ~iters:3);
    ("lock_accum", Programs.lock_accum ~n:64 ~iters:3);
  ]

(* The level names are {!Cli.level_names}; the transformation recipes
   they select are compiler-side and so stay here. *)
let levels : (string * Transform.opts) list =
  List.map
    (fun name ->
      ( name,
        match name with
        | "base" -> Transform.base
        | "aggr" -> Transform.level_aggregate
        | "cons" -> Transform.level_cons_elim
        | "merge" -> Transform.level_sync_merge
        | "push" -> Transform.level_push
        | _ -> assert false ))
    Cli.level_names

let run_race prog ~nprocs =
  let source = Core.Lint.Race.check prog ~nprocs in
  (* A race in the source shows up at every level; only scan the
     transformed outputs when the source is clean. *)
  if source <> [] then source
  else
    List.concat_map
      (fun (_, opts) ->
        let transformed, _ = Transform.transform prog ~nprocs ~opts in
        Core.Lint.Race.check transformed ~nprocs)
      levels

let run_verify prog ~nprocs level_names =
  List.concat_map
    (fun name ->
      let opts = List.assoc name levels in
      let transformed, _ = Transform.transform prog ~nprocs ~opts in
      Core.Lint.Verify.run ~orig:prog ~transformed ~nprocs)
    level_names

let run_diff prog ~cfg ~nprocs level_names =
  if nprocs = 1 then []
    (* single-processor runs have no consistency traffic to check *)
  else
    List.concat_map
      (fun lname ->
        let opts = List.assoc lname levels in
        let r = Core.Lint.Differential.run ~opts ~cfg prog ~nprocs in
        Array.iteri
          (fun p (s : Core.Lint.Differential.proc_stat) ->
            Format.printf
              "  %-10s %-5s p%d: %d static pages, %d dynamic, %d covered, \
               %d dropped@."
              prog.Ir.pname lname p s.Core.Lint.Differential.static_pages
              s.Core.Lint.Differential.dynamic_pages
              s.Core.Lint.Differential.covered_pages
              s.Core.Lint.Differential.dropped)
          r.Core.Lint.Differential.per_proc;
        if r.Core.Lint.Differential.dropped > 0 then
          Diag.make Diag.Warning ~program:prog.Ir.pname
            (Diag.Structure
               {
                 reason =
                   Printf.sprintf
                     "trace dropped %d events; check incomplete"
                     r.Core.Lint.Differential.dropped;
               })
          :: r.Core.Lint.Differential.diags
        else r.Core.Lint.Differential.diags)
      level_names

(* {1 Plan mode: static sharing-pattern classification of the shipped
      applications} *)

module Plan = Core.Proto_plan
module Classify = Core.Lint.Classify
module App_models = Core.Lint.App_models
module Differential = Core.Lint.Differential

(* Grade the plan against a traced run of the adaptive backend: compare
   the static decisions with the final dynamic classification and with
   every Proto_switch the run performed. *)
let grade_plan ~cfg ~nprocs ~level (plan : Plan.t)
    (spec : App_models.spec) =
  match (Cli.find_app spec.App_models.name, Cli.find_level level) with
  | None, _ | _, None -> []
  | Some m, Some l -> (
      let module W = (val m : Core.Apps.Workload.S) in
      match List.assoc_opt "small" W.sizes with
      | None -> []
      | Some size ->
      let cfg =
        match Core.Config.backend_of_string "adaptive" with
        | Some b -> { cfg with Core.Config.backend = b }
        | None -> cfg
      in
      let cfg = Core.Config.with_procs cfg nprocs in
      let sink = Core.Trace.Sink.create ~nprocs () in
      let r =
        W.tmk ~trace:sink cfg ~size ~behavior:W.default_behavior ~level:l
          ~async:true
      in
      let g =
        Differential.grade ~plan ~classes:r.Core.Apps.Common.classes
          ~events:(Core.Trace.Sink.events sink)
      in
      let pct a b = if b = 0 then 100.0 else 100.0 *. float a /. float b in
      Format.printf
        "  %-8s %-5s p%d: exact %d/%d agree (%.1f%%), inexact %d/%d \
         (%.1f%%), %d mispredictions@."
        spec.App_models.name level nprocs g.Differential.exact_agreed
        g.Differential.exact_pages
        (pct g.Differential.exact_agreed g.Differential.exact_pages)
        g.Differential.inexact_agreed g.Differential.inexact_pages
        (pct g.Differential.inexact_agreed g.Differential.inexact_pages)
        (List.length g.Differential.mispredictions);
      List.iter
        (fun (c : Differential.class_stat) ->
          Format.printf "           %-6s %-7s %d/%d@." c.Differential.cs_proto
            (Plan.confidence_name c.Differential.cs_confidence)
            c.Differential.cs_agreed c.Differential.cs_pages)
        g.Differential.by_class;
      List.map
        (fun (mp : Differential.misprediction) ->
          let got =
            match mp.Differential.mp_got with
            | Some (proto, owner) -> Printf.sprintf "%s/%d" proto owner
            | None -> "lrc (never classified)"
          in
          let expected, eo = mp.Differential.mp_expected in
          Diag.make Diag.Error ~program:spec.App_models.name
            (Diag.Structure
               {
                 reason =
                   Printf.sprintf
                     "misprediction: page %d (%s) predicted %s/%d exact, \
                      run ended %s%s"
                     mp.Differential.mp_page mp.Differential.mp_array
                     expected eo got
                     (if mp.Differential.mp_switched then
                        " (switched away mid-run)"
                      else "");
               }))
        g.Differential.mispredictions)

let run_plan ~cfg ~nprocs ~level ~plan_out ~single ~grade
    (spec : App_models.spec) =
  let page_size = cfg.Core.Config.page_size in
  let model =
    spec.App_models.build ~nprocs ~page_size ~size:App_models.Small
  in
  match
    Classify.plan ~program:spec.App_models.name ~level ~nprocs model
  with
  | exception Invalid_argument e ->
      [
        Diag.make Diag.Error ~program:spec.App_models.name
          (Diag.Structure { reason = "plan generation failed: " ^ e });
      ]
  | plan ->
      let n_exact =
        List.fold_left
          (fun acc (d : Plan.directive) ->
            acc + (d.Plan.hi_page - d.Plan.lo_page + 1))
          0
          (Plan.exact_directives plan)
      in
      Format.printf
        "  %-8s %-5s p%d: %d directives, %d pages (%d exact)@."
        spec.App_models.name level nprocs
        (List.length plan.Plan.directives)
        (Plan.n_pages plan) n_exact;
      (match plan_out with
      | None -> ()
      | Some path ->
          let file =
            if single then path
            else begin
              (try Sys.mkdir path 0o755 with Sys_error _ -> ());
              Filename.concat path
                (Printf.sprintf "%s-%s-p%d.plan.jsonl" spec.App_models.name
                   level nprocs)
            end
          in
          Plan.save file plan;
          Format.printf "    written to %s@." file);
      if grade then grade_plan ~cfg ~nprocs ~level plan spec else []

let main prog_arg app_arg procs_arg mode level_arg plan_out grade common
    strict =
  let ( let* ) r f = match r with Error e -> `Error (false, e) | Ok v -> f v in
  let* prog_names =
    Cli.parse_name_list ~known:(List.map fst programs) ~what:"program" prog_arg
  in
  let* app_names =
    Cli.parse_name_list ~known:App_models.names ~what:"app" app_arg
  in
  let* level_names =
    Cli.parse_name_list ~known:Cli.level_names ~what:"level" level_arg
  in
  let* procs = Cli.parse_procs procs_arg in
  let* cfg = Cli.config common in
  let* modes =
    match mode with
    | "all" -> Ok [ "race"; "verify"; "diff" ]
    | ("race" | "verify" | "diff" | "plan") as m -> Ok [ m ]
    | m -> Error ("unknown mode: " ^ m ^ " (race, verify, diff, plan or all)")
  in
  let plan_diags =
    if not (List.mem "plan" modes) then []
    else begin
      let single =
        List.length app_names = 1
        && List.length procs = 1
        && List.length level_names = 1
      in
      List.concat_map
        (fun name ->
          match App_models.find name with
          | None -> []
          | Some spec ->
              List.concat_map
                (fun nprocs ->
                  List.concat_map
                    (fun level ->
                      run_plan ~cfg ~nprocs ~level ~plan_out ~single ~grade
                        spec)
                    level_names)
                procs)
        app_names
    end
  in
  let static_modes = List.filter (fun m -> m <> "plan") modes in
  let diags =
    plan_diags
    @ List.concat_map
        (fun pname ->
          let prog = List.assoc pname programs in
          List.concat_map
            (fun nprocs ->
              List.concat_map
                (function
                  | "race" -> run_race prog ~nprocs
                  | "verify" -> run_verify prog ~nprocs level_names
                  | "diff" -> run_diff prog ~cfg ~nprocs level_names
                  | _ -> assert false)
                static_modes)
            procs)
        prog_names
  in
  Format.printf "@[<v>%a@]@." Diag.pp_report diags;
  let code = Diag.exit_code ~strict diags in
  if code = 0 then `Ok () else exit code

let cmd =
  let prog =
    Arg.(
      value & opt string "all"
      & info [ "program"; "P" ] ~docv:"NAME"
          ~doc:
            "Comma-separated IR programs to lint, or $(b,all): jacobi, \
             transpose, redblack, masked, lock_accum.")
  in
  let mode =
    Arg.(
      value & opt string "all"
      & info [ "mode"; "m" ] ~doc:"Analysis: race, verify, diff, plan or all.")
  in
  let app_arg =
    Arg.(
      value & opt string "all"
      & info [ "app"; "a" ] ~docv:"NAME"
          ~doc:
            "Comma-separated benchmark applications for $(b,--mode plan), \
             or $(b,all): jacobi, fft3d, shallow, is, gauss, mgs.")
  in
  let plan_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan-out" ] ~docv:"PATH"
          ~doc:
            "Write the generated protocol-placement plan(s). A single \
             app/level/procs combination writes $(docv) itself; multiple \
             combinations treat $(docv) as a directory of \
             $(i,app-level-pN.plan.jsonl) files.")
  in
  let grade =
    Arg.(
      value & flag
      & info [ "grade" ]
          ~doc:
            "With $(b,--mode plan): run the traced adaptive backend and \
             grade the static predictions against the dynamic \
             classification; a switch away from an exact-confidence \
             decision is an error.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Exit non-zero on warnings as well.")
  in
  let doc = "static data-race detection and transformation verification" in
  Cmd.v
    (Cmd.info "dsm_lint" ~doc)
    Term.(
      ret
        (const main $ prog $ app_arg $ Cli.procs_list_t $ mode
       $ Cli.level_t ~default:"all" $ plan_out $ grade $ Cli.term $ strict))

let () = exit (Cmd.eval cmd)

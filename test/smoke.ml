(* Quick runtime smoke test during development; superseded by the full
   suites. *)

module Tmk = Dsm_tmk.Tmk

let () =
  let cfg = { Dsm_sim.Config.default with nprocs = 4 } in
  let sys = Tmk.make cfg in
  let n = 64 in
  let b = Tmk.Alloc.array sys "b" Tmk.F64 ~dims:[ n; n ] in
  let a = Tmk.Alloc.array sys "a" Tmk.F64 ~dims:[ n; n ] in
  Tmk.run sys (fun t ->
      let p = Tmk.pid t
      and np = Tmk.nprocs t in
      let cols = n / np in
      let begin_ = p * cols
      and end_ = (p * cols) + cols - 1 in
      (* init own columns *)
      for j = begin_ to end_ do
        for i = 0 to n - 1 do
          Tmk.Shm.F64_2.set t b i j (float_of_int ((i * n) + j))
        done
      done;
      Tmk.barrier t;
      for _iter = 1 to 5 do
        for j = begin_ to end_ do
          for i = 1 to n - 2 do
            if j > 0 && j < n - 1 then begin
              let v =
                0.25
                *. (Tmk.Shm.F64_2.get t b (i - 1) j
                   +. Tmk.Shm.F64_2.get t b (i + 1) j
                   +. Tmk.Shm.F64_2.get t b i (j - 1)
                   +. Tmk.Shm.F64_2.get t b i (j + 1))
              in
              Tmk.Shm.F64_2.set t a i j v
            end
          done
        done;
        Tmk.barrier t;
        for j = begin_ to end_ do
          for i = 1 to n - 2 do
            if j > 0 && j < n - 1 then
              Tmk.Shm.F64_2.set t b i j (Tmk.Shm.F64_2.get t a i j)
          done
        done;
        Tmk.barrier t
      done);
  (* sequential reference *)
  let bb = Array.init n (fun i -> Array.init n (fun j -> float_of_int ((i * n) + j))) in
  let aa = Array.make_matrix n n 0.0 in
  for _iter = 1 to 5 do
    for i = 1 to n - 2 do
      for j = 1 to n - 2 do
        aa.(i).(j) <-
          0.25 *. (bb.(i - 1).(j) +. bb.(i + 1).(j) +. bb.(i).(j - 1) +. bb.(i).(j + 1))
      done
    done;
    for i = 1 to n - 2 do
      for j = 1 to n - 2 do
        bb.(i).(j) <- aa.(i).(j)
      done
    done
  done;
  (* check: read b from proc-0's copy via a fresh run *)
  let errors = ref 0 in
  Tmk.run sys (fun t ->
      if Tmk.pid t = 0 then
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            let got = Tmk.Shm.F64_2.get t b i j in
            if abs_float (got -. bb.(i).(j)) > 1e-9 then incr errors
          done
        done);
  let st = Tmk.total_stats sys in
  Format.printf "errors=%d elapsed=%.0fus@.%a@." !errors (Tmk.elapsed sys)
    Dsm_sim.Stats.pp st;
  ignore a;
  if !errors > 0 then exit 1

(* Tests of the dsm_lint static analyses: the cross-processor race
   detector, the Validate/Push soundness verifier, and the
   static-vs-dynamic differential. *)

module Lin = Dsm_compiler.Lin
module Ir = Dsm_compiler.Ir
module Access = Dsm_compiler.Access
module Conc = Dsm_compiler.Conc
module Sym_rsd = Dsm_compiler.Sym_rsd
module Programs = Dsm_compiler.Programs
module Transform = Dsm_compiler.Transform
module Diag = Dsm_lint.Diag
module Race = Dsm_lint.Race
module Verify = Dsm_lint.Verify
module Differential = Dsm_lint.Differential
module Range = Dsm_rsd.Range

let v = Lin.var
let c = Lin.const

let shipped () =
  [
    Programs.jacobi ~m:16 ~iters:2;
    Programs.transpose ~m:16 ~iters:2;
    Programs.redblack ~n:64 ~iters:2;
    Programs.masked ~m:32 ~iters:2;
    Programs.lock_accum ~n:32 ~iters:2;
  ]

let levels =
  [
    ("base", Transform.base);
    ("aggr", Transform.level_aggregate);
    ("cons", Transform.level_cons_elim);
    ("merge", Transform.level_sync_merge);
    ("push", Transform.level_push);
  ]

let check_clean name ds =
  if ds <> [] then
    Alcotest.failf "%s: unexpected diagnostics:@;%a" name
      (Format.pp_print_list Diag.pp)
      ds

let has pred ds = List.exists (fun d -> pred d.Diag.kind) ds
let errors ds = List.filter Diag.is_error ds

(* AST rewriting for the hand-mutated negative tests: [f] returns a
   replacement statement list, or None to keep the statement and
   recurse into it. *)
let rec map_stmts f stmts =
  List.concat_map
    (fun s ->
      match f s with
      | Some repl -> repl
      | None -> (
          match s with
          | Ir.For l -> [ Ir.For { l with Ir.body = map_stmts f l.Ir.body } ]
          | Ir.If_lt (a, b, t, e) ->
              [ Ir.If_lt (a, b, map_stmts f t, map_stmts f e) ]
          | s -> [ s ]))
    stmts

let mutate prog f = { prog with Ir.body = map_stmts f prog.Ir.body }

(* {2 Race detection} *)

(* Block-partitioned parallel write loop inside a steady-state loop.
   [spill] extends every interior processor's partition [spill] elements
   into its right neighbour's block: 0 is data-race-free, >= 1 is an
   adjacent write/write race on [a]. [guarded] wraps the assignment in a
   conditional, making the summaries inexact. Nobody writes [b]. *)
let blockwrite ?(guarded = false) ~n ~spill () =
  {
    Ir.pname = "blockwrite";
    params = [ ("n", n) ];
    arrays = [ ("a", [ c n ]); ("b", [ c (n + 8) ]) ];
    privates = [];
    proc_bindings =
      (fun ~nprocs ~p ->
        let chunk = n / nprocs in
        let lo = p * chunk in
        let hi =
          if p = nprocs - 1 then n - 1 else ((p + 1) * chunk) - 1 + spill
        in
        [ ("begin", lo); ("end", hi); ("p", p) ]);
    body =
      [
        Ir.For
          {
            ivar = "k";
            lo = c 1;
            hi = c 2;
            body =
              [
                Ir.For
                  {
                    ivar = "i";
                    lo = v "begin";
                    hi = v "end";
                    body =
                      (let asn =
                         Ir.Assign
                           ( { Ir.aname = "a"; aidx = [ v "i" ] },
                             Ir.Load
                               {
                                 Ir.aname = "b";
                                 aidx = [ Lin.offset (v "i") 4 ];
                               } )
                       in
                       if guarded then
                         [ Ir.If_lt (v "i", c (n - 1), [ asn ], []) ]
                       else [ asn ]);
                  };
                Ir.Barrier 1;
              ];
          };
      ];
  }

let test_shipped_race_free () =
  List.iter
    (fun prog ->
      List.iter
        (fun nprocs ->
          check_clean
            (Printf.sprintf "%s source, %d procs" prog.Ir.pname nprocs)
            (Race.check prog ~nprocs);
          List.iter
            (fun (lname, opts) ->
              let t, _ = Transform.transform prog ~nprocs ~opts in
              check_clean
                (Printf.sprintf "%s %s, %d procs" prog.Ir.pname lname nprocs)
                (Race.check t ~nprocs))
            levels)
        [ 1; 2; 4; 8 ])
    (shipped ())

let test_seeded_race () =
  let ds = Race.check (blockwrite ~n:32 ~spill:1 ()) ~nprocs:4 in
  Alcotest.(check bool) "race reported" true (ds <> []);
  List.iter
    (fun d ->
      Alcotest.(check bool) "is error" true (Diag.is_error d);
      match d.Diag.kind with
      | Diag.Race { array; race; inexact; _ } ->
          Alcotest.(check string) "array" "a" array;
          Alcotest.(check bool)
            "write-write" true
            (race = Diag.Write_write);
          Alcotest.(check bool) "exact" false inexact
      | _ -> Alcotest.fail "non-race diagnostic")
    ds

let test_inexact_race_is_warning () =
  let ds = Race.check (blockwrite ~guarded:true ~n:32 ~spill:1 ()) ~nprocs:4 in
  Alcotest.(check bool) "race reported" true (ds <> []);
  Alcotest.(check int) "no errors" 0 (List.length (errors ds));
  List.iter
    (fun d ->
      match d.Diag.kind with
      | Diag.Race { inexact; _ } ->
          Alcotest.(check bool) "flagged inexact" true inexact;
          Alcotest.(check bool)
            "warning severity" true
            (d.Diag.severity = Diag.Warning)
      | _ -> Alcotest.fail "non-race diagnostic")
    ds

(* Regression for the cyclic steady state: the region after Jacobi's last
   barrier wraps around to the compute phase, whose reads extend one
   column into each neighbour (the paper's Fprec(p1) = b2). The wrapped
   reads must be in the summary — and must not be reported as a race. *)
let test_jacobi_wraparound () =
  let prog = Programs.jacobi ~m:16 ~iters:2 in
  let nprocs = 2 in
  let res = Access.analyze prog ~nprocs in
  Alcotest.(check bool) "steady state found" true res.Access.cyclic;
  let r =
    match Access.find_region_after res (res.Access.sync_count - 1) with
    | Some r -> r
    | None -> Alcotest.fail "no wrap-around region"
  in
  let e =
    match Access.entry r "b" with
    | Some e -> e
    | None -> Alcotest.fail "wrap-around region has no entry for b"
  in
  Alcotest.(check bool) "reads b" true e.Access.tag.Access.read;
  let reads =
    match e.Access.reads with
    | Some s -> s
    | None -> Alcotest.fail "no read summary for b"
  in
  (* processor 0 must read into its neighbour's first column *)
  let binding = Conc.binding prog ~nprocs ~p:0 in
  let hi = binding "end" in
  let m = binding "M" in
  let neighbour_col_addr = 8 * m * (hi + 1) in
  let rng = Conc.ranges prog ~nprocs ~p:0 "b" reads in
  Alcotest.(check bool)
    "Fprec(p1) includes b's neighbour column" true
    (Range.mem neighbour_col_addr rng);
  check_clean "jacobi wrap-around" (Race.check prog ~nprocs)

(* {2 Property tests: random DRF partitions vs seeded overlaps} *)

let gen_conf =
  QCheck.Gen.(
    oneofl [ 2; 4; 8 ] >>= fun nprocs ->
    int_range 2 6 >>= fun mult ->
    int_range 1 3 >>= fun spill -> return (2 * nprocs * mult, nprocs, spill))

let print_conf (n, nprocs, spill) =
  Printf.sprintf "n=%d nprocs=%d spill=%d" n nprocs spill

let prop_drf =
  QCheck.Test.make ~count:60 ~name:"random block partitions are race-free"
    (QCheck.make ~print:print_conf gen_conf)
    (fun (n, nprocs, _) ->
      Race.check (blockwrite ~n ~spill:0 ()) ~nprocs = [])

let prop_mutated =
  QCheck.Test.make ~count:60
    ~name:"extending one partition bound yields exactly that race"
    (QCheck.make ~print:print_conf gen_conf)
    (fun (n, nprocs, spill) ->
      let ds = Race.check (blockwrite ~n ~spill ()) ~nprocs in
      ds <> []
      && List.for_all
           (fun d ->
             Diag.is_error d
             &&
             match d.Diag.kind with
             | Diag.Race { array = "a"; race = Diag.Write_write; _ } -> true
             | _ -> false)
           ds)

(* {2 Transform verification} *)

let test_verify_shipped_clean () =
  List.iter
    (fun prog ->
      List.iter
        (fun nprocs ->
          List.iter
            (fun (lname, opts) ->
              let t, _ = Transform.transform prog ~nprocs ~opts in
              check_clean
                (Printf.sprintf "%s %s, %d procs" prog.Ir.pname lname nprocs)
                (Verify.run ~orig:prog ~transformed:t ~nprocs))
            levels)
        [ 1; 2; 4; 8 ])
    (shipped ())

let transform_jacobi level =
  let prog = Programs.jacobi ~m:16 ~iters:2 in
  let t, _ = Transform.transform prog ~nprocs:2 ~opts:level in
  (prog, t)

let shrink_last_dim (s : Sym_rsd.t) =
  match List.rev s.Sym_rsd.dims with
  | last :: rest ->
      {
        s with
        Sym_rsd.dims =
          List.rev
            ({ last with Sym_rsd.hi = Lin.offset last.Sym_rsd.hi (-1) }
            :: rest);
      }
  | [] -> s

let widen_last_dim (s : Sym_rsd.t) =
  match List.rev s.Sym_rsd.dims with
  | last :: rest ->
      {
        s with
        Sym_rsd.dims =
          List.rev
            ({
               last with
               Sym_rsd.lo = Lin.offset last.Sym_rsd.lo (-1);
               Sym_rsd.hi = Lin.offset last.Sym_rsd.hi 1;
             }
            :: rest);
      }
  | [] -> s

(* A Push that no longer sends a column the receiver fetches: the
   verifier must flag the uncovered fetch. *)
let test_verify_rejects_shrunk_push () =
  let prog, t = transform_jacobi Transform.level_push in
  let t' =
    mutate t (function
      | Ir.Push pc ->
          Some
            [
              Ir.Push
                {
                  pc with
                  Ir.pwrite =
                    List.map
                      (fun (a, s) -> (a, shrink_last_dim s))
                      pc.Ir.pwrite;
                };
            ]
      | _ -> None)
  in
  let ds = Verify.run ~orig:prog ~transformed:t' ~nprocs:2 in
  Alcotest.(check bool)
    "missing validate reported" true
    (has (function Diag.Missing_validate _ -> true | _ -> false)
       (errors ds))

(* Deleting the aggregated READ validate leaves the compute region's
   boundary fetches uncovered. *)
let test_verify_rejects_dropped_validate () =
  let prog, t = transform_jacobi Transform.level_aggregate in
  let t' =
    mutate t (function
      | Ir.Validate vc when vc.Ir.vaccess = Dsm_tmk.Tmk.Read -> Some []
      | _ -> None)
  in
  let ds = Verify.run ~orig:prog ~transformed:t' ~nprocs:2 in
  Alcotest.(check bool)
    "missing validate reported" true
    (has (function Diag.Missing_validate _ -> true | _ -> false)
       (errors ds))

(* A WRITE_ALL over more than the region writes would mark stale pages
   valid without fetching them. *)
let test_verify_rejects_widened_write_all () =
  let prog, t = transform_jacobi Transform.level_push in
  let t' =
    mutate t (function
      | Ir.Validate vc when vc.Ir.vaccess = Dsm_tmk.Tmk.Write_all ->
          Some
            [
              Ir.Validate
                {
                  vc with
                  Ir.vsections =
                    List.map
                      (fun (a, s) -> (a, widen_last_dim s))
                      vc.Ir.vsections;
                };
            ]
      | _ -> None)
  in
  let ds = Verify.run ~orig:prog ~transformed:t' ~nprocs:2 in
  Alcotest.(check bool)
    "bad WRITE_ALL reported" true
    (has (function Diag.Bad_all_validate _ -> true | _ -> false)
       (errors ds))

(* Flipping a READ validate to WRITE_ALL disables consistency on data
   the region only reads. *)
let test_verify_rejects_flipped_access () =
  let prog, t = transform_jacobi Transform.level_aggregate in
  let t' =
    mutate t (function
      | Ir.Validate vc when vc.Ir.vaccess = Dsm_tmk.Tmk.Read ->
          Some
            [ Ir.Validate { vc with Ir.vaccess = Dsm_tmk.Tmk.Write_all } ]
      | _ -> None)
  in
  let ds = Verify.run ~orig:prog ~transformed:t' ~nprocs:2 in
  Alcotest.(check bool)
    "bad WRITE_ALL reported" true
    (has (function Diag.Bad_all_validate _ -> true | _ -> false)
       (errors ds))

(* Replacing the barrier the transformation must keep: a cross-processor
   anti-dependence (neighbour reads the old boundary column before the
   copy-back overwrites it) crosses Barrier(1). *)
let test_verify_rejects_illegal_push () =
  let prog, t = transform_jacobi Transform.level_aggregate in
  let t' =
    mutate t (function
      | Ir.Barrier 1 -> Some [ Ir.Push { Ir.pread = []; pwrite = [] } ]
      | _ -> None)
  in
  let ds = Verify.run ~orig:prog ~transformed:t' ~nprocs:2 in
  Alcotest.(check bool)
    "illegal push reported" true
    (has
       (function
         | Diag.Illegal_push { dep = `Anti; array = "b"; _ } -> true
         | _ -> false)
       (errors ds))

(* {2 Static-vs-dynamic differential} *)

let test_differential_coverage () =
  List.iter
    (fun prog ->
      List.iter
        (fun (lname, opts) ->
          let r = Differential.run ~opts prog ~nprocs:2 in
          check_clean
            (Printf.sprintf "%s %s differential" prog.Ir.pname lname)
            r.Differential.diags;
          Alcotest.(check int)
            (prog.Ir.pname ^ " trace complete")
            0 r.Differential.dropped;
          Array.iteri
            (fun p (s : Differential.proc_stat) ->
              Alcotest.(check int)
                (Printf.sprintf "%s %s p%d fully covered" prog.Ir.pname
                   lname p)
                s.Differential.dynamic_pages s.Differential.covered_pages)
            r.Differential.per_proc)
        [ ("base", Transform.base); ("all", Transform.all) ])
    [
      Programs.jacobi ~m:16 ~iters:2;
      Programs.transpose ~m:16 ~iters:2;
      Programs.redblack ~n:64 ~iters:2;
    ]

let test_differential_catches_truncation () =
  let page_size = 4096 in
  let access proc page write =
    {
      Dsm_trace.Replay.proc;
      page;
      write;
      epoch = 0;
      time = 0.;
    }
  in
  let accesses = [ access 0 5 false; access 1 5 true; access 1 6 false ] in
  (* full static set: everything covered *)
  let full =
    [|
      Range.of_interval (5 * page_size) (6 * page_size);
      Range.of_interval (5 * page_size) (7 * page_size);
    |]
  in
  let r =
    Differential.check ~program:"synthetic" ~page_size ~nprocs:2
      ~static:full accesses
  in
  check_clean "full summary" r.Differential.diags;
  (* truncated static set: proc 1 loses page 6 *)
  let truncated =
    [|
      Range.of_interval (5 * page_size) (6 * page_size);
      Range.of_interval (5 * page_size) (6 * page_size);
    |]
  in
  let r =
    Differential.check ~program:"synthetic" ~page_size ~nprocs:2
      ~static:truncated accesses
  in
  Alcotest.(check int) "one uncovered page" 1
    (List.length r.Differential.diags);
  match (List.hd r.Differential.diags).Diag.kind with
  | Diag.Uncovered_access { p = 1; page = 6; _ } -> ()
  | _ -> Alcotest.fail "expected uncovered access on proc 1 page 6"

let tests =
  [
    Alcotest.test_case "shipped programs are race-free" `Quick
      test_shipped_race_free;
    Alcotest.test_case "seeded write-write race is detected" `Quick
      test_seeded_race;
    Alcotest.test_case "inexact overlap degrades to warning" `Quick
      test_inexact_race_is_warning;
    Alcotest.test_case "jacobi wrap-around region (Fprec(p1)=b2)" `Quick
      test_jacobi_wraparound;
    Alcotest.test_case "verifier accepts all transformed programs" `Quick
      test_verify_shipped_clean;
    Alcotest.test_case "verifier rejects shrunk Push" `Quick
      test_verify_rejects_shrunk_push;
    Alcotest.test_case "verifier rejects dropped Validate" `Quick
      test_verify_rejects_dropped_validate;
    Alcotest.test_case "verifier rejects widened WRITE_ALL" `Quick
      test_verify_rejects_widened_write_all;
    Alcotest.test_case "verifier rejects READ flipped to WRITE_ALL" `Quick
      test_verify_rejects_flipped_access;
    Alcotest.test_case "verifier rejects Push of a kept barrier" `Quick
      test_verify_rejects_illegal_push;
    Alcotest.test_case "differential: static covers dynamic" `Quick
      test_differential_coverage;
    Alcotest.test_case "differential: truncated summary is caught" `Quick
      test_differential_catches_truncation;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_drf; prop_mutated ]

(* Message-passing substrate and the mini-HPF run-time. *)

module Mp = Dsm_mp.Mp
module Hpf = Dsm_hpf.Hpf
module Config = Dsm_sim.Config

let cfg n = { Config.default with Config.nprocs = n }

let test_send_recv () =
  let sys = Mp.make (cfg 2) in
  let got = ref [||] in
  Mp.run sys (fun t ->
      if Mp.pid t = 0 then Mp.send_floats t ~dst:1 ~tag:5 [| 1.0; 2.0; 3.0 |]
      else got := Mp.recv_floats t ~src:0 ~tag:5);
  Alcotest.(check (array (float 0.0))) "payload" [| 1.0; 2.0; 3.0 |] !got

let test_tag_matching () =
  let sys = Mp.make (cfg 2) in
  let a = ref 0.0
  and b = ref 0.0 in
  Mp.run sys (fun t ->
      if Mp.pid t = 0 then begin
        Mp.send_floats t ~dst:1 ~tag:1 [| 10.0 |];
        Mp.send_floats t ~dst:1 ~tag:2 [| 20.0 |]
      end
      else begin
        (* receive in reverse tag order *)
        b := (Mp.recv_floats t ~src:0 ~tag:2).(0);
        a := (Mp.recv_floats t ~src:0 ~tag:1).(0)
      end);
  Alcotest.(check (float 0.0)) "tag 1" 10.0 !a;
  Alcotest.(check (float 0.0)) "tag 2" 20.0 !b

let test_fifo_per_tag () =
  let sys = Mp.make (cfg 2) in
  let order = ref [] in
  Mp.run sys (fun t ->
      if Mp.pid t = 0 then
        List.iter (fun v -> Mp.send_floats t ~dst:1 ~tag:3 [| v |]) [ 1.; 2.; 3. ]
      else
        for _i = 1 to 3 do
          order := (Mp.recv_floats t ~src:0 ~tag:3).(0) :: !order
        done);
  Alcotest.(check (list (float 0.0))) "fifo" [ 1.; 2.; 3. ] (List.rev !order)

let test_bcast () =
  List.iter
    (fun n ->
      let sys = Mp.make (cfg n) in
      let got = Array.make n 0.0 in
      Mp.run sys (fun t ->
          let payload = if Mp.pid t = 2 mod n then [| 7.5 |] else [||] in
          got.(Mp.pid t) <- (Mp.bcast_floats t ~root:(2 mod n) ~tag:1 payload).(0));
      Array.iteri
        (fun p v ->
          Alcotest.(check (float 0.0)) (Printf.sprintf "n=%d p=%d" n p) 7.5 v)
        got)
    [ 2; 3; 4; 8 ]

let test_allreduce () =
  let n = 8 in
  let sys = Mp.make (cfg n) in
  let sums = Array.make n 0.0
  and maxs = Array.make n 0.0 in
  Mp.run sys (fun t ->
      let p = Mp.pid t in
      sums.(p) <- (Mp.allreduce_sum t ~tag:10 [| float_of_int (p + 1) |]).(0);
      maxs.(p) <- (Mp.allreduce_max t ~tag:20 [| float_of_int (p * p) |]).(0));
  Array.iter (fun v -> Alcotest.(check (float 0.0)) "sum 36" 36.0 v) sums;
  Array.iter (fun v -> Alcotest.(check (float 0.0)) "max 49" 49.0 v) maxs

let test_sendrecv_ring () =
  let n = 4 in
  let sys = Mp.make (cfg n) in
  let got = Array.make n 0.0 in
  Mp.run sys (fun t ->
      let p = Mp.pid t in
      let r =
        Mp.sendrecv_floats t
          ~dst:((p + 1) mod n)
          ~src:((p + n - 1) mod n)
          ~tag:9
          [| float_of_int p |]
      in
      got.(p) <- r.(0));
  Array.iteri
    (fun p v ->
      Alcotest.(check (float 0.0)) "from left" (float_of_int ((p + n - 1) mod n)) v)
    got

let test_barrier () =
  let sys = Mp.make (cfg 8) in
  let after = ref 0 in
  Mp.run sys (fun t ->
      Mp.barrier t;
      incr after);
  Alcotest.(check int) "all passed" 8 !after

let test_mp_timing () =
  (* with interrupts disabled (no interrupt charge at receive), a one-way
     small message costs less than half the TreadMarks roundtrip *)
  let sys = Mp.make (cfg 2) in
  let t1 = ref 0.0 in
  Mp.run sys (fun t ->
      if Mp.pid t = 0 then Mp.send_floats t ~dst:1 ~tag:1 [| 1.0 |]
      else begin
        ignore (Mp.recv_floats t ~src:0 ~tag:1);
        t1 := Mp.elapsed sys
      end);
  Alcotest.(check bool) "one-way under 200us" true (!t1 < 200.0)

(* {1 Collective properties, fault-free and under network faults}

   One program exercising every collective: returns the per-processor
   payload outputs, the elapsed virtual time and the summed statistics. *)

let collective_program n payload cfg =
  let sys = Mp.make cfg in
  let out = Array.make n [||] in
  Mp.run sys (fun t ->
      let p = Mp.pid t in
      let mine = Array.map (fun x -> x +. float_of_int p) payload in
      let b =
        Mp.bcast_floats t ~root:0 ~tag:1 (if p = 0 then payload else [||])
      in
      let s = Mp.allreduce_sum t ~tag:2 mine in
      let r =
        Mp.sendrecv_floats t
          ~dst:((p + 1) mod n)
          ~src:((p + n - 1) mod n)
          ~tag:3 mine
      in
      Mp.barrier t;
      out.(p) <- Array.concat [ b; s; r ]);
  (out, Mp.elapsed sys, Mp.total_stats sys)

let faulty_mp_cfg n =
  {
    (cfg n) with
    Config.net_drop = 0.05;
    net_dup = 0.03;
    net_jitter_us = 25.0;
    net_seed = 3;
  }

let qcheck_collectives =
  (* for any processor count and payload: collectives over the faulty
     network return exactly the payloads of the exactly-once network, and
     repeated faulty runs are bit-identical (payloads, clocks, statistics) *)
  let gen =
    QCheck.Gen.(
      pair (int_range 2 8)
        (array_size (int_range 1 32)
           (map float_of_int (int_range (-1000) 1000))))
  in
  QCheck.Test.make ~count:20 ~name:"mp collectives: deterministic under faults"
    (QCheck.make gen)
    (fun (n, payload) ->
      let c_out, c_t, _ = collective_program n payload (cfg n) in
      let f_out, f_t, f_s = collective_program n payload (faulty_mp_cfg n) in
      let f_out', f_t', f_s' =
        collective_program n payload (faulty_mp_cfg n)
      in
      c_out = f_out && f_out = f_out' && f_t = f_t' && f_s = f_s'
      && f_t >= c_t)

let test_collectives_under_faults () =
  (* a fixed large run: the faulty network actually loses messages, every
     loss is recovered (payloads identical to the exactly-once run), and
     recovery costs time *)
  let n = 8 in
  let payload = Array.init 64 (fun i -> float_of_int i *. 0.5) in
  let c_out, c_t, c_s = collective_program n payload (cfg n) in
  let f_out, f_t, f_s = collective_program n payload (faulty_mp_cfg n) in
  Alcotest.(check bool) "payloads identical" true (c_out = f_out);
  Alcotest.(check bool) "faults injected" true
    (f_s.Dsm_sim.Stats.dropped > 0 || f_s.Dsm_sim.Stats.duplicates > 0);
  Alcotest.(check int) "every drop timed out" f_s.Dsm_sim.Stats.dropped
    f_s.Dsm_sim.Stats.timeouts;
  Alcotest.(check int) "every timeout retransmitted" f_s.Dsm_sim.Stats.timeouts
    f_s.Dsm_sim.Stats.retransmits;
  Alcotest.(check bool) "recovery costs time" true (f_t > c_t);
  Alcotest.(check int) "fault-free run is clean" 0
    (c_s.Dsm_sim.Stats.dropped + c_s.Dsm_sim.Stats.duplicates
    + c_s.Dsm_sim.Stats.retransmits + c_s.Dsm_sim.Stats.timeouts)

let test_hpf_dist () =
  Alcotest.(check int) "block owner" 1 (Hpf.Dist.owner Hpf.Dist.Block ~nprocs:4 ~n:16 5);
  Alcotest.(check int) "cyclic owner" 1 (Hpf.Dist.owner Hpf.Dist.Cyclic ~nprocs:4 ~n:16 5);
  Alcotest.(check int) "block count" 4
    (Hpf.Dist.local_count Hpf.Dist.Block ~nprocs:4 ~n:16 ~p:2);
  Alcotest.(check int) "cyclic count" 4
    (Hpf.Dist.local_count Hpf.Dist.Cyclic ~nprocs:4 ~n:16 ~p:3);
  Alcotest.(check int) "cyclic uneven" 3
    (Hpf.Dist.local_count Hpf.Dist.Cyclic ~nprocs:4 ~n:15 ~p:3);
  Alcotest.(check int) "block lo" 8 (Hpf.Dist.block_lo ~nprocs:4 ~n:16 ~p:2);
  Alcotest.(check int) "block hi" 11 (Hpf.Dist.block_hi ~nprocs:4 ~n:16 ~p:2)

let test_hpf_shift () =
  let n = 4 in
  let sys = Mp.make (cfg n) in
  let oks = Array.make n false in
  Mp.run sys (fun t ->
      let p = Mp.pid t in
      let fl, fr =
        Hpf.shift_exchange t ~tag:2
          ~left:[| float_of_int (p * 10) |]
          ~right:[| float_of_int ((p * 10) + 1) |]
      in
      let ok_l =
        match fl with
        | Some x -> p > 0 && x.(0) = float_of_int (((p - 1) * 10) + 1)
        | None -> p = 0
      in
      let ok_r =
        match fr with
        | Some x -> p < n - 1 && x.(0) = float_of_int ((p + 1) * 10)
        | None -> p = n - 1
      in
      oks.(p) <- ok_l && ok_r);
  Array.iteri
    (fun p ok -> Alcotest.(check bool) (Printf.sprintf "p%d" p) true ok)
    oks

let test_hpf_costs_more () =
  (* generic section packing makes the HPF broadcast dearer than raw MP *)
  let run f =
    let sys = Mp.make (cfg 4) in
    Mp.run sys (fun t -> ignore (f t));
    Mp.elapsed sys
  in
  let raw = run (fun t -> Mp.bcast_floats t ~root:0 ~tag:1 (Array.make 256 1.0)) in
  let hpf = run (fun t -> Hpf.bcast_section t ~root:0 ~tag:1 (Array.make 256 1.0)) in
  Alcotest.(check bool) "hpf > raw" true (hpf > raw)

let tests =
  [
    Alcotest.test_case "send/recv" `Quick test_send_recv;
    Alcotest.test_case "tag matching" `Quick test_tag_matching;
    Alcotest.test_case "fifo per tag" `Quick test_fifo_per_tag;
    Alcotest.test_case "bcast (2,3,4,8 procs)" `Quick test_bcast;
    Alcotest.test_case "allreduce sum/max" `Quick test_allreduce;
    Alcotest.test_case "sendrecv ring" `Quick test_sendrecv_ring;
    Alcotest.test_case "barrier" `Quick test_barrier;
    Alcotest.test_case "mp timing (no interrupts)" `Quick test_mp_timing;
    Alcotest.test_case "hpf distributions" `Quick test_hpf_dist;
    Alcotest.test_case "hpf shift exchange" `Quick test_hpf_shift;
    Alcotest.test_case "hpf packing overhead" `Quick test_hpf_costs_more;
    Alcotest.test_case "collectives under faults" `Quick
      test_collectives_under_faults;
  ]
  @ [ QCheck_alcotest.to_alcotest qcheck_collectives ]
